// Command hvcsim runs one ad-hoc scenario: a single flow of the chosen
// kind (bulk transfer, web page load, or video stream) over a pair of
// heterogeneous virtual channels, with a chosen steering policy and
// congestion control. It is the exploration companion to hvcbench's
// fixed experiment suite.
//
//	hvcsim -workload bulk  -cc bbr   -policy dchannel -dur 30s
//	hvcsim -workload video -policy priority -trace mmwave-driving
//	hvcsim -workload web   -policy dchannel+priority -trace lowband-driving
//
// -report writes a machine-readable JSON run report and -tracefile a
// Perfetto-loadable Chrome trace of the run (bulk, video, and web
// workloads; -trace names the eMBB bandwidth trace, hence the longer
// flag for the event trace).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hvc/internal/core"
	"hvc/internal/metrics"
	"hvc/internal/sketch"
	"hvc/internal/telemetry"
)

func main() {
	var (
		workload  = flag.String("workload", "bulk", "bulk, video, web, abr, or game")
		ccName    = flag.String("cc", "cubic", "congestion control for bulk/web (cubic, reno, bbr, vegas, vivace, hvc-*)")
		policy    = flag.String("policy", core.PolicyDChannel, "steering policy (embb-only, dchannel, priority, dchannel+priority)")
		traceNm   = flag.String("trace", "fixed", "eMBB trace (fixed, lowband-stationary, lowband-driving, mmwave-driving)")
		dur       = flag.Duration("dur", 30*time.Second, "run duration")
		seed      = flag.Int64("seed", 1, "simulation seed")
		pages     = flag.Int("pages", 5, "web: pages to load")
		capFile   = flag.String("capture", "", "bulk: write per-channel time series CSV to this file")
		report    = flag.String("report", "", "write a JSON run report to this file (bulk/video/web)")
		traceFile = flag.String("tracefile", "", "write a Chrome trace-event file (Perfetto-loadable) to this file (bulk/video/web)")
	)
	flag.Parse()

	obs, err := newObserver(*workload, *seed, *report, *traceFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hvcsim: %v\n", err)
		os.Exit(1)
	}
	obs.config("workload", *workload)
	obs.config("policy", *policy)
	obs.config("trace", *traceNm)

	switch *workload {
	case "bulk":
		obs.config("cc", *ccName)
		obs.config("dur", dur.String())
		err = runBulk(*seed, *dur, *ccName, *policy, *traceNm, *capFile, obs)
	case "video":
		obs.config("dur", dur.String())
		err = runVideo(*seed, *dur, *policy, *traceNm, obs)
	case "web":
		obs.config("pages", fmt.Sprint(*pages))
		err = runWeb(*seed, *policy, *traceNm, *pages, obs)
	case "abr":
		err = runABR(*seed, *dur, *policy, *traceNm)
	case "game":
		err = runGame(*seed, *dur, *policy, *traceNm)
	default:
		err = fmt.Errorf("unknown workload %q", *workload)
	}
	if err == nil {
		err = obs.finish(*report)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hvcsim: %v\n", err)
		os.Exit(1)
	}
}

// observer bundles the optional tracer and run report of one scenario.
// The zero observer (no -report/-tracefile) is fully inert.
type observer struct {
	tracer    *telemetry.Tracer
	report    *telemetry.Report
	traceFile *os.File
}

func newObserver(workload string, seed int64, reportPath, tracePath string) (*observer, error) {
	o := &observer{}
	if reportPath == "" && tracePath == "" {
		return o, nil
	}
	switch workload {
	case "bulk", "video", "web":
	default:
		return nil, fmt.Errorf("-report/-tracefile are not supported for workload %q", workload)
	}
	var sinks []telemetry.Sink
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		o.traceFile = f
		sinks = append(sinks, telemetry.NewChromeTrace(f))
	}
	o.tracer = telemetry.New(sinks...)
	if reportPath != "" {
		o.report = telemetry.NewReport(workload, seed)
	}
	return o, nil
}

func (o *observer) config(key, value string) {
	if o.report != nil {
		o.report.SetConfig(key, value)
	}
}

func (o *observer) metric(name string, v float64, unit string) {
	if o.report != nil {
		o.report.AddMetric(name, v, unit)
	}
}

// sketchDist folds a result distribution into the report's sketch
// section (samples feed in sorted order, so the summary is a pure
// function of the run).
func (o *observer) sketchDist(name string, d *metrics.Distribution) {
	if o.report == nil || d.N() == 0 {
		return
	}
	s := sketch.NewDefault()
	for _, v := range d.Values() {
		s.Observe(v)
	}
	o.report.AddSketch(name, s)
}

// sketchSeries folds a time series' values into the report's sketch
// section, feeding in time order.
func (o *observer) sketchSeries(name string, ts *metrics.TimeSeries) {
	if o.report == nil || ts.N() == 0 {
		return
	}
	s := sketch.NewDefault()
	for _, p := range ts.Points() {
		s.Observe(p.Value)
	}
	o.report.AddSketch(name, s)
}

// finish flushes the trace and, when requested, writes the report.
func (o *observer) finish(reportPath string) error {
	if o.report != nil {
		o.report.AttachCounters(o.tracer.Registry())
		f, err := os.Create(reportPath)
		if err != nil {
			return err
		}
		if err := o.report.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if err := o.tracer.Close(); err != nil {
		return err
	}
	if o.traceFile != nil {
		return o.traceFile.Close()
	}
	return nil
}

func runBulk(seed int64, dur time.Duration, ccName, policy, traceNm, capFile string, obs *observer) error {
	tr, err := core.NewTrace(traceNm, seed, dur+time.Minute)
	if err != nil {
		return err
	}
	cfg := core.BulkConfig{
		Seed: seed, Duration: dur, CC: ccName, Policy: policy, EMBB: tr,
		Tracer: obs.tracer,
	}
	if capFile != "" {
		cfg.CaptureEvery = 100 * time.Millisecond
	}
	r, err := core.RunBulk(cfg)
	if err != nil {
		return err
	}
	if capFile != "" {
		f, err := os.Create(capFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := r.Capture.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("  capture      wrote %s\n", capFile)
	}
	fmt.Printf("bulk %s/%s over %s for %v\n", ccName, policy, traceNm, dur)
	fmt.Printf("  goodput      %.2f Mbps\n", r.Mbps)
	fmt.Printf("  retransmits  %d (rtos %d)\n", r.Retransmits, r.RTOs)
	fmt.Printf("  rtt          %s\n", summarizeRTT(r))
	fmt.Printf("  channels     %s\n", core.SortedCounts(r.ChannelShare))
	obs.metric("goodput", r.Mbps, "Mbps")
	obs.metric("retransmits", float64(r.Retransmits), "")
	obs.metric("rtos", float64(r.RTOs), "")
	obs.sketchSeries("rtt_ms", &r.RTT)
	return nil
}

func summarizeRTT(r core.BulkResult) string {
	if r.RTT.N() == 0 {
		return "no samples"
	}
	var dist metrics.Distribution
	for _, p := range r.RTT.Points() {
		dist.Add(p.Value)
	}
	return fmt.Sprintf("n=%d p50=%.1fms p95=%.1fms max=%.1fms",
		dist.N(), dist.Percentile(50), dist.Percentile(95), dist.Max())
}

func runVideo(seed int64, dur time.Duration, policy, traceNm string, obs *observer) error {
	r, err := core.RunVideo(core.VideoConfig{Seed: seed, Duration: dur, Trace: traceNm, Policy: policy, Tracer: obs.tracer})
	if err != nil {
		return err
	}
	fmt.Printf("video %s over %s for %v\n", policy, traceNm, dur)
	fmt.Printf("  frames       %d sent, %d decoded, %d frozen\n", r.Sent, r.Decoded, r.Frozen)
	fmt.Printf("  latency      p50=%.0fms p95=%.0fms p99=%.0fms max=%.0fms\n",
		r.Latency.Percentile(50), r.Latency.Percentile(95), r.Latency.Percentile(99), r.Latency.Max())
	fmt.Printf("  ssim         mean=%.3f p5=%.3f\n", r.SSIM.Mean(), r.SSIM.Percentile(5))
	obs.metric("latency_p95", r.Latency.Percentile(95), "ms")
	obs.metric("ssim_mean", r.SSIM.Mean(), "")
	obs.metric("frozen", float64(r.Frozen), "frames")
	obs.sketchDist("latency_ms", &r.Latency)
	return nil
}

func runWeb(seed int64, policy, traceNm string, pages int, obs *observer) error {
	r, err := core.RunWeb(core.WebConfig{
		Seed: seed, Trace: traceNm, Policy: policy, Pages: pages, Loads: 1,
		Tracer: obs.tracer,
	})
	if err != nil {
		return err
	}
	fmt.Printf("web %s over %s, %d pages\n", policy, traceNm, pages)
	fmt.Printf("  mean PLT     %v\n", r.MeanPLT.Round(time.Millisecond))
	fmt.Printf("  p95 PLT      %.0f ms\n", r.PLT.Percentile(95))
	fmt.Printf("  background   %d uploads, %d downloads\n", r.BgUploads, r.BgDownloads)
	obs.metric("plt_mean", r.PLT.Mean(), "ms")
	obs.metric("plt_p95", r.PLT.Percentile(95), "ms")
	obs.sketchDist("plt_ms", &r.PLT)
	return nil
}

func runABR(seed int64, dur time.Duration, policy, traceNm string) error {
	r, err := core.RunABR(core.ABRConfig{Seed: seed, Media: dur, Trace: traceNm, Policy: policy})
	if err != nil {
		return err
	}
	fmt.Printf("abr %s over %s, %v media\n", policy, traceNm, dur)
	fmt.Printf("  startup      %v\n", r.StartupDelay.Round(time.Millisecond))
	fmt.Printf("  rebuffer     %v in %d events\n", r.RebufferTime.Round(time.Millisecond), r.RebufferEvents)
	fmt.Printf("  bitrate      %.2f Mbps mean, %d switches\n", r.MeanBitrate/1e6, r.Switches)
	fmt.Printf("  played       %v of %v\n", r.Played.Round(time.Second), dur)
	return nil
}

func runGame(seed int64, dur time.Duration, policy, traceNm string) error {
	r, err := core.RunGame(core.GameConfig{Seed: seed, Duration: dur, Trace: traceNm, Policy: policy})
	if err != nil {
		return err
	}
	fmt.Printf("game %s over %s for %v\n", policy, traceNm, dur)
	fmt.Printf("  input→display p50=%.0fms p95=%.0fms max=%.0fms\n",
		r.InputToDisplay.Percentile(50), r.InputToDisplay.Percentile(95), r.InputToDisplay.Max())
	fmt.Printf("  frames       %d shown, %d lost\n", r.FramesShown, r.FramesLost)
	return nil
}
