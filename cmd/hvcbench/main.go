// Command hvcbench regenerates every table and figure in the paper's
// evaluation (see DESIGN.md §3 for the experiment index):
//
//	hvcbench -exp fig1a        CCA throughput under DChannel steering
//	hvcbench -exp fig1b        BBR per-ack RTT time series
//	hvcbench -exp fig2         real-time SVC video latency/SSIM
//	hvcbench -exp table1       web PLT with background flows
//	hvcbench -exp ablation-cc  HVC-aware congestion control (§3.2)
//	hvcbench -exp ablation-mptcp MPTCP-style aggregation vs steering (§1)
//	hvcbench -exp ablation-mlo Wi-Fi MLO redundancy (§2.2/§3.1)
//	hvcbench -exp ablation-cost budgeted cISP-style path (§3.1)
//	hvcbench -exp ablation-beta DChannel reward/cost β sweep
//	hvcbench -exp ablation-tail end-of-message acceleration (§3.2)
//	hvcbench -exp ablation-ians object-granularity (IANS) baseline (§1)
//	hvcbench -exp ablation-has  adaptive streaming comparison
//	hvcbench -exp ablation-tsn  wireless TSN vs best-effort Wi-Fi (§2.2)
//	hvcbench -exp outage       steering policies through channel blackouts (§2.1)
//	hvcbench -exp arena        multi-flow CCA contention: shares, Jain, convergence
//	hvcbench -exp all          everything above
//
// The experiment registry itself lives in internal/experiments; this
// command adds flag parsing, report/trace sinks, and the multi-seed
// loop. With -seeds N the seeds run in parallel across GOMAXPROCS
// workers (each simulation is single-threaded and self-contained) and
// their outputs print in seed order, so the bytes match a serial run;
// -report/-trace/-events fall back to serial execution because their
// sinks span runs. For grid sweeps with caching and per-cell
// statistics, see cmd/hvcsweep.
//
// -report writes a machine-readable JSON run report (schema
// hvc-run-report/v1: config, seed, headline metrics, counter
// snapshot); -trace writes a Chrome trace-event file loadable in
// Perfetto (ui.perfetto.dev) with one track per channel and flow;
// -events writes the raw event stream as JSONL. All three are
// deterministic per seed.
//
// Absolute numbers come from a simulator, not the authors' testbed;
// the shapes (who wins, by what factor, where crossovers fall) are the
// reproduction target. EXPERIMENTS.md records paper-vs-measured.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"hvc/internal/experiments"
	"hvc/internal/pool"
	"hvc/internal/prof"
	"hvc/internal/telemetry"
)

func main() {
	profile := prof.Register()
	var (
		exp = flag.String("exp", "all",
			"experiment to run ("+strings.Join(experiments.Order(), ", ")+", all)")
		seed    = flag.Int64("seed", 1, "simulation seed")
		seeds   = flag.Int("seeds", 1, "repeat headline experiments over this many consecutive seeds (in parallel unless -report/-trace/-events)")
		quick   = flag.Bool("quick", false, "shorter runs and smaller corpora (for smoke testing)")
		cdf     = flag.Bool("cdf", false, "dump full CDFs/time series instead of summaries")
		faultF  = flag.String("fault", "", "fault scenario for -exp outage (internal/fault grammar; empty keeps the default blackout schedule)")
		report  = flag.String("report", "", "write a JSON run report (config, metrics, counters) to this file")
		traceF  = flag.String("trace", "", "write a Chrome trace-event file (Perfetto-loadable) to this file")
		eventsF = flag.String("events", "", "write the raw telemetry event stream as JSONL to this file")
	)
	flag.Parse()
	if err := profile.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "hvcbench: %v\n", err)
		os.Exit(1)
	}

	cfg := experiments.FullScale()
	if *quick {
		cfg = experiments.QuickScale()
	}

	var names []string
	if *exp == "all" {
		names = experiments.Order()
	} else if experiments.Valid(*exp) {
		names = []string{*exp}
	} else {
		fmt.Fprintf(os.Stderr, "hvcbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *seeds < 1 {
		*seeds = 1
	}

	e := experiments.Env{Scale: cfg, CDF: *cdf, Out: os.Stdout, Fault: *faultF}
	var sinks []telemetry.Sink
	var files []*os.File
	openSink := func(path string, mk func(*os.File) telemetry.Sink) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hvcbench: %v\n", err)
			os.Exit(1)
		}
		files = append(files, f)
		sinks = append(sinks, mk(f))
	}
	if *traceF != "" {
		openSink(*traceF, func(f *os.File) telemetry.Sink { return telemetry.NewChromeTrace(f) })
	}
	if *eventsF != "" {
		openSink(*eventsF, func(f *os.File) telemetry.Sink { return telemetry.NewJSONL(f) })
	}
	if len(sinks) > 0 || *report != "" {
		e.Tracer = telemetry.New(sinks...)
	}
	if *report != "" {
		e.Report = telemetry.NewReport(strings.Join(names, ","), *seed)
		e.Report.SetConfig("seeds", fmt.Sprint(*seeds))
		e.Report.SetConfig("quick", fmt.Sprint(*quick))
		e.Report.SetConfig("bulk_dur", cfg.BulkDur.String())
		e.Report.SetConfig("video_dur", cfg.VideoDur.String())
		e.Report.SetConfig("pages", fmt.Sprint(cfg.Pages))
		e.Report.SetConfig("loads", fmt.Sprint(cfg.Loads))
		if *faultF != "" {
			e.Report.SetConfig("fault", *faultF)
		}
	}

	// The tracer's sinks and the report span runs, so they pin
	// execution to one goroutine; without them, seeds fan out across
	// the worker pool and print in seed order — identical bytes,
	// multi-core wall clock.
	parallelSeeds := *seeds > 1 && e.Tracer == nil && e.Report == nil

	for _, name := range names {
		if parallelSeeds {
			outs, err := pool.Map(*seeds, 0, func(i int) (*bytes.Buffer, error) {
				env := e
				env.Seed = *seed + int64(i)
				env.Prefix = fmt.Sprintf("%s/seed%d/", name, env.Seed)
				var buf bytes.Buffer
				env.Out = &buf
				return &buf, experiments.Run(name, env)
			})
			if err != nil {
				var pe *pool.Error
				if errors.As(err, &pe) {
					fmt.Fprintf(os.Stderr, "hvcbench: %s: seed %d: %v\n", name, *seed+int64(pe.Index), pe.Err)
				} else {
					fmt.Fprintf(os.Stderr, "hvcbench: %s: %v\n", name, err)
				}
				os.Exit(1)
			}
			for i, buf := range outs {
				fmt.Printf("--- seed %d ---\n", *seed+int64(i))
				os.Stdout.Write(buf.Bytes())
			}
			continue
		}
		for s := 0; s < *seeds; s++ {
			if *seeds > 1 {
				fmt.Printf("--- seed %d ---\n", *seed+int64(s))
			}
			e.Seed = *seed + int64(s)
			e.Prefix = name + "/"
			if *seeds > 1 {
				e.Prefix = fmt.Sprintf("%s/seed%d/", name, e.Seed)
			}
			if err := experiments.Run(name, e); err != nil {
				fmt.Fprintf(os.Stderr, "hvcbench: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
	}

	if e.Report != nil {
		e.Report.AttachCounters(e.Tracer.Registry())
		f, err := os.Create(*report)
		if err == nil {
			err = e.Report.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hvcbench: report: %v\n", err)
			os.Exit(1)
		}
	}
	if err := e.Tracer.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "hvcbench: trace: %v\n", err)
		os.Exit(1)
	}
	for _, f := range files {
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hvcbench: %v\n", err)
			os.Exit(1)
		}
	}
	if err := profile.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "hvcbench: profile: %v\n", err)
		os.Exit(1)
	}
}
