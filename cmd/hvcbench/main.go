// Command hvcbench regenerates every table and figure in the paper's
// evaluation (see DESIGN.md §3 for the experiment index):
//
//	hvcbench -exp fig1a        CCA throughput under DChannel steering
//	hvcbench -exp fig1b        BBR per-ack RTT time series
//	hvcbench -exp fig2         real-time SVC video latency/SSIM
//	hvcbench -exp table1       web PLT with background flows
//	hvcbench -exp ablation-cc  HVC-aware congestion control (§3.2)
//	hvcbench -exp ablation-mptcp MPTCP-style aggregation vs steering (§1)
//	hvcbench -exp ablation-mlo Wi-Fi MLO redundancy (§2.2/§3.1)
//	hvcbench -exp ablation-cost budgeted cISP-style path (§3.1)
//	hvcbench -exp ablation-beta DChannel reward/cost β sweep
//	hvcbench -exp ablation-tail end-of-message acceleration (§3.2)
//	hvcbench -exp ablation-ians object-granularity (IANS) baseline (§1)
//	hvcbench -exp ablation-has  adaptive streaming comparison
//	hvcbench -exp ablation-tsn  wireless TSN vs best-effort Wi-Fi (§2.2)
//	hvcbench -exp all          everything above
//
// -report writes a machine-readable JSON run report (schema
// hvc-run-report/v1: config, seed, headline metrics, counter
// snapshot); -trace writes a Chrome trace-event file loadable in
// Perfetto (ui.perfetto.dev) with one track per channel and flow;
// -events writes the raw event stream as JSONL. All three are
// deterministic per seed.
//
// Absolute numbers come from a simulator, not the authors' testbed;
// the shapes (who wins, by what factor, where crossovers fall) are the
// reproduction target. EXPERIMENTS.md records paper-vs-measured.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hvc/internal/core"
	"hvc/internal/metrics"
	"hvc/internal/telemetry"
)

// expOrder lists every experiment in "all" execution order; it is also
// the source of the -exp usage string, so the two cannot drift.
var expOrder = []string{
	"fig1a", "fig1b", "fig2", "table1",
	"ablation-cc", "ablation-mptcp", "ablation-mlo", "ablation-cost",
	"ablation-beta", "ablation-tail", "ablation-ians", "ablation-has", "ablation-tsn",
}

func main() {
	var (
		exp = flag.String("exp", "all",
			"experiment to run ("+strings.Join(expOrder, ", ")+", all)")
		seed    = flag.Int64("seed", 1, "simulation seed")
		seeds   = flag.Int("seeds", 1, "repeat headline experiments over this many consecutive seeds and report means")
		quick   = flag.Bool("quick", false, "shorter runs and smaller corpora (for smoke testing)")
		cdf     = flag.Bool("cdf", false, "dump full CDFs/time series instead of summaries")
		report  = flag.String("report", "", "write a JSON run report (config, metrics, counters) to this file")
		traceF  = flag.String("trace", "", "write a Chrome trace-event file (Perfetto-loadable) to this file")
		eventsF = flag.String("events", "", "write the raw telemetry event stream as JSONL to this file")
	)
	flag.Parse()

	cfg := scale{bulkDur: 60 * time.Second, videoDur: 60 * time.Second, pages: 30, loads: 5}
	if *quick {
		cfg = scale{bulkDur: 15 * time.Second, videoDur: 20 * time.Second, pages: 6, loads: 2}
	}

	runners := map[string]func(env) error{
		"fig1a":          fig1a,
		"fig1b":          fig1b,
		"fig2":           fig2,
		"table1":         table1,
		"ablation-cc":    ablationCC,
		"ablation-mptcp": ablationMultipath,
		"ablation-mlo":   ablationMLO,
		"ablation-cost":  ablationCost,
		"ablation-beta":  ablationBeta,
		"ablation-tail":  ablationTail,
		"ablation-ians":  ablationIANS,
		"ablation-has":   ablationHAS,
		"ablation-tsn":   ablationTSN,
	}

	var names []string
	if *exp == "all" {
		names = expOrder
	} else if _, ok := runners[*exp]; ok {
		names = []string{*exp}
	} else {
		fmt.Fprintf(os.Stderr, "hvcbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *seeds < 1 {
		*seeds = 1
	}

	e := env{sc: cfg, cdf: *cdf}
	var sinks []telemetry.Sink
	var files []*os.File
	openSink := func(path string, mk func(*os.File) telemetry.Sink) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hvcbench: %v\n", err)
			os.Exit(1)
		}
		files = append(files, f)
		sinks = append(sinks, mk(f))
	}
	if *traceF != "" {
		openSink(*traceF, func(f *os.File) telemetry.Sink { return telemetry.NewChromeTrace(f) })
	}
	if *eventsF != "" {
		openSink(*eventsF, func(f *os.File) telemetry.Sink { return telemetry.NewJSONL(f) })
	}
	if len(sinks) > 0 || *report != "" {
		e.tracer = telemetry.New(sinks...)
	}
	if *report != "" {
		e.report = telemetry.NewReport(strings.Join(names, ","), *seed)
		e.report.SetConfig("seeds", fmt.Sprint(*seeds))
		e.report.SetConfig("quick", fmt.Sprint(*quick))
		e.report.SetConfig("bulk_dur", cfg.bulkDur.String())
		e.report.SetConfig("video_dur", cfg.videoDur.String())
		e.report.SetConfig("pages", fmt.Sprint(cfg.pages))
		e.report.SetConfig("loads", fmt.Sprint(cfg.loads))
	}

	for _, name := range names {
		for s := 0; s < *seeds; s++ {
			if *seeds > 1 {
				fmt.Printf("--- seed %d ---\n", *seed+int64(s))
			}
			e.seed = *seed + int64(s)
			e.prefix = name + "/"
			if *seeds > 1 {
				e.prefix = fmt.Sprintf("%s/seed%d/", name, e.seed)
			}
			if err := runners[name](e); err != nil {
				fmt.Fprintf(os.Stderr, "hvcbench: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
	}

	if e.report != nil {
		e.report.AttachCounters(e.tracer.Registry())
		f, err := os.Create(*report)
		if err == nil {
			err = e.report.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hvcbench: report: %v\n", err)
			os.Exit(1)
		}
	}
	if err := e.tracer.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "hvcbench: trace: %v\n", err)
		os.Exit(1)
	}
	for _, f := range files {
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hvcbench: %v\n", err)
			os.Exit(1)
		}
	}
}

type scale struct {
	bulkDur  time.Duration
	videoDur time.Duration
	pages    int
	loads    int
}

// env carries one runner invocation's knobs and observability hooks.
type env struct {
	seed   int64
	sc     scale
	cdf    bool
	tracer *telemetry.Tracer // nil unless -trace/-events/-report given
	report *telemetry.Report // nil unless -report given
	prefix string            // metric-name prefix, "<exp>/" or "<exp>/seed<N>/"
}

// metric records one headline value into the run report, when one is
// being assembled.
func (e env) metric(name string, v float64, unit string) {
	if e.report != nil {
		e.report.AddMetric(e.prefix+name, v, unit)
	}
}

func fig1a(e env) error {
	fmt.Printf("== Figure 1a: CCA throughput with DChannel steering (eMBB 50ms/60Mbps + URLLC 5ms/2Mbps, %v) ==\n", e.sc.bulkDur)
	fmt.Printf("%-8s %12s %12s %8s\n", "cca", "mbps", "retransmits", "rtos")
	results, err := core.Fig1a(e.seed, e.sc.bulkDur, e.tracer)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-8s %12.2f %12d %8d\n", r.CC, r.Mbps, r.Retransmits, r.RTOs)
		e.metric(r.CC+"/goodput", r.Mbps, "Mbps")
		e.metric(r.CC+"/retransmits", float64(r.Retransmits), "")
	}
	fmt.Println()
	return nil
}

func fig1b(e env) error {
	fmt.Printf("== Figure 1b: BBR packet RTTs under DChannel steering (%v) ==\n", e.sc.bulkDur)
	r, err := core.Fig1b(e.seed, e.sc.bulkDur, e.tracer)
	if err != nil {
		return err
	}
	if e.cdf {
		fmt.Println("t_s\trtt_ms\tchannel")
		for i, p := range r.RTT.Points() {
			fmt.Printf("%.3f\t%.2f\t%s\n", p.At.Seconds(), p.Value, r.RTTChannels[i])
		}
	} else {
		fmt.Printf("%8s %10s %10s %10s\n", "t", "min_ms", "mean_ms", "max_ms")
		for _, b := range r.RTT.Buckets(2 * time.Second) {
			fmt.Printf("%8v %10.1f %10.1f %10.1f\n", b.Start, b.Min, b.Mean, b.Max)
		}
	}
	fmt.Printf("throughput: %.2f Mbps over %v\n\n", r.Mbps, e.sc.bulkDur)
	e.metric("goodput", r.Mbps, "Mbps")
	e.metric("rtt_samples", float64(r.RTT.N()), "")
	return nil
}

func fig2(e env) error {
	for _, tr := range []string{"lowband-driving", "mmwave-driving"} {
		fmt.Printf("== Figure 2: real-time SVC video over %s + URLLC (%v) ==\n", tr, e.sc.videoDur)
		results, err := core.Fig2(e.seed, e.sc.videoDur, tr, e.tracer)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %9s %9s %9s %9s %8s %7s\n",
			"policy", "p50_ms", "p95_ms", "p99_ms", "max_ms", "ssim", "frozen")
		for _, r := range results {
			fmt.Printf("%-20s %9.0f %9.0f %9.0f %9.0f %8.3f %7d\n",
				r.Policy,
				r.Latency.Percentile(50), r.Latency.Percentile(95),
				r.Latency.Percentile(99), r.Latency.Max(),
				r.SSIM.Mean(), r.Frozen)
			e.metric(tr+"/"+r.Policy+"/latency_p95", r.Latency.Percentile(95), "ms")
			e.metric(tr+"/"+r.Policy+"/ssim_mean", r.SSIM.Mean(), "")
			e.metric(tr+"/"+r.Policy+"/frozen", float64(r.Frozen), "frames")
		}
		if e.cdf {
			for _, r := range results {
				fmt.Printf("-- latency CDF (%s/%s) --\n%s", tr, r.Policy,
					metrics.FormatCDF(r.Latency.CDF(50), "latency_ms"))
				fmt.Printf("-- ssim CDF (%s/%s) --\n%s", tr, r.Policy,
					metrics.FormatCDF(r.SSIM.CDF(20), "ssim"))
			}
		}
		fmt.Println()
	}
	return nil
}

func table1(e env) error {
	fmt.Printf("== Table 1: web PLT (ms) with background traffic (%d pages x %d loads) ==\n", e.sc.pages, e.sc.loads)
	fmt.Printf("%-22s %14s %20s %24s\n", "trace", "embb-only", "dchannel", "dchannel+priority")
	for _, tr := range []string{"lowband-stationary", "lowband-driving"} {
		results, err := core.Table1(e.seed, tr, e.sc.pages, e.sc.loads, e.tracer)
		if err != nil {
			return err
		}
		base := results[0].PLT.Mean()
		cells := make([]string, len(results))
		for i, r := range results {
			if i == 0 {
				cells[i] = fmt.Sprintf("%.1f", r.PLT.Mean())
			} else {
				cells[i] = fmt.Sprintf("%.1f (%.1f%%)", r.PLT.Mean(), 100*(1-r.PLT.Mean()/base))
			}
			e.metric(tr+"/"+r.Policy+"/plt_mean", r.PLT.Mean(), "ms")
		}
		fmt.Printf("%-22s %14s %20s %24s\n", tr, cells[0], cells[1], cells[2])
	}
	fmt.Println()
	return nil
}

func ablationCC(e env) error {
	fmt.Printf("== Ablation (§3.2): HVC-aware congestion control (%v) ==\n", e.sc.bulkDur)
	plain, aware, err := core.AblationHVCAwareCC(e.seed, e.sc.bulkDur, e.tracer)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %14s %14s %10s\n", "cca", "plain_mbps", "hvc_mbps", "speedup")
	for i := range plain {
		fmt.Printf("%-8s %14.2f %14.2f %9.1fx\n",
			plain[i].CC, plain[i].Mbps, aware[i].Mbps, aware[i].Mbps/plain[i].Mbps)
		e.metric(plain[i].CC+"/plain_goodput", plain[i].Mbps, "Mbps")
		e.metric(plain[i].CC+"/hvc_goodput", aware[i].Mbps, "Mbps")
	}
	fmt.Println()
	return nil
}

func ablationMLO(e env) error {
	seed := e.seed
	fmt.Println("== Ablation (§2.2/§3.1): Wi-Fi MLO redundancy, 1200B messages at 100/s ==")
	fmt.Printf("%-12s %10s %10s %10s %12s\n", "mode", "delivery", "p50_ms", "p99_ms", "pkts_on_air")
	for _, red := range []bool{false, true} {
		r := core.RunMLO(seed, 2000, 1200, 10*time.Millisecond, red)
		fmt.Printf("%-12s %9.2f%% %10.1f %10.1f %12d\n",
			r.Mode, 100*r.DeliveryRate, r.Latency.Percentile(50), r.Latency.Percentile(99), r.PacketsOnAir)
	}
	fmt.Println()
	return nil
}

func ablationCost(e env) error {
	seed := e.seed
	fmt.Println("== Ablation (§3.1): latency vs cost on a priced cISP-style path ==")
	fmt.Printf("%-14s %10s %10s %12s %10s\n", "budget_B/s", "mean_ms", "p95_ms", "spent_bytes", "dollars")
	for _, budget := range []float64{0, 5_000, 50_000, 500_000, 5_000_000} {
		r := core.RunCost(seed, 500, 20*time.Millisecond, budget)
		fmt.Printf("%-14.0f %10.1f %10.1f %12d %10.4f\n",
			budget, r.Latency.Mean(), r.Latency.Percentile(95), r.SpentBytes, r.Dollars)
	}
	fmt.Println()
	return nil
}

func ablationMultipath(e env) error {
	seed, sc := e.seed, e.sc
	fmt.Printf("== Ablation (§1/§3.1): MPTCP-style aggregation vs steering (%v) ==\n", sc.bulkDur)
	fmt.Printf("%-12s %12s %12s %12s %14s\n", "bulk mode", "bulk_mbps", "probe_p50", "probe_p95", "urllc_maxq_B")
	for _, mode := range []string{"multipath", "dchannel", "priority"} {
		r := core.RunMultipath(seed, sc.bulkDur, mode)
		fmt.Printf("%-12s %12.2f %10.1fms %10.1fms %14d\n",
			r.Mode, r.BulkMbps, r.Probe.Percentile(50), r.Probe.Percentile(95), r.URLLCMaxQueue)
	}
	fmt.Println()
	return nil
}

func ablationBeta(e env) error {
	seed := e.seed
	fmt.Println("== Ablation (design choice): DChannel reward/cost β on SVC video (lowband-driving, 30s) ==")
	fmt.Printf("%-8s %12s %10s %14s\n", "beta", "p95_ms", "ssim", "urllc_share")
	for _, p := range core.RunBetaSweep(seed, 30*time.Second, []float64{0.25, 0.5, 1, 2, 4, 8}) {
		fmt.Printf("%-8.2f %12.0f %10.3f %13.1f%%\n", p.Beta, p.P95Latency, p.SSIM, 100*p.URLLCShare)
	}
	fmt.Println()
	return nil
}

func ablationTail(e env) error {
	seed := e.seed
	fmt.Println("== Ablation (§3.2): end-of-message tail acceleration, 60kB messages at 20/s ==")
	fmt.Printf("%-12s %10s %10s %10s\n", "mode", "mean_ms", "p95_ms", "max_ms")
	for _, boost := range []bool{false, true} {
		r := core.RunTailBoost(seed, 500, 60_000, 50*time.Millisecond, boost)
		fmt.Printf("%-12s %10.1f %10.1f %10.1f\n",
			r.Mode, r.Latency.Mean(), r.Latency.Percentile(95), r.Latency.Max())
	}
	fmt.Println()
	return nil
}

func ablationIANS(e env) error {
	seed, sc := e.seed, e.sc
	fmt.Printf("== Ablation (§1 baseline): object-granularity (IANS) vs packet steering, web PLT (%d pages x %d loads) ==\n", sc.pages, sc.loads)
	fmt.Printf("%-14s %12s %12s\n", "policy", "mean_plt_ms", "p95_plt_ms")
	for _, policy := range []string{core.PolicyEMBBOnly, core.PolicyObjectMap, core.PolicyDChannel} {
		r, err := core.RunWeb(core.WebConfig{
			Seed: seed, Trace: "lowband-stationary", Policy: policy,
			Pages: sc.pages, Loads: sc.loads, Tracer: e.tracer,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %12.1f %12.1f\n", policy, r.PLT.Mean(), r.PLT.Percentile(95))
	}
	fmt.Println()
	return nil
}

func ablationHAS(e env) error {
	seed := e.seed
	fmt.Println("== Ablation (§1 IANS-for-HAS): adaptive streaming over mmwave-driving + URLLC, 60s media ==")
	fmt.Printf("%-12s %10s %12s %10s %10s %10s\n", "policy", "startup", "rebuffer", "events", "mean_mbps", "switches")
	rs, err := core.ABRComparison(seed, 60*time.Second, "mmwave-driving")
	if err != nil {
		return err
	}
	for _, r := range rs {
		fmt.Printf("%-12s %10v %12v %10d %10.2f %10d\n",
			r.Policy, r.StartupDelay.Round(time.Millisecond),
			r.RebufferTime.Round(time.Millisecond), r.RebufferEvents,
			r.MeanBitrate/1e6, r.Switches)
	}
	fmt.Println()
	return nil
}

func ablationTSN(e env) error {
	seed := e.seed
	fmt.Println("== Ablation (§2.2): wireless TSN vs contended best-effort Wi-Fi, 60ms control loops ==")
	fmt.Printf("%-14s %12s %12s %12s\n", "mode", "miss_rate", "p99_ms", "completed")
	for _, useTSN := range []bool{false, true} {
		r := core.RunTSN(seed, 10*time.Second, useTSN)
		fmt.Printf("%-14s %11.1f%% %12.1f %12d\n", r.Mode, 100*r.MissRate, r.P99Latency, r.Completed)
	}
	fmt.Println()
	return nil
}
