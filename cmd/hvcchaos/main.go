// Command hvcchaos soaks the simulator under randomized fault
// schedules with the runtime invariant layer (internal/invariant)
// armed: it generates fault schedules × experiments × seeds from a
// seeded meta-RNG, runs every trial across a worker pool, and — on a
// violation — shrinks the failing trial to a minimal counterexample
// and prints it as a replayable job string.
//
//	hvcchaos -jobs 256 -metaseed 1                  # soak
//	hvcchaos -budget 90s -metaseed 1 -jobs 100000   # CI: bounded soak
//	hvcchaos -repro "exp=outage policy=embb-only seed=7 dur=750ms reliable=true fault=outage:ch=embb,at=99ms,dur=376ms"
//
// The soak is deterministic: the same -metaseed yields the same job
// list and, under any -workers value, the same first finding. A
// finding exits 1; a clean soak exits 0.
//
// Every trial runs with a flight recorder on its telemetry stream: a
// finding (and a failed -repro) prints an hvc-flight/v1 dump of the
// last -flight events leading up to the violation, the violation
// itself appended as the final line. -progress emits machine-readable
// hvc-progress/v1 snapshot lines (trials done, trial-time quantiles)
// to stderr at the given interval without perturbing the soak.
//
// -seed-bug reintroduces a named, deliberately re-armed historical bug
// (see invariant.ParseBug) so the detection and shrinking pipeline can
// be demonstrated — and CI can prove it still works — end to end:
//
//	hvcchaos -seed-bug dup-deliver -metaseed 1 -jobs 64
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hvc/internal/chaos"
	"hvc/internal/flight"
	"hvc/internal/invariant"
	"hvc/internal/sketch"
	"hvc/internal/telemetry"
)

func main() {
	var (
		jobs     = flag.Int("jobs", 256, "number of trials to generate")
		metaseed = flag.Int64("metaseed", 1, "meta-RNG seed; the whole soak is a function of it")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		dur      = flag.Duration("dur", 4*time.Second, "virtual duration of each trial")
		budget   = flag.Duration("budget", 0, "wall-clock budget; 0 = run all jobs")
		repro    = flag.String("repro", "", "replay one job string instead of soaking")
		seedBug  = flag.String("seed-bug", "", "arm a named historical bug (e.g. dup-deliver)")
		verbose  = flag.Bool("v", false, "log per-batch progress to stderr")
		progress = flag.Duration("progress", 0, "emit hvc-progress/v1 snapshot lines (trials done, trial-time quantiles) to stderr at this interval; 0 disables")
		depth    = flag.Int("flight", flight.DefaultDepth, "flight-recorder depth: last-N telemetry events dumped with a finding or failed repro")
	)
	flag.Parse()

	if !invariant.Compiled {
		fmt.Fprintln(os.Stderr, "hvcchaos: built with -tags invariant_off; nothing to check")
		os.Exit(2)
	}
	invariant.SetEnabled(true)
	if *seedBug != "" {
		b, err := invariant.ParseBug(*seedBug)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hvcchaos: %v\n", err)
			os.Exit(2)
		}
		invariant.SetBug(b, true)
		fmt.Fprintf(os.Stderr, "hvcchaos: seeded bug %q armed\n", *seedBug)
	}

	if *repro != "" {
		j, err := chaos.ParseJob(*repro)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hvcchaos: %v\n", err)
			os.Exit(2)
		}
		rec, err := chaos.RunFlight(j, *depth)
		if err != nil {
			fmt.Printf("reproduced: %v\n  job: %s\n", err, j)
			dumpFlight(rec)
			os.Exit(1)
		}
		fmt.Printf("clean: %s\n", j)
		return
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "hvcchaos: "+format+"\n", args...)
		}
	}
	opts := chaos.Options{
		MetaSeed: *metaseed, Jobs: *jobs, Workers: *workers,
		Dur: *dur, Budget: *budget, Log: logf, FlightDepth: *depth,
	}
	stopProgress := func() {}
	if *progress > 0 {
		opts.Sketch = sketch.NewGroup()
		done := make(chan int, 1) // latest-value mailbox, lock-free sampling
		opts.Progress = func(d, total int) {
			select {
			case <-done:
			default:
			}
			done <- d
		}
		var last int
		stopProgress = telemetry.StartProgress(os.Stderr, *progress, func() telemetry.Progress {
			select {
			case d := <-done:
				last = d
			default:
			}
			return telemetry.Progress{
				Done: last, Total: *jobs,
				Sketches: telemetry.ProgressSketches(opts.Sketch.Snapshot()),
			}
		})
	}

	start := time.Now()
	finding, ran, err := chaos.Soak(opts)
	stopProgress()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hvcchaos: %v\n", err)
		os.Exit(2)
	}
	if finding != nil {
		fmt.Printf("FINDING after %d trials (%.1fs):\n%s\n", ran, time.Since(start).Seconds(), finding)
		fmt.Printf("\nreplay with:\n  hvcchaos -repro %q", finding.Minimal)
		if *seedBug != "" {
			fmt.Printf(" -seed-bug %s", *seedBug)
		}
		fmt.Println()
		dumpFlight(finding.Flight)
		os.Exit(1)
	}
	fmt.Printf("clean: %d trials, metaseed %d, %.1fs\n", ran, *metaseed, time.Since(start).Seconds())
}

// dumpFlight prints a recorder's last-N-events context after a finding
// or a failed repro. It goes to stdout below the replay line, so the
// repro string stays the last non-dump line CI and users extract.
func dumpFlight(rec *flight.Recorder) {
	if rec == nil || rec.Total() == 0 {
		return
	}
	fmt.Printf("\nflight recorder (last %d of %d events):\n", rec.Len(), rec.Total())
	if err := rec.Dump(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hvcchaos: flight dump: %v\n", err)
	}
}
