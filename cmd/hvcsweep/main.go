// Command hvcsweep runs experiment grids through the parallel sweep
// engine (internal/sweep): it expands a grid spec into independent
// (cell, seed) simulation jobs, fans them across a worker pool, and
// prints per-cell statistics (mean, std, median, 95% CI) aggregated in
// grid order — the output is byte-identical for any -workers value.
//
// The grid spec is a space-separated key=value list; list values are
// comma-separated and seeds take either a count or a range:
//
//	hvcsweep -spec "exp=bulk cc=cubic,bbr,vegas,vivace policy=dchannel,embb-only seeds=1..5 dur=15s"
//	hvcsweep -spec "exp=video policy=embb-only,dchannel,priority trace=lowband-driving seeds=10"
//	hvcsweep -spec "exp=web pages=6 loads=2 trace=lowband-driving,mmwave-driving seeds=1..3"
//	hvcsweep -spec "exp=abr trace=mmwave-driving seeds=1..5 dur=60s"
//	hvcsweep -spec "exp=outage policy=embb-only,redundant seeds=1..5 dur=8s fault=outage:ch=embb,at=2s,dur=1s"
//	hvcsweep -spec "exp=arena flows=4 mix=cubic,copa,bbr,reno join=1s rttspread=20ms seeds=1..5 dur=15s"
//
// The fault key (exp=outage only) takes an internal/fault scenario —
// space-free by construction, so it embeds in the spec; omitted, it
// defaults to two eMBB blackouts scaled to dur. The flows/mix/join/
// rttspread keys (exp=arena only) shape the contention run: competitor
// count, weighted CCA mix (cc:weight, assigned cyclically), join
// stagger, and RTT heterogeneity.
//
// The default grid is the paper's Figure 1a (four CCAs under DChannel
// steering vs eMBB-only) over five seeds.
//
// Results are cached on disk under -cache (default .hvcsweep), keyed
// by a content hash of the canonicalized cell config — experiment,
// CCA tuning constants, policy parameters, trace, seed, duration —
// plus the module build version. A repeated sweep is all cache hits;
// widening a grid re-runs only the new cells. Delete the cache
// directory to force recomputation; changing any simulator constant
// already invalidates affected entries via the config fingerprint.
//
// Stdout carries only the deterministic result table (or CSV with
// -format csv); progress and timing go to stderr. -json/-csv
// additionally write the hvc-sweep-report/v1 bundle and the tidy CSV
// matrix to files.
//
// With -fleet, -spec is instead an internal/fleet population spec and
// the run delegates to the fleet harness (the engine cmd/hvcfleet
// fronts): N derived UE sessions, sketch aggregation, and an
// hvc-fleet-report/v1 bundle from -json. -workers and -progress keep
// their meanings; the sweep-only knobs (cache, format, csv, quick) do
// not apply:
//
//	hvcsweep -fleet -spec "ues=2000 mix=bulk:2,web:1 dur=1s" -progress 2s
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"text/tabwriter"
	"time"

	"hvc/internal/fleet"
	"hvc/internal/prof"
	"hvc/internal/sketch"
	"hvc/internal/sweep"
	"hvc/internal/telemetry"
)

const defaultSpec = "exp=bulk cc=cubic,bbr,vegas,vivace policy=dchannel,embb-only seeds=1..5 dur=15s"

func main() {
	profile := prof.Register()
	var (
		specF    = flag.String("spec", defaultSpec, "grid spec (space-separated key=value; see package doc)")
		workers  = flag.Int("workers", 0, "worker goroutines; 0 means GOMAXPROCS")
		cache    = flag.String("cache", ".hvcsweep", "result cache directory")
		noCache  = flag.Bool("no-cache", false, "disable the result cache entirely")
		quick    = flag.Bool("quick", false, "shrink durations/corpus for smoke testing (5s runs, 2 pages x 1 load)")
		format   = flag.String("format", "table", "stdout format: table or csv")
		csvF     = flag.String("csv", "", "also write the tidy CSV matrix to this file")
		jsonF    = flag.String("json", "", "also write the hvc-sweep-report/v1 JSON bundle to this file")
		verbose  = flag.Bool("v", false, "report per-job progress on stderr")
		progress = flag.Duration("progress", 0, "emit hvc-progress/v1 snapshot lines (jobs, cache hits, live metric quantiles) to stderr at this interval; 0 disables")
		fleetF   = flag.Bool("fleet", false, "treat -spec as an internal/fleet population spec and run the fleet harness")
	)
	flag.Parse()
	if err := profile.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "hvcsweep: %v\n", err)
		os.Exit(1)
	}

	if *fleetF {
		specSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "spec" {
				specSet = true
			}
		})
		fleetSpec := *specF
		if !specSet {
			fleetSpec = "" // fleet defaults, not the sweep grid default
		}
		runFleet(fleetSpec, *workers, *jsonF, *progress)
		if err := profile.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "hvcsweep: profile: %v\n", err)
			os.Exit(1)
		}
		return
	}

	spec, err := sweep.ParseSpec(*specF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hvcsweep: %v\n", err)
		os.Exit(2)
	}
	if *quick {
		if spec.Exp == sweep.ExpWeb {
			spec.Pages, spec.Loads = 2, 1
		} else if spec.Dur > 5*time.Second {
			spec.Dur = 5 * time.Second
		}
	}

	opt := sweep.Options{Workers: *workers, CacheDir: *cache, Registry: telemetry.NewRegistry()}
	if *noCache {
		opt.CacheDir = ""
	}
	if *verbose {
		opt.Progress = func(done, total, cached int) {
			fmt.Fprintf(os.Stderr, "hvcsweep: %d/%d jobs (%d cached)\n", done, total, cached)
		}
	}
	stopProgress := func() {}
	if *progress > 0 {
		// The snapshot emitter samples counters the engine's progress
		// hook maintains plus the live metric sketches. It only observes:
		// the result table is byte-identical with or without it.
		opt.Sketch = sketch.NewGroup()
		var (
			mu                  sync.Mutex
			done, total, cached int
		)
		prev := opt.Progress
		opt.Progress = func(d, t, c int) {
			mu.Lock()
			done, total, cached = d, t, c
			mu.Unlock()
			if prev != nil {
				prev(d, t, c)
			}
		}
		stopProgress = telemetry.StartProgress(os.Stderr, *progress, func() telemetry.Progress {
			mu.Lock()
			d, t, c := done, total, cached
			mu.Unlock()
			return telemetry.Progress{
				Done: d, Total: t, Cached: c,
				Sketches: telemetry.ProgressSketches(opt.Sketch.Snapshot()),
			}
		})
	}

	start := time.Now()
	m, err := sweep.Run(spec, opt)
	stopProgress()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hvcsweep: %v\n", err)
		os.Exit(1)
	}

	switch *format {
	case "table":
		if err := printTable(m); err != nil {
			fmt.Fprintf(os.Stderr, "hvcsweep: %v\n", err)
			os.Exit(1)
		}
	case "csv":
		if err := m.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "hvcsweep: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "hvcsweep: unknown -format %q (want table or csv)\n", *format)
		os.Exit(2)
	}

	writeFile := func(path string, write func(*os.File) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err == nil {
			err = write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hvcsweep: %v\n", err)
			os.Exit(1)
		}
	}
	writeFile(*csvF, func(f *os.File) error { return m.WriteCSV(f) })
	writeFile(*jsonF, func(f *os.File) error { return m.WriteJSON(f) })

	executed, cached := counterTotals(opt.Registry)
	fmt.Fprintf(os.Stderr, "hvcsweep: %d jobs (%d executed, %d cached) across %d cells in %v\n",
		m.Jobs, executed, cached, len(m.Cells), time.Since(start).Round(time.Millisecond))
	if err := profile.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "hvcsweep: profile: %v\n", err)
		os.Exit(1)
	}
}

// runFleet is -fleet mode: the fleet harness behind the sweep CLI's
// flags. Same output contract as cmd/hvcfleet — deterministic table
// on stdout, hvc-fleet-report/v1 from -json, progress and timing on
// stderr.
func runFleet(specStr string, workers int, jsonPath string, progress time.Duration) {
	spec, err := fleet.ParseSpec(specStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hvcsweep: %v\n", err)
		os.Exit(2)
	}
	opt := fleet.Options{Workers: workers}
	stopProgress := func() {}
	if progress > 0 {
		opt.Sketch = sketch.NewGroup()
		var (
			mu          sync.Mutex
			done, total int
		)
		opt.Progress = func(d, t int) {
			mu.Lock()
			done, total = d, t
			mu.Unlock()
		}
		stopProgress = telemetry.StartProgress(os.Stderr, progress, func() telemetry.Progress {
			mu.Lock()
			d, t := done, total
			mu.Unlock()
			return telemetry.Progress{
				Done: d, Total: t,
				Sketches: telemetry.ProgressSketches(opt.Sketch.Snapshot()),
			}
		})
	}
	start := time.Now()
	res, err := fleet.Run(spec, opt)
	stopProgress()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hvcsweep: %v\n", err)
		os.Exit(1)
	}
	if err := res.WriteTable(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hvcsweep: %v\n", err)
		os.Exit(1)
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err == nil {
			err = res.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hvcsweep: %v\n", err)
			os.Exit(1)
		}
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "hvcsweep: fleet %d UEs in %v (%.1f UEs/sec)\n",
		res.UEs, elapsed.Round(time.Millisecond), float64(res.UEs)/elapsed.Seconds())
}

// counterTotals pulls the executed/cached split back out of the
// engine's progress counters.
func counterTotals(reg *telemetry.Registry) (executed, cached int) {
	for _, r := range reg.Snapshot() {
		if r.Name != "sweep/jobs" {
			continue
		}
		switch r.Labels["result"] {
		case "executed":
			executed = int(r.Value)
		case "cached":
			cached = int(r.Value)
		}
	}
	return executed, cached
}

// printTable renders the matrix as an aligned, deterministic table:
// one block per grid cell, one row per metric.
func printTable(m *sweep.Matrix) error {
	fmt.Printf("spec: %s\n", m.Spec)
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	for _, c := range m.Cells {
		fmt.Fprintf(tw, "\n%s\n", cellTitle(c))
		fmt.Fprintf(tw, "  metric\tmean\t±ci95\tmedian\tstd\t[min, max]\tn\n")
		for _, met := range c.Metrics {
			fmt.Fprintf(tw, "  %s\t%.4g\t%.4g\t%.4g\t%.4g\t[%.4g, %.4g]\t%d\n",
				met.Name, met.Mean, met.CI95, met.Median, met.Std, met.Min, met.Max, met.N)
		}
	}
	return tw.Flush()
}

func cellTitle(c sweep.Cell) string {
	s := "exp=" + c.Exp
	if c.CC != "" {
		s += " cc=" + c.CC
	}
	return s + " policy=" + c.Policy + " trace=" + c.Trace + " seeds=" + c.Seeds
}
