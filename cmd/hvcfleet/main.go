// Command hvcfleet simulates a fleet of independent UE sessions and
// reports population-level metric distributions: the operator's view
// of heterogeneous virtual channels, aggregated from thousands of
// deterministic per-UE simulations through mergeable sketches
// (internal/fleet).
//
// The fleet spec is a space-separated key=value list:
//
//	hvcfleet -spec "ues=10000 seed=1 mix=bulk:2,web:1 cc=bbr policy=dchannel,embb-only dur=2s"
//	hvcfleet -spec "ues=1000 mix=video:1 policy=dchannel trace=lowband-driving,mmwave-driving dur=4s"
//	hvcfleet -spec "ues=500 fault=outage:ch=embb,at=10s,dur=2s stagger=30s" -progress 2s
//
// Each UE's workload, steering policy, trace realization, seed, and
// start offset derive by pure hashing from (fleet seed, UE index), so
// the run is deterministic end to end: stdout's table and the -json
// report are byte-identical for any -workers or -shard value, with or
// without -progress. Progress lines (hvc-progress/v1, including a live
// UEs/sec rate and metric quantiles) go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"hvc/internal/fleet"
	"hvc/internal/prof"
	"hvc/internal/sketch"
	"hvc/internal/telemetry"
)

const defaultSpec = "ues=1000 seed=1"

func main() {
	profile := prof.Register()
	var (
		specF    = flag.String("spec", defaultSpec, "fleet spec (space-separated key=value; see package doc)")
		workers  = flag.Int("workers", 0, "worker goroutines; 0 means GOMAXPROCS")
		shard    = flag.Int("shard", 0, "UEs per pool job; 0 means the package default")
		jsonF    = flag.String("json", "", "also write the hvc-fleet-report/v1 JSON bundle to this file")
		progress = flag.Duration("progress", 0, "emit hvc-progress/v1 snapshot lines (UEs done, UEs/sec, live metric quantiles) to stderr at this interval; 0 disables")
	)
	flag.Parse()
	if err := profile.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "hvcfleet: %v\n", err)
		os.Exit(1)
	}

	spec, err := fleet.ParseSpec(*specF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hvcfleet: %v\n", err)
		os.Exit(2)
	}

	opt := fleet.Options{Workers: *workers, Shard: *shard}
	stopProgress := func() {}
	if *progress > 0 {
		// The snapshot emitter samples the completion counters and the
		// live sketches fed by completed shards. It only observes: the
		// table and report are byte-identical with or without it.
		opt.Sketch = sketch.NewGroup()
		var (
			mu          sync.Mutex
			done, total int
		)
		opt.Progress = func(d, t int) {
			mu.Lock()
			done, total = d, t
			mu.Unlock()
		}
		stopProgress = telemetry.StartProgress(os.Stderr, *progress, func() telemetry.Progress {
			mu.Lock()
			d, t := done, total
			mu.Unlock()
			return telemetry.Progress{
				Done: d, Total: t,
				Sketches: telemetry.ProgressSketches(opt.Sketch.Snapshot()),
			}
		})
	}

	start := time.Now()
	res, err := fleet.Run(spec, opt)
	stopProgress()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hvcfleet: %v\n", err)
		os.Exit(1)
	}

	if err := res.WriteTable(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hvcfleet: %v\n", err)
		os.Exit(1)
	}
	if *jsonF != "" {
		f, err := os.Create(*jsonF)
		if err == nil {
			err = res.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hvcfleet: %v\n", err)
			os.Exit(1)
		}
	}

	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "hvcfleet: %d UEs in %v (%.1f UEs/sec)\n",
		res.UEs, elapsed.Round(time.Millisecond), float64(res.UEs)/elapsed.Seconds())
	if err := profile.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "hvcfleet: profile: %v\n", err)
		os.Exit(1)
	}
}
