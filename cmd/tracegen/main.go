// Command tracegen emits synthetic 5G channel traces as CSV
// ("t_ms,rtt_ms,rate_mbps"), the format internal/trace reads back.
//
//	tracegen -name lowband-driving -seed 7 -dur 60s > drv.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hvc/internal/core"
)

func main() {
	var (
		name = flag.String("name", "lowband-driving", "trace generator (lowband-stationary, lowband-driving, mmwave-driving, fixed)")
		seed = flag.Int64("seed", 1, "generator seed")
		dur  = flag.Duration("dur", time.Minute, "trace duration")
	)
	flag.Parse()

	tr, err := core.NewTrace(*name, *seed, *dur)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\navailable: %v\n", err, core.TraceNames())
		os.Exit(2)
	}
	if err := tr.WriteCSV(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: write: %v\n", err)
		os.Exit(1)
	}
	mean, p98 := tr.RTTStats()
	fmt.Fprintf(os.Stderr, "tracegen: %s: %d samples, mean RTT %v, p98 RTT %v\n",
		tr.Name, len(tr.Samples), mean.Round(time.Millisecond), p98.Round(time.Millisecond))
}
