// Cloud gaming over HVCs: a 10-second session streaming 60 fps frames
// down and 60 Hz inputs up over a driving 5G trace plus URLLC,
// comparing steering policies on input-to-display latency — the
// interactive metric the paper's introduction opens with (cloud gaming
// wants <100 ms; XR <20 ms).
package main

import (
	"fmt"
	"time"

	"hvc/internal/app/game"
	"hvc/internal/channel"
	"hvc/internal/sim"
	"hvc/internal/steering"
	"hvc/internal/trace"
	"hvc/internal/transport"
)

func main() {
	fmt.Println("10s cloud-gaming session over lowband-driving eMBB + URLLC")
	fmt.Printf("%-12s %12s %12s %12s %10s\n",
		"policy", "i2d_p50_ms", "i2d_p95_ms", "i2d_max_ms", "lost")
	for _, policy := range []string{"embb-only", "dchannel", "priority"} {
		s := run(policy)
		fmt.Printf("%-12s %12.0f %12.0f %12.0f %10d\n",
			policy,
			s.InputToDisplay.Percentile(50),
			s.InputToDisplay.Percentile(95),
			s.InputToDisplay.Max(),
			s.FramesLost())
	}
	fmt.Println("\ninputs are priority-0 messages; frames priority 1. priority steering")
	fmt.Println("pins inputs to URLLC, so control stays crisp even when eMBB degrades.")
}

func run(policy string) *game.Session {
	loop := sim.NewLoop(21)
	g := channel.NewGroup(
		channel.EMBB(loop, trace.LowbandDriving(21, 30*time.Second)),
		channel.URLLC(loop),
	)
	mk := func(side channel.Side) steering.Policy {
		switch policy {
		case "dchannel":
			return steering.NewDChannel(g, side, steering.DChannelConfig{})
		case "priority":
			return steering.NewPriority(g, side, steering.PriorityConfig{AdmitPrio: 0})
		default:
			return steering.NewSingle(g.Get(channel.NameEMBB))
		}
	}

	client := transport.NewEndpoint(loop, g, channel.A)
	server := transport.NewEndpoint(loop, g, channel.B)

	conn := client.Dial(transport.Config{Steer: mk(channel.A), Unreliable: true, MsgTimeout: 10 * time.Second})
	s := game.NewSession(loop, conn, game.Config{Duration: 10 * time.Second})
	server.Listen(func() transport.Config {
		return transport.Config{Steer: mk(channel.B), Unreliable: true, MsgTimeout: 10 * time.Second}
	}, func(c *transport.Conn) { s.Attach(c) })

	s.Start()
	loop.RunUntil(25 * time.Second)
	return s
}
