// WAN-scale HVCs (§2.3): the same steering machinery applied to
// wide-area channel pairs — terrestrial fiber + a priced cISP-style
// microwave path, and terrestrial Internet + a LEO satellite path.
// A request/response workload shows how much latency each fast-but-
// narrow path buys and, for cISP, what it costs.
package main

import (
	"fmt"
	"time"

	"hvc/internal/cc"
	"hvc/internal/channel"
	"hvc/internal/metrics"
	"hvc/internal/sim"
	"hvc/internal/steering"
	"hvc/internal/transport"
)

func main() {
	fmt.Println("500 request/response exchanges (1kB up, 10kB down) per scenario")
	fmt.Printf("%-24s %10s %10s %12s\n", "scenario", "p50_ms", "p95_ms", "dollars")

	run("fiber only", func(loop *sim.Loop) (*channel.Group, func(channel.Side) steering.Policy) {
		fiber, mw := channel.CISP(loop)
		g := channel.NewGroup(fiber, mw)
		return g, func(channel.Side) steering.Policy { return steering.NewSingle(fiber) }
	})
	run("fiber + cISP (50kB/s)", func(loop *sim.Loop) (*channel.Group, func(channel.Side) steering.Policy) {
		fiber, mw := channel.CISP(loop)
		g := channel.NewGroup(fiber, mw)
		return g, func(side channel.Side) steering.Policy {
			return steering.NewCostAware(g, side, loop.Now, steering.CostAwareConfig{
				Cheap: fiber.Name(), Priced: mw.Name(), BudgetBytesPerSec: 50_000,
			})
		}
	})
	run("terrestrial only", func(loop *sim.Loop) (*channel.Group, func(channel.Side) steering.Policy) {
		terr, leo := channel.LEO(loop)
		g := channel.NewGroup(terr, leo)
		return g, func(channel.Side) steering.Policy { return steering.NewSingle(terr) }
	})
	run("terrestrial + LEO", func(loop *sim.Loop) (*channel.Group, func(channel.Side) steering.Policy) {
		terr, leo := channel.LEO(loop)
		g := channel.NewGroup(terr, leo)
		return g, func(side channel.Side) steering.Policy {
			return steering.NewDChannel(g, side, steering.DChannelConfig{
				Wide: terr.Name(), Narrow: leo.Name(),
			})
		}
	})
}

func run(name string, build func(*sim.Loop) (*channel.Group, func(channel.Side) steering.Policy)) {
	loop := sim.NewLoop(31)
	g, mkPolicy := build(loop)
	client := transport.NewEndpoint(loop, g, channel.A)
	server := transport.NewEndpoint(loop, g, channel.B)

	clientPolicy := mkPolicy(channel.A)
	server.Listen(func() transport.Config {
		return transport.Config{CC: cc.NewCubic(), Steer: mkPolicy(channel.B)}
	}, func(c *transport.Conn) {
		c.OnMessage(func(conn *transport.Conn, m transport.Message) {
			conn.SendMessage(m.Stream, 0, 10_000, m.Data)
		})
	})

	var lat metrics.Distribution
	conn := client.Dial(transport.Config{CC: cc.NewCubic(), Steer: clientPolicy})
	conn.OnMessage(func(_ *transport.Conn, m transport.Message) {
		sentAt := m.Data.(time.Duration)
		lat.AddDuration(loop.Now() - sentAt)
	})
	st := conn.NewStream()
	for i := 0; i < 500; i++ {
		loop.At(time.Duration(i)*20*time.Millisecond, func() {
			conn.SendMessage(st, 0, 1_000, loop.Now())
		})
	}
	loop.RunUntil(15 * time.Second)

	dollars := 0.0
	if ca, ok := clientPolicy.(*steering.CostAware); ok {
		dollars = ca.Cost()
	}
	fmt.Printf("%-24s %10.1f %10.1f %12.4f\n",
		name, lat.Percentile(50), lat.Percentile(95), dollars)
}
