// Quickstart: build two heterogeneous virtual channels (eMBB + URLLC),
// connect a client and server transport across them with DChannel
// packet steering, and send a message each way — the minimal end-to-end
// use of the library's public surface.
package main

import (
	"fmt"
	"time"

	"hvc/internal/cc"
	"hvc/internal/channel"
	"hvc/internal/sim"
	"hvc/internal/steering"
	"hvc/internal/transport"
)

func main() {
	// Everything runs in deterministic virtual time on one loop.
	loop := sim.NewLoop(42)

	// Two virtual channels: wide-but-slow eMBB (50 ms RTT, 60 Mbps)
	// and narrow-but-fast URLLC (5 ms RTT, 2 Mbps).
	group := channel.NewGroup(channel.EMBBFixed(loop), channel.URLLC(loop))

	// One endpoint per host; side A is the client.
	client := transport.NewEndpoint(loop, group, channel.A)
	server := transport.NewEndpoint(loop, group, channel.B)

	// The server echoes a short reply to every message it receives.
	server.Listen(func() transport.Config {
		return transport.Config{
			CC:    cc.NewCubic(),
			Steer: steering.NewDChannel(group, channel.B, steering.DChannelConfig{}),
		}
	}, func(conn *transport.Conn) {
		conn.OnMessage(func(c *transport.Conn, m transport.Message) {
			fmt.Printf("[%8v] server: got %q (%d bytes) after %v\n",
				loop.Now().Round(time.Millisecond), m.Data, m.Size, m.Latency().Round(time.Millisecond))
			c.SendMessage(m.Stream, 0, 2_000, "pong")
		})
	})

	// The client steers with the DChannel heuristic too: small
	// messages and ACKs ride URLLC, bulk spills onto eMBB.
	conn := client.Dial(transport.Config{
		CC:    cc.NewCubic(),
		Steer: steering.NewDChannel(group, channel.A, steering.DChannelConfig{}),
	})
	conn.OnMessage(func(_ *transport.Conn, m transport.Message) {
		fmt.Printf("[%8v] client: got %q back after %v\n",
			loop.Now().Round(time.Millisecond), m.Data, m.Latency().Round(time.Millisecond))
	})

	st := conn.NewStream()
	conn.SendMessage(st, 0, 1_000, "ping")       // small: accelerated
	conn.SendMessage(st, 2, 500_000, "big blob") // bulk: mostly eMBB

	loop.RunUntil(5 * time.Second)

	fmt.Printf("\nchannel use (client side):\n")
	for _, ch := range group.All() {
		st := ch.Stats(channel.A)
		fmt.Printf("  %-6s %5d packets up, %7d bytes delivered\n",
			ch.Name(), st.Sent, st.BytesDelivered)
	}
}
