// Web browsing with background flows: load a few pages over a driving
// 5G trace while a JSON uploader and downloader compete for URLLC —
// Table 1's setup in miniature, showing what the flow-priority hint
// buys.
package main

import (
	"fmt"
	"time"

	"hvc/internal/core"
)

func main() {
	fmt.Println("5 pages x 2 loads over lowband-driving eMBB + URLLC,")
	fmt.Println("with a 5 kB uploader and a 10 kB downloader running throughout")
	fmt.Printf("%-20s %12s %12s %14s\n", "policy", "mean_plt", "p95_plt", "bg transfers")

	for _, policy := range []string{
		core.PolicyEMBBOnly,
		core.PolicyDChannel,
		core.PolicyDChannelPriority,
	} {
		r, err := core.RunWeb(core.WebConfig{
			Seed:   11,
			Trace:  "lowband-driving",
			Policy: policy,
			Pages:  5,
			Loads:  2,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-20s %12v %10.0fms %14d\n",
			policy,
			r.MeanPLT.Round(time.Millisecond),
			r.PLT.Percentile(95),
			r.BgUploads+r.BgDownloads)
	}

	fmt.Println("\nembb-only leaves URLLC unused; dchannel accelerates the page but")
	fmt.Println("lets background JSON traffic queue on URLLC; the flow-priority hint")
	fmt.Println("(dchannel+priority) keeps URLLC clear for page-critical packets.")
}
