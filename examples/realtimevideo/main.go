// Real-time video over HVCs: stream 10 seconds of 3-layer SVC video
// (400/4100/7500 kbps at 30 fps) across an eMBB channel that suffers a
// mid-stream outage, plus URLLC — comparing eMBB-only, DChannel, and
// the paper's priority-aware steering. This is §3.3's first experiment
// in miniature.
package main

import (
	"fmt"
	"time"

	"hvc/internal/app/video"
	"hvc/internal/channel"
	"hvc/internal/sim"
	"hvc/internal/steering"
	"hvc/internal/trace"
	"hvc/internal/transport"
)

func main() {
	fmt.Println("10s of SVC video; eMBB dies from t=3s to t=6s, URLLC stays up")
	fmt.Printf("%-12s %10s %10s %10s %8s %8s\n",
		"policy", "p50_ms", "p95_ms", "max_ms", "ssim", "frozen")

	for _, policy := range []string{"embb-only", "dchannel", "priority"} {
		lat50, lat95, max, ssim, frozen := run(policy)
		fmt.Printf("%-12s %10.0f %10.0f %10.0f %8.3f %8d\n",
			policy, lat50, lat95, max, ssim, frozen)
	}
}

func run(policy string) (p50, p95, max, ssim float64, frozen int) {
	loop := sim.NewLoop(7)

	// eMBB: healthy, then a 3-second blockage, then healthy again.
	embbTrace := &trace.Trace{Name: "flaky-embb", Samples: []trace.Sample{
		{At: 0, RTT: 40 * time.Millisecond, Rate: 60e6},
		{At: 3 * time.Second, RTT: 40 * time.Millisecond, Rate: 0},
		{At: 6 * time.Second, RTT: 40 * time.Millisecond, Rate: 60e6},
		{At: 60 * time.Second, RTT: 40 * time.Millisecond, Rate: 60e6},
	}}
	group := channel.NewGroup(channel.EMBB(loop, embbTrace), channel.URLLC(loop))

	steer := func(side channel.Side) steering.Policy {
		switch policy {
		case "dchannel":
			return steering.NewDChannel(group, side, steering.DChannelConfig{})
		case "priority":
			// Layer 0 (priority 0) is forced onto URLLC; enhancement
			// layers ride eMBB. This is the paper's cross-layer rule.
			return steering.NewPriority(group, side, steering.PriorityConfig{AdmitPrio: 0})
		default:
			return steering.NewSingle(group.Get(channel.NameEMBB))
		}
	}

	client := transport.NewEndpoint(loop, group, channel.A)
	server := transport.NewEndpoint(loop, group, channel.B)

	vcfg := video.Config{Duration: 10 * time.Second}
	recv := video.NewReceiver(loop, vcfg)
	server.Listen(func() transport.Config {
		return transport.Config{Steer: steer(channel.B), Unreliable: true, MsgTimeout: 30 * time.Second}
	}, func(c *transport.Conn) { recv.Attach(c) })

	conn := client.Dial(transport.Config{Steer: steer(channel.A), Unreliable: true, MsgTimeout: 30 * time.Second})
	snd := video.NewSender(loop, conn, vcfg)
	snd.Start()

	loop.RunUntil(25 * time.Second) // drain the post-outage queue

	return recv.Latency.Percentile(50), recv.Latency.Percentile(95),
		recv.Latency.Max(), recv.SSIM.Mean(), recv.Frozen(snd.FrameCount())
}
