// CCA comparison under packet steering: reproduce Figure 1's pathology
// (delay-based congestion control collapsing when packets switch
// channels) and the paper's §3.2 remedy (HVC-aware RTT interpretation)
// in a single run.
package main

import (
	"fmt"
	"time"

	"hvc/internal/core"
)

func main() {
	const dur = 20 * time.Second
	fmt.Printf("bulk flow over eMBB(50ms/60Mbps)+URLLC(5ms/2Mbps), DChannel steering, %v\n\n", dur)
	fmt.Printf("%-12s %10s %28s\n", "cca", "mbps", "rtt p5 / p50 / p95 (ms)")

	for _, name := range []string{"cubic", "bbr", "vegas", "vivace", "hvc-bbr", "hvc-vegas"} {
		r, err := core.RunBulk(core.BulkConfig{Seed: 3, Duration: dur, CC: name})
		if err != nil {
			panic(err)
		}
		var d dist
		for _, p := range r.RTT.Points() {
			d.add(p.Value)
		}
		fmt.Printf("%-12s %10.2f %10.1f / %.1f / %.1f\n",
			name, r.Mbps, d.pct(5), d.pct(50), d.pct(95))
	}

	fmt.Println("\ncubic ignores delay and fills the wide channel; bbr/vegas/vivace")
	fmt.Println("misread cross-channel RTT jumps as congestion and collapse; the")
	fmt.Println("hvc-* variants filter RTT samples by channel and recover.")
}

// dist is a tiny percentile helper so the example stays self-contained.
type dist struct{ v []float64 }

func (d *dist) add(x float64) { d.v = append(d.v, x) }

func (d *dist) pct(p float64) float64 {
	if len(d.v) == 0 {
		return 0
	}
	// insertion sort is fine at example scale
	for i := 1; i < len(d.v); i++ {
		for j := i; j > 0 && d.v[j] < d.v[j-1]; j-- {
			d.v[j], d.v[j-1] = d.v[j-1], d.v[j]
		}
	}
	idx := int(p / 100 * float64(len(d.v)-1))
	return d.v[idx]
}
