module hvc

go 1.22
