// Package invariant is the cross-layer runtime checking subsystem: it
// lets every data-path layer (sim, netem, transport, steering, fault)
// assert the structural properties that must hold at all times —
// packet and byte conservation per link, exactly-once message
// delivery, cwnd/inflight accounting, monotonic virtual time,
// event-heap integrity, steering liveness — and turn any breach into
// an immediate, attributable failure instead of a silently wrong
// experiment result.
//
// The checks follow a strict cost discipline:
//
//   - Compiled out: building with -tags invariant_off makes Compiled a
//     false constant, so every "if invariant.Enabled()" guard folds
//     away and the binary carries zero overhead. The benchstat CI gate
//     builds this way.
//   - Compiled in, disabled (the default at runtime): one predictable
//     branch per check site.
//   - Enabled: checks run but never allocate on the success path; the
//     failure path builds a *Violation and panics, which the chaos
//     harness (internal/chaos) and the worker pool (internal/pool)
//     catch and attribute to the failing job. The chaos harness then
//     replays the shrunk counterexample under a flight recorder
//     (internal/flight), so every violation ships with the last
//     telemetry events leading up to the breach — the breach itself
//     appended as the dump's final line.
//
// Tests enable checking process-wide from TestMain via SetEnabled, so
// the whole suite doubles as an invariant soak. Enabled checking is
// read-only by construction: it must never change a simulation's
// observable behaviour, which the determinism matrix verifies.
//
// The package also hosts the seeded-bug switches (SetBug): deliberate,
// named reintroductions of once-fixed bugs that let the chaos-soak
// harness prove, end to end, that its detection and shrinking
// machinery actually works. Production code never sets them.
package invariant

import "fmt"

// enabled is the process-wide runtime switch. It is written only
// before a simulation or test run starts (TestMain, CLI main) and read
// from then on, so unsynchronized reads from worker goroutines are
// race-free.
var enabled bool

// Enabled reports whether invariant checking is active. When the
// package is compiled out (-tags invariant_off) this is a constant
// false and guarded check sites disappear entirely.
func Enabled() bool { return Compiled && enabled }

// SetEnabled switches runtime checking on or off. Call it before
// starting simulations — from TestMain or a CLI main — never
// concurrently with running loops. It has no effect when the package
// is compiled out.
func SetEnabled(on bool) { enabled = on }

// A Violation is the panic value of a failed invariant check: the
// layer that owns the invariant, the invariant's name, and a rendered
// detail string. It implements error so pool workers and the chaos
// harness can surface it through ordinary error paths.
type Violation struct {
	// Layer names the owning subsystem: "sim", "netem", "transport",
	// "steering", "fault".
	Layer string
	// Name identifies the invariant, e.g. "conservation",
	// "exactly-once", "monotonic-time".
	Name string
	// Detail describes the specific breach.
	Detail string
}

// Error renders the violation as layer/name: detail.
func (v *Violation) Error() string {
	return fmt.Sprintf("invariant violated: %s/%s: %s", v.Layer, v.Name, v.Detail)
}

// Failf reports an invariant breach: it panics with a *Violation
// carrying the formatted detail. Call it only from a check site that
// has already established the breach — the allocation happens on the
// failure path alone.
func Failf(layer, name, format string, args ...any) {
	panic(&Violation{Layer: layer, Name: name, Detail: fmt.Sprintf(format, args...)})
}

// Seeded-bug switches ------------------------------------------------

// A Bug names one deliberate, reintroducible defect. Bugs are a
// bitmask so the hot-path test is a single AND.
type Bug uint32

const (
	// BugDupDeliver disables the receiver's completed-message dedup
	// (the doneMsgs check PR 5 introduced), reintroducing the real
	// duplicate-delivery bug where a retransmitted copy of an
	// already-delivered message delivers again. The chaos harness uses
	// it to prove its detection and shrinking pipeline end to end.
	BugDupDeliver Bug = 1 << iota
)

// bugNames maps the CLI spelling of each seeded bug to its bit.
var bugNames = map[string]Bug{
	"dup-deliver": BugDupDeliver,
}

// bugs is the active seeded-bug set. Like enabled, it is written only
// before a run starts.
var bugs Bug

// BugEnabled reports whether the named seeded bug is active. Compiled
// out, it is constant false: seeded bugs cannot ship in an
// invariant_off build.
func BugEnabled(b Bug) bool { return Compiled && bugs&b != 0 }

// SetBug activates or clears one seeded bug. Call it only before
// starting simulations.
func SetBug(b Bug, on bool) {
	if on {
		bugs |= b
	} else {
		bugs &^= b
	}
}

// ParseBug resolves a seeded bug's CLI name ("dup-deliver").
func ParseBug(name string) (Bug, error) {
	if b, ok := bugNames[name]; ok {
		return b, nil
	}
	return 0, fmt.Errorf("invariant: unknown seeded bug %q", name)
}
