package invariant

import (
	"errors"
	"strings"
	"testing"
)

func TestEnabledFollowsSwitch(t *testing.T) {
	defer SetEnabled(enabled)
	SetEnabled(false)
	if Enabled() {
		t.Fatal("Enabled() true after SetEnabled(false)")
	}
	SetEnabled(true)
	if Compiled && !Enabled() {
		t.Fatal("Enabled() false after SetEnabled(true) in a compiled-in build")
	}
}

func TestFailfPanicsWithViolation(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Failf did not panic")
		}
		v, ok := r.(*Violation)
		if !ok {
			t.Fatalf("panic value %T, want *Violation", r)
		}
		if v.Layer != "netem" || v.Name != "conservation" {
			t.Fatalf("violation = %+v", v)
		}
		if want := "invariant violated: netem/conservation: link \"embb\": 3 != 4"; v.Error() != want {
			t.Fatalf("Error() = %q, want %q", v.Error(), want)
		}
	}()
	Failf("netem", "conservation", "link %q: %d != %d", "embb", 3, 4)
}

func TestViolationIsError(t *testing.T) {
	var err error = &Violation{Layer: "sim", Name: "monotonic-time", Detail: "t went backwards"}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatal("errors.As failed to extract *Violation")
	}
	if !strings.Contains(err.Error(), "monotonic-time") {
		t.Fatalf("Error() = %q", err.Error())
	}
}

func TestBugSwitches(t *testing.T) {
	defer SetBug(BugDupDeliver, false)
	if BugEnabled(BugDupDeliver) {
		t.Fatal("seeded bug active by default")
	}
	SetBug(BugDupDeliver, true)
	if Compiled && !BugEnabled(BugDupDeliver) {
		t.Fatal("BugEnabled false after SetBug(true)")
	}
	SetBug(BugDupDeliver, false)
	if BugEnabled(BugDupDeliver) {
		t.Fatal("BugEnabled true after SetBug(false)")
	}
}

func TestParseBug(t *testing.T) {
	b, err := ParseBug("dup-deliver")
	if err != nil || b != BugDupDeliver {
		t.Fatalf("ParseBug(dup-deliver) = %v, %v", b, err)
	}
	if _, err := ParseBug("no-such-bug"); err == nil {
		t.Fatal("ParseBug accepted an unknown name")
	}
}
