//go:build invariant_off

package invariant

// Compiled is false in an invariant_off build: Enabled() and
// BugEnabled() become constant false and the checks vanish.
const Compiled = false
