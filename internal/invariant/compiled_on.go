//go:build !invariant_off

package invariant

// Compiled reports whether invariant checking is compiled into the
// binary. The default build carries the checks (inert until
// SetEnabled); -tags invariant_off makes this a false constant so
// every guarded check site is eliminated by the compiler.
const Compiled = true
