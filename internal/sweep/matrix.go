package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"hvc/internal/core"
)

// MatrixSchema identifies the sweep-report JSON layout. Bump it when a
// field changes meaning; additive fields keep the version.
const MatrixSchema = "hvc-sweep-report/v1"

// A Matrix is one sweep's aggregated result: per-cell multi-seed
// statistics in grid order. Both serializations are deterministic —
// byte-identical for any worker count — which the determinism test
// suite pins.
type Matrix struct {
	Schema string `json:"schema"`
	// Spec is the canonical grid spec (ParseSpec round-trips it).
	Spec string `json:"spec"`
	// Jobs counts the grid's (cell, seed) simulations.
	Jobs  int    `json:"jobs"`
	Cells []Cell `json:"cells"`
}

// A Cell is one grid cell's aggregate over its seed range.
type Cell struct {
	Exp     string       `json:"exp"`
	CC      string       `json:"cc,omitempty"`
	Policy  string       `json:"policy"`
	Trace   string       `json:"trace"`
	Seeds   string       `json:"seeds"`
	Metrics []CellMetric `json:"metrics"`
}

// A CellMetric is one named statistic aggregated across seeds.
type CellMetric struct {
	Name string `json:"name"`
	core.Summary
}

// WriteJSON serializes the matrix as an hvc-sweep-report/v1 bundle,
// indented, trailing newline.
func (m *Matrix) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ParseMatrix reads a bundle WriteJSON produced, rejecting other
// schemas.
func ParseMatrix(r io.Reader) (*Matrix, error) {
	var m Matrix
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("sweep: matrix: %w", err)
	}
	if m.Schema != MatrixSchema {
		return nil, fmt.Errorf("sweep: matrix schema %q, want %q", m.Schema, MatrixSchema)
	}
	return &m, nil
}

// WriteCSV serializes the matrix tidy — one row per (cell, metric) —
// for direct loading into dataframe tooling.
func (m *Matrix) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "exp,cc,policy,trace,seeds,metric,n,mean,std,min,max,median,ci95\n"); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, c := range m.Cells {
		for _, mt := range c.Metrics {
			row := fmt.Sprintf("%s,%s,%s,%s,%s,%s,%d,%s,%s,%s,%s,%s,%s\n",
				c.Exp, c.CC, c.Policy, c.Trace, c.Seeds, mt.Name,
				mt.N, g(mt.Mean), g(mt.Std), g(mt.Min), g(mt.Max), g(mt.Median), g(mt.CI95))
			if _, err := io.WriteString(w, row); err != nil {
				return err
			}
		}
	}
	return nil
}
