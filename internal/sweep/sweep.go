package sweep

import (
	"errors"
	"fmt"
	"sync"

	"hvc/internal/core"
	"hvc/internal/pool"
	"hvc/internal/sketch"
	"hvc/internal/telemetry"
)

// Options configure one sweep run. The zero value runs on GOMAXPROCS
// workers with no cache, no counters, and no progress reporting.
type Options struct {
	// Workers caps the worker goroutines; <= 0 means GOMAXPROCS. The
	// worker count never affects the result: the matrix is aggregated
	// in grid order, not completion order.
	Workers int
	// CacheDir roots the result cache (conventionally ".hvcsweep");
	// empty disables caching. See cache.go for the invalidation rule.
	CacheDir string
	// Registry, when non-nil, receives progress counters:
	// sweep/jobs{result=executed|cached} and the sweep/jobs_total
	// gauge.
	Registry *telemetry.Registry
	// Progress, when non-nil, is called after every finished job with
	// the done count so far, the total, and how many of the done jobs
	// were cache hits. Calls are serialized but their interleaving
	// across cells follows completion order, so Progress must not be
	// used to build deterministic output.
	Progress func(done, total, cached int)
	// Sketch, when non-nil, receives every completed job's metric
	// values (one Observe per MetricValue, under the metric's name), so
	// a live progress surface can report converging quantiles while the
	// sweep runs. Observation order follows completion order; the
	// quantities progress lines read from a sketch (count, quantiles)
	// are order-independent, and the Matrix never reads the group, so
	// results stay byte-identical with or without one.
	Sketch *sketch.Group
}

// testRunJob, when non-nil, replaces job.run — it lets tests inject
// job-level failures that no validated spec can produce.
var testRunJob func(job) ([]MetricValue, error)

// Run expands the spec's grid into one job per (cell, seed), executes
// the jobs across a worker pool — each simulation loop is
// single-threaded and self-contained — and aggregates per-cell
// statistics over seeds. The returned Matrix is deterministic:
// bit-identical for any worker count and any cache state, because
// cells aggregate in grid order over per-seed values in seed order.
func Run(spec Spec, opt Options) (*Matrix, error) {
	if err := spec.defaultAndValidate(); err != nil {
		return nil, err
	}
	cells := spec.cells()
	jobs := make([]job, 0, len(cells)*spec.SeedCount)
	for _, c := range cells {
		for i := 0; i < spec.SeedCount; i++ {
			jobs = append(jobs, job{spec: spec, cell: c, seed: spec.SeedFirst + int64(i)})
		}
	}

	run := job.run
	if testRunJob != nil {
		run = testRunJob
	}
	var (
		mu     sync.Mutex
		cached int
	)
	opt.Registry.Set("sweep/jobs_total", float64(len(jobs)))
	// The done count comes from the pool's completion hook; the cached
	// count is updated by the job body just before it returns, so by the
	// time the hook fires for a job its cache outcome is counted.
	var onDone func(done int)
	if opt.Progress != nil {
		onDone = func(done int) {
			mu.Lock()
			c := cached
			mu.Unlock()
			opt.Progress(done, len(jobs), c)
		}
	}
	results, err := pool.MapProgress(len(jobs), opt.Workers, onDone, func(i int) ([]MetricValue, error) {
		j := jobs[i]
		metrics, hit := cacheLoad(opt.CacheDir, j)
		if !hit {
			var err error
			metrics, err = run(j)
			if err != nil {
				return nil, err
			}
			if err := cacheStore(opt.CacheDir, j, metrics); err != nil {
				return nil, err
			}
		}
		for _, mv := range metrics {
			opt.Sketch.Observe(mv.Name, mv.Value)
		}
		mu.Lock()
		if hit {
			cached++
			opt.Registry.Add("sweep/jobs", 1, "result", "cached")
		} else {
			opt.Registry.Add("sweep/jobs", 1, "result", "executed")
		}
		mu.Unlock()
		return metrics, nil
	})
	if err != nil {
		var pe *pool.Error
		if errors.As(err, &pe) {
			j := jobs[pe.Index]
			return nil, fmt.Errorf("sweep: %s: seed %d: %w", j.cell.describe(spec.Exp), j.seed, pe.Err)
		}
		return nil, err
	}

	m := &Matrix{Schema: MatrixSchema, Spec: spec.String(), Jobs: len(jobs)}
	for ci, c := range cells {
		cell := Cell{
			Exp: spec.Exp, CC: c.CC, Policy: c.Policy, Trace: c.Trace,
			Seeds: fmt.Sprintf("%d..%d", spec.SeedFirst, spec.SeedFirst+int64(spec.SeedCount)-1),
		}
		// Every seed of a cell reports the same metrics in the same
		// order; aggregate each metric over the seeds in seed order.
		first := results[ci*spec.SeedCount]
		for mi, mv := range first {
			vals := make([]float64, spec.SeedCount)
			for si := 0; si < spec.SeedCount; si++ {
				vals[si] = results[ci*spec.SeedCount+si][mi].Value
			}
			cell.Metrics = append(cell.Metrics, CellMetric{Name: mv.Name, Summary: core.Summarize(vals)})
		}
		m.Cells = append(m.Cells, cell)
	}
	return m, nil
}

// describe renders a cell for error messages and progress output.
func (c cellKey) describe(exp string) string {
	s := "exp=" + exp
	if c.CC != "" {
		s += " cc=" + c.CC
	}
	return s + " policy=" + c.Policy + " trace=" + c.Trace
}
