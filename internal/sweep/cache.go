package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The disk cache stores one JSON file per completed job under
// <dir>/v1/<sha256-of-key>.json. The file embeds the full canonical
// key, so a hit is verified against the key text, not just the hash.
//
// Cache-invalidation rule: a job's key folds in (1) the cell config —
// experiment, cc, policy, trace, seed, durations; (2) the canonical
// tuning fingerprints of the congestion control and steering policy
// (cc.Configured / steering Canonical methods — bump their "/vN" tags
// for behavior changes their fields don't capture); (3) the cellSchema
// tag; and (4) the build's module version/VCS revision when stamped.
// Simulator changes outside those fingerprints are NOT detected in
// unstamped dev builds: delete the cache directory (or pass
// -no-cache) after such changes. The directory is always safe to
// delete; every cell can be recomputed.

// cacheEntry is the on-disk layout of one cached job result.
type cacheEntry struct {
	Key     string        `json:"key"`
	Metrics []MetricValue `json:"metrics"`
}

// cacheLoad returns the cached metrics for a job, or ok=false on any
// miss — absent file, unreadable JSON, or key mismatch. A corrupt
// entry is treated as a miss, never an error: the job just re-runs.
// The bad file itself is deleted on the spot, because it can never
// become a hit again — its hash is the job key's, so a key mismatch
// means the entry is lying about its identity, and unparseable JSON
// means a torn or bit-rotted write that the atomic-rename writer
// would not have produced. Leaving it would re-fail every sweep.
func cacheLoad(dir string, j job) ([]MetricValue, bool) {
	if dir == "" {
		return nil, false
	}
	key := j.key()
	path := cacheKeyPath(dir, key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false // absent (the common miss): nothing to clean
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Key != key || e.Metrics == nil {
		os.Remove(path)
		return nil, false
	}
	return e.Metrics, true
}

// cacheStore writes a job's metrics, creating the directory as needed.
// The write goes through a unique temp file and a rename, so readers
// never see a partial entry even with concurrent sweeps.
func cacheStore(dir string, j job, metrics []MetricValue) error {
	if dir == "" {
		return nil
	}
	key := j.key()
	path := cacheKeyPath(dir, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("sweep: cache: %w", err)
	}
	data, err := json.MarshalIndent(cacheEntry{Key: key, Metrics: metrics}, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: cache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("sweep: cache: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache write: %v, %v", werr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache: %w", err)
	}
	return nil
}

func cachePath(dir string, j job) string {
	return cacheKeyPath(dir, j.key())
}

// cacheKeyPath addresses an already-rendered key, so load/store build
// the key exactly once per lookup.
func cacheKeyPath(dir, key string) string {
	return filepath.Join(dir, "v1", hashKey(key)+".json")
}
