package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hvc/internal/core"
	"hvc/internal/sketch"
	"hvc/internal/telemetry"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// videoGrid is the workhorse test spec: video jobs cost milliseconds,
// so a 2×2×3-job grid keeps the suite fast while still exercising
// multi-axis expansion.
const videoGrid = "exp=video policy=embb-only,dchannel trace=lowband-driving,mmwave-driving seeds=1..3 dur=5s"

func mustParse(t *testing.T, s string) Spec {
	t.Helper()
	spec, err := ParseSpec(s)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", s, err)
	}
	return spec
}

func TestParseSpecCanonicalRoundTrip(t *testing.T) {
	cases := []struct {
		in        string
		canonical string
	}{
		{"exp=bulk", "exp=bulk cc=cubic policy=dchannel trace=fixed seeds=1..1 dur=15s"},
		{"exp=bulk cc=bbr,cubic seeds=7", "exp=bulk cc=bbr,cubic policy=dchannel trace=fixed seeds=7..7 dur=15s"},
		{"exp=video dur=90s seeds=2..4", "exp=video policy=dchannel trace=lowband-driving seeds=2..4 dur=1m30s"},
		{"exp=web pages=3 loads=1", "exp=web policy=dchannel trace=lowband-stationary seeds=1..1 pages=3 loads=1"},
		{"exp=abr trace=lowband-walking", "exp=abr policy=dchannel trace=lowband-walking seeds=1..1 dur=1m0s"},
		{"seeds=-2..1 exp=video", "exp=video policy=dchannel trace=lowband-driving seeds=-2..1 dur=20s"},
		{"exp=outage", "exp=outage policy=embb-only,dchannel,redundant trace=fixed seeds=1..1 dur=8s " +
			"fault=outage:ch=embb,at=2s,dur=1s;outage:ch=embb,at=5s,dur=1s"},
		{"exp=outage dur=4s policy=redundant fault=burst:ch=urllc,at=1s,dur=2s,pgb=0.5",
			"exp=outage policy=redundant trace=fixed seeds=1..1 dur=4s " +
				"fault=burst:ch=urllc,at=1s,dur=2s,pgb=0.5,pbg=0.25,loss=1,lossgood=0"},
		{"exp=arena", "exp=arena policy=dchannel trace=fixed seeds=1..1 dur=15s flows=2 mix=cubic:1 join=0s rttspread=0s"},
		{"exp=arena flows=4 mix=cubic:2,bbr join=250ms rttspread=20ms dur=4s seeds=1..2",
			"exp=arena policy=dchannel trace=fixed seeds=1..2 dur=4s flows=4 mix=cubic:2,bbr:1 join=250ms rttspread=20ms"},
	}
	for _, c := range cases {
		spec := mustParse(t, c.in)
		if got := spec.String(); got != c.canonical {
			t.Errorf("ParseSpec(%q).String() = %q, want %q", c.in, got, c.canonical)
			continue
		}
		back := mustParse(t, spec.String())
		if back.String() != spec.String() {
			t.Errorf("canonical form not a fixed point: %q -> %q", spec.String(), back.String())
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	bad := []string{
		"",                               // no exp
		"exp=quantum",                    // unknown experiment
		"exp=bulk exp=bulk",              // duplicate key
		"exp=bulk cc=cubic,cubic",        // duplicate value
		"exp=bulk cc=",                   // empty value
		"exp=bulk frob=1",                // unknown key
		"exp=bulk cc",                    // not key=value
		"exp=bulk seeds=5..1",            // inverted range
		"exp=bulk seeds=a..b",            // junk seeds
		"exp=bulk dur=fast",              // junk duration
		"exp=bulk dur=-5s",               // negative duration
		"exp=bulk pages=4",               // pages outside web
		"exp=web dur=5s",                 // dur on web
		"exp=video cc=cubic",             // cc outside bulk
		"exp=web policy=priority",        // policy web rejects
		"exp=bulk cc=tcp-tahoe",          // unknown cc
		"exp=bulk policy=random",         // unknown policy
		"exp=bulk trace=starlink",        // unknown trace
		"exp=bulk pages=0",               // non-positive int
		"exp=bulk seeds=1..900000000000", // range cap
		"exp=bulk fault=outage:ch=embb,at=0s,dur=1s",   // fault outside outage
		"exp=outage fault=meteor:ch=embb,at=0s,dur=1s", // unknown fault kind
		"exp=outage fault=outage:ch=leo,at=0s,dur=1s",  // channel the runner lacks
		"exp=outage trace=lowband-driving",             // outage is fixed-trace only
		"exp=outage pages=2",                           // pages outside web
		"exp=bulk flows=4",                             // arena knobs outside arena
		"exp=video mix=cubic",                          // arena knobs outside arena
		"exp=bulk join=1s",                             // arena knobs outside arena
		"exp=arena cc=cubic",                           // arena's CCA knob is mix, not cc
		"exp=arena flows=0",                            // non-positive flows
		"exp=arena flows=65",                           // over the arena flow cap
		"exp=arena mix=tcp-tahoe",                      // unknown cc in mix
		"exp=arena mix=cubic,cubic",                    // duplicate mix entry
		"exp=arena join=-1s",                           // negative duration
		"exp=arena flows=2 join=10s dur=5s",            // last join after dur
		"exp=arena pages=2",                            // pages outside web
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", s)
		}
	}
}

func TestRunMatrixBytesInvariantUnderWorkerCount(t *testing.T) {
	spec := mustParse(t, videoGrid)
	render := func(workers int) (jsonB, csvB []byte) {
		t.Helper()
		m, err := Run(spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := m.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), c.Bytes()
	}
	j1, c1 := render(1)
	for _, workers := range []int{2, 8} {
		jn, cn := render(workers)
		if !bytes.Equal(j1, jn) {
			t.Fatalf("JSON matrix differs between workers=1 and workers=%d", workers)
		}
		if !bytes.Equal(c1, cn) {
			t.Fatalf("CSV matrix differs between workers=1 and workers=%d", workers)
		}
	}
}

func TestRunCellOrderAndAggregation(t *testing.T) {
	spec := mustParse(t, videoGrid)
	m, err := Run(spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs != 2*2*3 {
		t.Fatalf("jobs = %d, want 12", m.Jobs)
	}
	wantCells := []struct{ policy, trace string }{
		{"embb-only", "lowband-driving"},
		{"embb-only", "mmwave-driving"},
		{"dchannel", "lowband-driving"},
		{"dchannel", "mmwave-driving"},
	}
	if len(m.Cells) != len(wantCells) {
		t.Fatalf("%d cells, want %d", len(m.Cells), len(wantCells))
	}
	for i, w := range wantCells {
		c := m.Cells[i]
		if c.Policy != w.policy || c.Trace != w.trace || c.Seeds != "1..3" || c.Exp != "video" {
			t.Fatalf("cell %d = %+v, want policy=%s trace=%s", i, c, w.policy, w.trace)
		}
		if len(c.Metrics) == 0 || c.Metrics[0].Name != "latency_p50_ms" {
			t.Fatalf("cell %d metrics %+v", i, c.Metrics)
		}
		for _, mt := range c.Metrics {
			if mt.N != 3 {
				t.Fatalf("cell %d metric %s aggregated %d seeds, want 3", i, mt.Name, mt.N)
			}
		}
	}

	// Spot-check one cell against direct serial runs through core: the
	// engine must aggregate exactly the per-seed values.
	var vals []float64
	for seed := int64(1); seed <= 3; seed++ {
		r, err := core.RunVideo(core.VideoConfig{
			Seed: seed, Duration: 5 * time.Second,
			Trace: "lowband-driving", Policy: core.PolicyEMBBOnly,
		})
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, r.Latency.Percentile(50))
	}
	want := core.Summarize(vals)
	if got := m.Cells[0].Metrics[0].Summary; got != want {
		t.Fatalf("cell aggregate %+v, want serial %+v", got, want)
	}
}

// TestRunOutageGrid runs the fault experiment end to end through the
// engine: the outage metrics come back in their fixed order, and the
// aggregate reproduces the acceptance result — replication stalls
// strictly less than the single-channel baseline under the blackout.
func TestRunOutageGrid(t *testing.T) {
	spec := mustParse(t, "exp=outage policy=embb-only,redundant seeds=1..2 dur=4s")
	m, err := Run(spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs != 2*2 {
		t.Fatalf("jobs = %d, want 4", m.Jobs)
	}
	if len(m.Cells) != 2 {
		t.Fatalf("%d cells, want 2", len(m.Cells))
	}
	wantMetrics := []string{"delivery_rate", "stall_ms", "delay_p50_ms", "delay_p99_ms"}
	stall := map[string]float64{}
	for _, c := range m.Cells {
		for i, mt := range c.Metrics {
			if mt.Name != wantMetrics[i] {
				t.Fatalf("cell %s metric %d = %s, want %s", c.Policy, i, mt.Name, wantMetrics[i])
			}
		}
		stall[c.Policy] = c.Metrics[1].Mean
	}
	if stall["redundant"] >= stall["embb-only"] {
		t.Fatalf("redundant stall %.1fms not below embb-only %.1fms",
			stall["redundant"], stall["embb-only"])
	}
}

// TestRunArenaGridWorkerInvariance is the arena acceptance gate at the
// sweep layer: a four-flow mixed-CCA contention grid produces a
// byte-identical matrix on one worker and four, and its fixed metric
// set leads with the fairness numbers.
func TestRunArenaGridWorkerInvariance(t *testing.T) {
	spec := mustParse(t, "exp=arena flows=4 mix=cubic,copa,bbr,reno join=250ms rttspread=20ms dur=4s seeds=1..2")
	render := func(workers int) []byte {
		t.Helper()
		m, err := Run(spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := m.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	b1 := render(1)
	if !bytes.Equal(b1, render(4)) {
		t.Fatal("arena matrix differs between workers=1 and workers=4")
	}

	m, err := Run(spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs != 2 || len(m.Cells) != 1 {
		t.Fatalf("jobs=%d cells=%d, want 2 jobs in 1 cell", m.Jobs, len(m.Cells))
	}
	wantMetrics := []string{"jain", "converged", "convergence_s",
		"goodput_total_mbps", "goodput_min_mbps", "goodput_max_mbps"}
	c := m.Cells[0]
	if len(c.Metrics) != len(wantMetrics) {
		t.Fatalf("arena cell metrics %+v, want %v", c.Metrics, wantMetrics)
	}
	for i, mt := range c.Metrics {
		if mt.Name != wantMetrics[i] {
			t.Fatalf("metric %d = %s, want %s", i, mt.Name, wantMetrics[i])
		}
	}
	jain := c.Metrics[0].Summary
	if jain.Mean <= 0 || jain.Mean > 1 {
		t.Fatalf("jain mean %v out of (0,1]", jain.Mean)
	}
	if tot := c.Metrics[3].Summary; tot.Mean <= 0 {
		t.Fatalf("arena moved no bytes: %+v", tot)
	}
}

func TestRunServesSecondSweepFromCache(t *testing.T) {
	dir := filepath.Join(t.TempDir(), ".hvcsweep")
	spec := mustParse(t, "exp=video policy=dchannel trace=lowband-driving seeds=1..2 dur=5s")

	reg1 := telemetry.NewRegistry()
	m1, err := Run(spec, Options{Workers: 4, CacheDir: dir, Registry: reg1})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg1.Value("sweep/jobs", "result", "executed"); got != 2 {
		t.Fatalf("first sweep executed %v jobs, want 2", got)
	}
	if got := reg1.Value("sweep/jobs", "result", "cached"); got != 0 {
		t.Fatalf("first sweep had %v cache hits, want 0", got)
	}

	reg2 := telemetry.NewRegistry()
	var lastDone, lastCached int
	m2, err := Run(spec, Options{Workers: 4, CacheDir: dir, Registry: reg2,
		Progress: func(done, total, cached int) { lastDone, lastCached = done, cached }})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg2.Value("sweep/jobs", "result", "cached"); got != 2 {
		t.Fatalf("second sweep had %v cache hits, want 2 (all)", got)
	}
	if got := reg2.Value("sweep/jobs", "result", "executed"); got != 0 {
		t.Fatalf("second sweep executed %v jobs, want 0", got)
	}
	if lastDone != 2 || lastCached != 2 {
		t.Fatalf("progress reported done=%d cached=%d, want 2, 2", lastDone, lastCached)
	}

	var b1, b2 bytes.Buffer
	if err := m1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := m2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("cached sweep produced different matrix bytes")
	}
}

// TestRunFeedsSketchGroupWithoutPerturbingMatrix checks the live
// quantile surface: every job's metrics land in the group (one
// observation per job per metric), and attaching a group leaves the
// matrix byte-identical to a sweep without one.
func TestRunFeedsSketchGroupWithoutPerturbingMatrix(t *testing.T) {
	spec := mustParse(t, "exp=video policy=embb-only,dchannel trace=lowband-driving seeds=1..3 dur=5s")

	plain, err := Run(spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	g := sketch.NewGroup()
	sketched, err := Run(spec, Options{Workers: 4, Sketch: g})
	if err != nil {
		t.Fatal(err)
	}

	var b1, b2 bytes.Buffer
	if err := plain.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := sketched.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("attaching a sketch group changed the matrix bytes")
	}

	sums := g.Snapshot()
	if len(sums) == 0 {
		t.Fatal("sketch group saw no observations")
	}
	byName := map[string]uint64{}
	for _, s := range sums {
		byName[s.Name] = s.N
	}
	// 2 cells × 3 seeds = 6 jobs; every job reports every video metric.
	for _, name := range []string{"latency_p50_ms", "latency_p99_ms"} {
		if byName[name] != 6 {
			t.Fatalf("sketch %q saw %d observations, want 6 (snapshot: %+v)", name, byName[name], sums)
		}
	}
}

func TestRunWidensCacheOnlyPerCell(t *testing.T) {
	// Iterating on one axis value must reuse every cell already
	// computed: adding a policy re-runs only the new column.
	dir := filepath.Join(t.TempDir(), ".hvcsweep")
	base := mustParse(t, "exp=video policy=dchannel trace=lowband-driving seeds=1..2 dur=5s")
	if _, err := Run(base, Options{CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	wider := mustParse(t, "exp=video policy=dchannel,embb-only trace=lowband-driving seeds=1..2 dur=5s")
	reg := telemetry.NewRegistry()
	if _, err := Run(wider, Options{CacheDir: dir, Registry: reg}); err != nil {
		t.Fatal(err)
	}
	if hits := reg.Value("sweep/jobs", "result", "cached"); hits != 2 {
		t.Fatalf("widened sweep reused %v jobs, want 2", hits)
	}
	if ran := reg.Value("sweep/jobs", "result", "executed"); ran != 2 {
		t.Fatalf("widened sweep executed %v jobs, want 2 (the new column)", ran)
	}
}

func TestRunCorruptCacheEntryReRuns(t *testing.T) {
	dir := filepath.Join(t.TempDir(), ".hvcsweep")
	spec := mustParse(t, "exp=video policy=dchannel trace=lowband-driving seeds=1..1 dur=5s")
	if _, err := Run(spec, Options{CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "v1", "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache files %v, %v", files, err)
	}
	if err := writeFile(files[0], "{not json"); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	if _, err := Run(spec, Options{CacheDir: dir, Registry: reg}); err != nil {
		t.Fatal(err)
	}
	if ran := reg.Value("sweep/jobs", "result", "executed"); ran != 1 {
		t.Fatalf("corrupt entry was not re-run (executed=%v)", ran)
	}
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	if _, err := Run(Spec{Exp: ExpVideo, Dur: -time.Second, SeedCount: 1}, Options{}); err == nil {
		t.Fatal("invalid hand-built spec accepted")
	}
	if _, err := Run(Spec{}, Options{}); err == nil {
		t.Fatal("zero spec accepted")
	}
}

func TestRunErrorNamesCellAndSeed(t *testing.T) {
	// Inject a failure at one seed: the engine must report the first
	// failing job in grid order, naming its cell and seed, regardless
	// of worker count.
	defer func() { testRunJob = nil }()
	testRunJob = func(j job) ([]MetricValue, error) {
		if j.seed >= 2 && j.cell.Policy == "dchannel" {
			return nil, fmt.Errorf("simulated trace corruption")
		}
		return []MetricValue{{"x", float64(j.seed)}}, nil
	}
	spec := mustParse(t, "exp=video policy=embb-only,dchannel trace=lowband-driving seeds=1..3 dur=5s")
	for _, workers := range []int{1, 4} {
		_, err := Run(spec, Options{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: job failure not propagated", workers)
		}
		for _, want := range []string{"policy=dchannel", "trace=lowband-driving", "seed 2", "simulated trace corruption"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("workers=%d: error %q missing %q", workers, err, want)
			}
		}
	}
}

func TestJobKeyIncludesFingerprintsAndSeed(t *testing.T) {
	spec := mustParse(t, "exp=bulk cc=bbr seeds=3 dur=2s")
	j := job{spec: spec, cell: cellKey{CC: "bbr", Policy: "dchannel", Trace: "fixed"}, seed: 3}
	key := j.key()
	for _, want := range []string{cellSchema, "cc=bbr", "seed=3", "cc-config=bbr/v1", "policy-config=dchannel/v1", "code="} {
		if !strings.Contains(key, want) {
			t.Errorf("job key missing %q:\n%s", want, key)
		}
	}
	j2 := j
	j2.seed = 4
	if j.hash() == j2.hash() {
		t.Fatal("different seeds share a cache hash")
	}
}

// TestJobKeyFoldsArenaMix pins the arena knobs into the cache address:
// the key carries flows/mix/join/rttspread plus one CCA fingerprint per
// mix entry, and jobs differing only in a knob never share a hash.
func TestJobKeyFoldsArenaMix(t *testing.T) {
	spec := mustParse(t, "exp=arena flows=4 mix=cubic,bbr join=250ms rttspread=20ms dur=4s seeds=1")
	j := job{spec: spec, cell: cellKey{Policy: "dchannel", Trace: "fixed"}, seed: 1}
	key := j.key()
	for _, want := range []string{"flows=4", "mix=cubic:1,bbr:1", "join=250ms", "rttspread=20ms",
		"cc-config=cubic/", "cc-config=bbr/"} {
		if !strings.Contains(key, want) {
			t.Errorf("arena job key missing %q:\n%s", want, key)
		}
	}
	for _, alt := range []string{
		"exp=arena flows=4 mix=cubic,reno join=250ms rttspread=20ms dur=4s seeds=1",
		"exp=arena flows=3 mix=cubic,bbr join=250ms rttspread=20ms dur=4s seeds=1",
		"exp=arena flows=4 mix=cubic,bbr join=300ms rttspread=20ms dur=4s seeds=1",
		"exp=arena flows=4 mix=cubic,bbr join=250ms rttspread=10ms dur=4s seeds=1",
	} {
		j2 := j
		j2.spec = mustParse(t, alt)
		if j.hash() == j2.hash() {
			t.Errorf("arena jobs share a cache hash despite differing specs:\n%s\nvs\n%s", j.key(), j2.key())
		}
	}
}

// TestJobKeyFoldsFaultScenario pins the fault axis into the cache
// address: outage jobs that differ only in scenario must not share a
// cached result.
func TestJobKeyFoldsFaultScenario(t *testing.T) {
	spec := mustParse(t, "exp=outage policy=redundant seeds=1 dur=4s")
	j := job{spec: spec, cell: cellKey{Policy: "redundant", Trace: "fixed"}, seed: 1}
	if !strings.Contains(j.key(), "fault="+spec.Fault) {
		t.Fatalf("job key missing fault scenario:\n%s", j.key())
	}
	j2 := j
	j2.spec.Fault = "outage:ch=urllc,at=1s,dur=500ms"
	if j.hash() == j2.hash() {
		t.Fatal("different fault scenarios share a cache hash")
	}
}

func TestCacheLoadQuarantinesBadEntries(t *testing.T) {
	dir := t.TempDir()
	spec := mustParse(t, "exp=video policy=dchannel trace=lowband-driving seeds=1..1 dur=5s")
	j := job{spec: spec, cell: cellKey{Policy: "dchannel", Trace: "lowband-driving"}, seed: 1}
	want := []MetricValue{{Name: "latency_p50_ms", Value: 12.5}}

	// Round trip: a stored entry loads back verbatim.
	if err := cacheStore(dir, j, want); err != nil {
		t.Fatal(err)
	}
	got, ok := cacheLoad(dir, j)
	if !ok || len(got) != 1 || got[0] != want[0] {
		t.Fatalf("cacheLoad after store = %v, %v", got, ok)
	}

	path := cachePath(dir, j)
	exists := func() bool { _, err := os.Stat(path); return err == nil }

	// Corrupt JSON: miss, and the file is deleted so the next sweep
	// does not trip over it again.
	if err := writeFile(path, "{torn write"); err != nil {
		t.Fatal(err)
	}
	if _, ok := cacheLoad(dir, j); ok {
		t.Fatal("corrupt entry reported as a hit")
	}
	if exists() {
		t.Fatal("corrupt entry not deleted")
	}

	// Key mismatch under the right hash: an entry lying about its
	// identity is deleted too.
	other := j
	other.seed = 2
	entry, err := json.Marshal(cacheEntry{Key: other.key(), Metrics: want})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, string(entry)); err != nil {
		t.Fatal(err)
	}
	if _, ok := cacheLoad(dir, j); ok {
		t.Fatal("key-mismatched entry reported as a hit")
	}
	if exists() {
		t.Fatal("key-mismatched entry not deleted")
	}

	// Plain absence stays a quiet miss.
	if _, ok := cacheLoad(dir, j); ok {
		t.Fatal("absent entry reported as a hit")
	}

	// The quarantine is per-entry: storing again restores the hit.
	if err := cacheStore(dir, j, want); err != nil {
		t.Fatal(err)
	}
	if _, ok := cacheLoad(dir, j); !ok {
		t.Fatal("re-stored entry missed")
	}
}
