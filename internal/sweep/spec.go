// Package sweep is the parallel experiment-grid engine: it expands a
// grid spec (experiment × congestion control × steering policy ×
// trace × seed range) into independent simulation jobs, fans them
// across a worker pool, and aggregates per-cell statistics in a
// deterministic order — the output is bit-identical for any worker
// count. A content-addressed disk cache (see cache.go) makes repeated
// sweeps incremental: iterating on one policy re-runs only its column.
//
// This is the machinery evaluation toolkits in the space (ZEUS,
// CoCo-Beholder) build around a testbed; here the "testbed" is the
// repo's deterministic simulator, which is what makes byte-identical
// parallel aggregation possible at all.
package sweep

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"hvc/internal/arena"
	"hvc/internal/channel"
	"hvc/internal/core"
	"hvc/internal/fault"
)

// Experiment kinds a Spec can sweep. Each maps to one internal/core
// runner and a fixed, ordered set of per-job metrics (see job.go).
const (
	ExpBulk   = "bulk"   // core.RunBulk: Fig. 1 bulk flow
	ExpVideo  = "video"  // core.RunVideo: Fig. 2 real-time SVC video
	ExpWeb    = "web"    // core.RunWeb: Table 1 page loads
	ExpABR    = "abr"    // core.RunABR: adaptive streaming ablation
	ExpOutage = "outage" // core.RunOutage: frames through fault scenarios
	ExpArena  = "arena"  // arena.Run: multi-flow contention and fairness
)

// maxSeeds bounds a spec's seed range so a typo cannot expand into an
// unbounded job list.
const maxSeeds = 1_000_000

// A Spec describes one experiment grid. The zero value is invalid;
// build specs with ParseSpec or populate every applicable field and
// call Validate.
type Spec struct {
	// Exp is the experiment kind: bulk, video, web, or abr.
	Exp string
	// CCs lists congestion-control algorithms (bulk only; the other
	// workloads fix CUBIC, as the paper does).
	CCs []string
	// Policies lists steering policies (see core.NewPolicy).
	Policies []string
	// Traces lists eMBB traces (see core.TraceNames).
	Traces []string
	// SeedFirst..SeedFirst+SeedCount-1 are the seeds each cell runs.
	SeedFirst int64
	SeedCount int
	// Dur is the run duration (bulk, video, outage) or media length
	// (abr); unused for web.
	Dur time.Duration
	// Pages and Loads size the web corpus; unused otherwise.
	Pages, Loads int
	// Fault is the fault scenario (internal/fault grammar, outage
	// only). Empty defaults to the standard two-blackout schedule
	// scaled to Dur; stored canonically.
	Fault string
	// Flows, Mix, Join, and RTTSpread shape the arena contention run
	// (arena only): competitor count, weighted CCA mix (arena mix
	// grammar, stored canonically), join stagger, and RTT heterogeneity.
	// The cc axis does not apply to arena — the mix is its CCA knob.
	Flows           int
	Mix             string
	Join, RTTSpread time.Duration
}

// specKeys is the canonical key order String emits and the complete
// set ParseSpec accepts.
var specKeys = []string{"exp", "cc", "policy", "trace", "seeds", "dur", "pages", "loads", "fault", "flows", "mix", "join", "rttspread"}

// ParseSpec parses the grid-spec syntax: space-separated key=value
// fields, list values comma-separated, for example
//
//	exp=bulk cc=cubic,bbr policy=dchannel,embb-only seeds=1..5 dur=15s
//
// Keys: exp (bulk|video|web|abr|outage|arena), cc, policy, trace,
// seeds (N or A..B inclusive), dur (Go duration), pages, loads, fault
// (an internal/fault scenario, outage only), flows, mix, join,
// rttspread (arena contention knobs, arena only). Unknown keys,
// duplicate keys, duplicate list values, and names the core package
// does not accept are errors. Omitted axes default per experiment
// (see Default). The result is validated and canonical: parsing the
// String of a parsed spec yields the same spec.
func ParseSpec(s string) (Spec, error) {
	spec := Spec{SeedFirst: 1, SeedCount: 1}
	seen := map[string]bool{}
	for _, field := range strings.Fields(s) {
		key, val, ok := strings.Cut(field, "=")
		if !ok || val == "" {
			return Spec{}, fmt.Errorf("sweep: field %q is not key=value", field)
		}
		if seen[key] {
			return Spec{}, fmt.Errorf("sweep: duplicate key %q", key)
		}
		seen[key] = true
		switch key {
		case "exp":
			spec.Exp = val
		case "cc":
			list, err := parseList(key, val)
			if err != nil {
				return Spec{}, err
			}
			spec.CCs = list
		case "policy":
			list, err := parseList(key, val)
			if err != nil {
				return Spec{}, err
			}
			spec.Policies = list
		case "trace":
			list, err := parseList(key, val)
			if err != nil {
				return Spec{}, err
			}
			spec.Traces = list
		case "seeds":
			first, count, err := parseSeeds(val)
			if err != nil {
				return Spec{}, err
			}
			spec.SeedFirst, spec.SeedCount = first, count
		case "dur":
			d, err := time.ParseDuration(val)
			if err != nil {
				return Spec{}, fmt.Errorf("sweep: dur %q: %v", val, err)
			}
			spec.Dur = d
		case "pages", "loads":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return Spec{}, fmt.Errorf("sweep: %s %q is not a positive integer", key, val)
			}
			if key == "pages" {
				spec.Pages = n
			} else {
				spec.Loads = n
			}
		case "fault":
			spec.Fault = val
		case "flows":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return Spec{}, fmt.Errorf("sweep: flows %q is not a positive integer", val)
			}
			spec.Flows = n
		case "mix":
			spec.Mix = val
		case "join", "rttspread":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Spec{}, fmt.Errorf("sweep: %s %q is not a non-negative duration", key, val)
			}
			if key == "join" {
				spec.Join = d
			} else {
				spec.RTTSpread = d
			}
		default:
			return Spec{}, fmt.Errorf("sweep: unknown key %q (valid: %s)", key, strings.Join(specKeys, ", "))
		}
	}
	if err := spec.defaultAndValidate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

func parseList(key, val string) ([]string, error) {
	parts := strings.Split(val, ",")
	seen := map[string]bool{}
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("sweep: %s has an empty list element", key)
		}
		if seen[p] {
			return nil, fmt.Errorf("sweep: %s lists %q twice", key, p)
		}
		seen[p] = true
	}
	return parts, nil
}

func parseSeeds(val string) (first int64, count int, err error) {
	lo, hi, ranged := strings.Cut(val, "..")
	a, err := strconv.ParseInt(lo, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("sweep: seeds %q: bad start", val)
	}
	if !ranged {
		return a, 1, nil
	}
	b, err := strconv.ParseInt(hi, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("sweep: seeds %q: bad end", val)
	}
	if b < a {
		return 0, 0, fmt.Errorf("sweep: seeds %q: end below start", val)
	}
	// b-a can wrap for extreme ranges (a very negative, b very
	// positive); a negative difference is exactly that overflow.
	if d := b - a; d < 0 || d > maxSeeds-1 {
		return 0, 0, fmt.Errorf("sweep: seeds %q spans more than %d seeds", val, maxSeeds)
	}
	return a, int(b - a + 1), nil
}

// defaultAndValidate fills per-experiment defaults, then checks every
// axis value against the core package's accepted names.
func (s *Spec) defaultAndValidate() error {
	switch s.Exp {
	case ExpBulk:
		if s.CCs == nil {
			s.CCs = []string{"cubic"}
		}
		if s.Policies == nil {
			s.Policies = []string{core.PolicyDChannel}
		}
		if s.Traces == nil {
			s.Traces = []string{"fixed"}
		}
		if s.Dur == 0 {
			s.Dur = 15 * time.Second
		}
	case ExpVideo:
		if s.Policies == nil {
			s.Policies = []string{core.PolicyDChannel}
		}
		if s.Traces == nil {
			s.Traces = []string{"lowband-driving"}
		}
		if s.Dur == 0 {
			s.Dur = 20 * time.Second
		}
	case ExpWeb:
		if s.Policies == nil {
			s.Policies = []string{core.PolicyDChannel}
		}
		if s.Traces == nil {
			s.Traces = []string{"lowband-stationary"}
		}
		if s.Pages == 0 {
			s.Pages = 6
		}
		if s.Loads == 0 {
			s.Loads = 2
		}
	case ExpABR:
		if s.Policies == nil {
			s.Policies = []string{core.PolicyDChannel}
		}
		if s.Traces == nil {
			s.Traces = []string{"mmwave-driving"}
		}
		if s.Dur == 0 {
			s.Dur = 60 * time.Second
		}
	case ExpOutage:
		if s.Policies == nil {
			s.Policies = []string{core.PolicyEMBBOnly, core.PolicyDChannel, core.PolicyRedundant}
		}
		if s.Traces == nil {
			s.Traces = []string{"fixed"}
		}
		if s.Dur == 0 {
			s.Dur = 8 * time.Second
		}
	case ExpArena:
		if s.Policies == nil {
			s.Policies = []string{core.PolicyDChannel}
		}
		if s.Traces == nil {
			s.Traces = []string{"fixed"}
		}
		if s.Dur == 0 {
			s.Dur = 15 * time.Second
		}
		if s.Flows == 0 {
			s.Flows = 2
		}
		if s.Mix == "" {
			s.Mix = "cubic"
		}
	case "":
		return fmt.Errorf("sweep: spec needs exp=bulk|video|web|abr|outage|arena")
	default:
		return fmt.Errorf("sweep: unknown experiment %q (bulk, video, web, abr, outage, arena)", s.Exp)
	}

	if s.Exp != ExpBulk && s.CCs != nil {
		return fmt.Errorf("sweep: cc axis only applies to exp=bulk")
	}
	if s.Exp == ExpWeb {
		if s.Dur != 0 {
			return fmt.Errorf("sweep: dur does not apply to exp=web (use pages/loads)")
		}
	} else if s.Pages != 0 || s.Loads != 0 {
		return fmt.Errorf("sweep: pages/loads only apply to exp=web")
	}
	if s.Exp == ExpArena {
		// Delegate the contention knobs to the arena's own validator (it
		// owns the mix grammar, flow bounds, and the last-join-fits-in-dur
		// rule), then store the mix canonically (cc:weight form) so String
		// and the cache key are exact.
		as, err := arena.ParseSpec(fmt.Sprintf("flows=%d mix=%s join=%s rttspread=%s dur=%s",
			s.Flows, s.Mix, s.Join, s.RTTSpread, s.Dur))
		if err != nil {
			return err
		}
		s.Mix = arena.MixString(as.Mix)
	} else if s.Flows != 0 || s.Mix != "" || s.Join != 0 || s.RTTSpread != 0 {
		return fmt.Errorf("sweep: flows/mix/join/rttspread only apply to exp=arena")
	}
	if s.Exp == ExpOutage {
		// Canonicalize the scenario (or materialize the default blackout
		// schedule) so String and the cache key name the exact faults the
		// jobs will run.
		fs, err := fault.ParseSpec(s.Fault)
		if err != nil {
			return err
		}
		if fs.Empty() {
			fs = fault.Default(channel.NameEMBB, s.Dur)
		}
		for _, ev := range fs.Events {
			if ev.Channel != channel.NameEMBB && ev.Channel != channel.NameURLLC {
				return fmt.Errorf("sweep: fault names channel %q; exp=outage runs %s+%s",
					ev.Channel, channel.NameEMBB, channel.NameURLLC)
			}
		}
		s.Fault = fs.String()
	} else if s.Fault != "" {
		return fmt.Errorf("sweep: fault only applies to exp=outage")
	}
	if s.Dur < 0 {
		return fmt.Errorf("sweep: negative dur")
	}
	if s.SeedCount < 1 || s.SeedCount > maxSeeds {
		return fmt.Errorf("sweep: seed count %d out of range", s.SeedCount)
	}

	for _, cc := range s.CCs {
		if !core.ValidCC(cc) {
			return fmt.Errorf("sweep: unknown congestion control %q", cc)
		}
	}
	for _, p := range s.Policies {
		if !core.ValidPolicy(p) {
			return fmt.Errorf("sweep: unknown steering policy %q", p)
		}
		if s.Exp == ExpWeb && p == core.PolicyPriority {
			return fmt.Errorf("sweep: exp=web does not support policy %q", p)
		}
	}
	valid := map[string]bool{}
	for _, tr := range core.TraceNames() {
		valid[tr] = true
	}
	for _, tr := range s.Traces {
		if !valid[tr] {
			return fmt.Errorf("sweep: unknown trace %q", tr)
		}
		if s.Exp == ExpOutage && tr != "fixed" {
			return fmt.Errorf("sweep: exp=outage only supports trace=fixed")
		}
	}
	return nil
}

// String renders the spec canonically: every applicable key, fixed
// order, seeds always as A..B. ParseSpec(s.String()) reproduces s.
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "exp=%s", s.Exp)
	if s.Exp == ExpBulk {
		fmt.Fprintf(&b, " cc=%s", strings.Join(s.CCs, ","))
	}
	fmt.Fprintf(&b, " policy=%s", strings.Join(s.Policies, ","))
	fmt.Fprintf(&b, " trace=%s", strings.Join(s.Traces, ","))
	fmt.Fprintf(&b, " seeds=%d..%d", s.SeedFirst, s.SeedFirst+int64(s.SeedCount)-1)
	if s.Exp == ExpWeb {
		fmt.Fprintf(&b, " pages=%d loads=%d", s.Pages, s.Loads)
	} else {
		fmt.Fprintf(&b, " dur=%s", s.Dur)
	}
	if s.Exp == ExpOutage {
		fmt.Fprintf(&b, " fault=%s", s.Fault)
	}
	if s.Exp == ExpArena {
		fmt.Fprintf(&b, " flows=%d mix=%s join=%s rttspread=%s", s.Flows, s.Mix, s.Join, s.RTTSpread)
	}
	return b.String()
}

// cells enumerates the grid's cells in deterministic order: cc
// outermost, then policy, then trace, each in spec order. Non-bulk
// experiments have a single empty cc value.
func (s Spec) cells() []cellKey {
	ccs := s.CCs
	if len(ccs) == 0 {
		ccs = []string{""}
	}
	var out []cellKey
	for _, cc := range ccs {
		for _, p := range s.Policies {
			for _, tr := range s.Traces {
				out = append(out, cellKey{CC: cc, Policy: p, Trace: tr})
			}
		}
	}
	return out
}

// A cellKey identifies one cell of the grid (every axis except seed).
type cellKey struct {
	CC, Policy, Trace string
}
