package sweep

import (
	"reflect"
	"testing"
)

// FuzzSweepSpecParse exercises the grid-spec parser with arbitrary
// input: it must never panic, and any spec it accepts must round-trip
// — the canonical String reparses to the same spec and is a fixed
// point.
func FuzzSweepSpecParse(f *testing.F) {
	f.Add("exp=bulk cc=cubic,bbr,vegas,vivace policy=dchannel,embb-only seeds=1..5 dur=15s")
	f.Add("exp=video policy=priority trace=mmwave-driving seeds=3 dur=20s")
	f.Add("exp=web pages=6 loads=2 trace=lowband-stationary,lowband-driving")
	f.Add("exp=abr trace=lowband-walking seeds=-4..-1")
	f.Add("exp=bulk")
	f.Add("exp=bulk seeds=1..9223372036854775807")
	f.Add("exp=web dur=5s")
	f.Add("cc=cubic")
	f.Add("exp=bulk cc=cubic cc=bbr")
	f.Add("  exp=bulk\t dur=1h  ")
	f.Add("exp=bulk dur=1ns seeds=0")
	f.Add("exp=outage policy=redundant,embb-only seeds=1..3 dur=8s")
	f.Add("exp=outage fault=outage:ch=embb,at=1s,dur=500ms;burst:ch=urllc,at=2s,dur=1s,pgb=0.3")
	f.Add("exp=outage fault=none")
	f.Add("exp=video fault=outage:ch=embb,at=1s,dur=1s")
	f.Add("exp=arena flows=4 mix=cubic:2,bbr join=250ms rttspread=20ms dur=4s seeds=1..2")
	f.Add("exp=arena")
	f.Add("exp=arena mix=cubic,cubic")
	f.Add("exp=arena flows=2 join=10s dur=5s")
	f.Add("exp=bulk flows=4")
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := ParseSpec(in)
		if err != nil {
			return // rejected: fine, as long as no panic
		}
		canonical := spec.String()
		back, err := ParseSpec(canonical)
		if err != nil {
			t.Fatalf("canonical form rejected: %q -> %q: %v", in, canonical, err)
		}
		if !reflect.DeepEqual(back, spec) {
			t.Fatalf("round-trip changed the spec:\n in: %+v\nout: %+v", spec, back)
		}
		if again := back.String(); again != canonical {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canonical, again)
		}
	})
}
