package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"hvc/internal/arena"
	"hvc/internal/core"
	"hvc/internal/trace"
)

// cellSchema versions the job key layout and the metric set each
// experiment reports. Bump it when either changes: every cached cell
// invalidates at once.
const cellSchema = "hvc-sweep-cell/v2"

// A job is one independent simulation: a cell at one seed.
type job struct {
	spec Spec
	cell cellKey
	seed int64
}

// A MetricValue is one scalar a job produced. Jobs of the same
// experiment kind report the same metrics in the same order.
type MetricValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// key renders the job's canonical identity: everything that determines
// its result. The config fingerprints fold in the tuning constants of
// the congestion control and steering policy under test, so cached
// results invalidate when those change (see cache.go for the rule).
func (j job) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", cellSchema)
	fmt.Fprintf(&b, "exp=%s", j.spec.Exp)
	if j.cell.CC != "" {
		fmt.Fprintf(&b, " cc=%s", j.cell.CC)
	}
	fmt.Fprintf(&b, " policy=%s trace=%s seed=%d", j.cell.Policy, j.cell.Trace, j.seed)
	if j.spec.Exp == ExpWeb {
		fmt.Fprintf(&b, " pages=%d loads=%d", j.spec.Pages, j.spec.Loads)
	} else {
		fmt.Fprintf(&b, " dur=%s", j.spec.Dur)
	}
	if j.spec.Exp == ExpOutage {
		fmt.Fprintf(&b, " fault=%s", j.spec.Fault)
	}
	if j.spec.Exp == ExpArena {
		fmt.Fprintf(&b, " flows=%d mix=%s join=%s rttspread=%s",
			j.spec.Flows, j.spec.Mix, j.spec.Join, j.spec.RTTSpread)
	}
	b.WriteString("\n")
	if j.cell.CC != "" {
		fp, _ := core.CCFingerprint(j.cell.CC)
		fmt.Fprintf(&b, "cc-config=%s\n", fp)
	}
	if j.spec.Exp == ExpArena {
		// Arena cells have no cc axis; the mix is the CCA knob, so every
		// algorithm it names folds its fingerprint in, in mix order.
		mix, _ := arena.ParseMix(j.spec.Mix)
		for _, e := range mix {
			fp, _ := core.CCFingerprint(e.CC)
			fmt.Fprintf(&b, "cc-config=%s\n", fp)
		}
	}
	fp, _ := core.PolicyFingerprint(j.cell.Policy)
	fmt.Fprintf(&b, "policy-config=%s\n", fp)
	fmt.Fprintf(&b, "code=%s\n", codeVersion())
	return b.String()
}

// hashKey is a rendered key's cache address: its SHA-256. Callers
// render the key once and reuse it for both the address and the hit
// check — key() walks the config fingerprints, so rebuilding it per
// lookup is what made the cached-sweep path regress.
func hashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// hash is the job's cache address: SHA-256 of its canonical key.
func (j job) hash() string {
	return hashKey(j.key())
}

var codeVersionOnce = struct {
	sync.Once
	v string
}{}

// codeVersion identifies the simulator build in cache keys. Module
// version and VCS revision are stamped into release builds; a dev
// build without them relies on the fingerprints and schema tags above,
// plus the documented rule that .hvcsweep/ is cheap to delete. The
// build info cannot change while the process runs, so it is read once:
// debug.ReadBuildInfo re-parses the embedded module data on every
// call, which dominated cached-sweep lookups.
func codeVersion() string {
	codeVersionOnce.Do(func() {
		info, ok := debug.ReadBuildInfo()
		if !ok {
			codeVersionOnce.v = "unknown"
			return
		}
		version, revision := info.Main.Version, ""
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				revision = s.Value
			}
		}
		codeVersionOnce.v = version + "+" + revision
	})
	return codeVersionOnce.v
}

// run executes the job's simulation and returns its metrics, in the
// experiment kind's fixed order.
func (j job) run() ([]MetricValue, error) {
	switch j.spec.Exp {
	case ExpBulk:
		var embb *trace.Trace
		if j.cell.Trace != "fixed" {
			tr, err := core.NewTrace(j.cell.Trace, j.seed, j.spec.Dur+time.Second)
			if err != nil {
				return nil, err
			}
			embb = tr
		}
		r, err := core.RunBulk(core.BulkConfig{
			Seed: j.seed, Duration: j.spec.Dur, CC: j.cell.CC,
			Policy: j.cell.Policy, EMBB: embb,
		})
		if err != nil {
			return nil, err
		}
		return []MetricValue{
			{"goodput_mbps", r.Mbps},
			{"retransmits", float64(r.Retransmits)},
			{"rtos", float64(r.RTOs)},
		}, nil
	case ExpVideo:
		r, err := core.RunVideo(core.VideoConfig{
			Seed: j.seed, Duration: j.spec.Dur, Trace: j.cell.Trace, Policy: j.cell.Policy,
		})
		if err != nil {
			return nil, err
		}
		return []MetricValue{
			{"latency_p50_ms", r.Latency.Percentile(50)},
			{"latency_p95_ms", r.Latency.Percentile(95)},
			{"latency_p99_ms", r.Latency.Percentile(99)},
			{"ssim_mean", r.SSIM.Mean()},
			{"frozen_frames", float64(r.Frozen)},
		}, nil
	case ExpWeb:
		r, err := core.RunWeb(core.WebConfig{
			Seed: j.seed, Trace: j.cell.Trace, Policy: j.cell.Policy,
			Pages: j.spec.Pages, Loads: j.spec.Loads,
		})
		if err != nil {
			return nil, err
		}
		return []MetricValue{
			{"plt_mean_ms", r.PLT.Mean()},
			{"plt_p95_ms", r.PLT.Percentile(95)},
		}, nil
	case ExpABR:
		r, err := core.RunABR(core.ABRConfig{
			Seed: j.seed, Media: j.spec.Dur, Trace: j.cell.Trace, Policy: j.cell.Policy,
		})
		if err != nil {
			return nil, err
		}
		return []MetricValue{
			{"startup_ms", float64(r.StartupDelay.Milliseconds())},
			{"rebuffer_ms", float64(r.RebufferTime.Milliseconds())},
			{"rebuffer_events", float64(r.RebufferEvents)},
			{"mean_bitrate_mbps", r.MeanBitrate / 1e6},
			{"switches", float64(r.Switches)},
		}, nil
	case ExpOutage:
		r, err := core.RunOutage(core.OutageConfig{
			Seed: j.seed, Duration: j.spec.Dur, Policy: j.cell.Policy, Fault: j.spec.Fault,
		})
		if err != nil {
			return nil, err
		}
		return []MetricValue{
			{"delivery_rate", r.DeliveryRate()},
			{"stall_ms", float64(r.Stall.Microseconds()) / 1000},
			{"delay_p50_ms", r.Delay.Percentile(50)},
			{"delay_p99_ms", r.Delay.Percentile(99)},
		}, nil
	case ExpArena:
		as, err := arena.ParseSpec(fmt.Sprintf(
			"flows=%d mix=%s join=%s rttspread=%s seed=%d dur=%s policy=%s trace=%s",
			j.spec.Flows, j.spec.Mix, j.spec.Join, j.spec.RTTSpread,
			j.seed, j.spec.Dur, j.cell.Policy, j.cell.Trace))
		if err != nil {
			return nil, err
		}
		r, err := arena.Run(as, arena.Options{})
		if err != nil {
			return nil, err
		}
		lo, hi, total := r.Flows[0].GoodputMbps, r.Flows[0].GoodputMbps, 0.0
		for _, fr := range r.Flows {
			total += fr.GoodputMbps
			if fr.GoodputMbps < lo {
				lo = fr.GoodputMbps
			}
			if fr.GoodputMbps > hi {
				hi = fr.GoodputMbps
			}
		}
		// convergence_s is censored at the run length when the arena never
		// converges, so multi-seed means stay finite and comparable.
		conv, converged := j.spec.Dur.Seconds(), 0.0
		if r.Converged {
			conv, converged = r.Convergence.Seconds(), 1
		}
		return []MetricValue{
			{"jain", r.Jain},
			{"converged", converged},
			{"convergence_s", conv},
			{"goodput_total_mbps", total},
			{"goodput_min_mbps", lo},
			{"goodput_max_mbps", hi},
		}, nil
	default:
		return nil, fmt.Errorf("sweep: unknown experiment %q", j.spec.Exp)
	}
}
