// Package experiments is the registry of the paper's named
// experiments — every table, figure, and ablation cmd/hvcbench can
// run. Each runner renders its human-readable table to Env.Out and
// records headline metrics into Env.Report, so the same registry
// serves the CLI, the parallel seed sweep, and the cross-package
// determinism suite: a runner's byte output is a pure function of
// (name, seed, scale).
package experiments

import (
	"fmt"
	"io"
	"time"

	"hvc/internal/arena"
	"hvc/internal/core"
	"hvc/internal/fleet"
	"hvc/internal/metrics"
	"hvc/internal/sketch"
	"hvc/internal/telemetry"
)

// Order lists every experiment in "all" execution order; it is also
// the source of cmd/hvcbench's -exp usage string, so the two cannot
// drift.
func Order() []string {
	return []string{
		"fig1a", "fig1b", "fig2", "table1",
		"ablation-cc", "ablation-mptcp", "ablation-mlo", "ablation-cost",
		"ablation-beta", "ablation-tail", "ablation-ians", "ablation-has", "ablation-tsn",
		"outage", "fleet", "arena",
	}
}

// Valid reports whether name is a registered experiment.
func Valid(name string) bool {
	_, ok := runners[name]
	return ok
}

// Scale sizes the experiments that have adjustable corpora or
// durations.
type Scale struct {
	BulkDur  time.Duration
	VideoDur time.Duration
	Pages    int
	Loads    int
}

// FullScale reproduces the paper's evaluation scale.
func FullScale() Scale {
	return Scale{BulkDur: 60 * time.Second, VideoDur: 60 * time.Second, Pages: 30, Loads: 5}
}

// QuickScale shortens runs and shrinks corpora for smoke testing
// (hvcbench -quick).
func QuickScale() Scale {
	return Scale{BulkDur: 15 * time.Second, VideoDur: 20 * time.Second, Pages: 6, Loads: 2}
}

// Env carries one runner invocation's knobs and observability hooks.
type Env struct {
	Seed  int64
	Scale Scale
	// CDF dumps full CDFs/time series instead of summaries.
	CDF bool
	// Tracer receives cross-layer telemetry; nil disables tracing.
	Tracer *telemetry.Tracer
	// Report, when non-nil, accumulates headline metrics.
	Report *telemetry.Report
	// Prefix is the metric-name prefix, "<exp>/" or "<exp>/seed<N>/".
	Prefix string
	// Out receives the human-readable tables; nil means io.Discard.
	Out io.Writer
	// Fault overrides the outage experiment's fault scenario (the
	// internal/fault grammar); empty keeps the default schedule. Other
	// experiments ignore it.
	Fault string
}

// metric records one headline value into the run report, when one is
// being assembled.
func (e Env) metric(name string, v float64, unit string) {
	if e.Report != nil {
		e.Report.AddMetric(e.Prefix+name, v, unit)
	}
}

// sketchDist folds a result distribution into the report's sketch
// section. The samples feed in sorted order (Values), so the summary —
// like every report field — is a pure function of the run's results;
// the determinism matrix diffs it along with everything else.
func (e Env) sketchDist(name string, d *metrics.Distribution) {
	if e.Report == nil || d.N() == 0 {
		return
	}
	s := sketch.NewDefault()
	for _, v := range d.Values() {
		s.Observe(v)
	}
	e.Report.AddSketch(e.Prefix+name, s)
}

// sketchSeries folds a time series' values into the report's sketch
// section, feeding in time order.
func (e Env) sketchSeries(name string, ts *metrics.TimeSeries) {
	if e.Report == nil || ts.N() == 0 {
		return
	}
	s := sketch.NewDefault()
	for _, p := range ts.Points() {
		s.Observe(p.Value)
	}
	e.Report.AddSketch(e.Prefix+name, s)
}

var runners = map[string]func(Env) error{
	"fig1a":          fig1a,
	"fig1b":          fig1b,
	"fig2":           fig2,
	"table1":         table1,
	"ablation-cc":    ablationCC,
	"ablation-mptcp": ablationMultipath,
	"ablation-mlo":   ablationMLO,
	"ablation-cost":  ablationCost,
	"ablation-beta":  ablationBeta,
	"ablation-tail":  ablationTail,
	"ablation-ians":  ablationIANS,
	"ablation-has":   ablationHAS,
	"ablation-tsn":   ablationTSN,
	"outage":         outage,
	"fleet":          fleetExp,
	"arena":          arenaExp,
}

// Run executes one named experiment under e.
func Run(name string, e Env) error {
	fn, ok := runners[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q", name)
	}
	if e.Out == nil {
		e.Out = io.Discard
	}
	return fn(e)
}

func fig1a(e Env) error {
	fmt.Fprintf(e.Out, "== Figure 1a: CCA throughput with DChannel steering (eMBB 50ms/60Mbps + URLLC 5ms/2Mbps, %v) ==\n", e.Scale.BulkDur)
	fmt.Fprintf(e.Out, "%-8s %12s %12s %8s\n", "cca", "mbps", "retransmits", "rtos")
	results, err := core.Fig1a(e.Seed, e.Scale.BulkDur, e.Tracer)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Fprintf(e.Out, "%-8s %12.2f %12d %8d\n", r.CC, r.Mbps, r.Retransmits, r.RTOs)
		e.metric(r.CC+"/goodput", r.Mbps, "Mbps")
		e.metric(r.CC+"/retransmits", float64(r.Retransmits), "")
	}
	fmt.Fprintln(e.Out)
	return nil
}

func fig1b(e Env) error {
	fmt.Fprintf(e.Out, "== Figure 1b: BBR packet RTTs under DChannel steering (%v) ==\n", e.Scale.BulkDur)
	r, err := core.Fig1b(e.Seed, e.Scale.BulkDur, e.Tracer)
	if err != nil {
		return err
	}
	if e.CDF {
		fmt.Fprintln(e.Out, "t_s\trtt_ms\tchannel")
		for i, p := range r.RTT.Points() {
			fmt.Fprintf(e.Out, "%.3f\t%.2f\t%s\n", p.At.Seconds(), p.Value, r.RTTChannels[i])
		}
	} else {
		fmt.Fprintf(e.Out, "%8s %10s %10s %10s\n", "t", "min_ms", "mean_ms", "max_ms")
		for _, b := range r.RTT.Buckets(2 * time.Second) {
			fmt.Fprintf(e.Out, "%8v %10.1f %10.1f %10.1f\n", b.Start, b.Min, b.Mean, b.Max)
		}
	}
	fmt.Fprintf(e.Out, "throughput: %.2f Mbps over %v\n\n", r.Mbps, e.Scale.BulkDur)
	e.metric("goodput", r.Mbps, "Mbps")
	e.metric("rtt_samples", float64(r.RTT.N()), "")
	e.sketchSeries("rtt_ms", &r.RTT)
	return nil
}

func fig2(e Env) error {
	for _, tr := range []string{"lowband-driving", "mmwave-driving"} {
		fmt.Fprintf(e.Out, "== Figure 2: real-time SVC video over %s + URLLC (%v) ==\n", tr, e.Scale.VideoDur)
		results, err := core.Fig2(e.Seed, e.Scale.VideoDur, tr, e.Tracer)
		if err != nil {
			return err
		}
		fmt.Fprintf(e.Out, "%-20s %9s %9s %9s %9s %8s %7s\n",
			"policy", "p50_ms", "p95_ms", "p99_ms", "max_ms", "ssim", "frozen")
		for _, r := range results {
			fmt.Fprintf(e.Out, "%-20s %9.0f %9.0f %9.0f %9.0f %8.3f %7d\n",
				r.Policy,
				r.Latency.Percentile(50), r.Latency.Percentile(95),
				r.Latency.Percentile(99), r.Latency.Max(),
				r.SSIM.Mean(), r.Frozen)
			e.metric(tr+"/"+r.Policy+"/latency_p95", r.Latency.Percentile(95), "ms")
			e.metric(tr+"/"+r.Policy+"/ssim_mean", r.SSIM.Mean(), "")
			e.metric(tr+"/"+r.Policy+"/frozen", float64(r.Frozen), "frames")
			e.sketchDist(tr+"/"+r.Policy+"/latency_ms", &r.Latency)
		}
		if e.CDF {
			for _, r := range results {
				fmt.Fprintf(e.Out, "-- latency CDF (%s/%s) --\n%s", tr, r.Policy,
					metrics.FormatCDF(r.Latency.CDF(50), "latency_ms"))
				fmt.Fprintf(e.Out, "-- ssim CDF (%s/%s) --\n%s", tr, r.Policy,
					metrics.FormatCDF(r.SSIM.CDF(20), "ssim"))
			}
		}
		fmt.Fprintln(e.Out)
	}
	return nil
}

func table1(e Env) error {
	fmt.Fprintf(e.Out, "== Table 1: web PLT (ms) with background traffic (%d pages x %d loads) ==\n", e.Scale.Pages, e.Scale.Loads)
	fmt.Fprintf(e.Out, "%-22s %14s %20s %24s\n", "trace", "embb-only", "dchannel", "dchannel+priority")
	for _, tr := range []string{"lowband-stationary", "lowband-driving"} {
		results, err := core.Table1(e.Seed, tr, e.Scale.Pages, e.Scale.Loads, e.Tracer)
		if err != nil {
			return err
		}
		base := results[0].PLT.Mean()
		cells := make([]string, len(results))
		for i, r := range results {
			if i == 0 {
				cells[i] = fmt.Sprintf("%.1f", r.PLT.Mean())
			} else {
				cells[i] = fmt.Sprintf("%.1f (%.1f%%)", r.PLT.Mean(), 100*(1-r.PLT.Mean()/base))
			}
			e.metric(tr+"/"+r.Policy+"/plt_mean", r.PLT.Mean(), "ms")
			e.sketchDist(tr+"/"+r.Policy+"/plt_ms", &r.PLT)
		}
		fmt.Fprintf(e.Out, "%-22s %14s %20s %24s\n", tr, cells[0], cells[1], cells[2])
	}
	fmt.Fprintln(e.Out)
	return nil
}

func ablationCC(e Env) error {
	fmt.Fprintf(e.Out, "== Ablation (§3.2): HVC-aware congestion control (%v) ==\n", e.Scale.BulkDur)
	plain, aware, err := core.AblationHVCAwareCC(e.Seed, e.Scale.BulkDur, e.Tracer)
	if err != nil {
		return err
	}
	fmt.Fprintf(e.Out, "%-8s %14s %14s %10s\n", "cca", "plain_mbps", "hvc_mbps", "speedup")
	for i := range plain {
		fmt.Fprintf(e.Out, "%-8s %14.2f %14.2f %9.1fx\n",
			plain[i].CC, plain[i].Mbps, aware[i].Mbps, aware[i].Mbps/plain[i].Mbps)
		e.metric(plain[i].CC+"/plain_goodput", plain[i].Mbps, "Mbps")
		e.metric(plain[i].CC+"/hvc_goodput", aware[i].Mbps, "Mbps")
	}
	fmt.Fprintln(e.Out)
	return nil
}

func ablationMLO(e Env) error {
	fmt.Fprintln(e.Out, "== Ablation (§2.2/§3.1): Wi-Fi MLO redundancy, 1200B messages at 100/s ==")
	fmt.Fprintf(e.Out, "%-12s %10s %10s %10s %12s\n", "mode", "delivery", "p50_ms", "p99_ms", "pkts_on_air")
	for _, red := range []bool{false, true} {
		r := core.RunMLO(e.Seed, 2000, 1200, 10*time.Millisecond, red)
		fmt.Fprintf(e.Out, "%-12s %9.2f%% %10.1f %10.1f %12d\n",
			r.Mode, 100*r.DeliveryRate, r.Latency.Percentile(50), r.Latency.Percentile(99), r.PacketsOnAir)
	}
	fmt.Fprintln(e.Out)
	return nil
}

func ablationCost(e Env) error {
	fmt.Fprintln(e.Out, "== Ablation (§3.1): latency vs cost on a priced cISP-style path ==")
	fmt.Fprintf(e.Out, "%-14s %10s %10s %12s %10s\n", "budget_B/s", "mean_ms", "p95_ms", "spent_bytes", "dollars")
	for _, budget := range []float64{0, 5_000, 50_000, 500_000, 5_000_000} {
		r := core.RunCost(e.Seed, 500, 20*time.Millisecond, budget)
		fmt.Fprintf(e.Out, "%-14.0f %10.1f %10.1f %12d %10.4f\n",
			budget, r.Latency.Mean(), r.Latency.Percentile(95), r.SpentBytes, r.Dollars)
	}
	fmt.Fprintln(e.Out)
	return nil
}

func ablationMultipath(e Env) error {
	fmt.Fprintf(e.Out, "== Ablation (§1/§3.1): MPTCP-style aggregation vs steering (%v) ==\n", e.Scale.BulkDur)
	fmt.Fprintf(e.Out, "%-12s %12s %12s %12s %14s\n", "bulk mode", "bulk_mbps", "probe_p50", "probe_p95", "urllc_maxq_B")
	for _, mode := range []string{"multipath", "dchannel", "priority"} {
		r := core.RunMultipath(e.Seed, e.Scale.BulkDur, mode)
		fmt.Fprintf(e.Out, "%-12s %12.2f %10.1fms %10.1fms %14d\n",
			r.Mode, r.BulkMbps, r.Probe.Percentile(50), r.Probe.Percentile(95), r.URLLCMaxQueue)
	}
	fmt.Fprintln(e.Out)
	return nil
}

func ablationBeta(e Env) error {
	fmt.Fprintln(e.Out, "== Ablation (design choice): DChannel reward/cost β on SVC video (lowband-driving, 30s) ==")
	fmt.Fprintf(e.Out, "%-8s %12s %10s %14s\n", "beta", "p95_ms", "ssim", "urllc_share")
	for _, p := range core.RunBetaSweep(e.Seed, 30*time.Second, []float64{0.25, 0.5, 1, 2, 4, 8}) {
		fmt.Fprintf(e.Out, "%-8.2f %12.0f %10.3f %13.1f%%\n", p.Beta, p.P95Latency, p.SSIM, 100*p.URLLCShare)
	}
	fmt.Fprintln(e.Out)
	return nil
}

func ablationTail(e Env) error {
	fmt.Fprintln(e.Out, "== Ablation (§3.2): end-of-message tail acceleration, 60kB messages at 20/s ==")
	fmt.Fprintf(e.Out, "%-12s %10s %10s %10s\n", "mode", "mean_ms", "p95_ms", "max_ms")
	for _, boost := range []bool{false, true} {
		r := core.RunTailBoost(e.Seed, 500, 60_000, 50*time.Millisecond, boost)
		fmt.Fprintf(e.Out, "%-12s %10.1f %10.1f %10.1f\n",
			r.Mode, r.Latency.Mean(), r.Latency.Percentile(95), r.Latency.Max())
	}
	fmt.Fprintln(e.Out)
	return nil
}

func ablationIANS(e Env) error {
	fmt.Fprintf(e.Out, "== Ablation (§1 baseline): object-granularity (IANS) vs packet steering, web PLT (%d pages x %d loads) ==\n", e.Scale.Pages, e.Scale.Loads)
	fmt.Fprintf(e.Out, "%-14s %12s %12s\n", "policy", "mean_plt_ms", "p95_plt_ms")
	for _, policy := range []string{core.PolicyEMBBOnly, core.PolicyObjectMap, core.PolicyDChannel} {
		r, err := core.RunWeb(core.WebConfig{
			Seed: e.Seed, Trace: "lowband-stationary", Policy: policy,
			Pages: e.Scale.Pages, Loads: e.Scale.Loads, Tracer: e.Tracer,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(e.Out, "%-14s %12.1f %12.1f\n", policy, r.PLT.Mean(), r.PLT.Percentile(95))
	}
	fmt.Fprintln(e.Out)
	return nil
}

func ablationHAS(e Env) error {
	fmt.Fprintln(e.Out, "== Ablation (§1 IANS-for-HAS): adaptive streaming over mmwave-driving + URLLC, 60s media ==")
	fmt.Fprintf(e.Out, "%-12s %10s %12s %10s %10s %10s\n", "policy", "startup", "rebuffer", "events", "mean_mbps", "switches")
	rs, err := core.ABRComparison(e.Seed, 60*time.Second, "mmwave-driving")
	if err != nil {
		return err
	}
	for _, r := range rs {
		fmt.Fprintf(e.Out, "%-12s %10v %12v %10d %10.2f %10d\n",
			r.Policy, r.StartupDelay.Round(time.Millisecond),
			r.RebufferTime.Round(time.Millisecond), r.RebufferEvents,
			r.MeanBitrate/1e6, r.Switches)
	}
	fmt.Fprintln(e.Out)
	return nil
}

func outage(e Env) error {
	fmt.Fprintf(e.Out, "== Outage (§2.1 reliability): 30fps frames through channel blackouts (%v) ==\n", e.Scale.VideoDur)
	fmt.Fprintf(e.Out, "%-12s %10s %10s %10s %10s\n", "policy", "delivery", "stall_ms", "p50_ms", "p99_ms")
	var fault string
	for _, policy := range []string{core.PolicyEMBBOnly, core.PolicyDChannel, core.PolicyRedundant} {
		r, err := core.RunOutage(core.OutageConfig{
			Seed: e.Seed, Duration: e.Scale.VideoDur, Policy: policy,
			Fault: e.Fault, Tracer: e.Tracer,
		})
		if err != nil {
			return err
		}
		fault = r.Fault
		fmt.Fprintf(e.Out, "%-12s %9.2f%% %10.1f %10.1f %10.1f\n",
			r.Policy, 100*r.DeliveryRate(),
			float64(r.Stall.Microseconds())/1000,
			r.Delay.Percentile(50), r.Delay.Percentile(99))
		e.metric(policy+"/delivery_rate", r.DeliveryRate(), "")
		e.metric(policy+"/stall_ms", float64(r.Stall.Microseconds())/1000, "ms")
		e.metric(policy+"/delay_p99", r.Delay.Percentile(99), "ms")
		e.sketchDist(policy+"/delay_ms", &r.Delay)
	}
	fmt.Fprintf(e.Out, "fault: %s\n\n", fault)
	return nil
}

// fleetExp runs a miniature fleet: the population view of the paper's
// operator argument, a few dozen heterogeneous UE sessions aggregated
// through mergeable sketches (internal/fleet). The fleet size stays
// small here because cmd/hvcfleet is the real population interface —
// this runner exists so the cross-package determinism matrix and
// cmd/hvcbench cover the fleet path end to end. Session length
// follows the scale's bulk duration, capped so full-scale bench runs
// stay proportionate.
func fleetExp(e Env) error {
	dur := e.Scale.BulkDur
	if dur > 2*time.Second {
		dur = 2 * time.Second
	}
	spec, err := fleet.ParseSpec(fmt.Sprintf(
		"ues=24 seed=%d policy=dchannel,embb-only dur=%s stagger=2s", e.Seed, dur))
	if err != nil {
		return err
	}
	res, err := fleet.Run(spec, fleet.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(e.Out, "== Fleet (population view): %d heterogeneous UE sessions, sketch-aggregated ==\n", res.UEs)
	if err := res.WriteTable(e.Out); err != nil {
		return err
	}
	fmt.Fprintln(e.Out)
	for _, app := range []string{fleet.AppBulk, fleet.AppVideo, fleet.AppWeb} {
		e.metric("ues/"+app, float64(res.Apps[app]), "")
	}
	if e.Report != nil {
		res.Group.Do(func(name string, s *sketch.Sketch) {
			e.Report.AddSketch(e.Prefix+name, s)
		})
	}
	return nil
}

// arenaExp runs the multi-flow contention arena: four competitors on
// four different CCAs with staggered joins and heterogeneous RTTs over
// the shared channel set, reporting per-flow shares, the Jain index,
// convergence time, and throughput/delay ellipse points
// (internal/arena). Duration follows the scale's bulk duration, capped
// so full-scale bench runs stay proportionate.
func arenaExp(e Env) error {
	dur := e.Scale.BulkDur
	if dur > 12*time.Second {
		dur = 12 * time.Second
	}
	spec, err := arena.ParseSpec(fmt.Sprintf(
		"flows=4 mix=cubic,copa,bbr,reno join=%s rttspread=20ms seed=%d dur=%s",
		dur/8, e.Seed, dur))
	if err != nil {
		return err
	}
	res, err := arena.Run(spec, arena.Options{Tracer: e.Tracer})
	if err != nil {
		return err
	}
	fmt.Fprintf(e.Out, "== Arena: %d-flow contention, mixed CCAs, staggered joins (%v) ==\n", spec.Flows, spec.Dur)
	fmt.Fprintf(e.Out, "%-8s %10s %12s %8s %12s %12s %10s %10s %6s\n",
		"cca", "join", "goodput", "share", "tput_mean", "tput_std", "rtt_mean", "rtt_std", "retr")
	for _, fr := range res.Flows {
		fmt.Fprintf(e.Out, "%-8s %10v %10.2fMb %7.1f%% %10.2fMb %10.2fMb %8.1fms %8.1fms %6d\n",
			fr.CC, fr.JoinAt.Round(time.Millisecond), fr.GoodputMbps, 100*fr.Share,
			fr.MeanTputMbps, fr.StdTputMbps, fr.MeanRTTms, fr.StdRTTms, fr.Retransmits)
		e.metric(fr.CC+"/goodput", fr.GoodputMbps, "Mbps")
		e.metric(fr.CC+"/share", fr.Share, "")
	}
	if res.Converged {
		fmt.Fprintf(e.Out, "jain=%.3f converged %v after last join\n\n", res.Jain, res.Convergence.Round(time.Millisecond))
		e.metric("convergence_s", res.Convergence.Seconds(), "s")
	} else {
		fmt.Fprintf(e.Out, "jain=%.3f not converged within %v\n\n", res.Jain, spec.Dur)
	}
	e.metric("jain", res.Jain, "")
	if e.Report != nil {
		res.Group.Do(func(name string, s *sketch.Sketch) {
			e.Report.AddSketch(e.Prefix+name, s)
		})
	}
	return nil
}

func ablationTSN(e Env) error {
	fmt.Fprintln(e.Out, "== Ablation (§2.2): wireless TSN vs contended best-effort Wi-Fi, 60ms control loops ==")
	fmt.Fprintf(e.Out, "%-14s %12s %12s %12s\n", "mode", "miss_rate", "p99_ms", "completed")
	for _, useTSN := range []bool{false, true} {
		r := core.RunTSN(e.Seed, 10*time.Second, useTSN)
		fmt.Fprintf(e.Out, "%-14s %11.1f%% %12.1f %12d\n", r.Mode, 100*r.MissRate, r.P99Latency, r.Completed)
	}
	fmt.Fprintln(e.Out)
	return nil
}
