package experiments

import (
	"bytes"
	"testing"
	"time"

	"hvc/internal/telemetry"
)

// tinyScale keeps the full 16-experiment matrix affordable: each bulk
// simulation runs for one simulated second, video (and the outage
// frame stream) for four (enough for the codec's frame cadence to
// produce output), and the web corpus shrinks to two pages loaded
// once.
func tinyScale() Scale {
	return Scale{
		BulkDur:  1 * time.Second,
		VideoDur: 4 * time.Second,
		Pages:    2,
		Loads:    1,
	}
}

// capture runs one experiment and returns its rendered table plus its
// hvc-run-report/v1 bundle, both as bytes. Every invocation builds a
// fresh Report and Registry so nothing leaks between runs.
func capture(t *testing.T, name string, seed int64) (stdout, report []byte) {
	t.Helper()
	var out bytes.Buffer
	rep := telemetry.NewReport(name, seed)
	tracer := telemetry.New()
	e := Env{
		Seed:   seed,
		Scale:  tinyScale(),
		Tracer: tracer,
		Report: rep,
		Prefix: name + "/",
		Out:    &out,
	}
	if err := Run(name, e); err != nil {
		t.Fatalf("%s seed %d: %v", name, seed, err)
	}
	rep.AttachCounters(tracer.Registry())
	if err := tracer.Close(); err != nil {
		t.Fatalf("%s seed %d: close tracer: %v", name, seed, err)
	}
	var repBuf bytes.Buffer
	if err := rep.WriteJSON(&repBuf); err != nil {
		t.Fatalf("%s seed %d: encode report: %v", name, seed, err)
	}
	return out.Bytes(), repBuf.Bytes()
}

// TestDeterminismMatrix is the cross-package determinism gate: every
// registered experiment, run twice per seed for two seeds, must
// produce byte-identical rendered tables AND byte-identical JSON run
// reports (metrics plus the full counter snapshot). A diff here means
// some layer — sim loop, channel model, transport, steering, cc,
// workload, telemetry — consumed entropy outside the seeded RNG or
// iterated a map into its output.
func TestDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is ~1 min; skipped with -short")
	}
	t.Parallel()
	for _, name := range Order() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range []int64{1, 42} {
				out1, rep1 := capture(t, name, seed)
				out2, rep2 := capture(t, name, seed)
				if !bytes.Equal(out1, out2) {
					t.Errorf("seed %d: rendered output differs between identical runs\n--- run 1 ---\n%s\n--- run 2 ---\n%s", seed, out1, out2)
				}
				if !bytes.Equal(rep1, rep2) {
					t.Errorf("seed %d: run report differs between identical runs\n--- run 1 ---\n%s\n--- run 2 ---\n%s", seed, rep1, rep2)
				}
				if len(out1) == 0 {
					t.Errorf("seed %d: experiment rendered no output", seed)
				}
				// The report must survive a parse/re-encode cycle
				// unchanged, the property the fuzz harness pins.
				parsed, err := telemetry.ParseReport(bytes.NewReader(rep1))
				if err != nil {
					t.Fatalf("seed %d: report does not parse: %v", seed, err)
				}
				var again bytes.Buffer
				if err := parsed.WriteJSON(&again); err != nil {
					t.Fatalf("seed %d: re-encode: %v", seed, err)
				}
				if !bytes.Equal(rep1, again.Bytes()) {
					t.Errorf("seed %d: report not byte-stable through parse/encode", seed)
				}
			}
		})
	}
}

// TestSeedsActuallyMatter guards the other side of determinism:
// different seeds must produce different results, or the matrix test
// above would pass trivially on a runner that ignores its RNG.
func TestSeedsActuallyMatter(t *testing.T) {
	t.Parallel()
	_, rep1 := capture(t, "fig2", 1)
	_, rep2 := capture(t, "fig2", 2)
	// Reports embed the seed, so strip the seed line before comparing;
	// the metric values themselves must differ somewhere.
	if bytes.Equal(rep1, rep2) {
		t.Fatal("fig2 reports for seeds 1 and 2 are identical including the seed field")
	}
	r1, err := telemetry.ParseReport(bytes.NewReader(rep1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := telemetry.ParseReport(bytes.NewReader(rep2))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Metrics) == 0 || len(r2.Metrics) == 0 {
		t.Fatal("fig2 recorded no metrics")
	}
	same := true
	for i := range r1.Metrics {
		if i < len(r2.Metrics) && r1.Metrics[i].Value != r2.Metrics[i].Value {
			same = false
			break
		}
	}
	if same {
		t.Error("every fig2 metric identical across seeds 1 and 2; runner appears to ignore its seed")
	}
}

// TestRegistryOrderIndependence pins Valid/Order consistency so the
// CLI's name validation and the matrix above cover the same set.
func TestRegistryOrderIndependence(t *testing.T) {
	names := Order()
	if len(names) == 0 {
		t.Fatal("empty experiment registry")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if !Valid(n) {
			t.Errorf("Order() lists %q but Valid(%q) is false", n, n)
		}
		if seen[n] {
			t.Errorf("duplicate experiment %q in Order()", n)
		}
		seen[n] = true
	}
	if Valid("no-such-experiment") {
		t.Error(`Valid("no-such-experiment") = true`)
	}
	// Order must return a fresh copy: mutating it must not corrupt the
	// registry for later callers.
	names[0] = "mutated"
	if !Valid(Order()[0]) || Order()[0] == "mutated" {
		t.Error("Order() exposes internal slice; mutation leaked into registry")
	}
}
