// Package cc implements the congestion-control algorithms the paper
// evaluates in Figure 1 — CUBIC, BBR, Vegas, and PCC Vivace, plus
// NewReno — behind one event-driven interface, and the HVC-aware
// wrapper the paper proposes in §3.2: a congestion controller that
// knows which virtual channel each acknowledgment traveled over and
// so does not mistake channel switching for congestion.
//
// Algorithms work in bytes. The transport drives them with OnSent,
// OnAck, and OnLoss events and obeys both the window (CWND) and, when
// nonzero, the pacing rate.
package cc

import "time"

// MSS is the sender maximum segment size the algorithms assume when
// converting between packets and bytes. It matches the transport's
// default full packet size.
const MSS = 1500

// minCwnd is the floor every algorithm keeps: two full segments, as
// TCP implementations do.
const minCwnd = 2 * MSS

// An AckEvent reports newly acknowledged data to the algorithm.
type AckEvent struct {
	// Now is the virtual time of the acknowledgment.
	Now time.Duration
	// RTT is the round-trip sample for the newest acked segment, or 0
	// when this acknowledgment carries no valid sample (for example
	// when the HVC-aware wrapper suppresses a cross-channel sample).
	RTT time.Duration
	// Bytes is the amount of data newly acknowledged.
	Bytes int
	// InFlight is the sender's outstanding byte count after this ack.
	InFlight int
	// DeliveryRate is the transport's delivery-rate sample in bits
	// per second (BBR-style), or 0 when unavailable.
	DeliveryRate float64
	// Channel names the virtual channel the acked data traveled on,
	// when the transport knows it. Only HVC-aware algorithms use it.
	Channel string
	// AppLimited marks samples taken while the sender had no data to
	// send; bandwidth filters must not treat them as path capacity.
	AppLimited bool
}

// A LossEvent reports detected loss.
type LossEvent struct {
	Now time.Duration
	// Bytes is the amount of data declared lost.
	Bytes int
	// InFlight is the outstanding byte count after removing the loss.
	InFlight int
	// Timeout marks an RTO rather than fast-retransmit detection; all
	// algorithms react more severely.
	Timeout bool
}

// An Algorithm is one congestion-control implementation. Algorithms
// are single-flow and not safe for concurrent use, matching the
// simulation's single-threaded core.
type Algorithm interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// CWND returns the current congestion window in bytes. The
	// transport keeps bytes-in-flight at or below it.
	CWND() int
	// PacingRate returns the send pacing rate in bits per second, or
	// 0 when the algorithm is purely window-based.
	PacingRate() float64
	// OnSent informs the algorithm that bytes were sent.
	OnSent(now time.Duration, bytes int)
	// OnAck processes an acknowledgment.
	OnAck(ev AckEvent)
	// OnLoss processes a loss detection.
	OnLoss(ev LossEvent)
}

// clampCwnd applies the universal floor.
func clampCwnd(c int) int {
	if c < minCwnd {
		return minCwnd
	}
	return c
}
