package cc

import "time"

// HVCAware is the transport-layer remedy the paper proposes in §3.2: a
// congestion controller that knows virtual channels exist and
// interprets each acknowledgment in the context of the channel that
// carried the data. It wraps an inner algorithm and suppresses the RTT
// (and delivery-rate) samples of packets that did not travel the
// designated bulk channel, so channel switching no longer masquerades
// as congestion. Bytes are still credited — only the delay signal is
// filtered.
type HVCAware struct {
	inner Algorithm
	// bulk names the channel whose samples describe the path the bulk
	// of the flow's data uses (the wide channel in all experiments).
	bulk string
}

// NewHVCAware wraps inner, keeping only RTT samples from the named
// bulk channel. It panics on a nil inner algorithm or empty name: an
// HVC-aware controller without a channel to trust is a configuration
// bug.
func NewHVCAware(inner Algorithm, bulkChannel string) *HVCAware {
	if inner == nil {
		panic("cc: NewHVCAware(nil)")
	}
	if bulkChannel == "" {
		panic("cc: NewHVCAware with empty channel name")
	}
	return &HVCAware{inner: inner, bulk: bulkChannel}
}

// Name implements Algorithm.
func (h *HVCAware) Name() string { return "hvc-" + h.inner.Name() }

// Inner returns the wrapped algorithm, for tests and ablations.
func (h *HVCAware) Inner() Algorithm { return h.inner }

// CWND implements Algorithm.
func (h *HVCAware) CWND() int { return h.inner.CWND() }

// PacingRate implements Algorithm.
func (h *HVCAware) PacingRate() float64 { return h.inner.PacingRate() }

// OnSent implements Algorithm.
func (h *HVCAware) OnSent(now time.Duration, bytes int) { h.inner.OnSent(now, bytes) }

// OnAck implements Algorithm, filtering cross-channel delay samples.
func (h *HVCAware) OnAck(ev AckEvent) {
	if ev.Channel != "" && ev.Channel != h.bulk {
		ev.RTT = 0
		ev.DeliveryRate = 0
	}
	h.inner.OnAck(ev)
}

// OnLoss implements Algorithm.
func (h *HVCAware) OnLoss(ev LossEvent) { h.inner.OnLoss(ev) }
