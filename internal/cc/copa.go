package cc

import "time"

// Copa implements a faithful-in-shape Copa (Arun & Balakrishnan, NSDI
// 2018): a delay-based controller that steers its sending rate toward
// the target rate 1/(δ·dq), where dq is the standing queueing delay —
// the difference between RTTstanding (the minimum RTT over the last
// half-smoothed-RTT) and a long-window minimum RTT. The window moves
// toward the target by v/(δ·cwnd) packets per ack, where the velocity
// v doubles once the direction of travel has persisted for three RTTs
// and resets to one whenever it flips. When the bottleneck queue stops
// draining — the signature of a buffer-filling competitor such as
// CUBIC — Copa switches to a competitive mode that adjusts 1/δ by
// AIMD, matching the aggression of the loss-based cross traffic; it
// returns to the default δ once the queue empties again.
//
// Under HVC packet steering Copa inherits the same vulnerability as
// Vegas and BBR (§3.1): one acknowledgment over URLLC poisons the
// long-window minimum, inflating the apparent standing queue on the
// eMBB path. In the contention arena it is the modern delay-based
// contrast to CUBIC's buffer filling.
type Copa struct {
	cwnd   int
	pacing float64

	// δ control. delta is the operative value; in competitive mode it
	// is 1/invDelta, driven by AIMD.
	delta       float64
	competitive bool
	invDelta    float64
	lostInRound bool

	// Long-window minimum RTT (the propagation estimate).
	minRTT      time.Duration
	minRTTStamp time.Duration

	// srtt smooths samples for the standing-window length (srtt/2).
	srtt time.Duration
	// standing holds recent samples for the RTTstanding windowed min.
	standing []rttSample

	// dqWindow holds recent queueing-delay samples over the last
	// copaModeRTTs round trips, for nearly-empty detection.
	dqWindow []rttSample

	// Velocity state. The direction is which side of the target rate
	// the flow is on; crossing the target resets v to one, and v
	// doubles once per RTT after the same direction has held for
	// copaDirRTTs round trips.
	v          float64
	direction  int // +1 below target (growing), -1 above (shrinking)
	dirSince   time.Duration
	lastDouble time.Duration
	roundEnd   time.Duration // once-per-RTT competitive-mode bookkeeping
	slowStart  bool
}

type rttSample struct {
	at  time.Duration
	rtt time.Duration
}

const (
	// copaDelta is the default-mode δ: each flow aims to keep 1/δ = 2
	// packets in the bottleneck queue.
	copaDelta = 0.5
	// copaMinRTTWindow ages the propagation-delay estimate.
	copaMinRTTWindow = 10 * time.Second
	// copaModeRTTs is the nearly-empty detection window: the queue must
	// drain below copaEmptyFrac of its recent peak within this many
	// RTTs, or Copa assumes a buffer-filling competitor.
	copaModeRTTs = 5
	// copaEmptyFrac defines "nearly empty" relative to the recent peak
	// queueing delay.
	copaEmptyFrac = 0.1
	// copaOwnQueueFactor scales the flow's own expected standing queue
	// (1/δ packets plus oscillation, drained at roughly cwnd/RTT): a
	// queueing delay within this many packets' worth of drain time is
	// the flow's own doing, not a buffer-filling competitor's.
	copaOwnQueueFactor = 8
	// copaDirRTTs is how many same-direction rounds precede velocity
	// doubling.
	copaDirRTTs = 3
	// copaMaxVelocity caps the doubling.
	copaMaxVelocity = 1 << 15
	// copaMaxInvDelta caps competitive-mode aggression (δ ≥ 1/64).
	copaMaxInvDelta = 64
	// copaPacingGain spreads each window over half an RTT, the paper's
	// 2×cwnd/RTT pacing that keeps the rate smooth between updates.
	copaPacingGain = 2
)

// NewCopa returns a Copa controller in slow start with an initial
// window of 10 segments and the default δ.
func NewCopa() *Copa {
	return &Copa{
		cwnd:      10 * MSS,
		delta:     copaDelta,
		invDelta:  1 / copaDelta,
		v:         1,
		slowStart: true,
	}
}

// Name implements Algorithm.
func (c *Copa) Name() string { return "copa" }

// CWND implements Algorithm.
func (c *Copa) CWND() int { return c.cwnd }

// PacingRate implements Algorithm.
func (c *Copa) PacingRate() float64 { return c.pacing }

// OnSent implements Algorithm.
func (c *Copa) OnSent(time.Duration, int) {}

// Mode reports "default" or "competitive", for experiment annotation.
func (c *Copa) Mode() string {
	if c.competitive {
		return "competitive"
	}
	return "default"
}

// Delta reports the operative δ.
func (c *Copa) Delta() float64 { return c.delta }

// QueueDelay reports the current standing-queue estimate.
func (c *Copa) QueueDelay() time.Duration {
	st := c.rttStanding()
	if st == 0 || c.minRTT == 0 || st < c.minRTT {
		return 0
	}
	return st - c.minRTT
}

// rttStanding is the windowed minimum over the last srtt/2 of samples.
func (c *Copa) rttStanding() time.Duration {
	var min time.Duration
	for _, s := range c.standing {
		if min == 0 || s.rtt < min {
			min = s.rtt
		}
	}
	return min
}

// OnAck implements Algorithm.
func (c *Copa) OnAck(ev AckEvent) {
	if ev.RTT <= 0 {
		return
	}
	now := ev.Now

	// Filters: long-window min (aged like BBR's rtProp) and the
	// standing window of srtt/2.
	if c.srtt == 0 {
		c.srtt = ev.RTT
	} else {
		c.srtt = (7*c.srtt + ev.RTT) / 8
	}
	if c.minRTT == 0 || ev.RTT <= c.minRTT || now-c.minRTTStamp > copaMinRTTWindow {
		c.minRTT = ev.RTT
		c.minRTTStamp = now
	}
	c.standing = append(c.standing, rttSample{at: now, rtt: ev.RTT})
	c.standing = pruneSamples(c.standing, now-c.srtt/2)

	st := c.rttStanding()
	dq := st - c.minRTT
	if dq < 0 {
		dq = 0
	}
	c.dqWindow = append(c.dqWindow, rttSample{at: now, rtt: dq})
	c.dqWindow = pruneSamples(c.dqWindow, now-copaModeRTTs*c.srtt)
	c.updateMode(now, st)

	// Target rate λt = MSS/(δ·dq) bytes/s; current rate λ = cwnd/RTT.
	// dq == 0 means no standing queue: the target is unbounded and the
	// window grows.
	rate := float64(c.cwnd) / st.Seconds()
	target := float64(0)
	if dq > 0 {
		target = float64(MSS) / (c.delta * dq.Seconds())
	}
	below := dq == 0 || rate <= target

	// Crossing the target flips the direction and resets the velocity;
	// a direction held for copaDirRTTs RTTs earns one doubling per RTT.
	dir := 1
	if !below {
		dir = -1
	}
	if dir != c.direction {
		c.direction = dir
		c.dirSince = now
		c.lastDouble = now
		c.v = 1
	} else if now-c.dirSince >= copaDirRTTs*c.srtt && now-c.lastDouble >= c.srtt {
		c.v *= 2
		if c.v > copaMaxVelocity {
			c.v = copaMaxVelocity
		}
		c.lastDouble = now
	}

	if c.slowStart {
		// Slow start: double per RTT until the rate first crosses the
		// target, as the paper's startup does.
		if below {
			c.cwnd += ev.Bytes
		} else {
			c.slowStart = false
		}
	}
	if !c.slowStart {
		// v/(δ·w) packets per acked packet, in bytes: the full-window
		// step per RTT is v/δ packets. The step is capped at half the
		// acked bytes so the window never moves more than 50% per RTT,
		// however large the velocity has grown.
		pkts := float64(ev.Bytes) / MSS
		step := c.v * MSS * pkts / (c.delta * float64(c.cwnd) / MSS)
		if max := float64(ev.Bytes) / 2; step > max {
			step = max
		}
		if below {
			c.cwnd += int(step)
		} else {
			c.cwnd -= int(step)
		}
		c.cwnd = clampCwnd(c.cwnd)
	}

	c.roundTick(now)

	// Pace at 2×cwnd/RTTstanding so sending stays smooth between
	// window updates.
	if st > 0 {
		c.pacing = copaPacingGain * float64(c.cwnd) * 8 / st.Seconds()
	}
}

// pruneSamples drops samples older than cutoff, keeping the backing
// array.
func pruneSamples(s []rttSample, cutoff time.Duration) []rttSample {
	keep := s[:0]
	for _, x := range s {
		if x.at >= cutoff {
			keep = append(keep, x)
		}
	}
	return keep
}

// roundTick runs the once-per-RTT competitive-mode bookkeeping: the
// additive increase of 1/δ on each loss-free round trip.
func (c *Copa) roundTick(now time.Duration) {
	if now < c.roundEnd {
		return
	}
	c.roundEnd = now + c.srtt

	if c.competitive {
		if !c.lostInRound {
			c.invDelta++
			if c.invDelta > copaMaxInvDelta {
				c.invDelta = copaMaxInvDelta
			}
		}
		c.delta = 1 / c.invDelta
	}
	c.lostInRound = false
}

// updateMode switches between the default and competitive modes: if
// the queueing delay has not dropped to nearly empty within the last
// copaModeRTTs round trips, a buffer-filling competitor is holding the
// queue and Copa must compete; once the queue drains again it reverts
// to δ = 0.5. "Nearly empty" is below copaEmptyFrac of the recent peak
// or within the flow's own expected standing queue — the few packets a
// lone Copa flow keeps queued by design must not read as a competitor.
func (c *Copa) updateMode(now time.Duration, st time.Duration) {
	if len(c.dqWindow) == 0 || now < copaModeRTTs*c.srtt {
		return // not enough history to judge
	}
	var min, max time.Duration
	for i, s := range c.dqWindow {
		if i == 0 || s.rtt < min {
			min = s.rtt
		}
		if s.rtt > max {
			max = s.rtt
		}
	}
	ownBand := time.Duration(float64(st) * copaOwnQueueFactor * MSS / float64(c.cwnd))
	if cap := c.minRTT / 8; ownBand > cap {
		ownBand = cap
	}
	empties := max == 0 || float64(min) < copaEmptyFrac*float64(max) || min <= ownBand
	if empties {
		if c.competitive {
			c.competitive = false
			c.delta = copaDelta
			c.invDelta = 1 / copaDelta
		}
		return
	}
	if !c.competitive {
		c.competitive = true
		c.invDelta = 1 / copaDelta
		c.delta = copaDelta
	}
}

// OnLoss implements Algorithm. Default-mode Copa is delay-driven and
// ignores fast-retransmit loss; competitive mode halves 1/δ (the AIMD
// decrease). Timeouts reset conservatively in both modes.
func (c *Copa) OnLoss(ev LossEvent) {
	if ev.Timeout {
		c.cwnd = minCwnd
		c.slowStart = true
		c.v = 1
		c.direction = 0
		return
	}
	c.lostInRound = true
	if c.competitive {
		c.invDelta /= 2
		if c.invDelta < 1/copaDelta {
			c.invDelta = 1 / copaDelta
		}
		c.delta = 1 / c.invDelta
	}
}
