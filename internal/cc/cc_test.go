package cc

import (
	"testing"
	"time"
)

// ackStream feeds alg a steady sequence of n acks with the given RTT,
// advancing a synthetic clock by interAck between acks.
func ackStream(alg Algorithm, n int, rtt, interAck time.Duration, bytes int) time.Duration {
	now := time.Duration(0)
	for i := 0; i < n; i++ {
		now += interAck
		alg.OnAck(AckEvent{Now: now, RTT: rtt, Bytes: bytes, InFlight: alg.CWND() / 2})
	}
	return now
}

func TestAllAlgorithmsStartAboveFloor(t *testing.T) {
	for _, alg := range []Algorithm{NewReno(), NewCubic(), NewVegas(), NewBBR(), NewVivace(), NewCopa()} {
		if alg.CWND() < minCwnd {
			t.Errorf("%s initial cwnd %d below floor", alg.Name(), alg.CWND())
		}
	}
}

func TestNames(t *testing.T) {
	want := map[string]Algorithm{
		"reno":   NewReno(),
		"cubic":  NewCubic(),
		"vegas":  NewVegas(),
		"bbr":    NewBBR(),
		"vivace": NewVivace(),
		"copa":   NewCopa(),
	}
	for name, alg := range want {
		if alg.Name() != name {
			t.Errorf("Name() = %q, want %q", alg.Name(), name)
		}
	}
	if got := NewHVCAware(NewBBR(), "embb").Name(); got != "hvc-bbr" {
		t.Errorf("hvc wrapper name = %q", got)
	}
}

func TestRenoSlowStartDoubles(t *testing.T) {
	r := NewReno()
	w0 := r.CWND()
	// Acking a full window in slow start doubles it.
	r.OnAck(AckEvent{Now: time.Millisecond, RTT: 10 * time.Millisecond, Bytes: w0})
	if got := r.CWND(); got != 2*w0 {
		t.Fatalf("cwnd after full-window ack = %d, want %d", got, 2*w0)
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	r := NewReno()
	r.OnLoss(LossEvent{Bytes: MSS}) // exit slow start
	w := r.CWND()
	// One full window of acks → +1 MSS.
	for acked := 0; acked < w; acked += MSS {
		r.OnAck(AckEvent{Bytes: MSS})
	}
	if got := r.CWND(); got != w+MSS {
		t.Fatalf("cwnd = %d, want %d", got, w+MSS)
	}
}

func TestRenoLossHalves(t *testing.T) {
	r := NewReno()
	r.OnAck(AckEvent{Bytes: 20 * MSS})
	w := r.CWND()
	r.OnLoss(LossEvent{Bytes: MSS})
	if got := r.CWND(); got != w/2 {
		t.Fatalf("cwnd after loss = %d, want %d", got, w/2)
	}
}

func TestRenoTimeoutCollapses(t *testing.T) {
	r := NewReno()
	r.OnAck(AckEvent{Bytes: 20 * MSS})
	r.OnLoss(LossEvent{Timeout: true})
	if got := r.CWND(); got != minCwnd {
		t.Fatalf("cwnd after RTO = %d, want %d", got, minCwnd)
	}
}

func TestCwndNeverBelowFloor(t *testing.T) {
	for _, alg := range []Algorithm{NewReno(), NewCubic(), NewVegas()} {
		for i := 0; i < 50; i++ {
			alg.OnLoss(LossEvent{Bytes: MSS})
		}
		if alg.CWND() < minCwnd {
			t.Errorf("%s: cwnd %d fell below floor", alg.Name(), alg.CWND())
		}
	}
}

func TestCubicGrowsAfterLoss(t *testing.T) {
	c := NewCubic()
	// Establish an RTT, exit slow start with a loss at 100 segments.
	c.cwnd = 100 * MSS
	c.OnAck(AckEvent{Now: time.Second, RTT: 50 * time.Millisecond, Bytes: MSS})
	c.OnLoss(LossEvent{Bytes: MSS})
	wAfterLoss := c.CWND()
	if wAfterLoss >= 100*MSS {
		t.Fatalf("loss did not reduce window: %d", wAfterLoss)
	}
	if want := int(100 * MSS * cubicBeta); wAfterLoss < want-MSS || wAfterLoss > want+MSS {
		t.Fatalf("cwnd after loss = %d, want ≈%d", wAfterLoss, want)
	}
	// Feed acks over simulated seconds; window must recover past wMax.
	now := 2 * time.Second
	for i := 0; i < 4000; i++ {
		now += 5 * time.Millisecond
		c.OnAck(AckEvent{Now: now, RTT: 50 * time.Millisecond, Bytes: MSS})
	}
	if c.CWND() <= wAfterLoss {
		t.Fatalf("cubic failed to grow: %d", c.CWND())
	}
	if c.CWND() < 100*MSS {
		t.Fatalf("cubic should eventually exceed wMax, got %d", c.CWND())
	}
}

func TestCubicInsensitiveToRTTJumps(t *testing.T) {
	// The Fig. 1a property: CUBIC's window does not shrink when RTT
	// samples oscillate, only on loss.
	c := NewCubic()
	c.cwnd = 50 * MSS
	c.OnLoss(LossEvent{Bytes: MSS})
	w := c.CWND()
	now := time.Duration(0)
	for i := 0; i < 1000; i++ {
		now += 5 * time.Millisecond
		rtt := 50 * time.Millisecond
		if i%3 == 0 {
			rtt = 7 * time.Millisecond
		}
		c.OnAck(AckEvent{Now: now, RTT: rtt, Bytes: MSS})
	}
	if c.CWND() < w {
		t.Fatalf("cubic shrank on RTT oscillation: %d < %d", c.CWND(), w)
	}
}

func TestVegasStableAtOwnQueueingBand(t *testing.T) {
	v := NewVegas()
	v.ssthresh = 0 // skip slow start
	// RTT equals baseRTT: no queueing → additive growth.
	w := v.CWND()
	ackStream(v, 200, 50*time.Millisecond, 10*time.Millisecond, MSS)
	if v.CWND() <= w {
		t.Fatalf("vegas should grow without queueing: %d", v.CWND())
	}
}

func TestVegasCollapsesOnPoisonedBaseRTT(t *testing.T) {
	// One URLLC-routed ack sets baseRTT ≈ 7 ms; later 50 ms samples
	// look like enormous queueing and the window collapses — the
	// Fig. 1a Vegas pathology.
	v := NewVegas()
	v.ssthresh = 0
	v.cwnd = 40 * MSS
	v.OnAck(AckEvent{Now: time.Millisecond, RTT: 7 * time.Millisecond, Bytes: MSS})
	ackStream(v, 500, 50*time.Millisecond, 10*time.Millisecond, MSS)
	if v.CWND() > 10*MSS {
		t.Fatalf("vegas window %d did not collapse under poisoned baseRTT", v.CWND())
	}
}

func TestVegasIgnoresZeroRTTSamples(t *testing.T) {
	v := NewVegas()
	w := v.CWND()
	v.OnAck(AckEvent{Now: time.Second, RTT: 0, Bytes: MSS})
	if v.CWND() != w {
		t.Fatal("zero-RTT sample should be ignored")
	}
}

func TestBBRStartupFindsBandwidth(t *testing.T) {
	b := NewBBR()
	now := time.Duration(0)
	// 60 Mbps delivery samples, 50 ms RTT.
	for i := 0; i < 400; i++ {
		now += 2 * time.Millisecond
		b.OnAck(AckEvent{
			Now: now, RTT: 50 * time.Millisecond, Bytes: MSS,
			InFlight: 30 * MSS, DeliveryRate: 60e6,
		})
	}
	if b.BtlBW() != 60e6 {
		t.Fatalf("btlBW = %v, want 60e6", b.BtlBW())
	}
	if b.RTProp() != 50*time.Millisecond {
		t.Fatalf("rtProp = %v", b.RTProp())
	}
	if b.State() == "startup" {
		t.Fatal("BBR should have exited startup with flat bandwidth")
	}
	// cwnd ≈ 2×BDP = 2 × 60e6 × 0.05 / 8 = 750 kB.
	bdp := int(60e6 * 0.05 / 8)
	if b.CWND() < bdp || b.CWND() > 3*bdp {
		t.Fatalf("cwnd = %d, want within [BDP, 3BDP] of %d", b.CWND(), bdp)
	}
}

func TestBBRPoisonedMinRTTShrinksCwnd(t *testing.T) {
	// The Fig. 1 pathology: a few low-latency-channel samples drag
	// rtProp to 7 ms, shrinking the inflight cap far below the wide
	// channel's BDP.
	b := NewBBR()
	now := time.Duration(0)
	for i := 0; i < 400; i++ {
		now += 2 * time.Millisecond
		rtt := 50 * time.Millisecond
		if i%10 == 0 {
			rtt = 7 * time.Millisecond
		}
		b.OnAck(AckEvent{
			Now: now, RTT: rtt, Bytes: MSS,
			InFlight: 30 * MSS, DeliveryRate: 60e6,
		})
	}
	if b.RTProp() != 7*time.Millisecond {
		t.Fatalf("rtProp = %v, want poisoned 7ms", b.RTProp())
	}
	trueBDP := int(60e6 * 0.05 / 8)
	if b.CWND() >= trueBDP {
		t.Fatalf("cwnd %d should be below the true BDP %d", b.CWND(), trueBDP)
	}
}

func TestBBREntersProbeRTTWhenFilterStale(t *testing.T) {
	b := NewBBR()
	now := time.Duration(0)
	// Establish a min RTT, then only ever deliver larger samples; at
	// 10 s the filter goes stale and BBR must drain.
	sawProbeRTT := false
	for i := 0; i < 3000; i++ {
		now += 5 * time.Millisecond
		rtt := 60 * time.Millisecond
		if i == 0 {
			rtt = 50 * time.Millisecond
		}
		b.OnAck(AckEvent{Now: now, RTT: rtt, Bytes: MSS, InFlight: 30 * MSS, DeliveryRate: 60e6})
		if b.State() == "probertt" {
			sawProbeRTT = true
			if b.CWND() != 4*MSS {
				t.Fatalf("ProbeRTT cwnd = %d, want %d", b.CWND(), 4*MSS)
			}
		}
	}
	if !sawProbeRTT {
		t.Fatal("BBR never entered ProbeRTT with a stale filter")
	}
	if b.State() == "probertt" {
		t.Fatal("BBR stuck in ProbeRTT")
	}
}

func TestBBRIgnoresAppLimitedSamples(t *testing.T) {
	b := NewBBR()
	b.OnAck(AckEvent{Now: time.Millisecond, RTT: 50 * time.Millisecond,
		Bytes: MSS, DeliveryRate: 100e6, AppLimited: true})
	if b.BtlBW() != 0 {
		t.Fatalf("app-limited sample entered the filter: %v", b.BtlBW())
	}
}

func TestBBRPacingFollowsGainAndBW(t *testing.T) {
	b := NewBBR()
	b.OnAck(AckEvent{Now: time.Millisecond, RTT: 50 * time.Millisecond,
		Bytes: MSS, InFlight: 10 * MSS, DeliveryRate: 10e6})
	if b.PacingRate() < 10e6 {
		t.Fatalf("startup pacing %v should exceed btlBW", b.PacingRate())
	}
}

func TestVivaceCollapsesUnderPositiveRTTGradient(t *testing.T) {
	v := NewVivace()
	start := v.Rate()
	now := time.Duration(0)
	// Every monitor interval sees RTT rising steeply (as steering's
	// oscillation produces): utility punishes, rate must fall.
	rtt := 10 * time.Millisecond
	for i := 0; i < 4000; i++ {
		now += 2 * time.Millisecond
		rtt += 400 * time.Microsecond
		if rtt > 60*time.Millisecond {
			rtt = 10 * time.Millisecond
		}
		v.OnAck(AckEvent{Now: now, RTT: rtt, Bytes: MSS, InFlight: 10 * MSS})
	}
	if v.Rate() >= start {
		t.Fatalf("vivace rate %v did not fall from %v under RTT inflation", v.Rate(), start)
	}
}

func TestVivaceGrowsOnCleanPath(t *testing.T) {
	v := NewVivace()
	start := v.Rate()
	now := time.Duration(0)
	for i := 0; i < 4000; i++ {
		now += 2 * time.Millisecond
		v.OnAck(AckEvent{Now: now, RTT: 20 * time.Millisecond, Bytes: MSS, InFlight: 10 * MSS})
	}
	if v.Rate() <= start {
		t.Fatalf("vivace rate %v did not grow on a clean path", v.Rate())
	}
}

func TestVivaceRateBounds(t *testing.T) {
	v := NewVivace()
	for i := 0; i < 100; i++ {
		v.OnLoss(LossEvent{Timeout: true, Bytes: MSS})
	}
	if v.Rate() < vivaceMinRate {
		t.Fatalf("rate %v below floor", v.Rate())
	}
	if v.PacingRate() <= 0 {
		t.Fatal("pacing must stay positive")
	}
}

func TestHVCAwareFiltersForeignSamples(t *testing.T) {
	inner := NewVegas()
	h := NewHVCAware(inner, "embb")
	// URLLC sample must not poison the inner baseRTT.
	h.OnAck(AckEvent{Now: time.Millisecond, RTT: 7 * time.Millisecond, Bytes: MSS, Channel: "urllc"})
	h.OnAck(AckEvent{Now: 2 * time.Millisecond, RTT: 50 * time.Millisecond, Bytes: MSS, Channel: "embb"})
	if inner.baseRTT != 50*time.Millisecond {
		t.Fatalf("baseRTT = %v, want 50ms (urllc sample filtered)", inner.baseRTT)
	}
}

func TestHVCAwareKeepsUnlabeledSamples(t *testing.T) {
	inner := NewVegas()
	h := NewHVCAware(inner, "embb")
	h.OnAck(AckEvent{Now: time.Millisecond, RTT: 30 * time.Millisecond, Bytes: MSS})
	if inner.baseRTT != 30*time.Millisecond {
		t.Fatal("unlabeled sample should pass through")
	}
}

func TestHVCAwareDelegates(t *testing.T) {
	inner := NewReno()
	h := NewHVCAware(inner, "embb")
	if h.CWND() != inner.CWND() || h.PacingRate() != inner.PacingRate() {
		t.Fatal("delegation broken")
	}
	if h.Inner() != inner {
		t.Fatal("Inner() broken")
	}
	h.OnLoss(LossEvent{Timeout: true})
	if inner.CWND() != minCwnd {
		t.Fatal("OnLoss not delegated")
	}
	h.OnSent(0, MSS) // must not panic
}

func TestHVCAwarePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil inner":  func() { NewHVCAware(nil, "embb") },
		"empty name": func() { NewHVCAware(NewReno(), "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkBBROnAck(b *testing.B) {
	alg := NewBBR()
	for i := 0; i < b.N; i++ {
		alg.OnAck(AckEvent{
			Now: time.Duration(i) * time.Millisecond, RTT: 50 * time.Millisecond,
			Bytes: MSS, InFlight: 30 * MSS, DeliveryRate: 60e6,
		})
	}
}

func BenchmarkCubicOnAck(b *testing.B) {
	alg := NewCubic()
	alg.OnLoss(LossEvent{Bytes: MSS})
	for i := 0; i < b.N; i++ {
		alg.OnAck(AckEvent{Now: time.Duration(i) * time.Millisecond,
			RTT: 50 * time.Millisecond, Bytes: MSS})
	}
}
