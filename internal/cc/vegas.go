package cc

import "time"

// Vegas implements TCP Vegas (Brakmo et al., 1994): a delay-based
// controller that compares the measured throughput against the
// throughput expected at the minimum RTT and keeps between alpha and
// beta segments' worth of data queued in the network.
//
// Vegas is the clearest victim of packet steering in Figure 1a: a
// single acknowledgment that traveled over URLLC establishes a
// baseRTT near 5 ms, after which the ~50 ms samples from the eMBB path
// look like massive queueing and the window collapses.
type Vegas struct {
	cwnd     int
	ssthresh int

	baseRTT time.Duration // minimum RTT ever observed
	// Per-RTT accounting: Vegas adjusts once per round trip, using the
	// smallest RTT sample seen within the round.
	roundEnd   time.Duration
	roundMin   time.Duration
	roundBytes int
}

const (
	vegasAlpha = 2 // segments of queueing below which Vegas grows
	vegasBeta  = 4 // segments of queueing above which Vegas shrinks
)

// NewVegas returns a Vegas controller with an initial window of 10
// segments.
func NewVegas() *Vegas {
	return &Vegas{cwnd: 10 * MSS, ssthresh: 1 << 30}
}

// Name implements Algorithm.
func (v *Vegas) Name() string { return "vegas" }

// CWND implements Algorithm.
func (v *Vegas) CWND() int { return v.cwnd }

// PacingRate implements Algorithm; Vegas is window-based.
func (v *Vegas) PacingRate() float64 { return 0 }

// OnSent implements Algorithm.
func (v *Vegas) OnSent(time.Duration, int) {}

// OnAck implements Algorithm.
func (v *Vegas) OnAck(ev AckEvent) {
	if ev.RTT <= 0 {
		return
	}
	if v.baseRTT == 0 || ev.RTT < v.baseRTT {
		v.baseRTT = ev.RTT
	}
	if v.roundMin == 0 || ev.RTT < v.roundMin {
		v.roundMin = ev.RTT
	}
	v.roundBytes += ev.Bytes

	if ev.Now < v.roundEnd {
		return
	}
	// One round elapsed: evaluate the diff rule.
	rtt := v.roundMin
	v.roundEnd = ev.Now + rtt
	v.roundMin = 0
	v.roundBytes = 0

	if v.cwnd < v.ssthresh {
		// Vegas slow start: double every other RTT; approximated by
		// growing half as fast as Reno, checked against the diff rule.
		v.cwnd += v.cwnd / 2
	}
	// diff = cwnd * (rtt - baseRTT)/rtt, in bytes of queued data.
	queued := float64(v.cwnd) * float64(rtt-v.baseRTT) / float64(rtt)
	switch {
	case queued < vegasAlpha*MSS:
		v.cwnd += MSS
	case queued > vegasBeta*MSS:
		v.cwnd = clampCwnd(v.cwnd - MSS)
		v.ssthresh = v.cwnd // leave slow start once queueing appears
	}
}

// OnLoss implements Algorithm.
func (v *Vegas) OnLoss(ev LossEvent) {
	if ev.Timeout {
		v.ssthresh = clampCwnd(v.cwnd / 2)
		v.cwnd = minCwnd
		return
	}
	v.cwnd = clampCwnd(v.cwnd / 2)
	v.ssthresh = v.cwnd
}
