package cc

// Property-based tests over random event sequences: invariants every
// congestion controller must keep regardless of what the network does.

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// event is a compact encoding of one random cc event.
type event struct {
	Kind    uint8 // 0-5: ack, 6: loss, 7: timeout
	RTTms   uint8
	Bytes   uint16
	RateMbp uint8
	GapMs   uint8
}

// drive replays events into alg, returning false if an invariant
// breaks.
func drive(alg Algorithm, events []event) bool {
	now := time.Duration(0)
	for _, e := range events {
		now += time.Duration(e.GapMs%50+1) * time.Millisecond
		bytes := int(e.Bytes%4000) + 1
		switch {
		case e.Kind < 6:
			alg.OnAck(AckEvent{
				Now:          now,
				RTT:          time.Duration(e.RTTms%200) * time.Millisecond,
				Bytes:        bytes,
				InFlight:     int(e.Bytes),
				DeliveryRate: float64(e.RateMbp) * 1e6,
				AppLimited:   e.Kind == 5,
			})
		case e.Kind == 6:
			alg.OnLoss(LossEvent{Now: now, Bytes: bytes, InFlight: int(e.Bytes)})
		default:
			alg.OnLoss(LossEvent{Now: now, Bytes: bytes, Timeout: true})
		}
		alg.OnSent(now, bytes)
		if alg.CWND() < minCwnd && alg.Name() != "bbr" { // BBR's ProbeRTT floor is 4 MSS anyway
			return false
		}
		if alg.CWND() <= 0 {
			return false
		}
		if alg.PacingRate() < 0 {
			return false
		}
	}
	return true
}

func TestInvariantsUnderRandomEvents(t *testing.T) {
	factories := map[string]func() Algorithm{
		"reno":   func() Algorithm { return NewReno() },
		"cubic":  func() Algorithm { return NewCubic() },
		"vegas":  func() Algorithm { return NewVegas() },
		"bbr":    func() Algorithm { return NewBBR() },
		"vivace": func() Algorithm { return NewVivace() },
		"copa":   func() Algorithm { return NewCopa() },
		"hvc":    func() Algorithm { return NewHVCAware(NewCubic(), "embb") },
	}
	for name, mk := range factories {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			f := func(events []event) bool {
				if len(events) > 500 {
					events = events[:500]
				}
				return drive(mk(), events)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(13))}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: cwnd growth in slow start is bounded by bytes acked
// (no algorithm more than doubles per acked byte).
func TestSlowStartBoundedGrowth(t *testing.T) {
	for _, mk := range []func() Algorithm{
		func() Algorithm { return NewReno() },
		func() Algorithm { return NewCubic() },
	} {
		alg := mk()
		before := alg.CWND()
		total := 0
		now := time.Duration(0)
		for i := 0; i < 100; i++ {
			now += 5 * time.Millisecond
			alg.OnAck(AckEvent{Now: now, RTT: 50 * time.Millisecond, Bytes: MSS})
			total += MSS
		}
		if alg.CWND() > before+total+MSS {
			t.Errorf("%s grew %d bytes on %d acked", alg.Name(), alg.CWND()-before, total)
		}
	}
}

func TestBBRDrainFollowsStartup(t *testing.T) {
	b := NewBBR()
	now := time.Duration(0)
	sawDrain := false
	for i := 0; i < 200; i++ {
		now += 2 * time.Millisecond
		b.OnAck(AckEvent{Now: now, RTT: 40 * time.Millisecond, Bytes: MSS,
			InFlight: 100 * MSS, DeliveryRate: 50e6})
		if b.State() == "drain" {
			sawDrain = true
			if b.PacingRate() >= b.BtlBW() {
				t.Fatal("drain must pace below the bottleneck estimate")
			}
		}
	}
	if !sawDrain {
		t.Fatal("BBR never drained (inflight kept above BDP)")
	}
}

func TestBBRProbeBWCycles(t *testing.T) {
	b := NewBBR()
	now := time.Duration(0)
	gains := map[float64]bool{}
	for i := 0; i < 4000; i++ {
		now += 2 * time.Millisecond
		b.OnAck(AckEvent{Now: now, RTT: 40 * time.Millisecond, Bytes: MSS,
			InFlight: 10 * MSS, DeliveryRate: 50e6})
		if b.State() == "probebw" {
			gains[b.pacingGain] = true
		}
	}
	if !gains[1.25] || !gains[0.75] || !gains[1] {
		t.Fatalf("ProbeBW gains seen: %v, want the full cycle", gains)
	}
}

func TestVivaceMonitorIntervalRespectsRTT(t *testing.T) {
	v := NewVivace()
	v.srtt = 40 * time.Millisecond
	if got := v.miLen(); got != 60*time.Millisecond {
		t.Fatalf("miLen = %v, want 1.5*srtt", got)
	}
	v.srtt = 2 * time.Millisecond
	if got := v.miLen(); got != 10*time.Millisecond {
		t.Fatalf("miLen floor = %v, want 10ms", got)
	}
	v.srtt = 0
	if got := v.miLen(); got != 50*time.Millisecond {
		t.Fatalf("miLen default = %v, want 50ms", got)
	}
}

func TestCubicFastConvergence(t *testing.T) {
	c := NewCubic()
	c.cwnd = 100 * MSS
	c.OnAck(AckEvent{Now: time.Second, RTT: 40 * time.Millisecond, Bytes: MSS})
	c.OnLoss(LossEvent{Bytes: MSS})
	wmax1 := c.wMax
	// A second loss while below the previous wMax triggers fast
	// convergence: the recorded maximum shrinks further.
	c.OnLoss(LossEvent{Bytes: MSS})
	if c.wMax >= wmax1 {
		t.Fatalf("fast convergence: wMax %v should drop below %v", c.wMax, wmax1)
	}
}

func TestHVCAwareNameComposition(t *testing.T) {
	h := NewHVCAware(NewHVCAware(NewCubic(), "embb"), "embb")
	if h.Name() != "hvc-hvc-cubic" {
		t.Fatalf("Name = %q", h.Name())
	}
}
