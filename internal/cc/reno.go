package cc

import "time"

// Reno implements TCP NewReno's AIMD control: slow start to ssthresh,
// additive increase of one segment per RTT, multiplicative decrease by
// half on loss. It serves as the simplest loss-based baseline.
type Reno struct {
	cwnd     int
	ssthresh int
	// acked accumulates bytes acked during congestion avoidance so the
	// window grows one MSS per window of data.
	acked int
}

// NewReno returns a Reno controller with the conventional initial
// window of 10 segments.
func NewReno() *Reno {
	return &Reno{cwnd: 10 * MSS, ssthresh: 1 << 30}
}

// Name implements Algorithm.
func (r *Reno) Name() string { return "reno" }

// CWND implements Algorithm.
func (r *Reno) CWND() int { return r.cwnd }

// PacingRate implements Algorithm; Reno is purely window-based.
func (r *Reno) PacingRate() float64 { return 0 }

// OnSent implements Algorithm.
func (r *Reno) OnSent(time.Duration, int) {}

// OnAck implements Algorithm.
func (r *Reno) OnAck(ev AckEvent) {
	if r.cwnd < r.ssthresh {
		r.cwnd += ev.Bytes // slow start: exponential growth
		return
	}
	r.acked += ev.Bytes
	if r.acked >= r.cwnd {
		r.acked -= r.cwnd
		r.cwnd += MSS
	}
}

// OnLoss implements Algorithm.
func (r *Reno) OnLoss(ev LossEvent) {
	if ev.Timeout {
		r.ssthresh = clampCwnd(r.cwnd / 2)
		r.cwnd = minCwnd
		return
	}
	r.cwnd = clampCwnd(r.cwnd / 2)
	r.ssthresh = r.cwnd
}
