package cc

import (
	"testing"
	"time"
)

// copaLink drives a Copa sender through a closed-loop analytic
// bottleneck: rate mu bytes/s, propagation RTT base, infinite buffer.
// The sender is window-limited, so the standing queue is
// (cwnd - BDP) bytes and the observed RTT is base plus the drain time
// of that queue. Acks arrive one per segment, cwnd/MSS per round trip.
// It runs for dur of simulated time and returns the mean over the
// final third of (throughput bytes/s, queue bytes).
func copaLink(c *Copa, mu float64, base, dur time.Duration) (rate, queue float64) {
	bdp := mu * base.Seconds()
	now := time.Duration(0)
	var sumRate, sumQueue float64
	var n int
	for now < dur {
		q := float64(c.CWND()) - bdp
		if q < 0 {
			q = 0
		}
		rtt := base + time.Duration(q/mu*float64(time.Second))
		interAck := time.Duration(float64(rtt) / (float64(c.CWND()) / MSS))
		if interAck <= 0 {
			interAck = time.Microsecond
		}
		now += interAck
		c.OnAck(AckEvent{Now: now, RTT: rtt, Bytes: MSS, InFlight: c.CWND()})
		if now > dur*2/3 {
			tput := float64(c.CWND()) / rtt.Seconds()
			if tput > mu {
				tput = mu // the link caps the drain rate
			}
			sumRate += tput
			sumQueue += q
			n++
		}
	}
	return sumRate / float64(n), sumQueue / float64(n)
}

// Copa's published single-flow steady state for δ=0.5: near-full link
// utilization with a standing queue of only a few packets (the target
// rate MSS/(δ·dq) pins dq at 2·MSS/μ, i.e. two segments queued, with a
// small oscillation around it).
func TestCopaSteadyStateRate(t *testing.T) {
	mu := 6e6 // 48 Mbit/s in bytes/s
	c := NewCopa()
	rate, queue := copaLink(c, mu, 40*time.Millisecond, 8*time.Second)
	if rate < 0.85*mu {
		t.Fatalf("steady-state rate %.0f below 85%% of link rate %.0f", rate, mu)
	}
	if pkts := queue / MSS; pkts < 0.2 || pkts > 12 {
		t.Fatalf("steady-state queue %.1f pkts outside the few-packet band", pkts)
	}
	if c.Mode() != "default" {
		t.Fatalf("single flow ended in %s mode", c.Mode())
	}
}

func TestCopaSlowStartExitsOnTargetCross(t *testing.T) {
	c := NewCopa()
	// No queue: stays in slow start, doubling per RTT.
	ackStream(c, 40, 50*time.Millisecond, 5*time.Millisecond, MSS)
	if !c.slowStart {
		t.Fatal("left slow start with zero queueing delay")
	}
	grown := c.CWND()
	if grown <= 10*MSS {
		t.Fatalf("cwnd did not grow in slow start: %d", grown)
	}
	// A large standing queue puts the rate far above target. The
	// standing window spans srtt/2, so the old low-RTT samples take a
	// while to age out before dq turns positive.
	now := 40 * 5 * time.Millisecond
	peak := grown
	for i := 0; i < 80; i++ {
		now += 5 * time.Millisecond
		c.OnAck(AckEvent{Now: now, RTT: 250 * time.Millisecond, Bytes: MSS, InFlight: c.CWND()})
		if c.CWND() > peak {
			peak = c.CWND()
		}
	}
	if c.slowStart {
		t.Fatal("still in slow start despite rate above target")
	}
	if c.CWND() >= peak {
		t.Fatalf("cwnd %d did not shrink above target (peak %d)", c.CWND(), peak)
	}
}

func TestCopaVelocityDoublesOnPersistentDirection(t *testing.T) {
	c := NewCopa()
	// Constant RTT, zero queueing delay: direction is up every round.
	ackStream(c, 400, 50*time.Millisecond, 5*time.Millisecond, MSS)
	if c.v < 4 {
		t.Fatalf("velocity %v after persistent growth, want >= 4", c.v)
	}
	// Crossing the target flips the direction and resets velocity: a
	// single above-target ack (standing queue 100ms against a 50ms
	// floor) must drop v back to one.
	d := NewCopa()
	d.slowStart = false
	d.srtt = 50 * time.Millisecond
	d.minRTT = 50 * time.Millisecond
	d.v = 8
	d.direction = 1
	d.OnAck(AckEvent{Now: time.Second, RTT: 150 * time.Millisecond, Bytes: MSS, InFlight: d.CWND()})
	if d.v != 1 {
		t.Fatalf("velocity %v after target crossing, want 1", d.v)
	}
	if d.direction != -1 {
		t.Fatalf("direction %d after target crossing, want -1", d.direction)
	}
}

func TestCopaCompetitiveModeAIMD(t *testing.T) {
	c := NewCopa()
	// Establish the propagation floor.
	c.OnAck(AckEvent{Now: time.Millisecond, RTT: 50 * time.Millisecond, Bytes: MSS})
	// A buffer-filler holds the queue: dq never drops near zero.
	now := time.Millisecond
	for i := 0; i < 400; i++ {
		now += 5 * time.Millisecond
		rtt := 140 * time.Millisecond
		if i%2 == 0 {
			rtt = 150 * time.Millisecond
		}
		c.OnAck(AckEvent{Now: now, RTT: rtt, Bytes: MSS, InFlight: c.CWND()})
	}
	if c.Mode() != "competitive" {
		t.Fatalf("mode = %s with a held queue, want competitive", c.Mode())
	}
	if c.Delta() >= copaDelta {
		t.Fatalf("delta %g did not additively increase 1/δ in competitive mode", c.Delta())
	}
	// Loss is the multiplicative decrease: 1/δ halves (δ doubles),
	// capped at the default δ.
	before := c.invDelta
	c.OnLoss(LossEvent{Now: now, Bytes: MSS})
	c.roundTick(now + c.srtt) // bookkeeping round with the loss recorded
	if c.invDelta > before/2+1 {
		t.Fatalf("1/δ %g after loss, want about half of %g", c.invDelta, before)
	}
	if c.Delta() > copaDelta {
		t.Fatalf("delta %g exceeded the default cap", c.Delta())
	}
	// Once the queue drains again, Copa reverts to the default mode.
	for i := 0; i < 400; i++ {
		now += 5 * time.Millisecond
		c.OnAck(AckEvent{Now: now, RTT: 50 * time.Millisecond, Bytes: MSS, InFlight: c.CWND()})
	}
	if c.Mode() != "default" || c.Delta() != copaDelta {
		t.Fatalf("mode=%s delta=%g after queue drained, want default/%g", c.Mode(), c.Delta(), copaDelta)
	}
}

func TestCopaTimeoutCollapses(t *testing.T) {
	c := NewCopa()
	ackStream(c, 100, 50*time.Millisecond, 5*time.Millisecond, MSS)
	c.OnLoss(LossEvent{Now: time.Second, Bytes: MSS, Timeout: true})
	if c.CWND() != minCwnd {
		t.Fatalf("cwnd %d after timeout, want floor %d", c.CWND(), minCwnd)
	}
	if !c.slowStart {
		t.Fatal("timeout should restart slow start")
	}
}

func TestCopaIgnoresZeroRTTSamples(t *testing.T) {
	c := NewCopa()
	before := c.CWND()
	c.OnAck(AckEvent{Now: time.Millisecond, RTT: 0, Bytes: MSS})
	c.OnAck(AckEvent{Now: 2 * time.Millisecond, RTT: -time.Millisecond, Bytes: MSS})
	if c.CWND() != before {
		t.Fatalf("cwnd moved on non-positive RTT samples: %d -> %d", before, c.CWND())
	}
}
