package cc

import (
	"fmt"
	"strings"
)

// Configured is implemented by algorithms that can render their tuning
// as a canonical string. The sweep engine folds these strings into its
// result-cache keys, so cached cells invalidate when an algorithm's
// parameters change: the strings below are built from the actual
// tuning constants, and the "/vN" tag must be bumped whenever behavior
// changes in a way the constants don't capture.
type Configured interface {
	// Config returns a canonical one-line description of the
	// algorithm's tuning, stable across process runs.
	Config() string
}

// Config implements Configured.
func (c *Cubic) Config() string {
	return fmt.Sprintf("cubic/v1 c=%g beta=%g iw=%d", cubicC, cubicBeta, 10*MSS)
}

// Config implements Configured.
func (r *Reno) Config() string {
	return fmt.Sprintf("reno/v1 beta=0.5 iw=%d", 10*MSS)
}

// Config implements Configured.
func (b *BBR) Config() string {
	cycle := make([]string, len(bbrPacingCycle))
	for i, g := range bbrPacingCycle {
		cycle[i] = fmt.Sprintf("%g", g)
	}
	return fmt.Sprintf("bbr/v1 highgain=%g bwrounds=%d rtwindow=%s probertt=%s growth=%g fullbwrounds=%d cycle=%s iw=%d",
		bbrHighGain, bbrBWWindowRounds, bbrRTWindow, bbrProbeRTTTime,
		bbrStartupGrowth, bbrFullBWRoundsMax, strings.Join(cycle, ","), 10*MSS)
}

// Config implements Configured.
func (v *Vegas) Config() string {
	return fmt.Sprintf("vegas/v1 alpha=%d beta=%d iw=%d", vegasAlpha, vegasBeta, 10*MSS)
}

// Config implements Configured.
func (c *Copa) Config() string {
	return fmt.Sprintf("copa/v1 delta=%g minwin=%s moderrts=%d emptyfrac=%g dirrtts=%d maxinvdelta=%d pacinggain=%d iw=%d",
		copaDelta, copaMinRTTWindow, copaModeRTTs, copaEmptyFrac,
		copaDirRTTs, copaMaxInvDelta, copaPacingGain, 10*MSS)
}

// Config implements Configured.
func (v *Vivace) Config() string {
	return fmt.Sprintf("vivace/v1 minrate=%g maxrate=%g eps=%g step=%g..%g rttcoeff=%d losscoeff=%g iw=%d",
		vivaceMinRate, vivaceMaxRate, vivaceEps, vivaceStepBase, vivaceStepMax,
		vivaceRTTCoeff, vivaceLossCoeff, 10*MSS)
}

// Config implements Configured. The wrapper's fingerprint includes the
// wrapped algorithm's, so a tuning change anywhere in the stack shows.
func (h *HVCAware) Config() string {
	inner := h.inner.Name()
	if c, ok := h.inner.(Configured); ok {
		inner = c.Config()
	}
	return fmt.Sprintf("hvcaware/v1 bulk=%s inner=(%s)", h.bulk, inner)
}
