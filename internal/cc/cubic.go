package cc

import (
	"math"
	"time"
)

// Cubic implements TCP CUBIC (RFC 8312): window growth is a cubic
// function of time since the last congestion event, anchored at the
// window size where loss last occurred. Being loss-based, CUBIC is
// nearly insensitive to the RTT excursions packet steering produces —
// which is why it is the one algorithm in Figure 1a that fills the
// wide channel.
type Cubic struct {
	cwnd     int
	ssthresh int

	// Cubic state, in segments and seconds per the RFC.
	wMax       float64       // window before the last reduction
	epochStart time.Duration // time of the last reduction; -1 = unset
	k          float64       // time to grow back to wMax
	wTCP       float64       // TCP-friendly (Reno-equivalent) window
	srtt       time.Duration // smoothed RTT for target projection
}

const (
	cubicC    = 0.4 // growth constant, segments/s³
	cubicBeta = 0.7 // multiplicative decrease factor
)

// NewCubic returns a CUBIC controller with an initial window of 10
// segments.
func NewCubic() *Cubic {
	return &Cubic{cwnd: 10 * MSS, ssthresh: 1 << 30, epochStart: -1}
}

// Name implements Algorithm.
func (c *Cubic) Name() string { return "cubic" }

// CWND implements Algorithm.
func (c *Cubic) CWND() int { return c.cwnd }

// PacingRate implements Algorithm; CUBIC is window-based.
func (c *Cubic) PacingRate() float64 { return 0 }

// OnSent implements Algorithm.
func (c *Cubic) OnSent(time.Duration, int) {}

// OnAck implements Algorithm.
func (c *Cubic) OnAck(ev AckEvent) {
	if ev.RTT > 0 {
		if c.srtt == 0 {
			c.srtt = ev.RTT
		} else {
			c.srtt = (7*c.srtt + ev.RTT) / 8
		}
	}
	if c.cwnd < c.ssthresh {
		c.cwnd += ev.Bytes
		return
	}
	c.avoidCongestion(ev)
}

func (c *Cubic) avoidCongestion(ev AckEvent) {
	if c.epochStart < 0 {
		c.epochStart = ev.Now
		w := float64(c.cwnd) / MSS
		if w < c.wMax {
			c.k = math.Cbrt((c.wMax - w) / cubicC)
		} else {
			c.k = 0
			c.wMax = w
		}
		c.wTCP = w
	}
	t := (ev.Now - c.epochStart).Seconds()
	rtt := c.srtt.Seconds()
	// Target window one RTT in the future, per the RFC.
	target := c.wMax + cubicC*math.Pow(t+rtt-c.k, 3)

	// TCP-friendly region: grow at least as fast as Reno would.
	c.wTCP += 3 * (1 - cubicBeta) / (1 + cubicBeta) * float64(ev.Bytes) / float64(c.cwnd)
	if target < c.wTCP {
		target = c.wTCP
	}

	w := float64(c.cwnd) / MSS
	if target > w {
		// cwnd grows by (target-cwnd)/cwnd per acked segment.
		inc := (target - w) / w * float64(ev.Bytes)
		c.cwnd += int(inc)
	} else {
		// Stay put; CUBIC never shrinks outside a congestion event.
		c.cwnd += int(float64(ev.Bytes) / (100 * w)) // minimal growth
	}
}

// OnLoss implements Algorithm.
func (c *Cubic) OnLoss(ev LossEvent) {
	w := float64(c.cwnd) / MSS
	// Fast convergence: release bandwidth sooner when the window is
	// still below the previous maximum.
	if w < c.wMax {
		c.wMax = w * (1 + cubicBeta) / 2
	} else {
		c.wMax = w
	}
	if ev.Timeout {
		c.ssthresh = clampCwnd(int(w * cubicBeta * MSS))
		c.cwnd = minCwnd
	} else {
		c.cwnd = clampCwnd(int(w * cubicBeta * MSS))
		c.ssthresh = c.cwnd
	}
	c.epochStart = -1
}
