package cc

import (
	"math"
	"time"
)

// Vivace implements PCC Vivace's online-learning rate control (Dong et
// al., NSDI '18): the sender tests its rate over monitor intervals,
// scores each interval with a utility function that rewards throughput
// and penalizes RTT inflation and loss,
//
//	u(x) = x^0.9 − b·x·max(0, dRTT/dt) − c·x·lossRate,
//
// and moves the rate along the utility gradient.
//
// Vivace's RTT-gradient term is the paper's §3.1 failure mode: packet
// steering makes consecutive RTT samples jump between channel
// latencies, the measured gradient is large and frequently positive,
// and the utility landscape pushes the rate toward its floor.
type Vivace struct {
	rate float64 // bits per second
	cwnd int

	srtt time.Duration

	// Current monitor interval.
	miEnd      time.Duration
	miFirstRTT time.Duration
	miFirstAt  time.Duration
	miLastRTT  time.Duration
	miLastAt   time.Duration
	miAcked    int
	miLost     int

	// Gradient trial state: each trial runs one MI at rate·(1+ε) then
	// one at rate·(1−ε) and steps toward the better one.
	phase     int // 0 = up-probe, 1 = down-probe
	utilityUp float64
	// dir tracks consecutive same-direction moves for step
	// amplification, as Vivace's confidence amplifier does.
	dir     int
	dirRuns int
}

const (
	vivaceMinRate   = 0.24e6 // 2 packets per 100 ms
	vivaceMaxRate   = 10e9
	vivaceEps       = 0.05
	vivaceStepBase  = 0.05
	vivaceStepMax   = 0.35
	vivaceRTTCoeff  = 900 // penalty per unit RTT gradient
	vivaceLossCoeff = 11.35
)

// NewVivace returns a Vivace controller starting at 2 Mbps.
func NewVivace() *Vivace {
	return &Vivace{rate: 2e6, cwnd: 10 * MSS}
}

// Name implements Algorithm.
func (v *Vivace) Name() string { return "vivace" }

// Rate reports the current base sending rate in bits/s.
func (v *Vivace) Rate() float64 { return v.rate }

// CWND implements Algorithm. Vivace is rate-based; the window only
// bounds worst-case inflight at twice the rate·RTT product.
func (v *Vivace) CWND() int { return v.cwnd }

// PacingRate implements Algorithm.
func (v *Vivace) PacingRate() float64 {
	if v.phase == 0 {
		return v.rate * (1 + vivaceEps)
	}
	return v.rate * (1 - vivaceEps)
}

// OnSent implements Algorithm.
func (v *Vivace) OnSent(time.Duration, int) {}

// OnAck implements Algorithm.
func (v *Vivace) OnAck(ev AckEvent) {
	if ev.RTT > 0 {
		if v.srtt == 0 {
			v.srtt = ev.RTT
		} else {
			v.srtt = (7*v.srtt + ev.RTT) / 8
		}
		if v.miFirstAt == 0 {
			v.miFirstRTT, v.miFirstAt = ev.RTT, ev.Now
		}
		v.miLastRTT, v.miLastAt = ev.RTT, ev.Now
	}
	v.miAcked += ev.Bytes

	if v.miEnd == 0 {
		v.miEnd = ev.Now + v.miLen()
		return
	}
	if ev.Now >= v.miEnd {
		v.finishMI(ev.Now)
	}
	v.updateCwnd()
}

// OnLoss implements Algorithm; losses feed the utility's loss term.
func (v *Vivace) OnLoss(ev LossEvent) {
	v.miLost += ev.Bytes
	if ev.Timeout {
		v.rate = math.Max(vivaceMinRate, v.rate/2)
	}
}

func (v *Vivace) miLen() time.Duration {
	if v.srtt == 0 {
		return 50 * time.Millisecond
	}
	d := v.srtt * 3 / 2
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	return d
}

func (v *Vivace) finishMI(now time.Duration) {
	u := v.utility()
	if v.phase == 0 {
		v.utilityUp = u
		v.phase = 1
	} else {
		v.step(v.utilityUp, u)
		v.phase = 0
	}
	v.miEnd = now + v.miLen()
	v.miFirstAt, v.miFirstRTT = 0, 0
	v.miLastAt, v.miLastRTT = 0, 0
	v.miAcked, v.miLost = 0, 0
}

// utility scores the just-finished monitor interval.
func (v *Vivace) utility() float64 {
	elapsed := v.miLen().Seconds()
	goodput := float64(v.miAcked) * 8 / elapsed / 1e6 // Mbps
	var grad float64
	if v.miLastAt > v.miFirstAt {
		grad = (v.miLastRTT - v.miFirstRTT).Seconds() / (v.miLastAt - v.miFirstAt).Seconds()
	}
	if grad < 0 {
		grad = 0
	}
	lossRate := 0.0
	if total := v.miAcked + v.miLost; total > 0 {
		lossRate = float64(v.miLost) / float64(total)
	}
	return math.Pow(goodput, 0.9) - vivaceRTTCoeff*goodput*grad - vivaceLossCoeff*goodput*lossRate
}

// step moves the base rate toward the better-scoring probe.
func (v *Vivace) step(up, down float64) {
	newDir := 1
	if down > up {
		newDir = -1
	}
	if newDir == v.dir {
		v.dirRuns++
	} else {
		v.dir = newDir
		v.dirRuns = 0
	}
	step := vivaceStepBase * (1 + 0.5*float64(v.dirRuns))
	if step > vivaceStepMax {
		step = vivaceStepMax
	}
	v.rate *= 1 + float64(newDir)*step
	v.rate = math.Min(vivaceMaxRate, math.Max(vivaceMinRate, v.rate))
}

func (v *Vivace) updateCwnd() {
	if v.srtt == 0 {
		return
	}
	v.cwnd = clampCwnd(int(2 * v.rate * v.srtt.Seconds() / 8))
}
