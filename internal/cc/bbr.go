package cc

import "time"

// BBR implements a faithful-in-shape BBRv1 (Cardwell et al., 2017):
// it models the path with a windowed-max bottleneck bandwidth filter
// and a windowed-min round-trip filter, paces at gain × btlBW, and
// cycles through Startup, Drain, ProbeBW, and ProbeRTT states.
//
// Under packet steering BBR's model breaks exactly as §3.1 describes:
// acknowledgments that traveled the low-latency channel poison the
// min-RTT filter, the estimated BDP shrinks far below the wide
// channel's true BDP, and the inflight cap throttles throughput.
type BBR struct {
	cwnd   int
	pacing float64

	state bbrState

	// btlBW filter: windowed max over bbrBWWindowRounds rounds.
	bwSamples []bwSample
	btlBW     float64

	// rtProp filter: windowed min over bbrRTWindow.
	rtProp      time.Duration
	rtPropStamp time.Duration

	// Round accounting (delivered-bytes based).
	delivered          int64
	nextRoundDelivered int64
	roundCount         int64

	// Startup full-pipe detection.
	fullBW       float64
	fullBWRounds int
	filledPipe   bool

	// ProbeBW gain cycling.
	cycleIndex int
	cycleStamp time.Duration

	// ProbeRTT bookkeeping.
	probeRTTDone time.Duration

	// Ack-aggregation compensation (Linux bbr_update_ack_aggregation):
	// acks arriving in bursts — which channel switching guarantees —
	// would otherwise leave the pipe idle between bursts, so BBR adds
	// the measured excess to its window.
	extraAckedEpochStart     time.Duration
	extraAckedEpochDelivered int64
	extraAcked               []bwSample // windowed max, value in bytes

	pacingGain float64
	cwndGain   float64
}

type bbrState int

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

func (s bbrState) String() string {
	switch s {
	case bbrStartup:
		return "startup"
	case bbrDrain:
		return "drain"
	case bbrProbeBW:
		return "probebw"
	default:
		return "probertt"
	}
}

type bwSample struct {
	round int64
	bw    float64
}

const (
	bbrHighGain        = 2.885 // 2/ln(2)
	bbrBWWindowRounds  = 10
	bbrRTWindow        = 10 * time.Second
	bbrProbeRTTTime    = 200 * time.Millisecond
	bbrStartupGrowth   = 1.25
	bbrFullBWRoundsMax = 3
)

var bbrPacingCycle = [...]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// NewBBR returns a BBR controller in Startup with an initial window of
// 10 segments.
func NewBBR() *BBR {
	return &BBR{
		cwnd:       10 * MSS,
		state:      bbrStartup,
		pacingGain: bbrHighGain,
		cwndGain:   bbrHighGain,
	}
}

// Name implements Algorithm.
func (b *BBR) Name() string { return "bbr" }

// State reports the current state-machine phase, for experiment
// annotation (Fig. 1b's ProbeRTT dip).
func (b *BBR) State() string { return b.state.String() }

// RTProp reports the current min-RTT estimate.
func (b *BBR) RTProp() time.Duration { return b.rtProp }

// BtlBW reports the current bottleneck-bandwidth estimate in bits/s.
func (b *BBR) BtlBW() float64 { return b.btlBW }

// CWND implements Algorithm.
func (b *BBR) CWND() int { return b.cwnd }

// PacingRate implements Algorithm.
func (b *BBR) PacingRate() float64 { return b.pacing }

// OnSent implements Algorithm.
func (b *BBR) OnSent(time.Duration, int) {}

// OnAck implements Algorithm.
func (b *BBR) OnAck(ev AckEvent) {
	b.delivered += int64(ev.Bytes)
	if b.delivered >= b.nextRoundDelivered {
		b.roundCount++
		b.nextRoundDelivered = b.delivered + int64(ev.InFlight)
	}

	if ev.DeliveryRate > 0 && !ev.AppLimited {
		b.updateBW(ev.DeliveryRate)
	}
	b.updateAckAggregation(ev)
	// Enter ProbeRTT when the min-RTT filter goes stale (the 10 s
	// drain visible in Fig. 1b). Checked before the filter update,
	// which would otherwise refresh the stamp on expiry.
	if b.state != bbrProbeRTT && b.rtProp > 0 && ev.Now-b.rtPropStamp > bbrRTWindow {
		b.state = bbrProbeRTT
		b.probeRTTDone = ev.Now + bbrProbeRTTTime
	}
	if ev.RTT > 0 {
		b.updateRTProp(ev.Now, ev.RTT)
	}

	b.checkFullPipe()
	b.advanceState(ev)
	b.setGains()
	b.updateControls(ev.Now)
}

func (b *BBR) updateBW(bw float64) {
	b.bwSamples = append(b.bwSamples, bwSample{round: b.roundCount, bw: bw})
	// Expire and recompute the windowed max.
	cut := b.roundCount - bbrBWWindowRounds
	keep := b.bwSamples[:0]
	max := 0.0
	for _, s := range b.bwSamples {
		if s.round >= cut {
			keep = append(keep, s)
			if s.bw > max {
				max = s.bw
			}
		}
	}
	b.bwSamples = keep
	b.btlBW = max
}

// updateAckAggregation measures how far ack arrivals run ahead of the
// btlBW model within an epoch and keeps a windowed max of the excess.
func (b *BBR) updateAckAggregation(ev AckEvent) {
	if b.btlBW <= 0 {
		return
	}
	expected := int64(b.btlBW / 8 * (ev.Now - b.extraAckedEpochStart).Seconds())
	b.extraAckedEpochDelivered += int64(ev.Bytes)
	extra := b.extraAckedEpochDelivered - expected
	if extra < 0 {
		b.extraAckedEpochStart = ev.Now
		b.extraAckedEpochDelivered = int64(ev.Bytes)
		extra = int64(ev.Bytes)
	}
	if max := int64(b.cwnd); extra > max {
		extra = max
	}
	b.extraAcked = append(b.extraAcked, bwSample{round: b.roundCount, bw: float64(extra)})
	cut := b.roundCount - bbrBWWindowRounds
	keep := b.extraAcked[:0]
	for _, s := range b.extraAcked {
		if s.round >= cut {
			keep = append(keep, s)
		}
	}
	b.extraAcked = keep
}

// maxExtraAcked returns the windowed ack-aggregation estimate in bytes.
func (b *BBR) maxExtraAcked() int {
	var max float64
	for _, s := range b.extraAcked {
		if s.bw > max {
			max = s.bw
		}
	}
	return int(max)
}

func (b *BBR) updateRTProp(now time.Duration, rtt time.Duration) {
	expired := now-b.rtPropStamp > bbrRTWindow
	if rtt <= b.rtProp || b.rtProp == 0 || expired {
		b.rtProp = rtt
		b.rtPropStamp = now
	}
}

func (b *BBR) checkFullPipe() {
	if b.filledPipe || b.state != bbrStartup {
		return
	}
	if b.btlBW >= b.fullBW*bbrStartupGrowth {
		b.fullBW = b.btlBW
		b.fullBWRounds = 0
		return
	}
	b.fullBWRounds++
	if b.fullBWRounds >= bbrFullBWRoundsMax {
		b.filledPipe = true
	}
}

func (b *BBR) advanceState(ev AckEvent) {
	now := ev.Now
	switch b.state {
	case bbrStartup:
		if b.filledPipe {
			b.state = bbrDrain
		}
	case bbrDrain:
		if ev.InFlight <= b.bdp(1) {
			b.enterProbeBW(now)
		}
	case bbrProbeBW:
		// Advance the gain cycle once per rtProp.
		if b.rtProp > 0 && now-b.cycleStamp > b.rtProp {
			b.cycleIndex = (b.cycleIndex + 1) % len(bbrPacingCycle)
			b.cycleStamp = now
		}
	case bbrProbeRTT:
		if now >= b.probeRTTDone {
			b.rtPropStamp = now // filter refreshed by draining
			if b.filledPipe {
				b.enterProbeBW(now)
			} else {
				b.state = bbrStartup
			}
		}
	}
}

func (b *BBR) enterProbeBW(now time.Duration) {
	b.state = bbrProbeBW
	b.cycleIndex = 1 // start in the drain phase of the cycle per BBRv1
	b.cycleStamp = now
}

func (b *BBR) setGains() {
	switch b.state {
	case bbrStartup:
		b.pacingGain, b.cwndGain = bbrHighGain, bbrHighGain
	case bbrDrain:
		b.pacingGain, b.cwndGain = 1/bbrHighGain, bbrHighGain
	case bbrProbeBW:
		b.pacingGain, b.cwndGain = bbrPacingCycle[b.cycleIndex], 2
	case bbrProbeRTT:
		b.pacingGain, b.cwndGain = 1, 1
	}
}

// bdp returns gain × estimated bandwidth-delay product in bytes.
func (b *BBR) bdp(gain float64) int {
	if b.btlBW == 0 || b.rtProp == 0 {
		return 10 * MSS
	}
	return int(gain * b.btlBW * b.rtProp.Seconds() / 8)
}

func (b *BBR) updateControls(now time.Duration) {
	switch {
	case b.state == bbrProbeRTT:
		b.cwnd = 4 * MSS
	case !b.filledPipe && b.bdp(b.cwndGain) < b.cwnd:
		// Startup never shrinks the window (Linux bbr_set_cwnd):
		// early noisy estimates must not strangle the search.
	default:
		b.cwnd = b.bdp(b.cwndGain) + b.maxExtraAcked()
		if b.cwnd < 4*MSS {
			b.cwnd = 4 * MSS // BBR's minimum target window
		}
	}
	if b.btlBW > 0 {
		b.pacing = b.pacingGain * b.btlBW
	} else {
		// Before the first bandwidth sample, pace at the initial
		// window per a guessed RTT, as implementations do.
		b.pacing = float64(10*MSS*8) / 0.05
	}
}

// OnLoss implements Algorithm. BBRv1 ignores fast-retransmit loss (its
// model, not loss, drives the window) but honors retransmission
// timeouts conservatively.
func (b *BBR) OnLoss(ev LossEvent) {
	if ev.Timeout {
		b.cwnd = minCwnd
	}
}
