package fleet

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseSpecDefaults(t *testing.T) {
	spec, err := ParseSpec("")
	if err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	want := Spec{
		UEs:  1000,
		Seed: 1,
		Mix:  []MixEntry{{AppBulk, 1}, {AppVideo, 1}, {AppWeb, 1}},
		CC:   "bbr", Policies: []string{"dchannel"}, Traces: []string{"lowband-driving"},
		Dur: 2 * time.Second, Pages: 1, Loads: 1,
		Stagger: 5 * time.Second, Fault: "none",
	}
	if !reflect.DeepEqual(spec, want) {
		t.Fatalf("defaults:\n got %+v\nwant %+v", spec, want)
	}
}

// TestParseSpecRoundTrip pins the canonicalization contract directly
// on representative specs; FuzzFleetSpecParse extends it to arbitrary
// input.
func TestParseSpecRoundTrip(t *testing.T) {
	for _, in := range []string{
		"",
		"ues=10000 seed=42",
		"mix=bulk:2,web:1 cc=cubic policy=dchannel,embb-only",
		"trace=lowband-driving,mmwave-driving dur=450ms pages=3 loads=2",
		"seed=-7 stagger=30s",
		"fault=outage:ch=embb,at=1s,dur=500ms mix=bulk:1",
		"  ues=5\t dur=2.5s  ",
		"mix=video",
		"mix=arena:2,bulk:1 cc=cubic dur=1s",
	} {
		spec, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		canonical := spec.String()
		back, err := ParseSpec(canonical)
		if err != nil {
			t.Fatalf("reparse %q: %v", canonical, err)
		}
		if !reflect.DeepEqual(back, spec) {
			t.Errorf("%q round-trip changed the spec:\n got %+v\nwant %+v", in, back, spec)
		}
		if again := back.String(); again != canonical {
			t.Errorf("%q canonical form not a fixed point: %q -> %q", in, canonical, again)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"ues", "not key=value"},
		{"ues=", "not key=value"},
		{"bogus=1", "unknown key"},
		{"ues=5 ues=6", "duplicate key"},
		{"ues=0", "positive integer"},
		{"ues=-3", "positive integer"},
		{"ues=1000001", "out of"},
		{"seed=abc", "not an integer"},
		{"mix=ftp:1", "unknown app"},
		{"mix=bulk:0", "positive integer"},
		{"mix=bulk:1,bulk:2", "twice"},
		{"cc=tahoe", "unknown congestion control"},
		{"policy=teleport", "unknown steering policy"},
		{"policy=dchannel,dchannel", "twice"},
		{"policy=dchannel,,embb-only", "empty list element"},
		{"trace=underwater", "unknown trace"},
		{"dur=50ms", "below 100ms"},
		{"dur=-1s", "non-negative duration"},
		{"dur=fast", "non-negative duration"},
		{"mix=web:1 policy=priority", "do not support"},
		{"fault=outage:ch=embb,at=1s", "dur"},
		{"fault=outage:ch=mmwave,at=1s,dur=1s", "channel"},
		{"mix=arena:1 dur=200ms", "arena sessions need dur >= 500ms"},
	} {
		_, err := ParseSpec(tc.in)
		if err == nil {
			t.Errorf("ParseSpec(%q): accepted, want error containing %q", tc.in, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseSpec(%q) = %v, want error containing %q", tc.in, err, tc.want)
		}
	}
}

// TestValidateFillsDefaults covers the programmatic construction path:
// a zero-ish Spec validates into exactly what ParseSpec("") yields.
func TestValidateFillsDefaults(t *testing.T) {
	var spec Spec
	if err := spec.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	want, err := ParseSpec("")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	want.Seed = 0 // ParseSpec defaults seed to 1; programmatic zero stays
	if !reflect.DeepEqual(spec, want) {
		t.Fatalf("Validate:\n got %+v\nwant %+v", spec, want)
	}
}

func TestAppCountsPartitionFleet(t *testing.T) {
	spec, err := ParseSpec("ues=300 seed=11 mix=bulk:3,video:1,web:2")
	if err != nil {
		t.Fatal(err)
	}
	counts := spec.AppCounts()
	sum := 0
	for _, app := range []string{AppBulk, AppVideo, AppWeb} {
		n, ok := counts[app]
		if !ok {
			t.Fatalf("AppCounts missing %q: %v", app, counts)
		}
		if n == 0 {
			t.Errorf("app %q drew zero UEs out of 300; weighted draw is broken", app)
		}
		sum += n
	}
	if sum != spec.UEs {
		t.Fatalf("AppCounts sums to %d, want %d", sum, spec.UEs)
	}
	// The hash-only count must agree with the per-UE draw the run uses.
	fromDraw := map[string]int{}
	for ue := 0; ue < spec.UEs; ue++ {
		fromDraw[spec.appFor(ue)]++
	}
	for app := range counts {
		if counts[app] != fromDraw[app] {
			t.Fatalf("AppCounts[%s]=%d but appFor draws %d", app, counts[app], fromDraw[app])
		}
	}
}

// TestSpecFaultCanonicalized pins that the stored fault string is the
// fault package's canonical rendering, not the user's spelling.
func TestSpecFaultCanonicalized(t *testing.T) {
	a, err := ParseSpec("fault=outage:ch=embb,at=1000ms,dur=500ms mix=bulk:1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec("fault=outage:ch=embb,at=1s,dur=0.5s mix=bulk:1")
	if err != nil {
		t.Fatal(err)
	}
	if a.Fault != b.Fault {
		t.Fatalf("equivalent fault spellings canonicalize differently: %q vs %q", a.Fault, b.Fault)
	}
}
