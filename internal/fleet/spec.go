// Package fleet is the fleet-scale simulation harness: it runs N
// independent deterministic UE sessions — each with its own event
// loop, channel trace realization, app workload, and steering policy,
// all derived by pure hashing from (fleet seed, UE index) — and
// aggregates them exclusively through mergeable sketches, so memory
// stays flat no matter how many sessions stream through. This is the
// population view the paper's operator argument needs: not what one
// UE gains from heterogeneous virtual channels, but how the gain
// distributes over ten thousand heterogeneous sessions.
//
// The determinism contract is the package's spine, stated as tests:
// the aggregate report is byte-identical for any worker count, any
// shard size, with and without live progress emission, and across
// invariant_off build variants — because every per-UE input is a pure
// function of (fleet seed, UE index) and every aggregate is an exact
// associative+commutative merge (see internal/sketch).
//
// A fleet spec is a space-separated key=value list in the sweep-spec
// idiom:
//
//	ues=10000 seed=1 mix=bulk:2,web:1 cc=bbr policy=dchannel,embb-only trace=lowband-driving dur=2s stagger=10s
//
// Keys: ues (fleet size), seed (fleet seed), mix (weighted app mix
// app:weight, apps bulk|video|web|arena — arena UEs each run a small
// two-flow in-session contention arena), cc (bulk/arena CCA), policy
// and trace (libraries; each UE draws one by hash), dur (bulk/video
// session length), pages/loads (web corpus), stagger (UE start times
// spread uniformly over [0, stagger)), fault (a shared fleet-absolute
// internal/fault scenario; each session sees it shifted by its own
// start offset).
package fleet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"hvc/internal/channel"
	"hvc/internal/core"
	"hvc/internal/fault"
)

// The app workloads a mix can weight.
const (
	AppBulk  = "bulk"  // core.RunBulk: one long transfer
	AppVideo = "video" // core.RunVideo: real-time SVC stream
	AppWeb   = "web"   // core.RunWeb: sequential page loads
	AppArena = "arena" // arena.Run: two flows contending in-session
)

// maxUEs bounds a fleet so a typo cannot expand into an unbounded run.
const maxUEs = 1_000_000

// A MixEntry weights one app workload in the fleet's mix.
type MixEntry struct {
	App    string
	Weight int
}

// A Spec describes one fleet. The zero value is invalid; build specs
// with ParseSpec or populate fields and call Validate.
type Spec struct {
	// UEs is the fleet size.
	UEs int
	// Seed is the fleet seed every per-UE derivation hashes from.
	Seed int64
	// Mix weights the app workloads; each UE draws one by hash.
	Mix []MixEntry
	// CC names the congestion control bulk and arena sessions run (web
	// fixes CUBIC per the paper; video is unreliable and uses none).
	CC string
	// Policies and Traces are the libraries each UE draws its steering
	// policy and eMBB trace realization from, by hash.
	Policies []string
	Traces   []string
	// Dur is the bulk/video session length.
	Dur time.Duration
	// Pages and Loads size web sessions' corpora.
	Pages, Loads int
	// Stagger spreads UE session start times uniformly over
	// [0, Stagger). Faults are fleet-absolute, so a staggered UE meets
	// a shared outage mid-session.
	Stagger time.Duration
	// Fault is a shared fault scenario on the fleet's absolute
	// timeline (internal/fault grammar; "none" or empty disables).
	// Each session receives the schedule shifted by its start offset.
	Fault string
}

// specKeys is the canonical key order String emits and the complete
// set ParseSpec accepts.
var specKeys = []string{"ues", "seed", "mix", "cc", "policy", "trace", "dur", "pages", "loads", "stagger", "fault"}

// ParseSpec parses the fleet-spec syntax described in the package
// comment. Unknown keys, duplicate keys, duplicate list values, and
// names the core package does not accept are errors; omitted keys
// default (see defaultAndValidate). The result is validated and
// canonical: parsing the String of a parsed spec yields the same spec.
func ParseSpec(s string) (Spec, error) {
	spec := Spec{Seed: 1}
	seen := map[string]bool{}
	for _, field := range strings.Fields(s) {
		key, val, ok := strings.Cut(field, "=")
		if !ok || val == "" {
			return Spec{}, fmt.Errorf("fleet: field %q is not key=value", field)
		}
		if seen[key] {
			return Spec{}, fmt.Errorf("fleet: duplicate key %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "ues":
			spec.UEs, err = parseInt(key, val)
		case "seed":
			spec.Seed, err = strconv.ParseInt(val, 10, 64)
			if err != nil {
				err = fmt.Errorf("fleet: seed %q is not an integer", val)
			}
		case "mix":
			spec.Mix, err = parseMix(val)
		case "cc":
			spec.CC = val
		case "policy":
			spec.Policies, err = parseList(key, val)
		case "trace":
			spec.Traces, err = parseList(key, val)
		case "dur":
			spec.Dur, err = parseDur(key, val)
		case "pages":
			spec.Pages, err = parseInt(key, val)
		case "loads":
			spec.Loads, err = parseInt(key, val)
		case "stagger":
			spec.Stagger, err = parseDur(key, val)
		case "fault":
			spec.Fault = val
		default:
			return Spec{}, fmt.Errorf("fleet: unknown key %q (valid: %s)", key, strings.Join(specKeys, ", "))
		}
		if err != nil {
			return Spec{}, err
		}
	}
	if err := spec.defaultAndValidate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

func parseInt(key, val string) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("fleet: %s %q is not a positive integer", key, val)
	}
	return n, nil
}

func parseDur(key, val string) (time.Duration, error) {
	d, err := time.ParseDuration(val)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("fleet: %s %q is not a non-negative duration", key, val)
	}
	return d, nil
}

func parseList(key, val string) ([]string, error) {
	parts := strings.Split(val, ",")
	seen := map[string]bool{}
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("fleet: %s has an empty list element", key)
		}
		if seen[p] {
			return nil, fmt.Errorf("fleet: %s lists %q twice", key, p)
		}
		seen[p] = true
	}
	return parts, nil
}

func parseMix(val string) ([]MixEntry, error) {
	var mix []MixEntry
	seen := map[string]bool{}
	for _, part := range strings.Split(val, ",") {
		app, weightStr, hasWeight := strings.Cut(part, ":")
		e := MixEntry{App: app, Weight: 1}
		if hasWeight {
			w, err := strconv.Atoi(weightStr)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("fleet: mix weight %q is not a positive integer", weightStr)
			}
			e.Weight = w
		}
		switch e.App {
		case AppBulk, AppVideo, AppWeb, AppArena:
		default:
			return nil, fmt.Errorf("fleet: unknown app %q in mix (bulk, video, web, arena)", e.App)
		}
		if seen[e.App] {
			return nil, fmt.Errorf("fleet: mix lists %q twice", e.App)
		}
		seen[e.App] = true
		mix = append(mix, e)
	}
	return mix, nil
}

// defaultAndValidate fills defaults, checks every axis value against
// the core package's accepted names, and canonicalizes the fault
// scenario. The defaults favor throughput on small machines: BBR bulk
// flows and short sessions, so a 10k-UE fleet finishes in minutes.
func (s *Spec) defaultAndValidate() error {
	if s.UEs == 0 {
		s.UEs = 1000
	}
	if s.UEs < 1 || s.UEs > maxUEs {
		return fmt.Errorf("fleet: ues %d out of [1,%d]", s.UEs, maxUEs)
	}
	if s.Mix == nil {
		s.Mix = []MixEntry{{AppBulk, 1}, {AppVideo, 1}, {AppWeb, 1}}
	}
	if s.CC == "" {
		s.CC = "bbr"
	}
	if s.Policies == nil {
		s.Policies = []string{core.PolicyDChannel}
	}
	if s.Traces == nil {
		s.Traces = []string{"lowband-driving"}
	}
	if s.Dur == 0 {
		s.Dur = 2 * time.Second
	}
	if s.Dur < 100*time.Millisecond {
		return fmt.Errorf("fleet: dur %v below 100ms", s.Dur)
	}
	if s.Pages == 0 {
		s.Pages = 1
	}
	if s.Loads == 0 {
		s.Loads = 1
	}
	if s.Stagger == 0 {
		s.Stagger = 5 * time.Second
	}

	hasApp := map[string]bool{}
	for _, e := range s.Mix {
		hasApp[e.App] = true
	}
	if hasApp[AppArena] && s.Dur < 500*time.Millisecond {
		return fmt.Errorf("fleet: arena sessions need dur >= 500ms, got %v", s.Dur)
	}
	if !core.ValidCC(s.CC) {
		return fmt.Errorf("fleet: unknown congestion control %q", s.CC)
	}
	for _, p := range s.Policies {
		if !core.ValidPolicy(p) {
			return fmt.Errorf("fleet: unknown steering policy %q", p)
		}
		if hasApp[AppWeb] && p == core.PolicyPriority {
			return fmt.Errorf("fleet: web sessions do not support policy %q; drop web from the mix or the policy from the library", p)
		}
	}
	valid := map[string]bool{}
	for _, tr := range core.TraceNames() {
		valid[tr] = true
	}
	for _, tr := range s.Traces {
		if !valid[tr] {
			return fmt.Errorf("fleet: unknown trace %q (valid: %s)", tr, strings.Join(core.TraceNames(), ", "))
		}
	}

	// Canonicalize the shared scenario and pin it to the two channels
	// every session has.
	fs, err := fault.ParseSpec(s.Fault)
	if err != nil {
		return err
	}
	for _, ev := range fs.Events {
		if ev.Channel != channel.NameEMBB && ev.Channel != channel.NameURLLC {
			return fmt.Errorf("fleet: fault names channel %q; sessions run %s+%s",
				ev.Channel, channel.NameEMBB, channel.NameURLLC)
		}
	}
	s.Fault = fs.String()
	return nil
}

// Validate checks a programmatically built spec, filling defaults for
// zero fields exactly as ParseSpec does.
func (s *Spec) Validate() error { return s.defaultAndValidate() }

// String renders the spec canonically: every key, fixed order.
// ParseSpec(s.String()) reproduces s.
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ues=%d seed=%d mix=%s", s.UEs, s.Seed, mixString(s.Mix))
	fmt.Fprintf(&b, " cc=%s policy=%s trace=%s", s.CC, strings.Join(s.Policies, ","), strings.Join(s.Traces, ","))
	fmt.Fprintf(&b, " dur=%s pages=%d loads=%d stagger=%s fault=%s",
		s.Dur, s.Pages, s.Loads, s.Stagger, s.Fault)
	return b.String()
}

func mixString(mix []MixEntry) string {
	parts := make([]string, len(mix))
	for i, e := range mix {
		parts[i] = fmt.Sprintf("%s:%d", e.App, e.Weight)
	}
	return strings.Join(parts, ",")
}

// AppCounts reports how many UEs draw each app, computed from the
// derivation hashes alone — no sessions run. Keys appear for every
// mixed app, sorted by the returned slice's order.
func (s Spec) AppCounts() map[string]int {
	counts := make(map[string]int, len(s.Mix))
	for _, e := range s.Mix {
		counts[e.App] = 0
	}
	for ue := 0; ue < s.UEs; ue++ {
		counts[s.appFor(ue)]++
	}
	return counts
}

// apps lists the mixed app names sorted, for deterministic rendering.
func (s Spec) apps() []string {
	out := make([]string, len(s.Mix))
	for i, e := range s.Mix {
		out[i] = e.App
	}
	sort.Strings(out)
	return out
}
