package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"hvc/internal/sketch"
)

// render runs the fleet and returns the two user-visible byte surfaces
// — the stdout table and the JSON report — which the determinism
// matrix compares across execution shapes.
func render(t *testing.T, spec Spec, opt Options) (table, report []byte) {
	t.Helper()
	res, err := Run(spec, opt)
	if err != nil {
		t.Fatalf("Run(%s, %+v): %v", spec, opt, err)
	}
	var tb, rb bytes.Buffer
	if err := res.WriteTable(&tb); err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
	if err := res.WriteJSON(&rb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return tb.Bytes(), rb.Bytes()
}

// TestFleetDeterminismMatrix is the package's headline contract, the
// fleet extension of the cross-package determinism matrix: for every
// spec (two fleet sizes x two seeds), the table and report bytes are
// identical whether the fleet runs on one worker, many workers with a
// different shard grain, or with live progress sampling attached.
func TestFleetDeterminismMatrix(t *testing.T) {
	for _, tc := range []string{
		"ues=6 seed=1 dur=200ms stagger=1s",
		"ues=6 seed=7 dur=200ms stagger=1s",
		"ues=11 seed=1 mix=bulk:2,web:1 policy=dchannel,embb-only dur=200ms stagger=2s",
		"ues=11 seed=7 mix=bulk:2,web:1 policy=dchannel,embb-only dur=200ms stagger=2s",
	} {
		spec, err := ParseSpec(tc)
		if err != nil {
			t.Fatal(err)
		}
		baseTable, baseReport := render(t, spec, Options{Workers: 1})
		variants := []Options{
			{Workers: 4, Shard: 3},
			{Workers: 2, Shard: 1, Progress: func(done, total int) {}, Sketch: sketch.NewGroup()},
		}
		for _, opt := range variants {
			table, report := render(t, spec, opt)
			if !bytes.Equal(table, baseTable) {
				t.Errorf("%q: table differs between workers=1 and %+v:\n%s\nvs\n%s", tc, opt, baseTable, table)
			}
			if !bytes.Equal(report, baseReport) {
				t.Errorf("%q: report differs between workers=1 and %+v", tc, opt)
			}
		}
	}
}

// TestFleetArenaSessions runs a real (tiny) arena-mixed fleet: every
// arena UE hosts a two-flow in-session contention and contributes one
// Jain observation plus a goodput per flow, and the aggregate stays
// byte-identical across worker shapes like every other app.
func TestFleetArenaSessions(t *testing.T) {
	spec, err := ParseSpec("ues=3 mix=arena:1 cc=cubic dur=1s stagger=1s")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec, Options{Workers: 2, Shard: 1})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]uint64{}
	for _, s := range res.Group.Snapshot() {
		byName[s.Name] = s.N
	}
	if byName["arena/jain"] != 3 {
		t.Fatalf("arena/jain saw %d observations, want one per UE (3): %+v", byName["arena/jain"], byName)
	}
	if byName["arena/flow_goodput_mbps"] != 6 {
		t.Fatalf("arena/flow_goodput_mbps saw %d observations, want one per flow (6): %+v",
			byName["arena/flow_goodput_mbps"], byName)
	}

	baseTable, baseReport := render(t, spec, Options{Workers: 1})
	table, report := render(t, spec, Options{Workers: 4, Shard: 2})
	if !bytes.Equal(table, baseTable) || !bytes.Equal(report, baseReport) {
		t.Fatal("arena fleet output differs across worker shapes")
	}
}

// stubUEs installs a cheap session stub and returns a restore func.
// The stub observes one value per UE so aggregation paths still
// exercise, without paying for real simulations.
func stubUEs(t *testing.T) {
	t.Helper()
	if testRunUE != nil {
		t.Fatal("testRunUE already installed")
	}
	testRunUE = func(p Profile, g *sketch.Group) error {
		g.Observe("stub/value", float64(p.UE%97)+0.5)
		return nil
	}
	t.Cleanup(func() { testRunUE = nil })
}

// TestFleetFlatMemory pins the streaming-aggregation promise:
// allocations scale with the shard count, not the UE count. Two fleets
// sized 4x apart but sharded to the same number of pool jobs must
// allocate within noise of each other — any per-UE result buffer
// would show up as an ~4x blowup.
func TestFleetFlatMemory(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	stubUEs(t)
	measure := func(ues, shard int) uint64 {
		spec := Spec{UEs: ues, Seed: 1}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		if _, err := Run(spec, Options{Workers: 1, Shard: shard}); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}
	measure(2000, 125) // warm up lazy initialization
	small := measure(2000, 125)
	big := measure(8000, 500) // same 16 shards, 4x the UEs
	if big > 2*small {
		t.Fatalf("4x the UEs at equal shard count allocated %d vs %d (>2x): aggregation is not flat in the fleet size", big, small)
	}
}

// TestFleetAggregation checks the merged totals through the stub: one
// observation per UE, fleet-wide count equals the fleet size, and the
// live Options.Sketch group converges to exactly the result group.
func TestFleetAggregation(t *testing.T) {
	stubUEs(t)
	live := sketch.NewGroup()
	spec := Spec{UEs: 500, Seed: 3}
	res, err := Run(spec, Options{Workers: 4, Shard: 7, Sketch: live})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Group.Snapshot()
	if len(snap) != 1 || snap[0].Name != "stub/value" {
		t.Fatalf("unexpected metrics: %+v", snap)
	}
	if snap[0].N != 500 {
		t.Fatalf("aggregate holds %d observations, want 500", snap[0].N)
	}
	if !bytes.Equal(groupBytes(live), groupBytes(res.Group)) {
		t.Fatal("live progress group diverged from the result aggregate")
	}
}

// TestFleetProgress checks the conservative progress stream: counts
// never decrease, never exceed the total, and end at exactly the
// fleet size.
func TestFleetProgress(t *testing.T) {
	stubUEs(t)
	last := 0
	spec := Spec{UEs: 100, Seed: 1}
	_, err := Run(spec, Options{Workers: 1, Shard: 7, Progress: func(done, total int) {
		if total != 100 {
			t.Fatalf("progress total %d, want 100", total)
		}
		if done < last || done > total {
			t.Fatalf("progress went %d -> %d", last, done)
		}
		last = done
	}})
	if err != nil {
		t.Fatal(err)
	}
	if last != 100 {
		t.Fatalf("final progress %d, want 100", last)
	}
}

// TestFleetErrorReporting checks a failing session surfaces as the
// lowest failing UE with its identity attached, matching the pool's
// lowest-index error contract.
func TestFleetErrorReporting(t *testing.T) {
	if testRunUE != nil {
		t.Fatal("testRunUE already installed")
	}
	testRunUE = func(p Profile, g *sketch.Group) error {
		if p.UE >= 40 {
			return fmt.Errorf("session exploded")
		}
		return nil
	}
	t.Cleanup(func() { testRunUE = nil })
	spec := Spec{UEs: 100, Seed: 1}
	_, err := Run(spec, Options{Workers: 4, Shard: 3})
	if err == nil {
		t.Fatal("Run succeeded despite failing sessions")
	}
	if !strings.Contains(err.Error(), "ue 40 ") || !strings.Contains(err.Error(), "session exploded") {
		t.Fatalf("error %q does not name the lowest failing UE", err)
	}
}

// TestFleetReportShape decodes the JSON report and checks the wire
// contract: schema tag, canonical spec string, app counts that
// partition the fleet, and a sketch section.
func TestFleetReportShape(t *testing.T) {
	spec, err := ParseSpec("ues=6 seed=2 dur=200ms stagger=1s")
	if err != nil {
		t.Fatal(err)
	}
	_, report := render(t, spec, Options{Workers: 2})
	var rep struct {
		Schema   string         `json:"schema"`
		Spec     string         `json:"spec"`
		UEs      int            `json:"ues"`
		Apps     map[string]int `json:"apps"`
		Sketches []struct {
			Name string `json:"name"`
			N    uint64 `json:"n"`
		} `json:"sketches"`
	}
	if err := json.Unmarshal(report, &rep); err != nil {
		t.Fatalf("report does not decode: %v", err)
	}
	if rep.Schema != ReportSchema {
		t.Fatalf("schema %q, want %q", rep.Schema, ReportSchema)
	}
	if rep.Spec != spec.String() {
		t.Fatalf("report spec %q, want %q", rep.Spec, spec.String())
	}
	if rep.UEs != 6 {
		t.Fatalf("report ues %d, want 6", rep.UEs)
	}
	sum := 0
	for _, n := range rep.Apps {
		sum += n
	}
	if sum != rep.UEs {
		t.Fatalf("app counts %v sum to %d, want %d", rep.Apps, sum, rep.UEs)
	}
	if len(rep.Sketches) == 0 {
		t.Fatal("report has no sketches")
	}
	seen := map[string]bool{}
	for _, s := range rep.Sketches {
		seen[s.Name] = true
		if s.N == 0 {
			t.Errorf("empty sketch %q serialized into the report", s.Name)
		}
	}
	if !seen["fleet/start_offset_ms"] {
		t.Errorf("report sketches %v missing fleet/start_offset_ms", rep.Sketches)
	}
}

// TestFleetRejectsInvalidSpec checks Run validates rather than
// trusting a hand-built spec.
func TestFleetRejectsInvalidSpec(t *testing.T) {
	if _, err := Run(Spec{UEs: -1}, Options{}); err == nil {
		t.Fatal("Run accepted a negative fleet size")
	}
	if _, err := Run(Spec{UEs: 1, Fault: "garbage("}, Options{}); err == nil {
		t.Fatal("Run accepted an unparseable fault")
	}
}
