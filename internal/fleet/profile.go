package fleet

import (
	"time"

	"hvc/internal/fault"
)

// Per-UE inputs are derived by pure hashing from (fleet seed, UE
// index, salt): no RNG object, no allocation, and — critically — no
// dependence on the order UEs are visited or the shard they land in.
// This is the fleet-scale version of internal/fault's per-link private
// RNG streams, taken one step further: where fault hashes a name into
// a seed once per link, fleet derives every per-session input from a
// finalizer hash, so a session's entire event stream is a function of
// its identity alone. A property test permutes UE start order and
// shard assignment and checks no session's stream moves.

// Salts separate the derivation streams; two draws for the same UE
// never correlate.
const (
	saltApp uint64 = iota + 1
	saltPolicy
	saltTrace
	saltSeed
	saltOffset
)

// mix64 is the splitmix64 finalizer: a cheap bijective avalanche over
// uint64, the standard way to turn structured integers into
// independent-looking streams without allocating an RNG.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// derive hashes (fleet seed, UE index, salt) into one uniform draw.
func derive(fleetSeed int64, ue int, salt uint64) uint64 {
	h := mix64(uint64(fleetSeed) ^ 0x9e3779b97f4a7c15)
	h = mix64(h ^ uint64(ue))
	return mix64(h ^ salt)
}

// A Profile is one UE's complete session identity: everything its
// simulation consumes, derived from the spec and the UE index alone.
type Profile struct {
	UE     int
	App    string
	Policy string
	Trace  string
	// Seed seeds the session's private event loop and trace
	// realization.
	Seed int64
	// Offset is the session's start time on the fleet's absolute
	// timeline, drawn uniformly from [0, Stagger).
	Offset time.Duration
	// Fault is the shared fleet scenario shifted into session-local
	// time ("none" when nothing survives the shift).
	Fault string
}

// appFor draws the UE's app from the weighted mix.
func (s Spec) appFor(ue int) string {
	total := 0
	for _, e := range s.Mix {
		total += e.Weight
	}
	r := int(derive(s.Seed, ue, saltApp) % uint64(total))
	for _, e := range s.Mix {
		if r < e.Weight {
			return e.App
		}
		r -= e.Weight
	}
	return s.Mix[len(s.Mix)-1].App // unreachable: weights sum to total
}

// offsetFor draws the UE's start offset.
func (s Spec) offsetFor(ue int) time.Duration {
	if s.Stagger <= 0 {
		return 0
	}
	return time.Duration(derive(s.Seed, ue, saltOffset) % uint64(s.Stagger))
}

// profileFor derives one UE's complete profile. fs is the parsed
// shared fault scenario (pass the zero Spec when the fleet injects
// nothing — the common case allocates nothing here).
func (s Spec) profileFor(ue int, fs fault.Spec) Profile {
	p := Profile{
		UE:     ue,
		App:    s.appFor(ue),
		Policy: s.Policies[derive(s.Seed, ue, saltPolicy)%uint64(len(s.Policies))],
		Trace:  s.Traces[derive(s.Seed, ue, saltTrace)%uint64(len(s.Traces))],
		Seed:   int64(derive(s.Seed, ue, saltSeed) >> 1), // non-negative for readable logs
		Offset: s.offsetFor(ue),
	}
	if !fs.Empty() {
		p.Fault = shiftFault(fs, p.Offset).String()
	}
	return p
}

// shiftFault translates the fleet-absolute scenario into one session's
// local time: every window moves earlier by the session's start
// offset, windows entirely before the session start drop, and a
// window straddling it clips to begin at local zero. Repeats expand to
// individual windows first, because the occurrences of one clause can
// straddle the start and must clip or drop independently. The source
// scenario is validated and non-overlapping per kind+channel; a
// uniform shift preserves both, so the result is valid by
// construction.
func shiftFault(fs fault.Spec, offset time.Duration) fault.Spec {
	var out fault.Spec
	for _, ev := range fs.Events {
		n := 1
		if ev.Count > 1 {
			n = ev.Count
		}
		for k := 0; k < n; k++ {
			e := ev
			e.At = ev.At + time.Duration(k)*ev.Every - offset
			e.Every, e.Count = 0, 1
			if e.At+e.Dur <= 0 {
				continue // ended before this session began
			}
			if e.At < 0 {
				e.Dur += e.At
				e.At = 0
			}
			out.Events = append(out.Events, e)
		}
	}
	return out
}
