//go:build !race

package fleet

// raceEnabled reports whether the race detector is active. Allocation
// budgets are skipped under -race: its instrumentation allocates, so
// the counts tests pin would be meaningless.
const raceEnabled = false
