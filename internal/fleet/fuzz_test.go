package fleet

import (
	"reflect"
	"testing"
)

// FuzzFleetSpecParse exercises the fleet-spec parser with arbitrary
// input: it must never panic, and any spec it accepts must round-trip
// — the canonical String reparses to the same spec and is a fixed
// point. This is the same contract FuzzSweepSpecParse holds the sweep
// grammar to.
func FuzzFleetSpecParse(f *testing.F) {
	f.Add("")
	f.Add("ues=10000 seed=1 mix=bulk:2,web:1 cc=bbr policy=dchannel,embb-only dur=2s")
	f.Add("ues=1000 mix=video:1 policy=dchannel trace=lowband-driving,mmwave-driving dur=4s")
	f.Add("ues=500 fault=outage:ch=embb,at=10s,dur=2s stagger=30s")
	f.Add("fault=outage:ch=embb,at=1s,dur=500ms;burst:ch=urllc,at=2s,dur=1s,pgb=0.3 mix=bulk:1")
	f.Add("ues=5 seed=-9223372036854775808")
	f.Add("mix=bulk:1,video:2,web:3 pages=6 loads=2")
	f.Add("ues=1000001")
	f.Add("dur=99ms")
	f.Add("stagger=0s")
	f.Add("  ues=5\t dur=1h  ")
	f.Add("mix=web:1 policy=priority")
	f.Add("fault=none")
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := ParseSpec(in)
		if err != nil {
			return // rejected: fine, as long as no panic
		}
		canonical := spec.String()
		back, err := ParseSpec(canonical)
		if err != nil {
			t.Fatalf("canonical form rejected: %q -> %q: %v", in, canonical, err)
		}
		if !reflect.DeepEqual(back, spec) {
			t.Fatalf("round-trip changed the spec:\n in: %+v\nout: %+v", spec, back)
		}
		if again := back.String(); again != canonical {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canonical, again)
		}
	})
}
