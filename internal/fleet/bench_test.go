package fleet

import "testing"

// BenchmarkFleet measures end-to-end fleet throughput on a small
// default-mix fleet: spec parse, per-UE derivation, real sessions, and
// sketch aggregation. The benchstat gate tracks it; the custom UEs/s
// metric is the number BENCH snapshots record.
func BenchmarkFleet(b *testing.B) {
	spec, err := ParseSpec("ues=16 seed=1 dur=500ms stagger=1s")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(spec, Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(16*b.N)/b.Elapsed().Seconds(), "UEs/s")
}
