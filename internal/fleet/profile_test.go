package fleet

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"hvc/internal/fault"
	"hvc/internal/sketch"
)

// permuted returns 0..n-1 shuffled by a fixed seed, so property tests
// visit UEs in an arbitrary-but-reproducible order.
func permuted(n int, seed int64) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

// TestProfileOrderInvariance is the derivation half of the fleet's
// central property: a UE's profile is a pure function of (spec, index),
// so visiting UEs forward, backward, or shuffled yields the same
// profile for every session. Any shared RNG or visit-order state
// introduced into the derivation path breaks this immediately.
func TestProfileOrderInvariance(t *testing.T) {
	spec, err := ParseSpec("ues=200 seed=9 mix=bulk:2,video:1,web:1 policy=dchannel,embb-only trace=lowband-driving,mmwave-driving stagger=3s fault=outage:ch=embb,at=1s,dur=500ms,every=2s,count=3")
	if err != nil {
		t.Fatal(err)
	}
	fs, err := fault.ParseSpec(spec.Fault)
	if err != nil {
		t.Fatal(err)
	}
	forward := make([]Profile, spec.UEs)
	for ue := 0; ue < spec.UEs; ue++ {
		forward[ue] = spec.profileFor(ue, fs)
	}
	for name, order := range map[string][]int{
		"reverse":  permutedReverse(spec.UEs),
		"shuffled": permuted(spec.UEs, 1),
	} {
		for _, ue := range order {
			if got := spec.profileFor(ue, fs); !reflect.DeepEqual(got, forward[ue]) {
				t.Fatalf("%s visit order changed ue %d's profile:\n got %+v\nwant %+v", name, ue, got, forward[ue])
			}
		}
	}
}

func permutedReverse(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = n - 1 - i
	}
	return order
}

// TestProfileFields checks each derived field lands in its domain and
// that every library entry is actually drawn somewhere — a stuck hash
// would pass order-invariance while collapsing the fleet's diversity.
func TestProfileFields(t *testing.T) {
	spec, err := ParseSpec("ues=200 seed=4 policy=dchannel,embb-only trace=lowband-driving,mmwave-driving stagger=2s")
	if err != nil {
		t.Fatal(err)
	}
	usedPolicy, usedTrace, usedApp := map[string]bool{}, map[string]bool{}, map[string]bool{}
	offsets := map[time.Duration]bool{}
	for ue := 0; ue < spec.UEs; ue++ {
		p := spec.profileFor(ue, fault.Spec{})
		if p.UE != ue {
			t.Fatalf("profile for ue %d claims UE=%d", ue, p.UE)
		}
		if p.Offset < 0 || p.Offset >= spec.Stagger {
			t.Fatalf("ue %d offset %v outside [0, %v)", ue, p.Offset, spec.Stagger)
		}
		if p.Seed < 0 {
			t.Fatalf("ue %d derived negative seed %d", ue, p.Seed)
		}
		if p.Fault != "" {
			t.Fatalf("ue %d has fault %q from an empty fleet scenario", ue, p.Fault)
		}
		usedPolicy[p.Policy], usedTrace[p.Trace], usedApp[p.App] = true, true, true
		offsets[p.Offset] = true
	}
	for _, pol := range spec.Policies {
		if !usedPolicy[pol] {
			t.Errorf("policy %q never drawn across %d UEs", pol, spec.UEs)
		}
	}
	for _, tr := range spec.Traces {
		if !usedTrace[tr] {
			t.Errorf("trace %q never drawn across %d UEs", tr, spec.UEs)
		}
	}
	for _, e := range spec.Mix {
		if !usedApp[e.App] {
			t.Errorf("app %q never drawn across %d UEs", e.App, spec.UEs)
		}
	}
	if len(offsets) < spec.UEs/2 {
		t.Errorf("only %d distinct offsets across %d UEs; stagger draw looks degenerate", len(offsets), spec.UEs)
	}
}

func TestShiftFault(t *testing.T) {
	src, err := fault.ParseSpec("outage:ch=embb,at=1s,dur=500ms,every=2s,count=3")
	if err != nil {
		t.Fatal(err)
	}
	// Occurrences on the fleet timeline: [1s,1.5s), [3s,3.5s), [5s,5.5s).
	cases := []struct {
		offset time.Duration
		want   [][2]time.Duration // local {At, Dur} per surviving window
	}{
		{0, [][2]time.Duration{{time.Second, 500 * time.Millisecond}, {3 * time.Second, 500 * time.Millisecond}, {5 * time.Second, 500 * time.Millisecond}}},
		{1200 * time.Millisecond, [][2]time.Duration{{0, 300 * time.Millisecond}, {1800 * time.Millisecond, 500 * time.Millisecond}, {3800 * time.Millisecond, 500 * time.Millisecond}}},
		{3500 * time.Millisecond, [][2]time.Duration{{1500 * time.Millisecond, 500 * time.Millisecond}}}, // window 2 ends exactly at the session start: dropped
		{10 * time.Second, nil},
	}
	for _, tc := range cases {
		got := shiftFault(src, tc.offset)
		if len(got.Events) != len(tc.want) {
			t.Fatalf("offset %v: %d events, want %d: %+v", tc.offset, len(got.Events), len(tc.want), got.Events)
		}
		for i, w := range tc.want {
			ev := got.Events[i]
			if ev.At != w[0] || ev.Dur != w[1] {
				t.Errorf("offset %v event %d: at=%v dur=%v, want at=%v dur=%v", tc.offset, i, ev.At, ev.Dur, w[0], w[1])
			}
			if ev.Every != 0 || ev.Count != 1 {
				t.Errorf("offset %v event %d: repeats not expanded: every=%v count=%d", tc.offset, i, ev.Every, ev.Count)
			}
		}
		// The shifted schedule must re-render and re-parse: profileFor
		// hands it to the session as a string.
		if !got.Empty() {
			if _, err := fault.ParseSpec(got.String()); err != nil {
				t.Errorf("offset %v: shifted spec %q does not re-parse: %v", tc.offset, got.String(), err)
			}
		}
	}
}

// groupBytes serializes a sketch group deterministically: name-sorted
// marshaled sketches. Byte equality here means every observation
// stream fed into the groups was identical.
func groupBytes(g *sketch.Group) []byte {
	var buf bytes.Buffer
	g.Do(func(name string, s *sketch.Sketch) {
		buf.WriteString(name)
		buf.WriteByte(0)
		buf.Write(s.Marshal())
	})
	return buf.Bytes()
}

// TestSessionStreamOrderInvariance runs real sessions — not stubs —
// and checks the other half of the central property: no session's
// event stream (observed through its complete metric output) depends
// on which other sessions ran before it in the same goroutine. This is
// what licenses arbitrary shard assignment.
func TestSessionStreamOrderInvariance(t *testing.T) {
	spec, err := ParseSpec("ues=6 seed=5 dur=200ms stagger=1s")
	if err != nil {
		t.Fatal(err)
	}
	fs := fault.Spec{}
	run := func(order []int) map[int][]byte {
		out := make(map[int][]byte, len(order))
		for _, ue := range order {
			g := sketch.NewGroup()
			if err := runUE(spec.profileFor(ue, fs), spec, g); err != nil {
				t.Fatalf("ue %d: %v", ue, err)
			}
			out[ue] = groupBytes(g)
		}
		return out
	}
	forward := run([]int{0, 1, 2, 3, 4, 5})
	for name, order := range map[string][]int{
		"reverse":  {5, 4, 3, 2, 1, 0},
		"shuffled": {3, 0, 5, 1, 4, 2},
	} {
		for ue, got := range run(order) {
			if !bytes.Equal(got, forward[ue]) {
				t.Fatalf("%s run order changed ue %d's metric stream", name, ue)
			}
		}
	}
}
