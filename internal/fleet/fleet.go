package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"hvc/internal/arena"
	"hvc/internal/core"
	"hvc/internal/fault"
	"hvc/internal/pool"
	"hvc/internal/sketch"
	"hvc/internal/telemetry"
)

// ReportSchema identifies the fleet-report JSON layout.
const ReportSchema = "hvc-fleet-report/v1"

// defaultShard is the UEs-per-shard grain when Options.Shard is unset:
// coarse enough that per-shard setup amortizes, fine enough that a
// machine's cores stay busy on 1k-UE fleets.
const defaultShard = 64

// Options are the runtime knobs of a fleet run. Deliberately NOT part
// of the Spec: workers and shard size change how the fleet is
// computed, never what it computes — the report is byte-identical
// across all of them, and a matrix test holds the package to it.
type Options struct {
	// Workers is the worker-goroutine count; 0 means GOMAXPROCS.
	Workers int
	// Shard is the UEs simulated per pool job; 0 means defaultShard.
	Shard int
	// Progress, when non-nil, is called after each shard completes
	// with conservative done/total UE counts. Serialized; observe-only.
	Progress func(doneUEs, totalUEs int)
	// Sketch, when non-nil, receives every completed shard's merged
	// sketches as the run progresses — the live surface -progress
	// samples. Observe-only: the result is byte-identical with or
	// without it.
	Sketch *sketch.Group
}

// A Result is one fleet run's aggregate: the canonical spec, the
// per-app UE counts, and the merged sketch group holding every
// metric's distribution. No per-UE state survives the run.
type Result struct {
	Spec  Spec
	UEs   int
	Apps  map[string]int
	Group *sketch.Group
}

// testRunUE, when non-nil, replaces session execution — the seam the
// flat-memory and aggregation tests use to measure the harness without
// paying for ten thousand simulations (the idiom sweep's testRunJob
// established).
var testRunUE func(p Profile, g *sketch.Group) error

// Run simulates the fleet: UEs shard into contiguous index blocks,
// shards fan across the worker pool, each session's metrics stream
// into a per-shard sketch group, and shard groups fold into one
// aggregate through exact merges. Memory is O(workers) shard groups
// plus one session at a time per worker — flat in the fleet size.
func Run(spec Spec, opt Options) (*Result, error) {
	if err := spec.defaultAndValidate(); err != nil {
		return nil, err
	}
	fs, err := fault.ParseSpec(spec.Fault)
	if err != nil {
		return nil, err
	}
	shard := opt.Shard
	if shard <= 0 {
		shard = defaultShard
	}
	nShards := (spec.UEs + shard - 1) / shard

	total := sketch.NewGroup()
	var progress func(done int)
	if opt.Progress != nil {
		progress = func(done int) {
			ues := done * shard
			if ues > spec.UEs {
				ues = spec.UEs
			}
			opt.Progress(ues, spec.UEs)
		}
	}
	err = pool.Reduce(nShards, opt.Workers, progress,
		func(i int) (*sketch.Group, error) {
			g := sketch.NewGroup()
			lo, hi := i*shard, (i+1)*shard
			if hi > spec.UEs {
				hi = spec.UEs
			}
			for ue := lo; ue < hi; ue++ {
				p := spec.profileFor(ue, fs)
				if err := runUE(p, spec, g); err != nil {
					return nil, fmt.Errorf("ue %d (%s seed=%d): %w", ue, p.App, p.Seed, err)
				}
			}
			return g, nil
		},
		func(i int, g *sketch.Group) {
			total.Merge(g)
			opt.Sketch.Merge(g) // nil-safe no-op when unset
		})
	if err != nil {
		return nil, err
	}
	return &Result{Spec: spec, UEs: spec.UEs, Apps: spec.AppCounts(), Group: total}, nil
}

// runUE simulates one session and streams its metrics into g.
func runUE(p Profile, spec Spec, g *sketch.Group) error {
	if testRunUE != nil {
		return testRunUE(p, g)
	}
	switch p.App {
	case AppBulk:
		tr, err := core.NewTrace(p.Trace, p.Seed, spec.Dur+time.Second)
		if err != nil {
			return err
		}
		r, err := core.RunBulk(core.BulkConfig{
			Seed: p.Seed, Duration: spec.Dur, CC: spec.CC,
			Policy: p.Policy, Fault: p.Fault, EMBB: tr,
		})
		if err != nil {
			return err
		}
		g.Observe("bulk/goodput_mbps", r.Mbps)
		g.Observe("bulk/retransmits", float64(r.Retransmits))
		g.Observe("bulk/rtos", float64(r.RTOs))
	case AppVideo:
		r, err := core.RunVideo(core.VideoConfig{
			Seed: p.Seed, Duration: spec.Dur, Trace: p.Trace,
			Policy: p.Policy, Fault: p.Fault,
		})
		if err != nil {
			return err
		}
		for _, v := range r.Latency.Values() {
			g.Observe("video/latency_ms", v)
		}
		g.Observe("video/ssim_mean", r.SSIM.Mean())
		g.Observe("video/frozen_frames", float64(r.Frozen))
	case AppWeb:
		r, err := core.RunWeb(core.WebConfig{
			Seed: p.Seed, Trace: p.Trace, Policy: p.Policy,
			Pages: spec.Pages, Loads: spec.Loads, Fault: p.Fault,
		})
		if err != nil {
			return err
		}
		for _, v := range r.PLT.Values() {
			g.Observe("web/plt_ms", v)
		}
	case AppArena:
		// Each arena UE hosts a small in-session contention: two flows of
		// the fleet's CCA joining a beat apart, so the population view
		// includes intra-UE fairness, not just across-UE spread.
		as := arena.Spec{
			Flows: 2, Seed: p.Seed,
			Mix:    []arena.MixEntry{{CC: spec.CC, Weight: 1}},
			Join:   spec.Dur / 8,
			Dur:    spec.Dur,
			Policy: p.Policy, Trace: p.Trace,
		}
		r, err := arena.Run(as, arena.Options{Fault: p.Fault})
		if err != nil {
			return err
		}
		g.Observe("arena/jain", r.Jain)
		if r.Converged {
			g.Observe("arena/convergence_s", r.Convergence.Seconds())
		}
		for _, fr := range r.Flows {
			g.Observe("arena/flow_goodput_mbps", fr.GoodputMbps)
		}
	default:
		return fmt.Errorf("fleet: unknown app %q", p.App)
	}
	g.Observe("fleet/start_offset_ms", float64(p.Offset)/float64(time.Millisecond))
	return nil
}

// reportJSON is the hvc-fleet-report/v1 wire shape. Everything in it
// is a pure function of the spec and the merged aggregate — no
// timing, worker counts, or shard sizes — which is what makes the
// byte-identity contract possible.
type reportJSON struct {
	Schema   string                    `json:"schema"`
	Spec     string                    `json:"spec"`
	UEs      int                       `json:"ues"`
	Apps     map[string]int            `json:"apps"`
	Sketches []telemetry.SketchSummary `json:"sketches"`
}

// WriteJSON writes the hvc-fleet-report/v1 bundle: deterministic
// (encoding/json sorts map keys) and byte-identical for any worker
// count or shard size.
func (r *Result) WriteJSON(w io.Writer) error {
	rep := reportJSON{
		Schema:   ReportSchema,
		Spec:     r.Spec.String(),
		UEs:      r.UEs,
		Apps:     r.Apps,
		Sketches: telemetry.SketchSummaries(r.Group.Snapshot()),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteTable renders the deterministic human-readable summary: the
// fleet's composition, then one row per metric sketch.
func (r *Result) WriteTable(w io.Writer) error {
	fmt.Fprintf(w, "fleet: %s\n", r.Spec)
	fmt.Fprintf(w, "ues: %d (", r.UEs)
	for i, app := range r.Spec.apps() {
		if i > 0 {
			fmt.Fprint(w, " ")
		}
		fmt.Fprintf(w, "%s=%d", app, r.Apps[app])
	}
	fmt.Fprint(w, ")\n\n")
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "metric\tn\tmean\tp50\tp95\tp99\t[min, max]\n")
	for _, s := range r.Group.Snapshot() {
		fmt.Fprintf(tw, "%s\t%d\t%.4g\t%.4g\t%.4g\t%.4g\t[%.4g, %.4g]\n",
			s.Name, s.N, s.Mean, s.P50, s.P95, s.P99, s.Min, s.Max)
	}
	return tw.Flush()
}
