// Package channel models heterogeneous virtual channels (HVCs): named
// duplex paths between two hosts, each excelling in some dimension of
// performance — throughput, latency, reliability, or cost — at the
// expense of the others (§2 of the paper). A Channel couples two netem
// links (one per direction) with a property sheet that steering
// policies and HVC-aware congestion control may consult, mirroring the
// paper's observation that exposing channel information to higher
// layers improves their decisions.
package channel

import (
	"fmt"
	"time"

	"hvc/internal/netem"
	"hvc/internal/packet"
	"hvc/internal/sim"
	"hvc/internal/telemetry"
	"hvc/internal/trace"
)

// Side identifies one endpoint of a channel. By convention side A is
// the client (UE) and side B the server.
type Side int

const (
	// A is the client-side endpoint.
	A Side = iota
	// B is the server-side endpoint.
	B
)

// Other returns the opposite side.
func (s Side) Other() Side {
	if s == A {
		return B
	}
	return A
}

// String names the side for logs.
func (s Side) String() string {
	if s == A {
		return "A"
	}
	return "B"
}

// Properties is the channel information sheet available to steering
// and transport: the nominal figures a host would learn from the HVC's
// control plane (not the instantaneous trace values, which the host
// can only observe indirectly).
type Properties struct {
	Name string
	// BaseRTT is the nominal round-trip propagation delay.
	BaseRTT time.Duration
	// Bandwidth is the nominal downlink rate in bits per second.
	Bandwidth float64
	// LossProb is the channel's non-congestive loss rate.
	LossProb float64
	// CostPerByte prices channel use for cost-aware steering (e.g., a
	// cISP-style premium path); 0 means the channel is free.
	CostPerByte float64
	// Reliable marks channels with a reliability guarantee (URLLC's
	// five-nines target, or replicated Wi-Fi MLO).
	Reliable bool
}

// Config assembles a Channel.
type Config struct {
	Props Properties
	// DownTrace drives the B→A (server-to-client) direction, where
	// bulk data flows in the paper's workloads; UpTrace drives A→B
	// and defaults to DownTrace when nil.
	DownTrace *trace.Trace
	UpTrace   *trace.Trace
	// QueueBytes caps each direction's queue; 0 means netem's default.
	QueueBytes int
}

// A Channel is one duplex virtual channel. Its per-side delivery sinks
// must be set with SetSink before traffic flows.
type Channel struct {
	props Properties
	// toB carries A→B traffic, toA carries B→A traffic.
	toB, toA *netem.Link
	sinks    [2]netem.Sink // indexed by receiving Side
	// group is the owning Group (set by NewGroup); outage recovery
	// notifies its wake-on-up waiters.
	group *Group
	// downUntil is the advisory end time of the active fault outage
	// (0 = none or unknown), recorded by SetOutageUntil so the outage
	// experiment's fast-forward can prove how long the blackout lasts.
	downUntil time.Duration
}

// New builds a channel on the given loop. Delivery sinks start unset;
// the endpoints attach themselves with SetSink.
func New(loop *sim.Loop, cfg Config) *Channel {
	if cfg.DownTrace == nil {
		panic(fmt.Sprintf("channel %q: nil DownTrace", cfg.Props.Name))
	}
	up := cfg.UpTrace
	if up == nil {
		up = cfg.DownTrace
	}
	c := &Channel{props: cfg.Props}
	// The salts keep the two directions' private loss streams distinct
	// even though both links carry the channel's name.
	c.toA = netem.New(loop, netem.Config{
		Name:       cfg.Props.Name,
		Trace:      cfg.DownTrace,
		QueueBytes: cfg.QueueBytes,
		LossProb:   cfg.Props.LossProb,
		Salt:       "down",
	}, func(p *packet.Packet) { c.deliver(A, p) })
	c.toB = netem.New(loop, netem.Config{
		Name:       cfg.Props.Name,
		Trace:      up,
		QueueBytes: cfg.QueueBytes,
		LossProb:   cfg.Props.LossProb,
		Salt:       "up",
	}, func(p *packet.Packet) { c.deliver(B, p) })
	return c
}

// SetTracer installs the telemetry hook on both directions' links;
// nil disables tracing.
func (c *Channel) SetTracer(t *telemetry.Tracer) {
	c.toA.SetTracer(t)
	c.toB.SetTracer(t)
}

// Props returns the channel's property sheet.
func (c *Channel) Props() Properties { return c.props }

// Name returns the channel's name.
func (c *Channel) Name() string { return c.props.Name }

// SetSink registers the function that receives packets arriving at
// side s. It must be called for each side before that side receives
// traffic.
func (c *Channel) SetSink(s Side, sink netem.Sink) {
	c.sinks[s] = sink
}

func (c *Channel) deliver(to Side, p *packet.Packet) {
	sink := c.sinks[to]
	if sink == nil {
		panic(fmt.Sprintf("channel %q: packet arrived at side %v with no sink", c.props.Name, to))
	}
	sink(p)
}

// Send transmits p from the given side toward the other, reporting
// whether the channel accepted it (false means dropped at entry).
func (c *Channel) Send(from Side, p *packet.Packet) bool {
	return c.link(from).Send(p)
}

// QueuedBytes reports the bytes waiting to leave side from.
func (c *Channel) QueuedBytes(from Side) int {
	return c.link(from).QueuedBytes()
}

// QueueDelay estimates the wait a new packet sent from side from would
// experience before transmission begins.
func (c *Channel) QueueDelay(from Side) time.Duration {
	return c.link(from).QueueDelay()
}

// Stats returns the counters of the link leaving side from.
func (c *Channel) Stats(from Side) netem.Stats {
	return c.link(from).Stats()
}

func (c *Channel) link(from Side) *netem.Link {
	if from == A {
		return c.toB
	}
	return c.toA
}

// Fault-injection controls (see internal/fault). A channel-level fault
// models a radio- or path-level event, so it applies to both
// directions at once; per-direction loss processes go through
// SetLossFn because each direction keeps its own burst state.

// SetOutage blacks out (or restores) both directions of the channel.
// Packets already serialized still arrive; queued packets wait.
// Restoring a channel fires the owning group's wake-on-up waiters.
func (c *Channel) SetOutage(down bool) {
	wasDown := c.Down()
	c.toA.SetDown(down)
	c.toB.SetDown(down)
	if !down {
		c.downUntil = 0
		if wasDown && c.group != nil {
			c.group.notifyUp()
		}
	}
}

// SetOutageUntil blacks out the channel like SetOutage(true) and
// records the scheduled recovery time as an advisory hint readable via
// DownUntil. The fault layer knows each window's duration, so it can
// tell consumers how long the blackout will last — which is what lets
// the outage experiment fast-forward across it.
func (c *Channel) SetOutageUntil(until time.Duration) {
	c.SetOutage(true)
	c.downUntil = until
}

// DownUntil reports the advisory recovery time of the active outage,
// or 0 when the channel is up or the outage has no known end.
func (c *Channel) DownUntil() time.Duration { return c.downUntil }

// Headroom reports the entry-queue bytes still available in the
// direction leaving side from.
func (c *Channel) Headroom(from Side) int { return c.link(from).Headroom() }

// Transmitting reports whether the direction leaving side from has a
// packet mid-serialization (or a trace wake pending); see
// netem.Link.Transmitting.
func (c *Channel) Transmitting(from Side) bool { return c.link(from).Transmitting() }

// Down reports whether a fault outage is active on either direction.
// Steering policies consult it to fail over off a dead channel and to
// re-probe it the moment it recovers.
func (c *Channel) Down() bool { return c.toA.Down() || c.toB.Down() }

// SetRateScale applies a rate slump (0 < f, 1 = nominal) to both
// directions.
func (c *Channel) SetRateScale(f float64) {
	c.toA.SetRateScale(f)
	c.toB.SetRateScale(f)
}

// SetExtraDelay applies a delay spike (0 = nominal) to both directions.
func (c *Channel) SetExtraDelay(d time.Duration) {
	c.toA.SetExtraDelay(d)
	c.toB.SetExtraDelay(d)
}

// SetLossFn installs an extra per-packet drop process on the direction
// leaving side from; nil removes it.
func (c *Channel) SetLossFn(from Side, fn func() bool) {
	c.link(from).SetLossFn(fn)
}

// RateScale reports the fault-injection rate multiplier currently
// applied to both directions (1 = nominal). The fault layer's
// window-restore invariant reads it after clearing a slump.
func (c *Channel) RateScale() float64 { return c.toA.RateScale() }

// ExtraDelay reports the fault-injection delay currently added to both
// directions (0 = nominal).
func (c *Channel) ExtraDelay() time.Duration { return c.toA.ExtraDelay() }

// LossFnInstalled reports whether a fault-injection drop process is
// installed on the direction leaving side from.
func (c *Channel) LossFnInstalled(from Side) bool { return c.link(from).LossFnInstalled() }

// A Group is the set of channels available between one pair of hosts.
// It also owns the simulation's packet free list: the group is the one
// object both endpoints share, so packets recycled by the receiving
// side are reused by the sending side (see packet.Pool).
type Group struct {
	channels  []*Channel
	byName    map[string]*Channel
	pool      packet.Pool
	upWaiters []func()
}

// NewGroup collects channels into a group, preserving order. Duplicate
// names panic: steering addresses channels by name.
func NewGroup(chs ...*Channel) *Group {
	g := &Group{byName: make(map[string]*Channel, len(chs))}
	for _, c := range chs {
		if _, dup := g.byName[c.Name()]; dup {
			panic("channel: duplicate channel name " + c.Name())
		}
		c.group = g
		g.channels = append(g.channels, c)
		g.byName[c.Name()] = c
	}
	return g
}

// AllDown reports whether every channel of the group is in a fault
// outage. Transports check it before arming entry-drop retry timers:
// when it holds, polling cannot succeed, and WakeOnUp is the way to
// resume.
func (g *Group) AllDown() bool {
	for _, c := range g.channels {
		if !c.Down() {
			return false
		}
	}
	return len(g.channels) > 0
}

// WakeOnUp registers a one-shot callback to run the next time any down
// channel of the group is restored. It replaces blind retry polling
// during a total blackout: an hour-long outage costs zero retry events
// because every blocked sender parks here and is woken exactly once.
func (g *Group) WakeOnUp(fn func()) { g.upWaiters = append(g.upWaiters, fn) }

// notifyUp drains the wake-on-up list. Callbacks may re-register
// (their retry can fail again); those wait for the next restoration.
func (g *Group) notifyUp() {
	ws := g.upWaiters
	g.upWaiters = nil
	for i, fn := range ws {
		ws[i] = nil
		fn()
	}
}

// All returns the group's channels in construction order. The slice is
// shared; callers must not modify it.
func (g *Group) All() []*Channel { return g.channels }

// Pool returns the group's shared packet free list.
func (g *Group) Pool() *packet.Pool { return &g.pool }

// Get returns the named channel, or nil when absent.
func (g *Group) Get(name string) *Channel { return g.byName[name] }

// SetTracer installs the telemetry hook on every channel of the
// group; nil disables tracing.
func (g *Group) SetTracer(t *telemetry.Tracer) {
	for _, c := range g.channels {
		c.SetTracer(t)
	}
}

// Len reports the number of channels.
func (g *Group) Len() int { return len(g.channels) }

// Standard channel constructors matching the paper's scenarios.

// NameEMBB and NameURLLC are the conventional channel names used by
// experiments and steering defaults.
const (
	NameEMBB  = "embb"
	NameURLLC = "urllc"
)

// EMBB builds the high-bandwidth high-latency cellular channel driven
// by tr in both directions.
func EMBB(loop *sim.Loop, tr *trace.Trace) *Channel {
	s := tr.At(0)
	return New(loop, Config{
		Props: Properties{
			Name:      NameEMBB,
			BaseRTT:   s.RTT,
			Bandwidth: s.Rate,
		},
		DownTrace: tr,
	})
}

// EMBBFixed builds the Fig. 1 constant eMBB channel: 50 ms RTT at
// 60 Mbps.
func EMBBFixed(loop *sim.Loop) *Channel {
	return EMBB(loop, trace.Constant("embb-fixed", 50*time.Millisecond, 60e6))
}

// URLLC builds the low-latency low-bandwidth channel the paper
// emulates: 5 ms RTT at 2 Mbps, with URLLC's reliability guarantee.
// Its queue is kept shallow: URLLC admission control would not let a
// deep backlog form.
func URLLC(loop *sim.Loop) *Channel {
	return New(loop, Config{
		Props: Properties{
			Name:      NameURLLC,
			BaseRTT:   5 * time.Millisecond,
			Bandwidth: 2e6,
			Reliable:  true,
		},
		DownTrace:  trace.URLLC(),
		QueueBytes: 64 << 10,
	})
}

// WiFiMLO builds the two Wi-Fi 7 multi-link channels of §2.2: a lossy
// high-rate 5 GHz link and a clean, contention-free 6 GHz link.
func WiFiMLO(loop *sim.Loop) (band5, band6 *Channel) {
	band5 = New(loop, Config{
		Props: Properties{
			Name:      "wifi5",
			BaseRTT:   20 * time.Millisecond,
			Bandwidth: 120e6,
			LossProb:  0.02,
		},
		DownTrace: trace.Constant("wifi5", 20*time.Millisecond, 120e6),
	})
	band6 = New(loop, Config{
		Props: Properties{
			Name:      "wifi6ghz",
			BaseRTT:   4 * time.Millisecond,
			Bandwidth: 40e6,
			Reliable:  true,
		},
		DownTrace: trace.Constant("wifi6ghz", 4*time.Millisecond, 40e6),
	})
	return band5, band6
}

// CISP builds the §2.3 WAN pair: conventional fiber alongside a
// cISP-style speed-of-light microwave path that is fast, narrow, and
// priced per byte.
func CISP(loop *sim.Loop) (fiber, microwave *Channel) {
	fiber = New(loop, Config{
		Props: Properties{
			Name:      "fiber",
			BaseRTT:   40 * time.Millisecond,
			Bandwidth: 1e9,
		},
		DownTrace: trace.Constant("fiber", 40*time.Millisecond, 1e9),
	})
	microwave = New(loop, Config{
		Props: Properties{
			Name:        "cisp",
			BaseRTT:     13 * time.Millisecond, // ~c vs ~2c/3 in fiber
			Bandwidth:   10e6,
			CostPerByte: 1e-6,
		},
		DownTrace: trace.Constant("cisp", 13*time.Millisecond, 10e6),
	})
	return fiber, microwave
}

// LEO builds the §2.3 satellite pair: a Starlink-style LEO path with
// lower latency but less bandwidth than the terrestrial Internet path.
func LEO(loop *sim.Loop) (terrestrial, leo *Channel) {
	terrestrial = New(loop, Config{
		Props: Properties{
			Name:      "terrestrial",
			BaseRTT:   70 * time.Millisecond,
			Bandwidth: 500e6,
		},
		DownTrace: trace.Constant("terrestrial", 70*time.Millisecond, 500e6),
	})
	leo = New(loop, Config{
		Props: Properties{
			Name:      "leo",
			BaseRTT:   30 * time.Millisecond,
			Bandwidth: 50e6,
			LossProb:  0.005,
		},
		DownTrace: trace.Constant("leo", 30*time.Millisecond, 50e6),
	})
	return terrestrial, leo
}

// WiFiTSN builds the §2.2 wireless-TSN pair: a time-synchronized,
// scheduled channel with deterministic low latency, and the ordinary
// contention-based best-effort channel. Unlike cellular URLLC, TSN's
// reserved airtime is not free: every scheduled user's slots subtract
// from the best-effort channel's capacity and add contention latency,
// which is the deployment concern the paper raises. tsnUsers counts
// the stations holding TSN reservations (including this one) and must
// be at least 1.
func WiFiTSN(loop *sim.Loop, tsnUsers int) (tsn, bestEffort *Channel) {
	if tsnUsers < 1 {
		panic("channel: WiFiTSN needs at least one TSN user")
	}
	// Each reservation takes ~8 Mbps of airtime and adds scheduling
	// latency for everyone contending outside the protected slots.
	beRate := 150e6 - 8e6*float64(tsnUsers)
	if beRate < 20e6 {
		beRate = 20e6
	}
	beRTT := 20*time.Millisecond + 4*time.Millisecond*time.Duration(tsnUsers)
	tsn = New(loop, Config{
		Props: Properties{
			Name:      "wifi-tsn",
			BaseRTT:   8 * time.Millisecond,
			Bandwidth: 8e6,
			Reliable:  true,
		},
		DownTrace:  trace.Constant("wifi-tsn", 8*time.Millisecond, 8e6),
		QueueBytes: 64 << 10,
	})
	bestEffort = New(loop, Config{
		Props: Properties{
			Name:      "wifi-be",
			BaseRTT:   beRTT,
			Bandwidth: beRate,
			LossProb:  0.01,
		},
		DownTrace: trace.Constant("wifi-be", beRTT, beRate),
	})
	return tsn, bestEffort
}
