package channel

import (
	"testing"
	"time"

	"hvc/internal/packet"
	"hvc/internal/sim"
	"hvc/internal/trace"
)

func TestSideOther(t *testing.T) {
	if A.Other() != B || B.Other() != A {
		t.Fatal("Other() broken")
	}
	if A.String() != "A" || B.String() != "B" {
		t.Fatal("String() broken")
	}
}

func TestDuplexDelivery(t *testing.T) {
	loop := sim.NewLoop(1)
	c := URLLC(loop)
	var atA, atB []*packet.Packet
	c.SetSink(A, func(p *packet.Packet) { atA = append(atA, p) })
	c.SetSink(B, func(p *packet.Packet) { atB = append(atB, p) })

	if !c.Send(A, &packet.Packet{ID: 1, Size: 100}) {
		t.Fatal("A→B send rejected")
	}
	if !c.Send(B, &packet.Packet{ID: 2, Size: 100}) {
		t.Fatal("B→A send rejected")
	}
	loop.Run()
	if len(atB) != 1 || atB[0].ID != 1 {
		t.Fatalf("B received %v", atB)
	}
	if len(atA) != 1 || atA[0].ID != 2 {
		t.Fatalf("A received %v", atA)
	}
	if atB[0].Channel != NameURLLC {
		t.Fatalf("channel stamp %q", atB[0].Channel)
	}
}

func TestDeliveryWithoutSinkPanics(t *testing.T) {
	loop := sim.NewLoop(1)
	c := URLLC(loop)
	c.Send(A, &packet.Packet{ID: 1, Size: 100})
	defer func() {
		if recover() == nil {
			t.Error("delivery with no sink should panic")
		}
	}()
	loop.Run()
}

func TestURLLCLatency(t *testing.T) {
	loop := sim.NewLoop(1)
	c := URLLC(loop)
	var arrived time.Duration
	c.SetSink(B, func(p *packet.Packet) { arrived = loop.Now() })
	c.SetSink(A, func(p *packet.Packet) {})
	// 250-byte packet at 2 Mbps = 1 ms serialize + 2.5 ms propagation.
	c.Send(A, &packet.Packet{ID: 1, Size: 250})
	loop.Run()
	if want := 3500 * time.Microsecond; arrived != want {
		t.Fatalf("URLLC one-way = %v, want %v", arrived, want)
	}
}

func TestEMBBFixedProps(t *testing.T) {
	loop := sim.NewLoop(1)
	c := EMBBFixed(loop)
	p := c.Props()
	if p.Name != NameEMBB || p.BaseRTT != 50*time.Millisecond || p.Bandwidth != 60e6 {
		t.Fatalf("props = %+v", p)
	}
	if p.Reliable {
		t.Fatal("eMBB must not be marked reliable")
	}
}

func TestEMBBFollowsTrace(t *testing.T) {
	loop := sim.NewLoop(1)
	tr := trace.LowbandDriving(1, 30*time.Second)
	c := EMBB(loop, tr)
	if c.Props().BaseRTT != tr.At(0).RTT {
		t.Fatal("BaseRTT should come from the trace's first sample")
	}
}

func TestQueueObservability(t *testing.T) {
	loop := sim.NewLoop(1)
	c := URLLC(loop)
	c.SetSink(B, func(*packet.Packet) {})
	c.Send(A, &packet.Packet{ID: 1, Size: 1000})
	c.Send(A, &packet.Packet{ID: 2, Size: 1000})
	if c.QueuedBytes(A) != 2000 {
		t.Fatalf("QueuedBytes(A) = %d, want 2000", c.QueuedBytes(A))
	}
	if c.QueuedBytes(B) != 0 {
		t.Fatalf("QueuedBytes(B) = %d, want 0", c.QueuedBytes(B))
	}
	if c.QueueDelay(A) <= 0 {
		t.Fatal("QueueDelay(A) should be positive with a backlog")
	}
	loop.Run()
	st := c.Stats(A)
	if st.Delivered != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGroupLookup(t *testing.T) {
	loop := sim.NewLoop(1)
	e, u := EMBBFixed(loop), URLLC(loop)
	g := NewGroup(e, u)
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	if g.Get(NameEMBB) != e || g.Get(NameURLLC) != u {
		t.Fatal("Get by name broken")
	}
	if g.Get("nope") != nil {
		t.Fatal("Get of unknown name should be nil")
	}
	if all := g.All(); len(all) != 2 || all[0] != e || all[1] != u {
		t.Fatal("All order not preserved")
	}
}

func TestGroupDuplicateNamePanics(t *testing.T) {
	loop := sim.NewLoop(1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate names should panic")
		}
	}()
	NewGroup(URLLC(loop), URLLC(loop))
}

func TestNilDownTracePanics(t *testing.T) {
	loop := sim.NewLoop(1)
	defer func() {
		if recover() == nil {
			t.Error("nil DownTrace should panic")
		}
	}()
	New(loop, Config{Props: Properties{Name: "x"}})
}

func TestAsymmetricTraces(t *testing.T) {
	loop := sim.NewLoop(1)
	down := trace.Constant("down", 10*time.Millisecond, 80e6)
	up := trace.Constant("up", 10*time.Millisecond, 8e6)
	c := New(loop, Config{
		Props:     Properties{Name: "asym"},
		DownTrace: down,
		UpTrace:   up,
	})
	var aAt, bAt time.Duration
	c.SetSink(A, func(*packet.Packet) { aAt = loop.Now() })
	c.SetSink(B, func(*packet.Packet) { bAt = loop.Now() })
	c.Send(A, &packet.Packet{ID: 1, Size: 1000}) // uplink: 1 ms tx
	c.Send(B, &packet.Packet{ID: 2, Size: 1000}) // downlink: 0.1 ms tx
	loop.Run()
	if bAt <= aAt {
		// A→B used the slow uplink so must arrive later than B→A.
		t.Fatalf("uplink arrival %v should be after downlink %v", bAt, aAt)
	}
}

func TestStandardPairs(t *testing.T) {
	loop := sim.NewLoop(1)
	b5, b6 := WiFiMLO(loop)
	if !b6.Props().Reliable || b5.Props().Reliable {
		t.Fatal("6 GHz band should be the reliable one")
	}
	if b5.Props().Bandwidth <= b6.Props().Bandwidth {
		t.Fatal("5 GHz band should be the wide one")
	}
	fiber, mw := CISP(loop)
	if mw.Props().CostPerByte <= 0 || fiber.Props().CostPerByte != 0 {
		t.Fatal("cISP path should be the priced one")
	}
	if mw.Props().BaseRTT >= fiber.Props().BaseRTT {
		t.Fatal("cISP path should be faster")
	}
	terr, leo := LEO(loop)
	if leo.Props().BaseRTT >= terr.Props().BaseRTT {
		t.Fatal("LEO should have lower base RTT")
	}
	if leo.Props().Bandwidth >= terr.Props().Bandwidth {
		t.Fatal("LEO should have less bandwidth")
	}
}

func TestWiFiTSNContentionCost(t *testing.T) {
	loop := sim.NewLoop(1)
	tsn1, be1 := WiFiTSN(loop, 1)
	_, be8 := WiFiTSN(loop, 8)
	if !tsn1.Props().Reliable {
		t.Fatal("TSN channel should be reliable")
	}
	if be8.Props().BaseRTT <= be1.Props().BaseRTT {
		t.Fatal("more TSN users must raise best-effort latency")
	}
	if be8.Props().Bandwidth >= be1.Props().Bandwidth {
		t.Fatal("more TSN users must shrink best-effort capacity")
	}
	// Capacity floor holds even at absurd user counts.
	_, beMany := WiFiTSN(loop, 100)
	if beMany.Props().Bandwidth < 20e6 {
		t.Fatalf("best-effort floor violated: %v", beMany.Props().Bandwidth)
	}
}

func TestWiFiTSNValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("0 users should panic")
		}
	}()
	WiFiTSN(sim.NewLoop(1), 0)
}

// Property: a channel delivers every accepted packet exactly once per
// direction when lossless, regardless of interleaving.
func TestChannelDeliveryConservation(t *testing.T) {
	loop := sim.NewLoop(11)
	c := EMBBFixed(loop)
	var gotA, gotB int
	c.SetSink(A, func(*packet.Packet) { gotA++ })
	c.SetSink(B, func(*packet.Packet) { gotB++ })
	const n = 500
	for i := 0; i < n; i++ {
		i := i
		loop.At(time.Duration(i)*time.Millisecond, func() {
			c.Send(A, &packet.Packet{ID: uint64(2 * i), Size: 800})
			c.Send(B, &packet.Packet{ID: uint64(2*i + 1), Size: 800})
		})
	}
	loop.Run()
	if gotA != n || gotB != n {
		t.Fatalf("delivered A=%d B=%d, want %d each", gotA, gotB, n)
	}
	if c.Stats(A).Delivered != n || c.Stats(B).Delivered != n {
		t.Fatalf("stats disagree: %+v %+v", c.Stats(A), c.Stats(B))
	}
}

func TestChannelDirectionIsolation(t *testing.T) {
	// Saturating one direction must not delay the other.
	loop := sim.NewLoop(12)
	c := EMBBFixed(loop)
	var bAt time.Duration
	c.SetSink(B, func(*packet.Packet) {})
	c.SetSink(A, func(*packet.Packet) { bAt = loop.Now() })
	// Flood A→B.
	for i := 0; i < 500; i++ {
		c.Send(A, &packet.Packet{ID: uint64(i), Size: 1500})
	}
	// One probe B→A at t=0: must arrive at propagation + tx, not
	// behind the flood.
	c.Send(B, &packet.Packet{ID: 9999, Size: 1500})
	loop.Run()
	if bAt > 26*time.Millisecond {
		t.Fatalf("reverse-direction probe delayed to %v by forward flood", bAt)
	}
}
