//go:build !sim_wheel

package sim

// DefaultScheduler is the event-queue implementation NewLoop selects.
// The default build uses the 4-ary heap; building with -tags sim_wheel
// flips every loop in the binary onto the timing wheel, which is how
// CI's scheduler-matrix leg proves the two produce byte-identical
// experiment results.
const DefaultScheduler = Heap
