package sim

import (
	"testing"
	"time"
)

// refEvent is one scheduled occurrence in the reference scheduler: a
// flat slice scanned for the (at, seq) minimum on every step. It is
// obviously correct and hopelessly slow — exactly what an oracle for
// the inline heap should be.
type refEvent struct {
	at        time.Duration
	seq       uint64
	id        int
	cancelled bool
	fired     bool
}

type refSched struct {
	events []refEvent
	now    time.Duration
	seq    uint64
	fired  []int
}

func (r *refSched) schedule(d time.Duration, id int) int {
	if d < 0 {
		d = 0
	}
	r.events = append(r.events, refEvent{at: r.now + d, seq: r.seq, id: id})
	r.seq++
	return len(r.events) - 1
}

// cancel mirrors Timer.Stop: it reports whether the event was still
// pending.
func (r *refSched) cancel(idx int) bool {
	e := &r.events[idx]
	if e.fired || e.cancelled {
		return false
	}
	e.cancelled = true
	return true
}

// step runs the earliest pending event, mirroring Loop.Step.
func (r *refSched) step() bool {
	best := -1
	for i := range r.events {
		e := &r.events[i]
		if e.fired || e.cancelled {
			continue
		}
		if best == -1 || e.at < r.events[best].at ||
			(e.at == r.events[best].at && e.seq < r.events[best].seq) {
			best = i
		}
	}
	if best == -1 {
		return false
	}
	r.events[best].fired = true
	r.now = r.events[best].at
	r.fired = append(r.fired, r.events[best].id)
	return true
}

// FuzzLoopSchedule drives the event loop and the reference scheduler
// with the same byte-derived program of schedule / cancel / step
// operations and demands identical observable behaviour: firing order,
// clock, pending count, and Stop results. It exercises the inline
// heap's sift paths, the generation-counted timer handles, and lazy
// compaction (cancel-heavy inputs push past the threshold).
func FuzzLoopSchedule(f *testing.F) {
	f.Add([]byte{0, 10, 0, 5, 2, 0, 1, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 2, 0, 2, 0})
	// Cancel-heavy: many schedules, then interleaved cancels.
	seed := make([]byte, 0, 400)
	for i := 0; i < 100; i++ {
		seed = append(seed, 0, byte(i*7))
	}
	for i := 0; i < 100; i++ {
		seed = append(seed, 1, byte(i))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		l := NewLoop(1)
		ref := &refSched{}
		var got []int
		var timers []Timer
		var refIdx []int
		nextID := 0
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%4, data[i+1]
			switch op {
			case 0, 3: // schedule (twice as likely as the others)
				id := nextID
				nextID++
				d := time.Duration(arg) * time.Millisecond
				timers = append(timers, l.After(d, func() { got = append(got, id) }))
				refIdx = append(refIdx, ref.schedule(d, id))
			case 1: // cancel an arbitrary earlier timer
				if len(timers) == 0 {
					continue
				}
				j := int(arg) % len(timers)
				stopped := timers[j].Stop()
				if want := ref.cancel(refIdx[j]); stopped != want {
					t.Fatalf("op %d: Stop(timer %d) = %v, reference says %v", i/2, j, stopped, want)
				}
			case 2: // run one event
				stepped := l.Step()
				if want := ref.step(); stepped != want {
					t.Fatalf("op %d: Step() = %v, reference says %v", i/2, stepped, want)
				}
			}
			if l.Now() != ref.now {
				t.Fatalf("op %d: Now() = %v, reference clock %v", i/2, l.Now(), ref.now)
			}
		}
		// Drain both schedulers and compare the complete firing order.
		l.Run()
		for ref.step() {
		}
		if len(got) != len(ref.fired) {
			t.Fatalf("loop fired %d events, reference fired %d", len(got), len(ref.fired))
		}
		for i := range got {
			if got[i] != ref.fired[i] {
				t.Fatalf("firing order diverges at %d: loop ran event %d, reference %d\nloop: %v\nref:  %v",
					i, got[i], ref.fired[i], got, ref.fired)
			}
		}
		if l.Now() != ref.now {
			t.Fatalf("final clock %v, reference %v", l.Now(), ref.now)
		}
		if l.Pending() != 0 {
			t.Fatalf("Pending = %d after drain, want 0", l.Pending())
		}
	})
}
