package sim

import (
	"testing"
	"time"
)

// A quiet-time jump is what the wheel (and the outage fast-forward)
// produce when every event between now and some far deadline is
// cancelled: the clock leaps there in one step. A Periodic must keep
// re-arming across such a jump with its cadence intact, and timers
// scheduled *inside* the jumped-over interval by surviving callbacks
// must still fire in order. Run the same program on both schedulers
// and demand identical traces.
func TestPeriodicRearmAcrossQuietJump(t *testing.T) {
	type fire struct {
		at   time.Duration
		what string
	}
	run := func(kind Scheduler) []fire {
		l := NewLoopSched(1, kind)
		var got []fire
		p := Every(l, 7*time.Millisecond, func() {
			got = append(got, fire{l.Now(), "tick"})
		})
		// A dense block of timers filling [0, 500ms]... all cancelled,
		// so the stretch between the surviving events is pure quiet
		// time the scheduler may cross however it likes.
		var cancelled []Timer
		for i := 0; i < 400; i++ {
			cancelled = append(cancelled, l.At(time.Duration(i+1)*time.Millisecond, func() {
				t.Error("cancelled timer fired")
			}))
		}
		for _, c := range cancelled {
			c.Stop()
		}
		// A survivor in the middle schedules a new timer further into
		// the formerly dense interval.
		l.At(250*time.Millisecond, func() {
			got = append(got, fire{l.Now(), "mid"})
			l.At(333*time.Millisecond, func() {
				got = append(got, fire{l.Now(), "inner"})
			})
		})
		l.RunUntil(420 * time.Millisecond)
		p.Stop()
		return got
	}
	heap, wheel := run(Heap), run(Wheel)
	if len(heap) != len(wheel) {
		t.Fatalf("heap fired %d events, wheel %d", len(heap), len(wheel))
	}
	var ticks int
	for i := range heap {
		if heap[i] != wheel[i] {
			t.Fatalf("trace diverges at %d: heap %+v, wheel %+v", i, heap[i], wheel[i])
		}
		switch heap[i].what {
		case "tick":
			ticks++
			if want := time.Duration(ticks) * 7 * time.Millisecond; heap[i].at != want {
				t.Fatalf("tick %d at %v, want %v — cadence drifted across the jump", ticks, heap[i].at, want)
			}
		case "mid":
			if heap[i].at != 250*time.Millisecond {
				t.Fatalf("mid survivor fired at %v", heap[i].at)
			}
		case "inner":
			if heap[i].at != 333*time.Millisecond {
				t.Fatalf("inner timer fired at %v", heap[i].at)
			}
		}
	}
	if want := int(420 / 7); ticks != want {
		t.Fatalf("got %d periodic ticks, want %d", ticks, want)
	}
}
