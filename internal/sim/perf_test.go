package sim

import (
	"testing"
	"time"
)

// Regression test for the cancelled-event leak: a workload that keeps
// scheduling timers and cancelling nearly all of them (pacing, delayed
// acks, retransmission timers) must not grow the heap without bound.
// Lazy compaction keeps the physical queue proportional to the live
// event count, and the slot table is recycled through the free list.
func TestCancelledEventsAreCompacted(t *testing.T) {
	l := NewLoop(1)
	const rounds = 100
	const perRound = 200
	var maxHeap, maxSlots int
	for r := 0; r < rounds; r++ {
		timers := make([]Timer, perRound)
		deadline := time.Duration(r+1) * time.Second
		for i := range timers {
			timers[i] = l.At(deadline, func() { t.Error("cancelled timer fired") })
		}
		for i := range timers {
			if !timers[i].Stop() {
				t.Fatal("Stop on a pending timer returned false")
			}
		}
		if n := l.queueSize(); n > maxHeap {
			maxHeap = n
		}
		if n := len(l.slots); n > maxSlots {
			maxSlots = n
		}
	}
	// Without compaction the heap would hold rounds*perRound = 20000
	// dead entries. With it, occupancy stays near one round's worth.
	if bound := 2*perRound + compactMin; maxHeap > bound {
		t.Errorf("heap occupancy reached %d entries, want <= %d", maxHeap, bound)
	}
	if bound := 2 * perRound; maxSlots > bound {
		t.Errorf("slot table grew to %d, want <= %d (free list should recycle)", maxSlots, bound)
	}
	if l.Pending() != 0 {
		t.Errorf("Pending = %d after cancelling everything, want 0", l.Pending())
	}
	l.Run() // must not fire anything (t.Error above catches it)
	if n := l.queueSize(); n != 0 {
		t.Errorf("queue holds %d entries after Run, want 0", n)
	}
}

// Compaction must not disturb pop order: live events fire in the same
// (time, schedule) order whether or not a compaction pass ran.
func TestCompactionPreservesOrder(t *testing.T) {
	l := NewLoop(1)
	var got []int
	var cancel []Timer
	// Interleave survivors with soon-to-die timers, cancelling two of
	// every three so the threshold trips and the compaction pass
	// rebuilds a heap containing every third entry.
	for i := 0; i < 300; i++ {
		i := i
		at := time.Duration(997*i%300) * time.Millisecond
		if i%3 == 0 {
			l.At(at, func() { got = append(got, i) })
		} else {
			cancel = append(cancel, l.At(at, func() { t.Error("dead timer fired") }))
		}
	}
	for i := range cancel {
		cancel[i].Stop()
	}
	l.Run()
	if len(got) != 100 {
		t.Fatalf("fired %d events, want 100", len(got))
	}
	// Reconstruct the expected order: ascending (at, schedule seq).
	prevAt, prevSeq := time.Duration(-1), -1
	for _, i := range got {
		at := time.Duration(997*i%300) * time.Millisecond
		if at < prevAt || (at == prevAt && i < prevSeq) {
			t.Fatalf("event %d (at %v) fired out of order", i, at)
		}
		prevAt, prevSeq = at, i
	}
}

// Allocation budget: scheduling and firing events allocates nothing
// once the loop's arrays have grown to the working set. This is the
// core zero-allocation claim — the benchmarks measure it, this test
// enforces it.
func TestAfterStepAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	l := NewLoop(1)
	fn := func() {}
	// Warm up: grow the heap, slot table, and free list.
	for i := 0; i < 128; i++ {
		l.After(time.Duration(i%13)*time.Microsecond, fn)
	}
	l.Run()
	if avg := testing.AllocsPerRun(200, func() {
		l.After(time.Microsecond, fn)
		l.Step()
	}); avg != 0 {
		t.Errorf("After+Step allocates %v/op in steady state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		tm := l.After(time.Microsecond, fn)
		tm.Stop()
	}); avg != 0 {
		t.Errorf("After+Stop allocates %v/op in steady state, want 0", avg)
	}
}

// A running Periodic re-arms itself through one closure built in Every,
// so each tick recycles the expired slot and allocates nothing.
func TestPeriodicReArmAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	l := NewLoop(1)
	n := 0
	p := Every(l, time.Millisecond, func() { n++ })
	defer p.Stop()
	for i := 0; i < 64; i++ {
		l.Step() // warm up
	}
	if avg := testing.AllocsPerRun(200, func() { l.Step() }); avg != 0 {
		t.Errorf("Periodic tick allocates %v/op in steady state, want 0", avg)
	}
	if n < 264 {
		t.Fatalf("periodic fired %d times, want >= 264", n)
	}
}

func BenchmarkAfterStep(b *testing.B) {
	l := NewLoop(1)
	fn := func() {}
	for i := 0; i < 128; i++ {
		l.After(time.Duration(i%13)*time.Microsecond, fn)
	}
	l.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.After(time.Microsecond, fn)
		l.Step()
	}
}

func BenchmarkScheduleStopChurn(b *testing.B) {
	l := NewLoop(1)
	fn := func() {}
	var timers [64]Timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range timers {
			timers[j] = l.After(time.Duration(j)*time.Microsecond, fn)
		}
		for j := range timers {
			timers[j].Stop()
		}
		for l.Step() {
		}
	}
}

func BenchmarkPeriodicTick(b *testing.B) {
	l := NewLoop(1)
	p := Every(l, time.Millisecond, func() {})
	defer p.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Step()
	}
}
