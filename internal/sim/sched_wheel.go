//go:build sim_wheel

package sim

// DefaultScheduler under -tags sim_wheel: every NewLoop in the binary
// runs on the hierarchical timing wheel. Results must be byte-identical
// to the default heap build; CI's scheduler-matrix leg enforces it.
const DefaultScheduler = Wheel
