package sim_test

import (
	"fmt"
	"time"

	"hvc/internal/sim"
)

// Example shows the core pattern every simulation in this repository
// follows: schedule callbacks on a loop, then run it in virtual time.
func Example() {
	loop := sim.NewLoop(1)
	loop.After(10*time.Millisecond, func() {
		fmt.Println("first at", loop.Now())
	})
	loop.After(5*time.Millisecond, func() {
		fmt.Println("second fires first at", loop.Now())
	})
	loop.Run()
	// Output:
	// second fires first at 5ms
	// first at 10ms
}

// ExampleEvery shows periodic scheduling with cancellation.
func ExampleEvery() {
	loop := sim.NewLoop(1)
	ticks := 0
	var p *sim.Periodic
	p = sim.Every(loop, time.Second, func() {
		ticks++
		if ticks == 3 {
			p.Stop()
		}
	})
	loop.Run()
	fmt.Println(ticks, "ticks, ended at", loop.Now())
	// Output:
	// 3 ticks, ended at 3s
}
