package sim

import (
	"math/bits"
	"time"

	"hvc/internal/invariant"
)

// The hierarchical timing wheel is the Loop's alternative event queue
// for the dense-timer regime (pacing, per-packet arrivals, delayed
// acks): push and pop are O(1) amortized instead of O(log n), at the
// cost of a coarse first-level granularity that the ready buffer
// re-sorts exactly.
//
// Layout: wheelLevels levels of wheelSlots buckets each. One tick is
// 2^tickBits nanoseconds (~65.5µs); level i's slots each span
// 2^(tickBits+wheelBits*i) ns, so four levels cover ~78 hours from the
// wheel's current position. Events beyond the horizon wait in an
// overflow list and are folded in when the wheels drain (rebase).
//
// Exactness: a level-0 bucket holds every event of one tick, which can
// contain many distinct (at, seq) pairs. When the wheel advances to a
// tick it moves the bucket into the sorted ready buffer, and pops drain
// ready first; pushes that land at or before the ready region's ticks
// binary-insert into ready. Since every ready entry's tick is strictly
// below cur and every wheel entry's tick is >= cur, ready entries
// always sort strictly before wheel entries, so the pop sequence is the
// exact (at, seq) total order the heap produces — FuzzWheelVsHeap holds
// the two implementations to identical observable behaviour.
const (
	tickBits    = 16
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	// horizonBits is the span of ticks the four levels address from
	// cur; events whose tick differs from cur above this go to overflow.
	horizonBits = wheelBits * wheelLevels
)

// wheelTick maps a timestamp to its wheel tick.
func wheelTick(at time.Duration) uint64 { return uint64(at) >> tickBits }

// A wheelQueue is the hierarchical-wheel event queue. All entries below
// tick cur live (sorted) in ready; all entries at or above cur live in
// the level buckets or, beyond the horizon, in overflow.
type wheelQueue struct {
	cur     uint64 // wheel entries all have tick >= cur
	count   int    // entries in the level buckets (live + cancelled)
	buckets [wheelLevels][wheelSlots][]heapEntry
	occ     [wheelLevels][wheelSlots / 64]uint64
	// ready is the sorted (at, seq) run currently being drained;
	// entries before readyHead have been popped.
	ready     []heapEntry
	readyHead int
	overflow  []heapEntry
}

// size reports physical occupancy including cancelled entries, the
// wheel's analogue of len(Loop.heap).
func (w *wheelQueue) size() int {
	return w.count + len(w.ready) - w.readyHead + len(w.overflow)
}

// push files an entry by tick: already-reached ticks binary-insert into
// the ready run, beyond-horizon ticks append to overflow, everything
// else lands in its level bucket.
func (w *wheelQueue) push(e heapEntry) {
	t := wheelTick(e.at)
	if t < w.cur {
		w.readyInsert(e)
		return
	}
	if (t^w.cur)>>horizonBits != 0 {
		w.overflow = append(w.overflow, e)
		return
	}
	w.place(t, e)
	w.count++
}

// place appends an entry to the bucket its tick selects relative to
// cur: the lowest level whose span still contains both. Callers manage
// count (push increments it, cascade moves entries without changing it).
func (w *wheelQueue) place(t uint64, e heapEntry) {
	level := 0
	for (t^w.cur)>>(wheelBits*(level+1)) != 0 {
		level++
	}
	idx := (t >> (wheelBits * level)) & wheelMask
	w.buckets[level][idx] = append(w.buckets[level][idx], e)
	w.occ[level][idx>>6] |= 1 << (idx & 63)
}

// readyInsert places an entry into the sorted ready run. The insertion
// point is always at or after readyHead: a new entry's seq exceeds
// every popped entry's, and its at is no earlier than the clock.
func (w *wheelQueue) readyInsert(e heapEntry) {
	lo, hi := w.readyHead, len(w.ready)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if entryLess(w.ready[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.ready = append(w.ready, heapEntry{})
	copy(w.ready[lo+1:], w.ready[lo:])
	w.ready[lo] = e
}

// front reports the minimum (at, seq) entry without removing it,
// advancing the wheel to the next occupied tick when the ready run is
// exhausted.
func (w *wheelQueue) front() (heapEntry, bool) {
	if w.readyHead == len(w.ready) {
		if !w.advance() {
			return heapEntry{}, false
		}
	}
	return w.ready[w.readyHead], true
}

// dropFront removes the entry front reported.
func (w *wheelQueue) dropFront() {
	w.readyHead++
	if w.readyHead == len(w.ready) {
		w.ready = w.ready[:0]
		w.readyHead = 0
	}
}

// advance moves cur forward to the next occupied tick, cascading
// higher-level buckets down as their blocks are reached, and drains
// that tick's bucket into ready. It reports false when no entries
// remain anywhere.
func (w *wheelQueue) advance() bool {
	w.ready = w.ready[:0]
	w.readyHead = 0
	if w.count == 0 {
		if len(w.overflow) == 0 {
			return false
		}
		w.rebase()
	}
	for {
		// First pull down any higher-level bucket covering cur's own
		// position (highest level first, since each cascade can fill
		// the next level's covering slot): a drain that lands cur
		// exactly on a block boundary leaves the new block's events in
		// the covering slot, and they may precede everything already
		// at level 0.
		for level := wheelLevels - 1; level >= 1; level-- {
			idx := uint(w.cur>>(wheelBits*level)) & wheelMask
			if w.occ[level][idx>>6]&(1<<(idx&63)) != 0 {
				w.cascade(level, idx)
			}
		}
		// The next event might be in the current level-0 block.
		if idx, ok := w.scan(0, uint(w.cur)&wheelMask); ok {
			w.drainTick(idx, w.cur&^wheelMask|uint64(idx))
			return true
		}
		// Look for the next occupied higher-level slot, nearest level
		// first, scanning each level from cur's own index: any bucketed
		// tick t >= cur shares the level's high bits with cur, so its
		// index can't be below cur's. Jumping cur to the found slot's
		// base keeps the invariant that every bucketed tick is >= cur,
		// so the slot's entries re-place into strictly lower levels.
		// (The slot covering cur itself can only be occupied when a
		// drain landed cur exactly on its base, so cur never moves
		// backwards.)
		cascaded := false
		for level := 1; level < wheelLevels; level++ {
			shift := wheelBits * level
			if idx, ok := w.scan(level, uint(w.cur>>shift)&wheelMask); ok {
				blockMask := uint64(1)<<shift - 1
				if base := w.cur&^(blockMask|wheelMask<<shift) | uint64(idx)<<shift; base > w.cur {
					w.cur = base
				}
				w.cascade(level, idx)
				cascaded = true
				break
			}
		}
		if !cascaded {
			// count > 0 guarantees an occupied slot at or after cur
			// somewhere in the hierarchy; reaching here means the
			// occupancy bitmaps and buckets disagree.
			panic("sim: timing wheel lost track of scheduled events")
		}
	}
}

// drainTick moves one level-0 bucket into ready in (at, seq) order and
// advances cur past the tick. Buckets are small (one tick's events), so
// an insertion sort beats sort.Slice and allocates nothing.
func (w *wheelQueue) drainTick(idx uint, t uint64) {
	b := w.buckets[0][idx]
	for _, e := range b {
		j := len(w.ready)
		w.ready = append(w.ready, e)
		for j > 0 && entryLess(e, w.ready[j-1]) {
			w.ready[j] = w.ready[j-1]
			j--
		}
		w.ready[j] = e
	}
	w.count -= len(b)
	w.buckets[0][idx] = b[:0]
	w.occ[0][idx>>6] &^= 1 << (idx & 63)
	w.cur = t + 1
}

// cascade redistributes one higher-level bucket into lower levels after
// cur has jumped to the bucket's base tick.
func (w *wheelQueue) cascade(level int, idx uint) {
	b := w.buckets[level][idx]
	for _, e := range b {
		w.place(wheelTick(e.at), e)
	}
	w.buckets[level][idx] = b[:0]
	w.occ[level][idx>>6] &^= 1 << (idx & 63)
}

// scan reports the first occupied slot at or after from on one level.
func (w *wheelQueue) scan(level int, from uint) (uint, bool) {
	words := &w.occ[level]
	wi := from >> 6
	word := words[wi] & (^uint64(0) << (from & 63))
	for {
		if word != 0 {
			return wi<<6 + uint(bits.TrailingZeros64(word)), true
		}
		wi++
		if wi >= uint(len(words)) {
			return 0, false
		}
		word = words[wi]
	}
}

// rebase restarts the wheels at the earliest overflow tick once they
// are empty, folding in every overflow entry the horizon now covers.
func (w *wheelQueue) rebase() {
	min := wheelTick(w.overflow[0].at)
	for _, e := range w.overflow[1:] {
		if t := wheelTick(e.at); t < min {
			min = t
		}
	}
	w.cur = min
	keep := w.overflow[:0]
	for _, e := range w.overflow {
		t := wheelTick(e.at)
		if (t^w.cur)>>horizonBits == 0 {
			w.place(t, e)
			w.count++
		} else {
			keep = append(keep, e)
		}
	}
	w.overflow = keep
}

// stepWheel is Loop.Step for a wheel-backed loop: identical observable
// behaviour, with front/dropFront standing in for the heap root.
func (l *Loop) stepWheel() bool {
	w := l.wheel
	for {
		e, ok := w.front()
		if !ok {
			return false
		}
		w.dropFront()
		sl := &l.slots[e.slot]
		if sl.state == slotCancelled {
			l.cancelled--
			l.freeSlot(e.slot)
			continue
		}
		fn := sl.fn
		l.freeSlot(e.slot)
		l.pending--
		if invariant.Enabled() && e.at < l.now {
			invariant.Failf("sim", "monotonic-time",
				"event at %v popped with clock already at %v", e.at, l.now)
		}
		l.now = e.at
		l.events++
		fn()
		return true
	}
}

// peekWheel is Loop.peek for a wheel-backed loop.
func (l *Loop) peekWheel() (time.Duration, bool) {
	w := l.wheel
	for {
		e, ok := w.front()
		if !ok {
			return 0, false
		}
		if l.slots[e.slot].state == slotLive {
			return e.at, true
		}
		w.dropFront()
		l.cancelled--
		l.freeSlot(e.slot)
	}
}

// wheelCompact removes cancelled entries from every wheel region in one
// pass, the wheel's analogue of the heap's maybeCompact sweep. Removal
// cannot perturb pop order: surviving entries keep their buckets and
// the ready run's relative order.
func (l *Loop) wheelCompact() {
	w := l.wheel
	keep := w.ready[:w.readyHead]
	for _, e := range w.ready[w.readyHead:] {
		if l.slots[e.slot].state == slotLive {
			keep = append(keep, e)
		} else {
			l.freeSlot(e.slot)
		}
	}
	w.ready = keep
	for level := range w.buckets {
		for idx := range w.buckets[level] {
			b := w.buckets[level][idx]
			if len(b) == 0 {
				continue
			}
			kb := b[:0]
			for _, e := range b {
				if l.slots[e.slot].state == slotLive {
					kb = append(kb, e)
				} else {
					l.freeSlot(e.slot)
					w.count--
				}
			}
			w.buckets[level][idx] = kb
			if len(kb) == 0 {
				w.occ[level][uint(idx)>>6] &^= 1 << (uint(idx) & 63)
			}
		}
	}
	ko := w.overflow[:0]
	for _, e := range w.overflow {
		if l.slots[e.slot].state == slotLive {
			ko = append(ko, e)
		} else {
			l.freeSlot(e.slot)
		}
	}
	w.overflow = ko
	l.cancelled = 0
}

// checkWheelIntegrity is the wheel's end-of-run audit, mirroring the
// heap's checkIntegrity: region placement, occupancy bitmaps, slot
// states, counters, and the sorted ready run must all be mutually
// consistent.
func (l *Loop) checkWheelIntegrity() {
	w := l.wheel
	var live, cancelled int
	checkSlot := func(region string, e heapEntry) {
		if e.slot < 0 || int(e.slot) >= len(l.slots) {
			invariant.Failf("sim", "heap-slot", "%s entry references slot %d of %d", region, e.slot, len(l.slots))
		}
		switch l.slots[e.slot].state {
		case slotLive:
			live++
			if e.at < l.now && !l.stopped {
				invariant.Failf("sim", "monotonic-time",
					"live event queued at %v behind clock %v", e.at, l.now)
			}
			if l.slots[e.slot].fn == nil {
				invariant.Failf("sim", "slot-state", "live slot %d has nil callback", e.slot)
			}
		case slotCancelled:
			cancelled++
		default:
			invariant.Failf("sim", "slot-state", "%s entry references free slot %d", region, e.slot)
		}
	}
	for i := w.readyHead; i < len(w.ready); i++ {
		e := w.ready[i]
		checkSlot("ready", e)
		if i > w.readyHead && entryLess(e, w.ready[i-1]) {
			invariant.Failf("sim", "heap-order",
				"ready entry %d (at=%v seq=%d) sorts before its predecessor", i, e.at, e.seq)
		}
		if wheelTick(e.at) >= w.cur {
			invariant.Failf("sim", "heap-order",
				"ready entry at %v (tick %d) not below cur %d", e.at, wheelTick(e.at), w.cur)
		}
	}
	count := 0
	for level := range w.buckets {
		for idx := range w.buckets[level] {
			b := w.buckets[level][idx]
			occupied := w.occ[level][uint(idx)>>6]&(1<<(uint(idx)&63)) != 0
			if occupied != (len(b) > 0) {
				invariant.Failf("sim", "heap-order",
					"level %d slot %d: occupancy bit %v but %d entries", level, idx, occupied, len(b))
			}
			count += len(b)
			for _, e := range b {
				checkSlot("bucket", e)
				t := wheelTick(e.at)
				if t < w.cur || (t^w.cur)>>horizonBits != 0 {
					invariant.Failf("sim", "heap-order",
						"level %d slot %d holds tick %d outside [cur=%d, horizon)", level, idx, t, w.cur)
				}
				if int(t>>(wheelBits*level)&wheelMask) != idx {
					invariant.Failf("sim", "heap-order",
						"level %d slot %d holds tick %d whose index is %d", level, idx, t, t>>(wheelBits*level)&wheelMask)
				}
			}
		}
	}
	if count != w.count {
		invariant.Failf("sim", "pending-count", "%d bucketed entries but count=%d", count, w.count)
	}
	for _, e := range w.overflow {
		checkSlot("overflow", e)
		if t := wheelTick(e.at); (t^w.cur)>>horizonBits == 0 {
			invariant.Failf("sim", "heap-order",
				"overflow holds tick %d within the horizon of cur %d", t, w.cur)
		}
	}
	if live != l.pending {
		invariant.Failf("sim", "pending-count", "%d live wheel entries but pending=%d", live, l.pending)
	}
	if cancelled != l.cancelled {
		invariant.Failf("sim", "cancelled-count", "%d cancelled wheel entries but cancelled=%d", cancelled, l.cancelled)
	}
	for _, slot := range l.free {
		if l.slots[slot].state != slotFree {
			invariant.Failf("sim", "free-list", "slot %d on the free list in state %d", slot, l.slots[slot].state)
		}
	}
}
