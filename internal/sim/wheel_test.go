package sim

import (
	"math/rand"
	"testing"
	"time"
)

// FuzzWheelVsHeap drives a heap-backed and a wheel-backed loop with the
// same byte-derived program of schedule / cancel / step operations and
// demands identical observable behaviour: firing order, clock, pending
// count, and Stop results. Delays are drawn at three magnitudes so the
// program exercises the ready buffer (sub-tick), the level hierarchy
// (seconds to minutes), and the overflow list (days, past the ~78 h
// horizon).
func FuzzWheelVsHeap(f *testing.F) {
	f.Add([]byte{0, 10, 0, 5, 2, 0, 1, 0, 0, 0})
	f.Add([]byte{4, 200, 0, 0, 2, 0, 4, 100, 2, 0, 2, 0})
	// Horizon-crossing schedule mixed with short timers.
	f.Add([]byte{5, 1, 0, 3, 2, 0, 5, 2, 2, 0, 2, 0, 2, 0})
	// Cancel-heavy churn across magnitudes.
	seed := make([]byte, 0, 400)
	for i := 0; i < 50; i++ {
		seed = append(seed, byte(i%6), byte(i*11))
	}
	for i := 0; i < 50; i++ {
		seed = append(seed, 1, byte(i*3))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		hl := NewLoopSched(1, Heap)
		wl := NewLoopSched(1, Wheel)
		var hGot, wGot []int
		var hTimers, wTimers []Timer
		nextID := 0
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%6, data[i+1]
			switch op {
			case 0, 3: // schedule sub-tick to a few ms
				id := nextID
				nextID++
				d := time.Duration(arg) * 37 * time.Microsecond
				hTimers = append(hTimers, hl.After(d, func() { hGot = append(hGot, id) }))
				wTimers = append(wTimers, wl.After(d, func() { wGot = append(wGot, id) }))
			case 4: // schedule across wheel levels
				id := nextID
				nextID++
				d := time.Duration(arg) * 977 * time.Millisecond
				hTimers = append(hTimers, hl.After(d, func() { hGot = append(hGot, id) }))
				wTimers = append(wTimers, wl.After(d, func() { wGot = append(wGot, id) }))
			case 5: // schedule past the wheel horizon
				id := nextID
				nextID++
				d := time.Duration(arg) * 13 * time.Hour
				hTimers = append(hTimers, hl.After(d, func() { hGot = append(hGot, id) }))
				wTimers = append(wTimers, wl.After(d, func() { wGot = append(wGot, id) }))
			case 1: // cancel an arbitrary earlier timer
				if len(hTimers) == 0 {
					continue
				}
				j := int(arg) % len(hTimers)
				hs, ws := hTimers[j].Stop(), wTimers[j].Stop()
				if hs != ws {
					t.Fatalf("op %d: Stop(timer %d): heap %v, wheel %v", i/2, j, hs, ws)
				}
			case 2: // run one event
				hs, ws := hl.Step(), wl.Step()
				if hs != ws {
					t.Fatalf("op %d: Step(): heap %v, wheel %v", i/2, hs, ws)
				}
			}
			if hl.Now() != wl.Now() {
				t.Fatalf("op %d: clock diverged: heap %v, wheel %v", i/2, hl.Now(), wl.Now())
			}
			if hl.Pending() != wl.Pending() {
				t.Fatalf("op %d: pending diverged: heap %d, wheel %d", i/2, hl.Pending(), wl.Pending())
			}
		}
		hl.Run()
		wl.Run()
		if len(hGot) != len(wGot) {
			t.Fatalf("heap fired %d events, wheel fired %d", len(hGot), len(wGot))
		}
		for i := range hGot {
			if hGot[i] != wGot[i] {
				t.Fatalf("firing order diverges at %d: heap ran %d, wheel ran %d\nheap:  %v\nwheel: %v",
					i, hGot[i], wGot[i], hGot, wGot)
			}
		}
		if hl.Now() != wl.Now() {
			t.Fatalf("final clock: heap %v, wheel %v", hl.Now(), wl.Now())
		}
		if hl.Events() != wl.Events() {
			t.Fatalf("events counter: heap %d, wheel %d", hl.Events(), wl.Events())
		}
	})
}

// A long randomized soak of the same differential property, so plain
// `go test` exercises deep wheel behaviour (cascades, compaction,
// rebase) without waiting for the fuzzer.
func TestWheelMatchesHeapRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		hl := NewLoopSched(1, Heap)
		wl := NewLoopSched(1, Wheel)
		var hGot, wGot []time.Duration
		var hTimers, wTimers []Timer
		for op := 0; op < 4000; op++ {
			switch rng.Intn(5) {
			case 0, 1:
				var d time.Duration
				switch rng.Intn(4) {
				case 0:
					d = time.Duration(rng.Intn(1000)) * time.Microsecond
				case 1:
					d = time.Duration(rng.Intn(1000)) * time.Millisecond
				case 2:
					d = time.Duration(rng.Intn(100)) * time.Second
				case 3:
					d = time.Duration(rng.Intn(200)) * time.Hour // overflow territory
				}
				hTimers = append(hTimers, hl.After(d, func() { hGot = append(hGot, hl.Now()) }))
				wTimers = append(wTimers, wl.After(d, func() { wGot = append(wGot, wl.Now()) }))
			case 2:
				if len(hTimers) > 0 {
					j := rng.Intn(len(hTimers))
					if hs, ws := hTimers[j].Stop(), wTimers[j].Stop(); hs != ws {
						t.Fatalf("trial %d: Stop diverged: heap %v wheel %v", trial, hs, ws)
					}
				}
			case 3, 4:
				if hs, ws := hl.Step(), wl.Step(); hs != ws {
					t.Fatalf("trial %d: Step diverged", trial)
				}
			}
		}
		hl.Run()
		wl.Run()
		if len(hGot) != len(wGot) {
			t.Fatalf("trial %d: heap fired %d, wheel fired %d", trial, len(hGot), len(wGot))
		}
		for i := range hGot {
			if hGot[i] != wGot[i] {
				t.Fatalf("trial %d: firing time %d diverged: heap %v, wheel %v", trial, i, hGot[i], wGot[i])
			}
		}
		if hl.Now() != wl.Now() {
			t.Fatalf("trial %d: final clock heap %v wheel %v", trial, hl.Now(), wl.Now())
		}
	}
}

// The wheel must honour the same compaction bound as the heap: a
// cancel-heavy workload keeps physical occupancy proportional to the
// live event count.
func TestWheelCancelledEventsAreCompacted(t *testing.T) {
	l := NewLoopSched(1, Wheel)
	const rounds = 100
	const perRound = 200
	var maxQueue int
	for r := 0; r < rounds; r++ {
		timers := make([]Timer, perRound)
		deadline := time.Duration(r+1) * time.Second
		for i := range timers {
			timers[i] = l.At(deadline, func() { t.Error("cancelled timer fired") })
		}
		for i := range timers {
			if !timers[i].Stop() {
				t.Fatal("Stop on a pending timer returned false")
			}
		}
		if n := l.queueSize(); n > maxQueue {
			maxQueue = n
		}
	}
	if bound := 2*perRound + compactMin; maxQueue > bound {
		t.Errorf("wheel occupancy reached %d entries, want <= %d", maxQueue, bound)
	}
	l.Run()
	if n := l.queueSize(); n != 0 {
		t.Errorf("queue holds %d entries after Run, want 0", n)
	}
}

// Overflow entries (past the ~78 h horizon) must fire at the right
// times and in the right order once the wheels rebase onto them.
func TestWheelOverflowRebase(t *testing.T) {
	l := NewLoopSched(1, Wheel)
	var fired []time.Duration
	record := func() { fired = append(fired, l.Now()) }
	l.At(200*time.Hour, record)
	l.At(100*time.Hour, record)
	l.At(time.Millisecond, record)
	l.At(100*time.Hour+time.Microsecond, record)
	l.Run()
	want := []time.Duration{
		time.Millisecond, 100 * time.Hour, 100*time.Hour + time.Microsecond, 200 * time.Hour,
	}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("firing %d at %v, want %v", i, fired[i], want[i])
		}
	}
}

// The wheel path must stay allocation-free in steady state, like the
// heap (the ready buffer, buckets, and slot table all recycle).
func TestWheelAfterStepAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	l := NewLoopSched(1, Wheel)
	fn := func() {}
	for i := 0; i < 128; i++ {
		l.After(time.Duration(i%13)*time.Microsecond, fn)
	}
	l.Run()
	if avg := testing.AllocsPerRun(200, func() {
		l.After(time.Microsecond, fn)
		l.Step()
	}); avg != 0 {
		t.Errorf("wheel After+Step allocates %v/op in steady state, want 0", avg)
	}
}

// BenchmarkWheelAfterStep is the wheel twin of BenchmarkAfterStep; the
// scheduler choice is the only difference.
func BenchmarkWheelAfterStep(b *testing.B) {
	l := NewLoopSched(1, Wheel)
	fn := func() {}
	for i := 0; i < 128; i++ {
		l.After(time.Duration(i%13)*time.Microsecond, fn)
	}
	l.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.After(time.Microsecond, fn)
		l.Step()
	}
}

// BenchmarkDenseTimers measures both schedulers in the regime the wheel
// targets: thousands of outstanding timers with constant churn, where
// the heap pays O(log n) per operation and the wheel does not.
func BenchmarkDenseTimers(b *testing.B) {
	for _, sched := range []struct {
		name string
		kind Scheduler
	}{{"heap", Heap}, {"wheel", Wheel}} {
		b.Run(sched.name, func(b *testing.B) {
			l := NewLoopSched(1, sched.kind)
			fn := func() {}
			// Standing population: 8k timers spread over 100ms.
			for i := 0; i < 8192; i++ {
				l.After(time.Duration(i%100)*time.Millisecond+time.Duration(i)*time.Microsecond, fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.After(50*time.Millisecond, fn)
				l.Step()
			}
		})
	}
}
