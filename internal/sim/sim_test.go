package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestLoopStartsAtZero(t *testing.T) {
	l := NewLoop(1)
	if got := l.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestAfterRunsInOrder(t *testing.T) {
	l := NewLoop(1)
	var order []int
	l.After(30*time.Millisecond, func() { order = append(order, 3) })
	l.After(10*time.Millisecond, func() { order = append(order, 1) })
	l.After(20*time.Millisecond, func() { order = append(order, 2) })
	l.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran in order %v, want [1 2 3]", order)
	}
	if got := l.Now(); got != 30*time.Millisecond {
		t.Fatalf("Now() after Run = %v, want 30ms", got)
	}
}

func TestSameInstantRunsInScheduleOrder(t *testing.T) {
	l := NewLoop(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		l.At(5*time.Millisecond, func() { order = append(order, i) })
	}
	l.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order %v, want ascending schedule order", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	l := NewLoop(1)
	var fired []time.Duration
	l.After(time.Millisecond, func() {
		fired = append(fired, l.Now())
		l.After(time.Millisecond, func() {
			fired = append(fired, l.Now())
		})
	})
	l.Run()
	if len(fired) != 2 || fired[0] != time.Millisecond || fired[1] != 2*time.Millisecond {
		t.Fatalf("fired at %v, want [1ms 2ms]", fired)
	}
}

func TestTimerStop(t *testing.T) {
	l := NewLoop(1)
	ran := false
	tm := l.After(time.Millisecond, func() { ran = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Fatal("Stop on pending timer should return true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should return false")
	}
	l.Run()
	if ran {
		t.Fatal("stopped timer fired")
	}
	if tm.Active() {
		t.Fatal("stopped timer reports active")
	}
}

func TestStopAfterFireReturnsFalse(t *testing.T) {
	l := NewLoop(1)
	tm := l.After(time.Millisecond, func() {})
	l.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire should return false")
	}
}

func TestZeroTimerIsInert(t *testing.T) {
	var tm Timer
	if tm.Stop() || tm.Active() {
		t.Fatal("zero Timer should be inert")
	}
	var nilTm *Timer
	if nilTm.Stop() || nilTm.Active() {
		t.Fatal("nil *Timer should be inert")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	l := NewLoop(1)
	var ran []time.Duration
	l.After(5*time.Millisecond, func() { ran = append(ran, l.Now()) })
	l.After(15*time.Millisecond, func() { ran = append(ran, l.Now()) })
	l.RunUntil(10 * time.Millisecond)
	if len(ran) != 1 || ran[0] != 5*time.Millisecond {
		t.Fatalf("ran %v, want only the 5ms event", ran)
	}
	if l.Now() != 10*time.Millisecond {
		t.Fatalf("Now() = %v, want 10ms", l.Now())
	}
	l.RunUntil(20 * time.Millisecond)
	if len(ran) != 2 || ran[1] != 15*time.Millisecond {
		t.Fatalf("ran %v, want both events after second RunUntil", ran)
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	l := NewLoop(1)
	ran := false
	l.After(10*time.Millisecond, func() { ran = true })
	l.RunUntil(10 * time.Millisecond)
	if !ran {
		t.Fatal("event exactly at the deadline should run")
	}
}

func TestStopHaltsRun(t *testing.T) {
	l := NewLoop(1)
	count := 0
	for i := 1; i <= 5; i++ {
		l.After(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 2 {
				l.Stop()
			}
		})
	}
	l.Run()
	if count != 2 {
		t.Fatalf("Run executed %d events after Stop, want 2", count)
	}
	l.Run() // resumes with remaining queue
	if count != 5 {
		t.Fatalf("resumed Run executed %d total, want 5", count)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	l := NewLoop(1)
	l.After(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past should panic")
			}
		}()
		l.At(5*time.Millisecond, func() {})
	})
	l.Run()
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At with nil callback should panic")
		}
	}()
	NewLoop(1).After(0, nil)
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	l := NewLoop(1)
	var at time.Duration = -1
	l.After(-time.Second, func() { at = l.Now() })
	l.Run()
	if at != 0 {
		t.Fatalf("negative After ran at %v, want 0", at)
	}
}

func TestPendingCount(t *testing.T) {
	l := NewLoop(1)
	a := l.After(time.Millisecond, func() {})
	l.After(2*time.Millisecond, func() {})
	if l.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", l.Pending())
	}
	a.Stop()
	if l.Pending() != 1 {
		t.Fatalf("Pending after Stop = %d, want 1", l.Pending())
	}
	l.Run()
	if l.Pending() != 0 {
		t.Fatalf("Pending after Run = %d, want 0", l.Pending())
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := NewLoop(42), NewLoop(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed must yield identical random streams")
		}
	}
}

// Property: for any batch of events with arbitrary nonnegative delays,
// the loop fires them in nondecreasing time order and fires all of them.
func TestEventOrderProperty(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		if len(delaysMs) > 512 {
			delaysMs = delaysMs[:512]
		}
		l := NewLoop(7)
		var fired []time.Duration
		for _, d := range delaysMs {
			l.After(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, l.Now())
			})
		}
		l.Run()
		if len(fired) != len(delaysMs) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Step never decreases the clock.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(delays []uint8) bool {
		l := NewLoop(3)
		for _, d := range delays {
			l.After(time.Duration(d)*time.Microsecond, func() {})
		}
		prev := l.Now()
		for l.Step() {
			if l.Now() < prev {
				return false
			}
			prev = l.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := NewLoop(1)
		for j := 0; j < 1000; j++ {
			l.After(time.Duration(j%97)*time.Microsecond, func() {})
		}
		l.Run()
	}
}

func TestEveryFiresAtInterval(t *testing.T) {
	l := NewLoop(1)
	var at []time.Duration
	p := Every(l, 10*time.Millisecond, func() { at = append(at, l.Now()) })
	l.RunUntil(35 * time.Millisecond)
	p.Stop()
	l.RunUntil(100 * time.Millisecond)
	if len(at) != 3 {
		t.Fatalf("fired %d times, want 3", len(at))
	}
	for i, want := range []time.Duration{10, 20, 30} {
		if at[i] != want*time.Millisecond {
			t.Fatalf("firing %d at %v, want %vms", i, at[i], want)
		}
	}
	if l.Pending() != 0 {
		t.Fatalf("%d events pending after Stop", l.Pending())
	}
}

func TestEveryStopFromCallback(t *testing.T) {
	l := NewLoop(1)
	n := 0
	var p *Periodic
	p = Every(l, time.Millisecond, func() {
		n++
		if n == 2 {
			p.Stop()
		}
	})
	l.Run()
	if n != 2 {
		t.Fatalf("fired %d times, want 2", n)
	}
}

func TestEveryValidation(t *testing.T) {
	l := NewLoop(1)
	for name, fn := range map[string]func(){
		"zero interval": func() { Every(l, 0, func() {}) },
		"nil callback":  func() { Every(l, time.Second, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}
