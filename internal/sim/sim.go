// Package sim provides the deterministic discrete-event simulation core
// on which every other package in this repository runs.
//
// A Loop owns a virtual clock and an event queue. Callbacks scheduled
// with At or After run in strictly nondecreasing virtual-time order;
// events scheduled for the same instant run in the order they were
// scheduled, so a simulation is a pure function of its inputs and seed.
// The loop is single-goroutine by design: determinism is what makes the
// experiment harness reproducible and the test suite meaningful.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// A Loop is a virtual-time event scheduler. The zero value is not ready
// for use; create one with NewLoop.
type Loop struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool
	// pending counts scheduled, non-cancelled events. It lets Run
	// terminate without draining cancelled timers one by one.
	pending int
}

// NewLoop returns a Loop whose clock reads zero and whose random source
// is seeded with seed. Two loops created with the same seed and driven
// by the same schedule of callbacks produce identical executions.
func NewLoop(seed int64) *Loop {
	return &Loop{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time, measured from the start of the
// simulation.
func (l *Loop) Now() time.Duration { return l.now }

// Rand returns the loop's deterministic random source. All stochastic
// behaviour in a simulation (loss, trace noise, workload generation)
// must draw from it so that a seed fully determines a run.
func (l *Loop) Rand() *rand.Rand { return l.rng }

// Pending reports the number of scheduled events that have neither run
// nor been cancelled.
func (l *Loop) Pending() int { return l.pending }

// A Timer is a handle to a scheduled callback. Its zero value is an
// already-expired timer.
type Timer struct {
	ev *event
}

// Stop cancels the timer's callback if it has not yet run and reports
// whether it did so. Stopping an expired, cancelled, or zero Timer is a
// no-op that returns false.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.done {
		return false
	}
	t.ev.cancelled = true
	t.ev.loop.pending--
	return true
}

// Active reports whether the timer's callback is still scheduled.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && !t.ev.cancelled && !t.ev.done
}

// At schedules fn to run when the virtual clock reads at. Scheduling in
// the past (before Now) panics: it would silently reorder causality,
// which is always a bug in the caller.
func (l *Loop) At(at time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if at < l.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, l.now))
	}
	ev := &event{at: at, seq: l.seq, fn: fn, loop: l}
	l.seq++
	l.pending++
	heap.Push(&l.queue, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d from now. A nonpositive d runs fn at the
// current instant, after any callbacks already scheduled for it.
func (l *Loop) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now+d, fn)
}

// Step runs the single earliest pending event and reports whether one
// existed. Cancelled events are discarded without running.
func (l *Loop) Step() bool {
	for len(l.queue) > 0 {
		ev := heap.Pop(&l.queue).(*event)
		if ev.cancelled {
			continue
		}
		ev.done = true
		l.pending--
		l.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (l *Loop) Run() {
	l.stopped = false
	for !l.stopped && l.Step() {
	}
}

// RunUntil executes events with timestamps at or before deadline, then
// advances the clock to deadline. Events scheduled beyond the deadline
// remain queued.
func (l *Loop) RunUntil(deadline time.Duration) {
	l.stopped = false
	for !l.stopped {
		ev := l.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		l.Step()
	}
	if l.now < deadline {
		l.now = deadline
	}
}

// Stop makes the innermost Run or RunUntil return after the current
// callback completes. The queue is preserved, so the loop can resume.
func (l *Loop) Stop() { l.stopped = true }

func (l *Loop) peek() *event {
	for len(l.queue) > 0 {
		if ev := l.queue[0]; !ev.cancelled {
			return ev
		}
		heap.Pop(&l.queue)
	}
	return nil
}

type event struct {
	at        time.Duration
	seq       uint64 // schedule order; breaks timestamp ties deterministically
	fn        func()
	cancelled bool
	done      bool
	index     int
	loop      *Loop
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// A Periodic repeatedly runs a callback at a fixed interval until
// stopped. Create one with Every.
type Periodic struct {
	loop     *Loop
	interval time.Duration
	fn       func()
	timer    *Timer
	stopped  bool
}

// Every schedules fn to run every interval, first at now+interval.
// The callback may call Stop on the returned Periodic to end the
// series; otherwise it continues until the simulation stops scheduling
// it (Stop) or the loop is abandoned.
func Every(l *Loop, interval time.Duration, fn func()) *Periodic {
	if interval <= 0 {
		panic("sim: Every with nonpositive interval")
	}
	if fn == nil {
		panic("sim: Every with nil callback")
	}
	p := &Periodic{loop: l, interval: interval, fn: fn}
	p.arm()
	return p
}

func (p *Periodic) arm() {
	p.timer = p.loop.After(p.interval, func() {
		if p.stopped {
			return
		}
		p.fn()
		if !p.stopped {
			p.arm()
		}
	})
}

// Stop ends the series; the pending occurrence is cancelled. Stop is
// idempotent.
func (p *Periodic) Stop() {
	p.stopped = true
	p.timer.Stop()
}
