// Package sim provides the deterministic discrete-event simulation core
// on which every other package in this repository runs.
//
// A Loop owns a virtual clock and an event queue. Callbacks scheduled
// with At or After run in strictly nondecreasing virtual-time order;
// events scheduled for the same instant run in the order they were
// scheduled, so a simulation is a pure function of its inputs and seed.
// The loop is single-goroutine by design: determinism is what makes the
// experiment harness reproducible and the test suite meaningful.
//
// The scheduler is built for a steady state of zero heap allocations:
// the event queue is an inline 4-ary min-heap of value-type records
// (no per-event box, no interface conversion), callbacks live in a
// slot table recycled through a free list, and Timer handles carry a
// generation counter instead of a pointer, so scheduling, firing, and
// cancelling events never allocates once the loop's arrays have grown
// to the simulation's working set. See DESIGN.md "Performance".
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"hvc/internal/invariant"
)

// A heapEntry is one scheduled occurrence in the event heap. Entries
// are ordered by (at, seq): seq is the global schedule order, which
// breaks timestamp ties deterministically.
type heapEntry struct {
	at   time.Duration
	seq  uint64
	slot int32
}

// Slot lifecycle states. A slot is live while its callback is
// scheduled, cancelled between Timer.Stop and heap removal, and free
// while on the free list awaiting reuse.
const (
	slotFree uint8 = iota
	slotLive
	slotCancelled
)

// An eventSlot holds the callback and liveness of one scheduled event.
// Slots are addressed by index from heap entries and Timer handles; the
// generation counter invalidates stale handles after reuse.
type eventSlot struct {
	fn    func()
	gen   uint32
	state uint8
}

// compactMin is the minimum number of cancelled heap entries before
// lazy compaction is considered. Below it, the dead entries are cheaper
// to discard at pop time than to filter out.
const compactMin = 64

// A Scheduler selects the Loop's event-queue implementation. Both
// produce the exact same firing order — (at, seq) is a total order and
// FuzzWheelVsHeap holds them to identical observable behaviour — so the
// choice is purely a performance trade: the heap does O(log n) ordered
// work per operation, the wheel does O(1) amortized bucketing and
// re-sorts only one tick's worth of events at a time.
type Scheduler uint8

const (
	// Heap is the inline 4-ary min-heap, the reference implementation.
	Heap Scheduler = iota
	// Wheel is the hierarchical timing wheel (see wheel.go).
	Wheel
)

// A Loop is a virtual-time event scheduler. The zero value is not ready
// for use; create one with NewLoop.
type Loop struct {
	now  time.Duration
	heap []heapEntry
	// wheel, when non-nil, replaces the heap as the event queue; every
	// queue operation branches on this one nil check so the heap path
	// stays exactly as fast as before the wheel existed.
	wheel   *wheelQueue
	slots   []eventSlot
	free    []int32
	seq     uint64
	seed    int64
	rng     *rand.Rand
	stopped bool
	// pending counts scheduled, non-cancelled events. It lets Run
	// terminate without draining cancelled timers one by one.
	pending int
	// cancelled counts dead entries still occupying heap space; when
	// they outnumber the live ones the heap is compacted in one pass.
	cancelled int
	// events counts callbacks actually run (cancelled pops excluded):
	// the denominator of every events-per-simulated-second measurement
	// and the witness for quiet-time fast-forward savings.
	events uint64
}

// NewLoop returns a Loop whose clock reads zero and whose random source
// is seeded with seed, using the build's default scheduler. Two loops
// created with the same seed and driven by the same schedule of
// callbacks produce identical executions.
func NewLoop(seed int64) *Loop {
	return NewLoopSched(seed, DefaultScheduler)
}

// NewLoopSched returns a Loop backed by an explicit scheduler choice.
// Results are independent of the choice; only speed differs.
func NewLoopSched(seed int64, s Scheduler) *Loop {
	l := &Loop{seed: seed, rng: rand.New(rand.NewSource(seed))}
	if s == Wheel {
		l.wheel = &wheelQueue{}
	}
	return l
}

// Seed reports the seed the loop was created with. Components that
// need their own random stream (so that drawing from one does not
// perturb another — netem links, fault processes) derive a private
// source from it instead of sharing Rand.
func (l *Loop) Seed() int64 { return l.seed }

// Now reports the current virtual time, measured from the start of the
// simulation.
func (l *Loop) Now() time.Duration { return l.now }

// Rand returns the loop's deterministic random source. All stochastic
// behaviour in a simulation (loss, trace noise, workload generation)
// must draw from it so that a seed fully determines a run.
func (l *Loop) Rand() *rand.Rand { return l.rng }

// Pending reports the number of scheduled events that have neither run
// nor been cancelled.
func (l *Loop) Pending() int { return l.pending }

// Events reports the number of callbacks the loop has run. Cancelled
// timers and fast-forwarded (skipped) events do not count, so the value
// measures real scheduler work.
func (l *Loop) Events() uint64 { return l.events }

// queueSize reports the event queue's physical occupancy, including
// cancelled entries not yet removed. Tests use it to pin the compaction
// bound.
func (l *Loop) queueSize() int {
	if l.wheel != nil {
		return l.wheel.size()
	}
	return len(l.heap)
}

// A Timer is a handle to a scheduled callback: a slot index plus the
// generation the slot had when the event was scheduled, so a handle
// goes stale the moment its event fires or its slot is recycled. Timers
// are small values; copying one copies the handle, not the event. The
// zero value is an already-expired timer.
type Timer struct {
	loop *Loop
	slot int32 // slot index + 1; 0 marks the inert zero Timer
	gen  uint32
}

// Stop cancels the timer's callback if it has not yet run and reports
// whether it did so. Stopping an expired, cancelled, or zero Timer is a
// no-op that returns false.
func (t *Timer) Stop() bool {
	if t == nil || t.slot == 0 {
		return false
	}
	l := t.loop
	sl := &l.slots[t.slot-1]
	if sl.gen != t.gen || sl.state != slotLive {
		return false
	}
	sl.state = slotCancelled
	sl.fn = nil
	l.pending--
	l.cancelled++
	l.maybeCompact()
	return true
}

// Active reports whether the timer's callback is still scheduled.
func (t *Timer) Active() bool {
	if t == nil || t.slot == 0 {
		return false
	}
	sl := &t.loop.slots[t.slot-1]
	return sl.gen == t.gen && sl.state == slotLive
}

// At schedules fn to run when the virtual clock reads at. Scheduling in
// the past (before Now) panics: it would silently reorder causality,
// which is always a bug in the caller.
func (l *Loop) At(at time.Duration, fn func()) Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if at < l.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, l.now))
	}
	var slot int32
	if n := len(l.free); n > 0 {
		slot = l.free[n-1]
		l.free = l.free[:n-1]
	} else {
		l.slots = append(l.slots, eventSlot{})
		slot = int32(len(l.slots) - 1)
	}
	sl := &l.slots[slot]
	sl.fn = fn
	sl.state = slotLive
	seq := l.seq
	l.seq++
	l.pending++
	e := heapEntry{at: at, seq: seq, slot: slot}
	if l.wheel != nil {
		l.wheel.push(e)
	} else {
		l.push(e)
	}
	return Timer{loop: l, slot: slot + 1, gen: sl.gen}
}

// After schedules fn to run d from now. A nonpositive d runs fn at the
// current instant, after any callbacks already scheduled for it.
func (l *Loop) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now+d, fn)
}

// Step runs the single earliest pending event and reports whether one
// existed. Cancelled events are discarded without running.
func (l *Loop) Step() bool {
	if l.wheel != nil {
		return l.stepWheel()
	}
	for len(l.heap) > 0 {
		e := l.heap[0]
		l.popRoot()
		sl := &l.slots[e.slot]
		if sl.state == slotCancelled {
			l.cancelled--
			l.freeSlot(e.slot)
			continue
		}
		fn := sl.fn
		l.freeSlot(e.slot)
		l.pending--
		if invariant.Enabled() && e.at < l.now {
			invariant.Failf("sim", "monotonic-time",
				"event at %v popped with clock already at %v", e.at, l.now)
		}
		l.now = e.at
		l.events++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (l *Loop) Run() {
	l.stopped = false
	for !l.stopped && l.Step() {
	}
	if invariant.Enabled() {
		l.checkIntegrity()
	}
}

// RunUntil executes events with timestamps at or before deadline, then
// advances the clock to deadline. Events scheduled beyond the deadline
// remain queued.
func (l *Loop) RunUntil(deadline time.Duration) {
	l.stopped = false
	for !l.stopped {
		at, ok := l.peek()
		if !ok || at > deadline {
			break
		}
		l.Step()
	}
	if l.now < deadline {
		l.now = deadline
	}
	if invariant.Enabled() {
		l.checkIntegrity()
	}
}

// checkIntegrity audits the scheduler's structural invariants in one
// O(heap + slots) pass: the 4-ary heap property holds over (at, seq),
// no queued event lies in the past, every heap entry points at a
// live or cancelled slot, the pending and cancelled counters match the
// occupancy, and free-listed slots are really free. It runs at the end
// of Run and RunUntil when checking is enabled — once per drive of the
// loop, so the audit never changes the complexity of a simulation.
func (l *Loop) checkIntegrity() {
	if l.wheel != nil {
		l.checkWheelIntegrity()
		return
	}
	var live, cancelled int
	for i, e := range l.heap {
		if i > 0 {
			parent := (i - 1) >> 2
			if entryLess(e, l.heap[parent]) {
				invariant.Failf("sim", "heap-order",
					"entry %d (at=%v seq=%d) sorts before its parent %d (at=%v seq=%d)",
					i, e.at, e.seq, parent, l.heap[parent].at, l.heap[parent].seq)
			}
		}
		if e.slot < 0 || int(e.slot) >= len(l.slots) {
			invariant.Failf("sim", "heap-slot", "entry %d references slot %d of %d", i, e.slot, len(l.slots))
		}
		switch l.slots[e.slot].state {
		case slotLive:
			live++
			// A Stop() mid-run legitimately leaves live events behind
			// the clock: RunUntil advances to its deadline regardless,
			// preserving the queue for a resume.
			if e.at < l.now && !l.stopped {
				invariant.Failf("sim", "monotonic-time",
					"live event queued at %v behind clock %v", e.at, l.now)
			}
			if l.slots[e.slot].fn == nil {
				invariant.Failf("sim", "slot-state", "live slot %d has nil callback", e.slot)
			}
		case slotCancelled:
			cancelled++
		default:
			invariant.Failf("sim", "slot-state", "heap entry %d references free slot %d", i, e.slot)
		}
	}
	if live != l.pending {
		invariant.Failf("sim", "pending-count", "%d live heap entries but pending=%d", live, l.pending)
	}
	if cancelled != l.cancelled {
		invariant.Failf("sim", "cancelled-count", "%d cancelled heap entries but cancelled=%d", cancelled, l.cancelled)
	}
	for _, slot := range l.free {
		if l.slots[slot].state != slotFree {
			invariant.Failf("sim", "free-list", "slot %d on the free list in state %d", slot, l.slots[slot].state)
		}
	}
}

// Stop makes the innermost Run or RunUntil return after the current
// callback completes. The queue is preserved, so the loop can resume.
func (l *Loop) Stop() { l.stopped = true }

// peek reports the timestamp of the earliest live event, discarding
// any cancelled entries it finds at the root on the way.
func (l *Loop) peek() (time.Duration, bool) {
	if l.wheel != nil {
		return l.peekWheel()
	}
	for len(l.heap) > 0 {
		e := l.heap[0]
		if l.slots[e.slot].state == slotLive {
			return e.at, true
		}
		l.popRoot()
		l.cancelled--
		l.freeSlot(e.slot)
	}
	return 0, false
}

// freeSlot recycles a slot onto the free list, bumping its generation
// so outstanding Timer handles go stale.
func (l *Loop) freeSlot(slot int32) {
	sl := &l.slots[slot]
	sl.fn = nil
	sl.state = slotFree
	sl.gen++
	l.free = append(l.free, slot)
}

// maybeCompact removes cancelled entries in one pass once they occupy
// more than half of the queue, so a schedule-heavy workload that
// cancels most of its timers (pacing, retransmission, delayed acks)
// keeps the queue proportional to the live event count.
func (l *Loop) maybeCompact() {
	if l.wheel != nil {
		if l.cancelled >= compactMin && l.cancelled > l.wheel.size()/2 {
			l.wheelCompact()
		}
		return
	}
	if l.cancelled < compactMin || l.cancelled <= len(l.heap)/2 {
		return
	}
	keep := l.heap[:0]
	for _, e := range l.heap {
		if l.slots[e.slot].state == slotLive {
			keep = append(keep, e)
		} else {
			l.freeSlot(e.slot)
		}
	}
	l.heap = keep
	l.cancelled = 0
	// Re-establish the heap property bottom-up. Pop order is unaffected:
	// (at, seq) is a total order, so any valid heap yields the same
	// deterministic sequence.
	for i := (len(keep) - 2) >> 2; i >= 0; i-- {
		l.siftDown(i)
	}
}

// entryLess orders heap entries by (at, seq).
func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// The event queue is a 4-ary min-heap laid out inline in a slice:
// children of node i sit at 4i+1..4i+4. Compared to the binary heap in
// container/heap this halves the tree depth (fewer cache lines touched
// per operation) and avoids the interface boxing of heap.Push/Pop.

func (l *Loop) push(e heapEntry) {
	l.heap = append(l.heap, e)
	// Sift up.
	h := l.heap
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !entryLess(e, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
}

// popRoot removes the minimum entry (the root) from the heap.
func (l *Loop) popRoot() {
	n := len(l.heap) - 1
	l.heap[0] = l.heap[n]
	l.heap = l.heap[:n]
	if n > 1 {
		l.siftDown(0)
	}
}

func (l *Loop) siftDown(i int) {
	h := l.heap
	n := len(h)
	e := h[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for j := first + 1; j < last; j++ {
			if entryLess(h[j], h[min]) {
				min = j
			}
		}
		if !entryLess(h[min], e) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = e
}

// A Periodic repeatedly runs a callback at a fixed interval until
// stopped. Create one with Every.
type Periodic struct {
	loop     *Loop
	interval time.Duration
	fn       func()
	tick     func() // the one re-armed closure; built once in Every
	timer    Timer
	stopped  bool
}

// Every schedules fn to run every interval, first at now+interval.
// The callback may call Stop on the returned Periodic to end the
// series; otherwise it continues until the simulation stops scheduling
// it (Stop) or the loop is abandoned. Re-arming reuses the same
// callback closure and recycles the expired event's slot, so a running
// Periodic does not allocate.
func Every(l *Loop, interval time.Duration, fn func()) *Periodic {
	if interval <= 0 {
		panic("sim: Every with nonpositive interval")
	}
	if fn == nil {
		panic("sim: Every with nil callback")
	}
	p := &Periodic{loop: l, interval: interval, fn: fn}
	p.tick = func() {
		if p.stopped {
			return
		}
		p.fn()
		if !p.stopped {
			p.arm()
		}
	}
	p.arm()
	return p
}

func (p *Periodic) arm() {
	p.timer = p.loop.After(p.interval, p.tick)
}

// Stop ends the series; the pending occurrence is cancelled. Stop is
// idempotent.
func (p *Periodic) Stop() {
	p.stopped = true
	p.timer.Stop()
}
