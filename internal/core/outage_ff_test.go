package core

import (
	"testing"
	"time"

	"hvc/internal/telemetry"
)

// ffScenario is the hour-blackout scenario the fast-forward targets:
// both channels down for an hour with a couple of seconds of live
// traffic on either side, queues capped small enough to saturate
// within the lead-in.
var ffScenario = OutageConfig{
	Seed:       1,
	Duration:   3604 * time.Second,
	Policy:     PolicyRedundant,
	Fault:      "outage:ch=embb,at=2s,dur=3600s;outage:ch=urllc,at=2s,dur=3600s",
	QueueBytes: 64 << 10,
}

// The quiet-time fast-forward must be invisible in every reported
// figure: skipping frame events during a provably dead blackout may
// change only the event count. An enabled tracer disables the skip
// (traced runs must log every frame decision), which is exactly the
// reference execution to compare against.
func TestOutageFastForwardMatchesFullRun(t *testing.T) {
	for _, policy := range []string{PolicyEMBBOnly, PolicyDChannel, PolicyRedundant} {
		cfg := ffScenario
		cfg.Policy = policy
		cfg.Duration = 64 * time.Second
		cfg.Fault = "outage:ch=embb,at=2s,dur=60s;outage:ch=urllc,at=2s,dur=60s"
		skip, err := RunOutage(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Tracer = telemetry.New()
		full, err := RunOutage(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if skip.Sent != full.Sent || skip.Delivered != full.Delivered ||
			skip.Stall != full.Stall || skip.Delay.N() != full.Delay.N() ||
			skip.Delay.Mean() != full.Delay.Mean() ||
			skip.Delay.Percentile(99) != full.Delay.Percentile(99) {
			t.Errorf("policy %s: fast-forward changed results:\nskip: %+v\nfull: %+v", policy, skip, full)
		}
		// Only the replicating policy saturates every channel's queue,
		// which is what the policy-agnostic skip condition needs: under
		// a single-channel policy the untouched channel keeps headroom,
		// so a frame could be queued (and delivered after recovery) —
		// skipping would be unsound, and the experiment correctly
		// doesn't.
		if policy == PolicyRedundant && skip.Events >= full.Events {
			t.Errorf("policy %s: fast-forward saved nothing: %d vs %d events", policy, skip.Events, full.Events)
		}
	}
}

// The hour-long blackout is the acceptance scenario: with every
// channel provably dead and the queues saturated, the blackout's
// frame timers are cancelled wholesale and the run executes at least
// 100x fewer loop events than the frame-by-frame execution.
func TestOutageFastForwardEventCollapse(t *testing.T) {
	skip, err := RunOutage(ffScenario)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ffScenario
	cfg.Tracer = telemetry.New()
	full, err := RunOutage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if skip.Delivered != full.Delivered || skip.Stall != full.Stall {
		t.Fatalf("fast-forward changed results: %+v vs %+v", skip, full)
	}
	if full.Events < 100*skip.Events {
		t.Errorf("hour blackout: %d events with fast-forward, %d without — want >= 100x reduction",
			skip.Events, full.Events)
	}
}

// A reliable-mode blackout must not poll: the connection parks on the
// group's wake-on-up list instead of arming the 10 ms entry-drop
// retry timer, so event counts stay bounded by RTO backoff, not by
// blackout length. Doubling the blackout may only add a handful of
// (exponentially backed-off) RTO events, not tens of thousands of
// polls.
func TestReliableBlackoutDoesNotPoll(t *testing.T) {
	run := func(blackout time.Duration) OutageResult {
		res, err := RunOutage(OutageConfig{
			Seed:     1,
			Duration: blackout + 4*time.Second,
			Policy:   PolicyRedundant,
			Fault: "outage:ch=embb,at=2s,dur=" + blackout.String() +
				";outage:ch=urllc,at=2s,dur=" + blackout.String(),
			QueueBytes: 64 << 10,
			Reliable:   true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	short, long := run(600*time.Second), run(1200*time.Second)
	// The extra 600 s of blackout unavoidably costs one event per
	// 33 ms frame timer (~18k; reliable mode cannot skip frames — they
	// queue for retransmission). The 10 ms entry-drop retry timer
	// would add another ~60k polls on top; the wake-on-up path must
	// keep the total near the frame floor.
	if extra := int64(long.Events) - int64(short.Events); extra > 25_000 {
		t.Errorf("reliable blackout still polls: doubling the blackout added %d events", extra)
	}
}
