package core

import (
	"fmt"
	"time"

	"hvc/internal/app/abr"
	"hvc/internal/app/game"
	"hvc/internal/channel"
	"hvc/internal/metrics"
	"hvc/internal/sim"
	"hvc/internal/transport"
)

// ABRConfig parameterizes the HTTP-adaptive-streaming experiment (the
// workload behind the paper's IANS-for-HAS citation): one streaming
// session over eMBB (trace-driven) + URLLC under a steering policy.
type ABRConfig struct {
	Seed int64
	// Media is the session's media duration.
	Media time.Duration
	// Trace names the eMBB trace ("mmwave-driving" stresses the
	// buffer; see TraceNames).
	Trace string
	// Policy names the steering policy for both directions.
	Policy string
}

// ABRResult pairs the policy with the playback summary.
type ABRResult struct {
	Policy string
	abr.Result
}

// RunABR executes one streaming session and drains playback before
// reporting.
func RunABR(cfg ABRConfig) (ABRResult, error) {
	if cfg.Media <= 0 {
		return ABRResult{}, fmt.Errorf("core: abr media duration must be positive")
	}
	if !ValidPolicy(cfg.Policy) {
		return ABRResult{}, fmt.Errorf("core: unknown steering policy %q", cfg.Policy)
	}
	tr, err := NewTrace(cfg.Trace, cfg.Seed, cfg.Media+time.Minute)
	if err != nil {
		return ABRResult{}, err
	}

	loop := sim.NewLoop(cfg.Seed)
	g := Cellular(loop, tr)
	client := transport.NewEndpoint(loop, g, channel.A)
	server := transport.NewEndpoint(loop, g, channel.B)

	abr.Serve(server, func() transport.Config {
		alg, _ := NewCC("cubic")
		return transport.Config{CC: alg, Steer: mustPolicy(cfg.Policy, g, channel.B)}
	})
	alg, _ := NewCC("cubic")
	conn := client.Dial(transport.Config{CC: alg, Steer: mustPolicy(cfg.Policy, g, channel.A)})

	c := abr.NewClient(loop, conn, abr.Config{Duration: cfg.Media})
	c.Start()
	// Run well past the media length so stalls resolve and playback
	// finishes.
	loop.RunUntil(cfg.Media * 4)

	return ABRResult{Policy: cfg.Policy, Result: c.Result()}, nil
}

// ABRComparison runs the three §1-relevant policies over one trace in
// order: eMBB-only, IANS-style objectmap, DChannel.
func ABRComparison(seed int64, media time.Duration, traceName string) ([]ABRResult, error) {
	var out []ABRResult
	for _, policy := range []string{PolicyEMBBOnly, PolicyObjectMap, PolicyDChannel} {
		r, err := RunABR(ABRConfig{Seed: seed, Media: media, Trace: traceName, Policy: policy})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// GameConfig parameterizes the cloud-gaming session runner (the
// workload the paper's introduction motivates).
type GameConfig struct {
	Seed     int64
	Duration time.Duration
	Trace    string
	Policy   string
}

// GameResult summarizes one session.
type GameResult struct {
	Policy         string
	InputToDisplay metrics.Distribution
	FramesShown    int
	FramesLost     int
}

// RunGame executes one cloud-gaming session over eMBB+URLLC.
func RunGame(cfg GameConfig) (GameResult, error) {
	if cfg.Duration <= 0 {
		return GameResult{}, fmt.Errorf("core: game duration must be positive")
	}
	if !ValidPolicy(cfg.Policy) {
		return GameResult{}, fmt.Errorf("core: unknown steering policy %q", cfg.Policy)
	}
	tr, err := NewTrace(cfg.Trace, cfg.Seed, cfg.Duration+time.Minute)
	if err != nil {
		return GameResult{}, err
	}

	loop := sim.NewLoop(cfg.Seed)
	g := Cellular(loop, tr)
	client := transport.NewEndpoint(loop, g, channel.A)
	server := transport.NewEndpoint(loop, g, channel.B)

	conn := client.Dial(transport.Config{
		Steer: mustPolicy(cfg.Policy, g, channel.A), Unreliable: true, MsgTimeout: 10 * time.Second,
	})
	s := game.NewSession(loop, conn, game.Config{Duration: cfg.Duration})
	server.Listen(func() transport.Config {
		return transport.Config{
			Steer: mustPolicy(cfg.Policy, g, channel.B), Unreliable: true, MsgTimeout: 10 * time.Second,
		}
	}, func(c *transport.Conn) { s.Attach(c) })

	s.Start()
	loop.RunUntil(cfg.Duration + 10*time.Second)
	return GameResult{
		Policy:         cfg.Policy,
		InputToDisplay: s.InputToDisplay,
		FramesShown:    s.FramesShown,
		FramesLost:     s.FramesLost(),
	}, nil
}
