package core

import (
	"fmt"

	"hvc/internal/cc"
	"hvc/internal/channel"
	"hvc/internal/steering"
)

// CCFingerprint returns the canonical tuning description of the
// algorithm NewCC builds for name. The sweep engine folds it into
// result-cache keys, so cached cells invalidate when the algorithm's
// parameters change.
func CCFingerprint(name string) (string, error) {
	alg, err := NewCC(name)
	if err != nil {
		return "", err
	}
	if c, ok := alg.(cc.Configured); ok {
		return c.Config(), nil
	}
	return alg.Name(), nil
}

// PolicyFingerprint returns the canonical configuration of the
// steering policy NewPolicy builds for name, without needing a channel
// group. The cases mirror NewPolicy's construction exactly; keep the
// two in sync.
func PolicyFingerprint(name string) (string, error) {
	switch name {
	case PolicyEMBBOnly:
		return "single/v1 ch=" + channel.NameEMBB, nil
	case PolicyDChannel:
		return steering.DChannelConfig{}.Canonical(), nil
	case PolicyPriority:
		return steering.PriorityConfig{AdmitPrio: 0}.Canonical(), nil
	case PolicyDChannelPriority:
		return steering.PriorityConfig{AdmitPrio: -1, Heuristic: true}.Canonical(), nil
	case PolicyObjectMap:
		return steering.ObjectMapConfig{}.Canonical(), nil
	case PolicyRedundant:
		return "redundant/v1 live-channels", nil
	default:
		return "", fmt.Errorf("core: unknown steering policy %q", name)
	}
}
