package core

import (
	"fmt"
	"time"

	"hvc/internal/app/web"
	"hvc/internal/channel"
	"hvc/internal/fault"
	"hvc/internal/metrics"
	"hvc/internal/packet"
	"hvc/internal/sim"
	"hvc/internal/telemetry"
	"hvc/internal/transport"
)

// WebConfig parameterizes the Table 1 experiment: sequential page
// loads over eMBB+URLLC with two background flows running throughout.
type WebConfig struct {
	Seed int64
	// Trace names the eMBB trace; Table 1 uses "lowband-stationary"
	// and "lowband-driving".
	Trace string
	// Policy is one of PolicyEMBBOnly, PolicyDChannel, or
	// PolicyDChannelPriority. With PolicyDChannelPriority the
	// background flows are stamped bulk (the paper's flow-priority
	// input); with PolicyDChannel they compete unhinted.
	Policy string
	// Pages is the corpus size (default 30) and Loads the number of
	// loads per page (default 5), per the paper's methodology.
	Pages int
	Loads int
	// Background disables the two competing flows when false is
	// explicitly configured via NoBackground.
	NoBackground bool
	// Fault is an optional scenario in the internal/fault grammar
	// (empty or "none" disables injection), so fleet runs can load
	// pages through shared outage windows.
	Fault string
	// Tracer receives cross-layer telemetry for the run; nil disables
	// tracing.
	Tracer *telemetry.Tracer
}

// WebResult reports one web experiment.
type WebResult struct {
	Trace, Policy string
	// MeanPLT is the mean over every load of every page, the Table 1
	// statistic.
	MeanPLT time.Duration
	// PLT is the full distribution in ms.
	PLT metrics.Distribution
	// BgUploads and BgDownloads count completed background transfers.
	BgUploads, BgDownloads int
}

// RunWeb executes the experiment: each page loaded Loads times in
// sequence, with a short gap between loads and background flows (when
// enabled) running for the whole experiment.
func RunWeb(cfg WebConfig) (WebResult, error) {
	if !ValidPolicy(cfg.Policy) || cfg.Policy == PolicyPriority {
		return WebResult{}, fmt.Errorf("core: web does not support policy %q", cfg.Policy)
	}
	if cfg.Pages == 0 {
		cfg.Pages = 30
	}
	if cfg.Loads == 0 {
		cfg.Loads = 5
	}
	tr, err := NewTrace(cfg.Trace, cfg.Seed, 5*time.Minute)
	if err != nil {
		return WebResult{}, err
	}
	spec, err := fault.ParseSpec(cfg.Fault)
	if err != nil {
		return WebResult{}, err
	}

	loop := sim.NewLoop(cfg.Seed)
	g := Cellular(loop, tr)
	client := transport.NewEndpoint(loop, g, channel.A)
	server := transport.NewEndpoint(loop, g, channel.B)

	cfg.Tracer.BeginRun(fmt.Sprintf("web trace=%s policy=%s seed=%d", cfg.Trace, cfg.Policy, cfg.Seed))
	cfg.Tracer.BindClock(loop.Now)
	g.SetTracer(cfg.Tracer)
	client.SetTracer(cfg.Tracer)
	server.SetTracer(cfg.Tracer)

	if !spec.Empty() {
		if err := fault.Inject(loop, g, spec, cfg.Tracer); err != nil {
			return WebResult{}, err
		}
	}

	web.Serve(server, func() transport.Config {
		alg, _ := NewCC("cubic") // the paper uses TCP CUBIC throughout
		return transport.Config{CC: alg, Steer: mustPolicy(cfg.Policy, g, channel.B)}
	})

	pageCfg := func() transport.Config {
		alg, _ := NewCC("cubic")
		return transport.Config{CC: alg, Steer: mustPolicy(cfg.Policy, g, channel.A)}
	}

	res := WebResult{Trace: cfg.Trace, Policy: cfg.Policy}

	var bg *web.Background
	if !cfg.NoBackground {
		bgPrio := packet.Priority(0)
		if cfg.Policy == PolicyDChannelPriority {
			bgPrio = packet.PriorityBulk
		}
		bg = web.StartBackground(client, func() transport.Config {
			alg, _ := NewCC("cubic")
			return transport.Config{
				CC:           alg,
				Steer:        mustPolicy(cfg.Policy, g, channel.A),
				FlowPriority: bgPrio,
			}
		})
	}

	corpus := web.GenerateCorpus(cfg.Seed+1000, cfg.Pages)
	const gap = 200 * time.Millisecond

	// Load pages strictly in sequence: page 0 load 0..L-1, page 1 ...
	var runLoad func(page, iter int)
	done := false
	runLoad = func(page, iter int) {
		if page >= len(corpus) {
			done = true
			loop.Stop()
			return
		}
		web.LoadWith(client, pageCfg(), corpus[page], web.LoadOptions{Tracer: cfg.Tracer}, func(r web.LoadResult) {
			res.PLT.AddDuration(r.PLT)
			next := func() {
				if iter+1 < cfg.Loads {
					runLoad(page, iter+1)
				} else {
					runLoad(page+1, 0)
				}
			}
			loop.After(gap, next)
		})
	}
	runLoad(0, 0)
	loop.RunUntil(4 * time.Hour) // generous ceiling; Stop ends it early

	if !done {
		return res, fmt.Errorf("core: web experiment did not finish (%d loads done)", res.PLT.N())
	}
	if bg != nil {
		bg.Stop()
		res.BgUploads, res.BgDownloads = bg.Uploads, bg.Downloads
	}
	res.MeanPLT = time.Duration(res.PLT.Mean() * float64(time.Millisecond))
	return res, nil
}

// Table1 runs the three policies over one trace in the paper's column
// order: eMBB-only, DChannel, DChannel with priority. tr (optionally
// nil) traces every run.
func Table1(seed int64, traceName string, pages, loads int, tr *telemetry.Tracer) ([]WebResult, error) {
	var out []WebResult
	for _, policy := range []string{PolicyEMBBOnly, PolicyDChannel, PolicyDChannelPriority} {
		r, err := RunWeb(WebConfig{
			Seed: seed, Trace: traceName, Policy: policy,
			Pages: pages, Loads: loads, Tracer: tr,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
