package core

import (
	"testing"
	"time"
)

// TestWebAndVideoFaultWiring pins the Fault fields fleet sessions use:
// an empty scenario is exactly the pre-fault behaviour, a bad scenario
// is a config error, and a mid-run eMBB blackout measurably degrades
// the session (pages load slower without failover; video decodes
// fewer frames).
func TestWebAndVideoFaultWiring(t *testing.T) {
	wcfg := WebConfig{Seed: 1, Trace: "lowband-stationary", Policy: PolicyEMBBOnly, Pages: 2, Loads: 1}
	base, err := RunWeb(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	none := wcfg
	none.Fault = "none"
	same, err := RunWeb(none)
	if err != nil {
		t.Fatal(err)
	}
	if same.MeanPLT != base.MeanPLT {
		t.Fatalf("fault=none changed web PLT: %v vs %v", same.MeanPLT, base.MeanPLT)
	}
	hurt := wcfg
	hurt.Fault = "outage:ch=embb,at=100ms,dur=2s"
	slow, err := RunWeb(hurt)
	if err != nil {
		t.Fatal(err)
	}
	if slow.MeanPLT <= base.MeanPLT {
		t.Fatalf("a 2s eMBB blackout did not slow eMBB-only page loads: %v vs %v", slow.MeanPLT, base.MeanPLT)
	}
	bad := wcfg
	bad.Fault = "outage:ch=embb"
	if _, err := RunWeb(bad); err == nil {
		t.Fatal("invalid fault spec accepted by RunWeb")
	}

	vcfg := VideoConfig{Seed: 1, Duration: 4 * time.Second, Trace: "lowband-stationary", Policy: PolicyEMBBOnly}
	vbase, err := RunVideo(vcfg)
	if err != nil {
		t.Fatal(err)
	}
	vhurt := vcfg
	vhurt.Fault = "outage:ch=embb,at=1s,dur=2s"
	vout, err := RunVideo(vhurt)
	if err != nil {
		t.Fatal(err)
	}
	if vout.Frozen <= vbase.Frozen {
		t.Fatalf("a 2s eMBB blackout did not freeze eMBB-only video: frozen %d vs %d", vout.Frozen, vbase.Frozen)
	}
	vbad := vcfg
	vbad.Fault = "garbage"
	if _, err := RunVideo(vbad); err == nil {
		t.Fatal("invalid fault spec accepted by RunVideo")
	}
}
