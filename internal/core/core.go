// Package core is the library's top-level API: it assembles channel
// groups for the paper's scenarios, constructs congestion-control
// algorithms and steering policies by name, and runs the experiments
// behind every figure and table in the paper (see DESIGN.md §3 for the
// experiment index). The cmd/hvcbench binary, the examples, and the
// benchmark suite are all thin wrappers over this package.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"hvc/internal/cc"
	"hvc/internal/channel"
	"hvc/internal/pool"
	"hvc/internal/sim"
	"hvc/internal/steering"
	"hvc/internal/trace"
)

// Steering policy names accepted by the runners.
const (
	PolicyEMBBOnly         = "embb-only"
	PolicyDChannel         = "dchannel"
	PolicyPriority         = "priority"          // message-priority forcing (video)
	PolicyDChannelPriority = "dchannel+priority" // DChannel + flow-priority hints (web)
	PolicyObjectMap        = "objectmap"         // IANS-style whole-object assignment
	PolicyRedundant        = "redundant"         // replicate across all live channels
)

// CCNames lists the congestion-control algorithms NewCC accepts, in
// the order Fig. 1a reports them. Each name also has an "hvc-" variant
// wrapping it in the §3.2 channel-aware filter.
func CCNames() []string { return []string{"cubic", "bbr", "vegas", "vivace", "reno", "copa"} }

// NewCC builds a congestion-control algorithm by name. An "hvc-"
// prefix wraps the inner algorithm in cc.HVCAware bound to the eMBB
// channel.
func NewCC(name string) (cc.Algorithm, error) {
	if inner, ok := cutPrefix(name, "hvc-"); ok {
		alg, err := NewCC(inner)
		if err != nil {
			return nil, err
		}
		return cc.NewHVCAware(alg, channel.NameEMBB), nil
	}
	switch name {
	case "cubic":
		return cc.NewCubic(), nil
	case "reno":
		return cc.NewReno(), nil
	case "bbr":
		return cc.NewBBR(), nil
	case "vegas":
		return cc.NewVegas(), nil
	case "vivace":
		return cc.NewVivace(), nil
	case "copa":
		return cc.NewCopa(), nil
	default:
		return nil, fmt.Errorf("core: unknown congestion control %q", name)
	}
}

// ValidCC reports whether name is an algorithm NewCC accepts,
// including "hvc-"-wrapped variants.
func ValidCC(name string) bool {
	if inner, ok := cutPrefix(name, "hvc-"); ok {
		return ValidCC(inner)
	}
	switch name {
	case "cubic", "reno", "bbr", "vegas", "vivace", "copa":
		return true
	}
	return false
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return s, false
}

// TraceNames lists the synthetic 5G trace generators RunVideo and
// RunWeb accept.
func TraceNames() []string {
	return []string{"lowband-stationary", "lowband-walking", "lowband-driving", "mmwave-driving", "fixed"}
}

// NewTrace builds a named eMBB trace of the given duration from seed.
func NewTrace(name string, seed int64, dur time.Duration) (*trace.Trace, error) {
	switch name {
	case "lowband-stationary":
		return trace.LowbandStationary(seed, dur), nil
	case "lowband-walking":
		return trace.LowbandWalking(seed, dur), nil
	case "lowband-driving":
		return trace.LowbandDriving(seed, dur), nil
	case "mmwave-driving":
		return trace.MmWaveDriving(seed, dur), nil
	case "fixed":
		return trace.Constant("embb-fixed", 50*time.Millisecond, 60e6), nil
	default:
		return nil, fmt.Errorf("core: unknown trace %q", name)
	}
}

// Cellular assembles the paper's two-channel cellular scenario: a
// trace-driven eMBB channel plus the constant URLLC channel.
func Cellular(loop *sim.Loop, embb *trace.Trace) *channel.Group {
	return channel.NewGroup(channel.EMBB(loop, embb), channel.URLLC(loop))
}

// NewPolicy builds a steering policy by name over g as seen from side.
func NewPolicy(name string, g *channel.Group, side channel.Side) (steering.Policy, error) {
	switch name {
	case PolicyEMBBOnly:
		embb := g.Get(channel.NameEMBB)
		if embb == nil {
			return nil, fmt.Errorf("core: group has no %q channel", channel.NameEMBB)
		}
		return steering.NewSingle(embb), nil
	case PolicyDChannel:
		return steering.NewDChannel(g, side, steering.DChannelConfig{}), nil
	case PolicyPriority:
		return steering.NewPriority(g, side, steering.PriorityConfig{AdmitPrio: 0}), nil
	case PolicyDChannelPriority:
		return steering.NewPriority(g, side, steering.PriorityConfig{AdmitPrio: -1, Heuristic: true}), nil
	case PolicyObjectMap:
		return steering.NewObjectMap(g, side, steering.ObjectMapConfig{}), nil
	case PolicyRedundant:
		return steering.NewRedundant(g), nil
	default:
		return nil, fmt.Errorf("core: unknown steering policy %q", name)
	}
}

// ValidPolicy reports whether name is a steering policy NewPolicy
// accepts.
func ValidPolicy(name string) bool {
	switch name {
	case PolicyEMBBOnly, PolicyDChannel, PolicyPriority, PolicyDChannelPriority, PolicyObjectMap,
		PolicyRedundant:
		return true
	}
	return false
}

// mustPolicy is NewPolicy for validated names inside runners.
func mustPolicy(name string, g *channel.Group, side channel.Side) steering.Policy {
	p, err := NewPolicy(name, g, side)
	if err != nil {
		panic(err)
	}
	return p
}

// SortedCounts renders a per-channel count map deterministically, for
// experiment output.
func SortedCounts(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, m[k])
	}
	return s
}

// Summary aggregates one scalar metric across repeated runs. The JSON
// field names are part of the hvc-sweep-report/v1 schema.
type Summary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	// Median is the midpoint of the observed values (mean of the two
	// middle values for even N).
	Median float64 `json:"median"`
	// CI95 is the half-width of the 95% confidence interval of the
	// mean under a Student t distribution: Mean ± CI95 brackets the
	// true mean at 95% confidence, assuming roughly normal run-to-run
	// variation. Zero when N < 2.
	CI95 float64 `json:"ci95"`
}

// tTable95 holds two-sided 95% Student t critical values for 1..30
// degrees of freedom; larger samples use the normal 1.96.
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tCritical95(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(tTable95) {
		return tTable95[df-1]
	}
	return 1.960
}

// Summarize aggregates vals into a Summary. It does not mutate vals.
// An empty slice yields the zero Summary.
func Summarize(vals []float64) Summary {
	n := len(vals)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: vals[0], Max: vals[0]}
	var sum float64
	for _, v := range vals {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(n)
	var ss float64
	for _, v := range vals {
		d := v - s.Mean
		ss += d * d
	}
	if n > 1 {
		s.Std = math.Sqrt(ss / float64(n-1))
		s.CI95 = tCritical95(n-1) * s.Std / math.Sqrt(float64(n))
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return s
}

// Repeat runs fn once per consecutive seed starting at firstSeed and
// aggregates the scalar it returns — the multi-seed statistics a
// defensible experiment report needs. Runs execute in parallel across
// GOMAXPROCS goroutines (each simulation loop is single-threaded and
// self-contained), so fn must be safe for concurrent calls; the
// aggregation is over values in seed order and therefore identical to
// a serial run. fn's error aborts the sweep, and the returned error
// names the lowest failing seed.
func Repeat(firstSeed int64, n int, fn func(seed int64) (float64, error)) (Summary, error) {
	if n < 1 {
		return Summary{}, fmt.Errorf("core: Repeat needs n >= 1")
	}
	vals, err := pool.Map(n, 0, func(i int) (float64, error) {
		return fn(firstSeed + int64(i))
	})
	if err != nil {
		var pe *pool.Error
		if errors.As(err, &pe) {
			return Summary{}, fmt.Errorf("core: repeat seed %d: %w", firstSeed+int64(pe.Index), pe.Err)
		}
		return Summary{}, err
	}
	return Summarize(vals), nil
}
