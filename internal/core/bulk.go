package core

import (
	"fmt"
	"time"

	"hvc/internal/capture"
	"hvc/internal/channel"
	"hvc/internal/fault"
	"hvc/internal/metrics"
	"hvc/internal/sim"
	"hvc/internal/steering"
	"hvc/internal/telemetry"
	"hvc/internal/trace"
	"hvc/internal/transport"
)

// BulkConfig parameterizes the Fig. 1 experiment: one long-lived flow
// from client to server over eMBB+URLLC with packet steering, under a
// chosen congestion-control algorithm.
type BulkConfig struct {
	Seed     int64
	Duration time.Duration
	// CC names the algorithm (see NewCC).
	CC string
	// Policy names the steering policy; Fig. 1 uses PolicyDChannel.
	Policy string
	// Fault is an optional scenario in the internal/fault grammar.
	// Empty means no faults — the paper's Fig. 1 runs on a clean
	// channel, and the determinism matrix depends on that — unlike
	// OutageConfig, where empty selects the default blackout schedule.
	Fault string
	// EMBB overrides the eMBB trace; nil means the paper's fixed
	// 50 ms / 60 Mbps channel.
	EMBB *trace.Trace
	// CaptureEvery, when positive, attaches a channel sampler at that
	// cadence; the result's Capture field exposes the recorded series.
	CaptureEvery time.Duration
	// Tracer receives cross-layer telemetry for the run; nil disables
	// tracing. The runner binds the run's virtual clock and announces a
	// run boundary, so one tracer may span several runs.
	Tracer *telemetry.Tracer
}

// BulkResult reports one bulk run.
type BulkResult struct {
	CC     string
	Policy string
	// Mbps is the receiver goodput averaged over the whole run, as
	// Fig. 1a reports.
	Mbps float64
	// RTT holds every RTT sample the sender took (value in ms),
	// Fig. 1b's time series.
	RTT metrics.TimeSeries
	// RTTChannels labels each RTT sample's data channel, aligned with
	// RTT's points.
	RTTChannels []string
	// Retransmits and RTOs summarize loss-recovery activity.
	Retransmits int
	RTOs        int
	// ChannelShare counts data+control packets per channel at the
	// client.
	ChannelShare map[string]int
	// Capture holds per-channel time series when BulkConfig.CaptureEvery
	// was set; nil otherwise.
	Capture *capture.Sampler
}

// RunBulk executes the experiment and blocks until the virtual clock
// reaches cfg.Duration.
func RunBulk(cfg BulkConfig) (BulkResult, error) {
	if cfg.Duration <= 0 {
		return BulkResult{}, fmt.Errorf("core: bulk duration must be positive")
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyDChannel
	}
	embb := cfg.EMBB
	if embb == nil {
		embb = trace.Constant("embb-fixed", 50*time.Millisecond, 60e6)
	}
	alg, err := NewCC(cfg.CC)
	if err != nil {
		return BulkResult{}, err
	}
	spec, err := fault.ParseSpec(cfg.Fault)
	if err != nil {
		return BulkResult{}, err
	}

	loop := sim.NewLoop(cfg.Seed)
	g := Cellular(loop, embb)
	client := transport.NewEndpoint(loop, g, channel.A)
	server := transport.NewEndpoint(loop, g, channel.B)

	cfg.Tracer.BeginRun(fmt.Sprintf("bulk cc=%s policy=%s seed=%d", cfg.CC, cfg.Policy, cfg.Seed))
	cfg.Tracer.BindClock(loop.Now)
	g.SetTracer(cfg.Tracer)
	client.SetTracer(cfg.Tracer)
	server.SetTracer(cfg.Tracer)

	if !spec.Empty() {
		if err := fault.Inject(loop, g, spec, cfg.Tracer); err != nil {
			return BulkResult{}, err
		}
	}

	res := BulkResult{CC: cfg.CC, Policy: cfg.Policy}
	if cfg.CaptureEvery > 0 {
		res.Capture = capture.NewSampler(loop, g, cfg.CaptureEvery)
	}

	var srv *transport.Conn
	server.Listen(func() transport.Config {
		ccSrv, _ := NewCC("cubic") // server sends only ACKs; CC idle
		return transport.Config{CC: ccSrv, Steer: mustPolicy(cfg.Policy, g, channel.B)}
	}, func(c *transport.Conn) { srv = c })

	steer := steering.NewCounter(mustPolicy(cfg.Policy, g, channel.A))
	conn := client.Dial(transport.Config{CC: alg, Steer: steer})

	conn.OnRTTSample(func(now, rtt time.Duration, ch string) {
		res.RTT.Add(now, float64(rtt)/float64(time.Millisecond))
		res.RTTChannels = append(res.RTTChannels, ch)
	})

	// Offer more data than the channels can move in cfg.Duration so
	// the flow never goes idle: eMBB peak is well under 1 Gbps.
	size := int(1e9 / 8 * cfg.Duration.Seconds())
	conn.SendMessage(conn.NewStream(), 0, size, nil)

	loop.RunUntil(cfg.Duration)
	if res.Capture != nil {
		res.Capture.Stop()
	}

	if srv != nil {
		res.Mbps = metrics.Mbps(float64(srv.Stats().BytesReceived) * 8 / cfg.Duration.Seconds())
	}
	res.Retransmits = conn.Stats().Retransmits
	res.RTOs = conn.Stats().RTOs
	res.ChannelShare = steer.Counts()
	return res, nil
}

// Fig1a runs the four-CCA comparison of Figure 1a and returns results
// in CCA order: CUBIC, BBR, Vegas, Vivace. tr (optionally nil) traces
// every run.
func Fig1a(seed int64, dur time.Duration, tr *telemetry.Tracer) ([]BulkResult, error) {
	var out []BulkResult
	for _, name := range []string{"cubic", "bbr", "vegas", "vivace"} {
		r, err := RunBulk(BulkConfig{Seed: seed, Duration: dur, CC: name, Tracer: tr})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Fig1b runs the BBR RTT-trace experiment of Figure 1b. tr (optionally
// nil) traces the run.
func Fig1b(seed int64, dur time.Duration, tr *telemetry.Tracer) (BulkResult, error) {
	return RunBulk(BulkConfig{Seed: seed, Duration: dur, CC: "bbr", Tracer: tr})
}

// AblationHVCAwareCC runs the §3.2 remedy: each delay-sensitive CCA
// with and without the HVC-aware sample filter, same setup as Fig. 1a.
func AblationHVCAwareCC(seed int64, dur time.Duration, tr *telemetry.Tracer) (plain, aware []BulkResult, err error) {
	for _, name := range []string{"bbr", "vegas", "vivace"} {
		p, err := RunBulk(BulkConfig{Seed: seed, Duration: dur, CC: name, Tracer: tr})
		if err != nil {
			return nil, nil, err
		}
		a, err := RunBulk(BulkConfig{Seed: seed, Duration: dur, CC: "hvc-" + name, Tracer: tr})
		if err != nil {
			return nil, nil, err
		}
		plain = append(plain, p)
		aware = append(aware, a)
	}
	return plain, aware, nil
}
