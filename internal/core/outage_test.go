package core

import (
	"reflect"
	"testing"
	"time"
)

// TestOutageRedundantMasksBlackout is the experiment's acceptance
// criterion: under the default blackout schedule, replication (and any
// failover-capable policy) must achieve strictly lower stall time than
// the single-channel baseline, whose stall is the blackout itself.
func TestOutageRedundantMasksBlackout(t *testing.T) {
	run := func(policy string) OutageResult {
		r, err := RunOutage(OutageConfig{Seed: 1, Duration: 8 * time.Second, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := run(PolicyEMBBOnly)
	red := run(PolicyRedundant)

	// The default schedule blacks out eMBB for 1/8 of the run; the
	// baseline's longest freeze must be at least that window.
	if window := 8 * time.Second / 8; base.Stall < window {
		t.Fatalf("embb-only stall %v under a %v blackout: outage not injected?", base.Stall, window)
	}
	if red.Stall >= base.Stall {
		t.Fatalf("redundant stall %v not strictly below embb-only %v", red.Stall, base.Stall)
	}
	// Replication should mask the blackout almost entirely: the frames
	// simply ride URLLC while eMBB is dark.
	if red.Stall > 500*time.Millisecond {
		t.Fatalf("redundant stall %v; replication failed to mask the blackout", red.Stall)
	}
	if red.DeliveryRate() < base.DeliveryRate() {
		t.Fatalf("redundant delivery %.3f below baseline %.3f", red.DeliveryRate(), base.DeliveryRate())
	}
	if red.Delay.Percentile(99) >= base.Delay.Percentile(99) {
		t.Fatalf("redundant p99 %.1f not below baseline %.1f",
			red.Delay.Percentile(99), base.Delay.Percentile(99))
	}
}

// TestOutageFailoverPoliciesRecover checks every adaptive policy rides
// through the blackout with bounded stall — none may sit on the dead
// channel for the whole window.
func TestOutageFailoverPoliciesRecover(t *testing.T) {
	for _, policy := range []string{PolicyDChannel, PolicyPriority, PolicyDChannelPriority, PolicyObjectMap, PolicyRedundant} {
		r, err := RunOutage(OutageConfig{Seed: 1, Duration: 8 * time.Second, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		if r.Stall >= time.Second {
			t.Errorf("%s stall %v: policy kept steering into the blackout", policy, r.Stall)
		}
	}
}

func TestOutageDeterministic(t *testing.T) {
	run := func() OutageResult {
		r, err := RunOutage(OutageConfig{Seed: 42, Duration: 6 * time.Second, Policy: PolicyDChannel,
			Fault: "outage:ch=embb,at=1s,dur=500ms;burst:ch=urllc,at=2s,dur=1s"})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestOutageRecordsCanonicalFault(t *testing.T) {
	r, err := RunOutage(OutageConfig{Seed: 1, Duration: 4 * time.Second,
		Fault: "outage:ch=urllc,at=1s,dur=250ms"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Fault != "outage:ch=urllc,at=1s,dur=250ms" {
		t.Fatalf("Fault = %q", r.Fault)
	}
	r, err = RunOutage(OutageConfig{Seed: 1, Duration: 8 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if want := "outage:ch=embb,at=2s,dur=1s;outage:ch=embb,at=5s,dur=1s"; r.Fault != want {
		t.Fatalf("default Fault = %q, want %q", r.Fault, want)
	}
}

func TestOutageRejectsBadConfig(t *testing.T) {
	for name, cfg := range map[string]OutageConfig{
		"zero duration":   {Seed: 1, Policy: PolicyEMBBOnly},
		"unknown policy":  {Seed: 1, Duration: time.Second, Policy: "teleport"},
		"bad fault":       {Seed: 1, Duration: time.Second, Fault: "meteor:ch=embb,at=0s,dur=1s"},
		"unknown channel": {Seed: 1, Duration: time.Second, Fault: "outage:ch=nosuch,at=0s,dur=100ms"},
	} {
		if _, err := RunOutage(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
