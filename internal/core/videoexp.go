package core

import (
	"fmt"
	"time"

	"hvc/internal/app/video"
	"hvc/internal/channel"
	"hvc/internal/fault"
	"hvc/internal/metrics"
	"hvc/internal/sim"
	"hvc/internal/telemetry"
	"hvc/internal/transport"
)

// VideoConfig parameterizes the Fig. 2 experiment: a real-time SVC
// stream from client to server over eMBB+URLLC.
type VideoConfig struct {
	Seed     int64
	Duration time.Duration
	// Trace names the eMBB trace (Fig. 2 uses "lowband-driving" and
	// "mmwave-driving").
	Trace string
	// Policy names the steering policy applied to the video flow.
	Policy string
	// Fault is an optional scenario in the internal/fault grammar
	// (empty or "none" disables injection), so fleet runs can stream
	// through shared outage windows.
	Fault string
	// Tracer receives cross-layer telemetry for the run; nil disables
	// tracing.
	Tracer *telemetry.Tracer
}

// VideoResult reports one video run.
type VideoResult struct {
	Trace, Policy string
	// Latency is the decoded-frame latency distribution in ms; SSIM
	// the decoded-frame quality distribution.
	Latency metrics.Distribution
	SSIM    metrics.Distribution
	Sent    int
	Decoded int
	Frozen  int
}

// RunVideo executes one video session and drains the network before
// reporting, so late frames (the eMBB-only latency tail) are counted.
func RunVideo(cfg VideoConfig) (VideoResult, error) {
	if cfg.Duration <= 0 {
		return VideoResult{}, fmt.Errorf("core: video duration must be positive")
	}
	tr, err := NewTrace(cfg.Trace, cfg.Seed, cfg.Duration+30*time.Second)
	if err != nil {
		return VideoResult{}, err
	}
	if !ValidPolicy(cfg.Policy) {
		return VideoResult{}, fmt.Errorf("core: unknown steering policy %q", cfg.Policy)
	}
	spec, err := fault.ParseSpec(cfg.Fault)
	if err != nil {
		return VideoResult{}, err
	}

	loop := sim.NewLoop(cfg.Seed)
	g := Cellular(loop, tr)
	client := transport.NewEndpoint(loop, g, channel.A)
	server := transport.NewEndpoint(loop, g, channel.B)

	cfg.Tracer.BeginRun(fmt.Sprintf("video trace=%s policy=%s seed=%d", cfg.Trace, cfg.Policy, cfg.Seed))
	cfg.Tracer.BindClock(loop.Now)
	g.SetTracer(cfg.Tracer)
	client.SetTracer(cfg.Tracer)
	server.SetTracer(cfg.Tracer)

	if !spec.Empty() {
		if err := fault.Inject(loop, g, spec, cfg.Tracer); err != nil {
			return VideoResult{}, err
		}
	}

	vcfg := video.Config{Duration: cfg.Duration}
	recv := video.NewReceiver(loop, vcfg)
	recv.SetTracer(cfg.Tracer)
	server.Listen(func() transport.Config {
		return transport.Config{
			Steer:      mustPolicy(cfg.Policy, g, channel.B),
			Unreliable: true,
			MsgTimeout: 30 * time.Second,
		}
	}, func(c *transport.Conn) { recv.Attach(c) })

	conn := client.Dial(transport.Config{
		Steer:      mustPolicy(cfg.Policy, g, channel.A),
		Unreliable: true,
		MsgTimeout: 30 * time.Second,
	})
	snd := video.NewSender(loop, conn, vcfg)
	snd.Start()

	// Run past the stream's end so queued tail traffic (multi-second
	// under mmWave driving) arrives and decodes.
	loop.RunUntil(cfg.Duration + 20*time.Second)

	return VideoResult{
		Trace:   cfg.Trace,
		Policy:  cfg.Policy,
		Latency: recv.Latency,
		SSIM:    recv.SSIM,
		Sent:    snd.FrameCount(),
		Decoded: recv.Decoded,
		Frozen:  recv.Frozen(snd.FrameCount()),
	}, nil
}

// Fig2 runs the three steering policies over one trace and returns
// them in the paper's order: eMBB-only, DChannel, priority. tr
// (optionally nil) traces every run.
func Fig2(seed int64, dur time.Duration, traceName string, tr *telemetry.Tracer) ([]VideoResult, error) {
	var out []VideoResult
	for _, policy := range []string{PolicyEMBBOnly, PolicyDChannel, PolicyPriority} {
		r, err := RunVideo(VideoConfig{Seed: seed, Duration: dur, Trace: traceName, Policy: policy, Tracer: tr})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// videoConfigFor builds the standard Fig. 2 video configuration for a
// stream of the given duration. Shared by RunVideo and the β sweep.
func videoConfigFor(dur time.Duration) video.Config {
	return video.Config{Duration: dur}
}

// newVideoReceiver and newVideoSender re-export the app constructors
// so sibling files in this package read uniformly.
func newVideoReceiver(loop *sim.Loop, cfg video.Config) *video.Receiver {
	return video.NewReceiver(loop, cfg)
}

func newVideoSender(loop *sim.Loop, conn *transport.Conn, cfg video.Config) *video.Sender {
	return video.NewSender(loop, conn, cfg)
}
