package core

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"hvc/internal/channel"
	"hvc/internal/sim"
	"hvc/internal/trace"
)

func TestNewCCKnownNames(t *testing.T) {
	for _, name := range CCNames() {
		alg, err := NewCC(name)
		if err != nil {
			t.Fatalf("NewCC(%q): %v", name, err)
		}
		if alg.Name() != name {
			t.Fatalf("NewCC(%q).Name() = %q", name, alg.Name())
		}
		wrapped, err := NewCC("hvc-" + name)
		if err != nil {
			t.Fatalf("NewCC(hvc-%s): %v", name, err)
		}
		if wrapped.Name() != "hvc-"+name {
			t.Fatalf("wrapped name = %q", wrapped.Name())
		}
	}
	if _, err := NewCC("nope"); err == nil {
		t.Fatal("unknown CC should error")
	}
	if _, err := NewCC("hvc-nope"); err == nil {
		t.Fatal("unknown wrapped CC should error")
	}
}

func TestNewTraceKnownNames(t *testing.T) {
	for _, name := range TraceNames() {
		tr, err := NewTrace(name, 1, 10*time.Second)
		if err != nil {
			t.Fatalf("NewTrace(%q): %v", name, err)
		}
		if len(tr.Samples) == 0 {
			t.Fatalf("NewTrace(%q) empty", name)
		}
	}
	if _, err := NewTrace("nope", 1, time.Second); err == nil {
		t.Fatal("unknown trace should error")
	}
}

func TestNewPolicyKnownNames(t *testing.T) {
	loop := sim.NewLoop(1)
	g := Cellular(loop, trace.Constant("e", 50*time.Millisecond, 60e6))
	for _, name := range []string{PolicyEMBBOnly, PolicyDChannel, PolicyPriority, PolicyDChannelPriority} {
		if !ValidPolicy(name) {
			t.Errorf("ValidPolicy(%q) = false", name)
		}
		p, err := NewPolicy(name, g, channel.A)
		if err != nil || p == nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
	}
	if ValidPolicy("nope") {
		t.Fatal("ValidPolicy(nope) = true")
	}
	if _, err := NewPolicy("nope", g, channel.A); err == nil {
		t.Fatal("unknown policy should error")
	}
}

func TestCellularGroup(t *testing.T) {
	loop := sim.NewLoop(1)
	g := Cellular(loop, trace.Constant("e", 50*time.Millisecond, 60e6))
	if g.Len() != 2 || g.Get(channel.NameEMBB) == nil || g.Get(channel.NameURLLC) == nil {
		t.Fatal("Cellular group malformed")
	}
}

func TestSortedCounts(t *testing.T) {
	got := SortedCounts(map[string]int{"urllc": 2, "embb": 7})
	if got != "embb=7 urllc=2" {
		t.Fatalf("SortedCounts = %q", got)
	}
	if SortedCounts(nil) != "" {
		t.Fatal("empty map should render empty")
	}
}

// --- experiment shape tests (short durations; the full-length runs
// live in the benchmark harness) ---

func TestRunBulkValidation(t *testing.T) {
	if _, err := RunBulk(BulkConfig{CC: "cubic"}); err == nil {
		t.Fatal("zero duration should error")
	}
	if _, err := RunBulk(BulkConfig{CC: "nope", Duration: time.Second}); err == nil {
		t.Fatal("unknown CC should error")
	}
}

func TestFig1aShapeShort(t *testing.T) {
	results, err := Fig1a(1, 15*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range results {
		byName[r.CC] = r.Mbps
	}
	// The paper's Figure 1a ordering: CUBIC fills the wide channel;
	// the delay-based algorithms collapse, Vivace hardest.
	if byName["cubic"] < 45 {
		t.Errorf("cubic = %.1f Mbps, want near 60", byName["cubic"])
	}
	for _, delayBased := range []string{"bbr", "vegas", "vivace"} {
		if byName[delayBased] > byName["cubic"]/2 {
			t.Errorf("%s = %.1f Mbps should collapse well below cubic %.1f",
				delayBased, byName[delayBased], byName["cubic"])
		}
	}
	if byName["vivace"] > byName["bbr"] {
		t.Errorf("vivace %.1f should be the worst (bbr %.1f)", byName["vivace"], byName["bbr"])
	}
}

func TestFig1bRTTOscillates(t *testing.T) {
	r, err := Fig1b(1, 15*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.RTT.N() < 100 {
		t.Fatalf("only %d RTT samples", r.RTT.N())
	}
	var lo, hi int
	for _, p := range r.RTT.Points() {
		if p.Value < 15 {
			lo++ // both legs URLLC: ≈7 ms
		}
		if p.Value > 25 {
			hi++ // data over eMBB: ≥ its 25 ms one-way
		}
	}
	// The Fig. 1b signature: samples jump between channel-combination
	// latencies instead of tracking one path.
	if lo == 0 || hi == 0 {
		t.Fatalf("RTT not bimodal: %d low, %d high of %d", lo, hi, r.RTT.N())
	}
	if len(r.RTTChannels) != r.RTT.N() {
		t.Fatal("channel labels misaligned")
	}
}

func TestAblationHVCAwareRecovers(t *testing.T) {
	plain, aware, err := AblationHVCAwareCC(1, 15*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		// The §3.2 claim: channel-aware RTT interpretation recovers
		// throughput for the delay-based algorithms (BBR, Vegas; the
		// Vivace utility function also improves, if less dramatically).
		if aware[i].Mbps < plain[i].Mbps {
			t.Errorf("%s: hvc-aware %.1f Mbps worse than plain %.1f",
				plain[i].CC, aware[i].Mbps, plain[i].Mbps)
		}
	}
	// BBR and Vegas must recover most of the channel.
	if aware[0].Mbps < 25 || aware[1].Mbps < 25 {
		t.Errorf("hvc-bbr %.1f / hvc-vegas %.1f Mbps: expected substantial recovery",
			aware[0].Mbps, aware[1].Mbps)
	}
}

func TestRunVideoValidation(t *testing.T) {
	if _, err := RunVideo(VideoConfig{Trace: "lowband-driving", Policy: PolicyPriority}); err == nil {
		t.Fatal("zero duration should error")
	}
	if _, err := RunVideo(VideoConfig{Duration: time.Second, Trace: "nope", Policy: PolicyPriority}); err == nil {
		t.Fatal("unknown trace should error")
	}
	if _, err := RunVideo(VideoConfig{Duration: time.Second, Trace: "lowband-driving", Policy: "nope"}); err == nil {
		t.Fatal("unknown policy should error")
	}
}

func TestFig2ShapeShort(t *testing.T) {
	results, err := Fig2(1, 20*time.Second, "lowband-driving", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("want 3 policies, got %d", len(results))
	}
	embb, dch, prio := results[0], results[1], results[2]
	for _, r := range results {
		if r.Decoded == 0 {
			t.Fatalf("%s decoded nothing", r.Policy)
		}
	}
	// The Fig. 2 ordering on tail latency: priority < DChannel < eMBB-only.
	if !(prio.Latency.Percentile(95) < dch.Latency.Percentile(95)) {
		t.Errorf("p95: priority %.0f ms should beat dchannel %.0f ms",
			prio.Latency.Percentile(95), dch.Latency.Percentile(95))
	}
	if !(dch.Latency.Percentile(95) < embb.Latency.Percentile(95)) {
		t.Errorf("p95: dchannel %.0f ms should beat embb-only %.0f ms",
			dch.Latency.Percentile(95), embb.Latency.Percentile(95))
	}
	// And the cost: priority trades a little SSIM for the latency.
	if prio.SSIM.Mean() > embb.SSIM.Mean() {
		t.Errorf("priority SSIM %.3f should not beat embb-only %.3f",
			prio.SSIM.Mean(), embb.SSIM.Mean())
	}
}

func TestRunWebValidation(t *testing.T) {
	if _, err := RunWeb(WebConfig{Trace: "lowband-stationary", Policy: "nope"}); err == nil {
		t.Fatal("unknown policy should error")
	}
	if _, err := RunWeb(WebConfig{Trace: "lowband-stationary", Policy: PolicyPriority}); err == nil {
		t.Fatal("video-style priority policy should be rejected for web")
	}
	if _, err := RunWeb(WebConfig{Trace: "nope", Policy: PolicyDChannel}); err == nil {
		t.Fatal("unknown trace should error")
	}
}

func TestTable1ShapeShort(t *testing.T) {
	results, err := Table1(1, "lowband-stationary", 4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	embb, dch, prio := results[0], results[1], results[2]
	if embb.PLT.N() != 4 || dch.PLT.N() != 4 || prio.PLT.N() != 4 {
		t.Fatalf("incomplete loads: %d %d %d", embb.PLT.N(), dch.PLT.N(), prio.PLT.N())
	}
	// Table 1 ordering: eMBB-only slowest, flow-priority hints fastest.
	if !(dch.MeanPLT < embb.MeanPLT) {
		t.Errorf("dchannel %v should beat embb-only %v", dch.MeanPLT, embb.MeanPLT)
	}
	if !(prio.MeanPLT < dch.MeanPLT) {
		t.Errorf("dchannel+priority %v should beat dchannel %v", prio.MeanPLT, dch.MeanPLT)
	}
	if dch.BgUploads == 0 || dch.BgDownloads == 0 {
		t.Error("background flows made no progress")
	}
}

func TestRunMLOShape(t *testing.T) {
	single := RunMLO(1, 300, 1200, 10*time.Millisecond, false)
	red := RunMLO(1, 300, 1200, 10*time.Millisecond, true)
	if !(red.DeliveryRate > single.DeliveryRate) {
		t.Errorf("redundant delivery %.3f should beat single lossy link %.3f",
			red.DeliveryRate, single.DeliveryRate)
	}
	if red.DeliveryRate < 0.995 {
		t.Errorf("redundant delivery %.3f should be near-perfect", red.DeliveryRate)
	}
	if !(red.PacketsOnAir > single.PacketsOnAir) {
		t.Error("replication must cost air time")
	}
}

func TestRunCostShape(t *testing.T) {
	free := RunCost(1, 200, 20*time.Millisecond, 0)
	budget := RunCost(1, 200, 20*time.Millisecond, 50_000)
	if !(budget.Latency.Mean() < free.Latency.Mean()) {
		t.Errorf("budgeted mean latency %.1f ms should beat fiber-only %.1f ms",
			budget.Latency.Mean(), free.Latency.Mean())
	}
	if budget.Dollars <= 0 || free.Dollars != 0 {
		t.Errorf("dollars: budget=%v free=%v", budget.Dollars, free.Dollars)
	}
	big := RunCost(1, 200, 20*time.Millisecond, 1e7)
	if big.Dollars <= budget.Dollars {
		t.Error("a larger budget should spend more")
	}
	if big.Latency.Mean() > budget.Latency.Mean() {
		t.Error("a larger budget should not be slower")
	}
}

func TestRunBulkDeterministic(t *testing.T) {
	a, err := RunBulk(BulkConfig{Seed: 5, Duration: 5 * time.Second, CC: "bbr"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBulk(BulkConfig{Seed: 5, Duration: 5 * time.Second, CC: "bbr"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Mbps != b.Mbps || a.RTT.N() != b.RTT.N() {
		t.Fatalf("nondeterministic: %.3f/%d vs %.3f/%d", a.Mbps, a.RTT.N(), b.Mbps, b.RTT.N())
	}
}

func TestRunMultipathShape(t *testing.T) {
	mp := RunMultipath(1, 10*time.Second, "multipath")
	dch := RunMultipath(1, 10*time.Second, "dchannel")
	prio := RunMultipath(1, 10*time.Second, "priority")

	// Aggregation and agnostic steering both bury URLLC; the flow
	// hint keeps the probe near URLLC's propagation latency.
	if prio.Probe.Percentile(95) > 30 {
		t.Errorf("priority probe p95 %.1f ms; URLLC should stay clear", prio.Probe.Percentile(95))
	}
	for _, r := range []MultipathResult{mp, dch} {
		if r.Probe.Percentile(50) < 5*prio.Probe.Percentile(50) {
			t.Errorf("%s probe p50 %.1f ms should be far above priority's %.1f",
				r.Mode, r.Probe.Percentile(50), prio.Probe.Percentile(50))
		}
	}
	// Bulk throughput is comparable in all modes (the hint costs a
	// few percent at most).
	if prio.BulkMbps < 0.9*dch.BulkMbps {
		t.Errorf("priority bulk %.1f Mbps lost too much vs dchannel %.1f",
			prio.BulkMbps, dch.BulkMbps)
	}
	if mp.BulkMbps < 0.9*dch.BulkMbps {
		t.Errorf("multipath bulk %.1f Mbps should match dchannel %.1f",
			mp.BulkMbps, dch.BulkMbps)
	}
}

func TestRunMultipathUnknownModePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown mode should panic")
		}
	}()
	RunMultipath(1, time.Second, "nope")
}

func TestRunBetaSweepShape(t *testing.T) {
	points := RunBetaSweep(1, 15*time.Second, []float64{0.5, 4})
	if len(points) != 2 {
		t.Fatalf("want 2 points, got %d", len(points))
	}
	aggressive, shy := points[0], points[1]
	// A lower cost coefficient must spend more of URLLC.
	if aggressive.URLLCShare <= shy.URLLCShare {
		t.Errorf("β=0.5 URLLC share %.3f should exceed β=4's %.3f",
			aggressive.URLLCShare, shy.URLLCShare)
	}
	for _, p := range points {
		if p.P95Latency <= 0 || p.SSIM <= 0 {
			t.Errorf("β=%v produced empty results: %+v", p.Beta, p)
		}
	}
}

func TestRunTailBoostImprovesCompletion(t *testing.T) {
	plain := RunTailBoost(1, 100, 60_000, 50*time.Millisecond, false)
	boosted := RunTailBoost(1, 100, 60_000, 50*time.Millisecond, true)
	if plain.Latency.N() != 100 || boosted.Latency.N() != 100 {
		t.Fatalf("incomplete: %d vs %d messages", plain.Latency.N(), boosted.Latency.N())
	}
	if boosted.Latency.Mean() >= plain.Latency.Mean() {
		t.Errorf("tail boost mean %.1f ms should beat plain %.1f ms",
			boosted.Latency.Mean(), plain.Latency.Mean())
	}
}

func TestObjectMapWebBetweenBaselines(t *testing.T) {
	// The §1 claim about IANS: object-granularity channel assignment
	// helps versus one channel but loses to per-packet steering.
	run := func(policy string) float64 {
		r, err := RunWeb(WebConfig{
			Seed: 1, Trace: "lowband-stationary", Policy: policy,
			Pages: 4, Loads: 1, NoBackground: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.PLT.Mean()
	}
	embb := run(PolicyEMBBOnly)
	ians := run(PolicyObjectMap)
	dch := run(PolicyDChannel)
	if !(ians < embb) {
		t.Errorf("objectmap %.1f ms should beat embb-only %.1f", ians, embb)
	}
	if !(dch < ians) {
		t.Errorf("dchannel %.1f ms should beat objectmap %.1f", dch, ians)
	}
}

func TestRunBulkCapture(t *testing.T) {
	r, err := RunBulk(BulkConfig{
		Seed: 1, Duration: 3 * time.Second, CC: "cubic",
		CaptureEvery: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Capture == nil {
		t.Fatal("Capture not attached")
	}
	// Bulk data flows client→server, i.e. on the link leaving side A.
	ts := r.Capture.Throughput(channel.NameEMBB, channel.A)
	if ts == nil || ts.N() < 20 {
		t.Fatalf("capture recorded %v samples", ts)
	}
	if rate := r.Capture.MeanRateMbps(channel.NameEMBB, channel.A); rate < 10 {
		t.Fatalf("captured eMBB rate %.1f Mbps implausibly low for cubic", rate)
	}
}

func TestRunABRValidation(t *testing.T) {
	if _, err := RunABR(ABRConfig{Trace: "fixed", Policy: PolicyDChannel}); err == nil {
		t.Fatal("zero media should error")
	}
	if _, err := RunABR(ABRConfig{Media: time.Second, Trace: "nope", Policy: PolicyDChannel}); err == nil {
		t.Fatal("unknown trace should error")
	}
	if _, err := RunABR(ABRConfig{Media: time.Second, Trace: "fixed", Policy: "nope"}); err == nil {
		t.Fatal("unknown policy should error")
	}
}

func TestABRComparisonShape(t *testing.T) {
	rs, err := ABRComparison(1, 30*time.Second, "mmwave-driving")
	if err != nil {
		t.Fatal(err)
	}
	embb, _, dch := rs[0], rs[1], rs[2]
	for _, r := range rs {
		if r.Played < 29*time.Second {
			t.Errorf("%s played only %v", r.Policy, r.Played)
		}
	}
	// Steering's ABR win concentrates in interactivity: the first
	// chunk's request and tail ride URLLC, halving startup delay.
	if dch.StartupDelay >= embb.StartupDelay {
		t.Errorf("dchannel startup %v should beat embb-only %v",
			dch.StartupDelay, embb.StartupDelay)
	}
}

func TestRunTSNShape(t *testing.T) {
	be := RunTSN(1, 5*time.Second, false)
	tsn := RunTSN(1, 5*time.Second, true)
	if be.MissRate < 0.3 {
		t.Errorf("best-effort miss rate %.2f should be high under contention", be.MissRate)
	}
	if tsn.MissRate > 0.02 {
		t.Errorf("TSN miss rate %.2f should be near zero", tsn.MissRate)
	}
	if tsn.P99Latency >= be.P99Latency && be.Completed > 0 {
		t.Errorf("TSN p99 %.1f should beat best-effort %.1f", tsn.P99Latency, be.P99Latency)
	}
}

func TestRepeatAggregates(t *testing.T) {
	s, err := Repeat(10, 4, func(seed int64) (float64, error) {
		return float64(seed), nil // 10, 11, 12, 13
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Mean != 11.5 || s.Min != 10 || s.Max != 13 {
		t.Fatalf("summary %+v", s)
	}
	if s.Std < 1.28 || s.Std > 1.30 { // sample std of {10,11,12,13} ≈ 1.29
		t.Fatalf("std %v", s.Std)
	}
}

func TestRepeatPropagatesError(t *testing.T) {
	_, err := Repeat(1, 3, func(seed int64) (float64, error) {
		if seed == 2 {
			return 0, fmt.Errorf("boom")
		}
		return 1, nil
	})
	if err == nil {
		t.Fatal("error not propagated")
	}
	if _, err := Repeat(1, 0, func(int64) (float64, error) { return 0, nil }); err == nil {
		t.Fatal("n=0 should error")
	}
}

func TestConfigFingerprints(t *testing.T) {
	seen := map[string]string{}
	for _, name := range CCNames() {
		for _, full := range []string{name, "hvc-" + name} {
			fp, err := CCFingerprint(full)
			if err != nil {
				t.Fatalf("CCFingerprint(%q): %v", full, err)
			}
			if fp == "" {
				t.Fatalf("CCFingerprint(%q) empty", full)
			}
			if prev, dup := seen[fp]; dup {
				t.Fatalf("fingerprint collision: %q and %q both yield %q", prev, full, fp)
			}
			seen[fp] = full
			again, _ := CCFingerprint(full)
			if again != fp {
				t.Fatalf("CCFingerprint(%q) unstable: %q then %q", full, fp, again)
			}
		}
	}
	// The wrapper's fingerprint must expose the inner tuning, so an
	// inner constant change invalidates hvc- cells too.
	inner, _ := CCFingerprint("bbr")
	wrapped, _ := CCFingerprint("hvc-bbr")
	if !strings.Contains(wrapped, inner) {
		t.Fatalf("hvc-bbr fingerprint %q does not embed bbr's %q", wrapped, inner)
	}
	if _, err := CCFingerprint("nope"); err == nil {
		t.Fatal("unknown CC accepted")
	}

	pseen := map[string]string{}
	for _, p := range []string{PolicyEMBBOnly, PolicyDChannel, PolicyPriority, PolicyDChannelPriority, PolicyObjectMap} {
		fp, err := PolicyFingerprint(p)
		if err != nil {
			t.Fatalf("PolicyFingerprint(%q): %v", p, err)
		}
		if fp == "" {
			t.Fatalf("PolicyFingerprint(%q) empty", p)
		}
		if prev, dup := pseen[fp]; dup {
			t.Fatalf("fingerprint collision: %q and %q both yield %q", prev, p, fp)
		}
		pseen[fp] = p
	}
	if _, err := PolicyFingerprint("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSummarize(t *testing.T) {
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	cases := []struct {
		name string
		vals []float64
		want Summary
	}{
		{"empty", nil, Summary{}},
		{"n=1", []float64{42}, Summary{N: 1, Mean: 42, Min: 42, Max: 42, Median: 42}},
		{"odd-n", []float64{3, 1, 2}, Summary{N: 3, Mean: 2, Std: 1, Min: 1, Max: 3, Median: 2,
			CI95: 4.303 * 1 / math.Sqrt(3)}},
		{"even-n", []float64{4, 1, 3, 2}, Summary{N: 4, Mean: 2.5, Min: 1, Max: 4, Median: 2.5,
			Std: math.Sqrt(5.0 / 3.0), CI95: 3.182 * math.Sqrt(5.0/3.0) / 2}},
		{"constant", []float64{7, 7, 7, 7, 7}, Summary{N: 5, Mean: 7, Min: 7, Max: 7, Median: 7}},
		{"skewed-median", []float64{1, 1, 1, 1, 100}, Summary{N: 5, Mean: 20.8, Min: 1, Max: 100,
			Median: 1, Std: math.Sqrt(4.0*(19.8*19.8)/4.0 + 79.2*79.2/4.0),
			CI95: 2.776 * math.Sqrt(4.0*(19.8*19.8)/4.0+79.2*79.2/4.0) / math.Sqrt(5)}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got := Summarize(c.vals)
			if got.N != c.want.N || !approx(got.Mean, c.want.Mean) ||
				!approx(got.Std, c.want.Std) || !approx(got.Min, c.want.Min) ||
				!approx(got.Max, c.want.Max) || !approx(got.Median, c.want.Median) ||
				!approx(got.CI95, c.want.CI95) {
				t.Fatalf("Summarize(%v) = %+v, want %+v", c.vals, got, c.want)
			}
		})
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	vals := []float64{3, 1, 2}
	Summarize(vals)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatalf("input reordered: %v", vals)
	}
}

func TestSummarizeLargeNUsesNormalCritical(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i % 2) // alternating 0/1: mean .5, std ≈ .5025
	}
	s := Summarize(vals)
	want := 1.960 * s.Std / 10
	if math.Abs(s.CI95-want) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v (normal critical value for df=99)", s.CI95, want)
	}
}

func TestRepeatErrorNamesFailingSeed(t *testing.T) {
	sentinel := fmt.Errorf("trace corrupt")
	_, err := Repeat(40, 6, func(seed int64) (float64, error) {
		if seed >= 43 {
			return 0, sentinel
		}
		return float64(seed), nil
	})
	if err == nil {
		t.Fatal("error not propagated")
	}
	if !strings.Contains(err.Error(), "seed 43") {
		t.Fatalf("error %q does not name the lowest failing seed 43", err)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %q lost the underlying cause", err)
	}
}

func TestRepeatMatchesSerialAggregation(t *testing.T) {
	// The parallel Repeat must produce exactly the statistics of a
	// serial left-to-right pass over the same seeds.
	fn := func(seed int64) (float64, error) { return float64(seed*seed) * 0.125, nil }
	var vals []float64
	for s := int64(5); s < 5+16; s++ {
		v, _ := fn(s)
		vals = append(vals, v)
	}
	want := Summarize(vals)
	got, err := Repeat(5, 16, fn)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Repeat = %+v, serial = %+v", got, want)
	}
}

func TestRepeatOverVideoSeeds(t *testing.T) {
	s, err := Repeat(1, 3, func(seed int64) (float64, error) {
		r, err := RunVideo(VideoConfig{
			Seed: seed, Duration: 10 * time.Second,
			Trace: "lowband-driving", Policy: PolicyPriority,
		})
		if err != nil {
			return 0, err
		}
		return r.Latency.Percentile(95), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Mean <= 0 {
		t.Fatalf("summary %+v", s)
	}
	// Priority steering pins the tail near the decode wait regardless
	// of seed: the spread should be small.
	if s.Std > 30 {
		t.Fatalf("priority p95 varies too much across seeds: %+v", s)
	}
}
