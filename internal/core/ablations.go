package core

import (
	"fmt"
	"time"

	"hvc/internal/app/iot"
	"hvc/internal/cc"
	"hvc/internal/channel"
	"hvc/internal/metrics"
	"hvc/internal/packet"
	"hvc/internal/sim"
	"hvc/internal/steering"
	"hvc/internal/trace"
	"hvc/internal/transport"
)

// MLOResult reports the bandwidth-vs-reliability ablation (§2.2/§3.1):
// a periodic small-message stream over Wi-Fi MLO, comparing the lossy
// wide 5 GHz link alone against redundant transmission across both
// links.
type MLOResult struct {
	Mode string // "wifi5-only" or "redundant"
	// DeliveryRate is the fraction of messages that arrived complete.
	DeliveryRate float64
	// Latency is the delivered-message latency distribution in ms.
	Latency metrics.Distribution
	// PacketsOnAir counts packets offered to all channels — the
	// bandwidth price of replication.
	PacketsOnAir int64
}

// RunMLO sends count messages of size bytes, one every interval, over
// the Wi-Fi MLO pair, unreliably (time-sensitive TSN-style traffic).
func RunMLO(seed int64, count, sizeBytes int, interval time.Duration, redundant bool) MLOResult {
	loop := sim.NewLoop(seed)
	b5, b6 := channel.WiFiMLO(loop)
	g := channel.NewGroup(b5, b6)
	client := transport.NewEndpoint(loop, g, channel.A)
	server := transport.NewEndpoint(loop, g, channel.B)

	var policy steering.Policy
	mode := "wifi5-only"
	if redundant {
		policy = steering.NewRedundant(g)
		mode = "redundant"
	} else {
		policy = steering.NewSingle(b5)
	}

	res := MLOResult{Mode: mode}
	delivered := 0
	server.Listen(func() transport.Config {
		return transport.Config{Steer: policy, Unreliable: true, MsgTimeout: 10 * time.Second}
	}, func(c *transport.Conn) {
		c.OnMessage(func(_ *transport.Conn, m transport.Message) {
			delivered++
			res.Latency.AddDuration(m.Latency())
		})
	})

	conn := client.Dial(transport.Config{Steer: policy, Unreliable: true})
	st := conn.NewStream()
	for i := 0; i < count; i++ {
		i := i
		loop.At(time.Duration(i)*interval, func() {
			conn.SendMessage(st, 0, sizeBytes, i)
		})
	}
	loop.RunUntil(time.Duration(count)*interval + 5*time.Second)

	res.DeliveryRate = float64(delivered) / float64(count)
	for _, ch := range g.All() {
		res.PacketsOnAir += int64(ch.Stats(channel.A).Sent)
	}
	return res
}

// CostResult reports one point of the latency-vs-cost ablation: a
// request/response workload over fiber plus a priced cISP-style path
// under a byte budget.
type CostResult struct {
	BudgetBytesPerSec float64
	// Latency is the response-latency distribution in ms.
	Latency metrics.Distribution
	// SpentBytes and Dollars price the run.
	SpentBytes int64
	Dollars    float64
}

// RunCost issues count request/response exchanges (1 kB up, 20 kB
// down), one every interval, steering with a budgeted CostAware policy
// on the client; budget 0 disables the priced path entirely.
func RunCost(seed int64, count int, interval time.Duration, budgetBytesPerSec float64) CostResult {
	loop := sim.NewLoop(seed)
	fiber, mw := channel.CISP(loop)
	g := channel.NewGroup(fiber, mw)
	client := transport.NewEndpoint(loop, g, channel.A)
	server := transport.NewEndpoint(loop, g, channel.B)

	newPolicy := func(side channel.Side) steering.Policy {
		if budgetBytesPerSec <= 0 {
			return steering.NewSingle(fiber)
		}
		return steering.NewCostAware(g, side, loop.Now, steering.CostAwareConfig{
			Cheap: "fiber", Priced: "cisp",
			BudgetBytesPerSec: budgetBytesPerSec,
		})
	}
	clientPolicy := newPolicy(channel.A)

	res := CostResult{BudgetBytesPerSec: budgetBytesPerSec}
	server.Listen(func() transport.Config {
		alg, _ := NewCC("cubic")
		return transport.Config{CC: alg, Steer: newPolicy(channel.B)}
	}, func(c *transport.Conn) {
		c.OnMessage(func(conn *transport.Conn, m transport.Message) {
			conn.SendMessage(m.Stream, 0, 20_000, m.Data)
		})
	})

	alg, _ := NewCC("cubic")
	conn := client.Dial(transport.Config{CC: alg, Steer: clientPolicy})
	type reqMeta struct{ at time.Duration }
	conn.OnMessage(func(_ *transport.Conn, m transport.Message) {
		meta, ok := m.Data.(reqMeta)
		if !ok {
			panic(fmt.Sprintf("core: cost ablation got %T", m.Data))
		}
		res.Latency.AddDuration(loop.Now() - meta.at)
	})
	st := conn.NewStream()
	for i := 0; i < count; i++ {
		loop.At(time.Duration(i)*interval, func() {
			conn.SendMessage(st, 0, 1_000, reqMeta{at: loop.Now()})
		})
	}
	loop.RunUntil(time.Duration(count)*interval + 10*time.Second)

	if ca, ok := clientPolicy.(*steering.CostAware); ok {
		res.SpentBytes = ca.SpentBytes()
		res.Dollars = ca.Cost()
	}
	return res
}

// MultipathResult reports the MPTCP-baseline comparison (§1/§3.1): a
// bulk flow run with MPTCP-style min-RTT aggregation, with
// application-agnostic DChannel steering, or with DChannel plus a
// bulk flow-priority hint, while a small latency probe shares the
// channels. Aggregation and agnostic steering both bury URLLC under
// bulk bytes; only the application hint keeps it usable.
type MultipathResult struct {
	Mode string // "multipath", "dchannel", or "priority"
	// BulkMbps is the bulk flow's goodput — aggregation's strength.
	BulkMbps float64
	// Probe is the probe's message-latency distribution in ms —
	// aggregation's victim, since the min-RTT scheduler congests the
	// low-latency channel with bulk bytes.
	Probe metrics.Distribution
	// URLLCMaxQueue is the deepest URLLC backlog observed (bytes).
	URLLCMaxQueue int
}

// RunMultipath executes the comparison for one mode ("multipath",
// "dchannel", or "priority") over the fixed Fig. 1 channels.
func RunMultipath(seed int64, dur time.Duration, mode string) MultipathResult {
	switch mode {
	case "multipath", "dchannel", "priority":
	default:
		panic(fmt.Sprintf("core: unknown multipath-comparison mode %q", mode))
	}
	loop := sim.NewLoop(seed)
	g := Cellular(loop, fixedEMBB())
	client := transport.NewEndpoint(loop, g, channel.A)
	server := transport.NewEndpoint(loop, g, channel.B)

	res := MultipathResult{Mode: mode}

	var bulkSrv *transport.Conn
	server.Listen(func() transport.Config {
		alg, _ := NewCC("cubic")
		return transport.Config{
			CC:    alg,
			Steer: steering.NewDChannel(g, channel.B, steering.DChannelConfig{}),
		}
	}, func(c *transport.Conn) {
		if bulkSrv == nil {
			bulkSrv = c // first conn is the bulk flow (dialed first)
		}
		c.OnMessage(func(_ *transport.Conn, m transport.Message) {
			if m.Size <= probeBytes {
				res.Probe.AddDuration(m.Latency())
			}
		})
	})

	var bulkCfg transport.Config
	switch mode {
	case "multipath":
		bulkCfg = transport.Config{
			Multipath: true,
			NewCC: func() cc.Algorithm {
				alg, _ := NewCC("cubic")
				return alg
			},
		}
	case "dchannel":
		alg, _ := NewCC("cubic")
		bulkCfg = transport.Config{
			CC:    alg,
			Steer: steering.NewDChannel(g, channel.A, steering.DChannelConfig{}),
		}
	case "priority":
		// The §3.3 fix: the application declares the flow bulk, and a
		// priority-aware policy keeps it off URLLC entirely.
		alg, _ := NewCC("cubic")
		bulkCfg = transport.Config{
			CC:           alg,
			Steer:        mustPolicy(PolicyDChannelPriority, g, channel.A),
			FlowPriority: packet.PriorityBulk,
		}
	}
	bulk := client.Dial(bulkCfg)
	bulk.SendMessage(bulk.NewStream(), 0, int(1e9/8*dur.Seconds()), nil)

	probe := client.Dial(transport.Config{
		Steer:      steering.NewDChannel(g, channel.A, steering.DChannelConfig{}),
		Unreliable: true,
	})
	probeStream := probe.NewStream()
	// One probe every 100 ms after a 2 s warmup, plus a queue sampler.
	for at := 2 * time.Second; at < dur; at += 100 * time.Millisecond {
		at := at
		loop.At(at, func() {
			probe.SendMessage(probeStream, 0, probeBytes, nil)
			if q := g.Get(channel.NameURLLC).QueuedBytes(channel.A); q > res.URLLCMaxQueue {
				res.URLLCMaxQueue = q
			}
		})
	}
	loop.RunUntil(dur)

	if bulkSrv != nil {
		res.BulkMbps = metrics.Mbps(float64(bulkSrv.Stats().BytesReceived) * 8 / dur.Seconds())
	}
	return res
}

// probeBytes is the latency probe's message size: small enough that a
// healthy URLLC delivers it in a handful of milliseconds.
const probeBytes = 500

func fixedEMBB() *trace.Trace {
	return trace.Constant("embb-fixed", 50*time.Millisecond, 60e6)
}

// BetaPoint reports one point of the DChannel reward/cost β sweep: how
// aggressively the heuristic spends the narrow channel, evaluated on
// the Fig. 2 video workload (lowband driving).
type BetaPoint struct {
	Beta float64
	// P95Latency is the decoded-frame p95 latency in ms.
	P95Latency float64
	// SSIM is the mean decoded-frame quality.
	SSIM float64
	// URLLCShare is the fraction of video packets steered to URLLC.
	URLLCShare float64
}

// RunBetaSweep evaluates DChannel's cost coefficient β over the video
// workload — the design-choice ablation DESIGN.md calls out. Small β
// floods URLLC with enhancement-layer bytes; large β leaves it idle.
func RunBetaSweep(seed int64, dur time.Duration, betas []float64) []BetaPoint {
	out := make([]BetaPoint, 0, len(betas))
	for _, beta := range betas {
		tr, err := NewTrace("lowband-driving", seed, dur+30*time.Second)
		if err != nil {
			panic(err)
		}
		loop := sim.NewLoop(seed)
		g := Cellular(loop, tr)
		client := transport.NewEndpoint(loop, g, channel.A)
		server := transport.NewEndpoint(loop, g, channel.B)

		vcfg := videoConfigFor(dur)
		recv := newVideoReceiver(loop, vcfg)
		server.Listen(func() transport.Config {
			return transport.Config{
				Steer:      steering.NewDChannel(g, channel.B, steering.DChannelConfig{Beta: beta}),
				Unreliable: true,
				MsgTimeout: 30 * time.Second,
			}
		}, func(c *transport.Conn) { recv.Attach(c) })

		counter := steering.NewCounter(steering.NewDChannel(g, channel.A, steering.DChannelConfig{Beta: beta}))
		conn := client.Dial(transport.Config{
			Steer:      counter,
			Unreliable: true,
			MsgTimeout: 30 * time.Second,
		})
		snd := newVideoSender(loop, conn, vcfg)
		snd.Start()
		loop.RunUntil(dur + 20*time.Second)

		counts := counter.Counts()
		total := counts[channel.NameEMBB] + counts[channel.NameURLLC]
		share := 0.0
		if total > 0 {
			share = float64(counts[channel.NameURLLC]) / float64(total)
		}
		out = append(out, BetaPoint{
			Beta:       beta,
			P95Latency: recv.Latency.Percentile(95),
			SSIM:       recv.SSIM.Mean(),
			URLLCShare: share,
		})
	}
	return out
}

// TailBoostResult reports the §3.2 end-of-message acceleration
// ablation: completion latency of medium-sized messages with and
// without tail diversion.
type TailBoostResult struct {
	Mode string // "embb-only" or "embb+tail"
	// Latency is the message completion-latency distribution in ms.
	Latency metrics.Distribution
}

// RunTailBoost sends count messages of msgBytes every interval over
// the fixed cellular pair, eMBB-only versus eMBB with tail-boost.
func RunTailBoost(seed int64, count, msgBytes int, interval time.Duration, boost bool) TailBoostResult {
	loop := sim.NewLoop(seed)
	g := Cellular(loop, fixedEMBB())
	client := transport.NewEndpoint(loop, g, channel.A)
	server := transport.NewEndpoint(loop, g, channel.B)

	mkPolicy := func(side channel.Side) steering.Policy {
		base := steering.Policy(steering.NewSingle(g.Get(channel.NameEMBB)))
		if boost {
			return steering.NewTailBoost(base, g, side, steering.TailBoostConfig{})
		}
		return base
	}
	mode := "embb-only"
	if boost {
		mode = "embb+tail"
	}
	res := TailBoostResult{Mode: mode}

	server.Listen(func() transport.Config {
		alg, _ := NewCC("cubic")
		return transport.Config{CC: alg, Steer: mkPolicy(channel.B)}
	}, func(c *transport.Conn) {
		c.OnMessage(func(_ *transport.Conn, m transport.Message) {
			res.Latency.AddDuration(m.Latency())
		})
	})

	alg, _ := NewCC("cubic")
	conn := client.Dial(transport.Config{CC: alg, Steer: mkPolicy(channel.A)})
	st := conn.NewStream()
	for i := 0; i < count; i++ {
		loop.At(time.Duration(i)*interval, func() {
			conn.SendMessage(st, 0, msgBytes, nil)
		})
	}
	loop.RunUntil(time.Duration(count)*interval + 10*time.Second)
	return res
}

// TSNResult reports the wireless-TSN ablation (§2.2): deadline miss
// rate of periodic control loops on contended Wi-Fi, with and without
// TSN steering for the control traffic.
type TSNResult struct {
	Mode string // "best-effort" or "tsn"
	// MissRate is the fraction of control loops missing their cycle
	// deadline; P99Latency the completed loops' tail in ms.
	MissRate   float64
	P99Latency float64
	Completed  int
}

// RunTSN runs a 4-device plant (60 ms cycles) for dur while a
// ~160 Mbps loss-tolerant blast saturates the best-effort channel.
// With useTSN the control traffic is steered onto the TSN channel.
func RunTSN(seed int64, dur time.Duration, useTSN bool) TSNResult {
	loop := sim.NewLoop(seed)
	tsn, be := channel.WiFiTSN(loop, 2)
	g := channel.NewGroup(tsn, be)
	client := transport.NewEndpoint(loop, g, channel.A)
	server := transport.NewEndpoint(loop, g, channel.B)

	mkPolicy := func(side channel.Side) steering.Policy {
		if useTSN {
			return steering.NewPriority(g, side, steering.PriorityConfig{
				Wide: be.Name(), Narrow: tsn.Name(), AdmitPrio: 0,
			})
		}
		return steering.NewSingle(be)
	}

	server.Listen(func() transport.Config {
		alg, _ := NewCC("cubic")
		return transport.Config{CC: alg, Steer: mkPolicy(channel.B)}
	}, func(c *transport.Conn) {
		iot.ServeController(loop, c, 2*time.Millisecond, 0)
	})

	conn := client.Dial(transport.Config{
		Steer: mkPolicy(channel.A), Unreliable: true, MsgTimeout: 5 * time.Second,
	})
	plant := iot.NewPlant(loop, conn, iot.Config{Duration: dur, Cycle: 60 * time.Millisecond})

	blast := client.Dial(transport.Config{Steer: steering.NewSingle(be), Unreliable: true})
	blastStream := blast.NewStream()
	sim.Every(loop, 10*time.Millisecond, func() {
		blast.SendMessage(blastStream, 0, 200_000, nil)
	})

	plant.Start()
	loop.RunUntil(dur + 2*time.Second)

	mode := "best-effort"
	if useTSN {
		mode = "tsn"
	}
	return TSNResult{
		Mode:       mode,
		MissRate:   plant.MissRate(),
		P99Latency: plant.LoopLatency.Percentile(99),
		Completed:  plant.Completed,
	}
}
