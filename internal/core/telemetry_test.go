package core

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"hvc/internal/telemetry"
)

// traceBulk runs a short bulk experiment with the given sinks attached
// and returns the result.
func traceBulk(t *testing.T, seed int64, sinks ...telemetry.Sink) BulkResult {
	t.Helper()
	tr := telemetry.New(sinks...)
	r, err := RunBulk(BulkConfig{Seed: seed, Duration: 3 * time.Second, CC: "bbr", Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestTraceDeterministic is the tentpole reproducibility guarantee:
// two runs with identical configuration and seed must serialize to
// bit-identical trace bytes, for both exporters.
func TestTraceDeterministic(t *testing.T) {
	var jsonl1, jsonl2, chrome1, chrome2 bytes.Buffer
	traceBulk(t, 7, telemetry.NewJSONL(&jsonl1), telemetry.NewChromeTrace(&chrome1))
	traceBulk(t, 7, telemetry.NewJSONL(&jsonl2), telemetry.NewChromeTrace(&chrome2))

	if jsonl1.Len() == 0 {
		t.Fatal("JSONL trace is empty")
	}
	if !bytes.Equal(jsonl1.Bytes(), jsonl2.Bytes()) {
		t.Fatal("JSONL trace bytes differ between identical-seed runs")
	}
	if !bytes.Equal(chrome1.Bytes(), chrome2.Bytes()) {
		t.Fatal("Chrome trace bytes differ between identical-seed runs")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome1.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("Chrome trace has no events")
	}
}

// TestTraceSeedSensitive guards against a trivially-constant trace
// satisfying the determinism test: different seeds must diverge.
func TestTraceSeedSensitive(t *testing.T) {
	var a, b bytes.Buffer
	traceBulk(t, 7, telemetry.NewJSONL(&a))
	traceBulk(t, 8, telemetry.NewJSONL(&b))
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("traces for different seeds are identical")
	}
}

// TestTracingDoesNotChangeMetrics asserts the zero-interference
// property: an experiment's results are identical whether tracing is
// off (nil tracer), on with no sinks, or on with a live exporter.
func TestTracingDoesNotChangeMetrics(t *testing.T) {
	plain, err := RunBulk(BulkConfig{Seed: 11, Duration: 3 * time.Second, CC: "cubic"})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []*telemetry.Tracer{telemetry.New(), telemetry.New(telemetry.NewJSONL(&bytes.Buffer{}))} {
		traced, err := RunBulk(BulkConfig{Seed: 11, Duration: 3 * time.Second, CC: "cubic", Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		if traced.Mbps != plain.Mbps || traced.Retransmits != plain.Retransmits ||
			traced.RTOs != plain.RTOs || traced.RTT.N() != plain.RTT.N() {
			t.Fatalf("tracing changed bulk metrics: plain %+v traced %+v",
				[]any{plain.Mbps, plain.Retransmits, plain.RTOs, plain.RTT.N()},
				[]any{traced.Mbps, traced.Retransmits, traced.RTOs, traced.RTT.N()})
		}
	}

	vplain, err := RunVideo(VideoConfig{Seed: 11, Duration: 4 * time.Second, Trace: "lowband-driving", Policy: PolicyDChannel})
	if err != nil {
		t.Fatal(err)
	}
	vtraced, err := RunVideo(VideoConfig{Seed: 11, Duration: 4 * time.Second, Trace: "lowband-driving", Policy: PolicyDChannel,
		Tracer: telemetry.New(telemetry.NewJSONL(&bytes.Buffer{}))})
	if err != nil {
		t.Fatal(err)
	}
	if vtraced.Decoded != vplain.Decoded || vtraced.Frozen != vplain.Frozen ||
		vtraced.Latency.Mean() != vplain.Latency.Mean() || vtraced.SSIM.Mean() != vplain.SSIM.Mean() {
		t.Fatalf("tracing changed video metrics: plain %+v traced %+v",
			[]any{vplain.Decoded, vplain.Frozen, vplain.Latency.Mean()},
			[]any{vtraced.Decoded, vtraced.Frozen, vtraced.Latency.Mean()})
	}
}

// TestTraceEmitsAllLayers checks that one bulk run exercises every
// instrumented layer the workload can reach.
func TestTraceEmitsAllLayers(t *testing.T) {
	var buf bytes.Buffer
	traceBulk(t, 3, telemetry.NewJSONL(&buf))
	for _, want := range []string{
		`"layer":"channel","name":"enqueue"`,
		`"layer":"channel","name":"deliver"`,
		`"layer":"transport","name":"send"`,
		`"layer":"transport","name":"ack"`,
		`"layer":"transport","name":"rtt"`,
		`"layer":"cc","name":"cwnd"`,
		`"layer":"steering","name":"decision"`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("trace missing %s events", want)
		}
	}
}

// TestRunReportCounters checks that a traced run's registry lands in
// the report with the layered counters populated.
func TestRunReportCounters(t *testing.T) {
	tr := telemetry.New()
	if _, err := RunBulk(BulkConfig{Seed: 5, Duration: 2 * time.Second, CC: "cubic", Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	rep := telemetry.NewReport("bulk", 5)
	rep.AddMetric("goodput", 1.23, "Mbps")
	rep.AttachCounters(tr.Registry())
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed telemetry.Report
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if parsed.Schema != telemetry.ReportSchema {
		t.Fatalf("schema = %q, want %q", parsed.Schema, telemetry.ReportSchema)
	}
	names := make(map[string]bool)
	for _, c := range parsed.Counters {
		names[c.Name] = true
	}
	for _, want := range []string{
		"netem_sent_total", "netem_delivered_bytes_total",
		"transport_sent_bytes_total", "transport_acked_bytes_total",
		"steering_decisions_total", "cc_cwnd_bytes",
	} {
		if !names[want] {
			t.Errorf("report counters missing %s", want)
		}
	}
}
