package core

import (
	"fmt"
	"time"

	"hvc/internal/channel"
	"hvc/internal/fault"
	"hvc/internal/metrics"
	"hvc/internal/packet"
	"hvc/internal/sim"
	"hvc/internal/steering"
	"hvc/internal/telemetry"
	"hvc/internal/trace"
	"hvc/internal/transport"
)

// OutageConfig parameterizes the reliability experiment: a periodic
// real-time frame stream over eMBB+URLLC while a fault scenario (see
// internal/fault) injects outages into the channels, comparing how
// steering policies ride through a blackout.
type OutageConfig struct {
	Seed     int64
	Duration time.Duration
	// Policy names the steering policy (see NewPolicy); empty means
	// PolicyEMBBOnly, the no-failover baseline.
	Policy string
	// Fault is the scenario in the internal/fault grammar; empty or
	// "none"... note that unlike elsewhere, empty here means the
	// *default* schedule — two eMBB blackouts scaled to Duration
	// (fault.Default) — because an outage experiment without an outage
	// measures nothing. Pass an explicit scenario to override it.
	Fault string
	// Reliable switches the frame stream from best-effort to reliable
	// delivery: frames lost to a blackout are retransmitted instead of
	// dropped, trading delivery rate 1.0 for a latency tail. This is
	// the regime where stale fresh-seq retransmissions race their
	// recovered originals, so the chaos harness leans on it.
	Reliable bool
	// QueueBytes caps each channel direction's entry queue; 0 keeps
	// the channels' defaults. Benchmarks use a small cap so a blackout
	// saturates the queues quickly, which is what arms the quiet-time
	// fast-forward.
	QueueBytes int
	// Tracer receives cross-layer telemetry (fault windows included);
	// nil disables tracing.
	Tracer *telemetry.Tracer
}

// OutageResult reports one policy's ride through the fault schedule.
type OutageResult struct {
	Policy string
	// Fault is the canonical form of the injected scenario.
	Fault string
	// Sent and Delivered count frames; the stream is unreliable, so a
	// frame lost to the blackout stays lost.
	Sent, Delivered int
	// Stall is the longest delivery gap the receiver observed — the
	// user-visible freeze an outage causes. It includes the tail gap to
	// the end of the run, so a flow that never recovers scores the
	// remainder of the run as stall.
	Stall time.Duration
	// Delay is the frame-latency distribution in ms.
	Delay metrics.Distribution
	// Events counts the loop events the run executed — the quiet-time
	// fast-forward's figure of merit (cancelled frame timers never
	// fire, so an hour-long blackout costs ~zero events).
	Events uint64
}

// DeliveryRate is the fraction of sent frames delivered.
func (r OutageResult) DeliveryRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Sent)
}

// RunOutage executes the reliability experiment: ~30 frames/s of
// 1200-byte unreliable messages from client to server over the fixed
// eMBB channel plus URLLC, with cfg.Fault injected. Frames ride the
// policy under test on both sides.
func RunOutage(cfg OutageConfig) (OutageResult, error) {
	if cfg.Duration <= 0 {
		return OutageResult{}, fmt.Errorf("core: outage duration must be positive")
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyEMBBOnly
	}
	if !ValidPolicy(cfg.Policy) {
		return OutageResult{}, fmt.Errorf("core: unknown steering policy %q", cfg.Policy)
	}
	spec, err := fault.ParseSpec(cfg.Fault)
	if err != nil {
		return OutageResult{}, err
	}
	if spec.Empty() {
		spec = fault.Default(channel.NameEMBB, cfg.Duration)
	}

	loop := sim.NewLoop(cfg.Seed)
	g := cellularQueued(loop, trace.Constant("embb-fixed", 50*time.Millisecond, 60e6), cfg.QueueBytes)
	client := transport.NewEndpoint(loop, g, channel.A)
	server := transport.NewEndpoint(loop, g, channel.B)

	cfg.Tracer.BeginRun(fmt.Sprintf("outage policy=%s fault=%s seed=%d", cfg.Policy, spec, cfg.Seed))
	cfg.Tracer.BindClock(loop.Now)
	g.SetTracer(cfg.Tracer)
	client.SetTracer(cfg.Tracer)
	server.SetTracer(cfg.Tracer)

	if err := fault.Inject(loop, g, spec, cfg.Tracer); err != nil {
		return OutageResult{}, err
	}

	res := OutageResult{Policy: cfg.Policy, Fault: spec.String()}
	var lastDelivery, maxGap time.Duration
	server.Listen(func() transport.Config {
		tc := transport.Config{
			Steer: mustPolicy(cfg.Policy, g, channel.B), Unreliable: true,
			MsgTimeout: 10 * time.Second,
		}
		if cfg.Reliable {
			ccSrv, _ := NewCC("cubic")
			tc.CC, tc.Unreliable, tc.MsgTimeout = ccSrv, false, 0
		}
		return tc
	}, func(c *transport.Conn) {
		c.OnMessage(func(_ *transport.Conn, m transport.Message) {
			res.Delivered++
			res.Delay.AddDuration(m.Latency())
			if gap := m.DeliveredAt - lastDelivery; gap > maxGap {
				maxGap = gap
			}
			lastDelivery = m.DeliveredAt
		})
	})

	steer := steering.NewCounter(mustPolicy(cfg.Policy, g, channel.A))
	tc := transport.Config{Steer: steer, Unreliable: true}
	if cfg.Reliable {
		ccCli, _ := NewCC("cubic")
		tc.CC, tc.Unreliable = ccCli, false
	}
	conn := client.Dial(tc)
	st := conn.NewStream()

	// ~30 fps of 1200-byte frames for the whole run. Each frame gets
	// its own pre-scheduled timer (so event sequence numbers — and
	// with them every timestamp tie-break — are identical whether or
	// not the fast-forward below fires), and the frame callback may
	// cancel upcoming timers wholesale when the run is provably quiet.
	const frameEvery = 33 * time.Millisecond
	const frameBytes = 1200
	// A frame rides a single fragment (frameBytes <= packet.MaxPayload),
	// so this is the exact wire size a channel must accept.
	const frameWire = frameBytes + packet.HeaderBytes
	canSkip := !cfg.Tracer.Enabled() && !cfg.Reliable
	nFrames := int((cfg.Duration - 1) / frameEvery)
	frameTimers := make([]sim.Timer, nFrames)
	for i := range frameTimers {
		i := i
		id := res.Sent
		res.Sent++
		frameTimers[i] = loop.At(time.Duration(i+1)*frameEvery, func() {
			if canSkip {
				if wake, quiet := quietUntil(loop, g, frameWire); quiet {
					// Provably blocked until wake: this frame and every
					// one before the recovery would be dropped at
					// channel entry with no observable effect, so skip
					// their events instead of executing them.
					for j := i + 1; j < nFrames; j++ {
						if time.Duration(j+1)*frameEvery >= wake {
							break
						}
						frameTimers[j].Stop()
					}
					return
				}
			}
			conn.SendMessage(st, 0, frameBytes, id)
		})
	}

	loop.RunUntil(cfg.Duration)
	res.Events = loop.Events()

	// The tail gap counts: a flow still stalled at the end of the run
	// scores the remainder as freeze.
	if gap := cfg.Duration - lastDelivery; gap > maxGap {
		maxGap = gap
	}
	res.Stall = maxGap
	return res, nil
}

// quietUntil reports whether an unreliable frame send is provably a
// no-op until some future instant, and when that instant is. It holds
// when every channel is down with a known recovery time, nothing is
// mid-serialization toward the server, and no A→B queue can accept a
// frame. Down links never start serializing, so queued bytes are
// frozen and the headroom deficit persists: every frame until the
// earliest recovery would be dropped at channel entry, mutating
// nothing the experiment observes. (Steering state is safe too: the
// policies the outage experiment offers touch only per-decision
// scratch, and cost-aware spending requires an up channel.)
func quietUntil(loop *sim.Loop, g *channel.Group, wire int) (time.Duration, bool) {
	now := loop.Now()
	wake := time.Duration(1<<63 - 1)
	for _, ch := range g.All() {
		if !ch.Down() {
			return 0, false
		}
		until := ch.DownUntil()
		if until <= now {
			return 0, false // no recovery hint: never skip
		}
		if ch.Transmitting(channel.A) {
			return 0, false // a finishing packet could free headroom
		}
		if ch.Headroom(channel.A) >= wire {
			return 0, false // a frame would be queued, not dropped
		}
		if until < wake {
			wake = until
		}
	}
	return wake, true
}

// cellularQueued is the outage experiment's channel group: Cellular
// with an optional per-direction entry-queue cap on both channels
// (0 keeps the defaults).
func cellularQueued(loop *sim.Loop, embb *trace.Trace, queueBytes int) *channel.Group {
	if queueBytes == 0 {
		return Cellular(loop, embb)
	}
	s := embb.At(0)
	e := channel.New(loop, channel.Config{
		Props: channel.Properties{
			Name:      channel.NameEMBB,
			BaseRTT:   s.RTT,
			Bandwidth: s.Rate,
		},
		DownTrace:  embb,
		QueueBytes: queueBytes,
	})
	u := channel.New(loop, channel.Config{
		Props: channel.Properties{
			Name:      channel.NameURLLC,
			BaseRTT:   5 * time.Millisecond,
			Bandwidth: 2e6,
			Reliable:  true,
		},
		DownTrace:  trace.URLLC(),
		QueueBytes: queueBytes,
	})
	return channel.NewGroup(e, u)
}
