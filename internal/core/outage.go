package core

import (
	"fmt"
	"time"

	"hvc/internal/channel"
	"hvc/internal/fault"
	"hvc/internal/metrics"
	"hvc/internal/sim"
	"hvc/internal/steering"
	"hvc/internal/telemetry"
	"hvc/internal/trace"
	"hvc/internal/transport"
)

// OutageConfig parameterizes the reliability experiment: a periodic
// real-time frame stream over eMBB+URLLC while a fault scenario (see
// internal/fault) injects outages into the channels, comparing how
// steering policies ride through a blackout.
type OutageConfig struct {
	Seed     int64
	Duration time.Duration
	// Policy names the steering policy (see NewPolicy); empty means
	// PolicyEMBBOnly, the no-failover baseline.
	Policy string
	// Fault is the scenario in the internal/fault grammar; empty or
	// "none"... note that unlike elsewhere, empty here means the
	// *default* schedule — two eMBB blackouts scaled to Duration
	// (fault.Default) — because an outage experiment without an outage
	// measures nothing. Pass an explicit scenario to override it.
	Fault string
	// Reliable switches the frame stream from best-effort to reliable
	// delivery: frames lost to a blackout are retransmitted instead of
	// dropped, trading delivery rate 1.0 for a latency tail. This is
	// the regime where stale fresh-seq retransmissions race their
	// recovered originals, so the chaos harness leans on it.
	Reliable bool
	// Tracer receives cross-layer telemetry (fault windows included);
	// nil disables tracing.
	Tracer *telemetry.Tracer
}

// OutageResult reports one policy's ride through the fault schedule.
type OutageResult struct {
	Policy string
	// Fault is the canonical form of the injected scenario.
	Fault string
	// Sent and Delivered count frames; the stream is unreliable, so a
	// frame lost to the blackout stays lost.
	Sent, Delivered int
	// Stall is the longest delivery gap the receiver observed — the
	// user-visible freeze an outage causes. It includes the tail gap to
	// the end of the run, so a flow that never recovers scores the
	// remainder of the run as stall.
	Stall time.Duration
	// Delay is the frame-latency distribution in ms.
	Delay metrics.Distribution
}

// DeliveryRate is the fraction of sent frames delivered.
func (r OutageResult) DeliveryRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Sent)
}

// RunOutage executes the reliability experiment: ~30 frames/s of
// 1200-byte unreliable messages from client to server over the fixed
// eMBB channel plus URLLC, with cfg.Fault injected. Frames ride the
// policy under test on both sides.
func RunOutage(cfg OutageConfig) (OutageResult, error) {
	if cfg.Duration <= 0 {
		return OutageResult{}, fmt.Errorf("core: outage duration must be positive")
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyEMBBOnly
	}
	if !ValidPolicy(cfg.Policy) {
		return OutageResult{}, fmt.Errorf("core: unknown steering policy %q", cfg.Policy)
	}
	spec, err := fault.ParseSpec(cfg.Fault)
	if err != nil {
		return OutageResult{}, err
	}
	if spec.Empty() {
		spec = fault.Default(channel.NameEMBB, cfg.Duration)
	}

	loop := sim.NewLoop(cfg.Seed)
	g := Cellular(loop, trace.Constant("embb-fixed", 50*time.Millisecond, 60e6))
	client := transport.NewEndpoint(loop, g, channel.A)
	server := transport.NewEndpoint(loop, g, channel.B)

	cfg.Tracer.BeginRun(fmt.Sprintf("outage policy=%s fault=%s seed=%d", cfg.Policy, spec, cfg.Seed))
	cfg.Tracer.BindClock(loop.Now)
	g.SetTracer(cfg.Tracer)
	client.SetTracer(cfg.Tracer)
	server.SetTracer(cfg.Tracer)

	if err := fault.Inject(loop, g, spec, cfg.Tracer); err != nil {
		return OutageResult{}, err
	}

	res := OutageResult{Policy: cfg.Policy, Fault: spec.String()}
	var lastDelivery, maxGap time.Duration
	server.Listen(func() transport.Config {
		tc := transport.Config{
			Steer: mustPolicy(cfg.Policy, g, channel.B), Unreliable: true,
			MsgTimeout: 10 * time.Second,
		}
		if cfg.Reliable {
			ccSrv, _ := NewCC("cubic")
			tc.CC, tc.Unreliable, tc.MsgTimeout = ccSrv, false, 0
		}
		return tc
	}, func(c *transport.Conn) {
		c.OnMessage(func(_ *transport.Conn, m transport.Message) {
			res.Delivered++
			res.Delay.AddDuration(m.Latency())
			if gap := m.DeliveredAt - lastDelivery; gap > maxGap {
				maxGap = gap
			}
			lastDelivery = m.DeliveredAt
		})
	})

	steer := steering.NewCounter(mustPolicy(cfg.Policy, g, channel.A))
	tc := transport.Config{Steer: steer, Unreliable: true}
	if cfg.Reliable {
		ccCli, _ := NewCC("cubic")
		tc.CC, tc.Unreliable = ccCli, false
	}
	conn := client.Dial(tc)
	st := conn.NewStream()

	// ~30 fps of 1200-byte frames for the whole run.
	const frameEvery = 33 * time.Millisecond
	for at := frameEvery; at < cfg.Duration; at += frameEvery {
		id := res.Sent
		loop.At(at, func() { conn.SendMessage(st, 0, 1200, id) })
		res.Sent++
	}

	loop.RunUntil(cfg.Duration)

	// The tail gap counts: a flow still stalled at the end of the run
	// scores the remainder as freeze.
	if gap := cfg.Duration - lastDelivery; gap > maxGap {
		maxGap = gap
	}
	res.Stall = maxGap
	return res, nil
}
