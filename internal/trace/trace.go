// Package trace models time-varying channel conditions. The paper's
// experiments replay 5G eMBB traces recorded by DChannel (NSDI '23):
// Lowband stationary, Lowband driving, and mmWave driving. Those
// recordings are not available here, so this package generates
// synthetic traces from a Markov-modulated model calibrated to the
// summary statistics both papers publish: Lowband ≈50 ms RTT and
// ≈60 Mbps when stationary; driving RTT reaching ≈236 ms at the 98th
// percentile; mmWave driving with short outages that back up queues
// for multiple seconds. See DESIGN.md §1 for the substitution argument.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// A Sample fixes the channel's conditions from At until the next
// sample: the base round-trip propagation delay and the link rate.
type Sample struct {
	At   time.Duration
	RTT  time.Duration
	Rate float64 // bits per second; 0 means the link is in outage
}

// A Trace is a time-indexed sequence of channel conditions. Traces
// repeat: reading past the end wraps around to the beginning, so a
// short recording can drive an arbitrarily long simulation.
type Trace struct {
	Name    string
	Samples []Sample // ascending At, first at 0
}

// Constant returns a trace with fixed conditions, used for URLLC
// (whose latency, per the 3GPP target, does not vary) and for the
// Fig. 1 fixed-parameter eMBB channel.
func Constant(name string, rtt time.Duration, rate float64) *Trace {
	return &Trace{Name: name, Samples: []Sample{{At: 0, RTT: rtt, Rate: rate}}}
}

// Duration reports the length of one repetition of the trace. A trace
// with a single sample reports one second, an arbitrary loop period for
// constant conditions.
func (t *Trace) Duration() time.Duration {
	if len(t.Samples) <= 1 {
		return time.Second
	}
	last := t.Samples[len(t.Samples)-1]
	// Assume the final sample holds for one inter-sample gap.
	return last.At + (last.At - t.Samples[len(t.Samples)-2].At)
}

// At returns the conditions in force at virtual time now, wrapping
// around the trace's duration. It panics on an empty trace.
func (t *Trace) At(now time.Duration) Sample {
	if len(t.Samples) == 0 {
		panic("trace: At on empty trace " + t.Name)
	}
	if len(t.Samples) == 1 {
		return t.Samples[0]
	}
	now %= t.Duration()
	// Find the last sample with At <= now.
	i := sort.Search(len(t.Samples), func(i int) bool { return t.Samples[i].At > now })
	return t.Samples[i-1]
}

// NextChange returns the earliest time strictly after now at which the
// trace's conditions may change (the next sample boundary, accounting
// for wrap-around). For a constant trace it returns now plus one
// second; callers use it to re-poll a link stalled by an outage.
func (t *Trace) NextChange(now time.Duration) time.Duration {
	if len(t.Samples) <= 1 {
		return now + time.Second
	}
	dur := t.Duration()
	pos := now % dur
	base := now - pos
	i := sort.Search(len(t.Samples), func(i int) bool { return t.Samples[i].At > pos })
	if i == len(t.Samples) {
		return base + dur // wraps to the first sample of the next repetition
	}
	return base + t.Samples[i].At
}

// RTTStats summarizes the RTT values across one repetition, weighted
// equally per sample (samples are evenly spaced by the generators).
func (t *Trace) RTTStats() (mean time.Duration, p98 time.Duration) {
	if len(t.Samples) == 0 {
		return 0, 0
	}
	rtts := make([]time.Duration, len(t.Samples))
	var sum time.Duration
	for i, s := range t.Samples {
		rtts[i] = s.RTT
		sum += s.RTT
	}
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	idx := int(0.98 * float64(len(rtts)-1))
	return sum / time.Duration(len(rtts)), rtts[idx]
}

// step is the generator granularity; DChannel's traces are per-RTT
// probes, which 100 ms buckets approximate well for these models.
const step = 100 * time.Millisecond

// genConfig parameterizes the three-state (good / degraded / outage)
// Markov channel model behind the synthetic 5G traces.
type genConfig struct {
	name string
	// Per-state RTT range and rate range (bits/s). Outage forces rate 0.
	goodRTT, goodRTTJit time.Duration
	goodRate            float64
	degRTTLo, degRTTHi  time.Duration
	degRate             float64
	// Transition probabilities per step.
	pGoodToDeg   float64
	pDegToGood   float64
	pDegToOutage float64
	pOutageEnd   float64
}

func generate(cfg genConfig, seed int64, dur time.Duration) *Trace {
	rng := rand.New(rand.NewSource(seed))
	const (
		stGood = iota
		stDeg
		stOutage
	)
	state := stGood
	tr := &Trace{Name: cfg.name}
	for at := time.Duration(0); at < dur; at += step {
		var s Sample
		s.At = at
		switch state {
		case stGood:
			jit := time.Duration(rng.Int63n(int64(2*cfg.goodRTTJit))) - cfg.goodRTTJit
			s.RTT = cfg.goodRTT + jit
			s.Rate = cfg.goodRate * (0.85 + 0.3*rng.Float64())
			if rng.Float64() < cfg.pGoodToDeg {
				state = stDeg
			}
		case stDeg:
			span := cfg.degRTTHi - cfg.degRTTLo
			s.RTT = cfg.degRTTLo + time.Duration(rng.Int63n(int64(span)))
			s.Rate = cfg.degRate * (0.5 + rng.Float64())
			switch r := rng.Float64(); {
			case r < cfg.pDegToGood:
				state = stGood
			case r < cfg.pDegToGood+cfg.pDegToOutage:
				state = stOutage
			}
		case stOutage:
			s.RTT = cfg.degRTTHi
			s.Rate = 0
			if rng.Float64() < cfg.pOutageEnd {
				state = stDeg
			}
		}
		if s.RTT < time.Millisecond {
			s.RTT = time.Millisecond
		}
		tr.Samples = append(tr.Samples, s)
	}
	return tr
}

// LowbandStationary models 5G Lowband eMBB with the UE at rest: RTT
// near 50 ms with mild jitter and rare short degradations, rate near
// 60 Mbps. Table 1's "Stat." row uses it.
func LowbandStationary(seed int64, dur time.Duration) *Trace {
	return generate(genConfig{
		name:       "5g-lowband-stationary",
		goodRTT:    50 * time.Millisecond,
		goodRTTJit: 8 * time.Millisecond,
		goodRate:   60e6,
		degRTTLo:   80 * time.Millisecond,
		degRTTHi:   140 * time.Millisecond,
		degRate:    40e6,
		pGoodToDeg: 0.02,
		pDegToGood: 0.5,
	}, seed, dur)
}

// LowbandDriving models 5G Lowband eMBB under UE mobility: the same
// base channel but with frequent latency excursions, reaching roughly
// 236 ms at the 98th percentile as DChannel measured. Table 1's "Drv."
// row and Fig. 2's Lowband case use it.
func LowbandDriving(seed int64, dur time.Duration) *Trace {
	return generate(genConfig{
		name:         "5g-lowband-driving",
		goodRTT:      55 * time.Millisecond,
		goodRTTJit:   15 * time.Millisecond,
		goodRate:     55e6,
		degRTTLo:     120 * time.Millisecond,
		degRTTHi:     320 * time.Millisecond,
		degRate:      25e6,
		pGoodToDeg:   0.10,
		pDegToGood:   0.45,
		pDegToOutage: 0.02,
		pOutageEnd:   0.6,
	}, seed, dur)
}

// MmWaveDriving models mmWave eMBB under mobility: very high rate with
// line of sight, but blockages cause outages lasting up to seconds,
// during which queued traffic backs up — the source of Fig. 2's
// multi-second eMBB-only latency tail.
func MmWaveDriving(seed int64, dur time.Duration) *Trace {
	return generate(genConfig{
		name:         "5g-mmwave-driving",
		goodRTT:      35 * time.Millisecond,
		goodRTTJit:   10 * time.Millisecond,
		goodRate:     300e6,
		degRTTLo:     60 * time.Millisecond,
		degRTTHi:     200 * time.Millisecond,
		degRate:      30e6,
		pGoodToDeg:   0.08,
		pDegToGood:   0.35,
		pDegToOutage: 0.15,
		pOutageEnd:   0.15,
	}, seed, dur)
}

// URLLC returns the constant URLLC channel the paper emulates: 5 ms
// RTT at 2 Mbps.
func URLLC() *Trace { return Constant("urllc", 5*time.Millisecond, 2e6) }

// WriteCSV encodes the trace as "t_ms,rtt_ms,rate_mbps" rows with a
// header line.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace %s\nt_ms,rtt_ms,rate_mbps\n", t.Name); err != nil {
		return err
	}
	for _, s := range t.Samples {
		_, err := fmt.Fprintf(bw, "%d,%.3f,%.3f\n",
			s.At.Milliseconds(), float64(s.RTT)/float64(time.Millisecond), s.Rate/1e6)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV decodes a trace written by WriteCSV. The name is taken from
// the "# trace" comment when present.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	tr := &Trace{Name: "csv"}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case text == "" || text == "t_ms,rtt_ms,rate_mbps":
			continue
		case strings.HasPrefix(text, "# trace "):
			tr.Name = strings.TrimPrefix(text, "# trace ")
			continue
		case strings.HasPrefix(text, "#"):
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", line, len(fields))
		}
		tms, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time: %w", line, err)
		}
		rtt, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad rtt: %w", line, err)
		}
		rate, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad rate: %w", line, err)
		}
		tr.Samples = append(tr.Samples, Sample{
			At:   time.Duration(tms) * time.Millisecond,
			RTT:  time.Duration(rtt * float64(time.Millisecond)),
			Rate: rate * 1e6,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if len(tr.Samples) == 0 {
		return nil, fmt.Errorf("trace: no samples")
	}
	return tr, nil
}

// Scale returns a copy of t with every rate multiplied by rateFactor
// and every RTT by rttFactor, useful for what-if sweeps over recorded
// conditions.
func (t *Trace) Scale(rttFactor, rateFactor float64) *Trace {
	if rttFactor <= 0 || rateFactor < 0 {
		panic("trace: Scale factors must be positive (rate may be zero-preserving)")
	}
	out := &Trace{Name: t.Name + "-scaled", Samples: make([]Sample, len(t.Samples))}
	for i, s := range t.Samples {
		out.Samples[i] = Sample{
			At:   s.At,
			RTT:  time.Duration(float64(s.RTT) * rttFactor),
			Rate: s.Rate * rateFactor,
		}
	}
	return out
}

// Clip returns the prefix of t covering [0, dur). It panics when dur
// is not positive; the result keeps at least one sample.
func (t *Trace) Clip(dur time.Duration) *Trace {
	if dur <= 0 {
		panic("trace: Clip duration must be positive")
	}
	out := &Trace{Name: t.Name + "-clip"}
	for _, s := range t.Samples {
		if s.At >= dur {
			break
		}
		out.Samples = append(out.Samples, s)
	}
	if len(out.Samples) == 0 && len(t.Samples) > 0 {
		out.Samples = append(out.Samples, t.Samples[0])
	}
	return out
}

// Concat appends u's samples after t (shifting their timestamps by
// t's duration) and returns the combined trace.
func Concat(t, u *Trace) *Trace {
	off := t.Duration()
	out := &Trace{
		Name:    t.Name + "+" + u.Name,
		Samples: append([]Sample(nil), t.Samples...),
	}
	for _, s := range u.Samples {
		s.At += off
		out.Samples = append(out.Samples, s)
	}
	return out
}

// OutageFraction reports the fraction of samples with zero rate.
func (t *Trace) OutageFraction() float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	n := 0
	for _, s := range t.Samples {
		if s.Rate == 0 {
			n++
		}
	}
	return float64(n) / float64(len(t.Samples))
}

// MeanRate reports the average rate over one repetition, counting
// outages as zero.
func (t *Trace) MeanRate() float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range t.Samples {
		sum += s.Rate
	}
	return sum / float64(len(t.Samples))
}

// LowbandWalking models 5G Lowband eMBB with a pedestrian UE — between
// stationary and driving in volatility (DChannel recorded walking
// traces alongside the two the paper's evaluation uses).
func LowbandWalking(seed int64, dur time.Duration) *Trace {
	return generate(genConfig{
		name:         "5g-lowband-walking",
		goodRTT:      52 * time.Millisecond,
		goodRTTJit:   10 * time.Millisecond,
		goodRate:     58e6,
		degRTTLo:     90 * time.Millisecond,
		degRTTHi:     220 * time.Millisecond,
		degRate:      32e6,
		pGoodToDeg:   0.05,
		pDegToGood:   0.5,
		pDegToOutage: 0.01,
		pOutageEnd:   0.7,
	}, seed, dur)
}
