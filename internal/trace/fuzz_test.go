package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// FuzzReadCSV exercises the trace parser with arbitrary input: it must
// never panic, and anything it accepts must round-trip through
// WriteCSV and parse to the same samples.
func FuzzReadCSV(f *testing.F) {
	f.Add("t_ms,rtt_ms,rate_mbps\n0,10,5\n")
	f.Add("# trace x\n0,1,1\n100,2,0\n")
	f.Add("")
	f.Add("0,10")
	f.Add("a,b,c\n")
	f.Add("-5,10,5\n")
	f.Add("0,1e300,1e300\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return // rejected: fine, as long as no panic
		}
		if len(tr.Samples) == 0 {
			t.Fatal("accepted trace with no samples")
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV of accepted trace: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-parse of own output: %v", err)
		}
		if len(back.Samples) != len(tr.Samples) {
			t.Fatalf("round-trip lost samples: %d -> %d", len(tr.Samples), len(back.Samples))
		}
	})
}

// FuzzTraceAt checks that At and NextChange never panic on generated
// traces for arbitrary query times, and that NextChange makes forward
// progress.
func FuzzTraceAt(f *testing.F) {
	f.Add(int64(1), uint32(0))
	f.Add(int64(2), uint32(1_000_000))
	f.Fuzz(func(t *testing.T, seed int64, ms uint32) {
		tr := LowbandDriving(seed, 5*time.Second)
		now := time.Duration(ms) * time.Millisecond
		_ = tr.At(now)
		next := tr.NextChange(now)
		if next <= now {
			t.Fatalf("NextChange(%v) = %v did not advance", now, next)
		}
	})
}
