package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestConstantAt(t *testing.T) {
	tr := Constant("c", 5*time.Millisecond, 2e6)
	for _, at := range []time.Duration{0, time.Second, time.Hour} {
		s := tr.At(at)
		if s.RTT != 5*time.Millisecond || s.Rate != 2e6 {
			t.Fatalf("At(%v) = %+v", at, s)
		}
	}
}

func TestAtEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At on empty trace should panic")
		}
	}()
	(&Trace{Name: "empty"}).At(0)
}

func TestAtSelectsEnclosingSample(t *testing.T) {
	tr := &Trace{Name: "x", Samples: []Sample{
		{At: 0, RTT: 10 * time.Millisecond, Rate: 1e6},
		{At: 100 * time.Millisecond, RTT: 20 * time.Millisecond, Rate: 2e6},
		{At: 200 * time.Millisecond, RTT: 30 * time.Millisecond, Rate: 3e6},
	}}
	cases := []struct {
		at   time.Duration
		want time.Duration
	}{
		{0, 10 * time.Millisecond},
		{99 * time.Millisecond, 10 * time.Millisecond},
		{100 * time.Millisecond, 20 * time.Millisecond},
		{250 * time.Millisecond, 30 * time.Millisecond},
	}
	for _, c := range cases {
		if got := tr.At(c.at).RTT; got != c.want {
			t.Errorf("At(%v).RTT = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestAtWrapsAround(t *testing.T) {
	tr := &Trace{Name: "x", Samples: []Sample{
		{At: 0, RTT: 10 * time.Millisecond, Rate: 1e6},
		{At: 100 * time.Millisecond, RTT: 20 * time.Millisecond, Rate: 2e6},
	}}
	if d := tr.Duration(); d != 200*time.Millisecond {
		t.Fatalf("Duration = %v, want 200ms", d)
	}
	if got := tr.At(210 * time.Millisecond).RTT; got != 10*time.Millisecond {
		t.Fatalf("wrapped At = %v, want first sample", got)
	}
	if got := tr.At(310 * time.Millisecond).RTT; got != 20*time.Millisecond {
		t.Fatalf("wrapped At = %v, want second sample", got)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := LowbandDriving(1, 30*time.Second)
	b := LowbandDriving(1, 30*time.Second)
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("same seed gave different lengths")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a.Samples[i], b.Samples[i])
		}
	}
	c := LowbandDriving(2, 30*time.Second)
	same := true
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different traces")
	}
}

func TestLowbandStationaryCalibration(t *testing.T) {
	tr := LowbandStationary(1, 5*time.Minute)
	mean, p98 := tr.RTTStats()
	if mean < 40*time.Millisecond || mean > 70*time.Millisecond {
		t.Errorf("stationary mean RTT = %v, want ≈50ms", mean)
	}
	if p98 > 150*time.Millisecond {
		t.Errorf("stationary p98 RTT = %v, want modest", p98)
	}
}

func TestLowbandDrivingCalibration(t *testing.T) {
	tr := LowbandDriving(1, 5*time.Minute)
	mean, p98 := tr.RTTStats()
	// DChannel reports p98 ≈ 236 ms under driving; accept a band.
	if p98 < 150*time.Millisecond || p98 > 330*time.Millisecond {
		t.Errorf("driving p98 RTT = %v, want ≈236ms band", p98)
	}
	if mean < 50*time.Millisecond {
		t.Errorf("driving mean RTT = %v, implausibly low", mean)
	}
}

func TestMmWaveDrivingHasOutages(t *testing.T) {
	tr := MmWaveDriving(1, 5*time.Minute)
	outages := 0
	for _, s := range tr.Samples {
		if s.Rate == 0 {
			outages++
		}
	}
	if outages == 0 {
		t.Fatal("mmWave driving must contain outage samples")
	}
	frac := float64(outages) / float64(len(tr.Samples))
	if frac > 0.5 {
		t.Fatalf("outage fraction %.2f too high", frac)
	}
}

func TestGeneratedRTTsPositive(t *testing.T) {
	for _, tr := range []*Trace{
		LowbandStationary(3, time.Minute),
		LowbandDriving(3, time.Minute),
		MmWaveDriving(3, time.Minute),
	} {
		for i, s := range tr.Samples {
			if s.RTT < time.Millisecond {
				t.Errorf("%s sample %d: RTT %v < 1ms", tr.Name, i, s.RTT)
			}
			if s.Rate < 0 {
				t.Errorf("%s sample %d: negative rate", tr.Name, i)
			}
		}
	}
}

func TestURLLCMatchesPaper(t *testing.T) {
	s := URLLC().At(0)
	if s.RTT != 5*time.Millisecond || s.Rate != 2e6 {
		t.Fatalf("URLLC = %+v, want 5ms/2Mbps", s)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := LowbandDriving(7, 10*time.Second)
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name {
		t.Fatalf("name %q, want %q", got.Name, orig.Name)
	}
	if len(got.Samples) != len(orig.Samples) {
		t.Fatalf("len %d, want %d", len(got.Samples), len(orig.Samples))
	}
	for i := range got.Samples {
		if got.Samples[i].At != orig.Samples[i].At {
			t.Fatalf("sample %d time %v, want %v", i, got.Samples[i].At, orig.Samples[i].At)
		}
		// RTT/rate go through decimal formatting; allow microsecond slack.
		drtt := got.Samples[i].RTT - orig.Samples[i].RTT
		if drtt < -time.Microsecond || drtt > time.Microsecond {
			t.Fatalf("sample %d RTT %v, want %v", i, got.Samples[i].RTT, orig.Samples[i].RTT)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",        // no samples
		"1,2\n",   // wrong field count
		"x,2,3\n", // bad time
		"1,x,3\n", // bad rtt
		"1,2,x\n", // bad rate
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadCSV(%q) should fail", in)
		}
	}
}

func TestReadCSVSkipsComments(t *testing.T) {
	in := "# a comment\n# trace named\nt_ms,rtt_ms,rate_mbps\n0,10,5\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "named" || len(tr.Samples) != 1 {
		t.Fatalf("got %+v", tr)
	}
	if tr.Samples[0].RTT != 10*time.Millisecond || tr.Samples[0].Rate != 5e6 {
		t.Fatalf("sample = %+v", tr.Samples[0])
	}
}

// Property: At never panics for generated traces and always returns one
// of the trace's samples.
func TestAtReturnsMemberProperty(t *testing.T) {
	tr := LowbandDriving(5, 20*time.Second)
	members := make(map[Sample]bool, len(tr.Samples))
	for _, s := range tr.Samples {
		members[s] = true
	}
	f := func(ms uint32) bool {
		s := tr.At(time.Duration(ms) * time.Millisecond)
		return members[s]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTraceAt(b *testing.B) {
	tr := LowbandDriving(1, time.Minute)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.At(time.Duration(i) * time.Millisecond)
	}
}

func TestScale(t *testing.T) {
	tr := Constant("c", 10*time.Millisecond, 4e6)
	sc := tr.Scale(2, 0.5)
	s := sc.At(0)
	if s.RTT != 20*time.Millisecond || s.Rate != 2e6 {
		t.Fatalf("scaled sample %+v", s)
	}
	// Original untouched.
	if tr.At(0).RTT != 10*time.Millisecond {
		t.Fatal("Scale mutated the original")
	}
}

func TestScaleValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero rtt factor should panic")
		}
	}()
	Constant("c", time.Millisecond, 1e6).Scale(0, 1)
}

func TestClip(t *testing.T) {
	tr := LowbandDriving(1, 10*time.Second)
	c := tr.Clip(2 * time.Second)
	if c.Duration() > 2100*time.Millisecond {
		t.Fatalf("clip duration %v", c.Duration())
	}
	for _, s := range c.Samples {
		if s.At >= 2*time.Second {
			t.Fatalf("sample at %v beyond clip", s.At)
		}
	}
	// Clipping below one sample still yields a usable trace.
	tiny := tr.Clip(time.Nanosecond)
	if len(tiny.Samples) != 1 {
		t.Fatalf("tiny clip has %d samples", len(tiny.Samples))
	}
}

func TestConcat(t *testing.T) {
	a := Constant("a", 10*time.Millisecond, 1e6)
	b := Constant("b", 20*time.Millisecond, 2e6)
	c := Concat(a, b)
	if c.At(0).RTT != 10*time.Millisecond {
		t.Fatal("first half wrong")
	}
	// a's duration is 1 s (single-sample convention).
	if c.At(1100*time.Millisecond).RTT != 20*time.Millisecond {
		t.Fatal("second half wrong")
	}
}

func TestOutageFractionAndMeanRate(t *testing.T) {
	tr := &Trace{Name: "x", Samples: []Sample{
		{At: 0, RTT: time.Millisecond, Rate: 4e6},
		{At: time.Second, RTT: time.Millisecond, Rate: 0},
	}}
	if got := tr.OutageFraction(); got != 0.5 {
		t.Fatalf("OutageFraction = %v", got)
	}
	if got := tr.MeanRate(); got != 2e6 {
		t.Fatalf("MeanRate = %v", got)
	}
	empty := &Trace{}
	if empty.OutageFraction() != 0 || empty.MeanRate() != 0 {
		t.Fatal("empty trace should report zeros")
	}
}

func TestLowbandWalkingBetweenStationaryAndDriving(t *testing.T) {
	st := LowbandStationary(1, 5*time.Minute)
	wk := LowbandWalking(1, 5*time.Minute)
	dr := LowbandDriving(1, 5*time.Minute)
	_, stP98 := st.RTTStats()
	_, wkP98 := wk.RTTStats()
	_, drP98 := dr.RTTStats()
	if !(stP98 <= wkP98 && wkP98 <= drP98) {
		t.Fatalf("p98 ordering violated: stationary %v, walking %v, driving %v",
			stP98, wkP98, drP98)
	}
}
