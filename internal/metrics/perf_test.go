package metrics

import (
	"math/rand"
	"testing"
)

// TestPercentileCachesSortedState pins the sorted-state cache
// whitebox: querying an order statistic sorts once and marks the
// distribution sorted; Adds that keep the values ordered preserve the
// mark, disordering Adds invalidate it, and the next query restores
// it. Every experiment table leans on this — they read several
// percentiles off each distribution back to back.
func TestPercentileCachesSortedState(t *testing.T) {
	var d Distribution
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		d.Add(r.Float64() * 100)
	}
	if d.sorted {
		t.Fatal("random stream left the distribution marked sorted")
	}
	p95 := d.Percentile(95)
	if !d.sorted {
		t.Fatal("Percentile did not cache the sorted state")
	}
	if again := d.Percentile(95); again != p95 {
		t.Fatalf("repeated query changed: %v then %v", p95, again)
	}

	// Appending at or above the maximum keeps the order, so the cache
	// must survive...
	d.Add(d.Max() + 1)
	if !d.sorted {
		t.Fatal("in-order Add invalidated the sorted cache")
	}
	// ...while an out-of-order Add must invalidate it, and the next
	// query must reflect the new value.
	d.Add(d.Min() - 1)
	if d.sorted {
		t.Fatal("disordering Add left the stale sorted mark")
	}
	if got, want := d.Percentile(0), d.Min(); got != want {
		t.Fatalf("p0 after re-sort = %v, want new minimum %v", got, want)
	}
}

// TestPercentileQueriesAllocFree pins the steady-state cost: once
// sorted, an order-statistic query neither re-sorts nor allocates.
func TestPercentileQueriesAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	var d Distribution
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		d.Add(r.NormFloat64())
	}
	d.Percentile(50) // pay the one sort
	if avg := testing.AllocsPerRun(200, func() {
		_ = d.Percentile(95)
		_ = d.Percentile(99)
		_ = d.Median()
	}); avg != 0 {
		t.Errorf("sorted-state queries allocate %v/op, want 0", avg)
	}
}

// BenchmarkPercentileRepeated is the regression guard for the sorted
// cache: with caching, b.N queries cost O(1) each after one sort; a
// regression to sort-per-call shows up as a ~1000× slowdown at this
// size.
func BenchmarkPercentileRepeated(b *testing.B) {
	var d Distribution
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		d.Add(r.Float64())
	}
	d.Percentile(50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Percentile(99)
	}
}

// BenchmarkPercentileInterleaved measures the honest mixed workload:
// each disordering Add invalidates the cache and the following query
// re-sorts a mostly-sorted slice.
func BenchmarkPercentileInterleaved(b *testing.B) {
	var d Distribution
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10_000; i++ {
		d.Add(r.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Add(r.Float64())
		_ = d.Percentile(95)
	}
}
