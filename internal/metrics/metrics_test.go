package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyDistribution(t *testing.T) {
	var d Distribution
	if d.N() != 0 || d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 || d.Percentile(95) != 0 {
		t.Fatal("empty distribution should report zeros")
	}
	if d.CDF(10) != nil {
		t.Fatal("empty distribution CDF should be nil")
	}
	if d.String() != "n=0" {
		t.Fatalf("String() = %q", d.String())
	}
}

func TestMeanMinMax(t *testing.T) {
	var d Distribution
	for _, v := range []float64{4, 1, 9, 2} {
		d.Add(v)
	}
	if d.N() != 4 {
		t.Fatalf("N = %d, want 4", d.N())
	}
	if d.Mean() != 4 {
		t.Fatalf("Mean = %v, want 4", d.Mean())
	}
	if d.Min() != 1 || d.Max() != 9 {
		t.Fatalf("Min,Max = %v,%v; want 1,9", d.Min(), d.Max())
	}
}

func TestAddAfterSortKeepsOrderStats(t *testing.T) {
	var d Distribution
	d.Add(5)
	_ = d.Median() // forces sort
	d.Add(1)
	if d.Min() != 1 {
		t.Fatalf("Min after post-sort Add = %v, want 1", d.Min())
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var d Distribution
	for v := 1.0; v <= 5; v++ {
		d.Add(v)
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {12.5, 1.5},
	}
	for _, c := range cases {
		if got := d.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingleValue(t *testing.T) {
	var d Distribution
	d.Add(7)
	for _, p := range []float64{0, 50, 100} {
		if got := d.Percentile(p); got != 7 {
			t.Fatalf("Percentile(%v) = %v, want 7", p, got)
		}
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	var d Distribution
	d.Add(1)
	for _, p := range []float64{-1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v) should panic", p)
				}
			}()
			d.Percentile(p)
		}()
	}
}

func TestStdDev(t *testing.T) {
	var d Distribution
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		d.Add(v)
	}
	if got := d.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestStdDevFewSamples(t *testing.T) {
	var d Distribution
	if d.StdDev() != 0 {
		t.Fatal("StdDev of empty should be 0")
	}
	d.Add(3)
	if d.StdDev() != 0 {
		t.Fatal("StdDev of single sample should be 0")
	}
}

func TestAddDurationUsesMilliseconds(t *testing.T) {
	var d Distribution
	d.AddDuration(1500 * time.Microsecond)
	if got := d.Mean(); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("AddDuration stored %v ms, want 1.5", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	var d Distribution
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		d.Add(rng.NormFloat64())
	}
	cdf := d.CDF(50)
	if len(cdf) != 50 {
		t.Fatalf("CDF returned %d points, want 50", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Frac < cdf[i-1].Frac {
			t.Fatalf("CDF not monotone at %d: %+v then %+v", i, cdf[i-1], cdf[i])
		}
	}
	if last := cdf[len(cdf)-1]; last.Frac != 1 {
		t.Fatalf("CDF should end at frac 1, got %v", last.Frac)
	}
}

func TestValuesReturnsSortedCopy(t *testing.T) {
	var d Distribution
	d.Add(3)
	d.Add(1)
	v := d.Values()
	if !sort.Float64sAreSorted(v) {
		t.Fatal("Values not sorted")
	}
	v[0] = 99
	if d.Min() == 99 {
		t.Fatal("Values must return a copy")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var d Distribution
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			d.Add(v)
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := d.Percentile(p1), d.Percentile(p2)
		return v1 <= v2 && v1 >= d.Min() && v2 <= d.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSeriesBuckets(t *testing.T) {
	var ts TimeSeries
	ts.Add(100*time.Millisecond, 2)
	ts.Add(200*time.Millisecond, 4)
	ts.Add(1100*time.Millisecond, 10)
	b := ts.Buckets(time.Second)
	if len(b) != 2 {
		t.Fatalf("got %d buckets, want 2", len(b))
	}
	if b[0].Start != 0 || b[0].N != 2 || b[0].Mean != 3 || b[0].Min != 2 || b[0].Max != 4 {
		t.Fatalf("bucket0 = %+v", b[0])
	}
	if b[1].Start != time.Second || b[1].N != 1 || b[1].Mean != 10 {
		t.Fatalf("bucket1 = %+v", b[1])
	}
}

func TestBucketsPanicOnZeroWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Buckets(0) should panic")
		}
	}()
	var ts TimeSeries
	ts.Buckets(0)
}

func TestTimeSeriesRate(t *testing.T) {
	var ts TimeSeries
	// The first point anchors the interval: its 500 kB arrived before
	// the measured span and must not be counted. 500 kB over 1 second
	// = 4 Mbps.
	ts.Add(0, 500_000)
	ts.Add(time.Second, 500_000)
	if got := Mbps(ts.Rate()); math.Abs(got-4) > 1e-9 {
		t.Fatalf("Rate = %v Mbps, want 4", got)
	}
}

func TestTimeSeriesRateMultiPoint(t *testing.T) {
	var ts TimeSeries
	// Steady 250 kB every 250 ms after the anchor: 1 MB over 1 s
	// regardless of how many interior points record it.
	ts.Add(0, 999_999) // anchor value ignored
	for i := 1; i <= 4; i++ {
		ts.Add(time.Duration(i)*250*time.Millisecond, 250_000)
	}
	if got := Mbps(ts.Rate()); math.Abs(got-8) > 1e-9 {
		t.Fatalf("Rate = %v Mbps, want 8", got)
	}
}

func TestRateDegenerate(t *testing.T) {
	var ts TimeSeries
	if ts.Rate() != 0 {
		t.Fatal("empty series rate should be 0")
	}
	ts.Add(time.Second, 100)
	if ts.Rate() != 0 {
		t.Fatal("single point rate should be 0")
	}
	ts.Add(time.Second, 100)
	if ts.Rate() != 0 {
		t.Fatal("zero-span rate should be 0")
	}
}

func TestFormatCDF(t *testing.T) {
	s := FormatCDF([]CDFPoint{{Value: 1.5, Frac: 0.5}, {Value: 2, Frac: 1}}, "latency_ms")
	if !strings.HasPrefix(s, "latency_ms\tcdf\n") {
		t.Fatalf("missing header: %q", s)
	}
	if !strings.Contains(s, "1.500\t0.5000") || !strings.Contains(s, "2.000\t1.0000") {
		t.Fatalf("rows missing: %q", s)
	}
}

func TestDistributionString(t *testing.T) {
	var d Distribution
	for i := 0; i < 100; i++ {
		d.Add(float64(i))
	}
	s := d.String()
	for _, want := range []string{"n=100", "mean=49.5", "p95="} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

func BenchmarkPercentile(b *testing.B) {
	var d Distribution
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		d.Add(rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Percentile(95)
	}
}

func TestCDFSingleValue(t *testing.T) {
	var d Distribution
	d.Add(42)
	pts := d.CDF(5)
	if len(pts) != 5 {
		t.Fatalf("CDF returned %d points, want 5", len(pts))
	}
	for _, p := range pts {
		if p.Value != 42 || p.Frac != 1 {
			t.Fatalf("single-value CDF point = %+v, want {42 1}", p)
		}
	}
}

func TestCDFDuplicates(t *testing.T) {
	var d Distribution
	for _, v := range []float64{2, 1, 2, 3, 2} {
		d.Add(v)
	}
	pts := d.CDF(5)
	if len(pts) != 5 {
		t.Fatalf("CDF returned %d points, want 5", len(pts))
	}
	if pts[0].Value != 1 || pts[len(pts)-1].Value != 3 {
		t.Fatalf("CDF endpoints = %v..%v, want 1..3", pts[0].Value, pts[len(pts)-1].Value)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].Frac < pts[i-1].Frac {
			t.Fatalf("CDF not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
	if pts[len(pts)-1].Frac != 1 {
		t.Fatalf("CDF final frac = %v, want 1", pts[len(pts)-1].Frac)
	}
}

func TestCDFMorePointsThanValues(t *testing.T) {
	var d Distribution
	d.Add(1)
	d.Add(2)
	pts := d.CDF(10)
	if len(pts) != 10 {
		t.Fatalf("CDF returned %d points, want 10", len(pts))
	}
	if pts[0].Value != 1 || pts[len(pts)-1].Value != 2 {
		t.Fatalf("CDF endpoints = %v..%v, want 1..2", pts[0].Value, pts[len(pts)-1].Value)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].Frac < pts[i-1].Frac {
			t.Fatalf("CDF not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
	if pts[len(pts)-1].Frac != 1 {
		t.Fatalf("CDF final frac = %v, want 1", pts[len(pts)-1].Frac)
	}
}

func TestCDFDegenerate(t *testing.T) {
	var d Distribution
	if d.CDF(10) != nil {
		t.Fatal("empty distribution should yield nil CDF")
	}
	d.Add(1)
	if d.CDF(1) != nil {
		t.Fatal("points < 2 should yield nil CDF")
	}
}
