// Package metrics collects and summarizes measurements produced by
// simulation runs: empirical distributions (means, percentiles, CDFs)
// and time series (per-bucket aggregation), which are the two shapes of
// data the paper's figures and tables report.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// A Distribution accumulates scalar observations and answers order
// statistics over them. The zero value is an empty distribution ready
// for use.
type Distribution struct {
	values []float64
	sorted bool
	sum    float64
	min    float64
	max    float64
}

// Add records one observation. Min and Max are maintained as running
// extrema, and a run of nondecreasing observations keeps the values
// sorted, so monotone series answer order statistics without ever
// paying for a sort.
func (d *Distribution) Add(v float64) {
	if len(d.values) == 0 {
		d.min, d.max = v, v
		d.sorted = true
	} else {
		if v < d.min {
			d.min = v
		}
		if v >= d.max {
			d.max = v // appending at or above the maximum preserves order
		} else {
			d.sorted = false
		}
	}
	d.values = append(d.values, v)
	d.sum += v
}

// Grow ensures capacity for at least n more observations without
// reallocating, for callers that know their sample count up front.
func (d *Distribution) Grow(n int) {
	if n <= 0 || cap(d.values)-len(d.values) >= n {
		return
	}
	grown := make([]float64, len(d.values), len(d.values)+n)
	copy(grown, d.values)
	d.values = grown
}

// AddDuration records a duration observation in milliseconds, the unit
// the paper reports latencies in.
func (d *Distribution) AddDuration(v time.Duration) {
	d.Add(float64(v) / float64(time.Millisecond))
}

// N reports the number of observations.
func (d *Distribution) N() int { return len(d.values) }

// Mean reports the arithmetic mean, or 0 for an empty distribution.
func (d *Distribution) Mean() float64 {
	if len(d.values) == 0 {
		return 0
	}
	return d.sum / float64(len(d.values))
}

// Min reports the smallest observation, or 0 for an empty distribution.
// It is O(1): the extremum is maintained on Add.
func (d *Distribution) Min() float64 {
	if len(d.values) == 0 {
		return 0
	}
	return d.min
}

// Max reports the largest observation, or 0 for an empty distribution.
// It is O(1): the extremum is maintained on Add.
func (d *Distribution) Max() float64 {
	if len(d.values) == 0 {
		return 0
	}
	return d.max
}

// StdDev reports the population standard deviation, or 0 when fewer
// than two observations exist.
func (d *Distribution) StdDev() float64 {
	if len(d.values) < 2 {
		return 0
	}
	mean := d.Mean()
	var ss float64
	for _, v := range d.values {
		dv := v - mean
		ss += dv * dv
	}
	return math.Sqrt(ss / float64(len(d.values)))
}

// Percentile reports the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks. It returns 0 for an empty
// distribution and panics on an out-of-range p.
//
// The sort is cached: the first order statistic after a batch of Adds
// pays O(n log n) once, and every further query until the next
// disordering Add is O(1) on the sorted values (a perf test pins the
// no-resort, no-allocation property). Experiment tables that read
// p50/p95/p99/max off one distribution therefore sort it exactly once.
func (d *Distribution) Percentile(p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of range [0,100]", p))
	}
	if len(d.values) == 0 {
		return 0
	}
	d.sort()
	if len(d.values) == 1 {
		return d.values[0]
	}
	rank := p / 100 * float64(len(d.values)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return d.values[lo]
	}
	frac := rank - float64(lo)
	return d.values[lo]*(1-frac) + d.values[hi]*frac
}

// Median is shorthand for Percentile(50).
func (d *Distribution) Median() float64 { return d.Percentile(50) }

// A CDFPoint is one point of an empirical cumulative distribution:
// Frac of all observations are ≤ Value.
type CDFPoint struct {
	Value float64
	Frac  float64
}

// CDF returns the empirical CDF sampled at up to points evenly spaced
// quantiles (plus the minimum and maximum). It returns nil for an empty
// distribution.
func (d *Distribution) CDF(points int) []CDFPoint {
	if len(d.values) == 0 || points < 2 {
		return nil
	}
	d.sort()
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		frac := float64(i) / float64(points-1)
		idx := int(frac * float64(len(d.values)-1))
		out = append(out, CDFPoint{Value: d.values[idx], Frac: float64(idx+1) / float64(len(d.values))})
	}
	return out
}

// Values returns a sorted copy of all observations.
func (d *Distribution) Values() []float64 {
	d.sort()
	out := make([]float64, len(d.values))
	copy(out, d.values)
	return out
}

func (d *Distribution) sort() {
	if !d.sorted {
		sort.Float64s(d.values)
		d.sorted = true
	}
}

// String summarizes the distribution on one line.
func (d *Distribution) String() string {
	if d.N() == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f",
		d.N(), d.Mean(), d.Percentile(50), d.Percentile(95), d.Percentile(99), d.Max())
}

// A TimePoint is one timestamped observation in a TimeSeries.
type TimePoint struct {
	At    time.Duration
	Value float64
}

// A TimeSeries accumulates timestamped observations in arrival order.
// The zero value is an empty series ready for use.
type TimeSeries struct {
	points []TimePoint
}

// Add records an observation at virtual time at.
func (ts *TimeSeries) Add(at time.Duration, v float64) {
	ts.points = append(ts.points, TimePoint{At: at, Value: v})
}

// Grow ensures capacity for at least n more points without
// reallocating, for callers that know their sample count up front.
func (ts *TimeSeries) Grow(n int) {
	if n <= 0 || cap(ts.points)-len(ts.points) >= n {
		return
	}
	grown := make([]TimePoint, len(ts.points), len(ts.points)+n)
	copy(grown, ts.points)
	ts.points = grown
}

// N reports the number of points.
func (ts *TimeSeries) N() int { return len(ts.points) }

// Points returns the recorded points in arrival order. The returned
// slice aliases the series' storage and must not be modified.
func (ts *TimeSeries) Points() []TimePoint { return ts.points }

// A Bucket aggregates the points of one fixed-width time window.
type Bucket struct {
	Start time.Duration
	N     int
	Mean  float64
	Min   float64
	Max   float64
}

// Buckets aggregates the series into consecutive windows of the given
// width, returning one Bucket per nonempty window in time order.
func (ts *TimeSeries) Buckets(width time.Duration) []Bucket {
	if width <= 0 {
		panic("metrics: nonpositive bucket width")
	}
	byWindow := make(map[int64]*Bucket)
	var keys []int64
	for _, p := range ts.points {
		k := int64(p.At / width)
		b, ok := byWindow[k]
		if !ok {
			b = &Bucket{Start: time.Duration(k) * width, Min: p.Value, Max: p.Value}
			byWindow[k] = b
			keys = append(keys, k)
		}
		b.N++
		b.Mean += p.Value // sum for now; divided below
		if p.Value < b.Min {
			b.Min = p.Value
		}
		if p.Value > b.Max {
			b.Max = p.Value
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Bucket, 0, len(keys))
	for _, k := range keys {
		b := byWindow[k]
		b.Mean /= float64(b.N)
		out = append(out, *b)
	}
	return out
}

// Rate interprets each point's value as a byte count and reports the
// aggregate rate in bits per second between the first and last point.
// The first point anchors the interval and its value is excluded: a
// point's bytes belong to the interval ending at its timestamp, and
// the interval ending at the first point lies outside the span (an
// N-point series covers N-1 intervals). It returns 0 when the series
// spans no time.
func (ts *TimeSeries) Rate() float64 {
	if len(ts.points) < 2 {
		return 0
	}
	span := ts.points[len(ts.points)-1].At - ts.points[0].At
	if span <= 0 {
		return 0
	}
	var bytes float64
	for _, p := range ts.points[1:] {
		bytes += p.Value
	}
	return bytes * 8 / span.Seconds()
}

// FormatCDF renders a CDF as two tab-separated columns (value, frac)
// suitable for plotting, with an optional header naming the value
// column.
func FormatCDF(points []CDFPoint, valueLabel string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\tcdf\n", valueLabel)
	for _, p := range points {
		fmt.Fprintf(&b, "%.3f\t%.4f\n", p.Value, p.Frac)
	}
	return b.String()
}

// Mbps converts a rate in bits per second to megabits per second.
func Mbps(bitsPerSecond float64) float64 { return bitsPerSecond / 1e6 }
