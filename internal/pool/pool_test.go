package pool

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got, err := Map(20, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Map(0) = %v, %v; want nil, nil", got, err)
	}
}

func TestMapReturnsLowestFailingIndex(t *testing.T) {
	sentinel := errors.New("boom")
	// Several jobs fail; the reported index must always be the lowest,
	// for every worker count, even though completion order varies.
	for _, workers := range []int{1, 3, 16} {
		_, err := Map(50, workers, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("job failed: %w", sentinel)
			}
			return i, nil
		})
		var pe *Error
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: error %v is not a *pool.Error", workers, err)
		}
		if pe.Index != 3 {
			t.Fatalf("workers=%d: reported index %d, want 3", workers, pe.Index)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: error chain lost the job error", workers)
		}
	}
}

func TestMapRunsJobsConcurrently(t *testing.T) {
	// Job 0 blocks until job 1 runs: only possible if two workers make
	// progress at once.
	started := make(chan struct{})
	got, err := Map(2, 2, func(i int) (int, error) {
		if i == 0 {
			<-started
		} else {
			close(started)
		}
		return i, nil
	})
	if err != nil || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Map = %v, %v", got, err)
	}
}

func TestMapStopsClaimingPastFailure(t *testing.T) {
	// With one worker the claim order is strictly 0,1,2,...: after the
	// failure at index 2 nothing above it may run.
	var mu sync.Mutex
	ran := map[int]bool{}
	_, err := Map(10, 1, func(i int) (int, error) {
		mu.Lock()
		ran[i] = true
		mu.Unlock()
		if i == 2 {
			return 0, errors.New("stop here")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	for i := 3; i < 10; i++ {
		if ran[i] {
			t.Fatalf("job %d ran after the failure at 2", i)
		}
	}
}

func TestMapProgressReportsEveryCompletion(t *testing.T) {
	// The hook runs under the pool's lock, so across any worker count
	// the observed counts are exactly 1..n in order, while the results
	// stay byte-identical to a hookless Map.
	for _, workers := range []int{1, 4, 32} {
		var seen []int
		got, err := MapProgress(25, workers, func(done int) {
			seen = append(seen, done)
		}, func(i int) (int, error) { return i * 3, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(seen) != 25 {
			t.Fatalf("workers=%d: %d progress calls, want 25", workers, len(seen))
		}
		for i, d := range seen {
			if d != i+1 {
				t.Fatalf("workers=%d: progress call %d reported %d, want %d", workers, i, d, i+1)
			}
		}
		for i, v := range got {
			if v != i*3 {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*3)
			}
		}
	}
}

func TestMapProgressCountsFailedJobs(t *testing.T) {
	// A failing job still completes; the hook must count it, and the
	// error contract is unchanged from Map.
	var calls int
	_, err := MapProgress(6, 1, func(done int) { calls++ }, func(i int) (int, error) {
		if i == 2 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	var pe *Error
	if !errors.As(err, &pe) || pe.Index != 2 {
		t.Fatalf("err = %v, want *Error at index 2", err)
	}
	// One worker claims 0,1,2 and stops past the failure: 3 completions.
	if calls != 3 {
		t.Fatalf("progress calls = %d, want 3", calls)
	}
}

func TestMapRecoversWorkerPanic(t *testing.T) {
	sentinel := errors.New("invariant blew up")
	_, err := Map(8, 4, func(i int) (int, error) {
		if i == 5 {
			panic(sentinel)
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected an error from the panicking job")
	}
	var je *Error
	if !errors.As(err, &je) || je.Index != 5 {
		t.Fatalf("err = %v, want *Error with Index 5", err)
	}
	var pe *Panic
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a *Panic in the chain", err)
	}
	if pe.Value != sentinel {
		t.Fatalf("Panic.Value = %v, want the sentinel", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "pool") {
		t.Fatalf("Panic.Stack missing or unhelpful:\n%s", pe.Stack)
	}
	// The panic value is an error, so errors.Is must reach it through
	// *Error -> *Panic.
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is(err, sentinel) = false through %v", err)
	}
}

func TestMapPanicWithNonErrorValue(t *testing.T) {
	_, err := Map(3, 2, func(i int) (int, error) {
		if i == 1 {
			panic("plain string panic")
		}
		return i, nil
	})
	var pe *Panic
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a *Panic in the chain", err)
	}
	if pe.Unwrap() != nil {
		t.Fatalf("Unwrap of a non-error panic value = %v, want nil", pe.Unwrap())
	}
	if !strings.Contains(err.Error(), "plain string panic") {
		t.Fatalf("err.Error() = %q, want the panic value in the message", err)
	}
}
