// Package pool provides the ordered parallel fan-out primitives behind
// the sweep engine, core.Repeat, and fleet aggregation: run n
// independent jobs across a fixed number of goroutines and either
// return their results in job order (Map) or stream them into an
// index-ordered fold with O(workers) live memory (Reduce), so the
// output (and any aggregation over it) is bit-identical for any worker
// count. The simulation loops the jobs run are single-threaded and
// self-contained, which is what makes this fan-out safe.
package pool

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// An Error reports the failing job with the lowest index. Map's error
// selection is deterministic: whatever order jobs finish in, the
// returned index is the smallest one whose job failed, and every job
// with a smaller index ran to completion successfully.
type Error struct {
	Index int
	Err   error
}

func (e *Error) Error() string { return fmt.Sprintf("job %d: %v", e.Index, e.Err) }

// Unwrap exposes the job's own error to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// A Panic is the error a job that panicked resolves to, wrapped in the
// usual *Error carrying the job index. Capturing the panic inside the
// worker instead of letting it unwind the goroutine matters for two
// reasons: an unrecovered panic on a worker goroutine would kill the
// whole process (not just the failing job), and it would take the
// other in-flight jobs' results with it — where Map's contract is that
// every job below the failing index completes.
type Panic struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the panicking goroutine's stack, captured at recover.
	Stack []byte
}

func (p *Panic) Error() string { return fmt.Sprintf("panic: %v\n%s", p.Value, p.Stack) }

// Unwrap exposes a panic value that is itself an error — an
// *invariant.Violation thrown by Failf, typically — so errors.As can
// reach through *Error and *Panic to the typed value.
func (p *Panic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// Map runs fn(0..n-1) on min(workers, n) goroutines and returns the
// results indexed by job, independent of completion order. workers <= 0
// means GOMAXPROCS. fn must be safe for concurrent calls; each call
// receives a distinct index.
//
// On failure Map stops claiming new jobs past the failing index,
// finishes the jobs below it, and returns a *Error for the lowest
// failing index — the same error a serial left-to-right run would have
// hit first.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return MapProgress(n, workers, nil, fn)
}

// MapProgress is Map with a completion hook: after each job finishes —
// successfully or not — progress is called with the number of jobs
// completed so far. Calls are serialized under the pool's internal lock
// and carry a strictly increasing count, but jobs complete in arbitrary
// order, so the count says nothing about which indices are done.
// progress must be cheap and must not invoke the pool reentrantly; a
// nil progress makes MapProgress exactly Map. The hook observes
// completion, it cannot influence it — results, error selection, and
// job order are byte-identical with and without one.
func MapProgress[T any](n, workers int, progress func(done int), fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	var (
		mu     sync.Mutex
		next   int
		done   int
		errIdx = -1
		jobErr error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= n || (errIdx >= 0 && next > errIdx) {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				v, err := protect(fn, i)

				mu.Lock()
				if err != nil {
					if errIdx < 0 || i < errIdx {
						errIdx, jobErr = i, err
					}
				} else {
					out[i] = v
				}
				done++
				if progress != nil {
					progress(done)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if errIdx >= 0 {
		return nil, &Error{Index: errIdx, Err: jobErr}
	}
	return out, nil
}

// Reduce runs fn(0..n-1) on min(workers, n) goroutines like
// MapProgress, but instead of collecting all n results it streams them
// into fold in strict job-index order: fold(0, v0), fold(1, v1), …,
// each called exactly once, serialized under the pool's internal lock.
// Only results waiting for their turn are buffered, and workers stop
// claiming jobs more than 2×workers ahead of the fold cursor, so live
// memory is O(workers) regardless of n — the property fleet-scale
// aggregation needs where Map's []T would be O(n).
//
// Because the fold order is a function of the job decomposition alone,
// any accumulation inside fold observes the same sequence for any
// worker count. fold must not invoke the pool reentrantly; progress
// (may be nil) behaves exactly as in MapProgress.
//
// Error semantics match Map: on failure every job below the lowest
// failing index completes and is folded, nothing at or above it is
// folded, and the returned *Error carries that lowest index — the same
// error a serial left-to-right run would have hit first.
func Reduce[T any](n, workers int, progress func(done int), fn func(i int) (T, error), fold func(i int, v T)) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	window := 2 * workers
	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		next    int
		cursor  int // lowest job index not yet folded
		done    int
		pending = make(map[int]T, window)
		errIdx  = -1
		jobErr  error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				// Hold back rather than racing ahead of the fold cursor;
				// an error releases the gate so everyone can drain out.
				for next < n && next >= cursor+window && (errIdx < 0 || next <= errIdx) {
					cond.Wait()
				}
				if next >= n || (errIdx >= 0 && next > errIdx) {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				v, err := protect(fn, i)

				mu.Lock()
				if err != nil {
					if errIdx < 0 || i < errIdx {
						errIdx, jobErr = i, err
					}
				} else {
					pending[i] = v
				}
				done++
				if progress != nil {
					progress(done)
				}
				// Fold every contiguously completed job. A failed index
				// never enters pending, so the cursor parks just below it
				// and later results above stay unfolded, as promised.
				for {
					v, ok := pending[cursor]
					if !ok {
						break
					}
					delete(pending, cursor)
					fold(cursor, v)
					cursor++
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if errIdx >= 0 {
		return &Error{Index: errIdx, Err: jobErr}
	}
	return nil
}

// protect runs one job, converting a panic into a *Panic error.
func protect[T any](fn func(i int) (T, error), i int) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &Panic{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}
