package pool

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestReduceFoldsInIndexOrder: for any worker count, fold must see
// exactly the indices 0..n-1, each once, strictly ascending, with the
// job's own result — the same sequence Map + a serial fold would give.
func TestReduceFoldsInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		var got []int
		err := Reduce(50, workers, nil,
			func(i int) (int, error) { return i * i, nil },
			func(i int, v int) {
				if v != i*i {
					t.Fatalf("workers=%d: fold(%d, %d), want value %d", workers, i, v, i*i)
				}
				got = append(got, i)
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: folded %d jobs, want 50", workers, len(got))
		}
		for i, idx := range got {
			if idx != i {
				t.Fatalf("workers=%d: fold order %v not strictly ascending", workers, got)
			}
		}
	}
}

func TestReduceEmpty(t *testing.T) {
	err := Reduce(0, 4,
		nil,
		func(i int) (int, error) { return 0, nil },
		func(i int, v int) { t.Fatal("fold called for an empty job set") })
	if err != nil {
		t.Fatalf("Reduce(0) = %v, want nil", err)
	}
}

// TestReduceErrorSemanticsMatchMap: the lowest failing index is
// reported, everything below it is folded, nothing at or above it is.
func TestReduceErrorSemanticsMatchMap(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 3, 16} {
		var folded []int
		err := Reduce(50, workers, nil,
			func(i int) (int, error) {
				if i%7 == 3 { // fails at 3, 10, 17, ...
					return 0, fmt.Errorf("job failed: %w", sentinel)
				}
				return i, nil
			},
			func(i int, v int) { folded = append(folded, i) })
		var pe *Error
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: error %v is not a *pool.Error", workers, err)
		}
		if pe.Index != 3 {
			t.Fatalf("workers=%d: reported index %d, want 3", workers, pe.Index)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: error chain lost the job error", workers)
		}
		if len(folded) != 3 {
			t.Fatalf("workers=%d: folded %v, want exactly [0 1 2]", workers, folded)
		}
		for i, idx := range folded {
			if idx != i {
				t.Fatalf("workers=%d: folded %v, want [0 1 2]", workers, folded)
			}
		}
	}
}

// TestReducePanicIsolation: a panicking job resolves to the usual
// *Error wrapping *Panic, with the process and the jobs below intact.
func TestReducePanicIsolation(t *testing.T) {
	var folded int
	err := Reduce(10, 4, nil,
		func(i int) (int, error) {
			if i == 5 {
				panic("kaboom")
			}
			return i, nil
		},
		func(i int, v int) { folded++ })
	var pe *Error
	if !errors.As(err, &pe) || pe.Index != 5 {
		t.Fatalf("error %v, want *pool.Error at index 5", err)
	}
	var pp *Panic
	if !errors.As(err, &pp) || pp.Value != "kaboom" {
		t.Fatalf("error %v does not carry the panic value", err)
	}
	if folded != 5 {
		t.Fatalf("folded %d jobs, want the 5 below the panicking index", folded)
	}
}

// TestReduceProgressReachesTotal: the completion hook sees a strictly
// increasing count ending at n, as in MapProgress.
func TestReduceProgressReachesTotal(t *testing.T) {
	last := 0
	err := Reduce(30, 4,
		func(done int) {
			if done != last+1 {
				t.Fatalf("progress jumped %d -> %d", last, done)
			}
			last = done
		},
		func(i int) (int, error) { return i, nil },
		func(i int, v int) {})
	if err != nil || last != 30 {
		t.Fatalf("err=%v last=%d, want nil/30", err, last)
	}
}

// TestReduceWindowBoundsBuffering pins the flat-memory property: a
// worker never claims a job more than 2×workers ahead of the fold
// cursor, so at most O(workers) results are ever buffered — not O(n).
// The folded count only grows, and at claim time the claimed index was
// under cursor+window, so inside the job the gap is at most the window.
func TestReduceWindowBoundsBuffering(t *testing.T) {
	const workers = 4
	const window = 2 * workers
	var folded atomic.Int64
	err := Reduce(500, workers, nil,
		func(i int) (int, error) {
			if gap := int64(i) - folded.Load(); gap > window {
				t.Errorf("job %d claimed %d ahead of the fold cursor (window %d)", i, gap, window)
			}
			return i, nil
		},
		func(i int, v int) { folded.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
}
