package sketch

import (
	"math/rand"
	"testing"
)

// TestObserveAllocFree pins the zero-allocation budget on the hot
// path: fleet-scale runs push one Observe per sample per UE, so any
// per-observation allocation would dominate the aggregation cost.
func TestObserveAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	s := NewDefault()
	vals := [...]float64{0.003, 1, 17.2, 42, 999.5, 1e6, 0, 3e-12}
	i := 0
	if avg := testing.AllocsPerRun(1000, func() {
		s.Observe(vals[i%len(vals)])
		i++
	}); avg != 0 {
		t.Errorf("Observe allocates %v/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		_ = s.Quantile(0.95)
	}); avg != 0 {
		t.Errorf("Quantile allocates %v/op, want 0", avg)
	}
}

// BenchmarkSketchObserve measures the streaming hot path.
func BenchmarkSketchObserve(b *testing.B) {
	s := NewDefault()
	r := rand.New(rand.NewSource(1))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = 1e-3 + 1e5*r.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(vals[i&1023])
	}
}

// BenchmarkSketchMerge measures the per-shard fold cost fleet
// aggregation pays once per job.
func BenchmarkSketchMerge(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	shard := NewDefault()
	for i := 0; i < 10000; i++ {
		shard.Observe(1e-3 + 1e5*r.Float64())
	}
	total := NewDefault()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total.Merge(shard)
	}
}
