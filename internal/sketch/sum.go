package sketch

import (
	"math"
	"math/bits"
)

// This file implements the sketch's exact streaming sum: a fixed-point
// superaccumulator (Kulisch-style) that adds float64 values as exact
// integers, so accumulation is associative and commutative down to the
// last bit. It exists because fleet-scale aggregation partitions one
// observation stream into shards whose count depends on the shard size:
// with an ordinary float64 running sum, (a+b)+(c+d) and ((a+b)+c)+d
// differ in the low bits, so two runs of the same fleet with different
// shard sizes would disagree on the merged mean — the one order-
// dependent piece of state in an otherwise exactly-mergeable sketch.
// The accumulator removes the dependence instead of asking every
// aggregator to fold in a blessed order.
//
// Representation: two unsigned magnitudes (positive and negative
// contributions), each a little-endian base-2^64 fixed-point integer
// with bit 0 worth 2^-sumBias. A finite float64 is mantissa·2^e with
// the mantissa at most 53 bits and e ≥ -1074, so every finite value
// lands exactly in the limb array, and the array has enough headroom
// that 2^64 maximal additions cannot carry off the top. Non-finite
// inputs (and NaN, which Observe's contract excludes but fuzzing may
// probe) are tracked as flags and dominate the reported value.
const (
	// sumLimbs·64 = 2304 bits of fixed point. The largest finite
	// float64 tops out at bit 1024+sumBias ≈ 2112; 2^64 additions add
	// at most 64 bits of carry, still 128 bits below the top.
	sumLimbs = 36
	// sumBias positions bit 0 at 2^-1088, one limb below the smallest
	// subnormal's 2^-1074, so subnormals land at limb 0 with room.
	sumBias = 1088
)

// sumMag is one sign's exact magnitude.
type sumMag struct {
	limbs [sumLimbs]uint64
}

// add accumulates the finite, positive value v exactly.
func (m *sumMag) add(v float64) {
	b := math.Float64bits(v)
	exp := int(b >> 52 & 0x7ff)
	mant := b & (1<<52 - 1)
	var e2 int
	if exp > 0 {
		mant |= 1 << 52
		e2 = exp - 1023 - 52
	} else {
		e2 = -1074 // subnormal: no implicit bit
	}
	p := e2 + sumBias // bit position of the mantissa's LSB; ≥ 14
	limb, off := p>>6, uint(p&63)
	lo := mant << off
	var hi uint64
	if off != 0 {
		hi = mant >> (64 - off)
	}
	var c uint64
	m.limbs[limb], c = bits.Add64(m.limbs[limb], lo, 0)
	m.limbs[limb+1], c = bits.Add64(m.limbs[limb+1], hi, c)
	for i := limb + 2; c != 0; i++ {
		m.limbs[i], c = bits.Add64(m.limbs[i], 0, c)
	}
}

// merge folds o into m: a limb-wise integer addition, exactly
// associative and commutative. m and o may alias (self-merge doubles).
func (m *sumMag) merge(o *sumMag) {
	var c uint64
	for i := range m.limbs {
		m.limbs[i], c = bits.Add64(m.limbs[i], o.limbs[i], c)
	}
	// c is 0 by the headroom argument in the package constants.
}

// cmp orders two magnitudes: -1, 0, or +1.
func (m *sumMag) cmp(o *sumMag) int {
	for i := sumLimbs - 1; i >= 0; i-- {
		switch {
		case m.limbs[i] < o.limbs[i]:
			return -1
		case m.limbs[i] > o.limbs[i]:
			return 1
		}
	}
	return 0
}

// sub sets d = m - o; m must not be below o.
func (m *sumMag) sub(o *sumMag, d *sumMag) {
	var borrow uint64
	for i := range m.limbs {
		d.limbs[i], borrow = bits.Sub64(m.limbs[i], o.limbs[i], borrow)
	}
}

// toFloat rounds the magnitude to float64. The top two nonzero limbs
// carry ≥ 65 significant bits, beyond float64's 53, so truncating
// there costs at most a couple of ULPs — and the result is a pure
// function of the limbs, which is what determinism needs.
func (m *sumMag) toFloat() float64 {
	top := -1
	for i := sumLimbs - 1; i >= 0; i-- {
		if m.limbs[i] != 0 {
			top = i
			break
		}
	}
	if top < 0 {
		return 0
	}
	f := float64(m.limbs[top])
	if top > 0 {
		f = f*0x1p64 + float64(m.limbs[top-1])
		top--
	}
	return math.Ldexp(f, top*64-sumBias)
}

// exactSum is the signed exact accumulator the Sketch embeds: separate
// positive and negative magnitudes plus non-finite flags. All methods
// are allocation-free.
type exactSum struct {
	pos, neg sumMag
	posInf   bool
	negInf   bool
	nan      bool
}

// add accumulates one observation.
func (s *exactSum) add(v float64) {
	switch {
	case v > 0:
		if math.IsInf(v, 1) {
			s.posInf = true
			return
		}
		s.pos.add(v)
	case v < 0:
		if math.IsInf(v, -1) {
			s.negInf = true
			return
		}
		s.neg.add(-v)
	case math.IsNaN(v):
		s.nan = true
	}
	// Exact zero contributes nothing.
}

// merge folds o into s. s and o may alias.
func (s *exactSum) merge(o *exactSum) {
	s.pos.merge(&o.pos)
	s.neg.merge(&o.neg)
	s.posInf = s.posInf || o.posInf
	s.negInf = s.negInf || o.negInf
	s.nan = s.nan || o.nan
}

// value reports the accumulated sum as a float64: the signed magnitude
// difference computed exactly in limb space, then rounded once.
func (s *exactSum) value() float64 {
	switch {
	case s.nan, s.posInf && s.negInf:
		return math.NaN()
	case s.posInf:
		return math.Inf(1)
	case s.negInf:
		return math.Inf(-1)
	}
	var d sumMag
	switch s.pos.cmp(&s.neg) {
	case 1:
		s.pos.sub(&s.neg, &d)
		return d.toFloat()
	case -1:
		s.neg.sub(&s.pos, &d)
		return -d.toFloat()
	default:
		return 0
	}
}
