package sketch

import (
	"bytes"
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// sumCorpus generates a stream that stresses the accumulator: mixed
// signs, magnitudes spread across many decades, exact zeros, and
// subnormals.
func sumCorpus(seed int64, n int) []float64 {
	r := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for i := range vals {
		switch r.Intn(10) {
		case 0:
			vals[i] = 0
		case 1:
			vals[i] = math.Ldexp(float64(1+r.Intn(1<<20)), -1060) // subnormal territory
		case 2:
			vals[i] = -math.Pow(10, float64(r.Intn(40)-20)) * r.Float64()
		default:
			vals[i] = math.Pow(10, float64(r.Intn(40)-20)) * r.Float64()
		}
	}
	return vals
}

// TestExactSumMatchesBigFloat checks the accumulator against math/big
// run at enough precision to be exact for the whole stream: the
// reported value must match the correctly rounded exact sum to within
// a couple of ULPs (toFloat truncates below the top two limbs before
// its single rounding).
func TestExactSumMatchesBigFloat(t *testing.T) {
	for _, seed := range []int64{1, 2, 7} {
		vals := sumCorpus(seed, 2000)
		var acc exactSum
		exact := new(big.Float).SetPrec(3000)
		for _, v := range vals {
			acc.add(v)
			exact.Add(exact, new(big.Float).SetPrec(3000).SetFloat64(v))
		}
		want, _ := exact.Float64()
		got := acc.value()
		if want == 0 {
			if got != 0 {
				t.Fatalf("seed %d: got %v, want exactly 0", seed, got)
			}
			continue
		}
		if rel := math.Abs(got-want) / math.Abs(want); rel > 1e-12 {
			t.Fatalf("seed %d: accumulator %v vs exact %v (rel %.2e)", seed, got, want, rel)
		}
	}
}

// TestExactSumOrderAndGroupingIndependence is the property fleet
// aggregation leans on: any permutation of the stream, sharded at any
// size, accumulates to bit-identical state.
func TestExactSumOrderAndGroupingIndependence(t *testing.T) {
	vals := sumCorpus(42, 1500)
	feed := func(order []int, shardSize int) exactSum {
		var total exactSum
		for start := 0; start < len(order); start += shardSize {
			end := start + shardSize
			if end > len(order) {
				end = len(order)
			}
			var shard exactSum
			for _, i := range order[start:end] {
				shard.add(vals[i])
			}
			total.merge(&shard)
		}
		return total
	}
	ident := make([]int, len(vals))
	for i := range ident {
		ident[i] = i
	}
	want := feed(ident, len(vals))
	r := rand.New(rand.NewSource(99))
	for _, shardSize := range []int{1, 3, 64, 500, len(vals)} {
		perm := r.Perm(len(vals))
		got := feed(perm, shardSize)
		if got != want {
			t.Fatalf("shard size %d over a permutation: accumulator state differs", shardSize)
		}
	}
}

// TestExactSumSpecials pins the non-finite flags: infinities and NaN
// dominate, and opposing infinities are NaN (matching float64
// addition).
func TestExactSumSpecials(t *testing.T) {
	var s exactSum
	s.add(1)
	s.add(math.Inf(1))
	if v := s.value(); !math.IsInf(v, 1) {
		t.Fatalf("sum with +Inf = %v, want +Inf", v)
	}
	s.add(math.Inf(-1))
	if v := s.value(); !math.IsNaN(v) {
		t.Fatalf("sum with +Inf and -Inf = %v, want NaN", v)
	}
	var n exactSum
	n.add(math.NaN())
	if v := n.value(); !math.IsNaN(v) {
		t.Fatalf("sum with NaN = %v, want NaN", v)
	}
	var cancel exactSum
	cancel.add(1e300)
	cancel.add(-1e300)
	cancel.add(5)
	if v := cancel.value(); v != 5 {
		t.Fatalf("1e300 - 1e300 + 5 = %v, want exactly 5 (no catastrophic cancellation)", v)
	}
}

// TestSketchShardSizeInvariance is the tentpole determinism property
// stated at the sketch layer: one observation stream, sharded at any
// size and merged, must produce a sketch byte-identical to the
// single-feed sketch — sum included, with no blessed fold order.
func TestSketchShardSizeInvariance(t *testing.T) {
	vals := sumCorpus(7, 4000)
	single := NewDefault()
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		single.Observe(v)
	}
	want := single.Marshal()
	for _, shards := range []int{1, 2, 7, 16, 100, 999} {
		if got := shardMerge(vals, shards).Marshal(); !bytes.Equal(got, want) {
			t.Fatalf("%d shards: merged sketch differs from single-feed bytes", shards)
		}
	}
	// Reversed fold order over the same shards must also agree.
	parts := make([]*Sketch, 16)
	for i := range parts {
		parts[i] = NewDefault()
	}
	for i, v := range vals {
		parts[i%len(parts)].Observe(v)
	}
	rev := NewDefault()
	for i := len(parts) - 1; i >= 0; i-- {
		rev.Merge(parts[i])
	}
	if !bytes.Equal(rev.Marshal(), want) {
		t.Fatal("reversed fold order changed the merged bytes")
	}
}

// TestMergeSelfMarshalStable pins the self-merge edge found while
// building fleet aggregation: s.Merge(s) must behave exactly like
// merging an identical twin — doubled counts, doubled sum, stable
// marshal — not deadlock, drop state, or double-count lazily.
func TestMergeSelfMarshalStable(t *testing.T) {
	s := NewDefault()
	for _, v := range sumCorpus(3, 500) {
		s.Observe(v)
	}
	twin := NewDefault()
	twin.Merge(s)
	twin.Merge(s) // twin = 2·s via two distinct merges

	s.Merge(s) // self-merge
	if !bytes.Equal(s.Marshal(), twin.Marshal()) {
		t.Fatal("self-merge differs from merging an identical twin")
	}
	if s.N() != 1000 {
		t.Fatalf("self-merge count = %d, want 1000", s.N())
	}
	// Marshal must be repeatable after the self-merge.
	if !bytes.Equal(s.Marshal(), s.Marshal()) {
		t.Fatal("marshal unstable after self-merge")
	}
}

// TestMergeUnderflowOnly pins the underflow-bucket-only edge: sketches
// whose every observation is at or below MinTrackable (zeros,
// negatives) must merge, answer quantiles from the exact minimum, and
// marshal deterministically.
func TestMergeUnderflowOnly(t *testing.T) {
	a, b := NewDefault(), NewDefault()
	for _, v := range []float64{0, -1, -2.5, 0} {
		a.Observe(v)
	}
	for _, v := range []float64{-10, 0} {
		b.Observe(v)
	}
	a.Merge(b)
	if a.N() != 6 {
		t.Fatalf("merged N = %d, want 6", a.N())
	}
	if got := a.Quantile(0.5); got != -10 {
		t.Fatalf("underflow-only median = %v, want exact min -10", got)
	}
	if got, want := a.Sum(), -13.5; got != want {
		t.Fatalf("underflow-only sum = %v, want %v", got, want)
	}
	// All mass is in the low bucket: marshal carries no (index, count)
	// pairs beyond the fixed header.
	if got := len(a.Marshal()); got != 48 {
		t.Fatalf("underflow-only marshal is %d bytes, want the 48-byte header", got)
	}
}

// TestMergeEmptyEdges pins empty-sketch merges in every direction:
// empty into empty, empty into full, full into empty. The first two
// are identities; the last is an exact clone.
func TestMergeEmptyEdges(t *testing.T) {
	full := NewDefault()
	for _, v := range sumCorpus(11, 200) {
		full.Observe(v)
	}
	want := full.Marshal()

	e1, e2 := NewDefault(), NewDefault()
	e1.Merge(e2)
	if e1.N() != 0 || !bytes.Equal(e1.Marshal(), NewDefault().Marshal()) {
		t.Fatal("empty⋅empty is not the empty sketch")
	}
	full.Merge(NewDefault())
	if !bytes.Equal(full.Marshal(), want) {
		t.Fatal("merging an empty sketch changed a full sketch")
	}
	clone := NewDefault()
	clone.Merge(full)
	if !bytes.Equal(clone.Marshal(), want) {
		t.Fatal("merging a full sketch into an empty one is not an exact clone")
	}
}

// TestGroupMergeAndDo covers the group-level fold fleet shards use:
// nil-safety, name union, byte-identical grouping independence, and
// the self-merge special case.
func TestGroupMergeAndDo(t *testing.T) {
	var nilG *Group
	nilG.Merge(NewGroup()) // must not panic
	NewGroup().Merge(nilG) // must not panic
	nilG.Do(func(string, *Sketch) { t.Fatal("nil group Do must not call fn") })

	mk := func(seed int64) *Group {
		g := NewGroup()
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 300; i++ {
			g.Observe("latency_ms", 1+99*r.Float64())
			if i%3 == 0 {
				g.Observe("goodput_mbps", 40+10*r.Float64())
			}
		}
		return g
	}
	marshal := func(g *Group) []byte {
		var b []byte
		g.Do(func(name string, s *Sketch) {
			b = append(b, name...)
			b = append(b, s.Marshal()...)
		})
		return b
	}

	// (a⋅b)⋅c vs a⋅(b⋅c), byte-identical.
	abc1 := NewGroup()
	abc1.Merge(mk(1))
	abc1.Merge(mk(2))
	abc1.Merge(mk(3))
	bc := mk(2)
	bc.Merge(mk(3))
	abc2 := mk(1)
	abc2.Merge(bc)
	if !bytes.Equal(marshal(abc1), marshal(abc2)) {
		t.Fatal("group merge is not grouping-independent")
	}

	// Name union: merging a group with an extra metric creates it.
	extra := NewGroup()
	extra.Observe("stall_ms", 3)
	abc1.Merge(extra)
	var names []string
	abc1.Do(func(name string, s *Sketch) { names = append(names, name) })
	if len(names) != 3 || names[0] != "goodput_mbps" || names[1] != "latency_ms" || names[2] != "stall_ms" {
		t.Fatalf("Do order/union wrong: %v", names)
	}

	// Self-merge doubles every sketch, like the twin construction.
	g := mk(5)
	twin := NewGroup()
	twin.Merge(g)
	twin.Merge(g)
	g.Merge(g)
	if !bytes.Equal(marshal(g), marshal(twin)) {
		t.Fatal("group self-merge differs from merging an identical twin")
	}
}
