// Package sketch provides deterministic, mergeable streaming summaries
// of scalar measurement streams: a log-scale bucketed histogram with a
// bounded relative quantile error plus exact streaming count, sum, min,
// and max. It is the aggregation substrate for fleet-scale runs, where
// buffering every per-UE sample (as metrics.Distribution does) would
// grow memory linearly with the fleet: a Sketch holds a fixed few
// kilobytes no matter how many observations stream through it.
//
// Determinism and mergeability are the design constraints:
//
//   - Observe is allocation-free: the bucket array is sized once at
//     construction and an observation is a handful of float ops plus
//     one counter increment (a budget test pins 0 allocs/op).
//   - All histogram state — bucket counts, the low-bucket count, the
//     observation count — is integral, and min/max are exact extrema.
//     The running sum is a fixed-point superaccumulator (sum.go) that
//     adds float64 observations as exact integers, so even the sum is
//     order-independent. Merge is therefore exactly associative and
//     commutative on the complete state: any grouping of the same
//     observations into shards — any worker count, any shard size —
//     yields byte-identical merged state. (Aggregators like
//     internal/pool and internal/sweep still fold shards in job-index
//     order for worker-count independence of *reported tables*; the
//     sketch no longer depends on it.)
//   - Quantile answers within relative error Alpha of the sample at
//     the queried rank, for samples inside the trackable range
//     [MinTrackable, MaxTrackable]. Samples at or below MinTrackable
//     (zeros and negatives included) collapse into a dedicated low
//     bucket whose quantile estimate is the exact minimum; samples
//     above MaxTrackable clamp into the top bucket and their estimate
//     clamps to the exact maximum. Simulator metrics (millisecond
//     latencies, Mbps rates, event counts) sit comfortably inside the
//     range.
//
// The scheme is the classic log-bucketed quantile sketch (DDSketch,
// HDR histogram): bucket i covers [γ^i, γ^(i+1)) with γ = (1+α)/(1-α),
// and the per-bucket estimate 2γ^(i+1)/(γ+1) is at most a factor
// (γ-1)/(γ+1) = α from any value in the bucket.
package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

const (
	// DefaultAlpha is the default relative quantile accuracy: estimates
	// are within 1% of the true sample value.
	DefaultAlpha = 0.01
	// MinTrackable and MaxTrackable bound the value range resolved by
	// the log buckets. 1e-9 .. 1e12 spans sub-nanosecond durations to
	// terabit rates, 21 decades, which costs ~2.4k buckets at the
	// default accuracy.
	MinTrackable = 1e-9
	MaxTrackable = 1e12
)

// A Sketch is one streaming summary. Construct with New or NewDefault;
// the zero Sketch is not usable (the bucket array must be sized from
// alpha).
type Sketch struct {
	alpha       float64
	gamma       float64
	invLogGamma float64
	base        int // bucket 0 covers [γ^base, γ^(base+1))

	counts []uint64
	low    uint64 // observations ≤ MinTrackable: zeros, negatives, underflow
	count  uint64
	sum    exactSum
	min    float64
	max    float64
}

// New returns an empty sketch with relative accuracy alpha
// (0 < alpha < 1). Two sketches merge only if they share an alpha.
func New(alpha float64) *Sketch {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("sketch: accuracy %v outside (0, 1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	logGamma := math.Log(gamma)
	base := int(math.Floor(math.Log(MinTrackable) / logGamma))
	top := int(math.Floor(math.Log(MaxTrackable) / logGamma))
	return &Sketch{
		alpha:       alpha,
		gamma:       gamma,
		invLogGamma: 1 / logGamma,
		base:        base,
		counts:      make([]uint64, top-base+1),
	}
}

// NewDefault returns an empty sketch at DefaultAlpha accuracy.
func NewDefault() *Sketch { return New(DefaultAlpha) }

// Alpha reports the sketch's relative accuracy.
func (s *Sketch) Alpha() float64 { return s.alpha }

// Observe records one observation. It never allocates: the hot path is
// a log, a floor, and a counter increment. NaN must not be observed.
func (s *Sketch) Observe(v float64) {
	if s.count == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.count++
	s.sum.add(v)
	if !(v > MinTrackable) {
		s.low++
		return
	}
	idx := int(math.Floor(math.Log(v)*s.invLogGamma)) - s.base
	if idx < 0 {
		idx = 0
	} else if idx >= len(s.counts) {
		idx = len(s.counts) - 1
	}
	s.counts[idx]++
}

// ObserveDuration records a duration in milliseconds, the unit the
// paper reports latencies in (matching metrics.Distribution).
func (s *Sketch) ObserveDuration(d time.Duration) {
	s.Observe(float64(d) / float64(time.Millisecond))
}

// N reports the number of observations.
func (s *Sketch) N() uint64 { return s.count }

// Sum reports the sum of all observations: the exact accumulated value
// rounded once to float64, independent of observation order or of how
// the stream was sharded and merged.
func (s *Sketch) Sum() float64 { return s.sum.value() }

// Mean reports the arithmetic mean, or 0 for an empty sketch.
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.Sum() / float64(s.count)
}

// Min reports the exact smallest observation, or 0 for an empty sketch.
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max reports the exact largest observation, or 0 for an empty sketch.
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1): a value within
// relative error Alpha of the sample of rank ⌈q·N⌉ (1-indexed, the
// nearest-rank definition). It returns 0 for an empty sketch and
// panics on an out-of-range q. Estimates clamp into [Min, Max], so
// Quantile(0) and Quantile(1) are exact.
func (s *Sketch) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("sketch: quantile %v out of range [0,1]", q))
	}
	if s.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.count)))
	if target <= 1 {
		return s.min // rank 1 is the smallest sample: exact
	}
	if target >= s.count {
		return s.max // the largest sample: exact
	}
	cum := s.low
	if cum >= target {
		// The rank falls among the below-range observations; the exact
		// minimum is the best (and a conservative) answer.
		return s.min
	}
	for i, n := range s.counts {
		if n == 0 {
			continue
		}
		cum += n
		if cum >= target {
			v := s.bucketValue(i)
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.max // unreachable: counts account for every in-range observation
}

// bucketValue is the minimax estimate for bucket i, which covers
// [γ^(base+i), γ^(base+i+1)): 2Aγ/(γ+1) with A the bucket's lower
// edge, at most a factor α from either edge.
func (s *Sketch) bucketValue(i int) float64 {
	a := math.Pow(s.gamma, float64(s.base+i))
	return 2 * a * s.gamma / (s.gamma + 1)
}

// Merge folds o into s. Every piece of state — bucket counts, the
// observation count, the extrema, and the exact sum — merges
// associatively and commutatively, so any grouping of the same shards
// produces byte-identical merged state. s.Merge(s) is well-defined and
// doubles the sketch. Sketches of different accuracy do not merge:
// that is a call-site bug and panics.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.count == 0 {
		return
	}
	if o.alpha != s.alpha || len(o.counts) != len(s.counts) || o.base != s.base {
		panic(fmt.Sprintf("sketch: merging incompatible layouts (alpha %v vs %v)", s.alpha, o.alpha))
	}
	if s.count == 0 {
		s.min, s.max = o.min, o.max
	} else {
		if o.min < s.min {
			s.min = o.min
		}
		if o.max > s.max {
			s.max = o.max
		}
	}
	s.count += o.count
	s.low += o.low
	s.sum.merge(&o.sum)
	for i, n := range o.counts {
		if n != 0 {
			s.counts[i] += n
		}
	}
}

// Marshal renders the complete sketch state as deterministic bytes:
// count, low, sum, min, max (IEEE bits), then every nonempty bucket as
// an (index, count) pair in index order. Two sketches with identical
// state marshal to identical bytes — the worker-count-invariance tests
// compare these.
func (s *Sketch) Marshal() []byte {
	b := make([]byte, 0, 48+16*8) // header + a few buckets before growth
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	u64(math.Float64bits(s.alpha))
	u64(s.count)
	u64(s.low)
	u64(math.Float64bits(s.Sum()))
	u64(math.Float64bits(s.min))
	u64(math.Float64bits(s.max))
	for i, n := range s.counts {
		if n != 0 {
			u64(uint64(i))
			u64(n)
		}
	}
	return b
}

// A Summary is one named sketch's headline numbers, the shape progress
// surfaces and run reports embed.
type Summary struct {
	Name string
	N    uint64
	Mean float64
	Min  float64
	Max  float64
	P50  float64
	P95  float64
	P99  float64
}

// Summarize renders the sketch's headline numbers under a name.
func (s *Sketch) Summarize(name string) Summary {
	return Summary{
		Name: name, N: s.count,
		Mean: s.Mean(), Min: s.Min(), Max: s.Max(),
		P50: s.Quantile(0.50), P95: s.Quantile(0.95), P99: s.Quantile(0.99),
	}
}

// A Group tracks one sketch per metric name behind a mutex — the live
// aggregation point worker pools feed and progress emitters sample
// concurrently. A nil *Group is the disabled group: Observe is a no-op
// and Snapshot returns nil, so call sites need no enabled-checks.
type Group struct {
	mu     sync.Mutex
	byName map[string]*Sketch
}

// NewGroup returns an empty group at DefaultAlpha accuracy.
func NewGroup() *Group { return &Group{byName: make(map[string]*Sketch)} }

// Observe records v into the named sketch, creating it on first use.
// Safe for concurrent use.
func (g *Group) Observe(name string, v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	s, ok := g.byName[name]
	if !ok {
		s = NewDefault()
		g.byName[name] = s
	}
	s.Observe(v)
	g.mu.Unlock()
}

// Snapshot summarizes every sketch, sorted by name. Safe for
// concurrent use with Observe; the summaries are a consistent
// point-in-time copy per sketch.
func (g *Group) Snapshot() []Summary {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	names := make([]string, 0, len(g.byName))
	for name := range g.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Summary, 0, len(names))
	for _, name := range names {
		out = append(out, g.byName[name].Summarize(name))
	}
	return out
}

// Merge folds every sketch of o into g, creating named sketches in g
// on first sight. It is the group-level shard fold for fleet
// aggregation: like Sketch.Merge it is associative and commutative, so
// any grouping of the same per-shard groups merges to byte-identical
// state. A nil receiver or a nil/empty o is a no-op; g.Merge(g) is
// well-defined and doubles every sketch. Not safe for concurrent use
// with writers to o.
func (g *Group) Merge(o *Group) {
	if g == nil || o == nil {
		return
	}
	if g == o {
		// Self-merge: double each sketch without taking the one lock
		// twice.
		g.mu.Lock()
		for _, s := range g.byName {
			s.Merge(s)
		}
		g.mu.Unlock()
		return
	}
	g.mu.Lock()
	for name, src := range o.byName {
		dst, ok := g.byName[name]
		if !ok {
			dst = New(src.alpha)
			g.byName[name] = dst
		}
		dst.Merge(src)
	}
	g.mu.Unlock()
}

// Do calls fn for every sketch in name order. The sketches are the
// group's own (not copies); the group lock is held for the duration,
// so fn must not call back into g.
func (g *Group) Do(fn func(name string, s *Sketch)) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	names := make([]string, 0, len(g.byName))
	for name := range g.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fn(name, g.byName[name])
	}
}
