package sketch

import (
	"math"
	"math/rand"
	"testing"

	"hvc/internal/metrics"
)

// FuzzSketchMergeVsExact drives the sketch with randomized streams and
// shardings: the merged per-shard sketches must agree exactly with a
// single-feed sketch on every bucket count and extremum, and every
// quantile of the merged sketch must sit within the promised relative
// error of the exact sample at that rank (metrics.Distribution being
// the exact reference). This is the streaming-aggregation contract
// fleet mode will lean on.
func FuzzSketchMergeVsExact(f *testing.F) {
	f.Add(int64(1), uint16(100), uint8(4), uint8(0))
	f.Add(int64(42), uint16(1), uint8(1), uint8(1))
	f.Add(int64(7), uint16(5000), uint8(13), uint8(2))
	f.Add(int64(-9), uint16(0), uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, shards uint8, shape uint8) {
		if shards == 0 {
			shards = 1
		}
		r := rand.New(rand.NewSource(seed))
		gen := func() float64 {
			switch shape % 3 {
			case 0:
				return 1e-3 + 1e6*r.Float64() // wide uniform
			case 1:
				return math.Pow(1-r.Float64(), -1/1.1) // heavy tail
			default:
				if r.Intn(10) == 0 {
					return 0 // low-bucket mass
				}
				return 10 + r.NormFloat64() // tight mode around 10
			}
		}

		single := NewDefault()
		parts := make([]*Sketch, shards)
		for i := range parts {
			parts[i] = NewDefault()
		}
		var d metrics.Distribution
		for i := 0; i < int(n); i++ {
			v := gen()
			if math.IsNaN(v) || v < 0 {
				v = 0
			}
			single.Observe(v)
			parts[i%int(shards)].Observe(v)
			d.Add(v)
		}
		merged := NewDefault()
		for _, p := range parts {
			merged.Merge(p)
		}

		if single.N() != merged.N() || single.low != merged.low {
			t.Fatalf("counts diverge: single %d/%d, merged %d/%d", single.N(), single.low, merged.N(), merged.low)
		}
		if single.Min() != merged.Min() || single.Max() != merged.Max() {
			t.Fatalf("extrema diverge: single [%v,%v], merged [%v,%v]",
				single.Min(), single.Max(), merged.Min(), merged.Max())
		}
		for i := range single.counts {
			if single.counts[i] != merged.counts[i] {
				t.Fatalf("bucket %d: single %d, merged %d", i, single.counts[i], merged.counts[i])
			}
		}
		if n == 0 {
			return
		}
		sorted := d.Values()
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			k := int(math.Ceil(q * float64(len(sorted))))
			if k < 1 {
				k = 1
			}
			exact := sorted[k-1]
			got := merged.Quantile(q)
			if exact <= MinTrackable {
				// Below-range ranks answer the exact minimum.
				if got != merged.Min() {
					t.Fatalf("q=%v: low-bucket rank answered %v, want min %v", q, got, merged.Min())
				}
				continue
			}
			if err := math.Abs(got-exact) / exact; err > DefaultAlpha*(1+1e-9) {
				t.Fatalf("q=%v: sketch %v vs exact %v (relative error %.5f)", q, got, exact, err)
			}
		}
	})
}
