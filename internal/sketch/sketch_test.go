package sketch

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"

	"hvc/internal/metrics"
)

// sample generators for the agreement tests: uniform, bimodal, and
// heavy-tailed inputs exercise dense buckets, widely separated modes,
// and the sparse upper decades respectively.
var generators = []struct {
	name string
	gen  func(r *rand.Rand) float64
}{
	{"uniform", func(r *rand.Rand) float64 { return 1 + 99*r.Float64() }},
	{"bimodal", func(r *rand.Rand) float64 {
		if r.Intn(2) == 0 {
			return 5 + r.Float64()
		}
		return 5000 + 100*r.Float64()
	}},
	{"heavy-tail", func(r *rand.Rand) float64 {
		// Pareto with shape 1.2: a long upper tail across decades.
		return math.Pow(1-r.Float64(), -1/1.2)
	}},
}

// exactRank is the nearest-rank sample Quantile promises to
// approximate: the ⌈q·n⌉-th smallest observation (1-indexed).
func exactRank(sorted []float64, q float64) float64 {
	k := int(math.Ceil(q * float64(len(sorted))))
	if k < 1 {
		k = 1
	}
	return sorted[k-1]
}

// TestQuantileAgreesWithDistribution is the exact-vs-sketch agreement
// gate: across input shapes and sizes, every sketch quantile must be
// within the promised relative error of the exact sample at that rank,
// as computed by metrics.Distribution over the same stream.
func TestQuantileAgreesWithDistribution(t *testing.T) {
	quantiles := []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
	for _, g := range generators {
		for _, n := range []int{1, 2, 17, 1000, 20000} {
			r := rand.New(rand.NewSource(int64(n)))
			s := NewDefault()
			var d metrics.Distribution
			for i := 0; i < n; i++ {
				v := g.gen(r)
				s.Observe(v)
				d.Add(v)
			}
			if int(s.N()) != d.N() {
				t.Fatalf("%s n=%d: sketch N=%d, distribution N=%d", g.name, n, s.N(), d.N())
			}
			if s.Min() != d.Min() || s.Max() != d.Max() {
				t.Fatalf("%s n=%d: extrema differ: sketch [%v,%v] exact [%v,%v]",
					g.name, n, s.Min(), s.Max(), d.Min(), d.Max())
			}
			if exact := d.Mean(); math.Abs(s.Mean()-exact) > 1e-9*math.Abs(exact) {
				t.Fatalf("%s n=%d: mean %v, want %v (exact streaming sum)", g.name, n, s.Mean(), exact)
			}
			sorted := d.Values()
			for _, q := range quantiles {
				exact := exactRank(sorted, q)
				got := s.Quantile(q)
				if err := math.Abs(got-exact) / exact; err > DefaultAlpha*(1+1e-9) {
					t.Errorf("%s n=%d q=%v: sketch %v vs exact %v (relative error %.4f > %.4f)",
						g.name, n, q, got, exact, err, DefaultAlpha)
				}
			}
		}
	}
}

// TestQuantileEdges pins the exactness of the endpoints and the
// empty/low-bucket behaviour.
func TestQuantileEdges(t *testing.T) {
	s := NewDefault()
	if s.Quantile(0.5) != 0 || s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sketch must answer zeros")
	}
	for _, v := range []float64{42, 0, -3, 7, 42} {
		s.Observe(v)
	}
	if got := s.Quantile(0); got != -3 {
		t.Errorf("Quantile(0) = %v, want exact min -3", got)
	}
	if got := s.Quantile(1); got != 42 {
		t.Errorf("Quantile(1) = %v, want exact max 42", got)
	}
	// Ranks 1 and 2 of 5 fall among the below-range observations
	// (0 and -3); the sketch answers the exact minimum for them.
	if got := s.Quantile(0.2); got != -3 {
		t.Errorf("Quantile(0.2) = %v, want min -3 for a low-bucket rank", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Quantile(1.5) should panic")
			}
		}()
		s.Quantile(1.5)
	}()
}

func TestObserveDuration(t *testing.T) {
	s := NewDefault()
	s.ObserveDuration(250 * time.Millisecond)
	if got := s.Max(); got != 250 {
		t.Fatalf("ObserveDuration(250ms) recorded %v, want 250 (ms)", got)
	}
}

// shardMerge splits values into per-job shards (as a fleet run would),
// then folds the shard sketches in shard order.
func shardMerge(values []float64, shards int) *Sketch {
	parts := make([]*Sketch, shards)
	for i := range parts {
		parts[i] = NewDefault()
	}
	for i, v := range values {
		parts[i%shards].Observe(v)
	}
	total := NewDefault()
	for _, p := range parts {
		total.Merge(p)
	}
	return total
}

// TestMergeCommutativeAndAssociative: the complete state — bucket
// counts, low counts, the observation count, the extrema, and the
// exact sum — must be order- and grouping-independent: a⋅b vs b⋅a and
// (a⋅b)⋅c vs a⋅(b⋅c) must both be byte-identical.
func TestMergeCommutativeAndAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	mk := func(n int) *Sketch {
		s := NewDefault()
		for i := 0; i < n; i++ {
			s.Observe(math.Pow(1-r.Float64(), -1/1.5))
		}
		return s
	}
	clone := func(s *Sketch) *Sketch {
		c := NewDefault()
		c.Merge(s) // 0+sum is exact, so a clone's state is byte-identical
		return c
	}
	a, b, c := mk(100), mk(57), mk(3)

	ab := clone(a)
	ab.Merge(b)
	ba := clone(b)
	ba.Merge(a)
	if !bytes.Equal(ab.Marshal(), ba.Marshal()) {
		t.Error("a⋅b and b⋅a differ: Merge is not commutative")
	}

	abc1 := clone(ab)
	abc1.Merge(c)
	bc := clone(b)
	bc.Merge(c)
	abc2 := clone(a)
	abc2.Merge(bc)
	if abc1.count != abc2.count || abc1.low != abc2.low ||
		abc1.min != abc2.min || abc1.max != abc2.max {
		t.Error("(a⋅b)⋅c and a⋅(b⋅c) differ on integral state")
	}
	for i := range abc1.counts {
		if abc1.counts[i] != abc2.counts[i] {
			t.Fatalf("bucket %d differs across groupings: %d vs %d", i, abc1.counts[i], abc2.counts[i])
		}
	}
	if abc1.Sum() != abc2.Sum() {
		t.Errorf("sum differs across groupings: %v vs %v (exact accumulator)", abc1.Sum(), abc2.Sum())
	}
	if !bytes.Equal(abc1.Marshal(), abc2.Marshal()) {
		t.Error("(a⋅b)⋅c and a⋅(b⋅c) are not byte-identical")
	}

	// Merging an empty or nil sketch is the identity.
	id := clone(a)
	id.Merge(NewDefault())
	id.Merge(nil)
	if !bytes.Equal(id.Marshal(), clone(a).Marshal()) {
		t.Error("merging an empty sketch changed state")
	}
}

// TestMergeByteIdenticalAcrossWorkerCounts is the fleet-mode substrate
// property: per-job shards folded in job order produce byte-identical
// complete state (sum included) no matter how many workers computed
// the shards — because the shard contents and the fold order are both
// functions of the job decomposition alone.
func TestMergeByteIdenticalAcrossWorkerCounts(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	values := make([]float64, 5000)
	for i := range values {
		values[i] = math.Pow(1-r.Float64(), -1/1.3)
	}
	const jobs = 16
	want := shardMerge(values, jobs).Marshal()
	// Recompute the same per-job shards under different simulated
	// worker counts: workers change nothing about shard contents or
	// fold order, so the bytes must match exactly.
	for trial := 0; trial < 4; trial++ {
		if got := shardMerge(values, jobs).Marshal(); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: merged sketch bytes differ", trial)
		}
	}
	// And a different sharding of the same stream still agrees on all
	// integral state with the single-feed sketch.
	single := NewDefault()
	for _, v := range values {
		single.Observe(v)
	}
	merged := shardMerge(values, 7)
	if single.count != merged.count || single.min != merged.min || single.max != merged.max {
		t.Fatal("sharded merge lost observations or extrema")
	}
	for i := range single.counts {
		if single.counts[i] != merged.counts[i] {
			t.Fatalf("bucket %d: single-feed %d vs merged %d", i, single.counts[i], merged.counts[i])
		}
	}
}

func TestMergeRejectsMismatchedAccuracy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging sketches of different alpha should panic")
		}
	}()
	a, b := New(0.01), New(0.02)
	b.Observe(1)
	a.Merge(b)
}

func TestNewRejectsBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) should panic", alpha)
				}
			}()
			New(alpha)
		}()
	}
}

func TestGroup(t *testing.T) {
	var nilGroup *Group
	nilGroup.Observe("x", 1) // must not panic
	if nilGroup.Snapshot() != nil {
		t.Error("nil group snapshot should be nil")
	}

	g := NewGroup()
	for i := 0; i < 100; i++ {
		g.Observe("latency_ms", float64(i+1))
		g.Observe("goodput_mbps", 50)
	}
	snap := g.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(snap))
	}
	if snap[0].Name != "goodput_mbps" || snap[1].Name != "latency_ms" {
		t.Fatalf("snapshot not sorted by name: %v, %v", snap[0].Name, snap[1].Name)
	}
	if snap[0].P50 != 50 || snap[0].N != 100 {
		t.Errorf("goodput p50=%v n=%d, want 50/100", snap[0].P50, snap[0].N)
	}
	lat := snap[1]
	if lat.Min != 1 || lat.Max != 100 || lat.N != 100 {
		t.Errorf("latency summary %+v lost extrema or count", lat)
	}
	if err := math.Abs(lat.P50-50) / 50; err > DefaultAlpha*(1+1e-9) {
		t.Errorf("latency p50 = %v, want within %.2f%% of 50", lat.P50, 100*DefaultAlpha)
	}
}
