package capture

import (
	"strings"
	"testing"
	"time"

	"hvc/internal/channel"
	"hvc/internal/packet"
	"hvc/internal/sim"
)

// world builds an eMBB+URLLC group with discarding sinks and a driver
// that can push raw packets.
func world(seed int64) (*sim.Loop, *channel.Group) {
	loop := sim.NewLoop(seed)
	e, u := channel.EMBBFixed(loop), channel.URLLC(loop)
	for _, c := range []*channel.Channel{e, u} {
		c.SetSink(channel.A, func(*packet.Packet) {})
		c.SetSink(channel.B, func(*packet.Packet) {})
	}
	return loop, channel.NewGroup(e, u)
}

func TestSamplerRecordsQueueAndThroughput(t *testing.T) {
	loop, g := world(1)
	s := NewSampler(loop, g, 10*time.Millisecond)
	urllc := g.Get(channel.NameURLLC)
	// Saturate URLLC's A-side for half a second.
	for i := 0; i < 100; i++ {
		i := i
		loop.At(time.Duration(i)*5*time.Millisecond, func() {
			urllc.Send(channel.A, &packet.Packet{ID: uint64(i), Size: 1200})
		})
	}
	loop.RunUntil(time.Second)
	s.Stop()

	q := s.Queue(channel.NameURLLC, channel.A)
	if q.N() == 0 {
		t.Fatal("no queue samples")
	}
	peak := 0.0
	for _, p := range q.Points() {
		if p.Value > peak {
			peak = p.Value
		}
	}
	if peak == 0 {
		t.Fatal("URLLC queue never observed nonempty under saturation")
	}
	// ~2 Mbps over the busy window; mean over 1 s window lower but > 0.
	if rate := s.MeanRateMbps(channel.NameURLLC, channel.A); rate <= 0 || rate > 2.5 {
		t.Fatalf("URLLC mean rate %.2f Mbps implausible", rate)
	}
	// The idle eMBB side saw nothing.
	if rate := s.MeanRateMbps(channel.NameEMBB, channel.A); rate != 0 {
		t.Fatalf("idle eMBB rate %.2f, want 0", rate)
	}
}

func TestSamplerStopHaltsSampling(t *testing.T) {
	loop, g := world(2)
	s := NewSampler(loop, g, 10*time.Millisecond)
	loop.RunUntil(100 * time.Millisecond)
	s.Stop()
	n := s.Queue(channel.NameEMBB, channel.A).N()
	loop.RunUntil(500 * time.Millisecond)
	if got := s.Queue(channel.NameEMBB, channel.A).N(); got != n {
		t.Fatalf("sampling continued after Stop: %d -> %d", n, got)
	}
	if loop.Pending() != 0 {
		t.Fatalf("%d events pending after Stop (timer leak)", loop.Pending())
	}
}

func TestSamplerDropsSeries(t *testing.T) {
	loop, g := world(3)
	s := NewSampler(loop, g, 10*time.Millisecond)
	urllc := g.Get(channel.NameURLLC)
	// Overwhelm the 64 kB URLLC queue instantly.
	for i := 0; i < 100; i++ {
		urllc.Send(channel.A, &packet.Packet{ID: uint64(i), Size: 1400})
	}
	loop.RunUntil(200 * time.Millisecond)
	s.Stop()
	var drops float64
	for _, p := range s.Drops(channel.NameURLLC, channel.A).Points() {
		drops += p.Value
	}
	if drops == 0 {
		t.Fatal("queue overflow produced no drop samples")
	}
}

func TestSamplerCSV(t *testing.T) {
	loop, g := world(4)
	s := NewSampler(loop, g, 50*time.Millisecond)
	loop.RunUntil(200 * time.Millisecond)
	s.Stop()
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "t_ms,channel,side,queue_bytes,delivered_bytes,drops\n") {
		t.Fatalf("missing header: %q", out[:60])
	}
	for _, want := range []string{"embb,A", "embb,B", "urllc,A", "urllc,B"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %s rows", want)
		}
	}
}

func TestSamplerUnknownChannelNil(t *testing.T) {
	loop, g := world(5)
	s := NewSampler(loop, g, 10*time.Millisecond)
	defer s.Stop()
	if s.Queue("nope", channel.A) != nil || s.Throughput("nope", channel.B) != nil {
		t.Fatal("unknown channel should yield nil series")
	}
	if s.MeanRateMbps("nope", channel.A) != 0 {
		t.Fatal("unknown channel rate should be 0")
	}
}

func TestSamplerValidation(t *testing.T) {
	loop, g := world(6)
	defer func() {
		if recover() == nil {
			t.Error("zero interval should panic")
		}
	}()
	NewSampler(loop, g, 0)
}

// TestSamplerCSVGolden pins WriteCSV's exact output for a small
// deterministic scenario: one 1000-byte packet into URLLC's A side at
// t=0, sampled every 50 ms for 200 ms. Row order is group order
// (embb, urllc) then side (A, B) then time; any format or ordering
// change must update this golden.
func TestSamplerCSVGolden(t *testing.T) {
	loop, g := world(7)
	s := NewSampler(loop, g, 50*time.Millisecond)
	urllc := g.Get(channel.NameURLLC)
	loop.At(0, func() { urllc.Send(channel.A, &packet.Packet{ID: 1, Size: 1000}) })
	loop.RunUntil(200 * time.Millisecond)
	s.Stop()

	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	const golden = `t_ms,channel,side,queue_bytes,delivered_bytes,drops
50,embb,A,0,0,0
100,embb,A,0,0,0
150,embb,A,0,0,0
200,embb,A,0,0,0
50,embb,B,0,0,0
100,embb,B,0,0,0
150,embb,B,0,0,0
200,embb,B,0,0,0
50,urllc,A,0,1000,0
100,urllc,A,0,0,0
150,urllc,A,0,0,0
200,urllc,A,0,0,0
50,urllc,B,0,0,0
100,urllc,B,0,0,0
150,urllc,B,0,0,0
200,urllc,B,0,0,0
`
	if got := sb.String(); got != golden {
		t.Fatalf("WriteCSV output drifted from golden:\ngot:\n%s\nwant:\n%s", got, golden)
	}
}
