// Package capture records per-channel time series — queue occupancy,
// delivered throughput, drops — by sampling a channel group on a fixed
// virtual-time cadence. It is the observability companion to the
// experiment runners: Fig. 1b-style plots of what each channel was
// doing over a run come from a Sampler, with no instrumentation hooks
// needed in the data path.
package capture

import (
	"fmt"
	"io"
	"time"

	"hvc/internal/channel"
	"hvc/internal/metrics"
	"hvc/internal/netem"
	"hvc/internal/sim"
)

// A Sampler periodically snapshots every channel of a group from both
// sides. Create one with NewSampler; it samples until Stop or the end
// of the simulation.
type Sampler struct {
	loop  *sim.Loop
	group *channel.Group
	every time.Duration

	timer    sim.Timer
	sampleFn func() // one closure, re-armed every interval
	stopped  bool

	queues map[key]*metrics.TimeSeries
	thru   map[key]*metrics.TimeSeries
	drops  map[key]*metrics.TimeSeries
	last   map[key]netem.Stats
}

type key struct {
	ch   string
	side channel.Side
}

// NewSampler starts sampling g every interval. Interval must be
// positive; sampling begins one interval from now.
func NewSampler(loop *sim.Loop, g *channel.Group, every time.Duration) *Sampler {
	if every <= 0 {
		panic("capture: nonpositive sampling interval")
	}
	s := &Sampler{
		loop:   loop,
		group:  g,
		every:  every,
		queues: make(map[key]*metrics.TimeSeries),
		thru:   make(map[key]*metrics.TimeSeries),
		drops:  make(map[key]*metrics.TimeSeries),
		last:   make(map[key]netem.Stats),
	}
	for _, ch := range g.All() {
		for _, side := range []channel.Side{channel.A, channel.B} {
			k := key{ch.Name(), side}
			s.queues[k] = &metrics.TimeSeries{}
			s.thru[k] = &metrics.TimeSeries{}
			s.drops[k] = &metrics.TimeSeries{}
		}
	}
	s.sampleFn = s.sample
	s.arm()
	return s
}

func (s *Sampler) arm() {
	s.timer = s.loop.After(s.every, s.sampleFn)
}

func (s *Sampler) sample() {
	if s.stopped {
		return
	}
	now := s.loop.Now()
	for _, ch := range s.group.All() {
		for _, side := range []channel.Side{channel.A, channel.B} {
			k := key{ch.Name(), side}
			s.queues[k].Add(now, float64(ch.QueuedBytes(side)))
			st := ch.Stats(side)
			prev := s.last[k]
			s.thru[k].Add(now, float64(st.BytesDelivered-prev.BytesDelivered))
			s.drops[k].Add(now, float64(st.DroppedQueue+st.DroppedRandom-prev.DroppedQueue-prev.DroppedRandom))
			s.last[k] = st
		}
	}
	s.arm()
}

// Stop ends sampling. Recorded series remain readable.
func (s *Sampler) Stop() {
	s.stopped = true
	s.timer.Stop()
}

// Queue returns the queue-occupancy series (bytes) for a channel side,
// or nil for an unknown channel.
func (s *Sampler) Queue(ch string, side channel.Side) *metrics.TimeSeries {
	return s.queues[key{ch, side}]
}

// Throughput returns the per-interval delivered-bytes series for a
// channel side, or nil for an unknown channel. Dividing a point by the
// sampling interval gives the instantaneous rate.
func (s *Sampler) Throughput(ch string, side channel.Side) *metrics.TimeSeries {
	return s.thru[key{ch, side}]
}

// Drops returns the per-interval dropped-packets series for a channel
// side, or nil for an unknown channel.
func (s *Sampler) Drops(ch string, side channel.Side) *metrics.TimeSeries {
	return s.drops[key{ch, side}]
}

// MeanRateMbps reports a channel side's average delivered rate over
// the whole sampled window, in Mbps.
func (s *Sampler) MeanRateMbps(ch string, side channel.Side) float64 {
	ts := s.thru[key{ch, side}]
	if ts == nil || ts.N() == 0 {
		return 0
	}
	var bytes float64
	for _, p := range ts.Points() {
		bytes += p.Value
	}
	span := time.Duration(ts.N()) * s.every
	return metrics.Mbps(bytes * 8 / span.Seconds())
}

// WriteCSV emits all series as long-form CSV:
// t_ms,channel,side,queue_bytes,delivered_bytes,drops.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t_ms,channel,side,queue_bytes,delivered_bytes,drops"); err != nil {
		return err
	}
	for _, ch := range s.group.All() {
		for _, side := range []channel.Side{channel.A, channel.B} {
			k := key{ch.Name(), side}
			q, d, dr := s.queues[k].Points(), s.thru[k].Points(), s.drops[k].Points()
			for i := range q {
				_, err := fmt.Fprintf(w, "%d,%s,%s,%.0f,%.0f,%.0f\n",
					q[i].At.Milliseconds(), ch.Name(), side, q[i].Value, d[i].Value, dr[i].Value)
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}
