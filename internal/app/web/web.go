// Package web implements the paper's web-browsing workload (§3.3,
// Table 1): page loads measured by the onLoad event over an HTTP/2-like
// multiplexed transport, plus the two background flows — one
// continuously uploading 5 kB JSON objects and one downloading 10 kB
// objects — that compete with the page for the constrained low-latency
// channel.
//
// The paper replayed 30 recorded Hispar pages through Mahimahi with a
// Chromium client; neither the recordings nor a browser are available
// here, so pages are synthetic dependency DAGs drawn from size and
// fan-out distributions typical of landing and internal pages (see
// DESIGN.md §1). What Table 1 measures — the interaction of many small
// dependent fetches with steering and background queue build-up — is
// preserved.
package web

import (
	"fmt"
	"math/rand"
	"time"

	"hvc/internal/packet"
	"hvc/internal/telemetry"
	"hvc/internal/transport"
)

// Kind classifies a page object; kinds differ in size range and in
// whether they trigger further fetches.
type Kind uint8

const (
	// HTML is the root document.
	HTML Kind = iota
	// Script is render-blocking JavaScript that may fetch children.
	Script
	// Stylesheet may fetch fonts and images.
	Stylesheet
	// Image is a leaf resource.
	Image
	// JSON is a small API response (also what background flows move).
	JSON
)

// An Object is one fetchable resource. Children become fetchable once
// the object has fully arrived and its parse delay has elapsed.
type Object struct {
	ID         int
	Kind       Kind
	Size       int
	ParseDelay time.Duration
	Children   []*Object
}

// A Page is one synthetic web page: a dependency DAG rooted at the
// HTML document.
type Page struct {
	Name    string
	Landing bool
	Root    *Object
}

// Objects counts all resources on the page.
func (p *Page) Objects() int { return countObjects(p.Root) }

func countObjects(o *Object) int {
	n := 1
	for _, c := range o.Children {
		n += countObjects(c)
	}
	return n
}

// TotalBytes sums all resource sizes.
func (p *Page) TotalBytes() int { return sumBytes(p.Root) }

func sumBytes(o *Object) int {
	n := o.Size
	for _, c := range o.Children {
		n += sumBytes(c)
	}
	return n
}

// RequestBytes is the size of one HTTP request message.
const RequestBytes = 400

// KindPriority maps an object kind to the message priority a
// priority-aware browser declares: render-blocking resources (HTML,
// stylesheets, scripts) outrank images and background JSON. This is
// the web-side use of the paper's message-importance interface.
func KindPriority(k Kind) packet.Priority {
	switch k {
	case HTML:
		return 0
	case Stylesheet, Script:
		return 1
	case JSON:
		return 2
	default: // images
		return 3
	}
}

// GenerateCorpus returns n synthetic pages, alternating landing and
// internal pages, drawn deterministically from seed. The same seed
// yields the identical corpus, so policies are compared on identical
// workloads.
func GenerateCorpus(seed int64, n int) []*Page {
	rng := rand.New(rand.NewSource(seed))
	pages := make([]*Page, 0, n)
	for i := 0; i < n; i++ {
		landing := i%2 == 0
		pages = append(pages, generatePage(rng, i, landing))
	}
	return pages
}

// size draws a size in [lo, hi] with a mild heavy tail.
func size(rng *rand.Rand, lo, hi int) int {
	f := rng.Float64()
	f = f * f // bias toward the low end, occasional large objects
	return lo + int(f*float64(hi-lo))
}

func generatePage(rng *rand.Rand, i int, landing bool) *Page {
	next := 0
	newObj := func(k Kind, sz int, parse time.Duration) *Object {
		next++
		return &Object{ID: next, Kind: k, Size: sz, ParseDelay: parse}
	}

	// Parse and script-execution delays reflect a mobile browser, the
	// client the paper measured (Chromium on a phone-class device).
	var fanout, rootLo, rootHi int
	if landing {
		fanout, rootLo, rootHi = 14+rng.Intn(14), 50_000, 140_000
	} else {
		fanout, rootLo, rootHi = 8+rng.Intn(10), 25_000, 80_000
	}
	root := newObj(HTML, size(rng, rootLo, rootHi), 80*time.Millisecond)

	for j := 0; j < fanout; j++ {
		var child *Object
		switch rng.Intn(10) {
		case 0, 1, 2: // scripts
			child = newObj(Script, size(rng, 20_000, 180_000), 45*time.Millisecond)
		case 3, 4: // stylesheets
			child = newObj(Stylesheet, size(rng, 8_000, 80_000), 15*time.Millisecond)
		case 5: // API call
			child = newObj(JSON, size(rng, 1_000, 20_000), 0)
		default: // images
			child = newObj(Image, size(rng, 8_000, 350_000), 0)
		}
		// Scripts and stylesheets pull second-level resources; some
		// scripts (tag managers, bundles) pull a third level.
		if child.Kind == Script || child.Kind == Stylesheet {
			for k, kn := 0, rng.Intn(5); k < kn; k++ {
				switch {
				case rng.Intn(4) == 0:
					child.Children = append(child.Children,
						newObj(JSON, size(rng, 1_000, 15_000), 0))
				case child.Kind == Script && rng.Intn(3) == 0:
					sub := newObj(Script, size(rng, 15_000, 90_000), 25*time.Millisecond)
					for m, mn := 0, rng.Intn(3); m < mn; m++ {
						sub.Children = append(sub.Children,
							newObj(Image, size(rng, 5_000, 120_000), 0))
					}
					child.Children = append(child.Children, sub)
				default:
					child.Children = append(child.Children,
						newObj(Image, size(rng, 5_000, 200_000), 0))
				}
			}
		}
		root.Children = append(root.Children, child)
	}
	kind := "internal"
	if landing {
		kind = "landing"
	}
	return &Page{Name: fmt.Sprintf("page-%02d-%s", i, kind), Landing: landing, Root: root}
}

// wire types ---------------------------------------------------------

// fetchReq asks the server for a page object.
type fetchReq struct{ obj *Object }

// echoReq asks the server for respSize opaque bytes (background
// download) or just acknowledges an upload with a small reply.
type echoReq struct{ respSize int }

// Serve installs the web/background server on ep: it answers fetchReq
// messages with the object's bytes and echoReq messages with the
// requested size. cfg builds the per-connection server config
// (steering for the response direction, congestion control).
func Serve(ep *transport.Endpoint, cfg func() transport.Config) {
	ep.Listen(cfg, func(c *transport.Conn) {
		c.OnMessage(func(conn *transport.Conn, m transport.Message) {
			switch req := m.Data.(type) {
			case fetchReq:
				conn.SendMessage(m.Stream, m.Priority, req.obj.Size, req.obj)
			case echoReq:
				conn.SendMessage(m.Stream, m.Priority, req.respSize, nil)
			default:
				panic(fmt.Sprintf("web: unexpected request payload %T", m.Data))
			}
		})
	})
}

// LoadResult reports one completed page load.
type LoadResult struct {
	Page *Page
	PLT  time.Duration // onLoad: last byte of the last object
	// RenderReady is when the root document and every render-blocking
	// resource (stylesheets and scripts reachable from it) had fully
	// arrived — a first-paint-style milestone.
	RenderReady time.Duration
	Objects     int
	Bytes       int
}

// LoadOptions tunes one page load.
type LoadOptions struct {
	// KindPriorities makes the browser declare per-object message
	// priorities via KindPriority, so priority-aware steering can
	// favor render-blocking resources. Off, every request/response is
	// priority 0, the paper's Table 1 configuration.
	KindPriorities bool
	// Tracer receives per-object completion and page-complete events;
	// nil disables app-layer tracing for the load.
	Tracer *telemetry.Tracer
}

// Load fetches page over a fresh connection from ep and calls done at
// the onLoad event. The connection is closed afterwards. Caches are
// per-load by construction (every load refetches everything), matching
// the paper's cleared-cache methodology.
func Load(ep *transport.Endpoint, cfg transport.Config, page *Page, done func(LoadResult)) {
	LoadWith(ep, cfg, page, LoadOptions{}, done)
}

// LoadWith is Load with explicit options.
func LoadWith(ep *transport.Endpoint, cfg transport.Config, page *Page, opts LoadOptions, done func(LoadResult)) {
	loop := ep.Loop()
	conn := ep.Dial(cfg)
	start := loop.Now()
	res := LoadResult{Page: page}

	// Render-blocking set: the root plus its stylesheet/script
	// descendants (transitively through render-blocking parents).
	blocking := map[int]bool{}
	var markBlocking func(o *Object)
	markBlocking = func(o *Object) {
		blocking[o.ID] = true
		for _, c := range o.Children {
			if c.Kind == Stylesheet || c.Kind == Script {
				markBlocking(c)
			}
		}
	}
	markBlocking(page.Root)
	blockingLeft := len(blocking)

	outstanding := 0
	finish := func() {
		res.PLT = loop.Now() - start
		conn.Close()
		if opts.Tracer.Enabled() {
			opts.Tracer.Emit(telemetry.Event{
				Layer: telemetry.LayerApp, Name: telemetry.EvPageComplete,
				Flow: uint32(conn.Flow()), Bytes: res.Bytes,
				Dur: res.PLT, Value: float64(res.Objects), Detail: page.Name,
			})
			opts.Tracer.Count("web_pages_loaded_total", 1)
		}
		done(res)
	}

	prio := func(o *Object) packet.Priority {
		if opts.KindPriorities {
			return KindPriority(o.Kind)
		}
		return 0
	}
	var fetch func(o *Object)
	fetch = func(o *Object) {
		outstanding++
		conn.SendMessage(conn.NewStream(), prio(o), RequestBytes, fetchReq{obj: o})
	}
	conn.OnMessage(func(_ *transport.Conn, m transport.Message) {
		obj, ok := m.Data.(*Object)
		if !ok {
			panic(fmt.Sprintf("web: unexpected response payload %T", m.Data))
		}
		res.Objects++
		res.Bytes += obj.Size
		if opts.Tracer.Enabled() {
			opts.Tracer.Emit(telemetry.Event{
				Layer: telemetry.LayerApp, Name: telemetry.EvObjectDone,
				Flow: uint32(conn.Flow()), Msg: uint64(obj.ID), Bytes: obj.Size,
				Dur: m.Latency(), Detail: page.Name,
			})
			opts.Tracer.Count("web_objects_loaded_total", 1)
		}
		if blocking[obj.ID] {
			blockingLeft--
			if blockingLeft == 0 {
				res.RenderReady = loop.Now() - start
			}
		}
		if len(obj.Children) > 0 {
			outstanding++ // hold onLoad open across the parse delay
			loop.After(obj.ParseDelay, func() {
				for _, c := range obj.Children {
					fetch(c)
				}
				outstanding--
				if outstanding == 0 {
					finish()
				}
			})
		}
		outstanding--
		if outstanding == 0 {
			finish()
		}
	})
	fetch(page.Root)
}

// Background runs the paper's two low-priority flows: a continuous
// 5 kB uploader and a continuous 10 kB downloader, each keeping a
// small pipeline of transfers in flight and issuing a replacement as
// each one completes.
type Background struct {
	up, down *transport.Conn
	stopped  bool

	// Uploads and Downloads count completed background transfers.
	Uploads, Downloads int
}

// UploadBytes and DownloadBytes are the background object sizes.
const (
	UploadBytes   = 5_000
	DownloadBytes = 10_000
	replyBytes    = 300
)

// backgroundDepth is how many transfers each background flow keeps in
// flight. A strict request/reply ping-pong (one transfer at a time)
// leaves the connection application-limited — at most one object per
// round trip regardless of its congestion window — so the "competing"
// flows never actually pressed on the bottleneck queue. A small
// pipeline keeps each flow window-limited, making background
// contention honest while preserving the small-object traffic shape.
const backgroundDepth = 4

// StartBackground launches both flows from ep. cfgFactory builds each
// flow's config (it is called twice — congestion-control state must
// not be shared between connections). Set FlowPriority to
// packet.PriorityBulk to give the steering layer the paper's
// flow-priority hint; leave it zero to reproduce the unhinted
// "DChannel" column.
func StartBackground(ep *transport.Endpoint, cfgFactory func() transport.Config) *Background {
	b := &Background{}
	cfg := cfgFactory()
	b.up = ep.Dial(cfg)
	upStream := b.up.NewStream()
	b.up.OnMessage(func(_ *transport.Conn, m transport.Message) {
		if b.stopped {
			return
		}
		b.Uploads++
		b.up.SendMessage(upStream, m.Priority, UploadBytes, echoReq{respSize: replyBytes})
	})
	for i := 0; i < backgroundDepth; i++ {
		b.up.SendMessage(upStream, cfgPrio(cfg), UploadBytes, echoReq{respSize: replyBytes})
	}

	cfg = cfgFactory()
	b.down = ep.Dial(cfg)
	downStream := b.down.NewStream()
	b.down.OnMessage(func(_ *transport.Conn, m transport.Message) {
		if b.stopped {
			return
		}
		b.Downloads++
		b.down.SendMessage(downStream, m.Priority, RequestBytes, echoReq{respSize: DownloadBytes})
	})
	for i := 0; i < backgroundDepth; i++ {
		b.down.SendMessage(downStream, cfgPrio(cfg), RequestBytes, echoReq{respSize: DownloadBytes})
	}
	return b
}

func cfgPrio(cfg transport.Config) packet.Priority {
	// Message priority mirrors the flow priority so that per-message
	// steering treats background data consistently.
	return cfg.FlowPriority
}

// Stop halts both flows after their current transfer.
func (b *Background) Stop() {
	b.stopped = true
	b.up.Close()
	b.down.Close()
}
