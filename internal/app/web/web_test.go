package web

import (
	"testing"
	"time"

	"hvc/internal/cc"
	"hvc/internal/channel"
	"hvc/internal/packet"
	"hvc/internal/sim"
	"hvc/internal/steering"
	"hvc/internal/trace"
	"hvc/internal/transport"
)

func TestCorpusDeterministicAndPlausible(t *testing.T) {
	a := GenerateCorpus(1, 30)
	b := GenerateCorpus(1, 30)
	if len(a) != 30 {
		t.Fatalf("corpus size %d", len(a))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Objects() != b[i].Objects() || a[i].TotalBytes() != b[i].TotalBytes() {
			t.Fatalf("corpus not deterministic at page %d", i)
		}
	}
	for _, p := range a {
		if p.Objects() < 5 || p.Objects() > 200 {
			t.Errorf("%s: %d objects out of plausible range", p.Name, p.Objects())
		}
		if p.TotalBytes() < 100_000 || p.TotalBytes() > 8_000_000 {
			t.Errorf("%s: %d bytes out of plausible range", p.Name, p.TotalBytes())
		}
		if p.Root.Kind != HTML {
			t.Errorf("%s: root kind %d", p.Name, p.Root.Kind)
		}
	}
}

func TestLandingPagesHeavier(t *testing.T) {
	corpus := GenerateCorpus(2, 40)
	var landObjs, intObjs, landN, intN int
	for _, p := range corpus {
		if p.Landing {
			landObjs += p.Objects()
			landN++
		} else {
			intObjs += p.Objects()
			intN++
		}
	}
	if landObjs/landN <= intObjs/intN {
		t.Fatalf("landing pages should average more objects: %d vs %d",
			landObjs/landN, intObjs/intN)
	}
}

// env wires a client/server world over eMBB+URLLC.
type env struct {
	loop           *sim.Loop
	group          *channel.Group
	client, server *transport.Endpoint
}

func newEnv(seed int64) *env {
	loop := sim.NewLoop(seed)
	g := channel.NewGroup(channel.EMBBFixed(loop), channel.URLLC(loop))
	e := &env{
		loop:   loop,
		group:  g,
		client: transport.NewEndpoint(loop, g, channel.A),
		server: transport.NewEndpoint(loop, g, channel.B),
	}
	return e
}

func (e *env) embbOnly(side channel.Side) steering.Policy {
	return steering.NewSingle(e.group.Get(channel.NameEMBB))
}

func (e *env) clientCfg() transport.Config {
	return transport.Config{CC: cc.NewCubic(), Steer: e.embbOnly(channel.A)}
}

func (e *env) serve() {
	Serve(e.server, func() transport.Config {
		return transport.Config{CC: cc.NewCubic(), Steer: e.embbOnly(channel.B)}
	})
}

func TestLoadFetchesWholePage(t *testing.T) {
	e := newEnv(1)
	e.serve()
	page := GenerateCorpus(3, 2)[0]

	var res *LoadResult
	Load(e.client, e.clientCfg(), page, func(r LoadResult) { res = &r })
	e.loop.RunUntil(60 * time.Second)

	if res == nil {
		t.Fatal("onLoad never fired")
	}
	if res.Objects != page.Objects() {
		t.Fatalf("fetched %d objects, want %d", res.Objects, page.Objects())
	}
	if res.Bytes != page.TotalBytes() {
		t.Fatalf("fetched %d bytes, want %d", res.Bytes, page.TotalBytes())
	}
	if res.PLT <= 0 {
		t.Fatal("PLT not measured")
	}
}

func TestPLTInRealisticBand(t *testing.T) {
	// Over fixed 50 ms / 60 Mbps eMBB, a full page should land within
	// the broad band the paper's Table 1 sits in (and take at least a
	// few RTTs).
	e := newEnv(2)
	e.serve()
	corpus := GenerateCorpus(4, 10)

	var plts []time.Duration
	var load func(i int)
	load = func(i int) {
		if i >= len(corpus) {
			return
		}
		Load(e.client, e.clientCfg(), corpus[i], func(r LoadResult) {
			plts = append(plts, r.PLT)
			load(i + 1)
		})
	}
	load(0)
	e.loop.RunUntil(5 * time.Minute)

	if len(plts) != len(corpus) {
		t.Fatalf("only %d/%d pages completed", len(plts), len(corpus))
	}
	var sum time.Duration
	for _, p := range plts {
		if p < 150*time.Millisecond {
			t.Errorf("PLT %v implausibly fast for 50ms RTT", p)
		}
		sum += p
	}
	mean := sum / time.Duration(len(plts))
	if mean < 400*time.Millisecond || mean > 4*time.Second {
		t.Fatalf("mean PLT %v outside the plausible band", mean)
	}
}

func TestDChannelBeatsEMBBOnlyPLT(t *testing.T) {
	page := GenerateCorpus(5, 2)[0]
	run := func(dch bool) time.Duration {
		e := newEnv(3)
		steerA := steering.Policy(steering.NewSingle(e.group.Get(channel.NameEMBB)))
		steerB := steerA
		if dch {
			steerA = steering.NewDChannel(e.group, channel.A, steering.DChannelConfig{})
			steerB = steering.NewDChannel(e.group, channel.B, steering.DChannelConfig{})
		}
		Serve(e.server, func() transport.Config {
			return transport.Config{CC: cc.NewCubic(), Steer: steerB}
		})
		var plt time.Duration
		Load(e.client, transport.Config{CC: cc.NewCubic(), Steer: steerA}, page,
			func(r LoadResult) { plt = r.PLT })
		e.loop.RunUntil(2 * time.Minute)
		if plt == 0 {
			t.Fatal("load incomplete")
		}
		return plt
	}
	embb, dch := run(false), run(true)
	if dch >= embb {
		t.Fatalf("DChannel PLT %v should beat eMBB-only %v", dch, embb)
	}
}

func TestBackgroundFlowsKeepRunning(t *testing.T) {
	e := newEnv(4)
	e.serve()
	bg := StartBackground(e.client, e.clientCfg)
	e.loop.RunUntil(10 * time.Second)
	if bg.Uploads < 10 || bg.Downloads < 10 {
		t.Fatalf("background made little progress: up=%d down=%d", bg.Uploads, bg.Downloads)
	}
	up, down := bg.Uploads, bg.Downloads
	bg.Stop()
	e.loop.RunUntil(20 * time.Second)
	if bg.Uploads != up || bg.Downloads != down {
		t.Fatal("background flows kept running after Stop")
	}
}

func TestBackgroundBulkStampsPackets(t *testing.T) {
	e := newEnv(5)
	e.serve()
	bulkCfg := func() transport.Config {
		return transport.Config{
			CC:           cc.NewCubic(),
			Steer:        steering.NewPriority(e.group, channel.A, steering.PriorityConfig{AdmitPrio: -1, Heuristic: true}),
			FlowPriority: packet.PriorityBulk,
		}
	}
	StartBackground(e.client, bulkCfg)
	e.loop.RunUntil(5 * time.Second)
	// With the priority policy and bulk flow priority, nothing from
	// the client may enter URLLC.
	if sent := e.group.Get(channel.NameURLLC).Stats(channel.A).Sent; sent != 0 {
		t.Fatalf("%d bulk packets used URLLC despite flow priority", sent)
	}
}

func TestBackgroundWithoutHintUsesURLLC(t *testing.T) {
	e := newEnv(6)
	e.serve()
	dchCfg := func() transport.Config {
		return transport.Config{
			CC:    cc.NewCubic(),
			Steer: steering.NewDChannel(e.group, channel.A, steering.DChannelConfig{}),
		}
	}
	StartBackground(e.client, dchCfg)
	e.loop.RunUntil(5 * time.Second)
	if sent := e.group.Get(channel.NameURLLC).Stats(channel.A).Sent; sent == 0 {
		t.Fatal("unhinted background flows should pollute URLLC (the Table 1 effect)")
	}
}

func TestRenderReadyPrecedesOnLoad(t *testing.T) {
	e := newEnv(7)
	e.serve()
	page := GenerateCorpus(8, 2)[0]
	var res *LoadResult
	Load(e.client, e.clientCfg(), page, func(r LoadResult) { res = &r })
	e.loop.RunUntil(2 * time.Minute)
	if res == nil {
		t.Fatal("load incomplete")
	}
	if res.RenderReady <= 0 || res.RenderReady > res.PLT {
		t.Fatalf("RenderReady %v vs PLT %v", res.RenderReady, res.PLT)
	}
}

func TestKindPrioritiesImproveRenderReady(t *testing.T) {
	// Over a narrow channel, declaring per-kind priorities lets the
	// transport scheduler send render-blocking bytes ahead of images,
	// pulling RenderReady forward without touching the onLoad total.
	page := GenerateCorpus(9, 4)[0]
	run := func(prio bool) (render, plt time.Duration) {
		loop := sim.NewLoop(10)
		slow := channel.New(loop, channel.Config{
			Props:     channel.Properties{Name: channel.NameEMBB, BaseRTT: 50 * time.Millisecond, Bandwidth: 8e6},
			DownTrace: trace.Constant("slow", 50*time.Millisecond, 8e6),
		})
		g := channel.NewGroup(slow)
		client := transport.NewEndpoint(loop, g, channel.A)
		server := transport.NewEndpoint(loop, g, channel.B)
		Serve(server, func() transport.Config {
			return transport.Config{CC: cc.NewCubic(), Steer: steering.NewSingle(slow)}
		})
		var res *LoadResult
		LoadWith(client,
			transport.Config{CC: cc.NewCubic(), Steer: steering.NewSingle(slow)},
			page, LoadOptions{KindPriorities: prio},
			func(r LoadResult) { res = &r })
		loop.RunUntil(5 * time.Minute)
		if res == nil {
			t.Fatal("load incomplete")
		}
		return res.RenderReady, res.PLT
	}
	plainRender, plainPLT := run(false)
	prioRender, prioPLT := run(true)
	if prioRender >= plainRender {
		t.Fatalf("kind priorities render-ready %v should beat plain %v", prioRender, plainRender)
	}
	// onLoad moves little either way (same bytes, same channel).
	ratio := float64(prioPLT) / float64(plainPLT)
	if ratio > 1.25 || ratio < 0.75 {
		t.Fatalf("PLT changed too much: %v vs %v", prioPLT, plainPLT)
	}
}

func TestKindPriorityTable(t *testing.T) {
	if KindPriority(HTML) != 0 {
		t.Fatal("HTML must be most important")
	}
	if KindPriority(Image) <= KindPriority(Script) {
		t.Fatal("images must rank below scripts")
	}
}
