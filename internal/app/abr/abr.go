// Package abr implements HTTP adaptive streaming over heterogeneous
// virtual channels: a client that downloads fixed-duration video
// chunks over the reliable transport, picks bitrates with a
// buffer-based (BBA-style) controller, and accounts startup delay,
// rebuffering, and delivered quality.
//
// This is the workload of the paper's second IANS citation (Enghardt
// et al., "Using informed access network selection to improve HTTP
// adaptive streaming performance"): HAS chunks are the "content"
// that object-granularity policies map to single channels, and the
// comparison against packet steering runs through the same policies as
// everything else in this repository.
package abr

import (
	"fmt"
	"time"

	"hvc/internal/sim"
	"hvc/internal/transport"
)

// DefaultLadder is a typical HAS bitrate ladder in bits per second.
var DefaultLadder = []float64{350e3, 1e6, 3e6, 6e6, 12e6}

// Config parameterizes one streaming session.
type Config struct {
	// Ladder lists the available bitrates ascending; nil means
	// DefaultLadder.
	Ladder []float64
	// ChunkDuration is each chunk's media duration; 0 means 2 s.
	ChunkDuration time.Duration
	// Duration is the media length to stream.
	Duration time.Duration
	// MaxBuffer caps the playback buffer; 0 means 8 s (a live-ish
	// configuration where channel quality actually matters).
	MaxBuffer time.Duration
	// Reservoir and Cushion are the BBA thresholds: below Reservoir
	// the lowest bitrate is used; above Reservoir the rate rises
	// linearly until the buffer reaches Reservoir+Cushion. Defaults:
	// 2 s and 4 s.
	Reservoir time.Duration
	Cushion   time.Duration
	// StartupChunks is how many chunks must be buffered before
	// playback starts; 0 means 1.
	StartupChunks int
}

func (cfg *Config) fillDefaults() {
	if cfg.Ladder == nil {
		cfg.Ladder = DefaultLadder
	}
	if len(cfg.Ladder) == 0 {
		panic("abr: empty bitrate ladder")
	}
	for i := 1; i < len(cfg.Ladder); i++ {
		if cfg.Ladder[i] <= cfg.Ladder[i-1] {
			panic("abr: ladder must be strictly ascending")
		}
	}
	if cfg.ChunkDuration == 0 {
		cfg.ChunkDuration = 2 * time.Second
	}
	if cfg.Duration <= 0 {
		panic("abr: Config.Duration must be positive")
	}
	if cfg.MaxBuffer == 0 {
		cfg.MaxBuffer = 8 * time.Second
	}
	if cfg.Reservoir == 0 {
		cfg.Reservoir = 2 * time.Second
	}
	if cfg.Cushion == 0 {
		cfg.Cushion = 4 * time.Second
	}
	if cfg.StartupChunks == 0 {
		cfg.StartupChunks = 1
	}
}

// chunkReq travels to the server: a request for one chunk.
type chunkReq struct {
	index   int
	bitrate float64
	size    int
}

// Serve installs the HAS origin on ep: it answers chunkReq messages
// with the requested chunk bytes.
func Serve(ep *transport.Endpoint, cfg func() transport.Config) {
	ep.Listen(cfg, func(c *transport.Conn) {
		c.OnMessage(func(conn *transport.Conn, m transport.Message) {
			req, ok := m.Data.(chunkReq)
			if !ok {
				panic(fmt.Sprintf("abr: unexpected request %T", m.Data))
			}
			conn.SendMessage(m.Stream, m.Priority, req.size, req)
		})
	})
}

// Result summarizes one playback session.
type Result struct {
	// StartupDelay is the time from session start to first frame.
	StartupDelay time.Duration
	// RebufferTime and RebufferEvents account mid-stream stalls.
	RebufferTime   time.Duration
	RebufferEvents int
	// MeanBitrate is the size-weighted mean of downloaded chunk
	// bitrates in bits per second.
	MeanBitrate float64
	// Switches counts bitrate changes between consecutive chunks.
	Switches int
	// Chunks is the number of chunks fully downloaded.
	Chunks int
	// Played reports how much media actually played.
	Played time.Duration
}

// Client streams one session. Create with NewClient, then Start; read
// Result after the simulation has run past the session's end.
type Client struct {
	loop *sim.Loop
	conn *transport.Conn
	cfg  Config

	stream    uint32
	nextChunk int
	total     int
	lastRate  float64

	started    bool
	startAt    time.Duration
	buffer     time.Duration // media buffered and not yet played
	playedAt   time.Duration // virtual time of last buffer drain update
	stalledAt  time.Duration // when the current stall began (-1 none)
	fetching   bool
	waitTimer  sim.Timer
	res        Result
	bitrateSum float64
	requestBts int
}

// RequestBytes is the size of one chunk request message.
const RequestBytes = 300

// NewClient builds a streaming client over conn.
func NewClient(loop *sim.Loop, conn *transport.Conn, cfg Config) *Client {
	cfg.fillDefaults()
	c := &Client{
		loop:       loop,
		conn:       conn,
		cfg:        cfg,
		stream:     conn.NewStream(),
		total:      int(cfg.Duration / cfg.ChunkDuration),
		stalledAt:  -1,
		requestBts: RequestBytes,
	}
	conn.OnMessage(func(_ *transport.Conn, m transport.Message) { c.onChunk(m) })
	return c
}

// TotalChunks reports the session length in chunks.
func (c *Client) TotalChunks() int { return c.total }

// Start begins the session at the current virtual time.
func (c *Client) Start() {
	c.startAt = c.loop.Now()
	c.playedAt = c.loop.Now()
	c.fetchNext()
}

// Result returns the session summary. Call after the loop has drained.
func (c *Client) Result() Result {
	c.drainPlayback()
	res := c.res
	if res.Chunks > 0 {
		res.MeanBitrate = c.bitrateSum / float64(res.Chunks)
	}
	return res
}

// pickBitrate is the BBA-style map from buffer level to ladder rung.
func (c *Client) pickBitrate() float64 {
	ladder := c.cfg.Ladder
	if c.buffer <= c.cfg.Reservoir {
		return ladder[0]
	}
	frac := float64(c.buffer-c.cfg.Reservoir) / float64(c.cfg.Cushion)
	if frac >= 1 {
		return ladder[len(ladder)-1]
	}
	idx := int(frac * float64(len(ladder)))
	if idx >= len(ladder) {
		idx = len(ladder) - 1
	}
	return ladder[idx]
}

func (c *Client) fetchNext() {
	if c.fetching || c.nextChunk >= c.total {
		return
	}
	c.drainPlayback()
	if c.buffer >= c.cfg.MaxBuffer {
		// Buffer full: wait for it to drain one chunk's worth.
		if !c.waitTimer.Active() {
			c.waitTimer = c.loop.After(c.cfg.ChunkDuration/2, c.fetchNext)
		}
		return
	}
	rate := c.pickBitrate()
	size := int(rate * c.cfg.ChunkDuration.Seconds() / 8)
	c.fetching = true
	c.conn.SendMessage(c.stream, 0, c.requestBts, chunkReq{
		index: c.nextChunk, bitrate: rate, size: size,
	})
}

func (c *Client) onChunk(m transport.Message) {
	req, ok := m.Data.(chunkReq)
	if !ok {
		panic(fmt.Sprintf("abr: unexpected response %T", m.Data))
	}
	c.fetching = false
	c.drainPlayback()

	c.res.Chunks++
	c.bitrateSum += req.bitrate
	if c.lastRate != 0 && c.lastRate != req.bitrate {
		c.res.Switches++
	}
	c.lastRate = req.bitrate
	c.buffer += c.cfg.ChunkDuration
	c.nextChunk++

	if !c.started && c.res.Chunks >= c.cfg.StartupChunks {
		c.started = true
		c.res.StartupDelay = c.loop.Now() - c.startAt
		c.playedAt = c.loop.Now()
		if c.stalledAt >= 0 {
			c.stalledAt = -1
		}
	}
	if c.started && c.stalledAt >= 0 {
		// Stall ends when a chunk arrives.
		c.res.RebufferTime += c.loop.Now() - c.stalledAt
		c.stalledAt = -1
		c.playedAt = c.loop.Now()
	}
	c.fetchNext()
}

// drainPlayback advances the playback clock: played media leaves the
// buffer; an empty buffer after startup is a stall.
func (c *Client) drainPlayback() {
	now := c.loop.Now()
	if !c.started || c.stalledAt >= 0 {
		c.playedAt = now
		return
	}
	elapsed := now - c.playedAt
	if elapsed <= 0 {
		return
	}
	if elapsed >= c.buffer {
		// Played everything buffered, then stalled (unless done).
		c.res.Played += c.buffer
		stallStart := c.playedAt + c.buffer
		c.buffer = 0
		if c.res.Played < c.cfg.Duration {
			c.stalledAt = stallStart
			c.res.RebufferEvents++
		}
	} else {
		c.buffer -= elapsed
		c.res.Played += elapsed
	}
	c.playedAt = now
}
