package abr

import (
	"testing"
	"time"

	"hvc/internal/cc"
	"hvc/internal/channel"
	"hvc/internal/sim"
	"hvc/internal/steering"
	"hvc/internal/trace"
	"hvc/internal/transport"
)

// session wires a client and origin over the given channel builder.
func session(t *testing.T, seed int64, cfg Config, chs func(*sim.Loop) []*channel.Channel) (*Client, *sim.Loop) {
	t.Helper()
	loop := sim.NewLoop(seed)
	g := channel.NewGroup(chs(loop)...)
	clientEP := transport.NewEndpoint(loop, g, channel.A)
	serverEP := transport.NewEndpoint(loop, g, channel.B)

	pol := func() steering.Policy { return steering.NewSingle(g.All()[0]) }
	Serve(serverEP, func() transport.Config {
		return transport.Config{CC: cc.NewCubic(), Steer: pol()}
	})
	conn := clientEP.Dial(transport.Config{CC: cc.NewCubic(), Steer: pol()})
	return NewClient(loop, conn, cfg), loop
}

func fastChannel(loop *sim.Loop) []*channel.Channel {
	return []*channel.Channel{channel.New(loop, channel.Config{
		Props:     channel.Properties{Name: "fast", BaseRTT: 20 * time.Millisecond, Bandwidth: 50e6},
		DownTrace: trace.Constant("fast", 20*time.Millisecond, 50e6),
	})}
}

func slowChannel(loop *sim.Loop) []*channel.Channel {
	// 800 kbps: only the lowest ladder rung (350 kbps) is sustainable.
	return []*channel.Channel{channel.New(loop, channel.Config{
		Props:     channel.Properties{Name: "slow", BaseRTT: 40 * time.Millisecond, Bandwidth: 800e3},
		DownTrace: trace.Constant("slow", 40*time.Millisecond, 800e3),
	})}
}

func TestFastChannelClimbsLadderNoStalls(t *testing.T) {
	c, loop := session(t, 1, Config{Duration: 30 * time.Second}, fastChannel)
	c.Start()
	loop.RunUntil(2 * time.Minute)
	r := c.Result()

	if r.Chunks != c.TotalChunks() {
		t.Fatalf("downloaded %d/%d chunks", r.Chunks, c.TotalChunks())
	}
	if r.RebufferEvents != 0 || r.RebufferTime != 0 {
		t.Fatalf("fast channel should never stall: %+v", r)
	}
	if r.MeanBitrate < 3e6 {
		t.Fatalf("mean bitrate %.0f bps: 50 Mbps channel should climb the ladder", r.MeanBitrate)
	}
	if r.Played < 29*time.Second {
		t.Fatalf("played only %v of 30s", r.Played)
	}
	if r.StartupDelay <= 0 || r.StartupDelay > time.Second {
		t.Fatalf("startup delay %v implausible", r.StartupDelay)
	}
}

func TestSlowChannelStaysLowAndMayStall(t *testing.T) {
	c, loop := session(t, 2, Config{Duration: 20 * time.Second}, slowChannel)
	c.Start()
	loop.RunUntil(5 * time.Minute)
	r := c.Result()

	if r.Chunks == 0 {
		t.Fatal("nothing downloaded")
	}
	// BBA has no rate estimator, so on an 800 kbps link it oscillates
	// between the two lowest rungs; the mean must stay far below the
	// ladder's middle.
	if r.MeanBitrate > 1.5e6 {
		t.Fatalf("mean bitrate %.0f bps too high for the channel", r.MeanBitrate)
	}
	if r.Switches == 0 {
		t.Fatal("BBA should oscillate rungs on a borderline channel")
	}
}

func TestOutageCausesRebuffering(t *testing.T) {
	outage := func(loop *sim.Loop) []*channel.Channel {
		tr := &trace.Trace{Name: "o", Samples: []trace.Sample{
			{At: 0, RTT: 30 * time.Millisecond, Rate: 20e6},
			{At: 5 * time.Second, RTT: 30 * time.Millisecond, Rate: 0},
			{At: 17 * time.Second, RTT: 30 * time.Millisecond, Rate: 20e6},
			{At: 10 * time.Minute, RTT: 30 * time.Millisecond, Rate: 20e6},
		}}
		return []*channel.Channel{channel.New(loop, channel.Config{
			Props:     channel.Properties{Name: "flaky", BaseRTT: 30 * time.Millisecond, Bandwidth: 20e6},
			DownTrace: tr,
		})}
	}
	c, loop := session(t, 3, Config{Duration: 30 * time.Second}, outage)
	c.Start()
	loop.RunUntil(3 * time.Minute)
	r := c.Result()

	// A 12 s outage against an 8 s buffer cap must stall playback.
	if r.RebufferEvents == 0 || r.RebufferTime < time.Second {
		t.Fatalf("expected rebuffering across the outage: %+v", r)
	}
}

func TestBitratePickerThresholds(t *testing.T) {
	c, _ := session(t, 4, Config{Duration: 10 * time.Second}, fastChannel)
	c.buffer = 0
	if got := c.pickBitrate(); got != DefaultLadder[0] {
		t.Fatalf("empty buffer rate %v, want lowest rung", got)
	}
	c.buffer = 2 * time.Second // exactly the reservoir
	if got := c.pickBitrate(); got != DefaultLadder[0] {
		t.Fatalf("reservoir rate %v, want lowest rung", got)
	}
	c.buffer = 6 * time.Second // reservoir+cushion
	if got := c.pickBitrate(); got != DefaultLadder[len(DefaultLadder)-1] {
		t.Fatalf("full cushion rate %v, want top rung", got)
	}
	c.buffer = 4 * time.Second // halfway up the cushion
	got := c.pickBitrate()
	if got == DefaultLadder[0] || got == DefaultLadder[len(DefaultLadder)-1] {
		t.Fatalf("mid-cushion rate %v should be intermediate", got)
	}
}

func TestBufferCapThrottlesFetching(t *testing.T) {
	c, loop := session(t, 5, Config{Duration: 60 * time.Second}, fastChannel)
	c.Start()
	// Early in the session the buffer must never exceed the cap plus
	// one chunk.
	for i := 1; i <= 40; i++ {
		loop.RunUntil(time.Duration(i) * 500 * time.Millisecond)
		if c.buffer > c.cfg.MaxBuffer+c.cfg.ChunkDuration {
			t.Fatalf("buffer %v exceeded cap %v", c.buffer, c.cfg.MaxBuffer)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	loop := sim.NewLoop(1)
	g := channel.NewGroup(fastChannel(loop)...)
	clientEP := transport.NewEndpoint(loop, g, channel.A)
	transport.NewEndpoint(loop, g, channel.B)
	conn := clientEP.Dial(transport.Config{CC: cc.NewCubic(), Steer: steering.NewSingle(g.All()[0])})
	for name, cfg := range map[string]Config{
		"no duration":     {},
		"unsorted ladder": {Duration: time.Second, Ladder: []float64{2e6, 1e6}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			NewClient(loop, conn, cfg)
		}()
	}
}

func TestDeterministicSession(t *testing.T) {
	run := func() Result {
		c, loop := session(t, 9, Config{Duration: 20 * time.Second}, fastChannel)
		c.Start()
		loop.RunUntil(time.Minute)
		return c.Result()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
