// Package iot implements the industrial-automation workload that
// motivates wireless TSN in §2.2: periodic closed control loops —
// sensor reading up, actuation command back — each of which must
// complete within its cycle deadline. The metric is the deadline miss
// rate, the quantity TSN's scheduled airtime exists to drive to zero
// while contention-based Wi-Fi lets background traffic destroy it.
package iot

import (
	"fmt"
	"time"

	"hvc/internal/metrics"
	"hvc/internal/sim"
	"hvc/internal/transport"
)

// Config parameterizes one plant.
type Config struct {
	// Devices is the number of sensor/actuator pairs; 0 means 4.
	Devices int
	// Cycle is the control period; each loop's deadline is one cycle.
	// 0 means 20 ms.
	Cycle time.Duration
	// MsgBytes sizes sensor readings and commands; 0 means 200 B.
	MsgBytes int
	// Duration is how long the plant runs.
	Duration time.Duration
}

func (cfg *Config) fillDefaults() {
	if cfg.Devices == 0 {
		cfg.Devices = 4
	}
	if cfg.Cycle == 0 {
		cfg.Cycle = 20 * time.Millisecond
	}
	if cfg.MsgBytes == 0 {
		cfg.MsgBytes = 200
	}
	if cfg.Duration <= 0 {
		panic("iot: Config.Duration must be positive")
	}
}

// reading is one sensor sample on its way to the controller.
type reading struct {
	device int
	cycle  int
	sentAt time.Duration
}

// command is the controller's response, echoing the loop identity.
type command struct {
	device int
	cycle  int
	sentAt time.Duration // the originating reading's send time
}

// Plant runs the device side: every cycle each device emits a reading;
// the loop closes when the matching command returns. Create with
// NewPlant and Start it; attach the controller with ServeController.
type Plant struct {
	loop *sim.Loop
	conn *transport.Conn
	cfg  Config

	stream  uint32
	cycles  int
	started *sim.Periodic
	cycleNo int

	// LoopLatency is the closed-loop latency distribution (ms) of
	// loops that completed; Misses counts loops that exceeded the
	// cycle deadline or never completed by the end of the run.
	LoopLatency metrics.Distribution
	Completed   int
	misses      int
}

// NewPlant builds the device side over conn (an unreliable dial — a
// stale command is useless, so nothing is retransmitted).
func NewPlant(loop *sim.Loop, conn *transport.Conn, cfg Config) *Plant {
	cfg.fillDefaults()
	p := &Plant{loop: loop, conn: conn, cfg: cfg, stream: conn.NewStream()}
	p.cycles = int(cfg.Duration / cfg.Cycle)
	conn.OnMessage(func(_ *transport.Conn, m transport.Message) { p.onCommand(m) })
	return p
}

// TotalLoops reports how many loops the plant will attempt.
func (p *Plant) TotalLoops() int { return p.cycles * p.cfg.Devices }

// Start begins the cyclic schedule.
func (p *Plant) Start() {
	p.tick() // cycle 0 fires immediately
	p.started = sim.Every(p.loop, p.cfg.Cycle, func() {
		if p.cycleNo >= p.cycles {
			p.started.Stop()
			return
		}
		p.tick()
	})
}

func (p *Plant) tick() {
	c := p.cycleNo
	p.cycleNo++
	for d := 0; d < p.cfg.Devices; d++ {
		p.conn.SendMessage(p.stream, 0, p.cfg.MsgBytes,
			reading{device: d, cycle: c, sentAt: p.loop.Now()})
	}
}

func (p *Plant) onCommand(m transport.Message) {
	cmd, ok := m.Data.(command)
	if !ok {
		panic(fmt.Sprintf("iot: unexpected plant message %T", m.Data))
	}
	lat := p.loop.Now() - cmd.sentAt
	if lat > p.cfg.Cycle {
		p.misses++
		return
	}
	p.Completed++
	p.LoopLatency.AddDuration(lat)
}

// MissRate reports the fraction of attempted loops that missed their
// deadline (including loops whose command never arrived). Call after
// the simulation drains.
func (p *Plant) MissRate() float64 {
	attempted := p.cycleNo * p.cfg.Devices
	if attempted == 0 {
		return 0
	}
	return float64(attempted-p.Completed) / float64(attempted)
}

// ServeController installs the controller on the accepted connection:
// every reading is answered with a command after a fixed compute time.
func ServeController(loop *sim.Loop, conn *transport.Conn, compute time.Duration, msgBytes int) {
	if msgBytes == 0 {
		msgBytes = 200
	}
	stream := conn.NewStream()
	conn.OnMessage(func(c *transport.Conn, m transport.Message) {
		r, ok := m.Data.(reading)
		if !ok {
			return // other flows (e.g. bulk) may share the listener
		}
		loop.After(compute, func() {
			c.SendMessage(stream, 0, msgBytes,
				command{device: r.device, cycle: r.cycle, sentAt: r.sentAt})
		})
	})
}
