package iot

import (
	"testing"
	"time"

	"hvc/internal/cc"
	"hvc/internal/channel"
	"hvc/internal/sim"
	"hvc/internal/steering"
	"hvc/internal/transport"
)

// plantWorld wires a plant and controller over the Wi-Fi TSN pair,
// optionally saturating the best-effort channel with a bulk flow, and
// steering control traffic with the given policy builder.
func plantWorld(t *testing.T, seed int64, dur time.Duration, bulk bool,
	mkSteer func(*channel.Group, channel.Side) steering.Policy) *Plant {
	t.Helper()
	loop := sim.NewLoop(seed)
	tsn, be := channel.WiFiTSN(loop, 2)
	g := channel.NewGroup(tsn, be)
	client := transport.NewEndpoint(loop, g, channel.A)
	server := transport.NewEndpoint(loop, g, channel.B)

	server.Listen(func() transport.Config {
		return transport.Config{CC: cc.NewCubic(), Steer: mkSteer(g, channel.B)}
	}, func(c *transport.Conn) {
		// Every accepted conn gets a controller; it ignores non-reading
		// messages, so the bulk flow coexists harmlessly.
		ServeController(loop, c, 2*time.Millisecond, 0)
	})

	conn := client.Dial(transport.Config{
		Steer: mkSteer(g, channel.A), Unreliable: true, MsgTimeout: 5 * time.Second,
	})
	plant := NewPlant(loop, conn, Config{Duration: dur, Cycle: 60 * time.Millisecond})

	if bulk {
		// Contention traffic: a loss-tolerant constant-rate blast
		// (e.g. screen mirroring) at ~160 Mbps, beyond the best-effort
		// channel's capacity, keeping its queue pinned full.
		blast := client.Dial(transport.Config{
			Steer: steering.NewSingle(be), Unreliable: true,
		})
		blastStream := blast.NewStream()
		sim.Every(loop, 10*time.Millisecond, func() {
			blast.SendMessage(blastStream, 0, 200_000, nil)
		})
	}

	plant.Start()
	loop.RunUntil(dur + 2*time.Second)
	return plant
}

func TestCleanBestEffortMeetsDeadlines(t *testing.T) {
	p := plantWorld(t, 1, 3*time.Second, false, func(g *channel.Group, _ channel.Side) steering.Policy {
		return steering.NewSingle(g.Get("wifi-be"))
	})
	// The best-effort channel's 1% per-packet loss costs ~2-3% of
	// loops even when idle (no retransmission: stale commands are
	// useless). That residual is the channel's floor.
	if p.MissRate() > 0.06 {
		t.Fatalf("miss rate %.3f on an idle best-effort channel", p.MissRate())
	}
	if p.LoopLatency.Percentile(99) > 40 {
		t.Fatalf("p99 loop latency %.1f ms on idle channel", p.LoopLatency.Percentile(99))
	}
}

func TestBulkTrafficBreaksBestEffortLoops(t *testing.T) {
	p := plantWorld(t, 2, 3*time.Second, true, func(g *channel.Group, _ channel.Side) steering.Policy {
		return steering.NewSingle(g.Get("wifi-be"))
	})
	if p.MissRate() < 0.3 {
		t.Fatalf("miss rate %.3f: a saturated best-effort channel should break loops", p.MissRate())
	}
}

func TestTSNSteeringRestoresDeterminism(t *testing.T) {
	tsnPolicy := func(g *channel.Group, side channel.Side) steering.Policy {
		return steering.NewPriority(g, side, steering.PriorityConfig{
			Wide: "wifi-be", Narrow: "wifi-tsn", AdmitPrio: 0,
		})
	}
	p := plantWorld(t, 3, 3*time.Second, true, tsnPolicy)
	if p.MissRate() > 0.02 {
		t.Fatalf("miss rate %.3f: TSN steering should dodge the bulk traffic", p.MissRate())
	}
	// TSN loop latency: 2×(4ms prop + tx) + 2ms compute ≈ 11-13 ms.
	if p99 := p.LoopLatency.Percentile(99); p99 > 18 {
		t.Fatalf("p99 loop latency %.1f ms over TSN", p99)
	}
}

func TestPlantAccounting(t *testing.T) {
	p := plantWorld(t, 4, time.Second, false, func(g *channel.Group, _ channel.Side) steering.Policy {
		return steering.NewSingle(g.Get("wifi-be"))
	})
	// 1 s / 60 ms = 16 cycles of 4 devices.
	if p.TotalLoops() != 16*4 {
		t.Fatalf("TotalLoops = %d, want 64", p.TotalLoops())
	}
	if p.Completed == 0 {
		t.Fatal("no loops completed")
	}
}

func TestConfigValidation(t *testing.T) {
	loop := sim.NewLoop(1)
	tsn, be := channel.WiFiTSN(loop, 1)
	g := channel.NewGroup(tsn, be)
	client := transport.NewEndpoint(loop, g, channel.A)
	transport.NewEndpoint(loop, g, channel.B)
	conn := client.Dial(transport.Config{Steer: steering.NewSingle(be), Unreliable: true})
	defer func() {
		if recover() == nil {
			t.Error("zero duration should panic")
		}
	}()
	NewPlant(loop, conn, Config{})
}
