package game

import (
	"testing"
	"time"

	"hvc/internal/channel"
	"hvc/internal/sim"
	"hvc/internal/steering"
	"hvc/internal/trace"
	"hvc/internal/transport"
)

// run wires a session over the given channels and policy builder and
// returns it after the simulation drains.
func run(t *testing.T, seed int64, dur time.Duration,
	mkSteer func(*channel.Group, channel.Side) steering.Policy,
	chs func(*sim.Loop) []*channel.Channel) *Session {
	t.Helper()
	loop := sim.NewLoop(seed)
	g := channel.NewGroup(chs(loop)...)
	client := transport.NewEndpoint(loop, g, channel.A)
	server := transport.NewEndpoint(loop, g, channel.B)

	conn := client.Dial(transport.Config{
		Steer: mkSteer(g, channel.A), Unreliable: true, MsgTimeout: 10 * time.Second,
	})
	s := NewSession(loop, conn, Config{Duration: dur})
	server.Listen(func() transport.Config {
		return transport.Config{
			Steer: mkSteer(g, channel.B), Unreliable: true, MsgTimeout: 10 * time.Second,
		}
	}, func(c *transport.Conn) { s.Attach(c) })

	s.Start()
	loop.RunUntil(dur + 10*time.Second)
	return s
}

func cellular(loop *sim.Loop) []*channel.Channel {
	return []*channel.Channel{channel.EMBBFixed(loop), channel.URLLC(loop)}
}

func embbOnly(g *channel.Group, _ channel.Side) steering.Policy {
	return steering.NewSingle(g.Get(channel.NameEMBB))
}

func priority(g *channel.Group, side channel.Side) steering.Policy {
	return steering.NewPriority(g, side, steering.PriorityConfig{AdmitPrio: 0})
}

func TestSessionBasics(t *testing.T) {
	s := run(t, 1, 3*time.Second, embbOnly, cellular)
	if s.FramesSent == 0 || s.FramesShown == 0 {
		t.Fatalf("no frames flowed: sent=%d shown=%d", s.FramesSent, s.FramesShown)
	}
	if s.InputToDisplay.N() == 0 {
		t.Fatal("no input-to-display samples")
	}
	// eMBB-only floor: input up (25 ms) + render (≤8+16 ms) + frame
	// down (25 ms + tx). Everything must exceed ~55 ms.
	if got := s.InputToDisplay.Min(); got < 55 {
		t.Fatalf("min input-to-display %.1f ms below physical floor", got)
	}
	if s.FramesLost() != 0 {
		t.Fatalf("%d frames lost on a clean channel", s.FramesLost())
	}
}

func TestPrioritySteeringCutsInputLatency(t *testing.T) {
	base := run(t, 2, 3*time.Second, embbOnly, cellular)
	prio := run(t, 2, 3*time.Second, priority, cellular)
	// Inputs over URLLC shave the 22.5 ms uplink difference.
	if prio.InputToDisplay.Percentile(50) >= base.InputToDisplay.Percentile(50) {
		t.Fatalf("priority p50 %.1f ms should beat embb-only %.1f ms",
			prio.InputToDisplay.Percentile(50), base.InputToDisplay.Percentile(50))
	}
}

func TestLatencySpikeHitsEMBBOnlyHarder(t *testing.T) {
	spiky := func(loop *sim.Loop) []*channel.Channel {
		tr := &trace.Trace{Name: "spiky", Samples: []trace.Sample{
			{At: 0, RTT: 50 * time.Millisecond, Rate: 60e6},
			{At: 1 * time.Second, RTT: 300 * time.Millisecond, Rate: 60e6},
			{At: 2 * time.Second, RTT: 50 * time.Millisecond, Rate: 60e6},
			{At: 10 * time.Minute, RTT: 50 * time.Millisecond, Rate: 60e6},
		}}
		return []*channel.Channel{channel.EMBB(loop, tr), channel.URLLC(loop)}
	}
	base := run(t, 3, 3*time.Second, embbOnly, spiky)
	prio := run(t, 3, 3*time.Second, priority, spiky)
	// During the RTT spike, eMBB-only inputs take 150+ ms one way; the
	// priority policy's inputs stay on URLLC.
	if base.InputToDisplay.Max() < 200 {
		t.Fatalf("embb-only max %.1f ms: spike did not register", base.InputToDisplay.Max())
	}
	if prio.InputToDisplay.Percentile(95) >= base.InputToDisplay.Percentile(95) {
		t.Fatalf("priority p95 %.1f should beat embb-only %.1f under spikes",
			prio.InputToDisplay.Percentile(95), base.InputToDisplay.Percentile(95))
	}
}

func TestEachInputCreditedOnce(t *testing.T) {
	s := run(t, 4, 2*time.Second, embbOnly, cellular)
	if s.InputToDisplay.N() > s.nextInput {
		t.Fatalf("%d samples for %d inputs", s.InputToDisplay.N(), s.nextInput)
	}
}

func TestConfigValidation(t *testing.T) {
	loop := sim.NewLoop(1)
	g := channel.NewGroup(cellular(loop)...)
	client := transport.NewEndpoint(loop, g, channel.A)
	transport.NewEndpoint(loop, g, channel.B)
	conn := client.Dial(transport.Config{Steer: embbOnly(g, channel.A), Unreliable: true})
	defer func() {
		if recover() == nil {
			t.Error("zero duration should panic")
		}
	}()
	NewSession(loop, conn, Config{})
}

func TestDeterministicSession(t *testing.T) {
	a := run(t, 7, 2*time.Second, priority, cellular)
	b := run(t, 7, 2*time.Second, priority, cellular)
	if a.InputToDisplay.N() != b.InputToDisplay.N() ||
		a.InputToDisplay.Mean() != b.InputToDisplay.Mean() ||
		a.FramesShown != b.FramesShown {
		t.Fatal("nondeterministic session")
	}
}
