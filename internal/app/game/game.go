// Package game implements the cloud-gaming / XR workload the paper's
// introduction motivates (cloud gaming needs <100 ms input latency, XR
// <20 ms): a client streams small input events upstream while the
// server streams rendered frames downstream, over one unreliable
// connection. The headline metric is input-to-display latency — the
// time from an input event leaving the client to the first frame that
// reflects it being fully displayed — which exercises both directions
// of the HVC pair at once: inputs crave the low-latency channel,
// frames need the wide one.
package game

import (
	"fmt"
	"time"

	"hvc/internal/metrics"
	"hvc/internal/packet"
	"hvc/internal/sim"
	"hvc/internal/transport"
)

// Config parameterizes one session.
type Config struct {
	// Duration is how long the session runs.
	Duration time.Duration
	// FPS is the server's frame rate; 0 means 60.
	FPS int
	// FrameBitrate sizes frames (bits/s of video); 0 means 10 Mbps.
	FrameBitrate float64
	// InputHz is the client's input event rate; 0 means 60.
	InputHz int
	// InputBytes sizes one input event; 0 means 120 B.
	InputBytes int
	// RenderDelay models server-side game/render time between an
	// input's arrival and the first frame reflecting it; 0 means 8 ms.
	RenderDelay time.Duration
	// InputPriority and FramePriority are the message priorities the
	// application declares; by default inputs are priority 0 (the
	// thing priority-aware steering protects) and frames priority 1.
	InputPriority packet.Priority
	FramePriority packet.Priority
}

func (cfg *Config) fillDefaults() {
	if cfg.Duration <= 0 {
		panic("game: Config.Duration must be positive")
	}
	if cfg.FPS == 0 {
		cfg.FPS = 60
	}
	if cfg.FrameBitrate == 0 {
		cfg.FrameBitrate = 10e6
	}
	if cfg.InputHz == 0 {
		cfg.InputHz = 60
	}
	if cfg.InputBytes == 0 {
		cfg.InputBytes = 120
	}
	if cfg.RenderDelay == 0 {
		cfg.RenderDelay = 8 * time.Millisecond
	}
	if cfg.FramePriority == 0 && cfg.InputPriority == 0 {
		cfg.FramePriority = 1
	}
}

// inputMsg is one input event.
type inputMsg struct {
	seq    int
	sentAt time.Duration
}

// frameMsg is one rendered frame, carrying the newest input it
// reflects (zero-valued if no input had arrived yet).
type frameMsg struct {
	frame    int
	input    int
	inputAt  time.Duration
	hasInput bool
}

// Session runs a client and server pair. Build with NewSession after
// both transport endpoints exist, then Start.
type Session struct {
	loop *sim.Loop
	cfg  Config

	clientConn *transport.Conn
	inStream   uint32
	nextInput  int

	// Server state (attached through Attach).
	latestInput     int
	latestInputAt   time.Duration // client send time (for the metric)
	latestInputRcvd time.Duration // server arrival time (for render delay)
	hasInput        bool
	appliedInput    int // newest input already credited on a frame

	// Client-side results.
	InputToDisplay metrics.Distribution // ms
	FramesShown    int
	FramesSent     int
	acked          map[int]bool
}

// NewSession builds the client half over conn (an unreliable dial).
func NewSession(loop *sim.Loop, conn *transport.Conn, cfg Config) *Session {
	cfg.fillDefaults()
	s := &Session{
		loop:       loop,
		cfg:        cfg,
		clientConn: conn,
		inStream:   conn.NewStream(),
		acked:      make(map[int]bool),
	}
	conn.OnMessage(func(_ *transport.Conn, m transport.Message) { s.onFrame(m) })
	return s
}

// Attach installs the server half on the accepted connection: it
// consumes inputs and streams frames back down it.
func (s *Session) Attach(server *transport.Conn) {
	server.OnMessage(func(_ *transport.Conn, m transport.Message) {
		in, ok := m.Data.(inputMsg)
		if !ok {
			panic(fmt.Sprintf("game: unexpected server message %T", m.Data))
		}
		if in.seq > s.latestInput || !s.hasInput {
			s.latestInput = in.seq
			s.latestInputAt = in.sentAt
			s.latestInputRcvd = s.loop.Now()
			s.hasInput = true
		}
	})
	s.startFrames(server)
}

// Start schedules the client's input stream.
func (s *Session) Start() {
	interval := time.Second / time.Duration(s.cfg.InputHz)
	n := int(s.cfg.Duration / interval)
	for i := 0; i < n; i++ {
		s.loop.At(time.Duration(i)*interval, s.sendInput)
	}
}

func (s *Session) sendInput() {
	s.nextInput++
	s.clientConn.SendMessage(s.inStream, s.cfg.InputPriority, s.cfg.InputBytes,
		inputMsg{seq: s.nextInput, sentAt: s.loop.Now()})
}

func (s *Session) startFrames(server *transport.Conn) {
	interval := time.Second / time.Duration(s.cfg.FPS)
	frameBytes := int(s.cfg.FrameBitrate / float64(s.cfg.FPS) / 8)
	stream := server.NewStream()
	n := int(s.cfg.Duration / interval)
	base := s.loop.Now() // frames start when the server attaches
	for i := 0; i < n; i++ {
		i := i
		s.loop.At(base+time.Duration(i)*interval, func() {
			fm := frameMsg{frame: i}
			// A frame reflects the newest input that arrived at least
			// RenderDelay ago — and is credited only once.
			if s.hasInput && s.loop.Now()-s.latestInputRcvd >= s.cfg.RenderDelay &&
				s.latestInput > s.appliedInput {
				fm.input = s.latestInput
				fm.inputAt = s.latestInputAt
				fm.hasInput = true
				s.appliedInput = s.latestInput
			}
			s.FramesSent++
			server.SendMessage(stream, s.cfg.FramePriority, frameBytes, fm)
		})
	}
}

func (s *Session) onFrame(m transport.Message) {
	fm, ok := m.Data.(frameMsg)
	if !ok {
		panic(fmt.Sprintf("game: unexpected client message %T", m.Data))
	}
	s.FramesShown++
	if fm.hasInput && !s.acked[fm.input] {
		s.acked[fm.input] = true
		s.InputToDisplay.AddDuration(s.loop.Now() - fm.inputAt)
	}
}

// FramesLost reports frames sent but never fully displayed. Call after
// the simulation drains.
func (s *Session) FramesLost() int { return s.FramesSent - s.FramesShown }
