package video

// White-box tests of the receiver's decode rule, driving onMessage
// directly with synthetic transport messages so arrival timing is
// exact and no network is involved.

import (
	"testing"
	"time"

	"hvc/internal/sim"
	"hvc/internal/transport"
)

// deliver injects one layer message for a frame at the current virtual
// time, as if it had just arrived.
func deliver(r *Receiver, frame, layer int, sentAt time.Duration) {
	r.onMessage(transport.Message{
		Data:   layerMsg{frame: frame, layer: layer},
		SentAt: sentAt,
	})
}

func newTestReceiver(loop *sim.Loop) *Receiver {
	return NewReceiver(loop, Config{Duration: time.Minute})
}

func TestDecodeWaitsSixtyMs(t *testing.T) {
	loop := sim.NewLoop(1)
	r := newTestReceiver(loop)
	loop.At(10*time.Millisecond, func() { deliver(r, 0, 0, 0) })
	loop.Run()
	if r.Decoded != 1 {
		t.Fatalf("decoded %d frames, want 1", r.Decoded)
	}
	// L0 arrived at 10 ms; no later frames arrived, so the 60 ms wait
	// expires and the frame decodes at 70 ms with latency 70 ms.
	if got := r.Latency.Max(); got != 70 {
		t.Fatalf("latency %v ms, want 70", got)
	}
	if got := r.SSIM.Max(); got != SSIMByLayer[0] {
		t.Fatalf("ssim %v, want layer-0 quality", got)
	}
}

func TestDecodeEarlyWhenNextTwoLayer0sArrive(t *testing.T) {
	loop := sim.NewLoop(1)
	r := newTestReceiver(loop)
	loop.At(10*time.Millisecond, func() { deliver(r, 0, 0, 0) })
	loop.At(20*time.Millisecond, func() { deliver(r, 1, 0, 0) })
	loop.At(30*time.Millisecond, func() { deliver(r, 2, 0, 0) })
	loop.Run()
	if r.Decoded != 3 {
		t.Fatalf("decoded %d frames, want 3", r.Decoded)
	}
	// Frame 0 must decode at 30 ms (when frame 2's L0 lands), not 70.
	if got := r.Latency.Min(); got != 30 {
		t.Fatalf("min latency %v ms, want 30 (early trigger)", got)
	}
}

func TestHigherLayersNeedAllLowerLayers(t *testing.T) {
	loop := sim.NewLoop(1)
	r := newTestReceiver(loop)
	// Frame 0 (a keyframe): L0 and L2 arrive, L1 missing → decode at
	// layer 0 only.
	loop.At(time.Millisecond, func() {
		deliver(r, 0, 0, 0)
		deliver(r, 0, 2, 0)
	})
	loop.Run()
	if got := r.SSIM.Max(); got != SSIMByLayer[0] {
		t.Fatalf("ssim %v: L2 must not decode without L1", got)
	}
}

func TestInterFrameDependency(t *testing.T) {
	loop := sim.NewLoop(1)
	r := newTestReceiver(loop)
	// Frame 0: all layers. Frame 1: all layers, but frame 0 will have
	// decoded at L0 only if its enhancement layers never came — so
	// send frame 0 with L0 only, frame 1 with everything. Frame 1 must
	// still decode at L0 (dependency on frame 0's decode level).
	loop.At(1*time.Millisecond, func() { deliver(r, 0, 0, 0) })
	loop.At(2*time.Millisecond, func() {
		deliver(r, 1, 0, 0)
		deliver(r, 1, 1, 0)
		deliver(r, 1, 2, 0)
	})
	loop.At(3*time.Millisecond, func() { deliver(r, 2, 0, 0) })
	loop.At(4*time.Millisecond, func() { deliver(r, 3, 0, 0) })
	loop.Run()
	for _, v := range r.SSIM.Values() {
		if v != SSIMByLayer[0] {
			t.Fatalf("frame decoded at %v despite broken dependency chain", v)
		}
	}
}

func TestKeyframeResetsDependency(t *testing.T) {
	loop := sim.NewLoop(1)
	r := NewReceiver(loop, Config{Duration: time.Minute, KeyframeInterval: 2})
	// Frame 0: L0 only (decodes at layer 0). Frame 1: full layers but
	// chained to frame 0 → layer 0. Frame 2 is a keyframe (2 % 2 == 0):
	// full layers decode at layer 2 despite frame 1's level.
	loop.At(1*time.Millisecond, func() { deliver(r, 0, 0, 0) })
	loop.At(2*time.Millisecond, func() {
		for l := 0; l < Layers; l++ {
			deliver(r, 1, l, 0)
		}
	})
	loop.At(3*time.Millisecond, func() {
		for l := 0; l < Layers; l++ {
			deliver(r, 2, l, 0)
		}
	})
	loop.Run()
	if r.Decoded != 3 {
		t.Fatalf("decoded %d, want 3", r.Decoded)
	}
	if got := r.SSIM.Max(); got != SSIMByLayer[2] {
		t.Fatalf("keyframe should decode at layer 2, best ssim %v", got)
	}
}

func TestLateEnhancementAfterDecodeIsDiscarded(t *testing.T) {
	loop := sim.NewLoop(1)
	r := newTestReceiver(loop)
	loop.At(time.Millisecond, func() { deliver(r, 0, 0, 0) })
	// L1/L2 arrive long after the 60 ms decode deadline.
	loop.At(200*time.Millisecond, func() {
		deliver(r, 0, 1, 0)
		deliver(r, 0, 2, 0)
	})
	loop.Run()
	if r.Decoded != 1 {
		t.Fatalf("decoded %d, want 1", r.Decoded)
	}
	if got := r.SSIM.Max(); got != SSIMByLayer[0] {
		t.Fatalf("late layers must not upgrade a decoded frame: %v", got)
	}
}

func TestFrameWithoutLayer0NeverDecodes(t *testing.T) {
	loop := sim.NewLoop(1)
	r := newTestReceiver(loop)
	loop.At(time.Millisecond, func() {
		deliver(r, 0, 1, 0)
		deliver(r, 0, 2, 0)
	})
	loop.Run()
	if r.Decoded != 0 {
		t.Fatalf("decoded %d frames without layer 0", r.Decoded)
	}
	if r.Frozen(1) != 1 {
		t.Fatalf("Frozen(1) = %d, want 1", r.Frozen(1))
	}
}

func TestLatencyMeasuredFromCapture(t *testing.T) {
	loop := sim.NewLoop(1)
	r := newTestReceiver(loop)
	// Captured (sent) at 100 ms, arrives at 150 ms, decodes at 210 ms.
	loop.At(150*time.Millisecond, func() { deliver(r, 0, 0, 100*time.Millisecond) })
	loop.Run()
	if got := r.Latency.Max(); got != 110 {
		t.Fatalf("latency %v ms, want 110 (decode at 210 - capture at 100)", got)
	}
}

func TestOutOfOrderLayer0sTriggerEarlierFrames(t *testing.T) {
	loop := sim.NewLoop(1)
	r := newTestReceiver(loop)
	// L0 of frames 1 and 2 arrive before frame 0's: when frame 0's L0
	// finally lands, its wait condition is already satisfied and it
	// decodes immediately.
	loop.At(1*time.Millisecond, func() { deliver(r, 1, 0, 0) })
	loop.At(2*time.Millisecond, func() { deliver(r, 2, 0, 0) })
	loop.At(30*time.Millisecond, func() { deliver(r, 0, 0, 0) })
	loop.Run()
	if r.Decoded != 3 {
		t.Fatalf("decoded %d, want 3", r.Decoded)
	}
	// Frame 0 decodes at its own arrival instant (30 ms), since the
	// next two L0s already arrived.
	if got := r.Latency.Min(); got != 30 {
		t.Fatalf("min latency %v, want 30", got)
	}
}

func TestDuplicateLayerDeliveryIsIdempotent(t *testing.T) {
	loop := sim.NewLoop(1)
	r := newTestReceiver(loop)
	loop.At(time.Millisecond, func() {
		deliver(r, 0, 0, 0)
		deliver(r, 0, 0, 0) // duplicate
	})
	loop.Run()
	if r.Decoded != 1 {
		t.Fatalf("decoded %d, want 1", r.Decoded)
	}
	if r.Latency.N() != 1 {
		t.Fatalf("latency recorded %d times", r.Latency.N())
	}
}
