package video

import (
	"testing"
	"time"

	"hvc/internal/channel"
	"hvc/internal/sim"
	"hvc/internal/steering"
	"hvc/internal/trace"
	"hvc/internal/transport"
)

// session wires a sender and receiver across the given channels with
// the given client-side steering policy.
func session(t *testing.T, seed int64, dur time.Duration, mkSteer func(*channel.Group) steering.Policy, chs func(*sim.Loop) []*channel.Channel) (*Sender, *Receiver, *sim.Loop) {
	t.Helper()
	loop := sim.NewLoop(seed)
	g := channel.NewGroup(chs(loop)...)
	client := transport.NewEndpoint(loop, g, channel.A)
	server := transport.NewEndpoint(loop, g, channel.B)

	cfg := Config{Duration: dur}
	recv := NewReceiver(loop, cfg)
	server.Listen(func() transport.Config {
		return transport.Config{Steer: mkSteer(g), Unreliable: true, MsgTimeout: 30 * time.Second}
	}, func(c *transport.Conn) { recv.Attach(c) })

	conn := client.Dial(transport.Config{
		Steer:      mkSteer(g),
		Unreliable: true,
		MsgTimeout: 30 * time.Second,
	})
	snd := NewSender(loop, conn, cfg)
	return snd, recv, loop
}

func cleanChannels(loop *sim.Loop) []*channel.Channel {
	// A wide, fast, clean channel: every frame should arrive quickly.
	return []*channel.Channel{channel.New(loop, channel.Config{
		Props:     channel.Properties{Name: channel.NameEMBB, BaseRTT: 20 * time.Millisecond, Bandwidth: 60e6},
		DownTrace: trace.Constant("clean", 20*time.Millisecond, 60e6),
	})}
}

func embbOnly(g *channel.Group) steering.Policy {
	return steering.NewSingle(g.Get(channel.NameEMBB))
}

func TestLayerSizesMatchBitrates(t *testing.T) {
	loop := sim.NewLoop(1)
	g := channel.NewGroup(cleanChannels(loop)...)
	client := transport.NewEndpoint(loop, g, channel.A)
	transport.NewEndpoint(loop, g, channel.B)
	conn := client.Dial(transport.Config{Steer: embbOnly(g), Unreliable: true})
	s := NewSender(loop, conn, Config{Duration: time.Second})
	// 400 kbps at 30 fps = 1666 B per frame for layer 0.
	if s.sizes[0] != 1666 {
		t.Fatalf("layer0 size = %d, want 1666", s.sizes[0])
	}
	if s.sizes[1] != 17083 || s.sizes[2] != 31250 {
		t.Fatalf("layer sizes = %v", s.sizes)
	}
	if s.FrameCount() != 30 {
		t.Fatalf("FrameCount = %d, want 30", s.FrameCount())
	}
}

func TestCleanPathDecodesEverythingAtTopLayer(t *testing.T) {
	snd, recv, loop := session(t, 1, 2*time.Second, embbOnly, cleanChannels)
	snd.Start()
	loop.RunUntil(5 * time.Second)

	if recv.Decoded != snd.FrameCount() {
		t.Fatalf("decoded %d/%d frames", recv.Decoded, snd.FrameCount())
	}
	if recv.Frozen(snd.FrameCount()) != 0 {
		t.Fatal("no frame should freeze on a clean path")
	}
	// On a clean path every frame should reach layer 2 quality.
	if got := recv.SSIM.Min(); got != SSIMByLayer[2] {
		t.Fatalf("min SSIM = %v, want %v", got, SSIMByLayer[2])
	}
}

func TestDecodeWaitBoundsLatency(t *testing.T) {
	snd, recv, loop := session(t, 2, 2*time.Second, embbOnly, cleanChannels)
	snd.Start()
	loop.RunUntil(5 * time.Second)
	// 12 Mbps over 60 Mbps, 10 ms one-way: each frame ~3.3 ms of
	// serialization + 10 ms propagation; the decode trigger is L0 of
	// the next two frames (≈66 ms later). Latency must sit well under
	// the 60 ms wait + transmission but above propagation.
	p95 := recv.Latency.Percentile(95)
	if p95 < 10 || p95 > 80 {
		t.Fatalf("p95 latency %.1f ms out of plausible band", p95)
	}
}

func TestOutageFreezesOrDelaysFrames(t *testing.T) {
	// A channel that dies at 0.5 s and never recovers: frames sent
	// after the outage must not be decoded.
	outage := func(loop *sim.Loop) []*channel.Channel {
		// Traces repeat, so the outage sample must outlast the test
		// window (the wrap happens far beyond RunUntil below).
		tr := &trace.Trace{Name: "dies", Samples: []trace.Sample{
			{At: 0, RTT: 20 * time.Millisecond, Rate: 60e6},
			{At: 500 * time.Millisecond, RTT: 20 * time.Millisecond, Rate: 0},
			{At: 10 * time.Minute, RTT: 20 * time.Millisecond, Rate: 0},
		}}
		return []*channel.Channel{channel.New(loop, channel.Config{
			Props:     channel.Properties{Name: channel.NameEMBB, BaseRTT: 20 * time.Millisecond, Bandwidth: 60e6},
			DownTrace: tr,
		})}
	}
	snd, recv, loop := session(t, 3, 2*time.Second, embbOnly, outage)
	snd.Start()
	loop.RunUntil(10 * time.Second)
	if recv.Frozen(snd.FrameCount()) == 0 {
		t.Fatal("permanent outage should freeze frames")
	}
	if recv.Decoded == 0 {
		t.Fatal("frames before the outage should decode")
	}
}

func TestSVCDependencyLimitsQuality(t *testing.T) {
	// Drop enough packets that enhancement layers are often missing;
	// the dependency rule must keep SSIM varied but valid, and layer-0
	// frames must still decode.
	lossy := func(loop *sim.Loop) []*channel.Channel {
		return []*channel.Channel{channel.New(loop, channel.Config{
			Props:     channel.Properties{Name: channel.NameEMBB, BaseRTT: 20 * time.Millisecond, Bandwidth: 60e6, LossProb: 0.08},
			DownTrace: trace.Constant("lossy", 20*time.Millisecond, 60e6),
		})}
	}
	snd, recv, loop := session(t, 3, 3*time.Second, embbOnly, lossy)
	snd.Start()
	loop.RunUntil(10 * time.Second)

	if recv.Decoded == 0 {
		t.Fatal("nothing decoded")
	}
	for _, v := range recv.SSIM.Values() {
		valid := false
		for _, s := range SSIMByLayer {
			if v == s {
				valid = true
				break
			}
		}
		if !valid {
			t.Fatalf("SSIM %v not in table", v)
		}
	}
	if recv.SSIM.Min() == recv.SSIM.Max() {
		t.Fatal("8% loss should produce mixed quality levels")
	}
}

func TestPrioritySteeringProtectsLayer0(t *testing.T) {
	// eMBB suffers a mid-stream outage; URLLC carries layer 0 under
	// priority steering, so frames keep decoding (at base quality)
	// with bounded latency, while eMBB-only stalls.
	chs := func(loop *sim.Loop) []*channel.Channel {
		tr := &trace.Trace{Name: "flap", Samples: []trace.Sample{
			{At: 0, RTT: 40 * time.Millisecond, Rate: 60e6},
			{At: 1 * time.Second, RTT: 40 * time.Millisecond, Rate: 0},
			{At: 3 * time.Second, RTT: 40 * time.Millisecond, Rate: 60e6},
		}}
		embb := channel.New(loop, channel.Config{
			Props:     channel.Properties{Name: channel.NameEMBB, BaseRTT: 40 * time.Millisecond, Bandwidth: 60e6},
			DownTrace: tr,
		})
		return []*channel.Channel{embb, channel.URLLC(loop)}
	}
	prio := func(g *channel.Group) steering.Policy {
		return steering.NewPriority(g, channel.A, steering.PriorityConfig{AdmitPrio: 0})
	}
	// Note: both sides use A in mkSteer... the server side's policy
	// side matters only for its (nonexistent) reverse traffic.
	sndP, recvP, loopP := session(t, 5, 4*time.Second, prio, chs)
	sndP.Start()
	loopP.RunUntil(12 * time.Second)

	sndE, recvE, loopE := session(t, 5, 4*time.Second, embbOnly, chs)
	sndE.Start()
	loopE.RunUntil(12 * time.Second)

	if recvP.Decoded <= recvE.Decoded {
		t.Fatalf("priority decoded %d, embb-only %d; priority should decode more during outage",
			recvP.Decoded, recvE.Decoded)
	}
	if recvP.Latency.Percentile(95) >= recvE.Latency.Percentile(95) {
		t.Fatalf("priority p95 %.0f ms should beat embb-only %.0f ms",
			recvP.Latency.Percentile(95), recvE.Latency.Percentile(95))
	}
	// And the cost: priority's SSIM should be no better than
	// eMBB-only's (late high-quality frames vs. on-time low-quality).
	if recvP.SSIM.Mean() > recvE.SSIM.Mean() {
		t.Fatalf("priority SSIM %.3f should not beat embb-only %.3f",
			recvP.SSIM.Mean(), recvE.SSIM.Mean())
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero duration should panic")
		}
	}()
	NewReceiver(sim.NewLoop(1), Config{})
}
