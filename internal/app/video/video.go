// Package video implements the paper's real-time scalable-video
// workload (§3.3): a sender that encodes each frame as three SVC
// spatial layers with target bitrates of 400, 4100, and 7500 kbps and
// transmits the layers as three separate messages (30 fps) over an
// unreliable connection, and a receiver that applies the paper's
// decode rule — after layer 0 of a frame arrives, wait 60 ms or until
// layer 0 of the next two frames arrives, then decode the frame at the
// highest layer whose SVC dependencies are satisfied.
//
// Frame quality is scored with an SSIM table per decoded layer,
// standing in for the VP9-SVC encodings of the MOT17 sequence the
// paper used (the experiments depend only on the ordering and rough
// spacing of per-layer quality, not on pixel content).
package video

import (
	"fmt"
	"time"

	"hvc/internal/metrics"
	"hvc/internal/packet"
	"hvc/internal/sim"
	"hvc/internal/telemetry"
	"hvc/internal/transport"
)

// Layers is the number of SVC spatial layers.
const Layers = 3

// LayerBitrates are the per-layer target bitrates in bits per second;
// they sum to the paper's cumulative 12 Mbps.
var LayerBitrates = [Layers]float64{400e3, 4.1e6, 7.5e6}

// SSIMByLayer scores a frame decoded up to a given layer. Layer 0
// alone is watchable but soft; each enhancement layer adds quality.
// Values chosen to sit in the band Fig. 2 reports.
var SSIMByLayer = [Layers]float64{0.880, 0.948, 0.976}

// Config parameterizes one video session.
type Config struct {
	// FPS is the frame rate; 0 means 30.
	FPS int
	// Duration is how long the sender streams.
	Duration time.Duration
	// DecodeWait bounds how long the receiver holds a frame after its
	// layer 0 arrives; 0 means the paper's 60 ms.
	DecodeWait time.Duration
	// KeyframeInterval resets the inter-frame SVC dependency every N
	// frames (a real encoder's periodic keyframes); 0 means 30.
	KeyframeInterval int
}

func (cfg *Config) fillDefaults() {
	if cfg.FPS == 0 {
		cfg.FPS = 30
	}
	if cfg.DecodeWait == 0 {
		cfg.DecodeWait = 60 * time.Millisecond
	}
	if cfg.KeyframeInterval == 0 {
		cfg.KeyframeInterval = 30
	}
	if cfg.Duration <= 0 {
		panic("video: Config.Duration must be positive")
	}
}

// layerMsg identifies one layer of one frame on the wire.
type layerMsg struct {
	frame int
	layer int
}

// Sender paces frames onto an unreliable connection. Each layer is one
// message whose priority equals its layer index, which is exactly the
// application input the paper's priority-aware steering consumes.
type Sender struct {
	loop   *sim.Loop
	conn   *transport.Conn
	cfg    Config
	stream uint32
	frames int
	sizes  [Layers]int
}

// NewSender builds a sender over conn (which must be unreliable — the
// paper streams over UDP).
func NewSender(loop *sim.Loop, conn *transport.Conn, cfg Config) *Sender {
	cfg.fillDefaults()
	s := &Sender{loop: loop, conn: conn, cfg: cfg, stream: conn.NewStream()}
	interval := time.Second / time.Duration(cfg.FPS)
	for l := range s.sizes {
		s.sizes[l] = int(LayerBitrates[l] / float64(cfg.FPS) / 8)
	}
	s.frames = int(cfg.Duration / interval)
	return s
}

// FrameCount reports how many frames the sender will emit.
func (s *Sender) FrameCount() int { return s.frames }

// Start schedules the whole stream: one tick per frame, three
// messages per tick.
func (s *Sender) Start() {
	interval := time.Second / time.Duration(s.cfg.FPS)
	for f := 0; f < s.frames; f++ {
		f := f
		s.loop.At(time.Duration(f)*interval, func() { s.sendFrame(f) })
	}
}

func (s *Sender) sendFrame(f int) {
	for l := 0; l < Layers; l++ {
		s.conn.SendMessage(s.stream, packet.Priority(l), s.sizes[l], layerMsg{frame: f, layer: l})
	}
}

// Receiver applies the decode rule and accumulates the latency and
// SSIM distributions Fig. 2 plots.
type Receiver struct {
	loop   *sim.Loop
	cfg    Config
	tracer *telemetry.Tracer

	frames  map[int]*frameState
	decoded map[int]int // frame → decoded layer (-1 not decoded)

	// Latency and SSIM are distributions over decoded frames, in ms
	// and SSIM units respectively.
	Latency metrics.Distribution
	SSIM    metrics.Distribution

	// Decoded and Frozen count frames decoded versus never decoded by
	// stream end.
	Decoded int
}

type frameState struct {
	got      [Layers]bool
	sentAt   time.Duration
	l0At     time.Duration
	timer    sim.Timer
	decodedL int // -1 until decoded
}

// NewReceiver builds a receiver; attach it to the receiving connection
// with Attach.
func NewReceiver(loop *sim.Loop, cfg Config) *Receiver {
	cfg.fillDefaults()
	return &Receiver{
		loop:    loop,
		cfg:     cfg,
		frames:  make(map[int]*frameState),
		decoded: make(map[int]int),
	}
}

// SetTracer installs the telemetry hook; nil disables tracing.
func (r *Receiver) SetTracer(t *telemetry.Tracer) { r.tracer = t }

// Attach installs the receiver as conn's message handler.
func (r *Receiver) Attach(conn *transport.Conn) {
	conn.OnMessage(func(_ *transport.Conn, m transport.Message) { r.onMessage(m) })
}

// deadline is the decode rule's worst-case wait: DecodeWait after layer
// 0 arrives, which itself may trail the send by up to two frame
// intervals before the next-two-frames condition fires. A frame decoded
// within it is a telemetry "hit"; later, a "miss" (visible freeze).
func (r *Receiver) deadline() time.Duration {
	return r.cfg.DecodeWait + 2*time.Second/time.Duration(r.cfg.FPS)
}

func (r *Receiver) onMessage(m transport.Message) {
	lm, ok := m.Data.(layerMsg)
	if !ok {
		panic(fmt.Sprintf("video: unexpected message payload %T", m.Data))
	}
	fs := r.frame(lm.frame)
	if fs.decodedL >= 0 {
		return // frame already decoded; late enhancement data discarded
	}
	fs.got[lm.layer] = true
	fs.sentAt = m.SentAt
	if lm.layer == 0 {
		fs.l0At = r.loop.Now()
		fs.timer = r.loop.After(r.cfg.DecodeWait, func() { r.decode(lm.frame) })
		// Layer 0 of frames f-1 and f-2 may be waiting on us — and if
		// our own successors already arrived (reordering), this frame
		// can decode immediately too.
		r.maybeTriggerEarlier(lm.frame)
	}
}

func (r *Receiver) frame(f int) *frameState {
	fs, ok := r.frames[f]
	if !ok {
		fs = &frameState{decodedL: -1}
		r.frames[f] = fs
	}
	return fs
}

// maybeTriggerEarlier decodes frames f-2 and f-1 early when their
// wait condition ("layer 0 of the next two frames arrived") now holds.
func (r *Receiver) maybeTriggerEarlier(f int) {
	for _, earlier := range []int{f - 2, f - 1, f} {
		if earlier < 0 {
			continue
		}
		fs, ok := r.frames[earlier]
		if !ok || fs.decodedL >= 0 || !fs.got[0] {
			continue
		}
		if r.l0Arrived(earlier+1) && r.l0Arrived(earlier+2) {
			r.decode(earlier)
		}
	}
}

func (r *Receiver) l0Arrived(f int) bool {
	fs, ok := r.frames[f]
	return ok && (fs.got[0] || fs.decodedL >= 0)
}

// decode finalizes a frame at the highest layer whose SVC dependency
// chain is intact: all lower layers of this frame received, and the
// same layer decoded in the previous frame (reset at keyframes).
func (r *Receiver) decode(f int) {
	fs := r.frames[f]
	if fs == nil || fs.decodedL >= 0 || !fs.got[0] {
		return
	}
	fs.timer.Stop()

	level := 0
	for l := 1; l < Layers; l++ {
		if !fs.got[l] {
			break
		}
		if !r.prevSupports(f, l) {
			break
		}
		level = l
	}
	fs.decodedL = level
	r.decoded[f] = level
	r.Decoded++
	latency := r.loop.Now() - fs.sentAt
	r.Latency.AddDuration(latency)
	r.SSIM.Add(SSIMByLayer[level])
	if r.tracer.Enabled() {
		result := "hit"
		if latency > r.deadline() {
			result = "miss"
		}
		r.tracer.Emit(telemetry.Event{
			Layer: telemetry.LayerApp, Name: telemetry.EvFrameDecode,
			Msg: uint64(f), Dur: latency, Value: float64(level), Detail: result,
		})
		r.tracer.Count("video_frames_decoded_total", 1, "result", result)
		r.tracer.SetGauge("video_ssim_last", SSIMByLayer[level])
	}
	// Drop per-layer state we no longer need (keep decodedL for the
	// dependency checks of the next frames).
	fs.timer = sim.Timer{}
}

// prevSupports reports whether frame f may decode layer l given frame
// f-1's decode level. Keyframes start a fresh dependency chain.
func (r *Receiver) prevSupports(f, l int) bool {
	if f%r.cfg.KeyframeInterval == 0 {
		return true
	}
	prevLevel, ok := r.decoded[f-1]
	return ok && prevLevel >= l
}

// Frozen reports frames sent but never decoded, given the sender's
// frame count. Call it after the simulation drains.
func (r *Receiver) Frozen(sent int) int { return sent - r.Decoded }
