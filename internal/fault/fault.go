package fault

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"hvc/internal/channel"
	"hvc/internal/invariant"
	"hvc/internal/sim"
	"hvc/internal/telemetry"
)

// Inject arms every window of spec against the channels of g on loop,
// scheduling the fault starts and ends in virtual time. It must be
// called before the loop advances past the earliest window (in
// practice: at construction time, like everything else). Faults apply
// to both directions of the target channel — a channel-level fault
// models a radio- or path-level event — with burst processes keeping
// independent per-direction Gilbert–Elliott state.
//
// Telemetry (nil tracer disables it): EvFaultStart/EvFaultEnd events
// on LayerFault with the kind in Detail and the window length in Dur,
// plus a fault_windows_total counter labeled by channel and kind.
//
// Every random draw comes from private streams derived from the loop
// seed, the clause index, and the direction, so injection never
// perturbs the loop's shared Rand or any other link's private stream.
func Inject(loop *sim.Loop, g *channel.Group, spec Spec, tr *telemetry.Tracer) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	for i, ev := range spec.Events {
		ch := g.Get(ev.Channel)
		if ch == nil {
			return fmt.Errorf("fault: scenario names unknown channel %q", ev.Channel)
		}
		apply, clear := actions(loop, ch, ev, i)
		ev := ev
		start := func() {
			apply()
			if tr.Enabled() {
				tr.Emit(telemetry.Event{
					Layer: telemetry.LayerFault, Name: telemetry.EvFaultStart,
					Channel: ev.Channel, Detail: string(ev.Kind), Dur: ev.Dur,
				})
				tr.Count("fault_windows_total", 1, "channel", ev.Channel, "kind", string(ev.Kind))
			}
		}
		end := func() {
			clear()
			if invariant.Enabled() {
				checkRestored(ch, ev)
			}
			if tr.Enabled() {
				tr.Emit(telemetry.Event{
					Layer: telemetry.LayerFault, Name: telemetry.EvFaultEnd,
					Channel: ev.Channel, Detail: string(ev.Kind), Dur: ev.Dur,
				})
			}
		}
		for k := 0; k < ev.occurrences(); k++ {
			at := ev.At + time.Duration(k)*ev.Every
			loop.At(at, start)
			loop.At(at+ev.Dur, end)
		}
	}
	return nil
}

// actions builds the apply/clear pair for one clause. Burst processes
// are created once per clause and persist their chain state across
// repeated windows, like a fading channel revisited.
func actions(loop *sim.Loop, ch *channel.Channel, ev Event, clause int) (apply, clear func()) {
	switch ev.Kind {
	case Outage:
		// The injector knows each window's duration, so it records the
		// scheduled recovery time as an advisory hint: consumers (the
		// outage experiment's fast-forward) can prove how long the
		// blackout lasts without peeking at the fault schedule.
		return func() { ch.SetOutageUntil(loop.Now() + ev.Dur) }, func() { ch.SetOutage(false) }
	case Burst:
		a := newGE(loop.Seed(), ev, clause, "a")
		b := newGE(loop.Seed(), ev, clause, "b")
		return func() {
				ch.SetLossFn(channel.A, a.drop)
				ch.SetLossFn(channel.B, b.drop)
			}, func() {
				ch.SetLossFn(channel.A, nil)
				ch.SetLossFn(channel.B, nil)
			}
	case Slump:
		return func() { ch.SetRateScale(ev.Factor) }, func() { ch.SetRateScale(1) }
	case Spike:
		return func() { ch.SetExtraDelay(ev.Delay) }, func() { ch.SetExtraDelay(0) }
	}
	panic(fmt.Sprintf("fault: unreachable kind %q after validation", ev.Kind))
}

// checkRestored asserts the window-restore invariant after a clause's
// end action: each fault kind owns one state slot per channel (the
// overlap rule Validate enforces), so the instant a window closes, its
// kind's slot must read nominal again. A failure here means two
// windows trampled each other's state — the channel would carry a
// phantom fault for the rest of the run.
func checkRestored(ch *channel.Channel, ev Event) {
	switch ev.Kind {
	case Outage:
		if ch.Down() {
			invariant.Failf("fault", "window-restore",
				"channel %q still down after outage window ended", ev.Channel)
		}
	case Burst:
		if ch.LossFnInstalled(channel.A) || ch.LossFnInstalled(channel.B) {
			invariant.Failf("fault", "window-restore",
				"channel %q still has a loss process after burst window ended", ev.Channel)
		}
	case Slump:
		if s := ch.RateScale(); s != 1 {
			invariant.Failf("fault", "window-restore",
				"channel %q rate scale %v after slump window ended", ev.Channel, s)
		}
	case Spike:
		if d := ch.ExtraDelay(); d != 0 {
			invariant.Failf("fault", "window-restore",
				"channel %q extra delay %v after spike window ended", ev.Channel, d)
		}
	}
}

// geProc is one direction's Gilbert–Elliott two-state loss chain: each
// packet first advances the state (good→bad with PGB, bad→good with
// PBG), then drops with the state's loss probability. The classic
// bursty-loss model ERRANT fits to measured RAN conditions.
type geProc struct {
	rng               *rand.Rand
	bad               bool
	pgb, pbg          float64
	lossBad, lossGood float64
}

func newGE(seed int64, ev Event, clause int, dir string) *geProc {
	h := fnv.New64a()
	fmt.Fprintf(h, "fault\x00%s\x00%s\x00%d", ev.Channel, dir, clause)
	return &geProc{
		rng: rand.New(rand.NewSource(seed ^ int64(h.Sum64()))),
		pgb: ev.PGB, pbg: ev.PBG,
		lossBad: ev.LossBad, lossGood: ev.LossGood,
	}
}

// drop advances the chain one packet and reports whether to drop it.
func (g *geProc) drop() bool {
	if g.bad {
		if g.rng.Float64() < g.pbg {
			g.bad = false
		}
	} else {
		if g.rng.Float64() < g.pgb {
			g.bad = true
		}
	}
	p := g.lossGood
	if g.bad {
		p = g.lossBad
	}
	return p > 0 && g.rng.Float64() < p
}
