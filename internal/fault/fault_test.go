package fault

import (
	"reflect"
	"testing"
	"time"

	"hvc/internal/channel"
	"hvc/internal/packet"
	"hvc/internal/sim"
	"hvc/internal/telemetry"
	"hvc/internal/trace"
)

// world builds a loop plus a one-channel group (20 ms RTT, 8 Mbps both
// ways: a 1000-byte packet serializes in 1 ms and arrives 11 ms after
// an idle send) with delivery times collected per side.
func world(seed int64) (*sim.Loop, *channel.Group, *[]time.Duration) {
	loop := sim.NewLoop(seed)
	ch := channel.New(loop, channel.Config{
		Props:     channel.Properties{Name: "embb", BaseRTT: 20 * time.Millisecond, Bandwidth: 8e6},
		DownTrace: trace.Constant("c", 20*time.Millisecond, 8e6),
	})
	var atB []time.Duration
	ch.SetSink(channel.B, func(p *packet.Packet) { atB = append(atB, loop.Now()) })
	ch.SetSink(channel.A, func(p *packet.Packet) {})
	return loop, channel.NewGroup(ch), &atB
}

// sendEvery schedules one 1000-byte packet from A every interval until
// end, starting at interval.
func sendEvery(loop *sim.Loop, g *channel.Group, interval, end time.Duration) {
	ch := g.All()[0]
	var id uint64
	for at := interval; at <= end; at += interval {
		id++
		p := &packet.Packet{ID: id, Size: 1000}
		loop.At(at, func() { ch.Send(channel.A, p) })
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	for _, s := range []string{
		"none",
		"outage:ch=embb,at=5s,dur=2s",
		"outage:ch=embb,at=5s,dur=2s,every=8s,count=3",
		"outage:ch=embb,at=1s,dur=1s;outage:ch=urllc,at=1s,dur=1s",
		"burst:ch=embb,at=0s,dur=30s,pgb=0.02,pbg=0.3,loss=0.9,lossgood=0.001",
		"slump:ch=embb,at=2s,dur=4s,factor=0.25",
		"spike:ch=urllc,at=1.5s,dur=500ms,delay=80ms",
		"outage:ch=embb,at=5s,dur=2s;burst:ch=embb,at=10s,dur=5s,pgb=0.01,pbg=0.25,loss=1,lossgood=0",
	} {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		canon := spec.String()
		again, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("ParseSpec(String(%q)) = ParseSpec(%q): %v", s, canon, err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("round trip of %q via %q changed the spec:\n%+v\n%+v", s, canon, spec, again)
		}
		if again.String() != canon {
			t.Fatalf("String not a fixed point: %q then %q", canon, again.String())
		}
	}
}

func TestParseSpecEmpty(t *testing.T) {
	for _, s := range []string{"", "none", "  none  "} {
		spec, err := ParseSpec(s)
		if err != nil || !spec.Empty() {
			t.Fatalf("ParseSpec(%q) = %+v, %v; want empty", s, spec, err)
		}
		if spec.String() != "none" {
			t.Fatalf("empty spec renders %q, want none", spec.String())
		}
	}
}

func TestParseSpecDefaults(t *testing.T) {
	spec, err := ParseSpec("burst:ch=x,at=0s,dur=1s")
	if err != nil {
		t.Fatal(err)
	}
	ev := spec.Events[0]
	if ev.PGB != 0.01 || ev.PBG != 0.25 || ev.LossBad != 1 || ev.LossGood != 0 {
		t.Fatalf("burst defaults = %+v", ev)
	}
	spec, err = ParseSpec("slump:ch=x,at=0s,dur=1s")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Events[0].Factor != 0.1 {
		t.Fatalf("slump default factor = %v", spec.Events[0].Factor)
	}
	spec, err = ParseSpec("spike:ch=x,at=0s,dur=1s")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Events[0].Delay != 100*time.Millisecond {
		t.Fatalf("spike default delay = %v", spec.Events[0].Delay)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for name, s := range map[string]string{
		"unknown kind":        "meteor:ch=embb,at=0s,dur=1s",
		"no colon":            "outage",
		"no fields":           "outage:",
		"bad field":           "outage:ch",
		"empty value":         "outage:ch=,at=0s,dur=1s",
		"unknown key":         "outage:ch=embb,at=0s,dur=1s,zap=1",
		"duplicate key":       "outage:ch=embb,ch=embb,at=0s,dur=1s",
		"missing ch":          "outage:at=0s,dur=1s",
		"missing dur":         "outage:ch=embb,at=0s",
		"negative at":         "outage:ch=embb,at=-1s,dur=1s",
		"zero dur":            "outage:ch=embb,at=0s,dur=0s",
		"every without count": "outage:ch=embb,at=0s,dur=1s,every=5s",
		"every below dur":     "outage:ch=embb,at=0s,dur=2s,every=1s,count=3",
		"count zero":          "outage:ch=embb,at=0s,dur=1s,every=5s,count=0",
		"count huge":          "outage:ch=embb,at=0s,dur=1s,every=5s,count=99999999",
		"overlap same kind":   "outage:ch=embb,at=0s,dur=5s;outage:ch=embb,at=2s,dur=1s",
		"prob above one":      "burst:ch=embb,at=0s,dur=1s,pgb=1.5",
		"factor zero":         "slump:ch=embb,at=0s,dur=1s,factor=0",
		"burst key on outage": "outage:ch=embb,at=0s,dur=1s,pgb=0.1",
		"slump key on burst":  "burst:ch=embb,at=0s,dur=1s,factor=0.5",
		"spike key on slump":  "slump:ch=embb,at=0s,dur=1s,delay=10ms",
		"past horizon":        "outage:ch=embb,at=999h,dur=2h",
	} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("%s: ParseSpec(%q) accepted, want error", name, s)
		}
	}
}

func TestOverlapAllowedAcrossKindsAndChannels(t *testing.T) {
	for _, s := range []string{
		"outage:ch=embb,at=0s,dur=5s;slump:ch=embb,at=2s,dur=1s",
		"outage:ch=embb,at=0s,dur=5s;outage:ch=urllc,at=2s,dur=1s",
	} {
		if _, err := ParseSpec(s); err != nil {
			t.Errorf("ParseSpec(%q): %v, want ok (different kind/channel may overlap)", s, err)
		}
	}
}

func TestDefaultSchedule(t *testing.T) {
	spec := Default("embb", 8*time.Second)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	want := "outage:ch=embb,at=2s,dur=1s;outage:ch=embb,at=5s,dur=1s"
	if spec.String() != want {
		t.Fatalf("Default = %q, want %q", spec.String(), want)
	}
	// The canonical default must survive its own grammar.
	if _, err := ParseSpec(spec.String()); err != nil {
		t.Fatal(err)
	}
}

func TestInjectUnknownChannel(t *testing.T) {
	loop, g, _ := world(1)
	spec, err := ParseSpec("outage:ch=nosuch,at=1s,dur=1s")
	if err != nil {
		t.Fatal(err)
	}
	if err := Inject(loop, g, spec, nil); err == nil {
		t.Fatal("Inject accepted a scenario naming an unknown channel")
	}
}

func TestInjectOutageBlocksAndResumes(t *testing.T) {
	loop, g, atB := world(1)
	spec, err := ParseSpec("outage:ch=embb,at=50ms,dur=100ms")
	if err != nil {
		t.Fatal(err)
	}
	if err := Inject(loop, g, spec, nil); err != nil {
		t.Fatal(err)
	}
	ch := g.All()[0]
	loop.At(40*time.Millisecond, func() {
		if ch.Down() {
			t.Error("channel down before the window")
		}
	})
	loop.At(60*time.Millisecond, func() {
		if !ch.Down() {
			t.Error("channel up inside the window")
		}
		if ch.QueueDelay(channel.A) < time.Hour {
			t.Error("QueueDelay should advertise a dead channel")
		}
	})
	loop.At(160*time.Millisecond, func() {
		if ch.Down() {
			t.Error("channel still down after the window")
		}
	})
	sendEvery(loop, g, 10*time.Millisecond, 300*time.Millisecond)
	loop.Run()

	// Packets sent at 10..40 ms arrive normally (11 ms after send);
	// nothing arrives inside (61 ms, 150 ms]; the backlog sent during
	// the outage (50..140 ms, queued) drains right after 150 ms.
	if len(*atB) != 30 {
		t.Fatalf("delivered %d packets, want all 30", len(*atB))
	}
	gapStart := 51*time.Millisecond + 11*time.Millisecond // last pre-outage arrival upper bound
	for _, at := range *atB {
		if at > gapStart && at <= 150*time.Millisecond {
			t.Fatalf("arrival at %v inside the outage window", at)
		}
	}
	var resumed bool
	for _, at := range *atB {
		if at > 150*time.Millisecond && at < 170*time.Millisecond {
			resumed = true
		}
	}
	if !resumed {
		t.Fatal("backlog did not drain promptly after the outage")
	}
}

func TestInjectRepeatedOutages(t *testing.T) {
	loop, g, _ := world(1)
	spec, err := ParseSpec("outage:ch=embb,at=10ms,dur=10ms,every=50ms,count=3")
	if err != nil {
		t.Fatal(err)
	}
	if err := Inject(loop, g, spec, nil); err != nil {
		t.Fatal(err)
	}
	ch := g.All()[0]
	downAt := func(at time.Duration, want bool) {
		loop.At(at, func() {
			if ch.Down() != want {
				t.Errorf("Down() at %v = %v, want %v", at, ch.Down(), want)
			}
		})
	}
	downAt(15*time.Millisecond, true)
	downAt(30*time.Millisecond, false)
	downAt(65*time.Millisecond, true)
	downAt(80*time.Millisecond, false)
	downAt(115*time.Millisecond, true)
	downAt(130*time.Millisecond, false)
	loop.Run()
}

func TestInjectBurstDropsThenClears(t *testing.T) {
	loop, g, atB := world(1)
	// pgb=1, loss=1: the chain enters the bad state on the first packet
	// and drops everything for the whole window.
	spec, err := ParseSpec("burst:ch=embb,at=50ms,dur=100ms,pgb=1,pbg=0,loss=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := Inject(loop, g, spec, nil); err != nil {
		t.Fatal(err)
	}
	sendEvery(loop, g, 10*time.Millisecond, 300*time.Millisecond)
	loop.Run()

	st := g.All()[0].Stats(channel.A)
	if st.DroppedRandom == 0 {
		t.Fatal("burst window dropped nothing")
	}
	// Sends at 50..140 ms (9 packets) are consumed by the burst; the
	// rest arrive. (The packet sent at 140 ms finishes serializing at
	// 141 ms, still inside the window.)
	if want := 30 - int(st.DroppedRandom); len(*atB) != want {
		t.Fatalf("delivered %d, dropped %d, sent 30", len(*atB), st.DroppedRandom)
	}
	if st.DroppedRandom != 10 {
		t.Fatalf("burst dropped %d, want the 10 packets serialized in-window", st.DroppedRandom)
	}
}

func TestInjectSlumpSlowsDelivery(t *testing.T) {
	loop, g, atB := world(1)
	spec, err := ParseSpec("slump:ch=embb,at=50ms,dur=100ms,factor=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if err := Inject(loop, g, spec, nil); err != nil {
		t.Fatal(err)
	}
	ch := g.All()[0]
	// Idle-link sends: before the slump a packet takes 1 ms serialize +
	// 10 ms propagation; at half rate, 2 ms + 10 ms.
	var p1, p2 = &packet.Packet{ID: 1, Size: 1000}, &packet.Packet{ID: 2, Size: 1000}
	loop.At(10*time.Millisecond, func() { ch.Send(channel.A, p1) })
	loop.At(60*time.Millisecond, func() { ch.Send(channel.A, p2) })
	loop.Run()
	if len(*atB) != 2 {
		t.Fatalf("delivered %d, want 2", len(*atB))
	}
	if (*atB)[0] != 21*time.Millisecond {
		t.Fatalf("nominal arrival %v, want 21ms", (*atB)[0])
	}
	if (*atB)[1] != 72*time.Millisecond {
		t.Fatalf("slumped arrival %v, want 72ms (2 ms serialization at half rate)", (*atB)[1])
	}
}

func TestInjectSpikeAddsDelay(t *testing.T) {
	loop, g, atB := world(1)
	spec, err := ParseSpec("spike:ch=embb,at=50ms,dur=100ms,delay=30ms")
	if err != nil {
		t.Fatal(err)
	}
	if err := Inject(loop, g, spec, nil); err != nil {
		t.Fatal(err)
	}
	ch := g.All()[0]
	var p1, p2 = &packet.Packet{ID: 1, Size: 1000}, &packet.Packet{ID: 2, Size: 1000}
	loop.At(10*time.Millisecond, func() { ch.Send(channel.A, p1) })
	loop.At(60*time.Millisecond, func() { ch.Send(channel.A, p2) })
	loop.Run()
	if len(*atB) != 2 {
		t.Fatalf("delivered %d, want 2", len(*atB))
	}
	if (*atB)[0] != 21*time.Millisecond || (*atB)[1] != 101*time.Millisecond {
		t.Fatalf("arrivals %v, want [21ms 101ms]", *atB)
	}
}

// sinkRec is a minimal telemetry.Sink recording fault events.
type sinkRec struct {
	events []telemetry.Event
}

func (s *sinkRec) Event(ev telemetry.Event) {
	if ev.Layer == telemetry.LayerFault {
		s.events = append(s.events, ev)
	}
}
func (s *sinkRec) BeginRun(string) {}
func (s *sinkRec) Close() error    { return nil }

func TestInjectEmitsTelemetry(t *testing.T) {
	loop, g, _ := world(1)
	rec := &sinkRec{}
	tr := telemetry.New(rec)
	tr.BindClock(loop.Now)
	spec, err := ParseSpec("outage:ch=embb,at=10ms,dur=10ms,every=50ms,count=2")
	if err != nil {
		t.Fatal(err)
	}
	if err := Inject(loop, g, spec, tr); err != nil {
		t.Fatal(err)
	}
	loop.Run()
	if len(rec.events) != 4 {
		t.Fatalf("recorded %d fault events, want 4 (2 windows × start/end)", len(rec.events))
	}
	for i, want := range []struct {
		name string
		at   time.Duration
	}{
		{telemetry.EvFaultStart, 10 * time.Millisecond},
		{telemetry.EvFaultEnd, 20 * time.Millisecond},
		{telemetry.EvFaultStart, 60 * time.Millisecond},
		{telemetry.EvFaultEnd, 70 * time.Millisecond},
	} {
		ev := rec.events[i]
		if ev.Name != want.name || ev.At != want.at || ev.Channel != "embb" || ev.Detail != "outage" {
			t.Fatalf("event %d = %+v, want %s at %v on embb", i, ev, want.name, want.at)
		}
	}
	if n := tr.Registry().Value("fault_windows_total", "channel", "embb", "kind", "outage"); n != 2 {
		t.Fatalf("fault_windows_total = %v, want 2", n)
	}
}

// TestInjectDeterministic pins that an injected scenario is a pure
// function of the seed: same seed, same delivery trace; and that the
// burst processes draw only from their private streams.
func TestInjectDeterministic(t *testing.T) {
	run := func(seed int64) []time.Duration {
		loop, g, atB := world(seed)
		spec, err := ParseSpec("burst:ch=embb,at=20ms,dur=200ms,pgb=0.3,pbg=0.2,loss=0.8")
		if err != nil {
			t.Fatal(err)
		}
		if err := Inject(loop, g, spec, nil); err != nil {
			t.Fatal(err)
		}
		sendEvery(loop, g, 5*time.Millisecond, 400*time.Millisecond)
		loop.Run()
		return *atB
	}
	if !reflect.DeepEqual(run(7), run(7)) {
		t.Fatal("same seed produced different delivery traces")
	}
	if reflect.DeepEqual(run(7), run(8)) {
		t.Fatal("different seeds produced identical burst traces (stream not seeded)")
	}
}

// The outage apply hook records an advisory recovery hint
// (DownUntil) that the quiet-time fast-forward reads to prove a
// blackout dead. The hint must be visible mid-window with the exact
// recovery instant, and the restore hook must clear it — even when the
// loop has nothing else scheduled inside the window, i.e. when the
// scheduler jumps straight across the blackout.
func TestInjectOutageWindowRestoreAcrossJump(t *testing.T) {
	loop, g, _ := world(1)
	spec, err := ParseSpec("outage:ch=embb,at=1s,dur=1h")
	if err != nil {
		t.Fatal(err)
	}
	if err := Inject(loop, g, spec, nil); err != nil {
		t.Fatal(err)
	}
	ch := g.All()[0]
	const recovery = time.Second + time.Hour
	// One lone timer deep inside the blackout: the loop leaps from the
	// apply event to here in a single step, and the hint must already
	// be in place.
	var sawMid bool
	loop.At(30*time.Minute, func() {
		sawMid = true
		if !ch.Down() {
			t.Error("channel up mid-blackout")
		}
		if got := ch.DownUntil(); got != recovery {
			t.Errorf("DownUntil mid-blackout = %v, want %v", got, recovery)
		}
	})
	loop.Run()
	if !sawMid {
		t.Fatal("mid-blackout timer never fired")
	}
	if loop.Now() < recovery {
		t.Fatalf("loop stopped at %v, before the restore at %v", loop.Now(), recovery)
	}
	if ch.Down() {
		t.Error("channel still down after the window")
	}
	if got := ch.DownUntil(); got != 0 {
		t.Errorf("DownUntil after restore = %v, want 0", got)
	}
}
