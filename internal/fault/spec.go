// Package fault is the deterministic, virtual-time fault-injection
// subsystem: it drives scripted and seeded-random fault processes
// against the channels of a simulation — full outages (blackhole
// windows, e.g. cellular handover gaps), Gilbert–Elliott two-state
// loss bursts, rate slumps, and delay spikes — the condition regimes
// realistic RAN emulators (ERRANT, ZEUS) show dominate transport
// behaviour and which i.i.d. loss alone cannot express.
//
// A scenario is a compact, space-free Spec string so it can ride in
// hvcbench/hvcsweep flags and sweep-spec fields:
//
//	outage:ch=embb,at=5s,dur=2s,every=8s,count=2;burst:ch=embb,at=0s,dur=30s,pgb=0.02
//
// Clauses are ';'-separated; each is kind:key=value pairs joined by
// commas. Kinds and their keys (beyond the common ch/at/dur and the
// optional every/count repetition):
//
//	outage  — no extra keys; the channel blacks out for the window.
//	burst   — pgb, pbg (per-packet Gilbert–Elliott transition
//	          probabilities good→bad and bad→good), loss (drop
//	          probability in the bad state), lossgood (good state).
//	slump   — factor (trace rate multiplier, > 0).
//	spike   — delay (extra one-way delay).
//
// Everything is deterministic: scripted windows fire at fixed virtual
// times, and the burst processes draw from private streams derived
// from the loop seed, so a scenario never perturbs the delivery trace
// of a channel it does not name.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind names a fault process type.
type Kind string

// The fault kinds a scenario clause can request.
const (
	Outage Kind = "outage" // full blackout window
	Burst  Kind = "burst"  // Gilbert–Elliott loss burst
	Slump  Kind = "slump"  // rate multiplier window
	Spike  Kind = "spike"  // extra one-way delay window
)

// Limits that keep a typo from expanding into an unbounded schedule.
const (
	maxCount = 10_000
	maxTime  = 1000 * time.Hour
)

// An Event is one clause of a scenario: a fault of one kind against
// one channel, over one window (optionally repeated).
type Event struct {
	Kind    Kind
	Channel string
	// At is the start of the first window; Dur its length.
	At, Dur time.Duration
	// Every and Count repeat the window: occurrences start at
	// At + k*Every for k in [0, Count). Count <= 1 means one window.
	Every time.Duration
	Count int

	// Gilbert–Elliott parameters (Burst only): per-packet transition
	// probabilities and per-state drop probabilities.
	PGB, PBG          float64
	LossBad, LossGood float64

	// Factor multiplies the trace rate (Slump only).
	Factor float64

	// Delay is the extra one-way delay (Spike only).
	Delay time.Duration
}

// occurrences reports how many windows the event schedules.
func (e Event) occurrences() int {
	if e.Count < 1 {
		return 1
	}
	return e.Count
}

// A Spec is a parsed fault scenario: zero or more events. The zero
// value is the empty scenario (no faults).
type Spec struct {
	Events []Event
}

// Empty reports whether the scenario injects nothing.
func (s Spec) Empty() bool { return len(s.Events) == 0 }

// ParseSpec parses the scenario syntax described in the package
// comment. The empty string and "none" parse to the empty scenario.
// The result is validated and canonical: parsing the String of a
// parsed spec yields the same spec.
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return Spec{}, nil
	}
	var spec Spec
	for _, clause := range strings.Split(s, ";") {
		ev, err := parseClause(clause)
		if err != nil {
			return Spec{}, err
		}
		spec.Events = append(spec.Events, ev)
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

func parseClause(clause string) (Event, error) {
	kindStr, rest, ok := strings.Cut(clause, ":")
	if !ok || rest == "" {
		return Event{}, fmt.Errorf("fault: clause %q is not kind:key=value,...", clause)
	}
	ev := Event{Kind: Kind(kindStr), Count: 1}
	switch ev.Kind {
	case Outage:
	case Burst:
		ev.PGB, ev.PBG, ev.LossBad = 0.01, 0.25, 1
	case Slump:
		ev.Factor = 0.1
	case Spike:
		ev.Delay = 100 * time.Millisecond
	default:
		return Event{}, fmt.Errorf("fault: unknown kind %q (outage, burst, slump, spike)", kindStr)
	}
	seen := map[string]bool{}
	for _, field := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(field, "=")
		if !ok || val == "" {
			return Event{}, fmt.Errorf("fault: field %q is not key=value", field)
		}
		if seen[key] {
			return Event{}, fmt.Errorf("fault: duplicate key %q in clause %q", key, clause)
		}
		seen[key] = true
		var err error
		switch key {
		case "ch":
			ev.Channel = val
		case "at":
			ev.At, err = parseDur(key, val, 0)
		case "dur":
			ev.Dur, err = parseDur(key, val, 1)
		case "every":
			ev.Every, err = parseDur(key, val, 1)
		case "count":
			n, cerr := strconv.Atoi(val)
			if cerr != nil || n < 1 || n > maxCount {
				err = fmt.Errorf("fault: count %q out of [1,%d]", val, maxCount)
			}
			ev.Count = n
		case "pgb", "pbg", "loss", "lossgood":
			if ev.Kind != Burst {
				return Event{}, fmt.Errorf("fault: key %q only applies to burst", key)
			}
			var p float64
			p, err = parseProb(key, val)
			switch key {
			case "pgb":
				ev.PGB = p
			case "pbg":
				ev.PBG = p
			case "loss":
				ev.LossBad = p
			case "lossgood":
				ev.LossGood = p
			}
		case "factor":
			if ev.Kind != Slump {
				return Event{}, fmt.Errorf("fault: key %q only applies to slump", key)
			}
			f, ferr := strconv.ParseFloat(val, 64)
			if ferr != nil || f <= 0 {
				err = fmt.Errorf("fault: factor %q must be a positive number", val)
			}
			ev.Factor = f
		case "delay":
			if ev.Kind != Spike {
				return Event{}, fmt.Errorf("fault: key %q only applies to spike", key)
			}
			ev.Delay, err = parseDur(key, val, 1)
		default:
			return Event{}, fmt.Errorf("fault: unknown key %q in clause %q", key, clause)
		}
		if err != nil {
			return Event{}, err
		}
	}
	return ev, nil
}

// parseDur parses a duration bounded by maxTime; min 0 allows zero,
// min 1 requires a positive value.
func parseDur(key, val string, min time.Duration) (time.Duration, error) {
	d, err := time.ParseDuration(val)
	if err != nil || d < min || d > maxTime {
		return 0, fmt.Errorf("fault: %s %q is not a duration in [%v,%v]", key, val, min, maxTime)
	}
	return d, nil
}

func parseProb(key, val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("fault: %s %q is not a probability in [0,1]", key, val)
	}
	return p, nil
}

// Validate checks the scenario's internal consistency: every clause
// has a channel and a window, repetitions do not self-overlap, and no
// two windows of the same kind overlap on the same channel (each kind
// holds one state slot per link, so overlapping windows would restore
// it wrongly). Channel names are resolved later, against the group the
// scenario is injected into.
func (s Spec) Validate() error {
	type span struct {
		start, end time.Duration
	}
	windows := map[string][]span{}
	for _, ev := range s.Events {
		if ev.Channel == "" {
			return fmt.Errorf("fault: %s clause has no ch=", ev.Kind)
		}
		if ev.Dur <= 0 {
			return fmt.Errorf("fault: %s clause on %q has no dur=", ev.Kind, ev.Channel)
		}
		if ev.At < 0 || ev.At > maxTime {
			return fmt.Errorf("fault: %s clause on %q: at=%v out of range", ev.Kind, ev.Channel, ev.At)
		}
		n := ev.occurrences()
		if n > 1 {
			if ev.Every < ev.Dur {
				return fmt.Errorf("fault: %s clause on %q repeats every %v, shorter than its dur %v",
					ev.Kind, ev.Channel, ev.Every, ev.Dur)
			}
		} else if ev.Every != 0 {
			return fmt.Errorf("fault: %s clause on %q sets every= without count>1", ev.Kind, ev.Channel)
		}
		if last := ev.At + time.Duration(n-1)*ev.Every + ev.Dur; last > maxTime || last < 0 {
			return fmt.Errorf("fault: %s clause on %q extends past %v", ev.Kind, ev.Channel, maxTime)
		}
		key := ev.Channel + "\x00" + string(ev.Kind)
		for k := 0; k < n; k++ {
			start := ev.At + time.Duration(k)*ev.Every
			windows[key] = append(windows[key], span{start, start + ev.Dur})
		}
	}
	for key, spans := range windows {
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].end {
				ch, kind, _ := strings.Cut(key, "\x00")
				return fmt.Errorf("fault: overlapping %s windows on channel %q", kind, ch)
			}
		}
	}
	return nil
}

// String renders the scenario canonically: clause order preserved,
// every applicable key in fixed order, repetition keys only when the
// clause repeats. The empty scenario renders as "none" so the result
// is always a valid value in key=value grammars.
// ParseSpec(s.String()) reproduces s.
func (s Spec) String() string {
	if s.Empty() {
		return "none"
	}
	var b strings.Builder
	for i, ev := range s.Events {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s:ch=%s,at=%s,dur=%s", ev.Kind, ev.Channel, ev.At, ev.Dur)
		if ev.occurrences() > 1 {
			fmt.Fprintf(&b, ",every=%s,count=%d", ev.Every, ev.Count)
		}
		switch ev.Kind {
		case Burst:
			fmt.Fprintf(&b, ",pgb=%s,pbg=%s,loss=%s,lossgood=%s",
				fl(ev.PGB), fl(ev.PBG), fl(ev.LossBad), fl(ev.LossGood))
		case Slump:
			fmt.Fprintf(&b, ",factor=%s", fl(ev.Factor))
		case Spike:
			fmt.Fprintf(&b, ",delay=%s", ev.Delay)
		}
	}
	return b.String()
}

func fl(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Default builds the canonical blackout schedule the outage experiment
// uses when no scenario is given: two eMBB blackouts scaled to the run
// length (at 1/4 and 5/8 of the run, each 1/8 of the run long) — long
// enough to span several RTOs at full scale, short enough that the
// tiny determinism-matrix scale still fits both windows.
func Default(ch string, dur time.Duration) Spec {
	return Spec{Events: []Event{
		{Kind: Outage, Channel: ch, At: dur / 4, Dur: dur / 8, Count: 1},
		{Kind: Outage, Channel: ch, At: 5 * dur / 8, Dur: dur / 8, Count: 1},
	}}
}
