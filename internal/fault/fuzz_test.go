package fault

import (
	"reflect"
	"testing"
)

// FuzzFaultSpecParse exercises the scenario parser with arbitrary
// input: it must never panic, and any scenario it accepts must
// round-trip — the canonical String reparses to the same spec and is a
// fixed point.
func FuzzFaultSpecParse(f *testing.F) {
	f.Add("none")
	f.Add("outage:ch=embb,at=5s,dur=2s")
	f.Add("outage:ch=embb,at=5s,dur=2s,every=8s,count=3")
	f.Add("burst:ch=embb,at=0s,dur=30s,pgb=0.02,pbg=0.3,loss=0.9,lossgood=0.001")
	f.Add("slump:ch=embb,at=2s,dur=4s,factor=0.25")
	f.Add("spike:ch=urllc,at=1.5s,dur=500ms,delay=80ms")
	f.Add("outage:ch=embb,at=1s,dur=1s;burst:ch=urllc,at=0s,dur=10s")
	f.Add("outage:ch=embb,at=0s,dur=5s;outage:ch=embb,at=2s,dur=1s")
	f.Add("burst:ch=x,at=0s,dur=1s,pgb=1e-300")
	f.Add("outage:ch=embb,at=999h,dur=2h")
	f.Add(";;;")
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := ParseSpec(in)
		if err != nil {
			return // rejected: fine, as long as no panic
		}
		canonical := spec.String()
		back, err := ParseSpec(canonical)
		if err != nil {
			t.Fatalf("canonical form rejected: %q -> %q: %v", in, canonical, err)
		}
		if !reflect.DeepEqual(back, spec) {
			t.Fatalf("round-trip changed the spec:\n in: %+v\nout: %+v", spec, back)
		}
		if again := back.String(); again != canonical {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canonical, again)
		}
	})
}
