// Package prof wires the standard runtime/pprof entry points into the
// repository's commands, so a slow or allocation-heavy run can be
// captured with the stock toolchain:
//
//	hvcbench -exp fig1a -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	go tool pprof -top cpu.pb.gz
//
// Profiling changes no simulation behaviour: runs remain byte-identical
// with and without it.
package prof

import (
	"flag"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds one command's -cpuprofile/-memprofile flag values.
type Flags struct {
	cpu string
	mem string
	f   *os.File
}

// Register installs -cpuprofile and -memprofile on the default flag
// set. Call before flag.Parse.
func Register() *Flags {
	p := &Flags{}
	flag.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&p.mem, "memprofile", "", "write an allocation profile to this file on exit")
	return p
}

// Start begins CPU profiling when -cpuprofile was given. Call after
// flag.Parse.
func (p *Flags) Start() error {
	if p.cpu == "" {
		return nil
	}
	f, err := os.Create(p.cpu)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.f = f
	return nil
}

// Stop ends CPU profiling and writes the allocation profile. Call once
// on the success path; a run that dies early leaves no profiles.
func (p *Flags) Stop() error {
	if p.f != nil {
		pprof.StopCPUProfile()
		if err := p.f.Close(); err != nil {
			return err
		}
		p.f = nil
	}
	if p.mem == "" {
		return nil
	}
	f, err := os.Create(p.mem)
	if err != nil {
		return err
	}
	runtime.GC() // settle the live set so the profile reflects steady state
	err = pprof.Lookup("allocs").WriteTo(f, 0)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
