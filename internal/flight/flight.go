// Package flight is the always-on crash-context recorder: a bounded
// ring buffer over the telemetry event stream that keeps the last N
// events of a run and dumps them when something goes wrong — an
// internal/invariant violation, an unexpected panic, a chaos finding.
// The point is triage: a replayable counterexample (hvcchaos -repro)
// tells you *that* a run breaks; its flight dump shows the packet,
// steering, and fault events leading up to the breach without
// re-running anything under a full tracer.
//
// A Recorder is a telemetry.Sink, so it attaches anywhere a tracer
// does and costs one ring write per event — no allocation, no I/O —
// until Dump is called. Like all sinks it is driven from the single
// simulation goroutine and needs no locking.
package flight

import (
	"encoding/json"
	"fmt"
	"io"

	"hvc/internal/telemetry"
)

// DefaultDepth is the ring size harnesses use when the caller does not
// choose one: enough context to see several RTTs of transport activity
// around a violation, small enough to print in a terminal.
const DefaultDepth = 64

// Schema identifies the dump header line's JSON layout.
const Schema = "hvc-flight/v1"

// A Recorder retains the most recent events of a run in a fixed ring.
type Recorder struct {
	ring  []telemetry.Event
	total uint64
	label string
}

// NewRecorder returns a recorder retaining the last depth events;
// depth <= 0 selects DefaultDepth. The ring is allocated once, here.
func NewRecorder(depth int) *Recorder {
	if depth <= 0 {
		depth = DefaultDepth
	}
	return &Recorder{ring: make([]telemetry.Event, depth)}
}

// Event implements telemetry.Sink: one ring write, no allocation.
func (r *Recorder) Event(ev telemetry.Event) {
	r.ring[r.total%uint64(len(r.ring))] = ev
	r.total++
}

// BeginRun implements telemetry.Sink, retaining the run label for the
// dump header. The ring is not cleared: a recorder is per run by
// construction (harnesses attach a fresh one to each trial).
func (r *Recorder) BeginRun(label string) { r.label = label }

// Close implements telemetry.Sink; a recorder holds no resources.
func (r *Recorder) Close() error { return nil }

// Note appends a synthetic event — the violation or panic that ended
// the run, typically — stamped with the last recorded event's virtual
// time, so the dump carries the breach itself in sequence with the
// telemetry that led to it.
func (r *Recorder) Note(layer, name, detail string) {
	var ev telemetry.Event
	if r.total > 0 {
		ev.At = r.ring[(r.total-1)%uint64(len(r.ring))].At
	}
	ev.Layer, ev.Name, ev.Detail = layer, name, detail
	r.Event(ev)
}

// Len reports how many events the ring currently holds.
func (r *Recorder) Len() int {
	if r.total < uint64(len(r.ring)) {
		return int(r.total)
	}
	return len(r.ring)
}

// Total reports how many events were observed over the run's lifetime.
func (r *Recorder) Total() uint64 { return r.total }

// Dropped reports how many events the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if kept := uint64(len(r.ring)); r.total > kept {
		return r.total - kept
	}
	return 0
}

// Label reports the run label of the last BeginRun.
func (r *Recorder) Label() string { return r.label }

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []telemetry.Event {
	n := r.Len()
	out := make([]telemetry.Event, 0, n)
	start := r.total - uint64(n)
	for i := 0; i < n; i++ {
		out = append(out, r.ring[(start+uint64(i))%uint64(len(r.ring))])
	}
	return out
}

// header is the first line of a dump: what run this is, how much the
// ring saw, and how much it kept.
type header struct {
	Schema  string `json:"schema"`
	Run     string `json:"run,omitempty"`
	Total   uint64 `json:"total"`
	Kept    int    `json:"kept"`
	Dropped uint64 `json:"dropped,omitempty"`
}

// Dump writes the retained events to w as one JSON header line
// followed by one JSONL event per line (the telemetry JSONL format,
// so the same tooling reads full traces and flight dumps). Output is
// deterministic: identical rings dump identical bytes.
func (r *Recorder) Dump(w io.Writer) error {
	b, err := json.Marshal(header{
		Schema: Schema, Run: r.label,
		Total: r.total, Kept: r.Len(), Dropped: r.Dropped(),
	})
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s\n", b); err != nil {
		return err
	}
	sink := telemetry.NewJSONL(w)
	for _, ev := range r.Events() {
		sink.Event(ev)
	}
	return sink.Close()
}
