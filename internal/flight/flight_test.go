package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"hvc/internal/telemetry"
)

func ev(i int) telemetry.Event {
	return telemetry.Event{
		At:    time.Duration(i) * time.Millisecond,
		Layer: telemetry.LayerChannel,
		Name:  telemetry.EvDeliver,
		Seq:   uint64(i),
	}
}

// TestFill covers the not-yet-wrapped regime: everything is kept, in
// order, and nothing is reported dropped.
func TestFill(t *testing.T) {
	r := NewRecorder(8)
	r.BeginRun("fill")
	for i := 0; i < 5; i++ {
		r.Event(ev(i))
	}
	if r.Len() != 5 || r.Total() != 5 || r.Dropped() != 0 {
		t.Fatalf("len/total/dropped = %d/%d/%d, want 5/5/0", r.Len(), r.Total(), r.Dropped())
	}
	if got := r.Label(); got != "fill" {
		t.Fatalf("label = %q, want %q", got, "fill")
	}
	for i, e := range r.Events() {
		if e.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i)
		}
	}
}

// TestWraparound pins the core ring property: after overflow the
// recorder keeps exactly the last depth events, oldest first, and
// accounts for every overwritten one.
func TestWraparound(t *testing.T) {
	const depth, total = 8, 29
	r := NewRecorder(depth)
	for i := 0; i < total; i++ {
		r.Event(ev(i))
	}
	if r.Len() != depth || r.Total() != total || r.Dropped() != total-depth {
		t.Fatalf("len/total/dropped = %d/%d/%d, want %d/%d/%d",
			r.Len(), r.Total(), r.Dropped(), depth, total, total-depth)
	}
	got := r.Events()
	for i, e := range got {
		want := uint64(total - depth + i)
		if e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest-first order broken)", i, e.Seq, want)
		}
	}
}

// TestDefaultDepth checks the zero-value depth selection.
func TestDefaultDepth(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < DefaultDepth+3; i++ {
		r.Event(ev(i))
	}
	if r.Len() != DefaultDepth {
		t.Fatalf("len = %d, want DefaultDepth %d", r.Len(), DefaultDepth)
	}
}

// TestNote checks the synthetic-event path used to fold an invariant
// violation into the dump: the note lands last, stamped with the
// preceding event's virtual time.
func TestNote(t *testing.T) {
	r := NewRecorder(8)
	r.Event(ev(3))
	r.Note("transport", "exactly-once", "flow 1 delivered message 2 twice")
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("len = %d, want 2", len(evs))
	}
	n := evs[1]
	if n.Layer != "transport" || n.Name != "exactly-once" || !strings.Contains(n.Detail, "twice") {
		t.Fatalf("note event = %+v", n)
	}
	if n.At != evs[0].At {
		t.Fatalf("note stamped %v, want previous event's time %v", n.At, evs[0].At)
	}

	// A note on an empty ring still records, stamped at zero.
	empty := NewRecorder(4)
	empty.Note("chaos", "panic", "boom")
	if got := empty.Events(); len(got) != 1 || got[0].At != 0 {
		t.Fatalf("note on empty ring: %+v", got)
	}
}

// TestDump checks the dump format: an hvc-flight/v1 header line with
// honest accounting, followed by the retained events in telemetry
// JSONL form, byte-identical across repeated dumps.
func TestDump(t *testing.T) {
	r := NewRecorder(4)
	r.BeginRun("bulk/seed=7")
	for i := 0; i < 6; i++ {
		r.Event(ev(i))
	}

	var buf bytes.Buffer
	if err := r.Dump(&buf); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("dump has %d lines, want header + 4 events:\n%s", len(lines), buf.String())
	}

	var hdr struct {
		Schema  string `json:"schema"`
		Run     string `json:"run"`
		Total   uint64 `json:"total"`
		Kept    int    `json:"kept"`
		Dropped uint64 `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("header %q: %v", lines[0], err)
	}
	if hdr.Schema != Schema || hdr.Run != "bulk/seed=7" || hdr.Total != 6 || hdr.Kept != 4 || hdr.Dropped != 2 {
		t.Fatalf("header = %+v", hdr)
	}
	for i, line := range lines[1:] {
		var e struct {
			Layer string `json:"layer"`
			Seq   uint64 `json:"seq"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("event line %q: %v", line, err)
		}
		if want := uint64(2 + i); e.Seq != want || e.Layer != telemetry.LayerChannel {
			t.Fatalf("event %d = %+v, want seq %d", i, e, want)
		}
	}

	var again bytes.Buffer
	if err := r.Dump(&again); err != nil {
		t.Fatalf("second Dump: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("repeated dumps of the same ring differ")
	}
}

// TestDumpWriteError propagates sink failures instead of dropping them.
func TestDumpWriteError(t *testing.T) {
	r := NewRecorder(4)
	r.Event(ev(0))
	if err := r.Dump(failWriter{}); err == nil {
		t.Fatal("Dump to a failing writer returned nil error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("disk full") }

// TestAsTracerSink drives the recorder through a real Tracer, the way
// chaos trials attach it: virtual-time stamping and run labels must
// arrive intact.
func TestAsTracerSink(t *testing.T) {
	r := NewRecorder(8)
	tr := telemetry.New(r)
	now := 5 * time.Millisecond
	tr.BindClock(func() time.Duration { return now })
	tr.BeginRun("trial")
	tr.Emit(telemetry.Event{Layer: telemetry.LayerTransport, Name: telemetry.EvSend, Seq: 9})
	evs := r.Events()
	if len(evs) != 1 || evs[0].At != now || evs[0].Seq != 9 {
		t.Fatalf("events = %+v", evs)
	}
	if r.Label() != "trial" {
		t.Fatalf("label = %q", r.Label())
	}
}
