package packet

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{Data, "data"},
		{Ack, "ack"},
		{Control, "control"},
		{Kind(9), "kind(9)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestMsgEnd(t *testing.T) {
	p := Packet{MsgRemaining: 10}
	if p.MsgEnd() {
		t.Fatal("packet with remaining bytes should not be MsgEnd")
	}
	p.MsgRemaining = 0
	if !p.MsgEnd() {
		t.Fatal("packet with 0 remaining should be MsgEnd")
	}
}

func TestMTUBudget(t *testing.T) {
	if MaxPayload+HeaderBytes != 1500 {
		t.Fatalf("MaxPayload+HeaderBytes = %d, want 1500", MaxPayload+HeaderBytes)
	}
}

func TestIDGenUnique(t *testing.T) {
	var g IDGen
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := g.Next()
		if id == 0 {
			t.Fatal("IDs must be nonzero so the zero Packet is distinguishable")
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestStringMentionsKeyFields(t *testing.T) {
	p := Packet{ID: 7, Flow: 3, Seq: 42, Kind: Ack, Size: 44, Priority: 2, MsgID: 5}
	s := p.String()
	for _, want := range []string{"id=7", "flow=3", "seq=42", "ack", "44B", "prio=2", "msg=5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
