// Package packet defines the network-layer unit exchanged across
// virtual channels, together with the small set of header fields the
// paper's steering policies read: packet kind, message boundaries, and
// packet/flow priorities (the "custom application header" of §3.3).
package packet

import (
	"fmt"
	"time"
)

// A FlowID names one end-to-end flow. IDs are allocated by the caller
// (typically the transport) and are unique within a simulation.
type FlowID uint32

// Kind classifies a packet for steering purposes. DChannel-style
// policies accelerate control traffic (ACKs, probes) ahead of data.
type Kind uint8

const (
	// Data carries application payload bytes.
	Data Kind = iota
	// Ack carries transport acknowledgment state and no payload.
	Ack
	// Control carries other transport control traffic (handshakes,
	// probes); like Ack it is small and latency-sensitive.
	Control
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	case Control:
		return "control"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Priority orders messages and flows; 0 is the most important (the
// paper's SVC layer 0), larger values matter less. PriorityBulk marks
// background traffic that should never occupy a constrained channel.
type Priority uint8

// PriorityBulk is the lowest priority; priority-aware steering keeps
// bulk traffic off resource-constrained low-latency channels entirely.
const PriorityBulk Priority = 255

// HeaderBytes is the fixed per-packet overhead charged on the wire,
// standing in for IP+transport headers (40 B) plus the steering shim's
// small custom header the paper describes.
const HeaderBytes = 44

// MaxPayload is the largest payload carried in one packet, chosen so
// that payload+header fits a 1500-byte MTU.
const MaxPayload = 1456

// A Packet is one steerable unit. Packets are passed by pointer through
// the stack and must not be mutated after being handed to a channel,
// except by the channel itself (which stamps transit metadata).
type Packet struct {
	ID   uint64 // globally unique per simulation, for tracing and dedup
	Flow FlowID
	Seq  uint64 // transport-assigned sequence within the flow
	Size int    // total wire size in bytes, including HeaderBytes
	Kind Kind

	// Message framing, supplied through the application-transport
	// interface (§3.3). A message is a byte sequence the receiver can
	// act on only once complete; MsgRemaining counts the bytes of the
	// message that follow this packet, so 0 marks the message tail.
	MsgID        uint64
	MsgRemaining int

	// Priority of the message this packet belongs to; FlowPriority of
	// the flow as a whole. Steering may consult either or both.
	Priority     Priority
	FlowPriority Priority

	// SentAt is the virtual time the packet entered the network; set
	// by the sender, used for RTT and one-way-latency accounting.
	SentAt time.Duration

	// Channel is stamped by the steering layer with the name of the
	// virtual channel that carried the packet.
	Channel string

	// Copy reports that this packet is a redundant duplicate created
	// by reliability-oriented steering; receivers deduplicate on ID.
	Copy bool

	// Payload carries an opaque reference for the endpoint above the
	// network layer (a transport segment or an application message
	// fragment). It contributes Size bytes but is never serialized.
	Payload any
}

// MsgEnd reports whether this packet completes its message.
func (p *Packet) MsgEnd() bool { return p.MsgRemaining == 0 }

// String renders a compact one-line description for logs and tests.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt(id=%d flow=%d seq=%d %s %dB prio=%d msg=%d rem=%d)",
		p.ID, p.Flow, p.Seq, p.Kind, p.Size, p.Priority, p.MsgID, p.MsgRemaining)
}

// An IDGen hands out unique packet IDs. The zero value is ready for
// use; it is not safe for concurrent use, matching the single-threaded
// simulation core.
type IDGen struct{ next uint64 }

// Next returns a fresh packet ID.
func (g *IDGen) Next() uint64 {
	g.next++
	return g.next
}

// A Pool is a LIFO free list of Packets, scoped to one simulation (it
// is not safe for concurrent use, matching the single-threaded core).
// Sharing one pool between both endpoints of a channel group closes
// the allocation cycle: packets freed where they arrive are reused
// where the next transmission originates, so a steady-state flow
// allocates no packets at all. The zero value is an empty pool ready
// for use.
//
// Get does not clear the returned packet — in particular Payload may
// still hold the previous use's payload box, which the transport
// deliberately reuses. Callers must overwrite every field they rely
// on, and must not Put a packet that any other component still
// references.
type Pool struct{ free []*Packet }

// Get returns a recycled packet, or a fresh one when the pool is empty.
func (pl *Pool) Get() *Packet {
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		return p
	}
	return &Packet{}
}

// Put returns a dead packet to the pool. Putting nil is a no-op.
func (pl *Pool) Put(p *Packet) {
	if p == nil {
		return
	}
	pl.free = append(pl.free, p)
}
