package chaos

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"hvc/internal/fault"
	"hvc/internal/invariant"
	"hvc/internal/sketch"
)

func TestMain(m *testing.M) {
	invariant.SetEnabled(true)
	os.Exit(m.Run())
}

func TestJobStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		j := genJob(rng, 4*time.Second)
		got, err := ParseJob(j.String())
		if err != nil {
			t.Fatalf("ParseJob(%q): %v", j.String(), err)
		}
		if got.String() != j.String() {
			t.Fatalf("round trip changed the job:\n  in:  %s\n  out: %s", j, got)
		}
	}
}

func TestParseJobRejects(t *testing.T) {
	for _, s := range []string{
		"",
		"exp=bulk policy=dchannel seed=1 dur=2s fault=none", // bulk without cc
		"exp=outage cc=bbr policy=dchannel seed=1 dur=2s fault=none",
		"exp=warp policy=dchannel seed=1 dur=2s fault=none",
		"exp=outage policy=dchannel seed=1 fault=none", // no dur
		"exp=outage policy=dchannel seed=x dur=2s fault=none",
		"exp=outage policy=dchannel seed=1 dur=2s fault=bogus:ch=embb",
		"exp=outage exp=outage policy=dchannel seed=1 dur=2s fault=none",
	} {
		if _, err := ParseJob(s); err == nil {
			t.Errorf("ParseJob(%q) accepted", s)
		}
	}
}

func TestGenSpecAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		spec := genSpec(rng, 4*time.Second)
		if err := spec.Validate(); err != nil {
			t.Fatalf("generated spec invalid: %v\n%s", err, spec)
		}
		back, err := fault.ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, spec)
		}
		if back.String() != spec.String() {
			t.Fatalf("spec not canonical:\n  in:  %s\n  out: %s", spec, back)
		}
	}
}

// skipWithoutInvariants skips soak tests in an -tags invariant_off
// build, where Soak correctly refuses to run.
func skipWithoutInvariants(t *testing.T) {
	t.Helper()
	if !invariant.Compiled {
		t.Skip("built with -tags invariant_off")
	}
}

func TestSoakRefusesDisabledInvariants(t *testing.T) {
	invariant.SetEnabled(false)
	defer invariant.SetEnabled(true)
	if _, _, err := Soak(Options{MetaSeed: 1, Jobs: 1}); err == nil {
		t.Fatal("Soak ran with invariants disabled")
	}
}

// TestSoakCatchesSeededBug is the end-to-end proof of the harness: it
// re-arms the pre-PR 5 duplicate-delivery bug behind the seeded-bug
// switch, soaks until the exactly-once invariant trips, and checks the
// finding shrinks to a replayable minimal counterexample.
func TestSoakCatchesSeededBug(t *testing.T) {
	skipWithoutInvariants(t)
	invariant.SetBug(invariant.BugDupDeliver, true)
	defer invariant.SetBug(invariant.BugDupDeliver, false)

	f, ran, err := Soak(Options{MetaSeed: 42, Jobs: 64, Workers: 4, Dur: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatalf("soak missed the seeded duplicate-delivery bug after %d trials", ran)
	}
	if f.Violation == nil || f.Violation.Layer != "transport" || f.Violation.Name != "exactly-once" {
		t.Fatalf("finding is not the exactly-once violation: %v", f)
	}

	// The minimal counterexample replays: parse its String form (the
	// shape a user would paste into -repro) and re-run it.
	min, perr := ParseJob(f.Minimal.String())
	if perr != nil {
		t.Fatalf("minimal counterexample does not re-parse: %v", perr)
	}
	rerr := Run(min)
	var v *invariant.Violation
	if !errors.As(rerr, &v) || v.Layer != "transport" || v.Name != "exactly-once" {
		t.Fatalf("minimal counterexample does not reproduce: %v", rerr)
	}

	// Shrinking must never grow the trial.
	if f.Minimal.Dur > f.Job.Dur || len(f.Minimal.Fault.Events) > len(f.Job.Fault.Events) {
		t.Fatalf("shrink grew the job:\n  original: %s\n  minimal:  %s", f.Job, f.Minimal)
	}
	if f.Minimal.Exp == ExpOutage && f.Minimal.Fault.Empty() {
		t.Fatalf("shrink emptied an outage job's schedule (default substitution would change the trial): %s", f.Minimal)
	}
	t.Logf("finding after %d trials:\n%s", ran, f)
}

// TestFindingShipsFlightDump is the acceptance check for the flight
// recorder: an induced invariant violation must come with a dump that
// carries the violating event itself plus the telemetry leading up to
// it, and the live progress/sketch hooks must observe the soak without
// changing its finding.
func TestFindingShipsFlightDump(t *testing.T) {
	skipWithoutInvariants(t)
	invariant.SetBug(invariant.BugDupDeliver, true)
	defer invariant.SetBug(invariant.BugDupDeliver, false)

	var progressCalls, lastDone int
	g := sketch.NewGroup()
	f, ran, err := Soak(Options{
		MetaSeed: 42, Jobs: 64, Workers: 4, Dur: 3 * time.Second,
		Progress: func(done, total int) {
			progressCalls++
			lastDone = done
			if done < 1 || done > total || total != 64 {
				t.Errorf("progress reported done=%d total=%d", done, total)
			}
		},
		Sketch: g,
	})
	if err != nil || f == nil {
		t.Fatalf("finding=%v err=%v after %d trials", f, err, ran)
	}

	// The hooks saw every completed trial; same finding as the hookless
	// soak in TestSoakCatchesSeededBug (same meta-seed).
	if progressCalls == 0 || lastDone < ran {
		t.Fatalf("progress calls=%d lastDone=%d ran=%d", progressCalls, lastDone, ran)
	}
	sums := g.Snapshot()
	if len(sums) != 1 || sums[0].Name != "trial_ms" || sums[0].N == 0 {
		t.Fatalf("trial sketch snapshot = %+v", sums)
	}
	if f.Violation == nil || f.Violation.Name != "exactly-once" {
		t.Fatalf("finding = %v", f)
	}

	if f.Flight == nil {
		t.Fatal("finding has no flight recorder")
	}
	var buf bytes.Buffer
	if err := f.Flight.Dump(&buf); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `"schema":"hvc-flight/v1"`) {
		t.Fatalf("dump missing header:\n%s", out)
	}
	// The breach itself is the dump's last line, in sequence with the
	// events that led to it.
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"name":"exactly-once"`) || !strings.Contains(last, `"layer":"transport"`) {
		t.Fatalf("dump's last line is not the violation:\n%s", last)
	}
	if !strings.Contains(last, "delivered") || !strings.Contains(last, "twice") {
		t.Fatalf("violation note lost its detail:\n%s", last)
	}
	if len(lines) < 3 {
		t.Fatalf("dump carries no context events before the breach:\n%s", out)
	}
	// The context is real run telemetry: transport/channel events from
	// the replay of the minimal counterexample.
	if !strings.Contains(out, `"layer":"channel"`) && !strings.Contains(out, `"name":"send"`) {
		t.Fatalf("dump context has no data-path events:\n%s", out)
	}
}

func TestSoakCleanOnHealthySimulator(t *testing.T) {
	skipWithoutInvariants(t)
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	f, ran, err := Soak(Options{MetaSeed: 7, Jobs: 24, Workers: 4, Dur: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if f != nil {
		t.Fatalf("healthy simulator produced a finding after %d trials:\n%s", ran, f)
	}
	if ran != 24 {
		t.Fatalf("soak ran %d trials, want 24", ran)
	}
}

func TestSoakDeterministicAcrossWorkerCounts(t *testing.T) {
	skipWithoutInvariants(t)
	invariant.SetBug(invariant.BugDupDeliver, true)
	defer invariant.SetBug(invariant.BugDupDeliver, false)
	var minimals []string
	for _, workers := range []int{1, 4} {
		f, _, err := Soak(Options{MetaSeed: 42, Jobs: 64, Workers: workers, Dur: 3 * time.Second})
		if err != nil || f == nil {
			t.Fatalf("workers=%d: finding=%v err=%v", workers, f, err)
		}
		minimals = append(minimals, f.Job.String()+"\n"+f.Minimal.String())
	}
	if minimals[0] != minimals[1] {
		t.Fatalf("finding depends on worker count:\n  w=1: %s\n  w=4: %s", minimals[0], minimals[1])
	}
}
