package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"hvc/internal/core"
	"hvc/internal/invariant"
	"hvc/internal/pool"
)

// Options configures a soak.
type Options struct {
	// MetaSeed seeds the generator of jobs. The whole soak is a pure
	// function of it (plus Jobs and Dur): same seed, same job list,
	// same finding.
	MetaSeed int64
	// Jobs is how many trials to generate; <= 0 means 256.
	Jobs int
	// Workers caps the worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// Dur is the virtual duration of each trial; <= 0 means 4s —
	// long enough for several RTOs and fault windows, short enough
	// to soak hundreds of trials in seconds of wall clock.
	Dur time.Duration
	// Budget bounds wall-clock time; 0 means no bound. The soak stops
	// claiming new batches once the budget is spent, so it overruns by
	// at most one batch.
	Budget time.Duration
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// A Finding is one invariant violation the soak surfaced, shrunk to a
// minimal replayable counterexample.
type Finding struct {
	// Job is the original failing trial, Minimal the shrunk one. Both
	// fail with the same violation; Minimal is the one to debug.
	Job, Minimal Job
	// Violation is the typed invariant failure, nil when the job
	// failed some other way (an unexpected panic or error — still a
	// finding: chaos runs must not fail at all).
	Violation *invariant.Violation
	// Err is the job's raw error.
	Err error
	// Shrunk counts the accepted shrink steps from Job to Minimal.
	Shrunk int
}

func (f *Finding) String() string {
	cause := "error"
	if f.Violation != nil {
		cause = fmt.Sprintf("invariant %s/%s", f.Violation.Layer, f.Violation.Name)
	}
	return fmt.Sprintf("%s: %v\n  original: %s\n  minimal (%d shrink steps): %s",
		cause, f.Err, f.Job, f.Shrunk, f.Minimal)
}

// Soak generates opts.Jobs trials from the meta-RNG and runs them with
// the invariant layer armed. It returns the first finding in job order
// (deterministic for any worker count) shrunk to a minimal
// counterexample, or nil if every trial passed. ran reports how many
// trials actually executed before the budget or a finding stopped the
// soak.
func Soak(opts Options) (finding *Finding, ran int, err error) {
	if !invariant.Enabled() {
		return nil, 0, errors.New("chaos: invariants are compiled out or disabled; a soak without them proves nothing")
	}
	if opts.Jobs <= 0 {
		opts.Jobs = 256
	}
	if opts.Dur <= 0 {
		opts.Dur = 4 * time.Second
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	rng := rand.New(rand.NewSource(opts.MetaSeed))
	jobs := make([]Job, opts.Jobs)
	for i := range jobs {
		jobs[i] = genJob(rng, opts.Dur)
	}

	// Run in bounded batches so a wall-clock budget can stop the soak
	// between batches. Determinism holds regardless: jobs are claimed
	// in order and pool.Map reports the lowest failing index, so the
	// first finding is the first failing job, whatever the batch size.
	batch := opts.Workers
	if batch <= 0 {
		batch = 8
	}
	batch *= 4
	start := time.Now()
	for lo := 0; lo < len(jobs); lo += batch {
		hi := lo + batch
		if hi > len(jobs) {
			hi = len(jobs)
		}
		_, err := pool.Map(hi-lo, opts.Workers, func(i int) (struct{}, error) {
			return struct{}{}, Run(jobs[lo+i])
		})
		if err != nil {
			var je *pool.Error
			if !errors.As(err, &je) {
				return nil, ran, err
			}
			j := jobs[lo+je.Index]
			ran += je.Index + 1
			logf("job %d failed: %v", lo+je.Index, je.Err)
			f := &Finding{Job: j, Err: je.Err}
			errors.As(je.Err, &f.Violation)
			f.Minimal, f.Shrunk = Shrink(j, f.Violation, logf)
			return f, ran, nil
		}
		ran += hi - lo
		logf("soaked %d/%d trials (%.1fs)", ran, len(jobs), time.Since(start).Seconds())
		if opts.Budget > 0 && time.Since(start) > opts.Budget {
			logf("budget %v spent after %d trials", opts.Budget, ran)
			break
		}
	}
	return nil, ran, nil
}

// Run executes one trial with per-job panic isolation: an invariant
// violation (or any other panic) inside the simulation surfaces as the
// returned error instead of killing the process, so one bad trial
// cannot take the soak — or the other in-flight trials — down with it.
func Run(j Job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
				return
			}
			err = fmt.Errorf("chaos: job panicked: %v", r)
		}
	}()
	switch j.Exp {
	case ExpBulk:
		_, err = core.RunBulk(core.BulkConfig{
			Seed: j.Seed, Duration: j.Dur, CC: j.CC,
			Policy: j.Policy, Fault: j.Fault.String(),
		})
	case ExpOutage:
		_, err = core.RunOutage(core.OutageConfig{
			Seed: j.Seed, Duration: j.Dur,
			Policy: j.Policy, Fault: j.Fault.String(), Reliable: j.Reliable,
		})
	default:
		err = fmt.Errorf("chaos: unknown experiment %q", j.Exp)
	}
	return err
}
