package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"hvc/internal/core"
	"hvc/internal/flight"
	"hvc/internal/invariant"
	"hvc/internal/pool"
	"hvc/internal/sketch"
	"hvc/internal/telemetry"
)

// Options configures a soak.
type Options struct {
	// MetaSeed seeds the generator of jobs. The whole soak is a pure
	// function of it (plus Jobs and Dur): same seed, same job list,
	// same finding.
	MetaSeed int64
	// Jobs is how many trials to generate; <= 0 means 256.
	Jobs int
	// Workers caps the worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// Dur is the virtual duration of each trial; <= 0 means 4s —
	// long enough for several RTOs and fault windows, short enough
	// to soak hundreds of trials in seconds of wall clock.
	Dur time.Duration
	// Budget bounds wall-clock time; 0 means no bound. The soak stops
	// claiming new batches once the budget is spent, so it overruns by
	// at most one batch.
	Budget time.Duration
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
	// Progress, when non-nil, is called after every finished trial with
	// the done count and the total. Completion order is arbitrary; the
	// hook is for live display only and cannot affect the finding.
	Progress func(done, total int)
	// Sketch, when non-nil, receives each trial's wall-clock duration
	// as "trial_ms" — the live quantile surface for watching a soak's
	// pace. Wall clock is inherently non-deterministic; nothing
	// downstream of the finding reads the group.
	Sketch *sketch.Group
	// FlightDepth sizes the flight recorder attached when a finding's
	// minimal counterexample is replayed for its dump; <= 0 means
	// flight.DefaultDepth.
	FlightDepth int
}

// A Finding is one invariant violation the soak surfaced, shrunk to a
// minimal replayable counterexample.
type Finding struct {
	// Job is the original failing trial, Minimal the shrunk one. Both
	// fail with the same violation; Minimal is the one to debug.
	Job, Minimal Job
	// Violation is the typed invariant failure, nil when the job
	// failed some other way (an unexpected panic or error — still a
	// finding: chaos runs must not fail at all).
	Violation *invariant.Violation
	// Err is the job's raw error.
	Err error
	// Shrunk counts the accepted shrink steps from Job to Minimal.
	Shrunk int
	// Flight is the recorder captured by replaying Minimal: the last
	// events leading up to the breach, the breach itself appended as a
	// synthetic note. Replay is deterministic, so this is the same
	// telemetry the original failure produced.
	Flight *flight.Recorder
}

func (f *Finding) String() string {
	cause := "error"
	if f.Violation != nil {
		cause = fmt.Sprintf("invariant %s/%s", f.Violation.Layer, f.Violation.Name)
	}
	return fmt.Sprintf("%s: %v\n  original: %s\n  minimal (%d shrink steps): %s",
		cause, f.Err, f.Job, f.Shrunk, f.Minimal)
}

// Soak generates opts.Jobs trials from the meta-RNG and runs them with
// the invariant layer armed. It returns the first finding in job order
// (deterministic for any worker count) shrunk to a minimal
// counterexample, or nil if every trial passed. ran reports how many
// trials actually executed before the budget or a finding stopped the
// soak.
func Soak(opts Options) (finding *Finding, ran int, err error) {
	if !invariant.Enabled() {
		return nil, 0, errors.New("chaos: invariants are compiled out or disabled; a soak without them proves nothing")
	}
	if opts.Jobs <= 0 {
		opts.Jobs = 256
	}
	if opts.Dur <= 0 {
		opts.Dur = 4 * time.Second
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	rng := rand.New(rand.NewSource(opts.MetaSeed))
	jobs := make([]Job, opts.Jobs)
	for i := range jobs {
		jobs[i] = genJob(rng, opts.Dur)
	}

	// Run in bounded batches so a wall-clock budget can stop the soak
	// between batches. Determinism holds regardless: jobs are claimed
	// in order and pool.Map reports the lowest failing index, so the
	// first finding is the first failing job, whatever the batch size.
	batch := opts.Workers
	if batch <= 0 {
		batch = 8
	}
	batch *= 4
	start := time.Now()
	var onDone func(done int)
	for lo := 0; lo < len(jobs); lo += batch {
		hi := lo + batch
		if hi > len(jobs) {
			hi = len(jobs)
		}
		if opts.Progress != nil {
			base := lo // rebind per batch: the hook reports batch-local counts
			onDone = func(done int) { opts.Progress(base+done, len(jobs)) }
		}
		_, err := pool.MapProgress(hi-lo, opts.Workers, onDone, func(i int) (struct{}, error) {
			t0 := time.Now()
			err := Run(jobs[lo+i])
			opts.Sketch.Observe("trial_ms", float64(time.Since(t0))/float64(time.Millisecond))
			return struct{}{}, err
		})
		if err != nil {
			var je *pool.Error
			if !errors.As(err, &je) {
				return nil, ran, err
			}
			j := jobs[lo+je.Index]
			ran += je.Index + 1
			logf("job %d failed: %v", lo+je.Index, je.Err)
			f := &Finding{Job: j, Err: je.Err}
			errors.As(je.Err, &f.Violation)
			f.Minimal, f.Shrunk = Shrink(j, f.Violation, logf)
			f.Flight, _ = RunFlight(f.Minimal, opts.FlightDepth)
			return f, ran, nil
		}
		ran += hi - lo
		logf("soaked %d/%d trials (%.1fs)", ran, len(jobs), time.Since(start).Seconds())
		if opts.Budget > 0 && time.Since(start) > opts.Budget {
			logf("budget %v spent after %d trials", opts.Budget, ran)
			break
		}
	}
	return nil, ran, nil
}

// Run executes one trial with per-job panic isolation: an invariant
// violation (or any other panic) inside the simulation surfaces as the
// returned error instead of killing the process, so one bad trial
// cannot take the soak — or the other in-flight trials — down with it.
func Run(j Job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = recovered(r)
		}
	}()
	return dispatch(j, nil)
}

// RunFlight executes one trial like Run, with a flight recorder riding
// the run's telemetry stream. On failure the recorder holds the last
// events leading up to the breach, the breach itself appended as a
// synthetic note — the triage context every finding ships with. The
// recorder is returned in every case; on success its ring is just the
// tail of a healthy run.
func RunFlight(j Job, depth int) (rec *flight.Recorder, err error) {
	rec = flight.NewRecorder(depth)
	tr := telemetry.New(rec)
	tr.BeginRun(j.String())
	defer func() {
		if r := recover(); r != nil {
			err = recovered(r)
		}
		if err == nil {
			return
		}
		var v *invariant.Violation
		if errors.As(err, &v) {
			rec.Note(v.Layer, v.Name, v.Detail)
		} else {
			rec.Note("chaos", "failure", err.Error())
		}
	}()
	return rec, dispatch(j, tr)
}

// recovered converts a trial panic into its error form, preserving a
// typed panic value (an *invariant.Violation) for errors.As.
func recovered(r any) error {
	if e, ok := r.(error); ok {
		return e
	}
	return fmt.Errorf("chaos: job panicked: %v", r)
}

// dispatch runs the job's experiment under an optional tracer.
func dispatch(j Job, tr *telemetry.Tracer) (err error) {
	switch j.Exp {
	case ExpBulk:
		_, err = core.RunBulk(core.BulkConfig{
			Seed: j.Seed, Duration: j.Dur, CC: j.CC,
			Policy: j.Policy, Fault: j.Fault.String(), Tracer: tr,
		})
	case ExpOutage:
		_, err = core.RunOutage(core.OutageConfig{
			Seed: j.Seed, Duration: j.Dur,
			Policy: j.Policy, Fault: j.Fault.String(), Reliable: j.Reliable, Tracer: tr,
		})
	default:
		err = fmt.Errorf("chaos: unknown experiment %q", j.Exp)
	}
	return err
}
