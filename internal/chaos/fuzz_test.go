package chaos

import (
	"math/rand"
	"testing"
	"time"

	"hvc/internal/fault"
)

// FuzzChaosScheduleGen drives the schedule generator with arbitrary
// meta-seeds and run lengths: whatever the inputs, the generated spec
// must validate, render canonically, and survive a parse round trip —
// the properties the soak and the shrinker both lean on.
func FuzzChaosScheduleGen(f *testing.F) {
	f.Add(int64(0), int64(4_000))
	f.Add(int64(42), int64(500))
	f.Add(int64(-1), int64(60_000))
	f.Fuzz(func(t *testing.T, seed, durMS int64) {
		if durMS < 100 {
			durMS = 100
		}
		if durMS > 120_000 {
			durMS %= 120_000
		}
		dur := time.Duration(durMS) * time.Millisecond
		rng := rand.New(rand.NewSource(seed))
		spec := genSpec(rng, dur)
		if err := spec.Validate(); err != nil {
			t.Fatalf("seed=%d dur=%v: invalid spec: %v\n%s", seed, dur, err, spec)
		}
		back, err := fault.ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("seed=%d dur=%v: canonical form does not re-parse: %v\n%s", seed, dur, err, spec)
		}
		if back.String() != spec.String() {
			t.Fatalf("seed=%d dur=%v: not canonical:\n  in:  %s\n  out: %s", seed, dur, spec, back)
		}

		// The job wrapper must round-trip too.
		j := genJob(rand.New(rand.NewSource(seed)), dur)
		got, err := ParseJob(j.String())
		if err != nil {
			t.Fatalf("seed=%d dur=%v: job does not re-parse: %v\n%s", seed, dur, err, j)
		}
		if got.String() != j.String() {
			t.Fatalf("seed=%d dur=%v: job not canonical:\n  in:  %s\n  out: %s", seed, dur, j, got)
		}
	})
}
