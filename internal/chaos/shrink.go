package chaos

import (
	"errors"
	"time"

	"hvc/internal/fault"
	"hvc/internal/invariant"
)

// Shrink greedily minimizes a failing trial: it tries dropping fault
// clauses, collapsing repetitions, halving durations, and pulling
// windows earlier, keeping each candidate only if it still fails with
// the same violation (same layer and name — a candidate that fails
// differently is a different bug, not a smaller version of this one).
// It returns the minimal job and the number of accepted steps.
//
// The walk restarts from the shrunk job after every accepted step, so
// the result is a local minimum: no single remaining edit both stays
// valid and still reproduces the violation.
func Shrink(j Job, v *invariant.Violation, logf func(format string, args ...any)) (Job, int) {
	steps := 0
	fails := func(c Job) bool {
		err := Run(c)
		if err == nil {
			return false
		}
		if v == nil {
			// The original failure had no violation payload (a plain
			// panic or error); any failure counts as a reproduction.
			return true
		}
		var cv *invariant.Violation
		return errors.As(err, &cv) && cv.Layer == v.Layer && cv.Name == v.Name
	}
	for {
		accepted := false
		for _, c := range candidates(j) {
			if c.Fault.Validate() != nil {
				continue // e.g. pulling a window earlier made it overlap
			}
			if fails(c) {
				j, accepted = c, true
				steps++
				logf("shrink step %d: %s", steps, j)
				break // restart the candidate walk from the smaller job
			}
		}
		if !accepted {
			return j, steps
		}
	}
}

// candidates proposes one-edit reductions of j, most aggressive first.
func candidates(j Job) []Job {
	var out []Job
	events := j.Fault.Events

	// Drop each clause. An outage job must keep at least one: its
	// runner substitutes the default blackout schedule for an empty
	// spec, which would change the trial instead of shrinking it.
	for i := range events {
		if len(events) == 1 && j.Exp == ExpOutage {
			break
		}
		c := j
		c.Fault = fault.Spec{Events: append(append([]fault.Event{}, events[:i]...), events[i+1:]...)}
		out = append(out, c)
	}

	// Collapse each repetition to a single window.
	for i, ev := range events {
		if ev.Count <= 1 {
			continue
		}
		c := withEvent(j, i, func(e *fault.Event) { e.Count, e.Every = 1, 0 })
		out = append(out, c)
	}

	// Halve the run itself — the strongest time reduction.
	if half := (j.Dur / 2).Truncate(time.Millisecond); half >= 100*time.Millisecond {
		c := j
		c.Dur = half
		out = append(out, c)
	}

	// Halve each window, then pull it earlier.
	for i, ev := range events {
		if half := (ev.Dur / 2).Truncate(time.Millisecond); half >= time.Millisecond {
			out = append(out, withEvent(j, i, func(e *fault.Event) { e.Dur = half }))
		}
		if ev.At > 0 {
			out = append(out, withEvent(j, i, func(e *fault.Event) {
				e.At = (e.At / 2).Truncate(time.Millisecond)
			}))
		}
	}
	return out
}

// withEvent copies j with edit applied to clause i.
func withEvent(j Job, i int, edit func(*fault.Event)) Job {
	c := j
	c.Fault = fault.Spec{Events: append([]fault.Event{}, j.Fault.Events...)}
	edit(&c.Fault.Events[i])
	return c
}
