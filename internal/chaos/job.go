// Package chaos is the randomized soak harness over the simulator's
// runtime invariants: it generates fault schedules × experiments ×
// seeds from a seeded meta-RNG, runs each combination with the
// invariant layer armed, and — when a run panics with a violation —
// shrinks the failing combination to a minimal counterexample that
// replays from a single flag string.
//
// Everything downstream of the meta-seed is deterministic: the same
// MetaSeed produces the same job list, the same lowest-index finding,
// and the same minimal counterexample, for any worker count.
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"hvc/internal/fault"
)

// Experiments a chaos job can drive. Bulk exercises the reliable
// single-flow path (Fig. 1), outage the unreliable frame stream under
// blackouts (§3.3) — between them they cover both delivery modes of
// the transport.
const (
	ExpBulk   = "bulk"
	ExpOutage = "outage"
)

// A Job is one self-contained chaos trial: an experiment at one seed
// under one fault schedule. Its String form is the replayable
// counterexample format the harness emits and the -repro flag accepts.
type Job struct {
	Exp      string
	CC       string // bulk only; empty otherwise
	Policy   string
	Seed     int64
	Dur      time.Duration
	Fault    fault.Spec
	Reliable bool // outage only: reliable frame stream
}

// String renders the job in the space-separated key=value grammar
// (the fault spec is space-free by construction, so the whole job is
// one shell word per field):
//
//	exp=outage policy=redundant seed=7 dur=4s fault=outage:ch=embb,at=1s,dur=500ms
//
// ParseJob(j.String()) reproduces j.
func (j Job) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "exp=%s", j.Exp)
	if j.CC != "" {
		fmt.Fprintf(&b, " cc=%s", j.CC)
	}
	fmt.Fprintf(&b, " policy=%s seed=%d dur=%s", j.Policy, j.Seed, j.Dur)
	if j.Reliable {
		b.WriteString(" reliable=true")
	}
	fmt.Fprintf(&b, " fault=%s", j.Fault)
	return b.String()
}

// ParseJob parses the String form back into a Job.
func ParseJob(s string) (Job, error) {
	var j Job
	seen := map[string]bool{}
	for _, field := range strings.Fields(s) {
		key, val, ok := strings.Cut(field, "=")
		if !ok || val == "" {
			return Job{}, fmt.Errorf("chaos: field %q is not key=value", field)
		}
		if seen[key] {
			return Job{}, fmt.Errorf("chaos: duplicate key %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "exp":
			j.Exp = val
		case "cc":
			j.CC = val
		case "policy":
			j.Policy = val
		case "seed":
			j.Seed, err = strconv.ParseInt(val, 10, 64)
		case "dur":
			j.Dur, err = time.ParseDuration(val)
		case "reliable":
			j.Reliable, err = strconv.ParseBool(val)
		case "fault":
			// val is everything after the first '=', so the '='s inside
			// the spec's own key=value pairs pass through intact.
			j.Fault, err = fault.ParseSpec(val)
		default:
			return Job{}, fmt.Errorf("chaos: unknown key %q", key)
		}
		if err != nil {
			return Job{}, fmt.Errorf("chaos: %s: %w", key, err)
		}
	}
	switch j.Exp {
	case ExpBulk:
		if j.CC == "" {
			return Job{}, fmt.Errorf("chaos: bulk job needs cc=")
		}
		if j.Reliable {
			return Job{}, fmt.Errorf("chaos: reliable= only applies to outage jobs")
		}
	case ExpOutage:
		if j.CC != "" {
			return Job{}, fmt.Errorf("chaos: cc= only applies to bulk jobs")
		}
	default:
		return Job{}, fmt.Errorf("chaos: unknown experiment %q", j.Exp)
	}
	if j.Policy == "" || j.Dur <= 0 {
		return Job{}, fmt.Errorf("chaos: job %q needs policy= and a positive dur=", s)
	}
	return j, nil
}
