package chaos

import (
	"math/rand"
	"time"

	"hvc/internal/channel"
	"hvc/internal/core"
	"hvc/internal/fault"
)

// The pools a generated job draws from. Outage jobs skip embb-only on
// purpose only in the sense that it is listed — the baseline that
// ships onto a dead channel by design is still a valid chaos subject;
// its policy simply opts out of the liveness invariant.
var (
	genPolicies = []string{
		core.PolicyEMBBOnly, core.PolicyDChannel, core.PolicyPriority,
		core.PolicyObjectMap, core.PolicyRedundant,
	}
	genCCs      = []string{"cubic", "bbr", "vegas", "vivace", "hvc-bbr"}
	genChannels = []string{channel.NameEMBB, channel.NameURLLC}
	genKinds    = []fault.Kind{fault.Outage, fault.Burst, fault.Slump, fault.Spike}
)

// genJob draws one chaos trial from the meta-RNG. The run seed is a
// fresh 63-bit draw so trials decorrelate even when the schedule
// collides.
func genJob(rng *rand.Rand, dur time.Duration) Job {
	j := Job{
		Policy: genPolicies[rng.Intn(len(genPolicies))],
		Seed:   rng.Int63(),
		Dur:    dur,
		Fault:  genSpec(rng, dur),
	}
	if rng.Intn(2) == 0 {
		j.Exp = ExpBulk
		j.CC = genCCs[rng.Intn(len(genCCs))]
	} else {
		j.Exp = ExpOutage
		j.Reliable = rng.Intn(2) == 0
	}
	return j
}

// genSpec draws a fault schedule that is valid by construction: for
// each (channel, kind) slot it walks time strictly forward, so windows
// of the same kind on the same channel can never overlap — the one
// rule Validate enforces. Cross-kind and cross-channel overlap is left
// in deliberately; compound faults are where state-restore bugs live.
func genSpec(rng *rand.Rand, dur time.Duration) fault.Spec {
	var spec fault.Spec
	for _, ch := range genChannels {
		for _, kind := range genKinds {
			lastEnd := time.Duration(0)
			for n := rng.Intn(3); n > 0; n-- {
				horizon := dur - dur/8
				if lastEnd >= horizon {
					break
				}
				ev := fault.Event{
					Kind:    kind,
					Channel: ch,
					At:      lastEnd + randDur(rng, 0, horizon-lastEnd),
					Dur:     randDur(rng, dur/64+time.Millisecond, dur/4),
					Count:   1,
				}
				if rng.Intn(4) == 0 {
					ev.Count = 2 + rng.Intn(2)
					ev.Every = ev.Dur + randDur(rng, time.Millisecond, dur/8)
				}
				switch kind {
				case fault.Burst:
					ev.PGB = 0.005 + rng.Float64()*0.05
					ev.PBG = 0.1 + rng.Float64()*0.4
					ev.LossBad = 0.5 + rng.Float64()*0.5
					ev.LossGood = rng.Float64() * 0.01
				case fault.Slump:
					ev.Factor = 0.05 + rng.Float64()*0.45
				case fault.Spike:
					ev.Delay = randDur(rng, 10*time.Millisecond, 250*time.Millisecond)
				}
				lastEnd = ev.At + time.Duration(ev.Count-1)*ev.Every + ev.Dur
				spec.Events = append(spec.Events, ev)
			}
		}
	}
	return spec
}

// randDur draws a duration in [lo, lo+span] truncated to milliseconds,
// so generated specs stay short and round-trip exactly through the
// grammar.
func randDur(rng *rand.Rand, lo, span time.Duration) time.Duration {
	if span < 0 {
		span = 0
	}
	d := lo
	if span > 0 {
		d += time.Duration(rng.Int63n(int64(span) + 1))
	}
	return d.Truncate(time.Millisecond)
}
