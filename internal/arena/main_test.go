package arena

import (
	"os"
	"testing"

	"hvc/internal/invariant"
)

// TestMain arms the runtime invariant layer for every test in the
// package, so the whole suite doubles as an invariant soak. Benchmarks
// that must not pay for checking build with -tags invariant_off, which
// makes SetEnabled a no-op.
func TestMain(m *testing.M) {
	invariant.SetEnabled(true)
	os.Exit(m.Run())
}
