package arena

import (
	"fmt"
	"math"
	"time"

	"hvc/internal/channel"
	"hvc/internal/core"
	"hvc/internal/fault"
	"hvc/internal/metrics"
	"hvc/internal/packet"
	"hvc/internal/sim"
	"hvc/internal/sketch"
	"hvc/internal/telemetry"
	"hvc/internal/transport"
)

// jainConverged is the fairness level the convergence metric waits
// for: the run has converged at the earliest post-join epoch from
// which the per-epoch Jain index stays at or above this through the
// end of the run.
const jainConverged = 0.95

// Options carries the run knobs that are not part of the spec grammar:
// they do not change what is being measured, only how the run is
// instrumented or perturbed.
type Options struct {
	// Fault is an optional scenario in the internal/fault grammar;
	// empty means a clean channel.
	Fault string
	// Tracer receives cross-layer telemetry; nil disables tracing.
	Tracer *telemetry.Tracer
}

// A FlowResult summarizes one competitor.
type FlowResult struct {
	// CC is the flow's congestion-control algorithm.
	CC string
	// JoinAt is when the flow dialed.
	JoinAt time.Duration
	// ExtraRTT is the flow's receive-side path delay (the rttspread
	// ramp).
	ExtraRTT time.Duration
	// GoodputMbps is the flow's receiver goodput averaged over its own
	// lifetime (join to end of run).
	GoodputMbps float64
	// Share is the flow's fraction of all delivered bytes.
	Share float64
	// MeanTputMbps and StdTputMbps are the mean and standard deviation
	// of the flow's per-epoch throughput over epochs after it joined —
	// with MeanRTTms/StdRTTms these are the flow's throughput/delay
	// ellipse point.
	MeanTputMbps float64
	StdTputMbps  float64
	MeanRTTms    float64
	StdRTTms     float64
	// Retransmits and RTOs summarize the flow's loss recovery.
	Retransmits int
	RTOs        int
}

// An Epoch is one sampling window of the run.
type Epoch struct {
	// End is the epoch's closing time.
	End time.Duration
	// Tput and RTTms hold each flow's throughput (Mbps) and mean RTT
	// (ms; NaN when the flow took no sample) over the window, indexed
	// by flow.
	Tput  []float64
	RTTms []float64
	// Jain is the fairness index over Tput.
	Jain float64
}

// A Result reports one arena run.
type Result struct {
	Spec  Spec
	Flows []FlowResult
	// Jain is the fairness index over per-flow goodput.
	Jain float64
	// Converged reports whether per-epoch fairness reached and held
	// jainConverged after the last join; Convergence is how long after
	// the last join it took.
	Converged   bool
	Convergence time.Duration
	// Epochs is the full sampling series (convergence-plot data).
	Epochs []Epoch
	// Group holds the run's metrics as mergeable sketches:
	// arena/jain, arena/convergence_s, arena/flow_goodput_mbps,
	// arena/flow_share, arena/epoch_tput_mbps, arena/epoch_rtt_ms,
	// arena/retransmits.
	Group *sketch.Group
}

// Run executes the arena described by spec and blocks until the
// virtual clock reaches spec.Dur.
func Run(spec Spec, opt Options) (Result, error) {
	if err := spec.defaultAndValidate(); err != nil {
		return Result{}, err
	}
	fspec, err := fault.ParseSpec(opt.Fault)
	if err != nil {
		return Result{}, err
	}
	embb, err := core.NewTrace(spec.Trace, spec.Seed, spec.Dur)
	if err != nil {
		return Result{}, err
	}

	loop := sim.NewLoop(spec.Seed)
	g := core.Cellular(loop, embb)
	client := transport.NewEndpoint(loop, g, channel.A)
	server := transport.NewEndpoint(loop, g, channel.B)

	opt.Tracer.BeginRun(fmt.Sprintf("arena %s", spec))
	opt.Tracer.BindClock(loop.Now)
	g.SetTracer(opt.Tracer)
	client.SetTracer(opt.Tracer)
	server.SetTracer(opt.Tracer)
	if !fspec.Empty() {
		if err := fault.Inject(loop, g, fspec, opt.Tracer); err != nil {
			return Result{}, err
		}
	}

	// The server accepts every competitor; received-byte counts are read
	// per flow through this table.
	srvByFlow := make(map[packet.FlowID]*transport.Conn, spec.Flows)
	server.Listen(func() transport.Config {
		ccSrv, _ := core.NewCC("cubic") // server sends only ACKs; CC idle
		pol, _ := core.NewPolicy(spec.Policy, g, channel.B)
		return transport.Config{CC: ccSrv, Steer: pol}
	}, func(c *transport.Conn) { srvByFlow[c.Flow()] = c })

	conns := make([]*transport.Conn, spec.Flows)
	// Per-epoch accumulators, indexed by flow.
	prevBytes := make([]int64, spec.Flows)
	rttSum := make([]time.Duration, spec.Flows)
	rttN := make([]int, spec.Flows)

	for i := 0; i < spec.Flows; i++ {
		i := i
		alg, err := core.NewCC(spec.CCFor(i))
		if err != nil {
			return Result{}, err
		}
		pol, err := core.NewPolicy(spec.Policy, g, channel.A)
		if err != nil {
			return Result{}, err
		}
		joinAt := spec.JoinAt(i)
		loop.At(joinAt, func() {
			c := client.Dial(transport.Config{
				CC:      alg,
				Steer:   pol,
				RxDelay: spec.ExtraDelay(i),
			})
			conns[i] = c
			c.OnRTTSample(func(now, rtt time.Duration, ch string) {
				rttSum[i] += rtt
				rttN[i]++
			})
			// Offer more data than the channels can move in the flow's
			// remaining lifetime so it never goes idle.
			size := int(1e9 / 8 * (spec.Dur - joinAt).Seconds())
			c.SendMessage(c.NewStream(), 0, size, nil)
		})
	}

	// The sampling chain closes one epoch at a time; the final partial
	// window (if Dur is not a multiple of Epoch) is dropped.
	var epochs []Epoch
	var sample func()
	sample = func() {
		e := Epoch{
			End:   loop.Now(),
			Tput:  make([]float64, spec.Flows),
			RTTms: make([]float64, spec.Flows),
		}
		for i := 0; i < spec.Flows; i++ {
			var cur int64
			if conns[i] != nil {
				if sc, ok := srvByFlow[conns[i].Flow()]; ok {
					cur = sc.Stats().BytesReceived
				}
			}
			e.Tput[i] = metrics.Mbps(float64(cur-prevBytes[i]) * 8 / spec.Epoch.Seconds())
			prevBytes[i] = cur
			e.RTTms[i] = math.NaN()
			if rttN[i] > 0 {
				e.RTTms[i] = float64(rttSum[i]) / float64(rttN[i]) / float64(time.Millisecond)
			}
			rttSum[i], rttN[i] = 0, 0
		}
		e.Jain = Jain(e.Tput)
		epochs = append(epochs, e)
		if loop.Now()+spec.Epoch <= spec.Dur {
			loop.After(spec.Epoch, sample)
		}
	}
	loop.After(spec.Epoch, sample)

	loop.RunUntil(spec.Dur)

	return summarize(spec, conns, srvByFlow, epochs), nil
}

// summarize folds the raw epoch series and final connection stats into
// the Result, including the sketch group.
func summarize(spec Spec, conns []*transport.Conn, srvByFlow map[packet.FlowID]*transport.Conn, epochs []Epoch) Result {
	res := Result{
		Spec:   spec,
		Flows:  make([]FlowResult, spec.Flows),
		Epochs: epochs,
		Group:  sketch.NewGroup(),
	}

	goodput := make([]float64, spec.Flows)
	totalBytes := 0.0
	bytes := make([]float64, spec.Flows)
	for i := range res.Flows {
		fr := &res.Flows[i]
		fr.CC = spec.CCFor(i)
		fr.JoinAt = spec.JoinAt(i)
		fr.ExtraRTT = spec.ExtraDelay(i)
		if conns[i] != nil {
			st := conns[i].Stats()
			fr.Retransmits = st.Retransmits
			fr.RTOs = st.RTOs
			if sc, ok := srvByFlow[conns[i].Flow()]; ok {
				bytes[i] = float64(sc.Stats().BytesReceived)
			}
		}
		totalBytes += bytes[i]
		life := (spec.Dur - fr.JoinAt).Seconds()
		if life > 0 {
			fr.GoodputMbps = metrics.Mbps(bytes[i] * 8 / life)
		}
		goodput[i] = fr.GoodputMbps

		// Ellipse point: moments over epochs fully after the join.
		var tput, rtt []float64
		for _, e := range epochs {
			if e.End-spec.Epoch < fr.JoinAt {
				continue
			}
			tput = append(tput, e.Tput[i])
			if !math.IsNaN(e.RTTms[i]) {
				rtt = append(rtt, e.RTTms[i])
			}
		}
		fr.MeanTputMbps, fr.StdTputMbps = moments(tput)
		fr.MeanRTTms, fr.StdRTTms = moments(rtt)
	}
	for i := range res.Flows {
		if totalBytes > 0 {
			res.Flows[i].Share = bytes[i] / totalBytes
		}
	}
	res.Jain = Jain(goodput)

	// Convergence: the earliest epoch starting at or after the last
	// join from which per-epoch fairness holds through the end.
	lastJoin := time.Duration(0)
	for i := 0; i < spec.Flows; i++ {
		if j := spec.JoinAt(i); j > lastJoin {
			lastJoin = j
		}
	}
	holdFrom := -1
	for i := len(epochs) - 1; i >= 0; i-- {
		if epochs[i].End-spec.Epoch < lastJoin || epochs[i].Jain < jainConverged {
			break
		}
		holdFrom = i
	}
	if holdFrom >= 0 {
		res.Converged = true
		res.Convergence = epochs[holdFrom].End - lastJoin
	}

	res.Group.Observe("arena/jain", res.Jain)
	if res.Converged {
		res.Group.Observe("arena/convergence_s", res.Convergence.Seconds())
	}
	for i := range res.Flows {
		res.Group.Observe("arena/flow_goodput_mbps", res.Flows[i].GoodputMbps)
		res.Group.Observe("arena/flow_share", res.Flows[i].Share)
		res.Group.Observe("arena/retransmits", float64(res.Flows[i].Retransmits))
	}
	for _, e := range epochs {
		for i := range e.Tput {
			res.Group.Observe("arena/epoch_tput_mbps", e.Tput[i])
			if !math.IsNaN(e.RTTms[i]) {
				res.Group.Observe("arena/epoch_rtt_ms", e.RTTms[i])
			}
		}
	}
	return res
}

// Jain computes the Jain fairness index (Σx)²/(n·Σx²) over xs: 1.0 is
// a perfectly even split, 1/n a single flow taking everything. An
// empty or all-zero slice reports 1 (nothing is being shared
// unfairly).
func Jain(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// moments returns the mean and population standard deviation of xs.
func moments(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}
