package arena

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseSpecDefaults(t *testing.T) {
	s, err := ParseSpec("")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Flows:  2,
		Seed:   1,
		Mix:    []MixEntry{{CC: "cubic", Weight: 1}},
		Dur:    15 * time.Second,
		Epoch:  500 * time.Millisecond,
		Policy: "dchannel",
		Trace:  "fixed",
	}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("defaults:\n got %+v\nwant %+v", s, want)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	for _, in := range []string{
		"",
		"flows=4 mix=cubic:2,copa join=2s rttspread=40ms",
		"flows=8 mix=cubic,bbr,copa,reno join=500ms rttspread=60ms seed=7 dur=30s epoch=1s policy=redundant trace=lowband-walking",
		"mix=copa dur=1s epoch=100ms",
	} {
		s1, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		s2, err := ParseSpec(s1.String())
		if err != nil {
			t.Fatalf("ParseSpec(String(%q)) = %q: %v", in, s1.String(), err)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("round trip of %q:\n got %+v\nwant %+v", in, s2, s1)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, tc := range []struct{ in, wantErr string }{
		{"flows", "not key=value"},
		{"flows=2 flows=3", "duplicate"},
		{"bogus=1", "unknown key"},
		{"flows=0", "positive integer"},
		{"flows=65", "out of"},
		{"mix=nosuchcc", "unknown congestion control"},
		{"mix=cubic,cubic", "twice"},
		{"mix=cubic:0", "positive integer"},
		{"mix=:2", "empty CCA"},
		{"join=-1s", "non-negative"},
		{"seed=x", "not an integer"},
		{"dur=100ms", "below 500ms"},
		{"dur=1s epoch=1s", "out of [10ms,dur)"},
		{"policy=nosuchpolicy", "unknown steering policy"},
		{"trace=nosuchtrace", "unknown trace"},
		{"flows=4 join=10s dur=15s", "leaves no full epoch"},
	} {
		_, err := ParseSpec(tc.in)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseSpec(%q) = %v, want error containing %q", tc.in, err, tc.wantErr)
		}
	}
}

func TestCCForCyclicExpansion(t *testing.T) {
	s, err := ParseSpec("flows=5 mix=cubic:2,bbr")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"cubic", "cubic", "bbr", "cubic", "cubic"}
	if got := s.CCs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("CCs() = %v, want %v", got, want)
	}
}

func TestJoinJitterBoundedAndSeedIsolated(t *testing.T) {
	s, err := ParseSpec("flows=6 join=2s dur=30s")
	if err != nil {
		t.Fatal(err)
	}
	base := make([]time.Duration, s.Flows)
	for i := 0; i < s.Flows; i++ {
		j := s.JoinAt(i)
		base[i] = j
		lo := time.Duration(i) * s.Join
		if j < lo || j >= lo+s.Join/8 {
			t.Fatalf("flow %d joins at %v, want [%v, %v)", i, j, lo, lo+s.Join/8)
		}
	}

	// Overriding one flow's seed must move only that flow's join.
	seeds := make([]int64, s.Flows)
	for i := range seeds {
		seeds[i] = s.FlowSeed(i)
	}
	seeds[3] ^= 0x5555
	s.FlowSeeds = seeds
	for i := 0; i < s.Flows; i++ {
		if i == 3 {
			continue
		}
		if s.JoinAt(i) != base[i] {
			t.Fatalf("perturbing flow 3's seed moved flow %d's join %v -> %v", i, base[i], s.JoinAt(i))
		}
	}
}

func TestExtraDelayRamp(t *testing.T) {
	s, err := ParseSpec("flows=4 rttspread=30ms dur=10s")
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i, w := range want {
		if got := s.ExtraDelay(i); got != w {
			t.Fatalf("ExtraDelay(%d) = %v, want %v", i, got, w)
		}
	}
	// A single flow never gets extra delay, spread or not.
	solo := Spec{Flows: 1, RTTSpread: 30 * time.Millisecond}
	if got := solo.ExtraDelay(0); got != 0 {
		t.Fatalf("solo ExtraDelay = %v, want 0", got)
	}
}
