package arena

import (
	"reflect"
	"testing"
)

// FuzzArenaSpecParse drives the spec grammar with arbitrary input and
// pins the parser's contract: it never panics, and any input it
// accepts yields a spec whose canonical String parses back to the
// identical spec (the property the sweep cache keys depend on).
func FuzzArenaSpecParse(f *testing.F) {
	f.Add("")
	f.Add("flows=4 mix=cubic:2,copa join=2s rttspread=40ms seed=1 dur=15s epoch=500ms policy=dchannel trace=fixed")
	f.Add("flows=64 mix=cubic,bbr,copa,reno,vegas,vivace join=50ms dur=30s")
	f.Add("mix=copa:3 trace=lowband-driving policy=redundant")
	f.Add("flows=0")
	f.Add("mix=:1,cubic:")
	f.Add("join=-5s seed=-9223372036854775808")
	f.Add("flows=2 flows=2")
	f.Add("epoch=9ms dur=600ms")

	f.Fuzz(func(t *testing.T, in string) {
		s1, err := ParseSpec(in)
		if err != nil {
			return
		}
		s2, err := ParseSpec(s1.String())
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q rejected: %v", s1.String(), in, err)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("round trip of %q:\n got %+v\nwant %+v", in, s2, s1)
		}
		// Derived per-flow values must stay in their documented bounds
		// for every accepted spec.
		for i := 0; i < s1.Flows; i++ {
			if !validCCName(s1.CCFor(i)) {
				t.Fatalf("flow %d assigned CCA %q outside the mix", i, s1.CCFor(i))
			}
			if d := s1.ExtraDelay(i); d < 0 || d > s1.RTTSpread {
				t.Fatalf("flow %d extra delay %v outside [0,%v]", i, d, s1.RTTSpread)
			}
			if j := s1.JoinAt(i); j < s1.joinBase(i) || (s1.Join > 0 && j >= s1.joinBase(i)+s1.Join/8+1) {
				t.Fatalf("flow %d join %v outside jitter window", i, j)
			}
		}
	})
}

func validCCName(cc string) bool {
	// The fuzz property only needs "was in the mix"; the parser already
	// validated the names against core.
	return cc != ""
}
