package arena

import (
	"testing"
	"time"

	"hvc/internal/app/web"
	"hvc/internal/channel"
	"hvc/internal/core"
	"hvc/internal/sim"
	"hvc/internal/transport"
)

// TestWebBackgroundContendsHonestly pins the fix for the web
// harness's single-flow assumption: the "competing" background flows
// used a strict request/reply ping-pong, capping each at one object
// per round trip no matter what its congestion window allowed — they
// decorated the experiment without pressing on the bottleneck. With
// the transfer pipeline, each flow must clear several times the
// ping-pong ceiling (base RTT is 50 ms on the fixed trace, so the
// strict sequential bound is dur/50ms transfers), and the two
// directions must hold comparable shares (arena's Jain metric over
// their goodputs) rather than one starving.
func TestWebBackgroundContendsHonestly(t *testing.T) {
	const dur = 10 * time.Second
	loop := sim.NewLoop(57)
	embb, err := core.NewTrace("fixed", 57, dur)
	if err != nil {
		t.Fatal(err)
	}
	g := core.Cellular(loop, embb)
	client := transport.NewEndpoint(loop, g, channel.A)
	server := transport.NewEndpoint(loop, g, channel.B)

	web.Serve(server, func() transport.Config {
		alg, _ := core.NewCC("cubic")
		pol, _ := core.NewPolicy(core.PolicyDChannel, g, channel.B)
		return transport.Config{CC: alg, Steer: pol}
	})
	bg := web.StartBackground(client, func() transport.Config {
		alg, _ := core.NewCC("cubic")
		pol, _ := core.NewPolicy(core.PolicyDChannel, g, channel.A)
		return transport.Config{CC: alg, Steer: pol}
	})

	loop.RunUntil(dur)

	pingpong := int(dur / (50 * time.Millisecond))
	if bg.Uploads <= 2*pingpong {
		t.Fatalf("uploader still ping-pong-limited: %d transfers in %v (sequential ceiling %d)",
			bg.Uploads, dur, pingpong)
	}
	if bg.Downloads <= 2*pingpong {
		t.Fatalf("downloader still ping-pong-limited: %d transfers in %v (sequential ceiling %d)",
			bg.Downloads, dur, pingpong)
	}
	up := float64(bg.Uploads * web.UploadBytes)
	down := float64(bg.Downloads * web.DownloadBytes)
	if j := Jain([]float64{up, down}); j < 0.8 {
		t.Fatalf("background directions out of balance: up=%.0fB down=%.0fB Jain=%.3f",
			up, down, j)
	}
}
