package arena

import (
	"math"
	"reflect"
	"testing"

	"hvc/internal/sketch"
)

// floatsEqual compares slices treating NaN as equal to NaN.
func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			return false
		}
	}
	return true
}

func mustSpec(t testing.TB, s string) Spec {
	t.Helper()
	spec, err := ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestArenaFourFlowMixed is the acceptance run: four flows, four
// different CCAs, staggered joins, heterogeneous RTTs. Every flow must
// move bytes, the report must carry fairness/convergence/ellipse
// metrics, and the whole result must be reproducible bit for bit.
func TestArenaFourFlowMixed(t *testing.T) {
	spec := mustSpec(t, "flows=4 mix=cubic,copa,bbr,reno join=1s rttspread=20ms dur=10s epoch=500ms")

	run := func() Result {
		res, err := Run(spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()

	if len(res.Epochs) != 20 {
		t.Fatalf("want 20 epochs over 10s at 500ms, got %d", len(res.Epochs))
	}
	wantCC := []string{"cubic", "copa", "bbr", "reno"}
	for i, fr := range res.Flows {
		if fr.CC != wantCC[i] {
			t.Fatalf("flow %d runs %s, want %s", i, fr.CC, wantCC[i])
		}
		if fr.GoodputMbps <= 0 {
			t.Fatalf("flow %d (%s) moved no bytes: %+v", i, fr.CC, fr)
		}
		if fr.MeanTputMbps <= 0 || fr.MeanRTTms <= 0 {
			t.Fatalf("flow %d (%s) has an empty ellipse point: %+v", i, fr.CC, fr)
		}
	}
	if res.Jain <= 0 || res.Jain > 1 {
		t.Fatalf("Jain index %v out of (0,1]", res.Jain)
	}
	var share float64
	for _, fr := range res.Flows {
		share += fr.Share
	}
	if math.Abs(share-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", share)
	}
	have := map[string]bool{}
	res.Group.Do(func(n string, _ *sketch.Sketch) { have[n] = true })
	for _, name := range []string{"arena/jain", "arena/flow_share", "arena/flow_goodput_mbps", "arena/epoch_tput_mbps", "arena/epoch_rtt_ms", "arena/retransmits"} {
		if !have[name] {
			t.Fatalf("sketch group missing %q (have %v)", name, have)
		}
	}

	// Determinism: an identical spec reproduces the identical report.
	// (Epochs carry NaN for not-yet-joined flows' RTTs, so the epoch
	// comparison is NaN-aware rather than DeepEqual.)
	res2 := run()
	if !reflect.DeepEqual(res.Flows, res2.Flows) ||
		res.Jain != res2.Jain || res.Convergence != res2.Convergence || res.Converged != res2.Converged {
		t.Fatal("identical specs produced different results")
	}
	if len(res.Epochs) != len(res2.Epochs) {
		t.Fatal("identical specs produced different epoch counts")
	}
	for k := range res.Epochs {
		e1, e2 := res.Epochs[k], res2.Epochs[k]
		if e1.End != e2.End || e1.Jain != e2.Jain || !floatsEqual(e1.Tput, e2.Tput) || !floatsEqual(e1.RTTms, e2.RTTms) {
			t.Fatalf("identical specs diverged at epoch %d: %+v vs %+v", k, e1, e2)
		}
	}
	if !reflect.DeepEqual(res.Group.Snapshot(), res2.Group.Snapshot()) {
		t.Fatal("identical specs produced different sketch groups")
	}
}

// TestArenaSameCCAFairness pins the fairness property the arena
// exists to measure: two flows running the same algorithm over the
// same bottleneck converge to a near-even split — per-epoch Jain
// reaches 0.95 and holds through the end of the run (that is what
// Converged asserts). Loss-based CCAs get a 4 ms RTT spread: with two
// byte-identical flows on a deterministic channel, drops synchronize
// perfectly and AIMD phase-locks into a biased split that real-world
// jitter (which the spread stands in for) breaks up. BBR competes
// over embb-only because packet steering poisons its min-RTT filter —
// the §3.1 pathology TestArenaBBRSteeringUnfairness pins separately.
func TestArenaSameCCAFairness(t *testing.T) {
	for _, tc := range []struct{ cc, spec string }{
		{"cubic", "flows=2 mix=cubic join=500ms dur=60s epoch=2s rttspread=4ms seed=3"},
		{"reno", "flows=2 mix=reno join=500ms dur=60s epoch=2s rttspread=4ms"},
		{"bbr", "flows=2 mix=bbr join=500ms dur=60s epoch=2s policy=embb-only"},
	} {
		t.Run(tc.cc, func(t *testing.T) {
			res, err := Run(mustSpec(t, tc.spec), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("%s vs %s never reached sustained per-epoch Jain >= 0.95: epochs %+v",
					tc.cc, tc.cc, res.Epochs)
			}
			if res.Jain < 0.9 {
				t.Fatalf("%s vs %s whole-run Jain = %.3f (flows %+v), want >= 0.9",
					tc.cc, tc.cc, res.Jain, res.Flows)
			}
		})
	}
}

// TestArenaBBRSteeringUnfairness pins the multi-flow face of the
// paper's §3.1 pathology, which no single-flow experiment can see:
// under packet steering, acks returning over the low-latency channel
// poison each BBR flow's min-RTT filter, the corrupted BDP caps
// inflight below what the flow's own bandwidth share needs, and the
// coupling starves one competitor outright. The §3.2 remedy (hvc-bbr,
// per-channel sample filtering) restores fairness in the identical
// arena.
func TestArenaBBRSteeringUnfairness(t *testing.T) {
	const tail = " join=500ms dur=60s epoch=2s"
	plain, err := Run(mustSpec(t, "flows=2 mix=bbr"+tail), Options{})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := Run(mustSpec(t, "flows=2 mix=hvc-bbr"+tail), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Jain >= 0.93 {
		t.Fatalf("plain bbr under steering should be visibly unfair, got Jain %.3f (flows %+v)",
			plain.Jain, plain.Flows)
	}
	if aware.Jain < 0.95 || !aware.Converged {
		t.Fatalf("hvc-bbr should restore fairness: Jain %.3f converged %v (flows %+v)",
			aware.Jain, aware.Converged, aware.Flows)
	}
	if plain.Jain >= aware.Jain {
		t.Fatalf("sample filtering should improve fairness: plain %.3f vs hvc %.3f",
			plain.Jain, aware.Jain)
	}
}

// TestArenaFlowIsolationBeforeJoin is the per-flow metric-isolation
// property: perturbing flow j's seed moves only j's join time, so
// every epoch that closes before either join candidate is byte-for-
// byte identical — the other flows' metrics cannot depend on a flow
// that has not joined yet.
func TestArenaFlowIsolationBeforeJoin(t *testing.T) {
	spec := mustSpec(t, "flows=3 mix=cubic,copa join=2s dur=8s epoch=500ms")

	seeds := make([]int64, spec.Flows)
	for i := range seeds {
		seeds[i] = spec.FlowSeed(i)
	}
	joinA := spec.JoinAt(2)

	perturbed := spec
	perturbed.FlowSeeds = append([]int64(nil), seeds...)
	perturbed.FlowSeeds[2] ^= 0x9e37
	joinB := perturbed.JoinAt(2)
	if joinA == joinB {
		t.Fatalf("seed perturbation did not move flow 2's join (%v)", joinA)
	}
	cut := joinA
	if joinB < cut {
		cut = joinB
	}

	resA, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Run(perturbed, Options{})
	if err != nil {
		t.Fatal(err)
	}

	checked := 0
	for k := range resA.Epochs {
		ea, eb := resA.Epochs[k], resB.Epochs[k]
		if ea.End > cut {
			break
		}
		for i := 0; i < 2; i++ {
			if ea.Tput[i] != eb.Tput[i] {
				t.Fatalf("epoch ending %v: flow %d throughput %v vs %v changed by flow 2's seed",
					ea.End, i, ea.Tput[i], eb.Tput[i])
			}
			rttEq := ea.RTTms[i] == eb.RTTms[i] || (math.IsNaN(ea.RTTms[i]) && math.IsNaN(eb.RTTms[i]))
			if !rttEq {
				t.Fatalf("epoch ending %v: flow %d RTT %v vs %v changed by flow 2's seed",
					ea.End, i, ea.RTTms[i], eb.RTTms[i])
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatalf("no epochs closed before the earlier join %v; nothing verified", cut)
	}
}

// TestArenaRTTSpreadOrdersRTTs checks the heterogeneous-RTT knob end
// to end: with a wide spread, the far flow's measured RTT must exceed
// the near flow's by roughly the configured extra delay.
func TestArenaRTTSpreadOrdersRTTs(t *testing.T) {
	spec := mustSpec(t, "flows=2 mix=cubic rttspread=60ms dur=8s epoch=500ms")
	res, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gap := res.Flows[1].MeanRTTms - res.Flows[0].MeanRTTms
	if gap < 40 || gap > 120 {
		t.Fatalf("rttspread=60ms should separate mean RTTs by about that: near=%.1fms far=%.1fms",
			res.Flows[0].MeanRTTms, res.Flows[1].MeanRTTms)
	}
}

// TestArenaFaultOption checks the non-grammar fault knob parses and
// injects: a mid-run outage on the eMBB channel must not wedge the
// arena.
func TestArenaFaultOption(t *testing.T) {
	spec := mustSpec(t, "flows=2 mix=cubic dur=6s epoch=500ms")
	res, err := Run(spec, Options{Fault: "outage:ch=embb,at=2s,dur=500ms"})
	if err != nil {
		t.Fatal(err)
	}
	for i, fr := range res.Flows {
		if fr.GoodputMbps <= 0 {
			t.Fatalf("flow %d starved under fault: %+v", i, fr)
		}
	}
	if _, err := Run(spec, Options{Fault: "not a fault spec"}); err == nil {
		t.Fatal("bad fault spec accepted")
	}
}

func TestJainIndex(t *testing.T) {
	for _, tc := range []struct {
		xs   []float64
		want float64
	}{
		{[]float64{10, 10, 10, 10}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},
		{nil, 1},
		{[]float64{0, 0}, 1},
	} {
		if got := Jain(tc.xs); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Jain(%v) = %v, want %v", tc.xs, got, tc.want)
		}
	}
}

// BenchmarkArena measures a small two-flow arena end to end: spec
// parse, staggered dials, epoch sampling, and summary. The benchstat
// gate tracks it.
func BenchmarkArena(b *testing.B) {
	spec := mustSpec(b, "flows=2 mix=cubic join=100ms dur=2s epoch=200ms")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(spec, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
