// Package arena is the multi-flow contention harness: M independent
// transport connections — same or mixed congestion control, staggered
// joins, heterogeneous RTTs — compete over one shared HVC channel set,
// and the harness reports the fairness metrics the single-flow
// experiments cannot: per-flow throughput shares, the Jain fairness
// index, convergence time after the last join, and throughput/delay
// ellipse points (the CoCo-Beholder presentation), all fed through
// internal/sketch so runs aggregate like every other harness in the
// repo.
//
// An arena spec is a space-separated key=value list in the sweep-spec
// idiom:
//
//	flows=4 mix=cubic:2,copa,bbr join=2s rttspread=40ms seed=1 dur=15s epoch=500ms policy=dchannel trace=fixed
//
// Keys: flows (competitor count), mix (weighted CCA mix cc:weight,
// assigned to flows cyclically), join (stagger between consecutive
// joins, plus a small per-flow seed-derived jitter), rttspread (flow
// i's extra receive delay ramps linearly from 0 to this), seed, dur
// (total run length), epoch (throughput/RTT sampling period), policy
// (steering policy every flow uses), trace (shared eMBB trace).
package arena

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"hvc/internal/core"
)

// maxFlows bounds an arena so a typo cannot expand into an unbounded
// run: contention semantics, not fleet scale (internal/fleet covers
// that).
const maxFlows = 64

// A MixEntry weights one congestion-control algorithm in the arena's
// flow mix.
type MixEntry struct {
	CC     string
	Weight int
}

// A Spec describes one arena run. The zero value is invalid; build
// specs with ParseSpec or populate fields and call Validate.
type Spec struct {
	// Flows is the number of competing connections.
	Flows int
	// Seed drives the shared event loop and the per-flow join jitter.
	Seed int64
	// Mix weights the CCAs; flows draw from the weight-expanded list
	// cyclically, so mix=cubic:2,bbr over 4 flows yields
	// cubic,cubic,bbr,cubic.
	Mix []MixEntry
	// Join staggers flow starts: flow i joins at i*Join plus a
	// seed-derived jitter of up to Join/8.
	Join time.Duration
	// RTTSpread gives flows heterogeneous path lengths: flow i's
	// connection delays every received packet by i*RTTSpread/(Flows-1).
	RTTSpread time.Duration
	// Dur is the total run length.
	Dur time.Duration
	// Epoch is the sampling period for per-flow throughput/RTT series.
	Epoch time.Duration
	// Policy is the steering policy every flow uses.
	Policy string
	// Trace names the shared eMBB trace (see core.TraceNames).
	Trace string

	// FlowSeeds optionally overrides each flow's derived seed (join
	// jitter); nil derives them from Seed. Not part of the grammar —
	// the isolation property tests perturb a single flow through it.
	FlowSeeds []int64
}

// specKeys is the canonical key order String emits and the complete
// set ParseSpec accepts.
var specKeys = []string{"flows", "mix", "join", "rttspread", "seed", "dur", "epoch", "policy", "trace"}

// ParseSpec parses the arena-spec syntax described in the package
// comment. Unknown keys, duplicate keys, and names the core package
// does not accept are errors; omitted keys default (see
// defaultAndValidate). The result is canonical: parsing the String of
// a parsed spec yields the same spec.
func ParseSpec(s string) (Spec, error) {
	spec := Spec{Seed: 1}
	seen := map[string]bool{}
	for _, field := range strings.Fields(s) {
		key, val, ok := strings.Cut(field, "=")
		if !ok || val == "" {
			return Spec{}, fmt.Errorf("arena: field %q is not key=value", field)
		}
		if seen[key] {
			return Spec{}, fmt.Errorf("arena: duplicate key %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "flows":
			spec.Flows, err = parseInt(key, val)
		case "mix":
			spec.Mix, err = parseMix(val)
		case "join":
			spec.Join, err = parseDur(key, val)
		case "rttspread":
			spec.RTTSpread, err = parseDur(key, val)
		case "seed":
			spec.Seed, err = strconv.ParseInt(val, 10, 64)
			if err != nil {
				err = fmt.Errorf("arena: seed %q is not an integer", val)
			}
		case "dur":
			spec.Dur, err = parseDur(key, val)
		case "epoch":
			spec.Epoch, err = parseDur(key, val)
		case "policy":
			spec.Policy = val
		case "trace":
			spec.Trace = val
		default:
			return Spec{}, fmt.Errorf("arena: unknown key %q (valid: %s)", key, strings.Join(specKeys, ", "))
		}
		if err != nil {
			return Spec{}, err
		}
	}
	if err := spec.defaultAndValidate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

func parseInt(key, val string) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("arena: %s %q is not a positive integer", key, val)
	}
	return n, nil
}

func parseDur(key, val string) (time.Duration, error) {
	d, err := time.ParseDuration(val)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("arena: %s %q is not a non-negative duration", key, val)
	}
	return d, nil
}

func parseMix(val string) ([]MixEntry, error) {
	var mix []MixEntry
	seen := map[string]bool{}
	for _, part := range strings.Split(val, ",") {
		cc, weightStr, hasWeight := strings.Cut(part, ":")
		e := MixEntry{CC: cc, Weight: 1}
		if hasWeight {
			w, err := strconv.Atoi(weightStr)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("arena: mix weight %q is not a positive integer", weightStr)
			}
			e.Weight = w
		}
		if cc == "" {
			return nil, fmt.Errorf("arena: mix has an empty CCA name")
		}
		if seen[cc] {
			return nil, fmt.Errorf("arena: mix lists %q twice", cc)
		}
		seen[cc] = true
		mix = append(mix, e)
	}
	return mix, nil
}

// defaultAndValidate fills defaults and checks every name against the
// core package.
func (s *Spec) defaultAndValidate() error {
	if s.Flows == 0 {
		s.Flows = 2
	}
	if s.Flows < 1 || s.Flows > maxFlows {
		return fmt.Errorf("arena: flows %d out of [1,%d]", s.Flows, maxFlows)
	}
	if s.Mix == nil {
		s.Mix = []MixEntry{{CC: "cubic", Weight: 1}}
	}
	if s.Dur == 0 {
		s.Dur = 15 * time.Second
	}
	if s.Dur < 500*time.Millisecond {
		return fmt.Errorf("arena: dur %v below 500ms", s.Dur)
	}
	if s.Epoch == 0 {
		s.Epoch = s.Dur / 30
		if s.Epoch < 100*time.Millisecond {
			s.Epoch = 100 * time.Millisecond
		}
		if s.Epoch > time.Second {
			s.Epoch = time.Second
		}
	}
	if s.Epoch < 10*time.Millisecond || s.Epoch >= s.Dur {
		return fmt.Errorf("arena: epoch %v out of [10ms,dur)", s.Epoch)
	}
	if s.Policy == "" {
		s.Policy = core.PolicyDChannel
	}
	if s.Trace == "" {
		s.Trace = "fixed"
	}

	for _, e := range s.Mix {
		if !core.ValidCC(e.CC) {
			return fmt.Errorf("arena: unknown congestion control %q in mix", e.CC)
		}
	}
	if !core.ValidPolicy(s.Policy) {
		return fmt.Errorf("arena: unknown steering policy %q", s.Policy)
	}
	valid := false
	for _, tr := range core.TraceNames() {
		valid = valid || tr == s.Trace
	}
	if !valid {
		return fmt.Errorf("arena: unknown trace %q (valid: %s)", s.Trace, strings.Join(core.TraceNames(), ", "))
	}
	// Every flow must be joined with room to measure: at least one full
	// epoch after the last join.
	if last := s.joinBase(s.Flows - 1); last+s.Epoch >= s.Dur {
		return fmt.Errorf("arena: last join at %v leaves no full epoch before dur %v", last, s.Dur)
	}
	if len(s.FlowSeeds) != 0 && len(s.FlowSeeds) != s.Flows {
		return fmt.Errorf("arena: FlowSeeds has %d entries for %d flows", len(s.FlowSeeds), s.Flows)
	}
	return nil
}

// Validate checks a programmatically built spec, filling defaults for
// zero fields exactly as ParseSpec does.
func (s *Spec) Validate() error { return s.defaultAndValidate() }

// String renders the spec canonically: every grammar key, fixed order.
// ParseSpec(s.String()) reproduces s (FlowSeeds, test-only, excluded).
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flows=%d mix=%s join=%s rttspread=%s", s.Flows, mixString(s.Mix), s.Join, s.RTTSpread)
	fmt.Fprintf(&b, " seed=%d dur=%s epoch=%s policy=%s trace=%s", s.Seed, s.Dur, s.Epoch, s.Policy, s.Trace)
	return b.String()
}

func mixString(mix []MixEntry) string {
	parts := make([]string, len(mix))
	for i, e := range mix {
		parts[i] = fmt.Sprintf("%s:%d", e.CC, e.Weight)
	}
	return strings.Join(parts, ",")
}

// ParseMix parses the mix grammar alone — comma-separated cc or
// cc:weight entries — without validating the names against core. The
// sweep engine uses it to fold each mix CCA's config fingerprint into
// its cache keys.
func ParseMix(val string) ([]MixEntry, error) { return parseMix(val) }

// MixString renders a mix canonically: cc:weight, comma-separated.
// ParseMix(MixString(m)) reproduces m.
func MixString(mix []MixEntry) string { return mixString(mix) }

// CCFor returns flow i's congestion-control name: the weight-expanded
// mix, assigned cyclically.
func (s Spec) CCFor(i int) string {
	total := 0
	for _, e := range s.Mix {
		total += e.Weight
	}
	slot := i % total
	for _, e := range s.Mix {
		if slot < e.Weight {
			return e.CC
		}
		slot -= e.Weight
	}
	return s.Mix[len(s.Mix)-1].CC // unreachable
}

// CCs returns every flow's CCA in flow order.
func (s Spec) CCs() []string {
	out := make([]string, s.Flows)
	for i := range out {
		out[i] = s.CCFor(i)
	}
	return out
}

// joinBase is flow i's nominal join time before jitter.
func (s Spec) joinBase(i int) time.Duration {
	return time.Duration(i) * s.Join
}

// JoinAt returns flow i's join time: i*Join plus a seed-derived jitter
// of up to Join/8. The jitter hashes (flow seed, i) so perturbing one
// flow's seed moves only that flow's join — the isolation property the
// arena tests pin.
func (s Spec) JoinAt(i int) time.Duration {
	base := s.joinBase(i)
	if s.Join <= 0 {
		return base
	}
	span := uint64(s.Join / 8)
	if span == 0 {
		return base
	}
	return base + time.Duration(mix64(uint64(s.FlowSeed(i)))%span)
}

// FlowSeed returns flow i's derived seed: FlowSeeds[i] when set,
// otherwise a splitmix64 derivation of (Seed, i).
func (s Spec) FlowSeed(i int) int64 {
	if len(s.FlowSeeds) == s.Flows {
		return s.FlowSeeds[i]
	}
	return int64(mix64(uint64(s.Seed) ^ mix64(uint64(i)+1)))
}

// ExtraDelay returns flow i's receive-side path delay: a linear ramp
// from zero (flow 0) to RTTSpread (the last flow).
func (s Spec) ExtraDelay(i int) time.Duration {
	if s.Flows < 2 || s.RTTSpread <= 0 {
		return 0
	}
	return time.Duration(int64(s.RTTSpread) * int64(i) / int64(s.Flows-1))
}

// mix64 is the splitmix64 finalizer, the same bit mixer the fleet
// harness derives per-UE profiles with.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
