package steering

import (
	"testing"

	"hvc/internal/channel"
	"hvc/internal/packet"
)

// Failover behavior under fault-injection outages (see internal/fault):
// every adaptive policy must stop picking a dead channel, and must
// return to its ordinary rule the moment the channel recovers.

func TestDChannelFailsOverOffDeadChannel(t *testing.T) {
	_, g := testGroup(t)
	d := NewDChannel(g, channel.A, DChannelConfig{})
	urllc, embb := g.Get(channel.NameURLLC), g.Get(channel.NameEMBB)

	// The hour-long QueueDelay a down channel advertises steers the
	// reward/cost rule off it; the failover helper is the backstop in
	// case a rule ignores queue delays (exercised in the Priority test).
	urllc.SetOutage(true)
	if got := d.Pick(ack()); got[0] != embb {
		t.Fatalf("ACK steered to dead urllc")
	}
	urllc.SetOutage(false)

	embb.SetOutage(true)
	if got := d.Pick(data(1500, 7)); got[0] != urllc {
		t.Fatalf("data steered to dead embb")
	}
	embb.SetOutage(false)
	if got := d.Pick(ack()); got[0] != urllc {
		t.Fatal("recovered channels should restore the ordinary rule")
	}
}

func TestPriorityFailsOverBothWays(t *testing.T) {
	_, g := testGroup(t)
	pr := NewPriority(g, channel.A, PriorityConfig{AdmitPrio: 0})
	urllc, embb := g.Get(channel.NameURLLC), g.Get(channel.NameEMBB)

	// The forced prio-0 rule yields when the narrow channel is dead.
	urllc.SetOutage(true)
	if got := pr.Pick(data(1500, 0)); got[0] != embb {
		t.Fatal("prio-0 data steered to dead urllc")
	}
	if pr.LastReason() != "failover:embb" {
		t.Fatalf("reason = %q", pr.LastReason())
	}
	urllc.SetOutage(false)

	// Bulk flows normally never touch the narrow channel — unless the
	// wide one is dead.
	embb.SetOutage(true)
	bulk := data(1500, 7)
	bulk.FlowPriority = packet.PriorityBulk
	if got := pr.Pick(bulk); got[0] != urllc {
		t.Fatal("bulk data steered to dead embb")
	}
	embb.SetOutage(false)
	if got := pr.Pick(bulk); got[0] != embb {
		t.Fatal("bulk should return to embb after recovery")
	}
}

func TestRedundantSkipsDeadChannel(t *testing.T) {
	_, g := testGroup(t)
	r := NewRedundant(g)
	embb := g.Get(channel.NameEMBB)

	p := data(1500, 0)
	if got := r.Pick(p); len(got) != 2 || !p.Copy {
		t.Fatalf("healthy Pick = %d channels, Copy=%v; want 2, true", len(got), p.Copy)
	}

	// A copy queued on a dead channel cannot mask the outage — it only
	// resurfaces as a stale duplicate later. Replicate on the live set.
	embb.SetOutage(true)
	p2 := data(1500, 0)
	got := r.Pick(p2)
	if len(got) != 1 || got[0].Name() != channel.NameURLLC {
		t.Fatalf("Pick with embb down = %v", got)
	}
	if p2.Copy {
		t.Fatal("single live channel must not set Copy")
	}

	// All dead: replicate everywhere and let the copies race out at
	// recovery.
	g.Get(channel.NameURLLC).SetOutage(true)
	p3 := data(1500, 0)
	if got := r.Pick(p3); len(got) != 2 || !p3.Copy {
		t.Fatalf("all-down Pick = %d channels, Copy=%v; want 2, true", len(got), p3.Copy)
	}
}

func TestCostAwareFailoverOverridesBudget(t *testing.T) {
	loop, g := testGroup(t)
	// A starvation budget: 1 B/s can never afford a packet.
	c := NewCostAware(g, channel.A, loop.Now, CostAwareConfig{
		Cheap: channel.NameEMBB, Priced: channel.NameURLLC, BudgetBytesPerSec: 1,
	})
	embb, urllc := g.Get(channel.NameEMBB), g.Get(channel.NameURLLC)

	if got := c.Pick(data(1500, 0)); got[0] != embb {
		t.Fatalf("budget-starved Pick = %s, want embb (reason %s)", got[0].Name(), c.LastReason())
	}

	// Liveness overrides the budget: with the cheap channel dead, the
	// priced one carries the flow (and the spend is still metered).
	embb.SetOutage(true)
	if got := c.Pick(data(1500, 0)); got[0] != urllc {
		t.Fatal("Pick stayed on dead embb instead of spending")
	}
	if c.LastReason() != "failover:urllc" {
		t.Fatalf("reason = %q", c.LastReason())
	}
	if c.SpentBytes() != 1500 {
		t.Fatalf("SpentBytes = %d, want 1500 (failover traffic is metered)", c.SpentBytes())
	}
	embb.SetOutage(false)

	// A dead priced channel needs no special path: its hour-long queue
	// delay makes the benefit negative and the rule picks cheap.
	urllc.SetOutage(true)
	if got := c.Pick(data(1500, 0)); got[0] != embb {
		t.Fatal("Pick chose the dead priced channel")
	}
}

func TestTailBoostSkipsDeadNarrow(t *testing.T) {
	_, g := testGroup(t)
	tb := NewTailBoost(NewSingle(g.Get(channel.NameEMBB)), g, channel.A, TailBoostConfig{})
	tail := data(1500, 0) // MsgRemaining 0 < default 8 kB: qualifies

	if got := tb.Pick(tail); got[0].Name() != channel.NameURLLC {
		t.Fatal("tail segment should be boosted while urllc is up")
	}
	g.Get(channel.NameURLLC).SetOutage(true)
	if got := tb.Pick(tail); got[0].Name() != channel.NameEMBB {
		t.Fatal("tail segment diverted to a dead narrow channel")
	}
}

func TestObjectMapDetoursAroundOutage(t *testing.T) {
	_, g := testGroup(t)
	o := NewObjectMap(g, channel.A, ObjectMapConfig{})
	urllc, embb := g.Get(channel.NameURLLC), g.Get(channel.NameEMBB)

	small := data(1000, 0)
	small.MsgID = 1
	if got := o.Pick(small); got[0] != urllc {
		t.Fatal("small object should map to urllc")
	}
	// The assignment stays sticky, but packets detour while the
	// assigned channel is down...
	urllc.SetOutage(true)
	if got := o.Pick(small); got[0] != embb {
		t.Fatal("packet rode the dead assigned channel")
	}
	if o.LastReason() != "failover:embb" {
		t.Fatalf("reason = %q", o.LastReason())
	}
	// ...and return to it on recovery.
	urllc.SetOutage(false)
	if got := o.Pick(small); got[0] != urllc {
		t.Fatal("recovered assignment not restored")
	}
	if o.LastReason() != "object-sticky" {
		t.Fatalf("reason = %q, want object-sticky", o.LastReason())
	}
}

// TestSingleNeverFailsOver pins the baseline: Single is the no-HVC
// reference whose outage stall the adaptive policies are measured
// against, so it keeps sending into the blackout.
func TestSingleNeverFailsOver(t *testing.T) {
	_, g := testGroup(t)
	embb := g.Get(channel.NameEMBB)
	s := NewSingle(embb)
	embb.SetOutage(true)
	if got := s.Pick(data(1500, 0)); got[0] != embb {
		t.Fatal("Single must not fail over")
	}
}

// TestFailoverSteadyStateAllocFree pins that the outage checks did not
// add allocations to the steering hot path.
func TestFailoverSteadyStateAllocFree(t *testing.T) {
	_, g := testGroup(t)
	d := NewDChannel(g, channel.A, DChannelConfig{})
	r := NewRedundant(g)
	g.Get(channel.NameEMBB).SetOutage(true)
	p := data(1500, 0)
	d.Pick(p)
	r.Pick(p)
	if avg := testing.AllocsPerRun(200, func() {
		d.Pick(p)
		r.Pick(p)
	}); avg != 0 {
		t.Fatalf("steering under outage allocates %.1f/op, want 0", avg)
	}
}
