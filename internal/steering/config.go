package steering

import (
	"fmt"

	"hvc/internal/channel"
)

// Canonical config strings: each config struct renders itself, after
// applying the same defaulting as its constructor, as a one-line
// canonical description. The sweep engine folds these into its
// result-cache keys so cached cells invalidate when a policy's
// parameters change; bump the "/vN" tag for behavior changes the
// fields don't capture. Two configs that construct behaviorally
// identical policies render identically.

// Canonical returns the canonical description of the DChannel policy
// this config builds.
func (cfg DChannelConfig) Canonical() string {
	if cfg.Wide == "" {
		cfg.Wide = channel.NameEMBB
	}
	if cfg.Narrow == "" {
		cfg.Narrow = channel.NameURLLC
	}
	if cfg.Beta == 0 {
		cfg.Beta = 1
	}
	return fmt.Sprintf("dchannel/v1 wide=%s narrow=%s beta=%g", cfg.Wide, cfg.Narrow, cfg.Beta)
}

// Canonical returns the canonical description of the Priority policy
// this config builds; it embeds the fallback heuristic's canonical
// form because Priority defers to it.
func (cfg PriorityConfig) Canonical() string {
	if cfg.Wide == "" {
		cfg.Wide = channel.NameEMBB
	}
	if cfg.Narrow == "" {
		cfg.Narrow = channel.NameURLLC
	}
	fb := DChannelConfig{Wide: cfg.Wide, Narrow: cfg.Narrow, Beta: cfg.Beta}
	return fmt.Sprintf("priority/v1 admit=%d heuristic=%t fallback=(%s)",
		cfg.AdmitPrio, cfg.Heuristic, fb.Canonical())
}

// Canonical returns the canonical description of the ObjectMap policy
// this config builds.
func (cfg ObjectMapConfig) Canonical() string {
	if cfg.Wide == "" {
		cfg.Wide = channel.NameEMBB
	}
	if cfg.Narrow == "" {
		cfg.Narrow = channel.NameURLLC
	}
	if cfg.SmallBytes == 0 {
		cfg.SmallBytes = 10 << 10
	}
	return fmt.Sprintf("objectmap/v1 wide=%s narrow=%s small=%d", cfg.Wide, cfg.Narrow, cfg.SmallBytes)
}
