// Package steering implements the packet-steering policies the paper
// compares across layers of the stack (§3):
//
//   - Single: all traffic on one channel (the eMBB-only baseline).
//   - DChannel: the network-layer reward/cost heuristic of Sentosa et
//     al. (NSDI '23), application-agnostic, accelerating control
//     packets and any data whose expected latency gain on the narrow
//     channel exceeds the cost of occupying it.
//   - Priority: the paper's cross-layer policy; it additionally sees
//     message boundaries and priorities through the application-
//     transport interface, forces high-priority messages onto the
//     low-latency channel, and keeps bulk background flows off it.
//   - Redundant: Wi-Fi MLO-style duplication across channels, trading
//     bandwidth for reliability (§2.2, §3.1).
//   - CostAware: a budgeted policy for priced low-latency WAN paths
//     such as cISP (§3.1's latency-vs-cost trade-off).
//
// A policy decides; the caller transmits. Policies observe channel
// queues through the channel package, which is exactly the channel
// information the paper argues should be exposed upward.
package steering

import (
	"fmt"
	"time"

	"hvc/internal/channel"
	"hvc/internal/packet"
)

// A Policy maps each outgoing packet to the channel(s) that should
// carry it. Pick returns at least one channel; more than one means the
// packet is replicated (receivers deduplicate by packet ID).
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Pick chooses the channel(s) for p. Implementations must not
	// retain p. The returned slice is valid only until the next Pick
	// on the same policy: implementations reuse one scratch slice per
	// policy so that steady-state steering does not allocate.
	Pick(p *packet.Packet) []*channel.Channel
}

// A LivenessAware policy declares whether it routes around channels in
// a fault outage. For a policy that reports FailsOver() == true, the
// runtime invariant layer asserts after every Pick that no chosen
// channel is down while a live alternative exists — the steering
// liveness property that turns one channel's blackout into, at worst,
// a detour rather than the connection's. Single reports false: the
// no-failover baseline ships traffic onto dead channels by design.
type LivenessAware interface {
	// FailsOver reports whether the policy avoids channels that are
	// Down when a live alternative exists.
	FailsOver() bool
}

// A Reasoner is a Policy that can explain its most recent Pick: a
// short machine-greppable string ("control:narrow-faster",
// "bulk-flow") recorded by the telemetry layer with each steering
// decision. Every policy in this package implements it.
type Reasoner interface {
	// LastReason describes the most recent Pick. Valid until the next
	// Pick on the same policy.
	LastReason() string
}

// Reason extracts p's last decision reason when p explains itself,
// and falls back to the policy name otherwise.
func Reason(p Policy) string {
	if r, ok := p.(Reasoner); ok {
		if s := r.LastReason(); s != "" {
			return s
		}
	}
	return p.Name()
}

// Counter wraps a Policy and tallies per-channel decisions; the
// experiment harness uses it to report channel shares.
type Counter struct {
	Policy
	counts map[string]int
}

// NewCounter returns a counting wrapper around p.
func NewCounter(p Policy) *Counter {
	return &Counter{Policy: p, counts: make(map[string]int)}
}

// Pick delegates to the wrapped policy and counts its decisions.
func (c *Counter) Pick(p *packet.Packet) []*channel.Channel {
	chs := c.Policy.Pick(p)
	for _, ch := range chs {
		c.counts[ch.Name()]++
	}
	return chs
}

// Counts reports decisions per channel name so far.
func (c *Counter) Counts() map[string]int { return c.counts }

// LastReason implements Reasoner by delegating to the wrapped policy.
func (c *Counter) LastReason() string {
	if r, ok := c.Policy.(Reasoner); ok {
		return r.LastReason()
	}
	return ""
}

// Single sends everything on one channel.
type Single struct {
	ch   *channel.Channel
	pick []*channel.Channel
}

// failover substitutes alt for choice when choice is in a fault-
// injection outage (channel.Down) and alt is not, reporting whether it
// swapped. It is the liveness check every adaptive policy applies
// after its own preference: a dead channel accepts packets into a
// queue that drains nowhere, so keeping traffic on it turns one
// channel's blackout into the connection's. The moment the channel
// recovers, Down flips back and the policy's ordinary rule re-probes
// it — no separate probing machinery needed.
func failover(choice, alt *channel.Channel) (*channel.Channel, bool) {
	if choice.Down() && !alt.Down() {
		return alt, true
	}
	return choice, false
}

// NewSingle returns the single-channel policy (the eMBB-only
// baseline). It panics on a nil channel. Single deliberately does not
// fail over — it is the no-HVC baseline whose stall time under an
// outage the adaptive policies are measured against.
func NewSingle(ch *channel.Channel) *Single {
	if ch == nil {
		panic("steering: NewSingle(nil)")
	}
	return &Single{ch: ch}
}

// Name implements Policy.
func (s *Single) Name() string { return s.ch.Name() + "-only" }

// Pick implements Policy.
func (s *Single) Pick(*packet.Packet) []*channel.Channel {
	s.pick = append(s.pick[:0], s.ch)
	return s.pick
}

// LastReason implements Reasoner.
func (s *Single) LastReason() string { return "single" }

// DChannelConfig parameterizes the DChannel heuristic.
type DChannelConfig struct {
	// Wide and Narrow name the high-bandwidth and low-latency
	// channels; they default to the conventional eMBB/URLLC names.
	Wide, Narrow string
	// Beta scales the cost term: higher values are more conservative
	// about occupying the narrow channel. 0 means the default of 1.
	Beta float64
}

// DChannel implements the network-layer reward/cost packet steering
// heuristic. It is deliberately application-agnostic: every packet is
// treated as if it might complete a message (the paper's explanation
// of why it underperforms priority-aware steering on SVC video).
type DChannel struct {
	side       channel.Side
	wide       *channel.Channel
	narrow     *channel.Channel
	beta       float64
	pick       []*channel.Channel
	lastReason string
}

// NewDChannel builds the heuristic over g as seen from side. It panics
// when the configured channels are missing from the group.
func NewDChannel(g *channel.Group, side channel.Side, cfg DChannelConfig) *DChannel {
	if cfg.Wide == "" {
		cfg.Wide = channel.NameEMBB
	}
	if cfg.Narrow == "" {
		cfg.Narrow = channel.NameURLLC
	}
	if cfg.Beta == 0 {
		cfg.Beta = 1
	}
	wide, narrow := g.Get(cfg.Wide), g.Get(cfg.Narrow)
	if wide == nil || narrow == nil {
		panic(fmt.Sprintf("steering: group lacks %q or %q", cfg.Wide, cfg.Narrow))
	}
	return &DChannel{side: side, wide: wide, narrow: narrow, beta: cfg.Beta}
}

// Name implements Policy.
func (d *DChannel) Name() string { return "dchannel" }

// LastReason implements Reasoner.
func (d *DChannel) LastReason() string { return d.lastReason }

// Pick implements Policy.
func (d *DChannel) Pick(p *packet.Packet) []*channel.Channel {
	ch, alt := d.wide, d.narrow
	if d.pickNarrow(p) {
		ch, alt = d.narrow, d.wide
	}
	if sw, swapped := failover(ch, alt); swapped {
		ch = sw
		d.lastReason = "failover:" + ch.Name()
	}
	d.pick = append(d.pick[:0], ch)
	return d.pick
}

// pickNarrow evaluates the reward/cost rule for p.
func (d *DChannel) pickNarrow(p *packet.Packet) bool {
	narrowDelay := d.oneWay(d.narrow) + txTime(p.Size, d.narrow)
	wideDelay := d.oneWay(d.wide) + txTime(p.Size, d.wide)

	if p.Kind != packet.Data {
		// Control traffic (ACKs, probes) is tiny and reliably
		// latency-sensitive; DChannel accelerates it whenever the
		// narrow channel is currently the faster way to deliver it.
		if narrowDelay < wideDelay {
			d.lastReason = "control:narrow-faster"
			return true
		}
		d.lastReason = "control:wide-faster"
		return false
	}
	// Reward: expected one-way latency saved by this packet. Cost:
	// the transmission time it occupies on the narrow channel, which
	// delays everything behind it there.
	reward := wideDelay - narrowDelay
	cost := time.Duration(d.beta * float64(txTime(p.Size, d.narrow)))
	if reward > cost {
		d.lastReason = "reward>cost"
		return true
	}
	d.lastReason = "reward<=cost"
	return false
}

func (d *DChannel) oneWay(ch *channel.Channel) time.Duration {
	return ch.Props().BaseRTT/2 + ch.QueueDelay(d.side)
}

func txTime(size int, ch *channel.Channel) time.Duration {
	bw := ch.Props().Bandwidth
	if bw <= 0 {
		return time.Hour // a channel with no capacity is never attractive
	}
	return time.Duration(float64(size) * 8 / bw * float64(time.Second))
}

// PriorityConfig parameterizes the cross-layer policy.
type PriorityConfig struct {
	// Wide and Narrow as in DChannelConfig.
	Wide, Narrow string
	// AdmitPrio forces messages with Priority ≤ AdmitPrio onto the
	// narrow channel regardless of its queue (the SVC layer-0 rule).
	// A negative value disables forcing.
	AdmitPrio int
	// Heuristic applies the DChannel reward/cost rule to packets not
	// otherwise forced, as "DChannel with priority" does for web
	// traffic. When false such packets use the wide channel.
	Heuristic bool
	// Beta is the heuristic's cost scale, as in DChannelConfig.
	Beta float64
}

// Priority is the paper's application-aware policy: it reads message
// priorities and flow priorities from packet headers (supplied through
// the application-transport interface) and keeps the constrained
// low-latency channel for traffic the application declared important.
type Priority struct {
	cfg        PriorityConfig
	fallback   *DChannel
	narrow     *channel.Channel
	wide       *channel.Channel
	pick       []*channel.Channel
	lastReason string
}

// NewPriority builds the policy over g as seen from side.
func NewPriority(g *channel.Group, side channel.Side, cfg PriorityConfig) *Priority {
	if cfg.Wide == "" {
		cfg.Wide = channel.NameEMBB
	}
	if cfg.Narrow == "" {
		cfg.Narrow = channel.NameURLLC
	}
	fb := NewDChannel(g, side, DChannelConfig{Wide: cfg.Wide, Narrow: cfg.Narrow, Beta: cfg.Beta})
	return &Priority{cfg: cfg, fallback: fb, narrow: g.Get(cfg.Narrow), wide: g.Get(cfg.Wide)}
}

// Name implements Policy.
func (pr *Priority) Name() string {
	if pr.cfg.Heuristic {
		return "dchannel+priority"
	}
	return "priority"
}

// LastReason implements Reasoner.
func (pr *Priority) LastReason() string { return pr.lastReason }

// Pick implements Policy.
func (pr *Priority) Pick(p *packet.Packet) []*channel.Channel {
	// Bulk background flows never occupy the narrow channel; this is
	// the flow-priority input that removes Table 1's queue build-up.
	if p.FlowPriority == packet.PriorityBulk {
		pr.lastReason = "bulk-flow"
		return pr.choose(pr.wide, pr.narrow)
	}
	if pr.cfg.AdmitPrio >= 0 && p.Kind == packet.Data && int(p.Priority) <= pr.cfg.AdmitPrio {
		pr.lastReason = "prio-admit"
		return pr.choose(pr.narrow, pr.wide)
	}
	if pr.cfg.Heuristic || p.Kind != packet.Data {
		chs := pr.fallback.Pick(p)
		pr.lastReason = pr.fallback.LastReason()
		return chs
	}
	pr.lastReason = "default-wide"
	return pr.choose(pr.wide, pr.narrow)
}

// choose returns ch, unless it is dead and alt is not — even a forced
// priority rule yields to liveness, since a dead narrow channel serves
// no one's latency.
func (pr *Priority) choose(ch, alt *channel.Channel) []*channel.Channel {
	if sw, swapped := failover(ch, alt); swapped {
		ch = sw
		pr.lastReason = "failover:" + ch.Name()
	}
	pr.pick = append(pr.pick[:0], ch)
	return pr.pick
}

// Redundant replicates every packet across all channels of the group,
// trading aggregate bandwidth for delivery probability (Wi-Fi MLO's
// reliability mode). Receivers deduplicate on packet ID.
type Redundant struct {
	g    *channel.Group
	pick []*channel.Channel
}

// NewRedundant builds the replication policy over g, which must hold
// at least two channels for replication to mean anything.
func NewRedundant(g *channel.Group) *Redundant {
	if g.Len() < 2 {
		panic("steering: Redundant needs at least two channels")
	}
	return &Redundant{g: g}
}

// Name implements Policy.
func (r *Redundant) Name() string { return "redundant" }

// LastReason implements Reasoner.
func (r *Redundant) LastReason() string { return "replicate" }

// Pick implements Policy.
func (r *Redundant) Pick(p *packet.Packet) []*channel.Channel {
	// Replicate across the live channels only: a copy queued on a dead
	// channel cannot arrive during the outage and only resurfaces as a
	// stale duplicate afterwards. When everything is down, replicate
	// everywhere — the copies queue and race out at recovery.
	r.pick = r.pick[:0]
	for _, ch := range r.g.All() {
		if !ch.Down() {
			r.pick = append(r.pick, ch)
		}
	}
	if len(r.pick) == 0 {
		r.pick = append(r.pick, r.g.All()...)
	}
	if len(r.pick) > 1 {
		p.Copy = true // mark so receivers know duplicates may exist
	}
	return r.pick
}

// CostAwareConfig parameterizes budgeted use of a priced channel.
type CostAwareConfig struct {
	// Cheap and Priced name the free and per-byte-priced channels.
	Cheap, Priced string
	// BudgetBytesPerSec refills the spending allowance; the policy
	// never sends more than this long-run average over the priced
	// channel. BurstBytes caps accumulated allowance (default: one
	// second of budget).
	BudgetBytesPerSec float64
	BurstBytes        float64
	// MinBenefit gates priced use: the estimated one-way saving must
	// exceed it (default 0: any saving qualifies).
	MinBenefit time.Duration
}

// CostAware spends a byte budget on a priced low-latency channel only
// when doing so buys enough latency, the §3.1 latency-vs-cost policy.
type CostAware struct {
	cfg    CostAwareConfig
	side   channel.Side
	cheap  *channel.Channel
	priced *channel.Channel

	now        func() time.Duration
	tokens     float64
	lastRefill time.Duration
	spentBytes int64
	pick       []*channel.Channel
	lastReason string
}

// NewCostAware builds the policy; now supplies virtual time (the
// simulation clock's Now method).
func NewCostAware(g *channel.Group, side channel.Side, now func() time.Duration, cfg CostAwareConfig) *CostAware {
	cheap, priced := g.Get(cfg.Cheap), g.Get(cfg.Priced)
	if cheap == nil || priced == nil {
		panic(fmt.Sprintf("steering: group lacks %q or %q", cfg.Cheap, cfg.Priced))
	}
	if cfg.BudgetBytesPerSec <= 0 {
		panic("steering: CostAware needs a positive budget")
	}
	if cfg.BurstBytes == 0 {
		cfg.BurstBytes = cfg.BudgetBytesPerSec
	}
	return &CostAware{
		cfg: cfg, side: side, cheap: cheap, priced: priced,
		now: now, tokens: cfg.BurstBytes,
	}
}

// Name implements Policy.
func (c *CostAware) Name() string { return "costaware" }

// SpentBytes reports the total bytes sent over the priced channel.
func (c *CostAware) SpentBytes() int64 { return c.spentBytes }

// Cost reports the money spent so far, per the priced channel's
// CostPerByte.
func (c *CostAware) Cost() float64 {
	return float64(c.spentBytes) * c.priced.Props().CostPerByte
}

// LastReason implements Reasoner.
func (c *CostAware) LastReason() string { return c.lastReason }

// Pick implements Policy.
func (c *CostAware) Pick(p *packet.Packet) []*channel.Channel {
	c.refill()
	// Liveness overrides the budget: while the cheap channel is blacked
	// out, the priced one is the only way to make progress, so spend on
	// it even past the token floor (the spend is still metered and the
	// refill debt is capped at zero, not carried). The reverse case
	// needs no special path — a dead priced channel's QueueDelay makes
	// its benefit hugely negative and the rule below picks cheap.
	if c.cheap.Down() && !c.priced.Down() {
		c.tokens -= float64(p.Size)
		if c.tokens < 0 {
			c.tokens = 0
		}
		c.spentBytes += int64(p.Size)
		c.lastReason = "failover:" + c.priced.Name()
		c.pick = append(c.pick[:0], c.priced)
		return c.pick
	}
	benefit := c.cheap.Props().BaseRTT/2 + c.cheap.QueueDelay(c.side) -
		(c.priced.Props().BaseRTT/2 + c.priced.QueueDelay(c.side) + txTime(p.Size, c.priced))
	if benefit > c.cfg.MinBenefit && c.tokens >= float64(p.Size) {
		c.tokens -= float64(p.Size)
		c.spentBytes += int64(p.Size)
		c.lastReason = "benefit-in-budget"
		c.pick = append(c.pick[:0], c.priced)
		return c.pick
	}
	if benefit > c.cfg.MinBenefit {
		c.lastReason = "budget-exhausted"
	} else {
		c.lastReason = "no-benefit"
	}
	c.pick = append(c.pick[:0], c.cheap)
	return c.pick
}

func (c *CostAware) refill() {
	now := c.now()
	if now <= c.lastRefill {
		return
	}
	c.tokens += (now - c.lastRefill).Seconds() * c.cfg.BudgetBytesPerSec
	if c.tokens > c.cfg.BurstBytes {
		c.tokens = c.cfg.BurstBytes
	}
	c.lastRefill = now
}

// TailBoostConfig parameterizes end-of-message acceleration.
type TailBoostConfig struct {
	// Narrow names the low-latency channel; defaults to URLLC.
	Narrow string
	// TailBytes is how much of each message's tail qualifies for
	// acceleration; 0 means 8 kB (a handful of packets).
	TailBytes int
}

// TailBoost implements §3.2's observation that, because the transport
// fragments application messages, "segments towards the end of a
// message can be selectively sent over a low latency path" to avoid
// head-of-line blocking on the final bytes: a message is useful only
// when complete, so its tail is the most latency-critical part. The
// policy wraps a base policy and diverts qualifying tail segments to
// the narrow channel whenever that is currently the faster way to
// deliver them.
type TailBoost struct {
	base       Policy
	side       channel.Side
	narrow     *channel.Channel
	tail       int
	pick       []*channel.Channel
	lastReason string
}

// NewTailBoost wraps base over g as seen from side.
func NewTailBoost(base Policy, g *channel.Group, side channel.Side, cfg TailBoostConfig) *TailBoost {
	if base == nil {
		panic("steering: NewTailBoost(nil base)")
	}
	if cfg.Narrow == "" {
		cfg.Narrow = channel.NameURLLC
	}
	if cfg.TailBytes == 0 {
		cfg.TailBytes = 8 << 10
	}
	narrow := g.Get(cfg.Narrow)
	if narrow == nil {
		panic(fmt.Sprintf("steering: group lacks %q", cfg.Narrow))
	}
	return &TailBoost{base: base, side: side, narrow: narrow, tail: cfg.TailBytes}
}

// Name implements Policy.
func (t *TailBoost) Name() string { return t.base.Name() + "+tail" }

// LastReason implements Reasoner.
func (t *TailBoost) LastReason() string { return t.lastReason }

// Pick implements Policy.
func (t *TailBoost) Pick(p *packet.Packet) []*channel.Channel {
	chosen := t.base.Pick(p)
	t.lastReason = Reason(t.base)
	if p.Kind != packet.Data || p.MsgRemaining >= t.tail || len(chosen) != 1 ||
		chosen[0] == t.narrow || t.narrow.Down() {
		return chosen
	}
	baseDelay := chosen[0].Props().BaseRTT/2 + chosen[0].QueueDelay(t.side) + txTime(p.Size, chosen[0])
	narrowDelay := t.narrow.Props().BaseRTT/2 + t.narrow.QueueDelay(t.side) + txTime(p.Size, t.narrow)
	if narrowDelay < baseDelay {
		t.lastReason = "tail-boost"
		t.pick = append(t.pick[:0], t.narrow)
		return t.pick
	}
	return chosen
}

// ObjectMapConfig parameterizes the IANS-style policy.
type ObjectMapConfig struct {
	// Wide and Narrow as in DChannelConfig.
	Wide, Narrow string
	// SmallBytes is the size at or below which a whole message is
	// assigned to the narrow channel; 0 means 10 kB (an "interactive
	// object" intent).
	SmallBytes int
}

// ObjectMap implements the Informed Access Network Selection baseline
// (Enghardt et al.; Socket Intents): the application's size/intent
// hint assigns each *object* — a whole message — to exactly one
// channel. The paper's criticism (§1) is the granularity: because an
// object never spans channels, a large object cannot borrow the
// low-latency channel for its tail, and a small object on the narrow
// channel cannot overflow onto the wide one, so ObjectMap
// underperforms per-packet steering while still beating a single
// channel.
type ObjectMap struct {
	side   channel.Side
	wide   *channel.Channel
	narrow *channel.Channel
	small  int
	// assignment is sticky per message, the defining IANS property.
	assignment map[uint64]*channel.Channel
	pick       []*channel.Channel
	lastReason string
}

// NewObjectMap builds the policy over g as seen from side.
func NewObjectMap(g *channel.Group, side channel.Side, cfg ObjectMapConfig) *ObjectMap {
	if cfg.Wide == "" {
		cfg.Wide = channel.NameEMBB
	}
	if cfg.Narrow == "" {
		cfg.Narrow = channel.NameURLLC
	}
	if cfg.SmallBytes == 0 {
		cfg.SmallBytes = 10 << 10
	}
	wide, narrow := g.Get(cfg.Wide), g.Get(cfg.Narrow)
	if wide == nil || narrow == nil {
		panic(fmt.Sprintf("steering: group lacks %q or %q", cfg.Wide, cfg.Narrow))
	}
	return &ObjectMap{
		side: side, wide: wide, narrow: narrow, small: cfg.SmallBytes,
		assignment: make(map[uint64]*channel.Channel),
	}
}

// Name implements Policy.
func (o *ObjectMap) Name() string { return "objectmap" }

// LastReason implements Reasoner.
func (o *ObjectMap) LastReason() string { return o.lastReason }

// Pick implements Policy.
func (o *ObjectMap) Pick(p *packet.Packet) []*channel.Channel {
	if p.Kind != packet.Data {
		// IANS operates above the transport; its control traffic just
		// follows the default (wide) network — except around an outage,
		// where an ack or handshake stranded on the dead default would
		// stall the whole flow. (Found by the steering liveness
		// invariant under chaos soak.)
		ch := o.wide
		o.lastReason = "control-default"
		if sw, swapped := failover(ch, o.narrow); swapped {
			ch = sw
			o.lastReason = "failover:" + ch.Name()
		}
		o.pick = append(o.pick[:0], ch)
		return o.pick
	}
	ch, ok := o.assignment[p.MsgID]
	if !ok {
		// First packet of the message: its remaining count plus this
		// payload reveals the object size the application declared.
		objectSize := p.MsgRemaining + p.Size - packet.HeaderBytes
		if objectSize <= o.small {
			ch = o.narrow
			o.lastReason = "object-small"
		} else {
			ch = o.wide
			o.lastReason = "object-large"
		}
		o.assignment[p.MsgID] = ch
	} else {
		o.lastReason = "object-sticky"
	}
	// The object-to-channel assignment stays sticky (the defining IANS
	// property), but packets detour around an outage: when the assigned
	// channel is down they ride the other one until it recovers.
	other := o.wide
	if ch == o.wide {
		other = o.narrow
	}
	if sw, swapped := failover(ch, other); swapped {
		ch = sw
		o.lastReason = "failover:" + ch.Name()
	}
	o.pick = append(o.pick[:0], ch)
	return o.pick
}

// Liveness declarations (see LivenessAware). Every adaptive policy in
// this package routes around a Down channel when a live alternative
// exists, so the invariant layer holds it to that; Single is the
// deliberate no-failover baseline.

// FailsOver implements LivenessAware: the baseline does not fail over.
func (s *Single) FailsOver() bool { return false }

// FailsOver implements LivenessAware.
func (d *DChannel) FailsOver() bool { return true }

// FailsOver implements LivenessAware.
func (pr *Priority) FailsOver() bool { return true }

// FailsOver implements LivenessAware.
func (r *Redundant) FailsOver() bool { return true }

// FailsOver implements LivenessAware.
func (c *CostAware) FailsOver() bool { return true }

// FailsOver implements LivenessAware.
func (o *ObjectMap) FailsOver() bool { return true }

// FailsOver implements LivenessAware by delegating to the base policy:
// the tail boost only ever adds the narrow channel when it is up, so
// liveness is the base's property.
func (t *TailBoost) FailsOver() bool {
	if la, ok := t.base.(LivenessAware); ok {
		return la.FailsOver()
	}
	return false
}

// FailsOver implements LivenessAware by delegating to the wrapped
// policy.
func (c *Counter) FailsOver() bool {
	if la, ok := c.Policy.(LivenessAware); ok {
		return la.FailsOver()
	}
	return false
}
