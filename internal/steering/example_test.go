package steering_test

import (
	"fmt"

	"hvc/internal/channel"
	"hvc/internal/packet"
	"hvc/internal/sim"
	"hvc/internal/steering"
)

// ExampleDChannel shows the reward/cost heuristic deciding between a
// wide and a narrow channel: small packets are accelerated while the
// narrow channel is fresh, then diverted once its queue builds.
func ExampleDChannel() {
	loop := sim.NewLoop(1)
	embb, urllc := channel.EMBBFixed(loop), channel.URLLC(loop)
	urllc.SetSink(channel.B, func(*packet.Packet) {})
	group := channel.NewGroup(embb, urllc)

	policy := steering.NewDChannel(group, channel.A, steering.DChannelConfig{})

	fresh := &packet.Packet{Kind: packet.Data, Size: 1200}
	fmt.Println("fresh data →", policy.Pick(fresh)[0].Name())

	// Build ~80 ms of URLLC backlog, then ask again.
	for i := 0; i < 14; i++ {
		urllc.Send(channel.A, &packet.Packet{ID: uint64(i), Size: 1400})
	}
	fmt.Println("with backlog →", policy.Pick(fresh)[0].Name())
	// Output:
	// fresh data → urllc
	// with backlog → embb
}

// ExamplePriority shows the cross-layer policy honoring application
// priorities: priority-0 messages are forced onto the low-latency
// channel, bulk flows are kept off it entirely.
func ExamplePriority() {
	loop := sim.NewLoop(1)
	group := channel.NewGroup(channel.EMBBFixed(loop), channel.URLLC(loop))
	policy := steering.NewPriority(group, channel.A, steering.PriorityConfig{AdmitPrio: 0})

	layer0 := &packet.Packet{Kind: packet.Data, Size: 1200, Priority: 0}
	layer2 := &packet.Packet{Kind: packet.Data, Size: 1200, Priority: 2}
	bulk := &packet.Packet{Kind: packet.Data, Size: 1200, FlowPriority: packet.PriorityBulk}

	fmt.Println("layer 0 →", policy.Pick(layer0)[0].Name())
	fmt.Println("layer 2 →", policy.Pick(layer2)[0].Name())
	fmt.Println("bulk    →", policy.Pick(bulk)[0].Name())
	// Output:
	// layer 0 → urllc
	// layer 2 → embb
	// bulk    → embb
}

// ExampleCostAware shows budgeted use of a priced path.
func ExampleCostAware() {
	loop := sim.NewLoop(1)
	fiber, microwave := channel.CISP(loop)
	group := channel.NewGroup(fiber, microwave)
	policy := steering.NewCostAware(group, channel.A, loop.Now, steering.CostAwareConfig{
		Cheap: "fiber", Priced: "cisp", BudgetBytesPerSec: 2000, BurstBytes: 2000,
	})
	for i := 0; i < 3; i++ {
		p := &packet.Packet{Kind: packet.Data, Size: 1000}
		fmt.Printf("packet %d → %s\n", i, policy.Pick(p)[0].Name())
	}
	fmt.Printf("spent $%.4f\n", policy.Cost())
	// Output:
	// packet 0 → cisp
	// packet 1 → cisp
	// packet 2 → fiber
	// spent $0.0020
}
