package steering

import (
	"testing"
	"time"

	"hvc/internal/channel"
	"hvc/internal/packet"
	"hvc/internal/sim"
)

// testGroup builds the standard Fig. 1 pair: fixed eMBB (50 ms/60 Mbps)
// and URLLC (5 ms/2 Mbps), with sinks discarding deliveries.
func testGroup(t *testing.T) (*sim.Loop, *channel.Group) {
	t.Helper()
	loop := sim.NewLoop(1)
	e, u := channel.EMBBFixed(loop), channel.URLLC(loop)
	for _, c := range []*channel.Channel{e, u} {
		c.SetSink(channel.A, func(*packet.Packet) {})
		c.SetSink(channel.B, func(*packet.Packet) {})
	}
	return loop, channel.NewGroup(e, u)
}

func data(size int, prio packet.Priority) *packet.Packet {
	return &packet.Packet{Kind: packet.Data, Size: size, Priority: prio}
}

func ack() *packet.Packet {
	return &packet.Packet{Kind: packet.Ack, Size: packet.HeaderBytes}
}

func TestSingleAlwaysPicksItsChannel(t *testing.T) {
	_, g := testGroup(t)
	s := NewSingle(g.Get(channel.NameEMBB))
	for i := 0; i < 5; i++ {
		chs := s.Pick(data(1500, 0))
		if len(chs) != 1 || chs[0].Name() != channel.NameEMBB {
			t.Fatalf("Pick = %v", chs)
		}
	}
	if s.Name() != "embb-only" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestNewSingleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewSingle(nil)
}

func TestDChannelAcceleratesAcksAndSmallData(t *testing.T) {
	_, g := testGroup(t)
	d := NewDChannel(g, channel.A, DChannelConfig{})
	if got := d.Pick(ack()); got[0].Name() != channel.NameURLLC {
		t.Fatalf("ACK steered to %s, want urllc", got[0].Name())
	}
	// Empty queues: a full-size data packet saves 25-2.5-6 ≈ 16.5 ms
	// against a 6 ms cost, so it is accelerated too.
	if got := d.Pick(data(1500, 0)); got[0].Name() != channel.NameURLLC {
		t.Fatalf("fresh data steered to %s, want urllc", got[0].Name())
	}
}

func TestDChannelBacksOffWhenNarrowQueueGrows(t *testing.T) {
	_, g := testGroup(t)
	d := NewDChannel(g, channel.A, DChannelConfig{})
	u := g.Get(channel.NameURLLC)
	// Build ~60 ms of backlog on URLLC (2 Mbps → 15000 B).
	for i := 0; i < 10; i++ {
		u.Send(channel.A, data(1500, 0))
	}
	if got := d.Pick(data(1500, 0)); got[0].Name() != channel.NameEMBB {
		t.Fatalf("data with URLLC backlog steered to %s, want embb", got[0].Name())
	}
	// ACKs also divert once the narrow path is slower end to end.
	if got := d.Pick(ack()); got[0].Name() != channel.NameEMBB {
		t.Fatalf("ACK with URLLC backlog steered to %s, want embb", got[0].Name())
	}
}

func TestDChannelBetaControlsAggressiveness(t *testing.T) {
	_, g := testGroup(t)
	shy := NewDChannel(g, channel.A, DChannelConfig{Beta: 10})
	if got := shy.Pick(data(1500, 0)); got[0].Name() != channel.NameEMBB {
		t.Fatalf("beta=10 should keep data on embb, got %s", got[0].Name())
	}
}

func TestDChannelDefaultsAndPanics(t *testing.T) {
	loop := sim.NewLoop(1)
	g := channel.NewGroup(channel.EMBBFixed(loop))
	defer func() {
		if recover() == nil {
			t.Error("missing narrow channel should panic")
		}
	}()
	NewDChannel(g, channel.A, DChannelConfig{})
}

func TestPriorityForcesHighPriorityMessages(t *testing.T) {
	_, g := testGroup(t)
	p := NewPriority(g, channel.A, PriorityConfig{AdmitPrio: 0})
	// Layer 0 forced to URLLC even with a backlog there.
	u := g.Get(channel.NameURLLC)
	for i := 0; i < 20; i++ {
		u.Send(channel.A, data(1500, 0))
	}
	if got := p.Pick(data(1200, 0)); got[0].Name() != channel.NameURLLC {
		t.Fatalf("prio-0 steered to %s, want urllc", got[0].Name())
	}
	// Layers 1–2 go wide (Heuristic off).
	if got := p.Pick(data(1200, 1)); got[0].Name() != channel.NameEMBB {
		t.Fatalf("prio-1 steered to %s, want embb", got[0].Name())
	}
	if p.Name() != "priority" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestPriorityExcludesBulkFlows(t *testing.T) {
	_, g := testGroup(t)
	p := NewPriority(g, channel.A, PriorityConfig{AdmitPrio: -1, Heuristic: true})
	bulk := data(200, 0)
	bulk.FlowPriority = packet.PriorityBulk
	if got := p.Pick(bulk); got[0].Name() != channel.NameEMBB {
		t.Fatalf("bulk flow steered to %s, want embb", got[0].Name())
	}
	// Even bulk ACKs stay off the narrow channel.
	bulkAck := ack()
	bulkAck.FlowPriority = packet.PriorityBulk
	if got := p.Pick(bulkAck); got[0].Name() != channel.NameEMBB {
		t.Fatalf("bulk ACK steered to %s, want embb", got[0].Name())
	}
	if p.Name() != "dchannel+priority" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestPriorityHeuristicFallback(t *testing.T) {
	_, g := testGroup(t)
	p := NewPriority(g, channel.A, PriorityConfig{AdmitPrio: -1, Heuristic: true})
	// Unforced data follows the DChannel rule: accelerated when fresh.
	if got := p.Pick(data(1500, 3)); got[0].Name() != channel.NameURLLC {
		t.Fatalf("fresh unforced data steered to %s, want urllc", got[0].Name())
	}
}

func TestPriorityAcksUseHeuristicEvenWithoutHeuristicFlag(t *testing.T) {
	_, g := testGroup(t)
	p := NewPriority(g, channel.A, PriorityConfig{AdmitPrio: 0})
	if got := p.Pick(ack()); got[0].Name() != channel.NameURLLC {
		t.Fatalf("ACK steered to %s, want urllc", got[0].Name())
	}
}

func TestRedundantReplicates(t *testing.T) {
	_, g := testGroup(t)
	r := NewRedundant(g)
	p := data(500, 0)
	chs := r.Pick(p)
	if len(chs) != 2 {
		t.Fatalf("Pick returned %d channels, want 2", len(chs))
	}
	if !p.Copy {
		t.Fatal("replicated packet should be marked Copy")
	}
	seen := map[string]bool{}
	for _, c := range chs {
		seen[c.Name()] = true
	}
	if !seen[channel.NameEMBB] || !seen[channel.NameURLLC] {
		t.Fatalf("channels %v", seen)
	}
}

func TestRedundantNeedsTwo(t *testing.T) {
	loop := sim.NewLoop(1)
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewRedundant(channel.NewGroup(channel.URLLC(loop)))
}

func TestCostAwareSpendsBudgetThenStops(t *testing.T) {
	loop := sim.NewLoop(1)
	fiber, mw := channel.CISP(loop)
	for _, c := range []*channel.Channel{fiber, mw} {
		c.SetSink(channel.A, func(*packet.Packet) {})
		c.SetSink(channel.B, func(*packet.Packet) {})
	}
	g := channel.NewGroup(fiber, mw)
	ca := NewCostAware(g, channel.A, loop.Now, CostAwareConfig{
		Cheap: "fiber", Priced: "cisp",
		BudgetBytesPerSec: 3000, BurstBytes: 3000,
	})
	// First two 1500-byte packets fit the burst; the third does not.
	for i := 0; i < 2; i++ {
		if got := ca.Pick(data(1500, 0)); got[0].Name() != "cisp" {
			t.Fatalf("packet %d steered to %s, want cisp", i, got[0].Name())
		}
	}
	if got := ca.Pick(data(1500, 0)); got[0].Name() != "fiber" {
		t.Fatalf("over-budget packet steered to %s, want fiber", got[0].Name())
	}
	if ca.SpentBytes() != 3000 {
		t.Fatalf("SpentBytes = %d, want 3000", ca.SpentBytes())
	}
	if want := 3000 * mw.Props().CostPerByte; ca.Cost() != want {
		t.Fatalf("Cost = %v, want %v", ca.Cost(), want)
	}
}

func TestCostAwareRefillsOverTime(t *testing.T) {
	loop := sim.NewLoop(1)
	fiber, mw := channel.CISP(loop)
	for _, c := range []*channel.Channel{fiber, mw} {
		c.SetSink(channel.A, func(*packet.Packet) {})
		c.SetSink(channel.B, func(*packet.Packet) {})
	}
	g := channel.NewGroup(fiber, mw)
	ca := NewCostAware(g, channel.A, loop.Now, CostAwareConfig{
		Cheap: "fiber", Priced: "cisp",
		BudgetBytesPerSec: 1500, BurstBytes: 1500,
	})
	if got := ca.Pick(data(1500, 0)); got[0].Name() != "cisp" {
		t.Fatal("first packet should be priced")
	}
	if got := ca.Pick(data(1500, 0)); got[0].Name() != "fiber" {
		t.Fatal("second immediate packet should be cheap")
	}
	loop.After(time.Second, func() {
		if got := ca.Pick(data(1500, 0)); got[0].Name() != "cisp" {
			t.Error("budget should have refilled after 1s")
		}
	})
	loop.Run()
}

func TestCostAwareMinBenefitGate(t *testing.T) {
	loop := sim.NewLoop(1)
	fiber, mw := channel.CISP(loop)
	for _, c := range []*channel.Channel{fiber, mw} {
		c.SetSink(channel.A, func(*packet.Packet) {})
		c.SetSink(channel.B, func(*packet.Packet) {})
	}
	g := channel.NewGroup(fiber, mw)
	ca := NewCostAware(g, channel.A, loop.Now, CostAwareConfig{
		Cheap: "fiber", Priced: "cisp",
		BudgetBytesPerSec: 1e9,
		MinBenefit:        time.Second, // unreachable
	})
	if got := ca.Pick(data(1500, 0)); got[0].Name() != "fiber" {
		t.Fatal("MinBenefit gate should keep traffic on fiber")
	}
}

func TestCostAwarePanics(t *testing.T) {
	loop := sim.NewLoop(1)
	fiber, mw := channel.CISP(loop)
	g := channel.NewGroup(fiber, mw)
	for name, fn := range map[string]func(){
		"missing channel": func() {
			NewCostAware(g, channel.A, loop.Now, CostAwareConfig{Cheap: "x", Priced: "cisp", BudgetBytesPerSec: 1})
		},
		"no budget": func() {
			NewCostAware(g, channel.A, loop.Now, CostAwareConfig{Cheap: "fiber", Priced: "cisp"})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCounterTallies(t *testing.T) {
	_, g := testGroup(t)
	c := NewCounter(NewSingle(g.Get(channel.NameEMBB)))
	for i := 0; i < 3; i++ {
		c.Pick(data(100, 0))
	}
	if got := c.Counts()[channel.NameEMBB]; got != 3 {
		t.Fatalf("counts = %v", c.Counts())
	}
}

func TestTailBoostDivertsTailWhenWideIsSlow(t *testing.T) {
	_, g := testGroup(t)
	base := NewSingle(g.Get(channel.NameEMBB))
	tb := NewTailBoost(base, g, channel.A, TailBoostConfig{})
	if tb.Name() != "embb-only+tail" {
		t.Fatalf("Name = %q", tb.Name())
	}
	// Build a deep eMBB backlog so the narrow channel is faster.
	e := g.Get(channel.NameEMBB)
	for i := 0; i < 200; i++ {
		e.Send(channel.A, data(1500, 0))
	}
	tail := data(1200, 0)
	tail.MsgRemaining = 1000 // within the 8 kB tail window
	if got := tb.Pick(tail); got[0].Name() != channel.NameURLLC {
		t.Fatalf("tail packet steered to %s, want urllc", got[0].Name())
	}
	body := data(1200, 0)
	body.MsgRemaining = 500_000 // far from the end: stays on base
	if got := tb.Pick(body); got[0].Name() != channel.NameEMBB {
		t.Fatalf("body packet steered to %s, want embb", got[0].Name())
	}
}

func TestTailBoostRespectsFasterBase(t *testing.T) {
	// With empty queues, eMBB's one-way (25 ms) still loses to URLLC
	// for a small tail packet, so the tail is diverted; but a *large*
	// tail packet costs 6 ms of URLLC serialization per 1500 B — with
	// a shallow URLLC backlog the base wins and TailBoost must not
	// divert.
	_, g := testGroup(t)
	base := NewSingle(g.Get(channel.NameEMBB))
	tb := NewTailBoost(base, g, channel.A, TailBoostConfig{})
	u := g.Get(channel.NameURLLC)
	for i := 0; i < 10; i++ {
		u.Send(channel.A, data(1500, 0)) // ~60 ms of URLLC backlog
	}
	tail := data(1500, 0)
	tail.MsgRemaining = 0
	if got := tb.Pick(tail); got[0].Name() != channel.NameEMBB {
		t.Fatalf("tail packet steered to %s despite URLLC backlog", got[0].Name())
	}
}

func TestTailBoostLeavesAcksAndReplicasAlone(t *testing.T) {
	_, g := testGroup(t)
	red := NewRedundant(g)
	tb := NewTailBoost(red, g, channel.A, TailBoostConfig{})
	p := data(500, 0)
	p.MsgRemaining = 0
	if got := tb.Pick(p); len(got) != 2 {
		t.Fatalf("replicated pick should pass through, got %d channels", len(got))
	}
	a := ack()
	base := NewSingle(g.Get(channel.NameEMBB))
	tb2 := NewTailBoost(base, g, channel.A, TailBoostConfig{})
	if got := tb2.Pick(a); got[0].Name() != channel.NameEMBB {
		t.Fatal("non-data packets must follow the base policy")
	}
}

func TestTailBoostValidation(t *testing.T) {
	_, g := testGroup(t)
	base := NewSingle(g.Get(channel.NameEMBB))
	for name, fn := range map[string]func(){
		"nil base":       func() { NewTailBoost(nil, g, channel.A, TailBoostConfig{}) },
		"missing narrow": func() { NewTailBoost(base, g, channel.A, TailBoostConfig{Narrow: "nope"}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestObjectMapAssignsWholeMessages(t *testing.T) {
	_, g := testGroup(t)
	om := NewObjectMap(g, channel.A, ObjectMapConfig{SmallBytes: 5000})
	if om.Name() != "objectmap" {
		t.Fatalf("Name = %q", om.Name())
	}
	// A 3 kB message: first packet decides narrow, rest stick to it.
	first := data(1500, 0)
	first.MsgID = 7
	first.MsgRemaining = 3000 - (1500 - packet.HeaderBytes)
	if got := om.Pick(first); got[0].Name() != channel.NameURLLC {
		t.Fatalf("small object steered to %s", got[0].Name())
	}
	tail := data(200, 0)
	tail.MsgID = 7
	tail.MsgRemaining = 0
	if got := om.Pick(tail); got[0].Name() != channel.NameURLLC {
		t.Fatal("later packets must stick to the object's channel")
	}
	// A large message goes wide, including its small tail packets.
	big := data(1500, 0)
	big.MsgID = 8
	big.MsgRemaining = 500_000
	if got := om.Pick(big); got[0].Name() != channel.NameEMBB {
		t.Fatalf("large object steered to %s", got[0].Name())
	}
	bigTail := data(100, 0)
	bigTail.MsgID = 8
	bigTail.MsgRemaining = 0
	if got := om.Pick(bigTail); got[0].Name() != channel.NameEMBB {
		t.Fatal("IANS never splits an object across channels")
	}
}

func TestObjectMapControlGoesWide(t *testing.T) {
	_, g := testGroup(t)
	om := NewObjectMap(g, channel.A, ObjectMapConfig{})
	if got := om.Pick(ack()); got[0].Name() != channel.NameEMBB {
		t.Fatalf("ACK steered to %s, want embb", got[0].Name())
	}
}

func TestObjectMapValidation(t *testing.T) {
	_, g := testGroup(t)
	defer func() {
		if recover() == nil {
			t.Error("missing channel should panic")
		}
	}()
	NewObjectMap(g, channel.A, ObjectMapConfig{Narrow: "nope"})
}
