package netem

import (
	"testing"
	"time"

	"hvc/internal/packet"
	"hvc/internal/sim"
	"hvc/internal/trace"
)

// TestPerLinkRNGIsolation pins the private-stream property: each link
// draws loss from its own seeded RNG, so adding a lossy link to a
// simulation must not change another link's delivery trace. (Under a
// shared loop.Rand this fails: the second link's draws perturb the
// first link's loss pattern.)
func TestPerLinkRNGIsolation(t *testing.T) {
	run := func(withB bool) []time.Duration {
		loop := sim.NewLoop(42)
		var gotA []*packet.Packet
		var atA []time.Duration
		a := New(loop, Config{
			Name:     "a",
			Trace:    trace.Constant("c", 10*time.Millisecond, 8e6),
			LossProb: 0.2,
		}, collectSink(&gotA, &atA, loop))
		var b *Link
		if withB {
			b = New(loop, Config{
				Name:     "b",
				Trace:    trace.Constant("c", 10*time.Millisecond, 8e6),
				LossProb: 0.5,
			}, func(*packet.Packet) {})
		}
		for i := 0; i < 500; i++ {
			i := i
			loop.At(time.Duration(i)*2*time.Millisecond, func() {
				a.Send(mkpkt(uint64(i), 1000))
				if withB {
					b.Send(mkpkt(uint64(i), 1000))
				}
			})
		}
		loop.Run()
		return atA
	}
	alone, shared := run(false), run(true)
	if len(alone) != len(shared) {
		t.Fatalf("adding a lossy link changed link a's deliveries: %d vs %d",
			len(alone), len(shared))
	}
	for i := range alone {
		if alone[i] != shared[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, alone[i], shared[i])
		}
	}
}

// TestSaltSeparatesStreams pins that two links sharing a name (the two
// directions of a channel) still get distinct loss streams via Salt.
func TestSaltSeparatesStreams(t *testing.T) {
	loop := sim.NewLoop(7)
	mk := func(salt string) (*Link, *[]*packet.Packet) {
		var got []*packet.Packet
		var at []time.Duration
		l := New(loop, Config{
			Name:     "dup",
			Salt:     salt,
			Trace:    trace.Constant("c", time.Millisecond, 1e9),
			LossProb: 0.5,
		}, collectSink(&got, &at, loop))
		return l, &got
	}
	down, gotDown := mk("down")
	up, gotUp := mk("up")
	const n = 500
	for i := 0; i < n; i++ {
		down.Send(mkpkt(uint64(i), 100))
		up.Send(mkpkt(uint64(i), 100))
	}
	loop.Run()
	same := true
	if len(*gotDown) != len(*gotUp) {
		same = false
	} else {
		for i := range *gotDown {
			if (*gotDown)[i].ID != (*gotUp)[i].ID {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("same-name links with different salts produced identical loss patterns")
	}
}

// TestBlackholeLossProbOne pins that LossProb == 1 is a legal config
// meaning "drop everything": a blackhole link for fault modeling.
func TestBlackholeLossProbOne(t *testing.T) {
	loop := sim.NewLoop(1)
	var got []*packet.Packet
	var at []time.Duration
	l := New(loop, Config{
		Name:     "hole",
		Trace:    trace.Constant("c", time.Millisecond, 1e9),
		LossProb: 1,
	}, collectSink(&got, &at, loop))
	const n = 200
	for i := 0; i < n; i++ {
		if !l.Send(mkpkt(uint64(i), 100)) {
			t.Fatal("blackhole must accept at entry and drop in flight")
		}
	}
	loop.Run()
	st := l.Stats()
	if len(got) != 0 || st.Delivered != 0 || st.DroppedRandom != n {
		t.Fatalf("blackhole delivered %d, stats %+v; want all %d dropped", len(got), st, n)
	}
}

func TestSetDownBlocksThenDrains(t *testing.T) {
	loop := sim.NewLoop(1)
	var got []*packet.Packet
	var at []time.Duration
	// 8 Mbps, 10 ms RTT: 1 ms serialization + 5 ms propagation.
	l := New(loop, Config{Name: "l", Trace: trace.Constant("c", 10*time.Millisecond, 8e6)},
		collectSink(&got, &at, loop))
	if l.Down() {
		t.Fatal("new link reports Down")
	}
	l.SetDown(true)
	if !l.Down() {
		t.Fatal("SetDown(true) not visible via Down")
	}
	if l.QueueDelay() < time.Hour {
		t.Fatalf("QueueDelay on a down link = %v, want >= 1h", l.QueueDelay())
	}
	if !l.Send(mkpkt(1, 1000)) {
		t.Fatal("down link must queue, not reject")
	}
	loop.RunUntil(50 * time.Millisecond)
	if len(got) != 0 {
		t.Fatal("packet crossed a down link")
	}
	l.SetDown(false)
	loop.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d after recovery, want 1", len(got))
	}
	// Serialization restarts at 50 ms: 1 ms tx + 5 ms prop.
	if want := 56 * time.Millisecond; at[0] != want {
		t.Fatalf("arrival %v, want %v", at[0], want)
	}
}

// TestSetDownLetsInflightArrive pins the documented semantics: a fault
// outage stops serialization, but a packet already on the wire still
// arrives (the radio died behind it).
func TestSetDownLetsInflightArrive(t *testing.T) {
	loop := sim.NewLoop(1)
	var got []*packet.Packet
	var at []time.Duration
	l := New(loop, Config{Name: "l", Trace: trace.Constant("c", 10*time.Millisecond, 8e6)},
		collectSink(&got, &at, loop))
	l.Send(mkpkt(1, 1000)) // serialized at 1 ms, arrives at 6 ms
	loop.RunUntil(2 * time.Millisecond)
	l.SetDown(true)
	loop.RunUntil(100 * time.Millisecond)
	if len(got) != 1 || at[0] != 6*time.Millisecond {
		t.Fatalf("in-flight packet: got %d arrivals %v, want one at 6ms", len(got), at)
	}
}

func TestSetRateScaleStretchesSerialization(t *testing.T) {
	loop := sim.NewLoop(1)
	var got []*packet.Packet
	var at []time.Duration
	l := New(loop, Config{Name: "l", Trace: trace.Constant("c", 10*time.Millisecond, 8e6)},
		collectSink(&got, &at, loop))
	l.SetRateScale(0.5) // 4 Mbps: 2 ms serialization + 5 ms prop
	l.Send(mkpkt(1, 1000))
	loop.Run()
	if want := 7 * time.Millisecond; len(got) != 1 || at[0] != want {
		t.Fatalf("arrival %v, want %v at half rate", at, want)
	}
	l.SetRateScale(1)
	l.Send(mkpkt(2, 1000))
	loop.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %d, want 2", len(got))
	}
	mustPanic(t, "zero scale", func() { l.SetRateScale(0) })
	mustPanic(t, "negative scale", func() { l.SetRateScale(-1) })
}

func TestSetExtraDelayShiftsArrival(t *testing.T) {
	loop := sim.NewLoop(1)
	var got []*packet.Packet
	var at []time.Duration
	l := New(loop, Config{Name: "l", Trace: trace.Constant("c", 10*time.Millisecond, 8e6)},
		collectSink(&got, &at, loop))
	l.SetExtraDelay(30 * time.Millisecond)
	l.Send(mkpkt(1, 1000))
	loop.Run()
	if want := 36 * time.Millisecond; len(got) != 1 || at[0] != want {
		t.Fatalf("arrival %v, want %v with 30ms spike", at, want)
	}
	mustPanic(t, "negative delay", func() { l.SetExtraDelay(-time.Millisecond) })
}

func TestSetLossFnInstallsAndClears(t *testing.T) {
	loop := sim.NewLoop(1)
	var got []*packet.Packet
	var at []time.Duration
	l := New(loop, Config{Name: "l", Trace: trace.Constant("c", time.Millisecond, 1e9)},
		collectSink(&got, &at, loop))
	odd := false
	l.SetLossFn(func() bool { odd = !odd; return odd }) // drop every other packet
	const n = 100
	for i := 0; i < n; i++ {
		l.Send(mkpkt(uint64(i), 100))
	}
	loop.Run()
	st := l.Stats()
	if st.DroppedRandom != n/2 || len(got) != n/2 {
		t.Fatalf("lossFn: dropped %d delivered %d, want %d/%d", st.DroppedRandom, len(got), n/2, n/2)
	}
	l.SetLossFn(nil)
	for i := n; i < n+50; i++ {
		l.Send(mkpkt(uint64(i), 100))
	}
	loop.Run()
	if st := l.Stats(); st.DroppedRandom != n/2 {
		t.Fatalf("drops after clearing lossFn: %d, want still %d", st.DroppedRandom, n/2)
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: want panic", name)
		}
	}()
	fn()
}
