package netem

import (
	"testing"
	"time"

	"hvc/internal/packet"
	"hvc/internal/sim"
	"hvc/internal/trace"
)

// mkpkt returns a data packet with the given id and total size.
func mkpkt(id uint64, size int) *packet.Packet {
	return &packet.Packet{ID: id, Size: size}
}

func collectSink(got *[]*packet.Packet, times *[]time.Duration, loop *sim.Loop) Sink {
	return func(p *packet.Packet) {
		*got = append(*got, p)
		*times = append(*times, loop.Now())
	}
}

func TestSingleDeliveryTiming(t *testing.T) {
	loop := sim.NewLoop(1)
	var got []*packet.Packet
	var at []time.Duration
	// 8 Mbps, 10 ms RTT → 1000-byte packet: 1 ms serialize + 5 ms prop.
	l := New(loop, Config{Name: "l", Trace: trace.Constant("c", 10*time.Millisecond, 8e6)},
		collectSink(&got, &at, loop))
	if !l.Send(mkpkt(1, 1000)) {
		t.Fatal("Send rejected")
	}
	loop.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(got))
	}
	if want := 6 * time.Millisecond; at[0] != want {
		t.Fatalf("delivered at %v, want %v", at[0], want)
	}
	if got[0].Channel != "l" {
		t.Fatalf("packet channel stamp = %q, want l", got[0].Channel)
	}
}

func TestSerializationQueuesBackToBack(t *testing.T) {
	loop := sim.NewLoop(1)
	var got []*packet.Packet
	var at []time.Duration
	l := New(loop, Config{Name: "l", Trace: trace.Constant("c", 10*time.Millisecond, 8e6)},
		collectSink(&got, &at, loop))
	// Two 1000-byte packets: second finishes serializing at 2 ms,
	// arrives at 7 ms.
	l.Send(mkpkt(1, 1000))
	l.Send(mkpkt(2, 1000))
	loop.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %d, want 2", len(got))
	}
	if at[0] != 6*time.Millisecond || at[1] != 7*time.Millisecond {
		t.Fatalf("arrivals %v, want [6ms 7ms]", at)
	}
	if got[0].ID != 1 || got[1].ID != 2 {
		t.Fatal("FIFO order violated")
	}
}

func TestDropTailOverflow(t *testing.T) {
	loop := sim.NewLoop(1)
	var got []*packet.Packet
	var at []time.Duration
	l := New(loop, Config{
		Name:       "l",
		Trace:      trace.Constant("c", 10*time.Millisecond, 8e6),
		QueueBytes: 2500,
	}, collectSink(&got, &at, loop))
	ok1 := l.Send(mkpkt(1, 1000))
	ok2 := l.Send(mkpkt(2, 1000))
	ok3 := l.Send(mkpkt(3, 1000)) // exceeds 2500B cap
	if !ok1 || !ok2 || ok3 {
		t.Fatalf("Send results %v %v %v, want true true false", ok1, ok2, ok3)
	}
	loop.Run()
	st := l.Stats()
	if st.DroppedQueue != 1 || st.Delivered != 2 || st.Sent != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueueDrainReopensCapacity(t *testing.T) {
	loop := sim.NewLoop(1)
	var got []*packet.Packet
	var at []time.Duration
	l := New(loop, Config{
		Name:       "l",
		Trace:      trace.Constant("c", 10*time.Millisecond, 8e6),
		QueueBytes: 1500,
	}, collectSink(&got, &at, loop))
	l.Send(mkpkt(1, 1000))
	loop.RunUntil(90 * time.Millisecond) // queue drained
	if !l.Send(mkpkt(2, 1000)) {
		t.Fatal("Send after drain should succeed")
	}
	loop.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %d, want 2", len(got))
	}
}

func TestRandomLoss(t *testing.T) {
	loop := sim.NewLoop(1)
	var got []*packet.Packet
	var at []time.Duration
	l := New(loop, Config{
		Name:     "l",
		Trace:    trace.Constant("c", time.Millisecond, 1e9),
		LossProb: 0.5,
	}, collectSink(&got, &at, loop))
	const n = 2000
	accepted := 0
	for i := 0; i < n; i++ {
		if l.Send(mkpkt(uint64(i), 100)) {
			accepted++
		}
	}
	loop.Run()
	st := l.Stats()
	if accepted != n {
		t.Fatalf("random loss must not reject at entry: accepted %d/%d", accepted, n)
	}
	if st.DroppedRandom == 0 {
		t.Fatal("expected random losses")
	}
	frac := float64(st.DroppedRandom) / n
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("loss fraction %.3f far from 0.5", frac)
	}
	if st.Delivered+st.DroppedRandom != n {
		t.Fatalf("delivered %d + dropped %d != %d", st.Delivered, st.DroppedRandom, n)
	}
}

func TestOutageStallsThenDrains(t *testing.T) {
	loop := sim.NewLoop(1)
	// Outage for the first 100 ms, then 8 Mbps.
	tr := &trace.Trace{Name: "o", Samples: []trace.Sample{
		{At: 0, RTT: 10 * time.Millisecond, Rate: 0},
		{At: 100 * time.Millisecond, RTT: 10 * time.Millisecond, Rate: 8e6},
	}}
	var got []*packet.Packet
	var at []time.Duration
	l := New(loop, Config{Name: "l", Trace: tr}, collectSink(&got, &at, loop))
	l.Send(mkpkt(1, 1000))
	loop.RunUntil(150 * time.Millisecond)
	if len(got) != 1 {
		t.Fatalf("delivered %d, want 1 after outage ends", len(got))
	}
	// Serialization can only start at 100 ms: 1 ms tx + 5 ms prop.
	if want := 106 * time.Millisecond; at[0] != want {
		t.Fatalf("arrival %v, want %v", at[0], want)
	}
}

func TestFIFOPreservedAcrossDelayDrop(t *testing.T) {
	loop := sim.NewLoop(1)
	// RTT collapses from 200 ms to 2 ms at t=1ms: the second packet
	// must not overtake the first.
	tr := &trace.Trace{Name: "d", Samples: []trace.Sample{
		{At: 0, RTT: 200 * time.Millisecond, Rate: 80e6},
		{At: 1 * time.Millisecond, RTT: 2 * time.Millisecond, Rate: 80e6},
	}}
	var got []*packet.Packet
	var at []time.Duration
	l := New(loop, Config{Name: "l", Trace: tr}, collectSink(&got, &at, loop))
	l.Send(mkpkt(1, 1000))
	loop.RunUntil(1500 * time.Microsecond)
	l.Send(mkpkt(2, 1000))
	loop.Run()
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("order violated: %v", got)
	}
	if at[1] < at[0] {
		t.Fatalf("arrivals reordered: %v", at)
	}
}

func TestQueuedBytesTracksOccupancy(t *testing.T) {
	loop := sim.NewLoop(1)
	var got []*packet.Packet
	var at []time.Duration
	l := New(loop, Config{Name: "l", Trace: trace.Constant("c", 10*time.Millisecond, 8e6)},
		collectSink(&got, &at, loop))
	l.Send(mkpkt(1, 1000))
	l.Send(mkpkt(2, 500))
	if l.QueuedBytes() != 1500 {
		t.Fatalf("QueuedBytes = %d, want 1500", l.QueuedBytes())
	}
	loop.Run()
	if l.QueuedBytes() != 0 {
		t.Fatalf("QueuedBytes after drain = %d, want 0", l.QueuedBytes())
	}
}

func TestQueueDelayEstimate(t *testing.T) {
	loop := sim.NewLoop(1)
	var got []*packet.Packet
	var at []time.Duration
	l := New(loop, Config{Name: "l", Trace: trace.Constant("c", 10*time.Millisecond, 8e6)},
		collectSink(&got, &at, loop))
	if l.QueueDelay() != 0 {
		t.Fatalf("empty QueueDelay = %v, want 0", l.QueueDelay())
	}
	l.Send(mkpkt(1, 1000)) // 1 ms of serialization backlog
	if got, want := l.QueueDelay(), time.Millisecond; got != want {
		t.Fatalf("QueueDelay = %v, want %v", got, want)
	}
}

func TestQueueDelayDuringOutage(t *testing.T) {
	loop := sim.NewLoop(1)
	tr := &trace.Trace{Name: "o", Samples: []trace.Sample{
		{At: 0, RTT: 10 * time.Millisecond, Rate: 0},
		{At: 100 * time.Millisecond, RTT: 10 * time.Millisecond, Rate: 8e6},
	}}
	var got []*packet.Packet
	var at []time.Duration
	l := New(loop, Config{Name: "l", Trace: tr}, collectSink(&got, &at, loop))
	l.Send(mkpkt(1, 1000))
	// 100 ms until capacity returns + 1 ms to serialize the backlog.
	if got, want := l.QueueDelay(), 101*time.Millisecond; got != want {
		t.Fatalf("QueueDelay = %v, want %v", got, want)
	}
}

func TestThroughputMatchesRate(t *testing.T) {
	loop := sim.NewLoop(1)
	var got []*packet.Packet
	var at []time.Duration
	l := New(loop, Config{
		Name:       "l",
		Trace:      trace.Constant("c", 10*time.Millisecond, 10e6),
		QueueBytes: 64 << 20,
	}, collectSink(&got, &at, loop))
	// Offer far more than 1 second of load, run for 1 second.
	for i := 0; i < 2000; i++ {
		l.Send(mkpkt(uint64(i), 1500))
	}
	loop.RunUntil(time.Second)
	gotBits := float64(len(got)) * 1500 * 8
	if gotBits < 9.5e6 || gotBits > 10.5e6 {
		t.Fatalf("delivered %.2f Mbit in 1s on a 10 Mbps link", gotBits/1e6)
	}
}

func TestNewPanics(t *testing.T) {
	loop := sim.NewLoop(1)
	sink := Sink(func(*packet.Packet) {})
	for name, fn := range map[string]func(){
		"nil trace": func() { New(loop, Config{Name: "x"}, sink) },
		"nil sink":  func() { New(loop, Config{Name: "x", Trace: trace.URLLC()}, nil) },
		"bad loss":  func() { New(loop, Config{Name: "x", Trace: trace.URLLC(), LossProb: 1.5}, sink) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []time.Duration {
		loop := sim.NewLoop(42)
		var got []*packet.Packet
		var at []time.Duration
		l := New(loop, Config{
			Name:     "l",
			Trace:    trace.LowbandDriving(3, 10*time.Second),
			LossProb: 0.01,
		}, collectSink(&got, &at, loop))
		for i := 0; i < 500; i++ {
			i := i
			loop.At(time.Duration(i)*5*time.Millisecond, func() {
				l.Send(mkpkt(uint64(i), 1200))
			})
		}
		loop.Run()
		return at
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d packets", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkLinkSaturated(b *testing.B) {
	loop := sim.NewLoop(1)
	n := 0
	l := New(loop, Config{
		Name:       "l",
		Trace:      trace.Constant("c", 10*time.Millisecond, 1e9),
		QueueBytes: 64 << 20,
	}, func(*packet.Packet) { n++ })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Send(mkpkt(uint64(i), 1500))
		loop.Step()
	}
	loop.Run()
}
