// Conservation property tests live in an external test package so
// they can drive the links through channel and fault — both of which
// import netem — without an import cycle. The in-line conservation
// invariant (checkConservation, armed by this binary's TestMain) fires
// on every delivery; these tests additionally pin the end-of-run
// ledger at the public surface: every packet offered to a link is
// accounted as delivered or dropped once the simulation drains.
package netem_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hvc/internal/channel"
	"hvc/internal/fault"
	"hvc/internal/packet"
	"hvc/internal/sim"
)

// conservationUnder floods both channels of a cellular-style group in
// both directions under spec, drains, and checks the ledger per link.
func conservationUnder(t *testing.T, spec fault.Spec, seed int64) {
	t.Helper()
	loop := sim.NewLoop(seed)
	g := channel.NewGroup(channel.EMBBFixed(loop), channel.URLLC(loop))
	if err := fault.Inject(loop, g, spec, nil); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for _, ch := range g.All() {
		ch.SetSink(channel.A, func(p *packet.Packet) { delivered++; g.Pool().Put(p) })
		ch.SetSink(channel.B, func(p *packet.Packet) { delivered++; g.Pool().Put(p) })
	}
	// Offer a steady bidirectional load for the schedule's whole span:
	// enough to overflow queues during slumps (drop-tail), ride through
	// outages (queued, delivered late), and meet the loss bursts.
	sent := 0
	for at := time.Millisecond; at < 5*time.Second; at += 2 * time.Millisecond {
		at := at
		loop.At(at, func() {
			for _, ch := range g.All() {
				for _, side := range []channel.Side{channel.A, channel.B} {
					p := g.Pool().Get()
					p.Size = 1200
					if ch.Send(side, p) {
						sent++
					} else {
						g.Pool().Put(p) // refused at entry (down channel)
					}
				}
			}
		})
	}
	// Drain: run far past the schedule so outage queues flush.
	loop.RunUntil(30 * time.Second)
	loop.Run()

	if sent == 0 || delivered == 0 {
		t.Fatalf("degenerate run: sent=%d delivered=%d", sent, delivered)
	}
	for _, ch := range g.All() {
		for _, side := range []channel.Side{channel.A, channel.B} {
			st := ch.Stats(side)
			accounted := st.Delivered + st.DroppedQueue + st.DroppedRandom
			if st.Sent != accounted {
				t.Errorf("%s %v: Sent=%d but Delivered=%d + DroppedQueue=%d + DroppedRandom=%d = %d",
					ch.Name(), side, st.Sent, st.Delivered, st.DroppedQueue, st.DroppedRandom, accounted)
			}
		}
	}
}

// TestConservationUnderDefaultFault drives the canonical two-blackout
// schedule.
func TestConservationUnderDefaultFault(t *testing.T) {
	conservationUnder(t, fault.Default(channel.NameEMBB, 5*time.Second), 1)
}

// TestConservationUnderRandomizedFault draws seeded-random compound
// schedules across both channels and all four fault kinds.
func TestConservationUnderRandomizedFault(t *testing.T) {
	for _, metaseed := range []int64{5, 23} {
		rng := rand.New(rand.NewSource(metaseed))
		var spec fault.Spec
		for _, ch := range []string{channel.NameEMBB, channel.NameURLLC} {
			for _, kind := range []fault.Kind{fault.Outage, fault.Burst, fault.Slump, fault.Spike} {
				if rng.Intn(2) == 0 {
					continue
				}
				ev := fault.Event{
					Kind:    kind,
					Channel: ch,
					At:      time.Duration(rng.Int63n(int64(2 * time.Second))).Truncate(time.Millisecond),
					Dur:     (200*time.Millisecond + time.Duration(rng.Int63n(int64(time.Second)))).Truncate(time.Millisecond),
					Count:   1,
				}
				switch kind {
				case fault.Burst:
					ev.PGB, ev.PBG, ev.LossBad = 0.05, 0.3, 0.9
				case fault.Slump:
					ev.Factor = 0.05
				case fault.Spike:
					ev.Delay = 80 * time.Millisecond
				}
				spec.Events = append(spec.Events, ev)
			}
		}
		t.Run(fmt.Sprintf("metaseed=%d", metaseed), func(t *testing.T) {
			conservationUnder(t, spec, metaseed)
		})
	}
}
