package netem

// Additional link-model tests: trace-driven rate changes, conservation
// of packets, and queue-delay properties.

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"hvc/internal/packet"
	"hvc/internal/sim"
	"hvc/internal/trace"
)

func TestRateChangeAffectsLaterPackets(t *testing.T) {
	loop := sim.NewLoop(1)
	// 8 Mbps for 100 ms, then 0.8 Mbps: identical packets sent in each
	// regime serialize 10x slower in the second.
	tr := &trace.Trace{Name: "step", Samples: []trace.Sample{
		{At: 0, RTT: 10 * time.Millisecond, Rate: 8e6},
		{At: 100 * time.Millisecond, RTT: 10 * time.Millisecond, Rate: 0.8e6},
		{At: time.Hour, RTT: 10 * time.Millisecond, Rate: 0.8e6},
	}}
	var at []time.Duration
	l := New(loop, Config{Name: "l", Trace: tr}, func(*packet.Packet) { at = append(at, loop.Now()) })

	loop.At(0, func() { l.Send(mkpkt(1, 1000)) })                    // 1 ms tx
	loop.At(200*time.Millisecond, func() { l.Send(mkpkt(2, 1000)) }) // 10 ms tx
	loop.Run()

	if len(at) != 2 {
		t.Fatalf("delivered %d", len(at))
	}
	if at[0] != 6*time.Millisecond {
		t.Fatalf("fast-regime arrival %v, want 6ms", at[0])
	}
	if want := 215 * time.Millisecond; at[1] != want {
		t.Fatalf("slow-regime arrival %v, want %v", at[1], want)
	}
}

func TestStatsBytesDelivered(t *testing.T) {
	loop := sim.NewLoop(1)
	l := New(loop, Config{Name: "l", Trace: trace.Constant("c", time.Millisecond, 1e9)},
		func(*packet.Packet) {})
	for i := 0; i < 10; i++ {
		l.Send(mkpkt(uint64(i), 700))
	}
	loop.Run()
	if got := l.Stats().BytesDelivered; got != 7000 {
		t.Fatalf("BytesDelivered = %d, want 7000", got)
	}
}

// Property: every packet offered to a link is exactly one of
// delivered, dropped by the queue at entry, or lost in flight; and
// every accepted packet is either delivered or lost in flight.
func TestPacketConservationProperty(t *testing.T) {
	f := func(seed int64, sizes []uint16, lossPct uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 300 {
			sizes = sizes[:300]
		}
		loop := sim.NewLoop(seed)
		delivered := 0
		l := New(loop, Config{
			Name:       "l",
			Trace:      trace.Constant("c", 5*time.Millisecond, 3e6),
			QueueBytes: 20_000,
			LossProb:   float64(lossPct%90) / 100,
		}, func(*packet.Packet) { delivered++ })
		accepted := 0
		for i, sz := range sizes {
			size := int(sz%1400) + 60
			i := i
			loop.At(time.Duration(i)*3*time.Millisecond, func() {
				if l.Send(mkpkt(uint64(i), size)) {
					accepted++
				}
			})
		}
		loop.Run()
		st := l.Stats()
		if st.Sent != len(sizes) {
			return false
		}
		if st.Delivered != delivered {
			return false
		}
		if accepted != st.Delivered+st.DroppedRandom {
			return false // accepted packets end as delivered or in-flight loss
		}
		return st.Delivered+st.DroppedQueue+st.DroppedRandom == st.Sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// Property: QueueDelay is nonnegative and nondecreasing in backlog.
func TestQueueDelayMonotoneProperty(t *testing.T) {
	f := func(n uint8) bool {
		loop := sim.NewLoop(1)
		l := New(loop, Config{
			Name:       "l",
			Trace:      trace.Constant("c", 5*time.Millisecond, 2e6),
			QueueBytes: 1 << 20,
		}, func(*packet.Packet) {})
		prev := l.QueueDelay()
		if prev != 0 {
			return false
		}
		for i := 0; i < int(n%64); i++ {
			l.Send(mkpkt(uint64(i), 1000))
			d := l.QueueDelay()
			if d < prev {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceWrapKeepsFlowing(t *testing.T) {
	// A short trace must keep serving traffic long past its duration.
	loop := sim.NewLoop(1)
	tr := trace.LowbandStationary(1, 2*time.Second) // wraps every 2 s
	delivered := 0
	l := New(loop, Config{Name: "l", Trace: tr}, func(*packet.Packet) { delivered++ })
	for i := 0; i < 100; i++ {
		i := i
		loop.At(time.Duration(i)*100*time.Millisecond, func() {
			l.Send(mkpkt(uint64(i), 1000))
		})
	}
	loop.RunUntil(12 * time.Second)
	if delivered != 100 {
		t.Fatalf("delivered %d/100 across trace wraps", delivered)
	}
}

func TestZeroLossConfigNeverDropsRandomly(t *testing.T) {
	loop := sim.NewLoop(1)
	l := New(loop, Config{
		Name:       "l",
		Trace:      trace.Constant("c", time.Millisecond, 1e9),
		QueueBytes: 64 << 20,
	}, func(*packet.Packet) {})
	for i := 0; i < 5000; i++ {
		l.Send(mkpkt(uint64(i), 1000))
	}
	loop.Run()
	st := l.Stats()
	if st.DroppedRandom != 0 || st.Delivered != 5000 {
		t.Fatalf("stats = %+v", st)
	}
}
