// Package netem emulates network links in virtual time, reproducing
// the fluid model behind Linux netem / Mahimahi that the paper's
// testbed used: each unidirectional Link imposes serialization delay
// (packet size over the link rate), propagation delay, drop-tail
// queueing with a byte cap, and optional random loss. Conditions may
// vary over time when driven by a trace, including full outages
// (rate 0), which is how the 5G driving traces back up queues.
package netem

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"hvc/internal/invariant"
	"hvc/internal/packet"
	"hvc/internal/sim"
	"hvc/internal/telemetry"
	"hvc/internal/trace"
)

// A Sink receives packets that survive a link's queue, loss, and delay.
type Sink func(*packet.Packet)

// DefaultQueueBytes is the drop-tail capacity used when Config leaves
// QueueBytes zero. It is sized like a typical cellular RLC buffer —
// deep enough that trace outages cause seconds of delay rather than
// immediate loss, which is the behaviour the paper's latency tails
// come from.
const DefaultQueueBytes = 2 << 20

// Config describes one unidirectional link.
type Config struct {
	// Name labels the link in stats and errors.
	Name string
	// Trace supplies the (possibly time-varying) rate and RTT; the
	// one-way propagation delay is RTT/2. Required.
	Trace *trace.Trace
	// QueueBytes caps the drop-tail queue; 0 means DefaultQueueBytes.
	QueueBytes int
	// LossProb drops each packet independently with this probability,
	// in [0,1], modeling non-congestive wireless loss. 1 is a legal
	// blackhole: the link spends air time on every packet and delivers
	// none.
	LossProb float64
	// Salt disambiguates the link's private loss RNG stream when two
	// links share a name (the two directions of a duplex channel).
	Salt string
}

// Stats counts a link's activity since creation.
type Stats struct {
	Sent           int // packets offered to the link
	Delivered      int
	DroppedQueue   int // drop-tail losses
	DroppedRandom  int // LossProb losses
	BytesDelivered int64
}

// A Link is one unidirectional emulated link. Create links with New;
// the zero value is not usable.
//
// The per-packet state machine is allocation-free in steady state: the
// send queue and the in-flight delivery queue are head-indexed rings
// that reuse their backing arrays, and the three callbacks the link
// schedules (transmission done, outage over, packet arrival) are built
// once at construction rather than closed over each packet. Arrivals
// are FIFO — the lastArrival clamp makes arrival times nondecreasing
// and the loop breaks timestamp ties in schedule order — so onArrive
// always delivers the head of the in-flight queue.
type Link struct {
	loop *sim.Loop
	cfg  Config
	sink Sink

	queue       []*packet.Packet // queue[head:] awaits transmission
	head        int
	queuedBytes int
	busy        bool
	lastArrival time.Duration // FIFO clamp for delay decreases

	inflight []*packet.Packet // inflight[inHead:] awaits arrival
	arrivals []time.Duration  // parallel ring: each packet's arrival time
	inHead   int

	onTxDone    func()
	onOutageEnd func()
	onArrive    func()

	// rng is the link's private loss stream, seeded from the loop seed
	// and the link's name+salt: drawing from it never perturbs any
	// other link's deliveries, so adding a link (or a fault process)
	// leaves unrelated links' traces unchanged.
	rng *rand.Rand

	// Fault-injection overrides (see internal/fault). All are inert in
	// their zero state except rateScale, which New initializes to 1.
	down       bool          // full outage: no new transmissions start
	rateScale  float64       // multiplies the trace rate; 1 = nominal
	extraDelay time.Duration // added one-way propagation delay
	lossFn     func() bool   // extra per-packet drop process (bursts)

	stats  Stats
	tracer *telemetry.Tracer
}

// New returns a Link delivering packets to sink. It panics if cfg.Trace
// or sink is nil: a link without conditions or a destination is a
// construction bug, not a runtime condition.
func New(loop *sim.Loop, cfg Config, sink Sink) *Link {
	if cfg.Trace == nil {
		panic(fmt.Sprintf("netem: link %q has no trace", cfg.Name))
	}
	if sink == nil {
		panic(fmt.Sprintf("netem: link %q has no sink", cfg.Name))
	}
	if cfg.QueueBytes == 0 {
		cfg.QueueBytes = DefaultQueueBytes
	}
	if cfg.LossProb < 0 || cfg.LossProb > 1 {
		panic(fmt.Sprintf("netem: link %q loss probability %v out of [0,1]", cfg.Name, cfg.LossProb))
	}
	l := &Link{loop: loop, cfg: cfg, sink: sink, rateScale: 1}
	h := fnv.New64a()
	h.Write([]byte(cfg.Name))
	h.Write([]byte{0})
	h.Write([]byte(cfg.Salt))
	l.rng = rand.New(rand.NewSource(loop.Seed() ^ int64(h.Sum64())))
	l.onTxDone = l.finishTx
	l.onOutageEnd = func() {
		l.busy = false
		l.kick()
	}
	l.onArrive = l.deliver
	return l
}

// Name reports the link's configured name.
func (l *Link) Name() string { return l.cfg.Name }

// SetTracer installs the telemetry hook; nil disables tracing. The
// link emits enqueue, drop, and deliver events and maintains the
// netem_* counters, all labeled with the link's name.
func (l *Link) SetTracer(t *telemetry.Tracer) { l.tracer = t }

// Stats returns a snapshot of the link's counters.
func (l *Link) Stats() Stats { return l.stats }

// QueuedBytes reports the bytes currently waiting in the sender-side
// queue, including the packet being serialized. Steering policies use
// this as their channel-occupancy signal.
func (l *Link) QueuedBytes() int { return l.queuedBytes }

// queued reports the number of packets awaiting transmission.
func (l *Link) queued() int { return len(l.queue) - l.head }

// Headroom reports the queue bytes still available at entry: a packet
// larger than this is dropped by Send. The quiet-time fast-forward in
// the outage experiment uses it to prove a send cannot be accepted.
func (l *Link) Headroom() int { return l.cfg.QueueBytes - l.queuedBytes }

// Transmitting reports whether the link has work in progress: a packet
// mid-serialization or a trace-outage wake pending. While it is false
// and the link is down, the queue cannot drain, so Headroom cannot
// grow — the monotonicity the fast-forward soundness argument needs.
func (l *Link) Transmitting() bool { return l.busy }

// QueueDelay estimates how long a newly arriving byte would wait before
// starting transmission, given current conditions. During an outage it
// reports the time to drain the queue at the trace's next nonzero rate
// observed going forward, bounded by one trace repetition.
func (l *Link) QueueDelay() time.Duration {
	if l.down {
		// Fault outage: the link cannot say when it will recover, so it
		// reports itself as maximally unattractive (the same sentinel
		// steering uses for a zero-capacity channel).
		return time.Hour
	}
	now := l.loop.Now()
	rate := l.cfg.Trace.At(now).Rate * l.rateScale
	if rate > 0 {
		return time.Duration(float64(l.queuedBytes) * 8 / rate * float64(time.Second))
	}
	// Outage: find the next instant with capacity.
	limit := now + l.cfg.Trace.Duration()
	for t := l.cfg.Trace.NextChange(now); t < limit; t = l.cfg.Trace.NextChange(t) {
		if r := l.cfg.Trace.At(t).Rate * l.rateScale; r > 0 {
			return t - now + time.Duration(float64(l.queuedBytes)*8/r*float64(time.Second))
		}
	}
	return limit - now
}

// SetDown toggles a fault-injection outage: while down, queued packets
// wait (drop-tail still applies at entry) and no new transmission
// starts; packets already serialized still arrive, like frames already
// on the air when a radio link blacks out. Clearing the outage resumes
// transmission immediately.
func (l *Link) SetDown(down bool) {
	if l.down == down {
		return
	}
	l.down = down
	if !down {
		l.kick()
	}
}

// Down reports whether a fault-injection outage is active. Steering
// policies use this as the liveness signal for failover; the
// trace-driven rate (which the host could not observe directly) is
// deliberately not consulted.
func (l *Link) Down() bool { return l.down }

// SetRateScale multiplies the trace rate by f (a fault-injection rate
// slump); 1 restores nominal conditions. It panics when f <= 0: a
// total outage is SetDown's job, which knows how to wake up.
func (l *Link) SetRateScale(f float64) {
	if f <= 0 {
		panic(fmt.Sprintf("netem: link %q rate scale %v must be positive (use SetDown for outages)", l.cfg.Name, f))
	}
	l.rateScale = f
}

// SetExtraDelay adds d to the one-way propagation delay of packets
// finishing serialization from now on (a fault-injection delay spike);
// 0 restores nominal conditions.
func (l *Link) SetExtraDelay(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("netem: link %q negative extra delay %v", l.cfg.Name, d))
	}
	l.extraDelay = d
}

// SetLossFn installs an extra per-packet drop process consulted after
// serialization, before the link's own LossProb draw (which is skipped
// for packets fn already dropped). Fault injection uses it for
// Gilbert–Elliott loss bursts; nil removes it. fn must be
// deterministic given the link's packet sequence — draw any randomness
// from a private seeded source, never from the loop's shared Rand.
func (l *Link) SetLossFn(fn func() bool) { l.lossFn = fn }

// RateScale reports the active fault-injection rate multiplier
// (1 = nominal). The fault layer checks it to verify a slump window
// restored the link.
func (l *Link) RateScale() float64 { return l.rateScale }

// ExtraDelay reports the active fault-injection delay addition
// (0 = nominal).
func (l *Link) ExtraDelay() time.Duration { return l.extraDelay }

// LossFnInstalled reports whether a fault-injection drop process is
// installed.
func (l *Link) LossFnInstalled() bool { return l.lossFn != nil }

// Send offers a packet to the link. It reports false when the packet
// was dropped at entry (queue overflow — a congestion signal) and true
// when it was accepted. Random wireless loss happens in flight, after
// serialization, so an accepted packet may still never arrive.
func (l *Link) Send(p *packet.Packet) bool {
	l.stats.Sent++
	if l.queuedBytes+p.Size > l.cfg.QueueBytes {
		l.stats.DroppedQueue++
		if l.tracer.Enabled() {
			l.tracer.Emit(telemetry.Event{
				Layer: telemetry.LayerChannel, Name: telemetry.EvDrop,
				Channel: l.cfg.Name, Flow: uint32(p.Flow), Seq: p.Seq,
				Bytes: p.Size, Detail: "queue",
			})
			l.tracer.Count("netem_dropped_total", 1, "channel", l.cfg.Name, "reason", "queue")
		}
		return false
	}
	p.Channel = l.cfg.Name
	l.queue = append(l.queue, p)
	l.queuedBytes += p.Size
	if l.tracer.Enabled() {
		l.tracer.Emit(telemetry.Event{
			Layer: telemetry.LayerChannel, Name: telemetry.EvEnqueue,
			Channel: l.cfg.Name, Flow: uint32(p.Flow), Seq: p.Seq,
			Bytes: p.Size, Value: float64(l.queuedBytes),
		})
		l.tracer.Count("netem_sent_total", 1, "channel", l.cfg.Name)
	}
	l.kick()
	return true
}

// kick starts serializing the head-of-line packet if the transmitter is
// idle. During an outage it re-arms itself at the next trace boundary.
func (l *Link) kick() {
	if l.busy {
		return
	}
	if l.head == len(l.queue) {
		// Drained: rewind the ring so the backing array is reused. An
		// empty queue must account for exactly zero bytes — any drift in
		// the byte counter (a size mutated while queued, a double
		// subtract) surfaces here, at the first quiet moment.
		if invariant.Enabled() && l.queuedBytes != 0 {
			invariant.Failf("netem", "queue-bytes",
				"link %q drained its queue with %d bytes still accounted", l.cfg.Name, l.queuedBytes)
		}
		l.queue = l.queue[:0]
		l.head = 0
		return
	}
	if l.down {
		// Fault outage: stay idle; SetDown(false) re-kicks. Unlike a
		// trace outage there is no known end time to sleep until.
		return
	}
	now := l.loop.Now()
	cond := l.cfg.Trace.At(now)
	rate := cond.Rate * l.rateScale
	if rate <= 0 {
		// Trace outage: sleep straight to the first boundary that
		// restores capacity instead of waking at every intermediate
		// zero-rate segment, bounded by one trace repetition (an
		// all-zero trace still wakes once per cycle to re-scan).
		wake := l.cfg.Trace.NextChange(now)
		limit := now + l.cfg.Trace.Duration()
		for wake < limit && l.cfg.Trace.At(wake).Rate <= 0 {
			wake = l.cfg.Trace.NextChange(wake)
		}
		l.busy = true
		l.loop.At(wake, l.onOutageEnd)
		return
	}
	p := l.queue[l.head]
	txTime := time.Duration(float64(p.Size) * 8 / rate * float64(time.Second))
	l.busy = true
	l.loop.After(txTime, l.onTxDone)
}

// finishTx completes serialization of the head-of-line packet,
// schedules its arrival after the propagation delay, and starts the
// next packet.
func (l *Link) finishTx() {
	p := l.queue[l.head]
	l.queue[l.head] = nil
	l.head++
	l.queuedBytes -= p.Size
	l.busy = false

	// Non-congestive wireless loss strikes in flight: the transmitter
	// spent the air time but the packet never arrives. The installed
	// fault process (loss bursts) is consulted first; an independent
	// draw from the link's private stream covers the configured i.i.d.
	// loss. LossProb == 1 always drops — Float64 is in [0,1).
	drop, reason := false, "loss"
	if l.lossFn != nil && l.lossFn() {
		drop, reason = true, "burst"
	}
	if !drop && l.cfg.LossProb > 0 && l.rng.Float64() < l.cfg.LossProb {
		drop = true
	}
	if drop {
		l.stats.DroppedRandom++
		if l.tracer.Enabled() {
			l.tracer.Emit(telemetry.Event{
				Layer: telemetry.LayerChannel, Name: telemetry.EvDrop,
				Channel: l.cfg.Name, Flow: uint32(p.Flow), Seq: p.Seq,
				Bytes: p.Size, Detail: reason,
			})
			l.tracer.Count("netem_dropped_total", 1, "channel", l.cfg.Name, "reason", reason)
		}
		l.kick()
		return
	}

	now := l.loop.Now()
	arrival := now + l.cfg.Trace.At(now).RTT/2 + l.extraDelay
	// Preserve FIFO delivery when the trace's delay drops between
	// consecutive packets, as a real single path would.
	if arrival < l.lastArrival {
		arrival = l.lastArrival
	}
	l.stats.Delivered++
	l.stats.BytesDelivered += int64(p.Size)
	// One arrival event per distinct timestamp: a packet whose clamped
	// arrival equals the ring tail's rides the event already scheduled
	// for that instant, and deliver drains the whole burst in one
	// callback. Arrivals are nondecreasing, so "equals the tail" is
	// exactly "not later than every pending packet".
	if l.inHead == len(l.inflight) || arrival > l.lastArrival {
		l.loop.At(arrival, l.onArrive)
	}
	l.lastArrival = arrival
	l.inflight = append(l.inflight, p)
	l.arrivals = append(l.arrivals, arrival)

	l.kick()
}

// checkConservation verifies the link's packet-conservation identity:
// every packet ever offered is, at this instant, exactly one of queued
// (awaiting or in serialization), dropped at entry, dropped in flight,
// or serialized for delivery (stats.Delivered counts these, whether
// still propagating or already handed to the sink). The identity is
// O(1) and is asserted at every delivery, so a leak or double count
// anywhere in the link's state machine fails within one packet.
func (l *Link) checkConservation() {
	accounted := l.queued() + l.stats.DroppedQueue + l.stats.DroppedRandom + l.stats.Delivered
	if l.stats.Sent != accounted {
		invariant.Failf("netem", "conservation",
			"link %q: sent %d != queued %d + dropped(queue %d, random %d) + delivered %d",
			l.cfg.Name, l.stats.Sent, l.queued(), l.stats.DroppedQueue,
			l.stats.DroppedRandom, l.stats.Delivered)
	}
	if l.queuedBytes < 0 {
		invariant.Failf("netem", "queue-bytes", "link %q: negative queued bytes %d", l.cfg.Name, l.queuedBytes)
	}
}

// deliver hands every in-flight packet whose arrival time has come to
// the sink — the whole same-timestamp burst in one callback, rather
// than one loop event per packet.
func (l *Link) deliver() {
	now := l.loop.Now()
	if invariant.Enabled() {
		l.checkConservation()
		if l.inHead >= len(l.inflight) {
			invariant.Failf("netem", "inflight-ring",
				"link %q: arrival event with empty in-flight ring", l.cfg.Name)
		}
		// Arrivals are FIFO by construction (the lastArrival clamp);
		// a delivery past the recorded horizon means the ring and the
		// scheduled arrival events have come apart.
		if now > l.lastArrival {
			invariant.Failf("netem", "fifo-arrival",
				"link %q: delivery at %v after last scheduled arrival %v", l.cfg.Name, now, l.lastArrival)
		}
	}
	for l.inHead < len(l.inflight) && l.arrivals[l.inHead] <= now {
		p := l.inflight[l.inHead]
		l.inflight[l.inHead] = nil
		l.inHead++
		if l.tracer.Enabled() {
			l.tracer.Emit(telemetry.Event{
				Layer: telemetry.LayerChannel, Name: telemetry.EvDeliver,
				Channel: l.cfg.Name, Flow: uint32(p.Flow), Seq: p.Seq,
				Bytes: p.Size, Dur: now - p.SentAt,
			})
			l.tracer.Count("netem_delivered_bytes_total", float64(p.Size), "channel", l.cfg.Name)
		}
		l.sink(p)
	}
	if l.inHead == len(l.inflight) {
		l.inflight = l.inflight[:0]
		l.arrivals = l.arrivals[:0]
		l.inHead = 0
	}
}
