package netem

import (
	"testing"
	"time"

	"hvc/internal/packet"
	"hvc/internal/sim"
	"hvc/internal/trace"
)

// Allocation budget: a full enqueue → serialize → propagate → deliver
// round trip allocates nothing in steady state. The send and in-flight
// rings reuse their backing arrays, the three link callbacks are built
// once at construction, and the loop recycles its event slots.
func TestRoundTripAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	loop := sim.NewLoop(1)
	delivered := 0
	l := New(loop, Config{Name: "l", Trace: trace.Constant("c", 10*time.Millisecond, 8e6)},
		func(*packet.Packet) { delivered++ })
	p := &packet.Packet{ID: 1, Size: 1000}
	for i := 0; i < 64; i++ { // warm up rings and loop arrays
		l.Send(p)
		loop.Run()
	}
	if avg := testing.AllocsPerRun(200, func() {
		if !l.Send(p) {
			t.Fatal("Send rejected")
		}
		loop.Run()
	}); avg != 0 {
		t.Errorf("round trip allocates %v/op in steady state, want 0", avg)
	}
	if delivered < 264 {
		t.Fatalf("delivered %d packets, want >= 264", delivered)
	}
}

// The same budget with a backlogged queue: head-of-line churn on the
// rings (append at the tail, advance the head) must not reallocate.
func TestSaturatedQueueAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	loop := sim.NewLoop(1)
	l := New(loop, Config{
		Name:       "l",
		Trace:      trace.Constant("c", 10*time.Millisecond, 1e9),
		QueueBytes: 64 << 20,
	}, func(*packet.Packet) {})
	p := &packet.Packet{ID: 1, Size: 1500}
	for i := 0; i < 256; i++ { // warm up with a standing backlog
		l.Send(p)
		loop.Step()
	}
	if avg := testing.AllocsPerRun(200, func() {
		l.Send(p)
		loop.Step()
	}); avg != 0 {
		t.Errorf("saturated send+step allocates %v/op in steady state, want 0", avg)
	}
	loop.Run()
}

func BenchmarkRoundTrip(b *testing.B) {
	loop := sim.NewLoop(1)
	l := New(loop, Config{Name: "l", Trace: trace.Constant("c", 10*time.Millisecond, 8e6)},
		func(*packet.Packet) {})
	p := &packet.Packet{ID: 1, Size: 1000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Send(p)
		loop.Run()
	}
}
