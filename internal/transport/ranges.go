package transport

import "sort"

// seqRange is an inclusive range of sequence numbers (or byte offsets).
type seqRange struct{ lo, hi uint64 }

// rangeSet maintains disjoint, ascending, non-adjacent inclusive
// ranges. The zero value is an empty set.
type rangeSet struct {
	rs []seqRange
}

// add inserts a single value, reporting whether it was new.
func (r *rangeSet) add(v uint64) bool { return r.addRange(v, v) > 0 }

// addRange inserts [lo, hi] and returns how many values were newly
// covered.
func (r *rangeSet) addRange(lo, hi uint64) uint64 {
	if hi < lo {
		panic("transport: inverted range")
	}
	// Find the first range that could overlap or be adjacent.
	i := sort.Search(len(r.rs), func(i int) bool { return r.rs[i].hi+1 >= lo })
	newly := hi - lo + 1
	merged := seqRange{lo, hi}
	j := i
	for j < len(r.rs) && r.rs[j].lo <= hi+1 {
		o := r.rs[j]
		// Subtract the overlap with [lo, hi] from the newly count.
		oLo, oHi := o.lo, o.hi
		if oLo < lo {
			oLo = lo
		}
		if oHi > hi {
			oHi = hi
		}
		if oLo <= oHi {
			newly -= oHi - oLo + 1
		}
		if o.lo < merged.lo {
			merged.lo = o.lo
		}
		if o.hi > merged.hi {
			merged.hi = o.hi
		}
		j++
	}
	out := append(r.rs[:i:i], merged)
	r.rs = append(out, r.rs[j:]...)
	return newly
}

// contains reports whether v is covered.
func (r *rangeSet) contains(v uint64) bool {
	i := sort.Search(len(r.rs), func(i int) bool { return r.rs[i].hi >= v })
	return i < len(r.rs) && r.rs[i].lo <= v
}

// covered reports whether every value in [lo, hi] is present.
func (r *rangeSet) covered(lo, hi uint64) bool {
	i := sort.Search(len(r.rs), func(i int) bool { return r.rs[i].hi >= lo })
	return i < len(r.rs) && r.rs[i].lo <= lo && r.rs[i].hi >= hi
}

// max returns the largest covered value, or 0 for an empty set.
func (r *rangeSet) max() uint64 {
	if len(r.rs) == 0 {
		return 0
	}
	return r.rs[len(r.rs)-1].hi
}

// empty reports whether the set has no values.
func (r *rangeSet) empty() bool { return len(r.rs) == 0 }

// tail returns up to n of the highest ranges, ascending, as a copy.
func (r *rangeSet) tail(n int) []seqRange {
	if len(r.rs) <= n {
		return append([]seqRange(nil), r.rs...)
	}
	return append([]seqRange(nil), r.rs[len(r.rs)-n:]...)
}
