package transport

import "sort"

// seqRange is an inclusive range of sequence numbers (or byte offsets).
type seqRange struct{ lo, hi uint64 }

// rangeSet maintains disjoint, ascending, non-adjacent inclusive
// ranges. The zero value is an empty set.
type rangeSet struct {
	rs []seqRange
}

// add inserts a single value, reporting whether it was new.
func (r *rangeSet) add(v uint64) bool { return r.addRange(v, v) > 0 }

// addRange inserts [lo, hi] and returns how many values were newly
// covered. In-order arrival (the overwhelmingly common case on the
// transport hot path) takes an allocation-free fast path; the general
// case splices in place, allocating only when the backing array grows.
func (r *rangeSet) addRange(lo, hi uint64) uint64 {
	if hi < lo {
		panic("transport: inverted range")
	}
	n := len(r.rs)
	if n == 0 {
		r.rs = append(r.rs, seqRange{lo, hi})
		return hi - lo + 1
	}
	// Fast paths against the last range: strictly beyond it (append),
	// extending it, or already contained in it.
	if last := &r.rs[n-1]; lo >= last.lo {
		switch {
		case lo > last.hi && lo-last.hi > 1:
			r.rs = append(r.rs, seqRange{lo, hi})
			return hi - lo + 1
		case hi <= last.hi:
			return 0
		default: // overlaps or is adjacent: extend the tail
			newly := hi - last.hi
			if lo > last.hi {
				newly = hi - lo + 1 // adjacent, no overlap
			}
			last.hi = hi
			return newly
		}
	}
	// General case. Find the first range that could overlap or be
	// adjacent, fold [i, j) into merged, and splice in place.
	i := sort.Search(n, func(i int) bool { return r.rs[i].hi+1 >= lo })
	newly := hi - lo + 1
	merged := seqRange{lo, hi}
	j := i
	for j < n && r.rs[j].lo <= hi+1 {
		o := r.rs[j]
		// Subtract the overlap with [lo, hi] from the newly count.
		oLo, oHi := o.lo, o.hi
		if oLo < lo {
			oLo = lo
		}
		if oHi > hi {
			oHi = hi
		}
		if oLo <= oHi {
			newly -= oHi - oLo + 1
		}
		if o.lo < merged.lo {
			merged.lo = o.lo
		}
		if o.hi > merged.hi {
			merged.hi = o.hi
		}
		j++
	}
	switch {
	case j == i: // no overlap: insert merged before index i
		r.rs = append(r.rs, seqRange{})
		copy(r.rs[i+1:], r.rs[i:])
		r.rs[i] = merged
	default: // replace [i, j) with merged
		r.rs[i] = merged
		if j > i+1 {
			r.rs = append(r.rs[:i+1], r.rs[j:]...)
		}
	}
	return newly
}

// contains reports whether v is covered.
func (r *rangeSet) contains(v uint64) bool {
	i := sort.Search(len(r.rs), func(i int) bool { return r.rs[i].hi >= v })
	return i < len(r.rs) && r.rs[i].lo <= v
}

// covered reports whether every value in [lo, hi] is present.
func (r *rangeSet) covered(lo, hi uint64) bool {
	i := sort.Search(len(r.rs), func(i int) bool { return r.rs[i].hi >= lo })
	return i < len(r.rs) && r.rs[i].lo <= lo && r.rs[i].hi >= hi
}

// max returns the largest covered value, or 0 for an empty set.
func (r *rangeSet) max() uint64 {
	if len(r.rs) == 0 {
		return 0
	}
	return r.rs[len(r.rs)-1].hi
}

// empty reports whether the set has no values.
func (r *rangeSet) empty() bool { return len(r.rs) == 0 }

// appendTail appends up to n of the highest ranges, ascending, to dst
// and returns the extended slice. The result does not alias internal
// storage beyond dst's own backing array.
func (r *rangeSet) appendTail(dst []seqRange, n int) []seqRange {
	if len(r.rs) <= n {
		return append(dst, r.rs...)
	}
	return append(dst, r.rs[len(r.rs)-n:]...)
}

// tail returns up to n of the highest ranges, ascending, as a copy.
func (r *rangeSet) tail(n int) []seqRange {
	if len(r.rs) == 0 {
		return nil
	}
	return r.appendTail(make([]seqRange, 0, min(n, len(r.rs))), n)
}
