// Package transport implements a reliable, message-oriented transport
// that runs over a set of heterogeneous virtual channels through a
// steering policy — the architecture the paper argues for in §3.2/§3.3:
//
//   - The unit of steering is the individual segment, so an ACK can
//     return over a different channel than the data it acknowledges,
//     and the tail of a message can be accelerated.
//   - The application-transport interface carries message boundaries
//     and priorities (SendMessage), and flows carry a flow priority;
//     steering policies read both from packet headers.
//   - Congestion control is pluggable (package cc) and is told which
//     channel each acknowledged segment traveled on, enabling the
//     HVC-aware controller.
//   - Loss detection is per-channel: a segment is declared lost only
//     when later segments on the same channel have been acknowledged,
//     so cross-channel reordering (URLLC packets overtaking eMBB ones
//     by tens of milliseconds) does not trigger spurious retransmits.
//
// An Endpoint demultiplexes one side's channels among connections; a
// Conn is one flow. Reliable connections carry ordered messages on
// lightweight stream IDs; unreliable connections (Config.Unreliable)
// carry best-effort messages for real-time media.
package transport

import (
	"fmt"

	"hvc/internal/channel"
	"hvc/internal/invariant"
	"hvc/internal/packet"
	"hvc/internal/sim"
	"hvc/internal/steering"
	"hvc/internal/telemetry"
)

// An Endpoint is one host's attachment to the channel group. It owns
// the side's connections and routes arriving packets to them.
type Endpoint struct {
	loop  *sim.Loop
	side  channel.Side
	group *channel.Group
	pool  *packet.Pool // the group's shared free list

	conns    map[packet.FlowID]*Conn
	nextFlow packet.FlowID
	ids      packet.IDGen
	tracer   *telemetry.Tracer

	// ctrlNames is scratch for transmit calls whose carried-channel
	// list is discarded (control and ack packets).
	ctrlNames []string

	// Payload-box caches. Pooled packets keep their last payload box
	// attached; when a packet is reused for a different kind, the
	// mismatched box is swapped through these free lists instead of
	// being reallocated.
	fragBoxes []*fragment
	ackBoxes  []*ackPayload

	listenCfg func() Config
	accept    func(*Conn)
}

// NewEndpoint attaches an endpoint to side of every channel in group.
// Exactly one endpoint may exist per side of a group.
func NewEndpoint(loop *sim.Loop, group *channel.Group, side channel.Side) *Endpoint {
	e := &Endpoint{
		loop:  loop,
		side:  side,
		group: group,
		pool:  group.Pool(),
		conns: make(map[packet.FlowID]*Conn),
	}
	// Client-side flows are even, server-side odd, so simultaneous
	// dials from both sides cannot collide.
	if side == channel.A {
		e.nextFlow = 2
	} else {
		e.nextFlow = 1
	}
	for _, ch := range group.All() {
		ch.SetSink(side, e.receive)
	}
	return e
}

// SetTracer installs the telemetry hook for the endpoint and every
// connection subsequently created on it; nil disables tracing. Call
// it before dialing or accepting.
func (e *Endpoint) SetTracer(t *telemetry.Tracer) { e.tracer = t }

// Side reports which side of the channel group this endpoint is.
func (e *Endpoint) Side() channel.Side { return e.side }

// Loop returns the endpoint's simulation loop.
func (e *Endpoint) Loop() *sim.Loop { return e.loop }

// Listen makes the endpoint accept incoming connections. cfgFactory
// builds the configuration (congestion control, steering) for each
// accepted connection; accept is invoked with the new Conn before any
// of its messages are delivered.
func (e *Endpoint) Listen(cfgFactory func() Config, accept func(*Conn)) {
	if cfgFactory == nil || accept == nil {
		panic("transport: Listen requires a config factory and accept callback")
	}
	e.listenCfg = cfgFactory
	e.accept = accept
}

// Dial opens a connection to the peer endpoint. Reliable connections
// perform a one-round-trip handshake; messages sent before it
// completes are queued. Unreliable connections may send immediately.
func (e *Endpoint) Dial(cfg Config) *Conn {
	c := newConn(e, e.nextFlow, cfg, true)
	e.nextFlow += 2
	e.conns[c.flow] = c
	if cfg.Unreliable {
		c.established = true
	} else {
		c.sendSYN()
	}
	return c
}

// receive routes an arriving packet to its connection, creating a
// server-side connection on a handshake (or, for unreliable flows,
// first data) packet when a listener is installed. The packet dies
// here: handlePacket copies out everything it keeps, so the packet
// (payload box attached) goes back to the shared pool for the next
// transmission from either side.
func (e *Endpoint) receive(p *packet.Packet) {
	c, ok := e.conns[p.Flow]
	if !ok {
		c = e.acceptConn(p)
		if c == nil {
			e.pool.Put(p)
			return // no listener, or a stray packet: drop
		}
	}
	if d := c.cfg.RxDelay; d > 0 {
		// Per-flow extra path delay: hold the packet (still owned by the
		// pool entry) and process it later. Arrival times are monotone
		// per channel and the delay is constant, so per-channel FIFO
		// order is preserved; the closure allocation only happens on
		// flows that opt in.
		e.loop.After(d, func() {
			c.handlePacket(p)
			e.pool.Put(p)
		})
		return
	}
	c.handlePacket(p)
	e.pool.Put(p)
}

func (e *Endpoint) acceptConn(p *packet.Packet) *Conn {
	if e.listenCfg == nil {
		return nil
	}
	switch pl := p.Payload.(type) {
	case *ctrlPayload:
		if !pl.syn {
			return nil
		}
	case *fragment:
		if !pl.unreliable {
			return nil // reliable data for an unknown flow: stray
		}
	default:
		return nil
	}
	cfg := e.listenCfg()
	if frag, ok := p.Payload.(*fragment); ok && frag.unreliable {
		cfg.Unreliable = true
	}
	// Adopt the peer's flow priority so responses to a bulk flow are
	// themselves stamped bulk and stay off constrained channels.
	cfg.FlowPriority = p.FlowPriority
	c := newConn(e, p.Flow, cfg, false)
	c.established = true
	e.conns[p.Flow] = c
	e.accept(c)
	return c
}

// forget removes a closed connection from the demux table.
func (e *Endpoint) forget(flow packet.FlowID) { delete(e.conns, flow) }

// transmit steers and transmits p, cloning it per channel when the
// policy replicates. Channel names of the copies that were accepted
// are appended to carried (pass a reusable buffer sliced to zero
// length; an empty result means every copy was dropped at entry).
func (e *Endpoint) transmit(c *Conn, p *packet.Packet, carried []string) []string {
	chs := c.cfg.Steer.Pick(p)
	if len(chs) == 0 {
		panic(fmt.Sprintf("transport: policy %q picked no channel", c.cfg.Steer.Name()))
	}
	if invariant.Enabled() {
		e.checkLiveness(c.cfg.Steer, chs)
	}
	if e.tracer.Enabled() {
		names := make([]string, len(chs))
		for i, ch := range chs {
			names[i] = ch.Name()
		}
		reason := steering.Reason(c.cfg.Steer)
		e.tracer.Emit(telemetry.Event{
			Layer: telemetry.LayerSteering, Name: telemetry.EvDecision,
			Channel: telemetry.JoinNames(names), Flow: uint32(p.Flow),
			Seq: p.Seq, Msg: p.MsgID, Bytes: p.Size, Detail: reason,
		})
		for _, name := range names {
			e.tracer.Count("steering_decisions_total", 1,
				"policy", c.cfg.Steer.Name(), "channel", name, "reason", reason)
		}
	}
	for i, ch := range chs {
		q := p
		if i > 0 {
			q = e.clone(p)
		}
		if ch.Send(e.side, q) {
			carried = append(carried, ch.Name())
		} else if i > 0 {
			// A clone refused at entry is dead on the spot; the
			// original stays with the caller, which may still read it.
			e.pool.Put(q)
		}
	}
	return carried
}

// checkLiveness asserts the steering liveness invariant: a policy that
// declares failover (steering.LivenessAware) must never steer a packet
// onto a channel in a fault outage while a live channel exists in the
// group. The scan is over the group's handful of channels and
// allocates nothing.
func (e *Endpoint) checkLiveness(pol steering.Policy, chs []*channel.Channel) {
	la, ok := pol.(steering.LivenessAware)
	if !ok || !la.FailsOver() {
		return
	}
	for _, ch := range chs {
		if !ch.Down() {
			continue
		}
		for _, alt := range e.group.All() {
			if !alt.Down() {
				invariant.Failf("steering", "liveness",
					"policy %q steered onto down channel %q while %q is live",
					pol.Name(), ch.Name(), alt.Name())
			}
		}
	}
}

// clone duplicates p for replicating policies, giving the copy its own
// payload box so that both packets can be recycled independently.
func (e *Endpoint) clone(p *packet.Packet) *packet.Packet {
	q := e.pool.Get()
	old := q.Payload
	*q = *p
	q.Payload = old
	switch pl := p.Payload.(type) {
	case *fragment:
		nf := e.fragBox(q)
		*nf = *pl
		q.Payload = nf
	case *ackPayload:
		na := e.ackBox(q)
		na.ranges = append(na.ranges[:0], pl.ranges...)
		q.Payload = na
	case *ctrlPayload:
		nc := *pl
		q.Payload = &nc
	}
	return q
}

// fragBox returns a fragment payload box for the pooled packet p,
// reusing p's attached box when the type matches and recycling a
// mismatched ack box. The box contents are stale; callers overwrite.
func (e *Endpoint) fragBox(p *packet.Packet) *fragment {
	switch old := p.Payload.(type) {
	case *fragment:
		return old
	case *ackPayload:
		e.ackBoxes = append(e.ackBoxes, old)
	}
	if n := len(e.fragBoxes); n > 0 {
		f := e.fragBoxes[n-1]
		e.fragBoxes[n-1] = nil
		e.fragBoxes = e.fragBoxes[:n-1]
		return f
	}
	return new(fragment)
}

// ackBox is fragBox's counterpart for acknowledgment payloads.
func (e *Endpoint) ackBox(p *packet.Packet) *ackPayload {
	switch old := p.Payload.(type) {
	case *ackPayload:
		return old
	case *fragment:
		e.fragBoxes = append(e.fragBoxes, old)
	}
	if n := len(e.ackBoxes); n > 0 {
		a := e.ackBoxes[n-1]
		e.ackBoxes[n-1] = nil
		e.ackBoxes = e.ackBoxes[:n-1]
		return a
	}
	return new(ackPayload)
}
