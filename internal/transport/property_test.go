package transport

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hvc/internal/cc"
	"hvc/internal/channel"
	"hvc/internal/fault"
	"hvc/internal/steering"
)

// Explicit property tests for exactly-once delivery: beyond the
// standing invariant in deliverMsg (armed by TestMain for every test
// here), these pin the observable property at the application surface
// — every message the app sends arrives exactly once, whatever the
// fault schedule does to the channels underneath.

// exactlyOnceUnder runs a reliable 100-message stream under spec for
// each steering flavor and asserts per-ID exactly-once delivery.
func exactlyOnceUnder(t *testing.T, spec fault.Spec, seed int64) {
	t.Helper()
	policies := []struct {
		name string
		mk   func(w *world, side channel.Side) steering.Policy
	}{
		{"embb-only", func(w *world, _ channel.Side) steering.Policy { return w.embbOnly() }},
		{"dchannel", func(w *world, side channel.Side) steering.Policy { return w.dchannel(side) }},
		{"redundant", func(w *world, _ channel.Side) steering.Policy { return steering.NewRedundant(w.group) }},
	}
	for _, pol := range policies {
		t.Run(pol.name, func(t *testing.T) {
			w := newWorld(seed)
			if err := fault.Inject(w.loop, w.group, spec, nil); err != nil {
				t.Fatal(err)
			}
			var got []Message
			w.listen(func() Config {
				return Config{CC: cc.NewCubic(), Steer: pol.mk(w, channel.B)}
			}, &got)
			conn := w.client.Dial(Config{CC: cc.NewCubic(), Steer: pol.mk(w, channel.A)})
			st := conn.NewStream()
			const n = 100
			for i := 0; i < n; i++ {
				i := i
				w.loop.At(time.Duration(i)*50*time.Millisecond, func() {
					conn.SendMessage(st, 0, 1000, i)
				})
			}
			// Run far past the schedule so every retransmission and every
			// stale copy stranded on a blacked-out channel drains out.
			w.loop.RunUntil(60 * time.Second)

			seen := make(map[int]int)
			for _, m := range got {
				seen[m.Data.(int)]++
			}
			for i := 0; i < n; i++ {
				if seen[i] != 1 {
					t.Errorf("message %d delivered %d times, want exactly once", i, seen[i])
				}
			}
			if len(got) != n {
				t.Errorf("delivered %d messages, want %d", len(got), n)
			}
		})
	}
}

// TestExactlyOnceUnderDefaultFault drives the canonical blackout
// schedule every outage experiment uses.
func TestExactlyOnceUnderDefaultFault(t *testing.T) {
	exactlyOnceUnder(t, fault.Default(channel.NameEMBB, 5*time.Second), 1)
}

// TestExactlyOnceUnderRandomizedFault draws seeded-random compound
// schedules — outages, bursts, slumps, and spikes on both channels —
// and holds the property under each.
func TestExactlyOnceUnderRandomizedFault(t *testing.T) {
	for _, metaseed := range []int64{3, 17} {
		rng := rand.New(rand.NewSource(metaseed))
		spec := randomSchedule(rng, 5*time.Second)
		t.Run(fmt.Sprintf("metaseed=%d", metaseed), func(t *testing.T) {
			exactlyOnceUnder(t, spec, metaseed)
		})
	}
}

// randomSchedule is a miniature of the chaos generator (the real one
// lives in internal/chaos, which this package must not import): one
// window per (channel, kind), placed anywhere in the run.
func randomSchedule(rng *rand.Rand, dur time.Duration) fault.Spec {
	var spec fault.Spec
	for _, ch := range []string{channel.NameEMBB, channel.NameURLLC} {
		for _, kind := range []fault.Kind{fault.Outage, fault.Burst, fault.Slump, fault.Spike} {
			if rng.Intn(2) == 0 {
				continue
			}
			ev := fault.Event{
				Kind:    kind,
				Channel: ch,
				At:      time.Duration(rng.Int63n(int64(dur / 2))).Truncate(time.Millisecond),
				Dur:     (dur/16 + time.Duration(rng.Int63n(int64(dur/4)))).Truncate(time.Millisecond),
				Count:   1,
			}
			switch kind {
			case fault.Burst:
				ev.PGB, ev.PBG, ev.LossBad = 0.02, 0.3, 0.95
			case fault.Slump:
				ev.Factor = 0.1 + rng.Float64()*0.4
			case fault.Spike:
				ev.Delay = 50 * time.Millisecond
			}
			spec.Events = append(spec.Events, ev)
		}
	}
	return spec
}
