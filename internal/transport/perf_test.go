package transport

import (
	"testing"
	"time"

	"hvc/internal/cc"
	"hvc/internal/channel"
)

// BenchmarkMessageRoundTrip drives a steady stream of messages through
// the full stack — fragmentation, steering, netem, reassembly, acks —
// and reports allocations per message. In steady state the shared
// packet pool, the payload-box caches, and the transport free lists
// (chunks, sent-info records, reassembly state) keep this near zero.
func BenchmarkMessageRoundTrip(b *testing.B) {
	w := newWorld(1)
	var got []Message
	w.listen(serverCfg(w), &got)
	c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.dchannel(channel.A)})
	st := c.NewStream()
	// Warm up: complete the handshake and grow every free list.
	for i := 0; i < 64; i++ {
		c.SendMessage(st, 0, 8000, nil)
	}
	w.loop.RunUntil(5 * time.Second)
	if len(got) != 64 {
		b.Fatalf("warm-up delivered %d messages, want 64", len(got))
	}
	deadline := w.loop.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SendMessage(st, 0, 8000, nil)
		deadline += time.Second
		w.loop.RunUntil(deadline)
	}
	b.StopTimer()
	if len(got) != 64+b.N {
		b.Fatalf("delivered %d messages, want %d", len(got), 64+b.N)
	}
}
