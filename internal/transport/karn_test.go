package transport

import (
	"testing"
	"time"

	"hvc/internal/cc"
	"hvc/internal/channel"
)

// Karn-style audit, pinned: retransmissions carry fresh sequence
// numbers (sendChunk assigns c.nextSeq++ per transmission) and requeue
// removes the original transmission's tracking record from sentOrder,
// so an ack that arrives for the *original* seq after a retransmit
// matches nothing in the merge-join and takes the pure-duplicate early
// return — it must not feed srtt/rttvar (no negative or
// cross-attributed samples), nor double-count delivered bytes, nor
// move largestAcked. These tests replay exactly that sequence against
// both ack paths and fail if any estimator or counter moves.

func TestLateAckAfterRetransmitIgnored(t *testing.T) {
	w := newWorld(51)
	var got []Message
	w.listen(serverCfg(w), &got)
	c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.dchannel(channel.A)})
	const size = 2 << 20
	c.SendMessage(c.NewStream(), 0, size, nil)
	w.loop.RunUntil(300 * time.Millisecond)

	if len(c.sentOrder) == 0 {
		t.Fatal("nothing in flight at 300ms")
	}
	lo := c.sentOrder[0].seq
	hi := c.sentOrder[len(c.sentOrder)-1].seq

	// Timeout: every in-flight packet is requeued and retransmitted
	// under fresh sequence numbers.
	c.onRTO()
	if c.stats.Retransmits == 0 {
		t.Fatal("RTO did not requeue anything")
	}
	for _, info := range c.sentOrder {
		if info.seq <= hi {
			t.Fatalf("retransmission reused old seq %d (<= %d)", info.seq, hi)
		}
	}

	srtt, rttvar := c.srtt, c.rttvar
	bif := c.bytesInFlight
	acked := c.stats.BytesAcked
	delivered := c.delivered
	largest := c.largestAcked

	// The network finally delivers the ack for the original
	// transmissions.
	c.handleAck(nil, &ackPayload{ranges: []seqRange{{lo: lo, hi: hi}}})

	if c.srtt != srtt || c.rttvar != rttvar {
		t.Fatalf("late ack moved RTT estimators: srtt %v->%v rttvar %v->%v",
			srtt, c.srtt, rttvar, c.rttvar)
	}
	if c.bytesInFlight != bif {
		t.Fatalf("late ack changed bytesInFlight %d->%d", bif, c.bytesInFlight)
	}
	if c.stats.BytesAcked != acked || c.delivered != delivered {
		t.Fatalf("late ack double-counted delivery: acked %d->%d delivered %d->%d",
			acked, c.stats.BytesAcked, delivered, c.delivered)
	}
	if c.largestAcked != largest {
		t.Fatalf("late ack moved largestAcked %d->%d", largest, c.largestAcked)
	}
	if c.srtt < 0 || c.rttvar < 0 {
		t.Fatalf("negative estimator: srtt=%v rttvar=%v", c.srtt, c.rttvar)
	}

	// The transfer still completes, exactly once.
	w.loop.RunUntil(30 * time.Second)
	if len(got) != 1 || got[0].Size != size {
		t.Fatalf("transfer after spurious ack: %v", got)
	}
}

func TestLateAckAfterRetransmitIgnoredMultipath(t *testing.T) {
	w := newWorld(52)
	var got []Message
	w.listen(func() Config { return multipathCfg() }, &got)
	c := w.client.Dial(multipathCfg())
	const size = 2 << 20
	c.SendMessage(c.NewStream(), 0, size, nil)
	w.loop.RunUntil(300 * time.Millisecond)

	if len(c.sentOrder) == 0 {
		t.Fatal("nothing in flight at 300ms")
	}
	lo := c.sentOrder[0].seq
	hi := c.sentOrder[len(c.sentOrder)-1].seq
	c.onMultiRTO()

	srtt, rttvar := c.srtt, c.rttvar
	subSrtt := map[string]time.Duration{}
	subInflight := map[string]int{}
	for _, name := range c.subflowOrder {
		subSrtt[name] = c.subflows[name].srtt
		subInflight[name] = c.subflows[name].inflight
	}
	acked := c.stats.BytesAcked

	c.handleAck(nil, &ackPayload{ranges: []seqRange{{lo: lo, hi: hi}}})

	if c.srtt != srtt || c.rttvar != rttvar {
		t.Fatalf("late ack moved shared RTT estimators: srtt %v->%v rttvar %v->%v",
			srtt, c.srtt, rttvar, c.rttvar)
	}
	for _, name := range c.subflowOrder {
		sf := c.subflows[name]
		if sf.srtt != subSrtt[name] || sf.inflight != subInflight[name] {
			t.Fatalf("late ack touched subflow %s: srtt %v->%v inflight %d->%d",
				name, subSrtt[name], sf.srtt, subInflight[name], sf.inflight)
		}
	}
	if c.stats.BytesAcked != acked {
		t.Fatalf("late ack double-counted: acked %d->%d", acked, c.stats.BytesAcked)
	}

	w.loop.RunUntil(30 * time.Second)
	if len(got) != 1 || got[0].Size != size {
		t.Fatalf("transfer after spurious ack: %v", got)
	}
}
