package transport

import (
	"time"

	"hvc/internal/cc"
	"hvc/internal/invariant"
	"hvc/internal/packet"
	"hvc/internal/sim"
	"hvc/internal/telemetry"
)

// ackAfterGap triggers per-channel loss detection once this many later
// packets on the same channel have been acknowledged, mirroring TCP's
// three-duplicate-ACK rule on each channel independently.
const ackAfterGap = 3

// maxAckRanges bounds the SACK state carried per acknowledgment.
const maxAckRanges = 32

// ackPayload rides Ack packets: the receiver's highest ranges.
type ackPayload struct {
	ranges []seqRange
}

// rcvMsg is a message under reassembly on the receive side.
type rcvMsg struct {
	stream  uint32
	prio    packet.Priority
	total   int
	got     rangeSet
	data    any
	sentAt  time.Duration
	expiry  sim.Timer
	started time.Duration
}

// handleData processes one arriving data packet.
func (c *Conn) handleData(p *packet.Packet, frag *fragment) {
	isNew := c.rcvRanges.add(p.Seq)
	if !c.cfg.Unreliable {
		c.scheduleAck(p)
	}
	if !isNew {
		return // duplicate (redundant copy or spurious retransmit)
	}
	if c.doneMsgs.contains(frag.msgID) {
		// Late copy of a message already delivered or expired. The
		// seeded-bug switch falls through instead, reintroducing the
		// pre-PR 5 duplicate delivery so the chaos harness can prove its
		// detection pipeline (the exactly-once invariant in deliverMsg
		// is the independent check that must catch it).
		if !invariant.BugEnabled(invariant.BugDupDeliver) {
			return
		}
	}

	rm, ok := c.rcvMsgs[frag.msgID]
	if !ok {
		rm = c.newRcvMsg()
		rm.stream = frag.stream
		rm.prio = frag.prio
		rm.total = frag.total
		rm.sentAt = frag.sentAt
		rm.started = c.loop.Now()
		c.rcvMsgs[frag.msgID] = rm
		if c.cfg.Unreliable {
			id := frag.msgID
			rm.expiry = c.loop.After(c.cfg.MsgTimeout, func() { c.expireMsg(id) })
		}
	}
	if frag.length > 0 {
		newBytes := rm.got.addRange(uint64(frag.offset), uint64(frag.offset+frag.length-1))
		c.stats.BytesReceived += int64(newBytes)
	}
	if frag.data != nil {
		rm.data = frag.data
	}
	if rm.total > 0 && rm.got.covered(0, uint64(rm.total-1)) {
		c.deliverMsg(frag.msgID, rm)
	}
}

func (c *Conn) deliverMsg(id uint64, rm *rcvMsg) {
	// Exactly-once delivery is a standing property, checked here
	// independently of the handleData dedup paths that are supposed to
	// uphold it: a message ID already marked done must never complete
	// reassembly a second time, whatever combination of retransmission,
	// replication, and outage produced the second copy.
	if invariant.Enabled() && c.doneMsgs.contains(id) {
		invariant.Failf("transport", "exactly-once",
			"flow %d delivered message %d twice", c.flow, id)
	}
	delete(c.rcvMsgs, id)
	c.doneMsgs.add(id)
	rm.expiry.Stop()
	c.stats.MsgsDelivered++
	m := Message{
		ID:          id,
		Stream:      rm.stream,
		Priority:    rm.prio,
		Size:        rm.total,
		Data:        rm.data,
		SentAt:      rm.sentAt,
		DeliveredAt: c.loop.Now(),
	}
	c.freeRcvMsg(rm)
	if c.onMessage == nil {
		return
	}
	c.onMessage(c, m)
}

func (c *Conn) expireMsg(id uint64) {
	rm, ok := c.rcvMsgs[id]
	if !ok {
		return
	}
	delete(c.rcvMsgs, id)
	c.doneMsgs.add(id)
	c.stats.MsgsExpired++
	c.freeRcvMsg(rm)
}

// newRcvMsg returns a recycled (or fresh) reassembly record with an
// empty range set.
func (c *Conn) newRcvMsg() *rcvMsg {
	if n := len(c.freeRcvMsgs); n > 0 {
		rm := c.freeRcvMsgs[n-1]
		c.freeRcvMsgs[n-1] = nil
		c.freeRcvMsgs = c.freeRcvMsgs[:n-1]
		return rm
	}
	return &rcvMsg{}
}

// freeRcvMsg recycles a delivered or expired reassembly record,
// keeping its range-set backing array.
func (c *Conn) freeRcvMsg(rm *rcvMsg) {
	rs := rm.got.rs[:0]
	*rm = rcvMsg{}
	rm.got.rs = rs
	c.freeRcvMsgs = append(c.freeRcvMsgs, rm)
}

// scheduleAck decides when to acknowledge: immediately on reordering
// or when AckEvery packets are pending, otherwise within MaxAckDelay.
func (c *Conn) scheduleAck(p *packet.Packet) {
	c.ackPending++
	outOfOrder := p.Seq != c.rcvRanges.max() || len(c.rcvRanges.rs) > 1
	if outOfOrder || c.ackPending >= c.cfg.AckEvery {
		c.sendAck()
		return
	}
	if !c.ackTimer.Active() {
		c.ackTimer = c.loop.After(c.cfg.MaxAckDelay, c.sendAckFn)
	}
}

// sendAck emits the receiver's current SACK state.
func (c *Conn) sendAck() {
	if c.closed || c.rcvRanges.empty() {
		return
	}
	c.ackPending = 0
	c.ackTimer.Stop()
	p := c.newPacket(packet.Ack, 0)
	pl := c.ep.ackBox(p)
	pl.ranges = c.rcvRanges.appendTail(pl.ranges[:0], maxAckRanges)
	p.Size = packet.HeaderBytes + 4*len(pl.ranges)
	p.Payload = pl
	c.transmitCtrl(p)
}

// handleAck processes acknowledgment state from the peer.
func (c *Conn) handleAck(_ *packet.Packet, pl *ackPayload) {
	if c.subflows != nil {
		c.multiAck(pl)
		return
	}
	now := c.loop.Now()
	var newlyBytes int
	var newest *sentInfo
	c.ackedInfos = c.ackedInfos[:0]
	// Merge-join: sentOrder is ascending by seq and the ack's ranges
	// are ascending and disjoint, so one linear pass over both decides
	// every outstanding packet without a lookup structure.
	ranges := pl.ranges
	ri := 0
	remaining := c.sentOrder[:0]
	for _, info := range c.sentOrder {
		for ri < len(ranges) && ranges[ri].hi < info.seq {
			ri++
		}
		if ri == len(ranges) || info.seq < ranges[ri].lo {
			remaining = append(remaining, info)
			continue
		}
		c.ackedInfos = append(c.ackedInfos, info)
		c.bytesInFlight -= info.size
		c.delivered += int64(info.size)
		newlyBytes += info.size
		c.stats.BytesAcked += int64(info.size)
		for i, id := range info.chIDs {
			if idx := info.chIdx[i]; idx > c.ackedIndex[id] {
				c.ackedIndex[id] = idx
			}
		}
		newest = info // ascending scan: the last acked is the newest
	}
	c.sentOrder = remaining
	if newest == nil {
		return // pure duplicate: nothing new
	}
	if newest.seq > c.largestAcked {
		c.largestAcked = newest.seq
	}
	c.deliveredTime = now
	c.rtoBackoff = 0

	rtt := now - newest.sentAt
	c.updateRTT(rtt)
	chName := ""
	if len(newest.channels) == 1 {
		chName = newest.channels[0]
	}
	if c.onRTTSample != nil {
		c.onRTTSample(now, rtt, chName)
	}
	if c.tracer.Enabled() {
		c.tracer.Emit(telemetry.Event{
			Layer: telemetry.LayerTransport, Name: telemetry.EvAck,
			Flow: uint32(c.flow), Seq: newest.seq, Bytes: newlyBytes,
		})
		c.tracer.Emit(telemetry.Event{
			Layer: telemetry.LayerTransport, Name: telemetry.EvRTT,
			Channel: chName, Flow: uint32(c.flow), Seq: newest.seq, Dur: rtt,
		})
		c.tracer.Count("transport_acked_bytes_total", float64(newlyBytes), "flow", flowLabel(c.flow))
	}

	var rate float64
	if dt := now - newest.deliveredTimeAtSent; dt > 0 {
		rate = float64(c.delivered-newest.deliveredAtSent) * 8 / dt.Seconds()
	}
	c.cfg.CC.OnAck(cc.AckEvent{
		Now:          now,
		RTT:          rtt,
		Bytes:        newlyBytes,
		InFlight:     c.bytesInFlight,
		DeliveryRate: rate,
		Channel:      chName,
		AppLimited:   newest.appLimited,
	})
	c.traceCC(c.cfg.CC)

	c.recycleAcked()
	c.detectLosses(now)

	// Fresh forward progress: push the timeout out.
	c.rtoTimer.Stop()
	c.armRTO()
	c.trySend()
}

// recycleAcked returns this ack event's retired tracking records and
// their chunks to the free lists. An acknowledged chunk can never be
// retransmitted again, so both are dead once the controller has been
// told about the ack.
func (c *Conn) recycleAcked() {
	for i, info := range c.ackedInfos {
		c.sched.freeChunk(info.chunk)
		c.freeSentInfo(info)
		c.ackedInfos[i] = nil
	}
	c.ackedInfos = c.ackedInfos[:0]
}

// updateRTT folds one sample into the RFC 6298 estimators.
func (c *Conn) updateRTT(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	if c.srtt == 0 {
		c.srtt = rtt
		c.rttvar = rtt / 2
		return
	}
	diff := c.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	c.rttvar = (3*c.rttvar + diff) / 4
	c.srtt = (7*c.srtt + rtt) / 8
}

// detectLosses applies the per-channel packet-threshold rule: an
// outstanding packet is lost once ackAfterGap later packets have been
// acknowledged on every channel that carried a copy of it.
//
// Per-channel send indexes are assigned in seq order, so a packet with
// seq above largestAcked has a higher index on every channel it rode
// than any acked packet does — it can never satisfy the threshold.
// The scan therefore stops at the first such packet and keeps the
// whole tail, turning the common dense-ack case into O(acked window)
// instead of O(flight size).
func (c *Conn) detectLosses(now time.Duration) {
	var lostBytes int
	order := c.sentOrder
	remaining := order[:0]
	for i, info := range order {
		if info.seq > c.largestAcked {
			remaining = append(remaining, order[i:]...)
			break
		}
		lost := len(info.chIDs) > 0
		for j, id := range info.chIDs {
			if c.ackedIndex[id] < info.chIdx[j]+ackAfterGap {
				lost = false
				break
			}
		}
		if !lost {
			remaining = append(remaining, info)
			continue
		}
		lostBytes += info.size
		c.requeue(info)
	}
	c.sentOrder = remaining
	if lostBytes > 0 {
		c.notifyLoss(now, lostBytes)
	}
}
