package transport

import "testing"

// FuzzRangeSetOps drives the SACK range set with an arbitrary script
// of insertions, checking the structural invariants after each step.
func FuzzRangeSetOps(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{10, 10, 10, 0, 255})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 512 {
			script = script[:512]
		}
		var r rangeSet
		covered := map[uint64]bool{}
		for i := 0; i+1 < len(script); i += 2 {
			lo, hi := uint64(script[i]), uint64(script[i])+uint64(script[i+1]%16)
			var expect uint64
			for v := lo; v <= hi; v++ {
				if !covered[v] {
					expect++
					covered[v] = true
				}
			}
			if got := r.addRange(lo, hi); got != expect {
				t.Fatalf("addRange(%d,%d) newly=%d want %d", lo, hi, got, expect)
			}
			for j, rg := range r.rs {
				if rg.hi < rg.lo {
					t.Fatalf("inverted range %+v", rg)
				}
				if j > 0 && rg.lo <= r.rs[j-1].hi+1 {
					t.Fatalf("unmerged adjacency at %d: %v", j, r.rs)
				}
			}
		}
		for v := range covered {
			if !r.contains(v) {
				t.Fatalf("lost value %d", v)
			}
		}
	})
}
