package transport

// Robustness tests: acknowledgment loss, delayed-ack timing, handshake
// exhaustion, per-channel loss detection precision, and accounting.

import (
	"testing"
	"time"

	"hvc/internal/cc"
	"hvc/internal/channel"
	"hvc/internal/sim"
	"hvc/internal/steering"
	"hvc/internal/trace"
)

// lossyBothWays builds a single channel whose both directions drop
// packets (so acknowledgments are lost too).
func lossyBothWays(loop *sim.Loop, loss float64) *channel.Channel {
	return channel.New(loop, channel.Config{
		Props: channel.Properties{
			Name: channel.NameEMBB, BaseRTT: 30 * time.Millisecond,
			Bandwidth: 40e6, LossProb: loss,
		},
		DownTrace: trace.Constant("l", 30*time.Millisecond, 40e6),
	})
}

func TestTransferSurvivesAckLoss(t *testing.T) {
	loop := sim.NewLoop(31)
	ch := lossyBothWays(loop, 0.08)
	g := channel.NewGroup(ch)
	client := NewEndpoint(loop, g, channel.A)
	server := NewEndpoint(loop, g, channel.B)

	var got []Message
	server.Listen(func() Config {
		return Config{CC: cc.NewCubic(), Steer: steering.NewSingle(ch)}
	}, func(c *Conn) {
		c.OnMessage(func(_ *Conn, m Message) { got = append(got, m) })
	})
	c := client.Dial(Config{CC: cc.NewCubic(), Steer: steering.NewSingle(ch)})
	const size = 400_000
	c.SendMessage(c.NewStream(), 0, size, nil)
	loop.RunUntil(2 * time.Minute)

	if len(got) != 1 || got[0].Size != size {
		t.Fatalf("transfer failed under bidirectional loss: %v", got)
	}
	// Cumulative SACK ranges mean lost acks are repaired by later
	// acks; the retransmit count should reflect data loss (~8%), not
	// data+ack loss.
	sent := int(c.Stats().BytesSent / 1456)
	if frac := float64(c.Stats().Retransmits) / float64(sent); frac > 0.25 {
		t.Fatalf("retransmit fraction %.2f implausibly high", frac)
	}
}

func TestDelayedAckTimerFlushes(t *testing.T) {
	// A single packet (below AckEvery=2) must still be acknowledged
	// within MaxAckDelay, letting the sender finish.
	w := newWorld(32)
	var got []Message
	w.listen(serverCfg(w), &got)
	c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.embbOnly(), MaxAckDelay: 40 * time.Millisecond})
	c.SendMessage(c.NewStream(), 0, 500, nil) // one packet
	w.loop.RunUntil(time.Second)

	if len(got) != 1 {
		t.Fatal("message not delivered")
	}
	if c.Stats().BytesAcked != 500 {
		t.Fatalf("BytesAcked = %d, want 500 (delayed ack must fire)", c.Stats().BytesAcked)
	}
	if c.Stats().RTOs != 0 {
		t.Fatal("delayed ack should beat the RTO")
	}
}

func TestAckEveryOneAcksEagerly(t *testing.T) {
	w := newWorld(33)
	var got []Message
	w.listen(func() Config {
		return Config{CC: cc.NewCubic(), Steer: w.embbOnly(), AckEvery: 1}
	}, &got)
	c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.embbOnly(), AckEvery: 1})
	c.SendMessage(c.NewStream(), 0, 50_000, nil)
	w.loop.RunUntil(5 * time.Second)
	if len(got) != 1 {
		t.Fatal("message not delivered")
	}
	// Every data packet produces one ack: reverse packet count should
	// be close to the forward data packet count.
	dataPkts := w.group.Get(channel.NameEMBB).Stats(channel.A).Sent
	ackPkts := w.group.Get(channel.NameEMBB).Stats(channel.B).Sent +
		w.group.Get(channel.NameURLLC).Stats(channel.B).Sent
	if ackPkts < dataPkts/2 {
		t.Fatalf("AckEvery=1 produced %d acks for %d data packets", ackPkts, dataPkts)
	}
}

func TestHandshakeGivesUpAfterRetries(t *testing.T) {
	// No listener: the client must retry with backoff, then close
	// itself rather than retry forever.
	w := newWorld(34)
	c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.embbOnly()})
	w.loop.RunUntil(2 * time.Minute)
	if c.Established() {
		t.Fatal("established with no listener")
	}
	if !c.closed {
		t.Fatal("conn should have closed after SYN retries exhausted")
	}
	if w.loop.Pending() != 0 {
		t.Fatalf("%d events still pending after give-up (leak?)", w.loop.Pending())
	}
}

func TestPerChannelLossDetectionIsPrecise(t *testing.T) {
	// URLLC drops 20% of packets; eMBB drops none. With per-channel
	// detection, retransmits should track URLLC's losses only, and
	// everything still arrives.
	loop := sim.NewLoop(35)
	embb := channel.EMBBFixed(loop)
	urllc := channel.New(loop, channel.Config{
		Props: channel.Properties{
			Name: channel.NameURLLC, BaseRTT: 5 * time.Millisecond,
			Bandwidth: 2e6, LossProb: 0.2,
		},
		DownTrace:  trace.URLLC(),
		QueueBytes: 64 << 10,
	})
	g := channel.NewGroup(embb, urllc)
	client := NewEndpoint(loop, g, channel.A)
	server := NewEndpoint(loop, g, channel.B)

	var got []Message
	server.Listen(func() Config {
		return Config{CC: cc.NewCubic(), Steer: steering.NewDChannel(g, channel.B, steering.DChannelConfig{})}
	}, func(c *Conn) {
		c.OnMessage(func(_ *Conn, m Message) { got = append(got, m) })
	})
	c := client.Dial(Config{CC: cc.NewCubic(), Steer: steering.NewDChannel(g, channel.A, steering.DChannelConfig{})})
	st := c.NewStream()
	for i := 0; i < 40; i++ {
		i := i
		loop.At(time.Duration(i)*100*time.Millisecond, func() {
			c.SendMessage(st, 0, 10_000, i)
		})
	}
	loop.RunUntil(30 * time.Second)

	if len(got) != 40 {
		t.Fatalf("delivered %d/40 despite retransmission", len(got))
	}
	urllcDropped := urllc.Stats(channel.A).DroppedRandom
	if urllcDropped == 0 {
		t.Fatal("test needs URLLC losses to mean anything")
	}
	// Retransmits should be within a small factor of actual losses
	// (timer-based recovery can retransmit a round's worth extra).
	if c.Stats().Retransmits > 4*urllcDropped+20 {
		t.Fatalf("retransmits %d far exceed real losses %d (spurious detection?)",
			c.Stats().Retransmits, urllcDropped)
	}
}

func TestStatsMessageCounts(t *testing.T) {
	w := newWorld(36)
	var got []Message
	w.listen(serverCfg(w), &got)
	c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.embbOnly()})
	st := c.NewStream()
	for i := 0; i < 5; i++ {
		c.SendMessage(st, 0, 2_000, i)
	}
	w.loop.RunUntil(5 * time.Second)
	if c.Stats().MsgsSent != 5 {
		t.Fatalf("MsgsSent = %d", c.Stats().MsgsSent)
	}
	srv := serverConn(t, w)
	if srv.Stats().MsgsDelivered != 5 {
		t.Fatalf("MsgsDelivered = %d", srv.Stats().MsgsDelivered)
	}
	if len(got) != 5 {
		t.Fatalf("delivered %d", len(got))
	}
	// IDs are per-connection and sequential from 1.
	for i, m := range got {
		if m.Data != i {
			t.Fatalf("order violated: got[%d].Data = %v", i, m.Data)
		}
	}
}

func TestMessageDataRoundTripsOpaque(t *testing.T) {
	type payload struct{ A, B string }
	w := newWorld(37)
	var got []Message
	w.listen(serverCfg(w), &got)
	c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.embbOnly()})
	want := &payload{A: "x", B: "y"}
	c.SendMessage(c.NewStream(), 0, 5_000, want)
	w.loop.RunUntil(2 * time.Second)
	if len(got) != 1 {
		t.Fatal("not delivered")
	}
	if got[0].Data != want {
		t.Fatalf("Data pointer did not round-trip: %v", got[0].Data)
	}
}

func TestRTOBackoffGrowsAndResets(t *testing.T) {
	loop := sim.NewLoop(38)
	// A channel that is dead for 3 seconds then recovers.
	tr := &trace.Trace{Name: "dead-then-alive", Samples: []trace.Sample{
		{At: 0, RTT: 20 * time.Millisecond, Rate: 10e6},
		{At: 300 * time.Millisecond, RTT: 20 * time.Millisecond, Rate: 0},
		{At: 3 * time.Second, RTT: 20 * time.Millisecond, Rate: 10e6},
		{At: 5 * time.Minute, RTT: 20 * time.Millisecond, Rate: 10e6},
	}}
	ch := channel.New(loop, channel.Config{
		Props:      channel.Properties{Name: "flappy", BaseRTT: 20 * time.Millisecond, Bandwidth: 10e6},
		DownTrace:  tr,
		QueueBytes: 4 << 10, // tiny: the dead period drops, not queues
	})
	g := channel.NewGroup(ch)
	client := NewEndpoint(loop, g, channel.A)
	server := NewEndpoint(loop, g, channel.B)

	var got []Message
	server.Listen(func() Config {
		return Config{CC: cc.NewCubic(), Steer: steering.NewSingle(ch)}
	}, func(c *Conn) {
		c.OnMessage(func(_ *Conn, m Message) { got = append(got, m) })
	})
	c := client.Dial(Config{CC: cc.NewCubic(), Steer: steering.NewSingle(ch)})
	c.SendMessage(c.NewStream(), 0, 2<<20, nil) // spans the outage
	loop.RunUntil(60 * time.Second)

	if len(got) != 1 {
		t.Fatalf("message not delivered after channel recovery (RTOs=%d)", c.Stats().RTOs)
	}
	if c.Stats().RTOs == 0 {
		t.Fatal("a 2.7 s outage must fire at least one RTO")
	}
	if c.rtoBackoff != 0 {
		t.Fatalf("rtoBackoff = %d after recovery, want 0", c.rtoBackoff)
	}
}

func TestSRTTApproximatesPathRTT(t *testing.T) {
	w := newWorld(39)
	var got []Message
	w.listen(serverCfg(w), &got)
	c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.embbOnly()})
	st := c.NewStream()
	for i := 0; i < 20; i++ {
		i := i
		w.loop.At(time.Duration(i)*200*time.Millisecond, func() {
			c.SendMessage(st, 0, 3_000, nil)
		})
	}
	w.loop.RunUntil(10 * time.Second)
	// eMBB RTT is 50 ms; the ack may return via URLLC (~27 ms total)
	// and delayed acks add up to 25 ms. SRTT must sit in that band.
	if c.SRTT() < 20*time.Millisecond || c.SRTT() > 110*time.Millisecond {
		t.Fatalf("SRTT %v outside the plausible band", c.SRTT())
	}
}

func TestListenValidation(t *testing.T) {
	w := newWorld(40)
	for name, fn := range map[string]func(){
		"nil factory": func() { w.server.Listen(nil, func(*Conn) {}) },
		"nil accept":  func() { w.server.Listen(func() Config { return Config{} }, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}
