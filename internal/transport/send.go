package transport

import (
	"time"

	"hvc/internal/cc"
	"hvc/internal/packet"
	"hvc/internal/telemetry"
)

// message is a queued application message on the send side.
type message struct {
	id     uint64
	stream uint32
	prio   packet.Priority
	size   int
	data   any
	sentAt time.Duration
	offset int // next byte to packetize
}

// fragment is the wire payload of one data packet: a contiguous byte
// range of a message. The receiver reassembles fragments by (MsgID,
// Offset); retransmissions carry fresh sequence numbers but identical
// fragment coordinates.
type fragment struct {
	stream     uint32
	msgID      uint64
	offset     int
	length     int
	total      int
	prio       packet.Priority
	sentAt     time.Duration // when the message entered the send queue
	data       any           // attached to the final fragment only
	unreliable bool
}

// chunk pairs a fragment with retransmission bookkeeping.
type chunk struct {
	frag fragment
}

// scheduler orders outgoing work: strict priority across messages,
// FIFO within a priority level, retransmissions ahead of fresh data at
// the same priority. It also owns the connection's message and chunk
// free lists, so steady-state sending recycles both.
type scheduler struct {
	// retx holds chunks awaiting retransmission, in loss-detection
	// order.
	retx []*chunk
	// msgs holds partially sent messages per priority bucket.
	msgs map[packet.Priority][]*message
	// prios tracks nonempty buckets in ascending priority.
	prios []packet.Priority

	freeMsgs   []*message
	freeChunks []*chunk
}

func newScheduler() *scheduler {
	return &scheduler{msgs: make(map[packet.Priority][]*message)}
}

// newMsg returns a recycled (or fresh) zeroed message.
func (s *scheduler) newMsg() *message {
	if n := len(s.freeMsgs); n > 0 {
		m := s.freeMsgs[n-1]
		s.freeMsgs[n-1] = nil
		s.freeMsgs = s.freeMsgs[:n-1]
		return m
	}
	return &message{}
}

// freeMsg recycles a fully packetized message.
func (s *scheduler) freeMsg(m *message) {
	*m = message{}
	s.freeMsgs = append(s.freeMsgs, m)
}

// newChunk returns a recycled (or fresh) chunk; the caller overwrites
// frag entirely.
func (s *scheduler) newChunk() *chunk {
	if n := len(s.freeChunks); n > 0 {
		ch := s.freeChunks[n-1]
		s.freeChunks[n-1] = nil
		s.freeChunks = s.freeChunks[:n-1]
		return ch
	}
	return new(chunk)
}

// freeChunk recycles a chunk whose data no component references any
// more: its packet was acknowledged, or the flow is unreliable and the
// packet left the sender. A chunk awaiting retransmission must not be
// freed — it is owned by the retx queue.
func (s *scheduler) freeChunk(ch *chunk) {
	ch.frag = fragment{} // release the message data reference
	s.freeChunks = append(s.freeChunks, ch)
}

func (s *scheduler) push(m *message) {
	q := s.msgs[m.prio]
	if len(q) == 0 {
		s.insertPrio(m.prio)
	}
	s.msgs[m.prio] = append(q, m)
}

func (s *scheduler) insertPrio(p packet.Priority) {
	for i, q := range s.prios {
		if q == p {
			return
		}
		if q > p {
			s.prios = append(s.prios[:i], append([]packet.Priority{p}, s.prios[i:]...)...)
			return
		}
	}
	s.prios = append(s.prios, p)
}

func (s *scheduler) pushRetx(ch *chunk) { s.retx = append(s.retx, ch) }

func (s *scheduler) empty() bool {
	if len(s.retx) > 0 {
		return false
	}
	for _, q := range s.msgs {
		if len(q) > 0 {
			return false
		}
	}
	return true
}

// next carves the next chunk of at most mss bytes, or nil when idle.
func (s *scheduler) next(mss int, unreliable bool) *chunk {
	if len(s.retx) > 0 {
		ch := s.retx[0]
		s.retx = s.retx[1:]
		return ch
	}
	for len(s.prios) > 0 {
		p := s.prios[0]
		q := s.msgs[p]
		if len(q) == 0 {
			s.prios = s.prios[1:]
			continue
		}
		m := q[0]
		n := m.size - m.offset
		if n > mss {
			n = mss
		}
		ch := s.newChunk()
		ch.frag = fragment{
			stream:     m.stream,
			msgID:      m.id,
			offset:     m.offset,
			length:     n,
			total:      m.size,
			prio:       m.prio,
			sentAt:     m.sentAt,
			unreliable: unreliable,
		}
		m.offset += n
		if m.offset >= m.size {
			ch.frag.data = m.data
			s.msgs[p] = q[1:]
			s.freeMsg(m)
		}
		return ch
	}
	return nil
}

// sentInfo tracks one in-flight data packet. chIDs/chIdx are parallel
// slices: the interned ID of each channel that carried a copy, and the
// packet's per-channel send index on it (for loss detection).
type sentInfo struct {
	seq                 uint64
	sub                 *subflow // multipath only
	size                int      // payload bytes
	chunk               *chunk
	sentAt              time.Duration
	channels            []string // channels that carried copies
	chIDs               []int
	chIdx               []int64
	deliveredAtSent     int64
	deliveredTimeAtSent time.Duration
	appLimited          bool
}

// trySend transmits as much queued data as the congestion window and
// pacing allow.
func (c *Conn) trySend() {
	if c.subflows != nil {
		c.tryMultiSend()
		return
	}
	if c.closed || !c.established {
		return
	}
	for {
		if c.sched.empty() {
			return
		}
		if !c.cfg.Unreliable {
			if c.bytesInFlight >= c.cfg.CC.CWND() {
				return // an ack will reopen the window
			}
			if rate := c.cfg.CC.PacingRate(); rate > 0 {
				now := c.loop.Now()
				if c.pacingNext > now {
					if !c.pacingTimer.Active() {
						c.pacingTimer = c.loop.At(c.pacingNext, c.trySendFn)
					}
					return
				}
			}
		}
		ch := c.sched.next(c.cfg.MSS, c.cfg.Unreliable)
		if ch == nil {
			return
		}
		if !c.sendChunk(ch) {
			c.backoffSend()
			return
		}
	}
}

// entryDropBackoff is how long a sender waits after a channel refused a
// packet at entry before offering more data.
const entryDropBackoff = 10 * time.Millisecond

// backoffSend schedules another send attempt after a channel refused a
// packet at entry. The queue is full, so retrying at the same instant
// cannot succeed (nothing drains in zero time); normally the sender
// backs off briefly, the local-queue analogue of a blocked qdisc. When
// every channel of the group is down, though, no amount of polling can
// succeed either — the connection parks itself on the group's
// wake-on-up list and retries the instant an outage clears, so a
// blackout costs zero retry events however long it lasts.
func (c *Conn) backoffSend() {
	if c.ep.group.AllDown() {
		if !c.wakePending {
			c.wakePending = true
			c.ep.group.WakeOnUp(c.wakeFn)
		}
		return
	}
	if !c.retryTimer.Active() {
		c.retryTimer = c.loop.After(entryDropBackoff, c.trySendFn)
	}
}

// sendChunk packetizes and transmits one chunk, reporting whether any
// channel accepted the packet.
func (c *Conn) sendChunk(ch *chunk) bool {
	now := c.loop.Now()
	p := c.newPacket(packet.Data, ch.frag.length+packet.HeaderBytes)
	c.nextSeq++
	p.Seq = c.nextSeq
	p.Priority = ch.frag.prio
	p.MsgID = ch.frag.msgID
	p.MsgRemaining = ch.frag.total - ch.frag.offset - ch.frag.length
	// The packet owns a copy of the fragment in a recycled payload box.
	frag := c.ep.fragBox(p)
	*frag = ch.frag
	p.Payload = frag

	var carried []string
	var info *sentInfo
	if c.cfg.Unreliable {
		c.ep.ctrlNames = c.ep.transmit(c, p, c.ep.ctrlNames[:0])
		carried = c.ep.ctrlNames
	} else {
		info = c.newSentInfo()
		info.channels = c.ep.transmit(c, p, info.channels[:0])
		carried = info.channels
	}
	c.stats.BytesSent += int64(ch.frag.length)
	if c.tracer.Enabled() {
		c.tracer.Emit(telemetry.Event{
			Layer: telemetry.LayerTransport, Name: telemetry.EvSend,
			Channel: telemetry.JoinNames(carried), Flow: uint32(c.flow),
			Seq: p.Seq, Msg: p.MsgID, Bytes: ch.frag.length,
		})
		c.tracer.Count("transport_sent_bytes_total", float64(ch.frag.length), "flow", flowLabel(c.flow))
	}

	if c.cfg.Unreliable {
		// Fire and forget; entry drops are just loss, and the chunk is
		// done the moment it leaves (no retransmission state).
		c.sched.freeChunk(ch)
		return true
	}

	size := ch.frag.length
	info.seq = p.Seq
	info.size = size
	info.chunk = ch
	info.sentAt = now
	info.deliveredAtSent = c.delivered
	info.deliveredTimeAtSent = c.deliveredTime
	for _, name := range carried {
		id := c.chanID(name)
		c.sentIndex[id]++
		info.chIDs = append(info.chIDs, id)
		info.chIdx = append(info.chIdx, c.sentIndex[id])
	}
	c.bytesInFlight += size
	c.cfg.CC.OnSent(now, size)
	info.appLimited = c.sched.empty()

	if rate := c.cfg.CC.PacingRate(); rate > 0 {
		interval := time.Duration(float64(p.Size) * 8 / rate * float64(time.Second))
		if c.pacingNext < now {
			c.pacingNext = now
		}
		c.pacingNext += interval
	}
	if len(carried) == 0 {
		// Every copy was dropped at channel entry: the packet will
		// never be acked, and no later ack on any channel can pass
		// it. Declare it lost at once — entry drops are queue
		// overflow, i.e. a congestion signal.
		c.requeue(info)
		c.notifyLoss(now, size)
		return false
	}
	c.sentOrder = append(c.sentOrder, info)
	c.armRTO()
	return true
}

// rto returns the current retransmission timeout.
func (c *Conn) rto() time.Duration {
	var d time.Duration
	if c.srtt == 0 {
		d = time.Second
	} else {
		d = c.srtt + 4*c.rttvar + c.cfg.MaxAckDelay
	}
	if d < c.cfg.MinRTO {
		d = c.cfg.MinRTO
	}
	d <<= c.rtoBackoff
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

func (c *Conn) armRTO() {
	if len(c.sentOrder) == 0 {
		c.rtoTimer.Stop()
		return
	}
	if c.rtoTimer.Active() {
		return
	}
	c.rtoTimer = c.loop.After(c.rto(), c.onRTOFn)
}

func (c *Conn) onRTO() {
	if c.subflows != nil {
		c.onMultiRTO()
		return
	}
	if c.closed {
		return
	}
	if len(c.sentOrder) == 0 {
		// Nothing outstanding, but the scheduler may still hold
		// requeued chunks (a long outage drains the in-flight set
		// through entry drops faster than the retry timer refills it).
		// Kick the send path so recovery never depends on a timer that
		// might not be pending.
		c.trySend()
		return
	}
	c.stats.RTOs++
	c.rtoBackoff++
	if c.rtoBackoff > 6 {
		c.rtoBackoff = 6
	}
	c.tracer.Emit(telemetry.Event{
		Layer: telemetry.LayerTransport, Name: telemetry.EvRTO,
		Flow: uint32(c.flow), Value: float64(c.rtoBackoff),
	})
	c.tracer.Count("transport_rtos_total", 1, "flow", flowLabel(c.flow))
	// Declare everything outstanding lost and rebuild from the model.
	var lostBytes int
	for _, info := range c.sentOrder {
		lostBytes += info.size
		c.requeue(info)
	}
	c.sentOrder = c.sentOrder[:0]
	c.cfg.CC.OnLoss(cc.LossEvent{
		Now:     c.loop.Now(),
		Bytes:   lostBytes,
		Timeout: true,
	})
	c.traceCC(c.cfg.CC)
	c.rtoTimer = c.loop.After(c.rto(), c.onRTOFn)
	c.trySend()
}

// requeue returns an in-flight packet's chunk to the scheduler and
// recycles its tracking record; the caller removes info from sentOrder
// and must not use it after.
func (c *Conn) requeue(info *sentInfo) {
	c.bytesInFlight -= info.size
	c.stats.Retransmits++
	c.sched.pushRetx(info.chunk)
	if c.tracer.Enabled() {
		c.tracer.Emit(telemetry.Event{
			Layer: telemetry.LayerTransport, Name: telemetry.EvRetransmit,
			Channel: telemetry.JoinNames(info.channels), Flow: uint32(c.flow),
			Seq: info.seq, Msg: info.chunk.frag.msgID, Bytes: info.size,
		})
		c.tracer.Count("transport_retransmits_total", 1, "flow", flowLabel(c.flow))
	}
	c.freeSentInfo(info)
}

// notifyLoss reports non-timeout loss to congestion control, at most
// once per recovery window (TCP fast-recovery semantics: one window
// reduction per flight, however many packets it lost).
func (c *Conn) notifyLoss(now time.Duration, bytes int) {
	if c.largestAcked < c.recoverySeq {
		return // still recovering from the previous notification
	}
	c.recoverySeq = c.nextSeq
	c.cfg.CC.OnLoss(cc.LossEvent{
		Now:      now,
		Bytes:    bytes,
		InFlight: c.bytesInFlight,
	})
	c.traceCC(c.cfg.CC)
}
