package transport

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRangeSetAddSingle(t *testing.T) {
	var r rangeSet
	if !r.add(5) {
		t.Fatal("first add should be new")
	}
	if r.add(5) {
		t.Fatal("second add should be duplicate")
	}
	if !r.contains(5) || r.contains(4) || r.contains(6) {
		t.Fatal("contains broken")
	}
	if r.max() != 5 {
		t.Fatalf("max = %d", r.max())
	}
}

func TestRangeSetMergesAdjacent(t *testing.T) {
	var r rangeSet
	r.add(1)
	r.add(3)
	if len(r.rs) != 2 {
		t.Fatalf("want 2 ranges, got %v", r.rs)
	}
	r.add(2) // bridges them
	if len(r.rs) != 1 || r.rs[0] != (seqRange{1, 3}) {
		t.Fatalf("merge failed: %v", r.rs)
	}
}

func TestRangeSetAddRangeCountsNew(t *testing.T) {
	var r rangeSet
	if n := r.addRange(10, 19); n != 10 {
		t.Fatalf("newly = %d, want 10", n)
	}
	if n := r.addRange(15, 24); n != 5 {
		t.Fatalf("overlap newly = %d, want 5", n)
	}
	if n := r.addRange(10, 24); n != 0 {
		t.Fatalf("subsumed newly = %d, want 0", n)
	}
	if !r.covered(10, 24) || r.covered(9, 24) || r.covered(10, 25) {
		t.Fatal("covered broken")
	}
}

func TestRangeSetInvertedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inverted range should panic")
		}
	}()
	var r rangeSet
	r.addRange(5, 4)
}

func TestRangeSetEmpty(t *testing.T) {
	var r rangeSet
	if !r.empty() || r.max() != 0 || r.contains(0) {
		t.Fatal("zero value misbehaves")
	}
	if got := r.tail(5); len(got) != 0 {
		t.Fatalf("tail of empty = %v", got)
	}
}

func TestRangeSetTail(t *testing.T) {
	var r rangeSet
	for _, v := range []uint64{1, 3, 5, 7, 9} {
		r.add(v)
	}
	tl := r.tail(2)
	if len(tl) != 2 || tl[0] != (seqRange{7, 7}) || tl[1] != (seqRange{9, 9}) {
		t.Fatalf("tail = %v", tl)
	}
	// tail must be a copy.
	tl[0].lo = 100
	if r.rs[3].lo == 100 {
		t.Fatal("tail aliases internal storage")
	}
}

// Property: adding values in any order yields a set that contains
// exactly those values, with disjoint ascending non-adjacent ranges.
func TestRangeSetInvariants(t *testing.T) {
	f := func(vals []uint16) bool {
		var r rangeSet
		want := map[uint64]bool{}
		for _, v := range vals {
			r.add(uint64(v))
			want[uint64(v)] = true
		}
		// Structural invariants.
		for i, rg := range r.rs {
			if rg.hi < rg.lo {
				return false
			}
			if i > 0 && rg.lo <= r.rs[i-1].hi+1 {
				return false // overlapping or adjacent (should have merged)
			}
		}
		// Membership matches.
		for v := range want {
			if !r.contains(v) {
				return false
			}
		}
		var count uint64
		for _, rg := range r.rs {
			count += rg.hi - rg.lo + 1
		}
		return count == uint64(len(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// Property: addRange returns exactly the number of new values.
func TestRangeSetAddRangeCountProperty(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		var r rangeSet
		covered := map[uint64]bool{}
		for _, p := range pairs {
			lo, hi := uint64(p[0]), uint64(p[1])
			if hi < lo {
				lo, hi = hi, lo
			}
			var expect uint64
			for v := lo; v <= hi; v++ {
				if !covered[v] {
					expect++
					covered[v] = true
				}
			}
			if got := r.addRange(lo, hi); got != expect {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerPriorityAndFIFO(t *testing.T) {
	s := newScheduler()
	s.push(&message{id: 1, prio: 3, size: 100})
	s.push(&message{id: 2, prio: 0, size: 100})
	s.push(&message{id: 3, prio: 3, size: 100})
	var order []uint64
	for {
		ch := s.next(1456, false)
		if ch == nil {
			break
		}
		order = append(order, ch.frag.msgID)
	}
	if len(order) != 3 || order[0] != 2 || order[1] != 1 || order[2] != 3 {
		t.Fatalf("order = %v, want [2 1 3]", order)
	}
	if !s.empty() {
		t.Fatal("scheduler should be empty")
	}
}

func TestSchedulerChunking(t *testing.T) {
	s := newScheduler()
	s.push(&message{id: 1, prio: 0, size: 3000, data: "x"})
	var lens []int
	var lastData any
	for {
		ch := s.next(1456, false)
		if ch == nil {
			break
		}
		lens = append(lens, ch.frag.length)
		lastData = ch.frag.data
	}
	if len(lens) != 3 || lens[0] != 1456 || lens[1] != 1456 || lens[2] != 88 {
		t.Fatalf("chunk lengths = %v", lens)
	}
	if lastData != "x" {
		t.Fatal("data must ride the final fragment")
	}
}

func TestSchedulerRetxBeforeFresh(t *testing.T) {
	s := newScheduler()
	s.push(&message{id: 1, prio: 0, size: 100})
	s.pushRetx(&chunk{frag: fragment{msgID: 99, length: 50}})
	first := s.next(1456, false)
	if first.frag.msgID != 99 {
		t.Fatalf("retransmission should go first, got msg %d", first.frag.msgID)
	}
}
