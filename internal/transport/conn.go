package transport

import (
	"fmt"
	"strconv"
	"time"

	"hvc/internal/cc"
	"hvc/internal/invariant"
	"hvc/internal/packet"
	"hvc/internal/sim"
	"hvc/internal/steering"
	"hvc/internal/telemetry"
)

// Config parameterizes one connection.
type Config struct {
	// CC is the congestion-control algorithm; required for reliable
	// connections, ignored for unreliable ones.
	CC cc.Algorithm
	// Steer picks the channel for every outgoing packet; required.
	Steer steering.Policy
	// FlowPriority is stamped on every packet of the flow; steering
	// policies use it to keep bulk flows off constrained channels.
	FlowPriority packet.Priority
	// Unreliable disables acknowledgments, retransmission, and
	// congestion control: a best-effort message flow for real-time
	// media. Senders pace themselves (the video app sends one frame
	// per tick).
	Unreliable bool
	// Multipath enables MPTCP-style operation: one subflow per channel
	// in the group, each with its own congestion controller built by
	// NewCC, scheduled min-RTT-first. Steer is ignored for data in
	// this mode (the scheduler replaces it); CC is unused.
	Multipath bool
	// NewCC builds each multipath subflow's congestion controller.
	NewCC func() cc.Algorithm
	// MSS is the maximum payload per packet; 0 means packet.MaxPayload.
	MSS int
	// AckEvery acknowledges every Nth data packet (plus a delayed-ack
	// timer); 0 means 2, TCP's default.
	AckEvery int
	// MaxAckDelay bounds how long an acknowledgment may be withheld;
	// 0 means 25 ms.
	MaxAckDelay time.Duration
	// MinRTO floors the retransmission timeout; 0 means 400 ms, loose
	// enough that trace latency spikes do not fire spurious timeouts.
	MinRTO time.Duration
	// MsgTimeout expires incomplete unreliable messages; 0 means 2 s.
	MsgTimeout time.Duration
	// RxDelay holds every packet arriving for this connection for the
	// given extra time before processing, emulating per-flow path-length
	// differences (e.g. a distant peer) on a shared channel set. The
	// contention arena uses it to give flows heterogeneous RTTs. Zero
	// (the default) adds no work to the receive path.
	RxDelay time.Duration
}

func (cfg *Config) fillDefaults() {
	if cfg.Steer == nil && !cfg.Multipath {
		panic("transport: Config.Steer is required")
	}
	if cfg.CC == nil && !cfg.Unreliable && !cfg.Multipath {
		panic("transport: Config.CC is required for reliable connections")
	}
	if cfg.Multipath && cfg.NewCC == nil {
		panic("transport: Config.NewCC is required for multipath connections")
	}
	if cfg.Multipath && cfg.Unreliable {
		panic("transport: Multipath is a reliable-transport mode")
	}
	if cfg.MSS == 0 {
		cfg.MSS = packet.MaxPayload
	}
	if cfg.MSS <= 0 || cfg.MSS > packet.MaxPayload {
		panic(fmt.Sprintf("transport: MSS %d out of range", cfg.MSS))
	}
	if cfg.AckEvery == 0 {
		cfg.AckEvery = 2
	}
	if cfg.MaxAckDelay == 0 {
		cfg.MaxAckDelay = 25 * time.Millisecond
	}
	if cfg.MinRTO == 0 {
		cfg.MinRTO = 400 * time.Millisecond
	}
	if cfg.MsgTimeout == 0 {
		cfg.MsgTimeout = 2 * time.Second
	}
}

// A Message is one application message delivered by a connection.
type Message struct {
	ID       uint64
	Stream   uint32
	Priority packet.Priority
	Size     int
	// Data is the opaque value the sender attached.
	Data any
	// SentAt is when the sender queued the message; DeliveredAt when
	// the final byte arrived. Their difference is the message latency
	// the experiments report.
	SentAt      time.Duration
	DeliveredAt time.Duration
}

// Latency is the message's queue-to-complete-delivery time.
func (m Message) Latency() time.Duration { return m.DeliveredAt - m.SentAt }

// Stats counts a connection's activity.
type Stats struct {
	BytesSent     int64 // payload bytes given to the network (incl. retransmits)
	BytesAcked    int64
	BytesReceived int64 // payload bytes received (excl. duplicates)
	Retransmits   int
	RTOs          int
	MsgsSent      int
	MsgsDelivered int
	MsgsExpired   int // unreliable messages that timed out incomplete
}

// A Conn is one flow between the two endpoints.
type Conn struct {
	ep     *Endpoint
	loop   *sim.Loop
	flow   packet.FlowID
	cfg    Config
	client bool

	established bool
	closed      bool
	synTries    int
	synTimer    sim.Timer

	// Send state. sentOrder is the in-flight set itself: tracking
	// records in send order (ascending seq), pruned as packets are
	// acked or declared lost. Acks arrive as ascending ranges, so one
	// merge-join pass replaces the per-packet map lookups that used to
	// dominate the bulk-transfer profile.
	sched         *scheduler
	nextSeq       uint64
	nextMsgID     uint64
	nextStream    uint32
	sentOrder     []*sentInfo
	bytesInFlight int
	// Channel names are interned to dense integer IDs so the
	// per-channel send/acked counters are slice indexes, not map keys.
	chanIDs       map[string]int
	chanNames     []string
	sentIndex     []int64 // per-channel send counter, indexed by channel ID
	ackedIndex    []int64 // per-channel highest acked counter
	pacingNext    time.Duration
	pacingTimer   sim.Timer
	retryTimer    sim.Timer
	rtoTimer      sim.Timer
	srtt, rttvar  time.Duration
	rtoBackoff    int
	delivered     int64
	deliveredTime time.Duration
	largestAcked  uint64
	recoverySeq   uint64

	// Receive state. doneMsgs records completed (delivered or expired)
	// message IDs: retransmissions carry fresh sequence numbers, so
	// after a long outage a second complete copy of a message can
	// arrive and would otherwise reassemble and deliver again. Message
	// IDs are allocated sequentially, so the set stays a handful of
	// ranges.
	rcvRanges  rangeSet
	doneMsgs   rangeSet
	ackPending int
	ackTimer   sim.Timer
	rcvMsgs    map[uint64]*rcvMsg

	// Multipath state (nil unless Config.Multipath).
	subflows     map[string]*subflow
	subflowOrder []string

	// Pre-bound timer callbacks: evaluating a method value allocates a
	// closure, so each recurring callback is materialized exactly once.
	trySendFn func()
	sendAckFn func()
	onRTOFn   func()
	sendSYNFn func()

	// wakePending dedups the group wake-on-up registration a total
	// blackout parks this connection on (see backoffSend); wakeFn is
	// its pre-bound callback.
	wakePending bool
	wakeFn      func()

	// Free lists and scratch buffers for the per-packet hot path.
	freeInfos   []*sentInfo
	freeRcvMsgs []*rcvMsg
	ackedInfos  []*sentInfo // acked-this-event scratch, freed in bulk

	onMessage   func(*Conn, Message)
	onRTTSample func(now, rtt time.Duration, ch string)

	tracer *telemetry.Tracer
	stats  Stats
}

func newConn(e *Endpoint, flow packet.FlowID, cfg Config, client bool) *Conn {
	cfg.fillDefaults()
	c := &Conn{
		ep:        e,
		loop:      e.loop,
		flow:      flow,
		cfg:       cfg,
		client:    client,
		sched:     newScheduler(),
		chanIDs:   make(map[string]int, 4),
		rcvMsgs:   make(map[uint64]*rcvMsg),
		nextMsgID: 1,
		tracer:    e.tracer,
	}
	c.trySendFn = c.trySend
	c.sendAckFn = c.sendAck
	c.onRTOFn = c.onRTO
	c.sendSYNFn = c.sendSYN
	c.wakeFn = func() {
		c.wakePending = false
		c.trySend()
	}
	if cfg.Multipath {
		c.initMultipath()
	}
	return c
}

// chanID interns a channel name, growing the per-channel counter
// slices alongside the name table. Channel groups hold a handful of
// channels, so the IDs stay dense and small.
func (c *Conn) chanID(name string) int {
	id, ok := c.chanIDs[name]
	if !ok {
		id = len(c.chanNames)
		c.chanIDs[name] = id
		c.chanNames = append(c.chanNames, name)
		c.sentIndex = append(c.sentIndex, 0)
		c.ackedIndex = append(c.ackedIndex, 0)
	}
	return id
}

// newSentInfo returns a recycled (or fresh) in-flight tracking record
// with empty channel slices.
func (c *Conn) newSentInfo() *sentInfo {
	if n := len(c.freeInfos); n > 0 {
		info := c.freeInfos[n-1]
		c.freeInfos[n-1] = nil
		c.freeInfos = c.freeInfos[:n-1]
		return info
	}
	return &sentInfo{}
}

// freeSentInfo recycles a tracking record no longer reachable from
// sentOrder or multipath share state.
func (c *Conn) freeSentInfo(info *sentInfo) {
	info.sub = nil
	info.chunk = nil
	info.channels = info.channels[:0]
	info.chIDs = info.chIDs[:0]
	info.chIdx = info.chIdx[:0]
	c.freeInfos = append(c.freeInfos, info)
}

// Flow returns the connection's flow ID.
func (c *Conn) Flow() packet.FlowID { return c.flow }

// Established reports whether the connection may transfer data.
func (c *Conn) Established() bool { return c.established }

// Stats returns a snapshot of the connection's counters.
func (c *Conn) Stats() Stats { return c.stats }

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (c *Conn) SRTT() time.Duration { return c.srtt }

// OnMessage installs the complete-message callback. Messages arriving
// before a callback is installed are dropped, so install it inside the
// listener's accept function.
func (c *Conn) OnMessage(fn func(*Conn, Message)) { c.onMessage = fn }

// OnRTTSample installs an observer of every RTT sample the connection
// takes, tagged with the channel the sampled data traveled on; Fig. 1b
// is produced from this hook.
func (c *Conn) OnRTTSample(fn func(now, rtt time.Duration, ch string)) { c.onRTTSample = fn }

// NewStream allocates a stream ID for subsequent messages. Stream IDs
// are advisory labels: each message is delivered independently,
// ordered only by its own completeness (HTTP/2-style framing without
// head-of-line coupling between streams).
func (c *Conn) NewStream() uint32 {
	c.nextStream++
	return c.nextStream
}

// SendMessage queues a message of size bytes with the given priority
// on the stream and returns its message ID. data travels opaquely and
// is handed to the receiver's OnMessage callback on completion.
func (c *Conn) SendMessage(stream uint32, prio packet.Priority, size int, data any) uint64 {
	if c.closed {
		panic("transport: SendMessage on closed connection")
	}
	if size <= 0 {
		panic(fmt.Sprintf("transport: message size %d must be positive", size))
	}
	id := c.nextMsgID
	c.nextMsgID++
	m := c.sched.newMsg()
	*m = message{
		id:     id,
		stream: stream,
		prio:   prio,
		size:   size,
		data:   data,
		sentAt: c.loop.Now(),
	}
	c.stats.MsgsSent++
	c.sched.push(m)
	c.trySend()
	return id
}

// Close tears the connection down: timers stop, queued data is
// discarded, and the endpoint forgets the flow. Close is idempotent.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.synTimer.Stop()
	c.pacingTimer.Stop()
	c.retryTimer.Stop()
	c.rtoTimer.Stop()
	c.ackTimer.Stop()
	c.ep.forget(c.flow)
}

// handshake ---------------------------------------------------------

// ctrlPayload rides Control packets for connection management.
type ctrlPayload struct {
	syn    bool
	synack bool
}

func (c *Conn) sendSYN() {
	if c.closed || c.established {
		return
	}
	c.synTries++
	if c.synTries > 6 {
		c.Close()
		return
	}
	p := c.newPacket(packet.Control, packet.HeaderBytes)
	p.Payload = ctrlBox(p, ctrlPayload{syn: true})
	c.transmitCtrl(p)
	c.synTimer = c.loop.After(time.Duration(c.synTries)*time.Second, c.sendSYNFn)
}

// ctrlBox reuses the pooled packet's payload box for a control payload
// when the type matches, else allocates one.
func ctrlBox(p *packet.Packet, v ctrlPayload) *ctrlPayload {
	pl, ok := p.Payload.(*ctrlPayload)
	if !ok {
		pl = new(ctrlPayload)
	}
	*pl = v
	return pl
}

func (c *Conn) handleCtrl(pl *ctrlPayload) {
	switch {
	case pl.syn:
		// Duplicate SYN for an existing conn: re-answer.
		p := c.newPacket(packet.Control, packet.HeaderBytes)
		p.Payload = ctrlBox(p, ctrlPayload{synack: true})
		c.transmitCtrl(p)
	case pl.synack:
		if !c.established {
			c.established = true
			c.synTimer.Stop()
			c.trySend()
		}
	}
}

// handlePacket dispatches one arriving packet.
func (c *Conn) handlePacket(p *packet.Packet) {
	if c.closed {
		return
	}
	switch pl := p.Payload.(type) {
	case *ctrlPayload:
		c.handleCtrl(pl)
	case *fragment:
		c.handleData(p, pl)
	case *ackPayload:
		c.handleAck(p, pl)
	default:
		panic(fmt.Sprintf("transport: flow %d: unknown payload %T", c.flow, p.Payload))
	}
}

// transmitCtrl sends a control or acknowledgment packet through the
// steering policy, or on the initial subflow in multipath mode.
func (c *Conn) transmitCtrl(p *packet.Packet) {
	if c.subflows != nil {
		c.multiTransmitCtrl(p)
		return
	}
	c.ep.ctrlNames = c.ep.transmit(c, p, c.ep.ctrlNames[:0])
}

// traceCC records the congestion controller's post-event state: a
// cwnd trace event (and pacing, for paced algorithms) tagged with the
// algorithm name, plus the cc_* gauges.
// flowLabel renders a flow ID as a metric label value.
func flowLabel(f packet.FlowID) string { return strconv.FormatUint(uint64(f), 10) }

func (c *Conn) traceCC(alg cc.Algorithm) {
	// traceCC runs after every congestion-controller event, so it is the
	// one place the cwnd/inflight invariants cover every algorithm.
	if invariant.Enabled() {
		c.checkCC(alg)
	}
	if c.tracer == nil {
		return
	}
	flow := flowLabel(c.flow)
	cwnd := float64(alg.CWND())
	c.tracer.Emit(telemetry.Event{
		Layer: telemetry.LayerCC, Name: telemetry.EvCwnd,
		Flow: uint32(c.flow), Value: cwnd, Detail: alg.Name(),
	})
	c.tracer.SetGauge("cc_cwnd_bytes", cwnd, "flow", flow, "alg", alg.Name())
	if rate := alg.PacingRate(); rate > 0 {
		c.tracer.Emit(telemetry.Event{
			Layer: telemetry.LayerCC, Name: telemetry.EvPacing,
			Flow: uint32(c.flow), Value: rate, Detail: alg.Name(),
		})
		c.tracer.SetGauge("cc_pacing_bps", rate, "flow", flow, "alg", alg.Name())
	}
}

// maxSaneCwnd bounds any congestion window the simulator can
// legitimately reach: 1 GiB is orders of magnitude above every
// channel's bandwidth-delay product, so crossing it means runaway
// window arithmetic, not congestion control.
const maxSaneCwnd = 1 << 30

// checkCC asserts the congestion-control accounting invariants after a
// controller event: the window stays positive and sane, in-flight
// bytes never go negative, and an empty in-flight table accounts for
// exactly zero bytes (the cheap O(1) cross-check that catches
// double-subtracts and leaks in the sent-info lifecycle).
func (c *Conn) checkCC(alg cc.Algorithm) {
	if cwnd := alg.CWND(); cwnd <= 0 || cwnd > maxSaneCwnd {
		invariant.Failf("transport", "cwnd-bounds",
			"flow %d: %s cwnd %d outside (0, %d]", c.flow, alg.Name(), cwnd, maxSaneCwnd)
	}
	if rate := alg.PacingRate(); rate < 0 {
		invariant.Failf("transport", "cwnd-bounds",
			"flow %d: %s negative pacing rate %v", c.flow, alg.Name(), rate)
	}
	if c.bytesInFlight < 0 {
		invariant.Failf("transport", "inflight-bytes",
			"flow %d: negative bytes in flight %d", c.flow, c.bytesInFlight)
	}
	if len(c.sentOrder) == 0 && c.subflows == nil && c.bytesInFlight != 0 {
		invariant.Failf("transport", "inflight-bytes",
			"flow %d: empty in-flight set accounts for %d bytes", c.flow, c.bytesInFlight)
	}
}

// newPacket builds a packet stamped with the connection's identity.
// Packets come from the group's pool; the previous use's payload box is
// left attached so the caller can recycle it when the type matches.
func (c *Conn) newPacket(kind packet.Kind, size int) *packet.Packet {
	p := c.ep.pool.Get()
	box := p.Payload
	*p = packet.Packet{
		ID:           c.ep.ids.Next(),
		Flow:         c.flow,
		Kind:         kind,
		Size:         size,
		FlowPriority: c.cfg.FlowPriority,
		SentAt:       c.loop.Now(),
	}
	p.Payload = box
	return p
}
