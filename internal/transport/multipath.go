package transport

import (
	"fmt"
	"time"

	"hvc/internal/cc"
	"hvc/internal/channel"
	"hvc/internal/packet"
)

// Multipath mode implements the MPTCP/MPQUIC-style baseline the paper
// contrasts against (§1, §3.2): one subflow per virtual channel, each
// with its own congestion controller and RTT estimator, and a min-RTT
// packet scheduler that fills whichever subflow has window space and
// the lowest smoothed RTT — the default MPTCP scheduler.
//
// This design aggregates bandwidth across channels but is blind to
// what the channels are *for*: it happily fills URLLC (whose RTT is
// always the lowest) with bulk bytes, which is exactly the behaviour
// the paper criticizes — "MPTCP ... will congest a low bandwidth
// URLLC link due to its extremely low RTT value".

// A subflow is one channel's share of a multipath connection.
type subflow struct {
	ch       *channel.Channel
	alg      cc.Algorithm
	inflight int
	srtt     time.Duration
	// recoverySeq gates loss notifications per subflow, as each
	// controller runs its own recovery.
	recoverySeq uint64
}

// initMultipath builds one subflow per channel of the endpoint's
// group. Called from newConn when cfg.Multipath is set.
func (c *Conn) initMultipath() {
	if c.cfg.NewCC == nil {
		panic("transport: Multipath requires Config.NewCC")
	}
	if c.cfg.Unreliable {
		panic("transport: Multipath is a reliable-transport mode")
	}
	c.subflows = make(map[string]*subflow)
	for _, ch := range c.ep.group.All() {
		c.subflows[ch.Name()] = &subflow{ch: ch, alg: c.cfg.NewCC()}
		c.subflowOrder = append(c.subflowOrder, ch.Name())
	}
}

// pickSubflow returns the subflow to fill next: the up subflow with
// window space and the lowest *measured* smoothed RTT. A subflow with
// no RTT sample yet — fresh, or newly recovered from an outage — must
// not win the min-RTT race on a zero srtt (it would capture the whole
// scheduler until its first ack); instead it is probed with a single
// chunk at a time until an ack measures it. The probe takes precedence
// so light traffic still reaches unmeasured paths, but with at most
// one chunk outstanding it cannot starve the measured ones. Returns
// nil when nothing is sendable.
func (c *Conn) pickSubflow() *subflow {
	var best, probe *subflow
	for _, name := range c.subflowOrder {
		sf := c.subflows[name]
		if sf.ch.Down() || sf.inflight >= sf.alg.CWND() {
			continue
		}
		if sf.srtt == 0 {
			if probe == nil && sf.inflight == 0 {
				probe = sf
			}
			continue
		}
		if best == nil || sf.srtt < best.srtt {
			best = sf
		}
	}
	if probe != nil {
		return probe
	}
	return best
}

// tryMultiSend is trySend for multipath mode.
func (c *Conn) tryMultiSend() {
	if c.closed || !c.established {
		return
	}
	for {
		if c.sched.empty() {
			return
		}
		sf := c.pickSubflow()
		if sf == nil {
			if c.ep.group.AllDown() {
				// Total blackout: park until any channel recovers, as
				// the single-path send path does.
				c.backoffSend()
			}
			return // otherwise acks (or probes completing) resume sending
		}
		ch := c.sched.next(c.cfg.MSS, false)
		if ch == nil {
			return
		}
		if !c.sendChunkOn(sf, ch) {
			c.backoffSend()
			return
		}
	}
}

// sendChunkOn transmits one chunk on a specific subflow.
func (c *Conn) sendChunkOn(sf *subflow, ch *chunk) bool {
	now := c.loop.Now()
	p := c.newPacket(packet.Data, ch.frag.length+packet.HeaderBytes)
	c.nextSeq++
	p.Seq = c.nextSeq
	p.Priority = ch.frag.prio
	p.MsgID = ch.frag.msgID
	p.MsgRemaining = ch.frag.total - ch.frag.offset - ch.frag.length
	frag := c.ep.fragBox(p)
	*frag = ch.frag
	p.Payload = frag

	accepted := sf.ch.Send(c.ep.side, p)
	size := ch.frag.length
	c.stats.BytesSent += int64(size)

	info := c.newSentInfo()
	info.seq = p.Seq
	info.size = size
	info.chunk = ch
	info.sentAt = now
	info.sub = sf
	info.deliveredAtSent = c.delivered
	info.deliveredTimeAtSent = c.deliveredTime
	if accepted {
		name := sf.ch.Name()
		info.channels = append(info.channels, name)
		id := c.chanID(name)
		c.sentIndex[id]++
		info.chIDs = append(info.chIDs, id)
		info.chIdx = append(info.chIdx, c.sentIndex[id])
	}
	c.bytesInFlight += size
	sf.inflight += size
	sf.alg.OnSent(now, size)
	info.appLimited = c.sched.empty()

	if !accepted {
		sf.inflight -= size
		c.requeue(info)
		c.notifySubflowLoss(sf, now, size, false)
		return false
	}
	c.sentOrder = append(c.sentOrder, info)
	c.armRTO()
	return true
}

// multiAck applies one acknowledgment in multipath mode: newly acked
// bytes are grouped per subflow and each controller hears about its
// own share with its own RTT sample.
func (c *Conn) multiAck(pl *ackPayload) {
	now := c.loop.Now()
	type share struct {
		bytes  int
		newest *sentInfo
	}
	shares := make(map[*subflow]*share)
	var newestAll *sentInfo
	c.ackedInfos = c.ackedInfos[:0]
	// Same merge-join as handleAck: ascending sentOrder against the
	// ack's ascending ranges.
	ranges := pl.ranges
	ri := 0
	remaining := c.sentOrder[:0]
	for _, info := range c.sentOrder {
		for ri < len(ranges) && ranges[ri].hi < info.seq {
			ri++
		}
		if ri == len(ranges) || info.seq < ranges[ri].lo {
			remaining = append(remaining, info)
			continue
		}
		c.ackedInfos = append(c.ackedInfos, info)
		c.bytesInFlight -= info.size
		c.delivered += int64(info.size)
		c.stats.BytesAcked += int64(info.size)
		for i, id := range info.chIDs {
			if idx := info.chIdx[i]; idx > c.ackedIndex[id] {
				c.ackedIndex[id] = idx
			}
		}
		if info.sub != nil {
			info.sub.inflight -= info.size
			s := shares[info.sub]
			if s == nil {
				s = &share{}
				shares[info.sub] = s
			}
			s.bytes += info.size
			s.newest = info
		}
		newestAll = info
	}
	c.sentOrder = remaining
	if newestAll == nil {
		return
	}
	if newestAll.seq > c.largestAcked {
		c.largestAcked = newestAll.seq
	}
	c.deliveredTime = now
	c.rtoBackoff = 0

	// Deterministic delivery order over the map.
	for _, name := range c.subflowOrder {
		sf := c.subflows[name]
		s := shares[sf]
		if s == nil {
			continue
		}
		rtt := now - s.newest.sentAt
		if sf.srtt == 0 {
			sf.srtt = rtt
		} else {
			sf.srtt = (7*sf.srtt + rtt) / 8
		}
		var rate float64
		if dt := now - s.newest.deliveredTimeAtSent; dt > 0 {
			rate = float64(c.delivered-s.newest.deliveredAtSent) * 8 / dt.Seconds()
		}
		sf.alg.OnAck(cc.AckEvent{
			Now:          now,
			RTT:          rtt,
			Bytes:        s.bytes,
			InFlight:     sf.inflight,
			DeliveryRate: rate,
			Channel:      name,
			AppLimited:   s.newest.appLimited,
		})
		if c.onRTTSample != nil {
			c.onRTTSample(now, rtt, name)
		}
	}
	// The connection-level RTT estimate feeds the shared RTO.
	c.updateRTT(now - newestAll.sentAt)

	c.recycleAcked()
	c.detectMultiLosses(now)
	c.rtoTimer.Stop()
	c.armRTO()
	c.trySend()
}

// detectMultiLosses is per-channel packet-threshold loss detection
// with per-subflow congestion notification.
func (c *Conn) detectMultiLosses(now time.Duration) {
	lost := make(map[*subflow]int)
	order := c.sentOrder
	remaining := order[:0]
	for i, info := range order {
		if info.seq > c.largestAcked {
			// Send indexes are seq-ordered per channel, so nothing past
			// the largest acked seq can meet the threshold (see
			// detectLosses).
			remaining = append(remaining, order[i:]...)
			break
		}
		isLost := len(info.chIDs) > 0
		for j, id := range info.chIDs {
			if c.ackedIndex[id] < info.chIdx[j]+ackAfterGap {
				isLost = false
				break
			}
		}
		if !isLost {
			remaining = append(remaining, info)
			continue
		}
		if info.sub != nil {
			info.sub.inflight -= info.size
			lost[info.sub] += info.size
		}
		c.requeue(info)
	}
	c.sentOrder = remaining
	for _, name := range c.subflowOrder {
		sf := c.subflows[name]
		if bytes := lost[sf]; bytes > 0 {
			c.notifySubflowLoss(sf, now, bytes, false)
		}
	}
}

// notifySubflowLoss reports loss to one subflow's controller, gated
// once per recovery window.
func (c *Conn) notifySubflowLoss(sf *subflow, now time.Duration, bytes int, timeout bool) {
	if timeout {
		sf.alg.OnLoss(cc.LossEvent{Now: now, Bytes: bytes, Timeout: true})
		return
	}
	if c.largestAcked < sf.recoverySeq {
		return
	}
	sf.recoverySeq = c.nextSeq
	sf.alg.OnLoss(cc.LossEvent{Now: now, Bytes: bytes, InFlight: sf.inflight})
}

// onMultiRTO handles a retransmission timeout in multipath mode.
func (c *Conn) onMultiRTO() {
	if c.closed || len(c.sentOrder) == 0 {
		return
	}
	c.stats.RTOs++
	c.rtoBackoff++
	if c.rtoBackoff > 6 {
		c.rtoBackoff = 6
	}
	lost := make(map[*subflow]int)
	for _, info := range c.sentOrder {
		if info.sub != nil {
			info.sub.inflight -= info.size
			lost[info.sub] += info.size
		}
		c.requeue(info)
	}
	c.sentOrder = c.sentOrder[:0]
	now := c.loop.Now()
	for _, name := range c.subflowOrder {
		sf := c.subflows[name]
		if bytes := lost[sf]; bytes > 0 {
			c.notifySubflowLoss(sf, now, bytes, true)
		}
	}
	c.rtoTimer = c.loop.After(c.rto(), c.onRTOFn)
	c.trySend()
}

// SubflowStats reports one subflow's current state, for experiments.
type SubflowStats struct {
	Channel  string
	CWND     int
	InFlight int
	SRTT     time.Duration
}

// Subflows returns per-subflow state in channel-group order; nil for
// non-multipath connections.
func (c *Conn) Subflows() []SubflowStats {
	if c.subflows == nil {
		return nil
	}
	out := make([]SubflowStats, 0, len(c.subflowOrder))
	for _, name := range c.subflowOrder {
		sf := c.subflows[name]
		out = append(out, SubflowStats{
			Channel:  name,
			CWND:     sf.alg.CWND(),
			InFlight: sf.inflight,
			SRTT:     sf.srtt,
		})
	}
	return out
}

// multiTransmitCtrl sends control traffic (SYN/SYNACK/ACKs) in
// multipath mode. Control packets use the first subflow; MPTCP's
// initial subflow plays the same role.
func (c *Conn) multiTransmitCtrl(p *packet.Packet) {
	if len(c.subflowOrder) == 0 {
		panic(fmt.Sprintf("transport: flow %d has no subflows", c.flow))
	}
	sf := c.subflows[c.subflowOrder[0]]
	sf.ch.Send(c.ep.side, p)
}
