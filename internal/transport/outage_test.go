package transport

import (
	"testing"
	"time"

	"hvc/internal/cc"
	"hvc/internal/channel"
	"hvc/internal/sim"
	"hvc/internal/steering"
)

// Regression tests for fault-injection outages (internal/fault drives
// channel.SetOutage; here the tests flip it directly): the transport
// must survive an outage spanning many RTOs without a dead timer or a
// fire storm, and must resume within one capped RTO of recovery.

func TestFlowResumesAfterMultiMinuteOutage(t *testing.T) {
	loop := sim.NewLoop(1)
	embb := channel.EMBBFixed(loop)
	w := &world{loop: loop, group: channel.NewGroup(embb)}
	w.client = NewEndpoint(loop, w.group, channel.A)
	w.server = NewEndpoint(loop, w.group, channel.B)
	var got []Message
	w.listen(func() Config {
		return Config{CC: cc.NewCubic(), Steer: w.embbOnly()}
	}, &got)
	conn := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.embbOnly()})
	st := conn.NewStream()

	// One 1000-byte message every 200 ms for 130 s.
	const n = 650
	for i := 0; i < n; i++ {
		i := i
		loop.At(time.Duration(i)*200*time.Millisecond, func() {
			conn.SendMessage(st, 0, 1000, i)
		})
	}
	// A two-minute blackout: at the 30 s RTO cap this spans several
	// consecutive timeouts, the regime where a backoff-counter overflow
	// or a lost re-arm would strand the flow forever.
	const outageStart, outageEnd = 2 * time.Second, 122 * time.Second
	loop.At(outageStart, func() { embb.SetOutage(true) })
	loop.At(outageEnd, func() { embb.SetOutage(false) })
	loop.RunUntil(300 * time.Second)

	var before, during, firstAfter time.Duration
	for _, m := range got {
		at := m.DeliveredAt
		switch {
		case at < outageStart:
			before = at
		case at < outageEnd:
			during = at
		case firstAfter == 0:
			firstAfter = at
		}
	}
	if before == 0 {
		t.Fatal("nothing delivered before the outage")
	}
	// In-flight packets may land just after the blackout begins, but
	// nothing new crosses a down channel.
	if during > outageStart+100*time.Millisecond {
		t.Fatalf("delivery at %v while the channel was down", during)
	}
	if firstAfter == 0 {
		t.Fatal("flow never resumed after the outage: dead RTO timer")
	}
	// The hardening criterion: resumption within one capped RTO (30 s)
	// of the channel coming back.
	if firstAfter > outageEnd+30*time.Second {
		t.Fatalf("first delivery %v after recovery at %v: more than one RTO late",
			firstAfter, outageEnd)
	}
	// Backoff must keep the timer chain quiet, not storming: a 120 s
	// outage at exponentially-backed-off RTOs fires ~a dozen times.
	if rtos := conn.Stats().RTOs; rtos == 0 || rtos > 20 {
		t.Fatalf("RTOs = %d over a 120s outage, want ~a dozen (storm or dead timer)", rtos)
	}
	// Reliability: everything sent must eventually arrive.
	if len(got) != n {
		t.Fatalf("delivered %d/%d messages", len(got), n)
	}
}

// TestBackoffResetsAfterRecovery pins that the post-outage flow is not
// stuck at the 30 s backoff ceiling: once new data is acked, the RTO
// returns to its smoothed value.
func TestBackoffResetsAfterRecovery(t *testing.T) {
	loop := sim.NewLoop(2)
	embb := channel.EMBBFixed(loop)
	w := &world{loop: loop, group: channel.NewGroup(embb)}
	w.client = NewEndpoint(loop, w.group, channel.A)
	w.server = NewEndpoint(loop, w.group, channel.B)
	var got []Message
	w.listen(func() Config {
		return Config{CC: cc.NewCubic(), Steer: w.embbOnly()}
	}, &got)
	conn := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.embbOnly()})
	st := conn.NewStream()

	conn.SendMessage(st, 0, 1000, "pre")
	loop.At(1*time.Second, func() { embb.SetOutage(true) })
	loop.At(100*time.Millisecond+1*time.Second, func() {}) // keep times distinct
	loop.At(1100*time.Millisecond, func() { conn.SendMessage(st, 0, 1000, "mid") })
	loop.At(91*time.Second, func() { embb.SetOutage(false) })
	loop.RunUntil(180 * time.Second)
	if conn.rtoBackoff != 0 {
		t.Fatalf("rtoBackoff = %d after recovery and acks, want 0", conn.rtoBackoff)
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d/2", len(got))
	}
}

// Redundant-steering dedup: duplicates arriving on both channels must
// not double-count goodput or corrupt reassembly (the recv.go rangeSet
// path), and stats must reflect the deduplicated payload exactly.

func redundantWorld(seed int64) (*world, *Conn, *[]Message) {
	w := newWorld(seed)
	var got []Message
	w.server.Listen(func() Config {
		return Config{CC: cc.NewCubic(), Steer: steering.NewRedundant(w.group)}
	}, func(c *Conn) {
		c.OnMessage(func(_ *Conn, m Message) { got = append(got, m) })
	})
	conn := w.client.Dial(Config{CC: cc.NewCubic(), Steer: steering.NewRedundant(w.group)})
	return w, conn, &got
}

func TestRedundantDedupExactAccounting(t *testing.T) {
	w, conn, got := redundantWorld(5)
	st := conn.NewStream()
	const n, size = 20, 5000
	for i := 0; i < n; i++ {
		i := i
		w.loop.At(time.Duration(i)*100*time.Millisecond, func() {
			conn.SendMessage(st, 0, size, i)
		})
	}
	w.loop.RunUntil(30 * time.Second)

	if len(*got) != n {
		t.Fatalf("delivered %d/%d messages", len(*got), n)
	}
	seen := make(map[int]bool)
	for _, m := range *got {
		if m.Size != size {
			t.Fatalf("message size %d, want %d (reassembly corrupted)", m.Size, size)
		}
		id := m.Data.(int)
		if seen[id] {
			t.Fatalf("message %d delivered twice", id)
		}
		seen[id] = true
	}
	srv := serverConn(t, w)
	// Both channels carried a full copy of every segment; goodput must
	// count the payload exactly once.
	if br := srv.Stats().BytesReceived; br != n*size {
		t.Fatalf("BytesReceived = %d, want exactly %d (duplicates double-counted)", br, n*size)
	}
	if md := srv.Stats().MsgsDelivered; md != n {
		t.Fatalf("MsgsDelivered = %d, want %d", md, n)
	}
	// Sanity: duplication actually happened — both directions saw
	// traffic on both channels.
	for _, ch := range w.group.All() {
		if ch.Stats(channel.A).Sent == 0 {
			t.Fatalf("channel %s carried nothing; replication not exercised", ch.Name())
		}
	}
}

// TestRedundantMasksOutage pins the §2.2 reliability claim at the
// transport level: with replication, an eMBB blackout leaves delivery
// running over URLLC with no stall, while the copies arriving later on
// the recovered channel are absorbed as duplicates.
func TestRedundantMasksOutage(t *testing.T) {
	w, conn, got := redundantWorld(6)
	embb := w.group.Get(channel.NameEMBB)
	st := conn.NewStream()
	const n = 80 // 8 s of 1000-byte messages every 100 ms
	for i := 0; i < n; i++ {
		i := i
		w.loop.At(time.Duration(i)*100*time.Millisecond, func() {
			conn.SendMessage(st, 0, 1000, i)
		})
	}
	w.loop.At(2*time.Second, func() { embb.SetOutage(true) })
	w.loop.At(5*time.Second, func() { embb.SetOutage(false) })
	w.loop.RunUntil(30 * time.Second)

	if len(*got) != n {
		t.Fatalf("delivered %d/%d", len(*got), n)
	}
	// No delivery gap longer than a few message intervals: URLLC keeps
	// the stream alive through the blackout.
	var prev time.Duration
	for _, m := range *got {
		if prev != 0 && m.DeliveredAt-prev > time.Second {
			t.Fatalf("delivery gap %v across the outage; replication failed to mask it",
				m.DeliveredAt-prev)
		}
		prev = m.DeliveredAt
	}
	srv := serverConn(t, w)
	if br := srv.Stats().BytesReceived; br != n*1000 {
		t.Fatalf("BytesReceived = %d, want exactly %d", br, n*1000)
	}
}
