package transport

import (
	"testing"
	"time"

	"hvc/internal/cc"
	"hvc/internal/channel"
	"hvc/internal/packet"
	"hvc/internal/sim"
	"hvc/internal/steering"
	"hvc/internal/trace"
)

// world wires two endpoints across an eMBB+URLLC channel group.
type world struct {
	loop           *sim.Loop
	group          *channel.Group
	client, server *Endpoint
}

func newWorld(seed int64, chs ...*channel.Channel) *world {
	loop := sim.NewLoop(seed)
	if len(chs) == 0 {
		chs = []*channel.Channel{channel.EMBBFixed(loop), channel.URLLC(loop)}
	}
	g := channel.NewGroup(chs...)
	return &world{
		loop:   loop,
		group:  g,
		client: NewEndpoint(loop, g, channel.A),
		server: NewEndpoint(loop, g, channel.B),
	}
}

// embbOnly returns a single-channel policy for the group's eMBB.
func (w *world) embbOnly() steering.Policy {
	return steering.NewSingle(w.group.Get(channel.NameEMBB))
}

func (w *world) dchannel(side channel.Side) steering.Policy {
	return steering.NewDChannel(w.group, side, steering.DChannelConfig{})
}

// listenEcho makes the server deliver received messages to got.
func (w *world) listen(cfg func() Config, got *[]Message) {
	w.server.Listen(cfg, func(c *Conn) {
		c.OnMessage(func(_ *Conn, m Message) { *got = append(*got, m) })
	})
}

func serverCfg(w *world) func() Config {
	return func() Config {
		return Config{CC: cc.NewCubic(), Steer: w.dchannel(channel.B)}
	}
}

func TestHandshakeAndSmallMessage(t *testing.T) {
	w := newWorld(1)
	var got []Message
	w.listen(serverCfg(w), &got)

	c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.embbOnly()})
	if c.Established() {
		t.Fatal("reliable conn must not be established before handshake")
	}
	st := c.NewStream()
	c.SendMessage(st, 0, 1000, "hello")
	w.loop.RunUntil(2 * time.Second)

	if !c.Established() {
		t.Fatal("handshake did not complete")
	}
	if len(got) != 1 {
		t.Fatalf("server got %d messages, want 1", len(got))
	}
	m := got[0]
	if m.Size != 1000 || m.Data != "hello" || m.Stream != st {
		t.Fatalf("message = %+v", m)
	}
	// Client data rides eMBB (25 ms one way); the handshake SYN does
	// too, though the server's SYNACK may return via URLLC. Total
	// latency must be at least two eMBB one-way trips.
	if m.Latency() < 50*time.Millisecond {
		t.Fatalf("latency %v implausibly low for eMBB-only data", m.Latency())
	}
}

func TestLargeMessageFragmentsAndReassembles(t *testing.T) {
	w := newWorld(2)
	var got []Message
	w.listen(serverCfg(w), &got)

	c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.embbOnly()})
	const size = 500_000
	c.SendMessage(c.NewStream(), 0, size, nil)
	w.loop.RunUntil(10 * time.Second)

	if len(got) != 1 || got[0].Size != size {
		t.Fatalf("got %v", got)
	}
	srv := serverConn(t, w)
	if srv.Stats().BytesReceived != size {
		t.Fatalf("BytesReceived = %d, want %d", srv.Stats().BytesReceived, size)
	}
}

// serverConn digs out the single server-side connection.
func serverConn(t *testing.T, w *world) *Conn {
	t.Helper()
	for _, c := range w.server.conns {
		return c
	}
	t.Fatal("no server conn")
	return nil
}

func TestMultipleMessagesPriorityOrder(t *testing.T) {
	w := newWorld(3)
	var got []Message
	w.listen(serverCfg(w), &got)

	c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.embbOnly()})
	st := c.NewStream()
	// Queue a bulk message, then a high-priority one; the scheduler
	// must finish the priority message first.
	c.SendMessage(st, 5, 200_000, "bulk")
	c.SendMessage(st, 0, 5_000, "urgent")
	w.loop.RunUntil(10 * time.Second)

	if len(got) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(got))
	}
	if got[0].Data != "urgent" || got[1].Data != "bulk" {
		t.Fatalf("order = [%v %v], want urgent first", got[0].Data, got[1].Data)
	}
}

func TestReliableDeliveryOverLossyChannel(t *testing.T) {
	loop := sim.NewLoop(4)
	lossy := channel.New(loop, channel.Config{
		Props:     channel.Properties{Name: channel.NameEMBB, BaseRTT: 50 * time.Millisecond, Bandwidth: 60e6, LossProb: 0.05},
		DownTrace: trace.Constant("e", 50*time.Millisecond, 60e6),
	})
	w := &world{loop: loop, group: channel.NewGroup(lossy)}
	w.client = NewEndpoint(loop, w.group, channel.A)
	w.server = NewEndpoint(loop, w.group, channel.B)

	var got []Message
	w.server.Listen(func() Config {
		return Config{CC: cc.NewCubic(), Steer: steering.NewSingle(lossy)}
	}, func(c *Conn) {
		c.OnMessage(func(_ *Conn, m Message) { got = append(got, m) })
	})

	c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: steering.NewSingle(lossy)})
	const size = 300_000
	c.SendMessage(c.NewStream(), 0, size, nil)
	w.loop.RunUntil(60 * time.Second)

	if len(got) != 1 || got[0].Size != size {
		t.Fatalf("message not delivered over 5%% loss: %v", got)
	}
	if c.Stats().Retransmits == 0 {
		t.Fatal("expected retransmissions over a lossy channel")
	}
}

func TestNoSpuriousRetransmitsUnderSteering(t *testing.T) {
	// Cross-channel reordering is constant under DChannel steering;
	// per-channel loss detection must not misread it as loss.
	w := newWorld(5)
	var got []Message
	w.listen(serverCfg(w), &got)

	c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.dchannel(channel.A)})
	st := c.NewStream()
	// App-limited load: 50 messages of 20 kB every 100 ms — well under
	// capacity, so no queue ever overflows.
	for i := 0; i < 50; i++ {
		i := i
		w.loop.At(time.Duration(i)*100*time.Millisecond, func() {
			c.SendMessage(st, 0, 20_000, i)
		})
	}
	w.loop.RunUntil(20 * time.Second)

	if len(got) != 50 {
		t.Fatalf("delivered %d/50 messages", len(got))
	}
	if r := c.Stats().Retransmits; r > 0 {
		t.Fatalf("%d spurious retransmits under reordering", r)
	}
	if rto := c.Stats().RTOs; rto > 0 {
		t.Fatalf("%d spurious RTOs", rto)
	}
}

func TestRTTSampleHookSeesBothChannels(t *testing.T) {
	w := newWorld(6)
	var got []Message
	w.listen(serverCfg(w), &got)

	c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.dchannel(channel.A)})
	chans := map[string]int{}
	c.OnRTTSample(func(_, rtt time.Duration, ch string) {
		if rtt <= 0 {
			t.Errorf("nonpositive RTT sample %v", rtt)
		}
		chans[ch]++
	})
	st := c.NewStream()
	for i := 0; i < 30; i++ {
		i := i
		w.loop.At(time.Duration(i)*50*time.Millisecond, func() {
			c.SendMessage(st, 0, 30_000, nil)
		})
	}
	w.loop.RunUntil(10 * time.Second)
	if chans[channel.NameEMBB] == 0 || chans[channel.NameURLLC] == 0 {
		t.Fatalf("want RTT samples from both channels, got %v", chans)
	}
	if c.SRTT() <= 0 {
		t.Fatal("SRTT not established")
	}
}

func TestUnreliableDeliveryNoAcks(t *testing.T) {
	w := newWorld(7)
	var got []Message
	w.listen(func() Config {
		return Config{Steer: w.embbOnly()}
	}, &got)

	c := w.client.Dial(Config{Steer: w.embbOnly(), Unreliable: true})
	if !c.Established() {
		t.Fatal("unreliable conns start established")
	}
	c.SendMessage(c.NewStream(), 0, 10_000, "frame")
	w.loop.RunUntil(time.Second)

	if len(got) != 1 || got[0].Data != "frame" {
		t.Fatalf("got %v", got)
	}
	// No acks must flow back to the client.
	urllcUp := w.group.Get(channel.NameURLLC).Stats(channel.B)
	embbUp := w.group.Get(channel.NameEMBB).Stats(channel.B)
	if urllcUp.Sent+embbUp.Sent != 0 {
		t.Fatalf("unreliable flow generated %d reverse packets", urllcUp.Sent+embbUp.Sent)
	}
}

func TestUnreliableIncompleteMessageExpires(t *testing.T) {
	loop := sim.NewLoop(8)
	lossy := channel.New(loop, channel.Config{
		Props:     channel.Properties{Name: channel.NameEMBB, BaseRTT: 20 * time.Millisecond, Bandwidth: 50e6, LossProb: 0.3},
		DownTrace: trace.Constant("e", 20*time.Millisecond, 50e6),
	})
	g := channel.NewGroup(lossy)
	client := NewEndpoint(loop, g, channel.A)
	server := NewEndpoint(loop, g, channel.B)

	var got []Message
	var srv *Conn
	server.Listen(func() Config {
		return Config{Steer: steering.NewSingle(lossy), MsgTimeout: 200 * time.Millisecond}
	}, func(c *Conn) {
		srv = c
		c.OnMessage(func(_ *Conn, m Message) { got = append(got, m) })
	})

	c := client.Dial(Config{Steer: steering.NewSingle(lossy), Unreliable: true})
	st := c.NewStream()
	for i := 0; i < 40; i++ {
		i := i
		loop.At(time.Duration(i)*30*time.Millisecond, func() {
			c.SendMessage(st, 0, 30_000, i) // ~21 packets each; 30% loss dooms most
		})
	}
	loop.RunUntil(5 * time.Second)

	if srv == nil {
		t.Fatal("server conn never created")
	}
	stats := srv.Stats()
	if stats.MsgsExpired == 0 {
		t.Fatalf("expected expired messages under 30%% loss; stats=%+v", stats)
	}
	if len(got)+stats.MsgsExpired == 0 {
		t.Fatal("nothing happened at all")
	}
	// Reassembly state must not leak.
	if len(srv.rcvMsgs) != 0 {
		t.Fatalf("%d messages still pending reassembly after expiry window", len(srv.rcvMsgs))
	}
}

func TestRedundantSteeringDeduplicates(t *testing.T) {
	loop := sim.NewLoop(9)
	b5, b6 := channel.WiFiMLO(loop)
	g := channel.NewGroup(b5, b6)
	client := NewEndpoint(loop, g, channel.A)
	server := NewEndpoint(loop, g, channel.B)

	var got []Message
	var srv *Conn
	server.Listen(func() Config {
		return Config{CC: cc.NewCubic(), Steer: steering.NewRedundant(g)}
	}, func(c *Conn) {
		srv = c
		c.OnMessage(func(_ *Conn, m Message) { got = append(got, m) })
	})

	c := client.Dial(Config{CC: cc.NewCubic(), Steer: steering.NewRedundant(g)})
	const size = 50_000
	c.SendMessage(c.NewStream(), 0, size, nil)
	loop.RunUntil(5 * time.Second)

	if len(got) != 1 || got[0].Size != size {
		t.Fatalf("got %v", got)
	}
	if rcvd := srv.Stats().BytesReceived; rcvd != size {
		t.Fatalf("BytesReceived = %d, want %d (duplicates must not count)", rcvd, size)
	}
}

func TestTwoConnsDemux(t *testing.T) {
	w := newWorld(10)
	byFlow := map[packet.FlowID][]Message{}
	w.server.Listen(serverCfg(w), func(c *Conn) {
		c.OnMessage(func(cn *Conn, m Message) {
			byFlow[cn.Flow()] = append(byFlow[cn.Flow()], m)
		})
	})

	c1 := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.embbOnly()})
	c2 := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.embbOnly(), FlowPriority: packet.PriorityBulk})
	if c1.Flow() == c2.Flow() {
		t.Fatal("flow IDs collide")
	}
	c1.SendMessage(c1.NewStream(), 0, 5000, "one")
	c2.SendMessage(c2.NewStream(), 0, 5000, "two")
	w.loop.RunUntil(2 * time.Second)

	if len(byFlow[c1.Flow()]) != 1 || len(byFlow[c2.Flow()]) != 1 {
		t.Fatalf("demux broken: %v", byFlow)
	}
}

func TestBulkThroughputApproachesLinkRate(t *testing.T) {
	w := newWorld(11)
	var got []Message
	w.listen(serverCfg(w), &got)

	c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.embbOnly()})
	// 60 Mbps for 10 s ≈ 75 MB; offer more so the flow never idles.
	const size = 100 << 20
	c.SendMessage(c.NewStream(), 0, size, nil)
	w.loop.RunUntil(10 * time.Second)

	srv := serverConn(t, w)
	rcvd := srv.Stats().BytesReceived
	// ≥70% of link capacity over the run (CUBIC ramp + queue losses).
	if float64(rcvd)*8/10 < 0.7*60e6 {
		t.Fatalf("bulk throughput %.1f Mbps, want ≥ 42", float64(rcvd)*8/10e6)
	}
}

func TestCloseStopsActivityAndForgets(t *testing.T) {
	w := newWorld(12)
	var got []Message
	w.listen(serverCfg(w), &got)

	c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.embbOnly()})
	c.SendMessage(c.NewStream(), 0, 100_000, nil)
	w.loop.RunUntil(100 * time.Millisecond)
	c.Close()
	c.Close() // idempotent
	if _, ok := w.client.conns[c.Flow()]; ok {
		t.Fatal("endpoint still knows closed conn")
	}
	defer func() {
		if recover() == nil {
			t.Error("SendMessage after Close should panic")
		}
	}()
	c.SendMessage(1, 0, 10, nil)
}

func TestSendMessagePanicsOnBadSize(t *testing.T) {
	w := newWorld(13)
	c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.embbOnly()})
	defer func() {
		if recover() == nil {
			t.Error("size 0 should panic")
		}
	}()
	c.SendMessage(1, 0, 0, nil)
}

func TestConfigValidation(t *testing.T) {
	w := newWorld(14)
	for name, cfg := range map[string]Config{
		"nil steer":   {CC: cc.NewCubic()},
		"nil cc":      {Steer: w.embbOnly()},
		"mss too big": {CC: cc.NewCubic(), Steer: w.embbOnly(), MSS: packet.MaxPayload + 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			w.client.Dial(cfg)
		}()
	}
}

func TestStrayPacketsDropped(t *testing.T) {
	w := newWorld(15)
	// No listener installed: a dial's SYN goes nowhere; the client
	// retries then gives up without crashing.
	c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.embbOnly()})
	c.SendMessage(c.NewStream(), 0, 1000, nil)
	w.loop.RunUntil(60 * time.Second)
	if c.Established() {
		t.Fatal("established without a listener?")
	}
}

func TestMessageLatencyUsesQueueTime(t *testing.T) {
	w := newWorld(16)
	var got []Message
	w.listen(serverCfg(w), &got)
	c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.embbOnly()})
	w.loop.At(time.Second, func() { c.SendMessage(c.NewStream(), 0, 1000, nil) })
	w.loop.RunUntil(5 * time.Second)
	if len(got) != 1 {
		t.Fatal("no message")
	}
	if got[0].SentAt != time.Second {
		t.Fatalf("SentAt = %v, want 1s", got[0].SentAt)
	}
	if got[0].DeliveredAt <= got[0].SentAt {
		t.Fatal("DeliveredAt must follow SentAt")
	}
}

func TestDeterministicTransfer(t *testing.T) {
	run := func() (time.Duration, Stats) {
		w := newWorld(99)
		var got []Message
		w.listen(serverCfg(w), &got)
		c := w.client.Dial(Config{CC: cc.NewBBR(), Steer: w.dchannel(channel.A)})
		c.SendMessage(c.NewStream(), 0, 2<<20, nil)
		w.loop.RunUntil(20 * time.Second)
		if len(got) != 1 {
			t.Fatal("transfer incomplete")
		}
		return got[0].DeliveredAt, c.Stats()
	}
	at1, st1 := run()
	at2, st2 := run()
	if at1 != at2 || st1 != st2 {
		t.Fatalf("nondeterministic: %v/%+v vs %v/%+v", at1, st1, at2, st2)
	}
}
