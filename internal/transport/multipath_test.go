package transport

import (
	"testing"
	"time"

	"hvc/internal/cc"
	"hvc/internal/channel"
	"hvc/internal/sim"
	"hvc/internal/steering"
	"hvc/internal/trace"
)

func multipathCfg() Config {
	return Config{Multipath: true, NewCC: func() cc.Algorithm { return cc.NewCubic() }}
}

func TestMultipathTransfer(t *testing.T) {
	w := newWorld(21)
	var got []Message
	w.server.Listen(func() Config { return multipathCfg() }, func(c *Conn) {
		c.OnMessage(func(_ *Conn, m Message) { got = append(got, m) })
	})
	c := w.client.Dial(multipathCfg())
	const size = 2 << 20
	c.SendMessage(c.NewStream(), 0, size, "blob")
	w.loop.RunUntil(10 * time.Second)

	if len(got) != 1 || got[0].Size != size {
		t.Fatalf("transfer failed: %v", got)
	}
	subs := c.Subflows()
	if len(subs) != 2 {
		t.Fatalf("want 2 subflows, got %d", len(subs))
	}
	for _, sf := range subs {
		if sf.SRTT <= 0 {
			t.Errorf("subflow %s has no RTT estimate", sf.Channel)
		}
	}
}

func TestMultipathAggregatesBandwidth(t *testing.T) {
	// The one thing MPTCP-style aggregation is good at: bulk
	// throughput beyond any single channel.
	run := func(multi bool) float64 {
		w := newWorld(22)
		var srv *Conn
		cfgFor := func() Config {
			if multi {
				return multipathCfg()
			}
			return Config{CC: cc.NewCubic(), Steer: w.embbOnly()}
		}
		w.server.Listen(cfgFor, func(c *Conn) { srv = c })
		c := w.client.Dial(cfgFor())
		c.SendMessage(c.NewStream(), 0, 200<<20, nil)
		w.loop.RunUntil(10 * time.Second)
		_ = c
		return float64(srv.Stats().BytesReceived) * 8 / 10 / 1e6
	}
	single := run(false)
	multi := run(true)
	if multi <= single {
		t.Fatalf("multipath %.1f Mbps should beat single-path %.1f", multi, single)
	}
}

func TestMultipathCongestsURLLC(t *testing.T) {
	// The paper's §1 criticism: the min-RTT scheduler fills the
	// low-latency channel with bulk bytes, queueing it heavily.
	w := newWorld(23)
	var srv *Conn
	w.server.Listen(func() Config { return multipathCfg() }, func(c *Conn) { srv = c })
	c := w.client.Dial(multipathCfg())
	c.SendMessage(c.NewStream(), 0, 200<<20, nil)

	maxQueued := 0
	for i := 1; i <= 100; i++ {
		w.loop.RunUntil(time.Duration(i) * 100 * time.Millisecond)
		if q := w.group.Get(channel.NameURLLC).QueuedBytes(channel.A); q > maxQueued {
			maxQueued = q
		}
	}
	_ = srv
	// URLLC at 2 Mbps: >25 kB queued means >100 ms of queueing delay
	// imposed on anything latency-critical.
	if maxQueued < 25_000 {
		t.Fatalf("URLLC max queue %d bytes; multipath should congest it", maxQueued)
	}
	urllcStats := w.group.Get(channel.NameURLLC).Stats(channel.A)
	if urllcStats.Sent < 100 {
		t.Fatalf("URLLC carried only %d packets", urllcStats.Sent)
	}
}

func TestMultipathSurvivesLossySubflow(t *testing.T) {
	loop := sim.NewLoop(24)
	clean := channel.New(loop, channel.Config{
		Props:     channel.Properties{Name: "clean", BaseRTT: 30 * time.Millisecond, Bandwidth: 40e6},
		DownTrace: trace.Constant("clean", 30*time.Millisecond, 40e6),
	})
	lossy := channel.New(loop, channel.Config{
		Props:     channel.Properties{Name: "lossy", BaseRTT: 10 * time.Millisecond, Bandwidth: 20e6, LossProb: 0.1},
		DownTrace: trace.Constant("lossy", 10*time.Millisecond, 20e6),
	})
	g := channel.NewGroup(clean, lossy)
	client := NewEndpoint(loop, g, channel.A)
	server := NewEndpoint(loop, g, channel.B)

	var got []Message
	server.Listen(func() Config { return multipathCfg() }, func(c *Conn) {
		c.OnMessage(func(_ *Conn, m Message) { got = append(got, m) })
	})
	c := client.Dial(multipathCfg())
	const size = 1 << 20
	c.SendMessage(c.NewStream(), 0, size, nil)
	loop.RunUntil(30 * time.Second)

	if len(got) != 1 || got[0].Size != size {
		t.Fatalf("transfer over lossy subflow failed: %v", got)
	}
	if c.Stats().Retransmits == 0 {
		t.Fatal("expected retransmits on the lossy subflow")
	}
}

func TestMultipathSchedulerPrefersLowRTT(t *testing.T) {
	w := newWorld(25)
	var srv *Conn
	w.server.Listen(func() Config { return multipathCfg() }, func(c *Conn) { srv = c })
	c := w.client.Dial(multipathCfg())
	// A trickle far below URLLC's capacity: min-RTT scheduling should
	// put essentially all of it on URLLC once RTTs are measured.
	st := c.NewStream()
	for i := 0; i < 40; i++ {
		i := i
		w.loop.At(time.Duration(i)*200*time.Millisecond, func() {
			c.SendMessage(st, 0, 1000, nil)
		})
	}
	w.loop.RunUntil(10 * time.Second)
	_ = srv
	urllc := w.group.Get(channel.NameURLLC).Stats(channel.A).Sent
	embb := w.group.Get(channel.NameEMBB).Stats(channel.A).Sent
	if urllc <= embb {
		t.Fatalf("min-RTT scheduler sent %d on urllc vs %d on embb", urllc, embb)
	}
}

func TestMultipathValidation(t *testing.T) {
	w := newWorld(26)
	for name, cfg := range map[string]Config{
		"no NewCC":   {Multipath: true},
		"unreliable": {Multipath: true, Unreliable: true, NewCC: func() cc.Algorithm { return cc.NewCubic() }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			w.client.Dial(cfg)
		}()
	}
}

func TestMultipathDeterministic(t *testing.T) {
	run := func() (time.Duration, Stats) {
		w := newWorld(27)
		var got []Message
		w.server.Listen(func() Config { return multipathCfg() }, func(c *Conn) {
			c.OnMessage(func(_ *Conn, m Message) { got = append(got, m) })
		})
		c := w.client.Dial(multipathCfg())
		c.SendMessage(c.NewStream(), 0, 4<<20, nil)
		w.loop.RunUntil(20 * time.Second)
		if len(got) != 1 {
			t.Fatal("transfer incomplete")
		}
		return got[0].DeliveredAt, c.Stats()
	}
	at1, st1 := run()
	at2, st2 := run()
	if at1 != at2 || st1 != st2 {
		t.Fatalf("nondeterministic: %v/%+v vs %v/%+v", at1, st1, at2, st2)
	}
}

func TestSubflowsNilForSinglePath(t *testing.T) {
	w := newWorld(28)
	c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.embbOnly()})
	if c.Subflows() != nil {
		t.Fatal("single-path conn should report nil subflows")
	}
}

func TestMultipathAndVideoProbeCoexist(t *testing.T) {
	// A multipath bulk flow plus a small-message latency probe on the
	// same channels: the probe's latency should suffer versus an idle
	// network — the measurable harm of aggregation.
	probeLatency := func(withBulk bool) time.Duration {
		w := newWorld(29)
		var probeDone time.Duration
		// One listener serves both: the multipath bulk conn's server
		// half is an ordinary reliable conn (it only acknowledges),
		// and the probe conn auto-detects as unreliable.
		w.server.Listen(func() Config {
			return Config{
				CC:    cc.NewCubic(),
				Steer: steering.NewDChannel(w.group, channel.B, steering.DChannelConfig{}),
			}
		}, func(c *Conn) {
			c.OnMessage(func(_ *Conn, m Message) {
				if m.Size == 500 {
					probeDone = m.Latency()
				}
			})
		})
		if withBulk {
			bulk := w.client.Dial(multipathCfg())
			bulk.SendMessage(bulk.NewStream(), 0, 100<<20, nil)
		}
		probe := w.client.Dial(Config{
			Steer:      steering.NewDChannel(w.group, channel.A, steering.DChannelConfig{}),
			Unreliable: true,
		})
		w.loop.At(3*time.Second, func() {
			probe.SendMessage(probe.NewStream(), 0, 500, nil)
		})
		w.loop.RunUntil(8 * time.Second)
		if probeDone == 0 {
			t.Fatal("probe never delivered")
		}
		return probeDone
	}
	idle := probeLatency(false)
	loaded := probeLatency(true)
	if loaded <= idle {
		t.Fatalf("probe latency with multipath bulk (%v) should exceed idle (%v)", loaded, idle)
	}
}

func TestMultipathThreeChannels(t *testing.T) {
	loop := sim.NewLoop(41)
	chs := []*channel.Channel{
		channel.EMBBFixed(loop),
		channel.URLLC(loop),
	}
	b5, _ := channel.WiFiMLO(loop)
	chs = append(chs, b5)
	g := channel.NewGroup(chs...)
	client := NewEndpoint(loop, g, channel.A)
	server := NewEndpoint(loop, g, channel.B)

	var got []Message
	server.Listen(func() Config { return multipathCfg() }, func(c *Conn) {
		c.OnMessage(func(_ *Conn, m Message) { got = append(got, m) })
	})
	c := client.Dial(multipathCfg())
	c.SendMessage(c.NewStream(), 0, 8<<20, nil)
	loop.RunUntil(10 * time.Second)

	if len(got) != 1 {
		t.Fatal("transfer failed")
	}
	if subs := c.Subflows(); len(subs) != 3 {
		t.Fatalf("want 3 subflows, got %d", len(subs))
	}
	// All three channels should have carried data at this size.
	for _, ch := range g.All() {
		if ch.Stats(channel.A).Sent == 0 {
			t.Errorf("channel %s carried nothing", ch.Name())
		}
	}
}

func TestMultipathSubflowCCIsolation(t *testing.T) {
	// Loss on the lossy subflow must not shrink the clean subflow's
	// window: each controller is independent.
	loop := sim.NewLoop(42)
	clean := channel.New(loop, channel.Config{
		Props:     channel.Properties{Name: "clean", BaseRTT: 30 * time.Millisecond, Bandwidth: 40e6},
		DownTrace: trace.Constant("clean", 30*time.Millisecond, 40e6),
	})
	lossy := channel.New(loop, channel.Config{
		Props:     channel.Properties{Name: "lossy", BaseRTT: 10 * time.Millisecond, Bandwidth: 20e6, LossProb: 0.05},
		DownTrace: trace.Constant("lossy", 10*time.Millisecond, 20e6),
	})
	g := channel.NewGroup(clean, lossy)
	client := NewEndpoint(loop, g, channel.A)
	server := NewEndpoint(loop, g, channel.B)
	server.Listen(func() Config { return multipathCfg() }, func(c *Conn) {})

	c := client.Dial(multipathCfg())
	c.SendMessage(c.NewStream(), 0, 50<<20, nil)
	loop.RunUntil(10 * time.Second)

	var cleanCwnd, lossyCwnd int
	for _, sf := range c.Subflows() {
		switch sf.Channel {
		case "clean":
			cleanCwnd = sf.CWND
		case "lossy":
			lossyCwnd = sf.CWND
		}
	}
	// The clean subflow's window should be allowed to grow well past
	// the lossy one's loss-limited plateau.
	if cleanCwnd <= lossyCwnd {
		t.Fatalf("clean cwnd %d should exceed lossy cwnd %d", cleanCwnd, lossyCwnd)
	}
}

func TestMultipathOutageRecoveryDoesNotStarveLivePath(t *testing.T) {
	// Regression: pickSubflow used to treat an unsampled subflow
	// (srtt == 0) as lowest-RTT, so a subflow that was down from the
	// start — or recovering with reset state — won every min-RTT race,
	// burned each pick on a failed send, and starved the healthy path
	// behind the 10 ms backoff timer. The scheduler must keep filling
	// the measured live subflow during the outage, then probe and adopt
	// the recovered one.
	loop := sim.NewLoop(44)
	live := channel.New(loop, channel.Config{
		Props:     channel.Properties{Name: "live", BaseRTT: 20 * time.Millisecond, Bandwidth: 20e6},
		DownTrace: trace.Constant("live", 20*time.Millisecond, 20e6),
	})
	dead := channel.New(loop, channel.Config{
		Props:     channel.Properties{Name: "dead", BaseRTT: 10 * time.Millisecond, Bandwidth: 20e6},
		DownTrace: trace.Constant("dead", 10*time.Millisecond, 20e6),
	})
	g := channel.NewGroup(live, dead)
	// Down from t=0 (before any RTT sample lands), back at t=5s.
	dead.SetOutage(true)
	loop.At(5*time.Second, func() { dead.SetOutage(false) })
	client := NewEndpoint(loop, g, channel.A)
	server := NewEndpoint(loop, g, channel.B)

	var srv *Conn
	var got []Message
	server.Listen(func() Config { return multipathCfg() }, func(c *Conn) {
		srv = c
		c.OnMessage(func(_ *Conn, m Message) { got = append(got, m) })
	})
	c := client.Dial(multipathCfg())
	c.SendMessage(c.NewStream(), 0, 30<<20, nil)

	// During the outage the live subflow must make real progress: at
	// 20 Mbps, 4 s is 10 MB even with slow start.
	loop.RunUntil(4 * time.Second)
	during := srv.Stats().BytesReceived
	if during < 4<<20 {
		t.Fatalf("live path starved during peer outage: %d bytes in 4s", during)
	}
	if sent := dead.Stats(channel.A).Sent; sent != 0 {
		t.Fatalf("scheduler burned %d sends on the dead channel", sent)
	}

	loop.RunUntil(30 * time.Second)
	if len(got) != 1 {
		t.Fatal("transfer did not complete after recovery")
	}
	// The recovered subflow was probed, measured, and adopted.
	for _, sf := range c.Subflows() {
		if sf.Channel == "dead" && sf.SRTT == 0 {
			t.Fatal("recovered subflow never re-measured")
		}
	}
	if sent := dead.Stats(channel.A).Sent; sent == 0 {
		t.Fatal("recovered subflow carried nothing")
	}
}

func TestMultipathRecoversFromTotalOutage(t *testing.T) {
	loop := sim.NewLoop(43)
	// Both channels die at 1 s and recover at 3 s.
	mk := func(name string, rtt time.Duration, rate float64) *channel.Channel {
		tr := &trace.Trace{Name: name, Samples: []trace.Sample{
			{At: 0, RTT: rtt, Rate: rate},
			{At: time.Second, RTT: rtt, Rate: 0},
			{At: 3 * time.Second, RTT: rtt, Rate: rate},
			{At: 10 * time.Minute, RTT: rtt, Rate: rate},
		}}
		return channel.New(loop, channel.Config{
			Props:      channel.Properties{Name: name, BaseRTT: rtt, Bandwidth: rate},
			DownTrace:  tr,
			QueueBytes: 32 << 10,
		})
	}
	g := channel.NewGroup(mk("a", 20*time.Millisecond, 20e6), mk("b", 40*time.Millisecond, 40e6))
	client := NewEndpoint(loop, g, channel.A)
	server := NewEndpoint(loop, g, channel.B)
	var got []Message
	server.Listen(func() Config { return multipathCfg() }, func(c *Conn) {
		c.OnMessage(func(_ *Conn, m Message) { got = append(got, m) })
	})
	c := client.Dial(multipathCfg())
	c.SendMessage(c.NewStream(), 0, 4<<20, nil)
	loop.RunUntil(60 * time.Second)

	if len(got) != 1 {
		t.Fatalf("transfer did not survive total outage (RTOs=%d)", c.Stats().RTOs)
	}
	if c.Stats().RTOs == 0 {
		t.Fatal("a 2 s total outage should fire the shared RTO")
	}
}
