package transport

import (
	"testing"
	"time"

	"hvc/internal/cc"
	"hvc/internal/channel"
)

func TestRxDelayInflatesMeasuredRTT(t *testing.T) {
	w := newWorld(53)
	var got []Message
	w.listen(serverCfg(w), &got)

	near := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.dchannel(channel.A)})
	far := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.dchannel(channel.A), RxDelay: 50 * time.Millisecond})
	near.SendMessage(near.NewStream(), 0, 200_000, nil)
	far.SendMessage(far.NewStream(), 0, 200_000, nil)
	w.loop.RunUntil(5 * time.Second)

	if len(got) != 2 {
		t.Fatalf("want both transfers delivered, got %d", len(got))
	}
	gap := far.SRTT() - near.SRTT()
	if gap < 40*time.Millisecond || gap > 80*time.Millisecond {
		t.Fatalf("RxDelay=50ms should inflate SRTT by about that much: near=%v far=%v",
			near.SRTT(), far.SRTT())
	}
}

func TestRxDelayDeterministic(t *testing.T) {
	run := func() (time.Duration, Stats) {
		w := newWorld(54)
		var got []Message
		w.listen(serverCfg(w), &got)
		c := w.client.Dial(Config{CC: cc.NewCubic(), Steer: w.dchannel(channel.A), RxDelay: 30 * time.Millisecond})
		c.SendMessage(c.NewStream(), 0, 4<<20, nil)
		w.loop.RunUntil(20 * time.Second)
		if len(got) != 1 {
			t.Fatal("transfer incomplete")
		}
		return got[0].DeliveredAt, c.Stats()
	}
	at1, st1 := run()
	at2, st2 := run()
	if at1 != at2 || st1 != st2 {
		t.Fatalf("nondeterministic: %v/%+v vs %v/%+v", at1, st1, at2, st2)
	}
}
