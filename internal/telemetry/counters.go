package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// Metric kinds recorded by the Registry.
const (
	KindCounter = "counter"
	KindGauge   = "gauge"
)

// A Record is one registry entry in a Snapshot: a named, labeled
// scalar with counter or gauge semantics.
type Record struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Value  float64           `json:"value"`
}

// A Registry holds labeled counters and gauges. Counters accumulate
// (Add); gauges hold the most recent value (Set). A nil *Registry is
// the disabled registry: every method is a no-op.
//
// Snapshots are deterministic: entries come out sorted by name, then
// by their canonical label encoding, independent of insertion order.
type Registry struct {
	entries map[string]*entry
}

type entry struct {
	name   string
	labels []string // alternating key,value, as given
	kind   string
	value  float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Add accumulates n into the named counter. labels are alternating
// key,value pairs; an odd trailing key panics (a call-site bug).
func (r *Registry) Add(name string, n float64, labels ...string) {
	if r == nil {
		return
	}
	e := r.get(name, KindCounter, labels)
	e.value += n
}

// Set records v as the named gauge's current value.
func (r *Registry) Set(name string, v float64, labels ...string) {
	if r == nil {
		return
	}
	e := r.get(name, KindGauge, labels)
	e.value = v
}

// Value reads a metric's current value, or 0 when absent.
func (r *Registry) Value(name string, labels ...string) float64 {
	if r == nil {
		return 0
	}
	e, ok := r.entries[canonical(name, labels)]
	if !ok {
		return 0
	}
	return e.value
}

func (r *Registry) get(name, kind string, labels []string) *entry {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: metric %q has an odd label list %v", name, labels))
	}
	key := canonical(name, labels)
	e, ok := r.entries[key]
	if !ok {
		e = &entry{name: name, labels: append([]string(nil), labels...), kind: kind}
		r.entries[key] = e
	}
	if e.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q used as both %s and %s", name, e.kind, kind))
	}
	return e
}

// canonical encodes a metric identity as "name{k=v,k=v}" with label
// keys sorted, so the same labels in any order address one entry.
func canonical(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	pairs := make([]string, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, labels[i]+"="+labels[i+1])
	}
	sort.Strings(pairs)
	return name + "{" + strings.Join(pairs, ",") + "}"
}

// Snapshot returns every entry as a Record, sorted by name then by
// canonical label encoding. The records copy the registry's state;
// mutating them does not affect it.
func (r *Registry) Snapshot() []Record {
	if r == nil {
		return nil
	}
	keys := make([]string, 0, len(r.entries))
	for k := range r.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Record, 0, len(keys))
	for _, k := range keys {
		e := r.entries[k]
		rec := Record{Name: e.name, Kind: e.kind, Value: e.value}
		if len(e.labels) > 0 {
			rec.Labels = make(map[string]string, len(e.labels)/2)
			for i := 0; i+1 < len(e.labels); i += 2 {
				rec.Labels[e.labels[i]] = e.labels[i+1]
			}
		}
		out = append(out, rec)
	}
	return out
}
