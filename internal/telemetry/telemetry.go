// Package telemetry is the cross-layer observability subsystem: a
// deterministic, virtual-time-stamped event tracer with pluggable
// exporters, a labeled counters/gauges registry, and a machine-
// readable run report. Every layer of the stack — netem links,
// channels, the transport, congestion control, steering policies, and
// the applications — emits structured events through a *Tracer hook.
//
// The Tracer is nil-safe: every method on a nil *Tracer is a no-op,
// so the data path carries exactly one nil check per event when
// tracing is disabled and no instrumentation branches elsewhere.
// Timestamps come from the simulation loop's virtual clock (bind it
// with BindClock), which makes traces a pure function of the seed:
// two runs with the same configuration and seed produce bit-identical
// trace bytes, and enabling tracing never changes an experiment's
// metrics (both properties are asserted by tests in internal/core).
package telemetry

import (
	"strings"
	"time"
)

// Layer names used in Event.Layer. One constant per instrumented
// subsystem, so exporters can group and filter consistently.
const (
	LayerSim       = "sim"
	LayerChannel   = "channel"
	LayerTransport = "transport"
	LayerCC        = "cc"
	LayerSteering  = "steering"
	LayerApp       = "app"
	LayerFault     = "fault"
)

// Event names emitted by the instrumented layers. The set is open —
// exporters must not assume it is exhaustive — but the stack sticks
// to these so traces are greppable.
const (
	// channel/netem events.
	EvEnqueue = "enqueue" // packet accepted into a link queue
	EvDrop    = "drop"    // packet dropped (Detail: "queue" or "loss")
	EvDeliver = "deliver" // packet arrived at the far side

	// transport events.
	EvSend       = "send"       // data segment transmitted
	EvAck        = "ack"        // new data acknowledged
	EvRetransmit = "retransmit" // segment declared lost and requeued
	EvRTO        = "rto"        // retransmission timeout fired
	EvRTT        = "rtt"        // RTT sample taken (Dur: the sample)

	// cc events.
	EvCwnd   = "cwnd"   // window update (Value: cwnd bytes, Detail: algorithm)
	EvPacing = "pacing" // pacing-rate update (Value: bits/s, Detail: algorithm)

	// steering events.
	EvDecision = "decision" // per-packet steering choice (Detail: reason)

	// app events.
	EvFrameDecode  = "frame_decode"  // video frame decoded (Detail: hit/miss)
	EvObjectDone   = "object_done"   // web object fully arrived
	EvPageComplete = "page_complete" // web page onLoad fired

	// fault-injection events (Detail: fault kind, Dur: window length).
	EvFaultStart = "fault_start" // a fault window opened on a channel
	EvFaultEnd   = "fault_end"   // the fault window closed
)

// An Event is one timestamped occurrence somewhere in the stack. The
// field set is a fixed superset of what every layer needs; unused
// fields stay zero and are omitted by exporters. Fixed fields (rather
// than a map) keep emission allocation-free and serialization
// deterministic.
type Event struct {
	// At is the virtual time of the event, stamped by the Tracer from
	// the bound clock.
	At time.Duration
	// Layer and Name classify the event (see the constants above).
	Layer string
	Name  string
	// Channel names the virtual channel involved, when any.
	Channel string
	// Flow and Seq identify the transport flow and segment, when any.
	Flow uint32
	Seq  uint64
	// Msg identifies the application message, frame, or object.
	Msg uint64
	// Bytes is the payload or wire size the event concerns.
	Bytes int
	// Dur carries a duration measurement (an RTT sample, a latency).
	Dur time.Duration
	// Value carries a scalar measurement (a cwnd, a decode layer).
	Value float64
	// Detail is a short free-form qualifier: a drop reason, a steering
	// reason, an algorithm name.
	Detail string
}

// A Sink consumes the event stream. Sinks are driven strictly in
// emission order from the single simulation goroutine; they need no
// locking.
type Sink interface {
	// Event records one event.
	Event(ev Event)
	// BeginRun marks a run boundary: the virtual clock restarts at
	// zero and subsequent events belong to the named run. Exporters
	// use it to separate back-to-back experiments in one output.
	BeginRun(label string)
	// Close flushes and finalizes the sink's output.
	Close() error
}

// A Tracer fans events out to its sinks and owns a counters registry.
// The zero of *Tracer (nil) is the disabled tracer: every method is a
// no-op, so call sites need no enabled-checks.
type Tracer struct {
	now   func() time.Duration
	sinks []Sink
	reg   *Registry
}

// New builds a Tracer over the given sinks. Bind a virtual clock with
// BindClock before the first event; until then events are stamped 0.
func New(sinks ...Sink) *Tracer {
	return &Tracer{sinks: sinks, reg: NewRegistry()}
}

// Enabled reports whether the tracer records anything. It is the
// guard for call sites whose event construction is itself expensive
// (string joins, formatting); plain struct-literal emissions do not
// need it.
func (t *Tracer) Enabled() bool { return t != nil }

// BindClock installs the virtual-time source, normally a sim.Loop's
// Now method. Rebinding is allowed: experiment harnesses that execute
// several runs bind each run's fresh loop in turn (and should call
// BeginRun so exporters can tell the runs apart).
func (t *Tracer) BindClock(now func() time.Duration) {
	if t == nil {
		return
	}
	t.now = now
}

// BeginRun forwards a run boundary to every sink.
func (t *Tracer) BeginRun(label string) {
	if t == nil {
		return
	}
	for _, s := range t.sinks {
		s.BeginRun(label)
	}
}

// Registry returns the tracer's counters registry, or nil for the
// disabled tracer (the Registry is itself nil-safe).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Emit stamps ev with the current virtual time and hands it to every
// sink. On a nil Tracer it is a no-op.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	if t.now != nil {
		ev.At = t.now()
	}
	for _, s := range t.sinks {
		s.Event(ev)
	}
}

// Count adds n to the named counter; labels are key,value pairs.
func (t *Tracer) Count(name string, n float64, labels ...string) {
	if t == nil {
		return
	}
	t.reg.Add(name, n, labels...)
}

// SetGauge sets the named gauge; labels are key,value pairs.
func (t *Tracer) SetGauge(name string, v float64, labels ...string) {
	if t == nil {
		return
	}
	t.reg.Set(name, v, labels...)
}

// Close closes every sink, returning the first error.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	var first error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// JoinNames renders a channel-name list as one comma-separated
// Detail/Channel value, the convention exporters and tests rely on.
func JoinNames(names []string) string {
	if len(names) == 1 {
		return names[0]
	}
	return strings.Join(names, ",")
}
