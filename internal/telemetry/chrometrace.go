package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// A ChromeTraceSink writes the Chrome trace-event JSON format, which
// Perfetto (ui.perfetto.dev) and chrome://tracing load directly.
//
// Layout: each run (BeginRun) is one process; within a run, events
// are grouped onto one track (thread) per virtual channel, one per
// flow for channel-less transport events, and one per layer for the
// rest. Congestion-window updates additionally emit Chrome counter
// events, so cwnd renders as a stepped graph per flow.
//
// Events stream to the writer as they arrive; Close finalizes the
// JSON document.
type ChromeTraceSink struct {
	w       io.Writer
	err     error
	started bool
	wrote   bool

	pid    int
	tids   map[string]int
	nextID int
}

// NewChromeTrace returns a sink writing to w.
func NewChromeTrace(w io.Writer) *ChromeTraceSink {
	return &ChromeTraceSink{w: w, pid: 1, tids: make(map[string]int), nextID: 1}
}

// BeginRun implements Sink: subsequent events belong to a new process
// named label.
func (s *ChromeTraceSink) BeginRun(label string) {
	if s.started {
		s.pid++
		s.tids = make(map[string]int)
		s.nextID = 1
	}
	s.emit(map[string]any{
		"ph": "M", "pid": s.pid, "tid": 0, "name": "process_name",
		"args": map[string]any{"name": label},
	})
}

// track maps an event to its thread ID, allocating (and naming) the
// track on first use.
func (s *ChromeTraceSink) track(ev Event) int {
	var key string
	switch {
	case ev.Channel != "" && ev.Layer == LayerChannel:
		key = "channel " + ev.Channel
	case ev.Flow != 0:
		key = fmt.Sprintf("flow %d %s", ev.Flow, ev.Layer)
	default:
		key = ev.Layer
	}
	tid, ok := s.tids[key]
	if !ok {
		tid = s.nextID
		s.nextID++
		s.tids[key] = tid
		s.emit(map[string]any{
			"ph": "M", "pid": s.pid, "tid": tid, "name": "thread_name",
			"args": map[string]any{"name": key},
		})
	}
	return tid
}

// Event implements Sink.
func (s *ChromeTraceSink) Event(ev Event) {
	tid := s.track(ev)
	ts := float64(ev.At) / float64(time.Microsecond)
	args := map[string]any{}
	if ev.Channel != "" {
		args["channel"] = ev.Channel
	}
	if ev.Flow != 0 {
		args["flow"] = ev.Flow
	}
	if ev.Seq != 0 {
		args["seq"] = ev.Seq
	}
	if ev.Msg != 0 {
		args["msg"] = ev.Msg
	}
	if ev.Bytes != 0 {
		args["bytes"] = ev.Bytes
	}
	if ev.Dur != 0 {
		args["dur_us"] = int64(ev.Dur / time.Microsecond)
	}
	if ev.Value != 0 {
		args["value"] = ev.Value
	}
	if ev.Detail != "" {
		args["detail"] = ev.Detail
	}
	s.emit(map[string]any{
		"name": ev.Layer + "." + ev.Name, "cat": ev.Layer,
		"ph": "i", "s": "t", "ts": ts, "pid": s.pid, "tid": tid,
		"args": args,
	})
	if ev.Name == EvCwnd {
		s.emit(map[string]any{
			"name": fmt.Sprintf("cwnd flow %d", ev.Flow), "ph": "C",
			"ts": ts, "pid": s.pid, "tid": 0,
			"args": map[string]any{"cwnd_bytes": ev.Value},
		})
	}
}

// emit streams one trace record. json.Marshal sorts map keys, so the
// byte stream is deterministic for a deterministic event stream.
func (s *ChromeTraceSink) emit(rec map[string]any) {
	if s.err != nil {
		return
	}
	if !s.started {
		s.started = true
		if _, err := io.WriteString(s.w, `{"traceEvents":[`); err != nil {
			s.err = err
			return
		}
	}
	b, err := json.Marshal(rec)
	if err != nil {
		s.err = err
		return
	}
	if s.wrote {
		b = append([]byte{',', '\n'}, b...)
	}
	s.wrote = true
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
}

// Close implements Sink, terminating the JSON document.
func (s *ChromeTraceSink) Close() error {
	if s.err != nil {
		return s.err
	}
	if !s.started {
		if _, err := io.WriteString(s.w, `{"traceEvents":[`); err != nil {
			return err
		}
	}
	_, err := io.WriteString(s.w, `],"displayTimeUnit":"ms"}`+"\n")
	return err
}
