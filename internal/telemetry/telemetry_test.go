package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	// Every method must be callable on nil without panicking.
	tr.BindClock(func() time.Duration { return 0 })
	tr.BeginRun("x")
	tr.Emit(Event{Layer: LayerChannel, Name: EvEnqueue})
	tr.Count("c", 1, "k", "v")
	tr.SetGauge("g", 2)
	if tr.Registry() != nil {
		t.Fatal("nil tracer should have nil registry")
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	var reg *Registry
	reg.Add("c", 1)
	reg.Set("g", 1)
	if reg.Value("c") != 0 || reg.Snapshot() != nil {
		t.Fatal("nil registry should read empty")
	}
}

func TestTracerStampsVirtualTime(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONL(&buf))
	now := 250 * time.Millisecond
	tr.BindClock(func() time.Duration { return now })
	tr.Emit(Event{Layer: LayerTransport, Name: EvSend, Flow: 3, Seq: 7, Bytes: 1456})
	line := strings.TrimSpace(buf.String())
	var got map[string]any
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("bad JSONL line %q: %v", line, err)
	}
	if got["at_us"].(float64) != 250_000 {
		t.Fatalf("at_us = %v, want 250000", got["at_us"])
	}
	if got["layer"] != LayerTransport || got["name"] != EvSend {
		t.Fatalf("wrong classification: %v", got)
	}
}

func TestRegistryDeterministicSnapshot(t *testing.T) {
	reg := NewRegistry()
	// Insert in one order, label keys in shuffled order.
	reg.Add("drops", 2, "side", "A", "channel", "urllc")
	reg.Add("drops", 1, "channel", "embb", "side", "A")
	reg.Set("cwnd", 14600, "flow", "2")
	reg.Add("drops", 3, "channel", "urllc", "side", "A") // same entry as first
	snap := reg.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d records, want 3", len(snap))
	}
	// Sorted: cwnd, drops{embb}, drops{urllc}.
	if snap[0].Name != "cwnd" || snap[1].Labels["channel"] != "embb" || snap[2].Labels["channel"] != "urllc" {
		t.Fatalf("unexpected order: %+v", snap)
	}
	if snap[2].Value != 5 {
		t.Fatalf("label order should address one counter; got %v, want 5", snap[2].Value)
	}
	if reg.Value("drops", "side", "A", "channel", "urllc") != 5 {
		t.Fatal("Value lookup with reordered labels failed")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("counter reused as gauge should panic")
		}
	}()
	reg := NewRegistry()
	reg.Add("x", 1)
	reg.Set("x", 1)
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeTrace(&buf)
	tr := New(sink)
	now := time.Duration(0)
	tr.BindClock(func() time.Duration { return now })
	tr.BeginRun("test-run")
	tr.Emit(Event{Layer: LayerChannel, Name: EvEnqueue, Channel: "embb", Bytes: 1500})
	now = 10 * time.Millisecond
	tr.Emit(Event{Layer: LayerCC, Name: EvCwnd, Flow: 2, Value: 29200, Detail: "bbr"})
	tr.Emit(Event{Layer: LayerSteering, Name: EvDecision, Flow: 2, Channel: "urllc", Detail: "control:faster"})
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var instants, counters, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "i":
			instants++
			for _, k := range []string{"name", "ts", "pid", "tid"} {
				if _, ok := ev[k]; !ok {
					t.Fatalf("instant event missing %q: %v", k, ev)
				}
			}
		case "C":
			counters++
		case "M":
			meta++
		}
	}
	if instants != 3 || counters != 1 || meta < 3 {
		t.Fatalf("got %d instants, %d counters, %d metadata; want 3, 1, >=3", instants, counters, meta)
	}
}

func TestChromeTraceEmptyStillValid(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeTrace(&buf)
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty chrome trace invalid: %v", err)
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := NewReport("fig1b", 7)
	rep.SetConfig("cc", "bbr")
	rep.SetConfig("policy", "dchannel")
	rep.AddMetric("goodput", 41.5, "Mbps")
	reg := NewRegistry()
	reg.Add("transport_retransmits", 12, "flow", "2")
	rep.AttachCounters(reg)

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var got Report
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if got.Schema != ReportSchema || got.Experiment != "fig1b" || got.Seed != 7 {
		t.Fatalf("header mangled: %+v", got)
	}
	if len(got.Metrics) != 1 || got.Metrics[0].Value != 41.5 {
		t.Fatalf("metrics mangled: %+v", got.Metrics)
	}
	if len(got.Counters) != 1 || got.Counters[0].Value != 12 {
		t.Fatalf("counters mangled: %+v", got.Counters)
	}
}

func TestJSONLOmitsEmptyFields(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONL(&buf))
	tr.Emit(Event{Layer: LayerChannel, Name: EvDrop, Channel: "embb", Detail: "queue"})
	line := strings.TrimSpace(buf.String())
	for _, absent := range []string{"seq", "msg", "dur_us", "value", "flow", "bytes"} {
		if strings.Contains(line, `"`+absent+`"`) {
			t.Fatalf("zero field %q serialized: %s", absent, line)
		}
	}
}

func TestJoinNames(t *testing.T) {
	if JoinNames([]string{"a"}) != "a" || JoinNames([]string{"a", "b"}) != "a,b" || JoinNames(nil) != "" {
		t.Fatal("JoinNames convention broken")
	}
}
