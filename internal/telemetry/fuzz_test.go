package telemetry

import (
	"bytes"
	"testing"

	"hvc/internal/sketch"
)

// realReportBytes builds a representative hvc-run-report/v1 bundle the
// way cmd/hvcbench does, as fuzz seed material.
func realReportBytes() []byte {
	r := NewReport("fig1a,table1", 42)
	r.SetConfig("seeds", "5")
	r.SetConfig("quick", "true")
	r.SetConfig("bulk_dur", "15s")
	r.AddMetric("fig1a/cubic/goodput", 59.81, "Mbps")
	r.AddMetric("fig1a/cubic/retransmits", 12, "")
	r.AddMetric("table1/lowband-driving/dchannel/plt_mean", 618.7, "ms")
	sk := sketch.NewDefault()
	for i := 1; i <= 500; i++ {
		sk.Observe(0.5 * float64(i))
	}
	r.AddSketch("table1/lowband-driving/dchannel/plt_ms", sk)
	reg := NewRegistry()
	reg.Add("transport/packets", 1234, "channel", "embb")
	reg.Add("transport/packets", 56, "channel", "urllc")
	reg.Set("steering/last_beta", 1)
	r.AttachCounters(reg)
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		panic(err)
	}
	return b.Bytes()
}

// FuzzReportRoundTrip drives ParseReport with arbitrary bytes: it must
// never panic, and any report it accepts must re-encode stably —
// encode, decode, encode again is byte-identical, the property the
// cross-package determinism suite relies on when diffing reports.
func FuzzReportRoundTrip(f *testing.F) {
	f.Add(realReportBytes())
	f.Add([]byte(`{"schema":"hvc-run-report/v1","experiment":"x","seed":0,"metrics":[]}`))
	f.Add([]byte(`{"schema":"hvc-run-report/v1","experiment":"","seed":-9,"metrics":null,"config":{}}`))
	f.Add([]byte(`{"schema":"hvc-run-report/v1","seed":1,"metrics":[{"name":"m","value":-0.0}]}`))
	f.Add([]byte(`{"schema":"hvc-run-report/v1","counters":[{"name":"c","kind":"counter","value":1e300,"labels":{}}]}`))
	f.Add([]byte(`{"schema":"hvc-run-report/v1","metrics":[],"sketches":[{"name":"s","n":3,"mean":1,"min":0.5,"max":2,"p50":1,"p95":2,"p99":2}]}`))
	f.Add([]byte(`{"schema":"hvc-run-report/v1","metrics":[],"sketches":[]}`))
	f.Add([]byte(`{"schema":"wrong/v9"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := ParseReport(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as no panic
		}
		var b1 bytes.Buffer
		if err := r.WriteJSON(&b1); err != nil {
			t.Fatalf("re-encode of accepted report: %v", err)
		}
		r2, err := ParseReport(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("own output rejected: %v\n%s", err, b1.Bytes())
		}
		var b2 bytes.Buffer
		if err := r2.WriteJSON(&b2); err != nil {
			t.Fatalf("second encode: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("encode/decode/encode not stable:\n%s\n----\n%s", b1.Bytes(), b2.Bytes())
		}
	})
}
