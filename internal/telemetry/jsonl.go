package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// A JSONLSink writes one JSON object per line: run-boundary records
// as {"run": label} and events with a fixed field order (struct-tag
// order, empties omitted). Field order and number formatting are
// stable across runs, so identical event streams produce identical
// bytes — the property the determinism test asserts.
type JSONLSink struct {
	w   io.Writer
	err error
}

// NewJSONL returns a sink writing to w.
func NewJSONL(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// jsonlEvent is the serialized shape of an Event. Times are integer
// microseconds of virtual time: exact for the granularities the
// simulator uses, and free of float formatting pitfalls.
type jsonlEvent struct {
	AtUS    int64   `json:"at_us"`
	Layer   string  `json:"layer"`
	Name    string  `json:"name"`
	Channel string  `json:"channel,omitempty"`
	Flow    uint32  `json:"flow,omitempty"`
	Seq     uint64  `json:"seq,omitempty"`
	Msg     uint64  `json:"msg,omitempty"`
	Bytes   int     `json:"bytes,omitempty"`
	DurUS   int64   `json:"dur_us,omitempty"`
	Value   float64 `json:"value,omitempty"`
	Detail  string  `json:"detail,omitempty"`
}

// Event implements Sink.
func (s *JSONLSink) Event(ev Event) {
	if s.err != nil {
		return
	}
	s.write(jsonlEvent{
		AtUS:    int64(ev.At / time.Microsecond),
		Layer:   ev.Layer,
		Name:    ev.Name,
		Channel: ev.Channel,
		Flow:    ev.Flow,
		Seq:     ev.Seq,
		Msg:     ev.Msg,
		Bytes:   ev.Bytes,
		DurUS:   int64(ev.Dur / time.Microsecond),
		Value:   ev.Value,
		Detail:  ev.Detail,
	})
}

// BeginRun implements Sink.
func (s *JSONLSink) BeginRun(label string) {
	if s.err != nil {
		return
	}
	s.write(struct {
		Run string `json:"run"`
	}{Run: label})
}

func (s *JSONLSink) write(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		s.err = err
		return
	}
	b = append(b, '\n')
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
}

// Close implements Sink, reporting any write error seen.
func (s *JSONLSink) Close() error { return s.err }
