package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"hvc/internal/sketch"
)

// ProgressSchema identifies the live progress snapshot line layout.
const ProgressSchema = "hvc-progress/v1"

// A ProgressSketch is one metric's live quantile summary inside a
// progress snapshot: enough to watch a long run's distributions
// converge without waiting for the final report.
type ProgressSketch struct {
	Name string  `json:"name"`
	N    uint64  `json:"n"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
}

// A Progress is one machine-readable snapshot of a long run, emitted
// as a single JSON line. The emitter fills Schema and ElapsedS; the
// harness's sampler fills the rest.
type Progress struct {
	Schema   string  `json:"schema"`
	ElapsedS float64 `json:"elapsed_s"`
	Done     int     `json:"done"`
	Total    int     `json:"total"`
	// RatePerS is the completion rate in done-units per wall second
	// (UEs/sec for fleet runs, jobs/sec for sweeps). The emitter
	// derives it from Done and elapsed time when the sampler leaves it
	// zero.
	RatePerS float64 `json:"rate_per_s,omitempty"`
	// EtaS estimates the remaining wall seconds at the current rate.
	// The emitter derives it from Total, Done, and RatePerS; it is
	// omitted until a rate exists and once the run is done, so
	// consumers must treat it as advisory, not monotone.
	EtaS       float64          `json:"eta_s,omitempty"`
	Cached     int              `json:"cached,omitempty"`
	Violations int              `json:"violations,omitempty"`
	Sketches   []ProgressSketch `json:"sketches,omitempty"`
}

// ProgressSketches converts a sketch.Group snapshot into the progress
// line's quantile shape, dropping empty sketches.
func ProgressSketches(sums []sketch.Summary) []ProgressSketch {
	var out []ProgressSketch
	for _, s := range sums {
		if s.N == 0 {
			continue
		}
		out = append(out, ProgressSketch{Name: s.Name, N: s.N, P50: s.P50, P95: s.P95, P99: s.P99})
	}
	return out
}

// StartProgress launches a background emitter that calls sample every
// interval and writes the snapshot as one JSON line to w. The returned
// stop function emits one final snapshot — so short runs still produce
// at least one line — and joins the emitter; call it exactly once.
//
// The emitter only observes: sample must be safe to call concurrently
// with the run it watches (counters behind the pool's lock, a
// sketch.Group), and w is typically stderr so progress interleaves
// with nothing the run's consumers parse. Wall-clock timing makes the
// line stream inherently non-deterministic; results stay byte-identical
// because nothing downstream reads it.
func StartProgress(w io.Writer, every time.Duration, sample func() Progress) (stop func()) {
	if every <= 0 {
		every = time.Second
	}
	start := time.Now()
	emit := func() {
		p := sample()
		p.Schema = ProgressSchema
		p.ElapsedS = roundMS(time.Since(start).Seconds())
		if p.RatePerS == 0 && p.Done > 0 && p.ElapsedS > 0 {
			p.RatePerS = roundMS(float64(p.Done) / p.ElapsedS)
		}
		if p.EtaS == 0 && p.RatePerS > 0 && p.Total > 0 && p.Done < p.Total {
			p.EtaS = roundMS(float64(p.Total-p.Done) / p.RatePerS)
		}
		b, err := json.Marshal(p)
		if err != nil {
			return
		}
		b = append(b, '\n')
		w.Write(b)
	}
	quit := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				emit()
			case <-quit:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(quit)
			wg.Wait()
			emit()
		})
	}
}

// roundMS rounds elapsed seconds to milliseconds so progress lines
// stay short; precision beyond that is noise at the cadences used.
func roundMS(s float64) float64 {
	return float64(int64(s*1000+0.5)) / 1000
}
