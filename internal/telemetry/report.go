package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"hvc/internal/sketch"
)

// ReportSchema identifies the run-report JSON layout. Bump it when a
// field changes meaning; additive fields keep the version.
const ReportSchema = "hvc-run-report/v1"

// A Metric is one headline result of a run: a named scalar with a
// unit. Metrics keep insertion order, so a report reads in the order
// the experiment produced its numbers.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
}

// A SketchSummary is one metric distribution's sketch-derived shape in
// a report: exact count, mean, and extrema plus quantiles within the
// sketch's relative accuracy. It complements the headline Metrics —
// those stay the paper's exact numbers; the sketch section adds tail
// visibility at fixed memory, the form fleet-scale runs report.
type SketchSummary struct {
	Name string  `json:"name"`
	N    uint64  `json:"n"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
}

// A Report is the machine-readable record of one experiment
// invocation: what ran (experiment, seed, config), what came out
// (headline metrics), and the final counter snapshot. Every field
// serializes deterministically, so reports diff cleanly between runs
// and append mechanically to the bench trajectory.
type Report struct {
	Schema     string            `json:"schema"`
	Experiment string            `json:"experiment"`
	Seed       int64             `json:"seed"`
	Config     map[string]string `json:"config,omitempty"`
	Metrics    []Metric          `json:"metrics"`
	Sketches   []SketchSummary   `json:"sketches,omitempty"`
	Counters   []Record          `json:"counters,omitempty"`
}

// NewReport starts a report for the named experiment and seed.
func NewReport(experiment string, seed int64) *Report {
	return &Report{Schema: ReportSchema, Experiment: experiment, Seed: seed}
}

// SetConfig records one configuration key (trace name, policy, CCA,
// duration) describing the run.
func (r *Report) SetConfig(key, value string) {
	if r.Config == nil {
		r.Config = make(map[string]string)
	}
	r.Config[key] = value
}

// AddMetric appends one headline metric.
func (r *Report) AddMetric(name string, value float64, unit string) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value, Unit: unit})
}

// AddSketch appends the named sketch's summary. Empty sketches are
// skipped: a distribution nothing was observed into says nothing worth
// a report line, and skipping keeps sketch emission additive (reports
// without observations serialize exactly as before the field existed).
func (r *Report) AddSketch(name string, s *sketch.Sketch) {
	if s == nil || s.N() == 0 {
		return
	}
	sum := s.Summarize(name)
	r.Sketches = append(r.Sketches, SketchSummary{
		Name: sum.Name, N: sum.N, Mean: sum.Mean, Min: sum.Min, Max: sum.Max,
		P50: sum.P50, P95: sum.P95, P99: sum.P99,
	})
}

// SketchSummaries converts a sketch.Group snapshot into report form,
// dropping empty sketches — the shape fleet reports embed wholesale.
// The input is already name-sorted (Group.Snapshot), so the result is
// deterministic.
func SketchSummaries(sums []sketch.Summary) []SketchSummary {
	out := make([]SketchSummary, 0, len(sums))
	for _, s := range sums {
		if s.N == 0 {
			continue
		}
		out = append(out, SketchSummary{
			Name: s.Name, N: s.N, Mean: s.Mean, Min: s.Min, Max: s.Max,
			P50: s.P50, P95: s.P95, P99: s.P99,
		})
	}
	return out
}

// AttachCounters snapshots reg into the report, replacing any earlier
// snapshot. A nil registry clears the section.
func (r *Report) AttachCounters(reg *Registry) {
	r.Counters = reg.Snapshot()
}

// ParseReport reads a report WriteJSON produced, rejecting other
// schemas. The result is normalized so that re-encoding it with
// WriteJSON is byte-stable: empty sections collapse to their canonical
// empty form.
func ParseReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("telemetry: report: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("telemetry: report schema %q, want %q", r.Schema, ReportSchema)
	}
	if len(r.Config) == 0 {
		r.Config = nil
	}
	if len(r.Sketches) == 0 {
		r.Sketches = nil
	}
	if len(r.Counters) == 0 {
		r.Counters = nil
	}
	for i := range r.Counters {
		if len(r.Counters[i].Labels) == 0 {
			r.Counters[i].Labels = nil
		}
	}
	return &r, nil
}

// WriteJSON serializes the report, indented, to w. json.Marshal sorts
// the config map's keys, so output is deterministic.
func (r *Report) WriteJSON(w io.Writer) error {
	if r.Metrics == nil {
		r.Metrics = []Metric{} // serialize as [], not null
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
