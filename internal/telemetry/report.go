package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// ReportSchema identifies the run-report JSON layout. Bump it when a
// field changes meaning; additive fields keep the version.
const ReportSchema = "hvc-run-report/v1"

// A Metric is one headline result of a run: a named scalar with a
// unit. Metrics keep insertion order, so a report reads in the order
// the experiment produced its numbers.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
}

// A Report is the machine-readable record of one experiment
// invocation: what ran (experiment, seed, config), what came out
// (headline metrics), and the final counter snapshot. Every field
// serializes deterministically, so reports diff cleanly between runs
// and append mechanically to the bench trajectory.
type Report struct {
	Schema     string            `json:"schema"`
	Experiment string            `json:"experiment"`
	Seed       int64             `json:"seed"`
	Config     map[string]string `json:"config,omitempty"`
	Metrics    []Metric          `json:"metrics"`
	Counters   []Record          `json:"counters,omitempty"`
}

// NewReport starts a report for the named experiment and seed.
func NewReport(experiment string, seed int64) *Report {
	return &Report{Schema: ReportSchema, Experiment: experiment, Seed: seed}
}

// SetConfig records one configuration key (trace name, policy, CCA,
// duration) describing the run.
func (r *Report) SetConfig(key, value string) {
	if r.Config == nil {
		r.Config = make(map[string]string)
	}
	r.Config[key] = value
}

// AddMetric appends one headline metric.
func (r *Report) AddMetric(name string, value float64, unit string) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value, Unit: unit})
}

// AttachCounters snapshots reg into the report, replacing any earlier
// snapshot. A nil registry clears the section.
func (r *Report) AttachCounters(reg *Registry) {
	r.Counters = reg.Snapshot()
}

// ParseReport reads a report WriteJSON produced, rejecting other
// schemas. The result is normalized so that re-encoding it with
// WriteJSON is byte-stable: empty sections collapse to their canonical
// empty form.
func ParseReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("telemetry: report: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("telemetry: report schema %q, want %q", r.Schema, ReportSchema)
	}
	if len(r.Config) == 0 {
		r.Config = nil
	}
	if len(r.Counters) == 0 {
		r.Counters = nil
	}
	for i := range r.Counters {
		if len(r.Counters[i].Labels) == 0 {
			r.Counters[i].Labels = nil
		}
	}
	return &r, nil
}

// WriteJSON serializes the report, indented, to w. json.Marshal sorts
// the config map's keys, so output is deterministic.
func (r *Report) WriteJSON(w io.Writer) error {
	if r.Metrics == nil {
		r.Metrics = []Metric{} // serialize as [], not null
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
